package waggle

import (
	"fmt"
	"os"
	"reflect"
	"sort"

	"waggle/internal/ckpt"
	"waggle/internal/wire"
)

// CheckpointCodec selects how checkpoints are serialized. The zero
// value is the JSON envelope, so existing callers are unchanged.
type CheckpointCodec int

const (
	// CodecJSON is the human-readable "waggle-ckpt/v1" envelope — the
	// debugging and backward-compatibility format.
	CodecJSON CheckpointCodec = iota
	// CodecBinary is the compact "waggle-ckpt/v2" binary format: full
	// snapshots an order of magnitude smaller than JSON.
	CodecBinary
	// CodecDelta is binary plus delta chains: a periodic writer appends
	// per-interval deltas (only the robots whose state changed) to a
	// binary base snapshot, rebasing when the chain grows long or the
	// world churns. Single-shot saves degrade to CodecBinary.
	CodecDelta
)

// String returns the codec's CLI name ("json", "binary", "delta").
func (c CheckpointCodec) String() string {
	switch c {
	case CodecJSON:
		return "json"
	case CodecBinary:
		return "binary"
	case CodecDelta:
		return "delta"
	}
	return fmt.Sprintf("CheckpointCodec(%d)", int(c))
}

// ParseCheckpointCodec maps a CLI name to its codec.
func ParseCheckpointCodec(name string) (CheckpointCodec, error) {
	switch name {
	case "", "json":
		return CodecJSON, nil
	case "binary":
		return CodecBinary, nil
	case "delta":
		return CodecDelta, nil
	}
	return 0, fmt.Errorf("waggle: unknown checkpoint codec %q (want json, binary, or delta)", name)
}

// Rebase thresholds for CodecDelta: a new base snapshot is written when
// the chain reaches maxChainLen deltas (bounding load-time fold work)
// or when a single interval moved at least rebaseFraction of the swarm
// (past which a delta stops being smaller than a base).
const (
	maxChainLen    = 64
	rebaseFraction = 0.25
)

// endpointSweepMax is the swarm size up to which every delta capture
// simply compares all endpoint observables against the mirror. Above
// it the sparse path (moved robots + recorded senders) is used — valid
// because an endpoint's observables change only during the robot's own
// activation (which moves it, or at least stamps a touch) or a recorded
// send naming it; the messenger and the stabilization wrapper break
// that locality, so swarms using either always sweep.
const endpointSweepMax = 4096

// CheckpointWriter saves a swarm's state to one path repeatedly, as a
// simulation driver's periodic checkpointer. For CodecJSON and
// CodecBinary every Save atomically rewrites the file with a full
// snapshot. For CodecDelta the first Save writes a binary base snapshot
// and subsequent Saves append a delta frame recording only what changed
// since the previous Save — at large n with sparse activation that is
// microseconds and a few hundred bytes instead of an O(n) rewrite —
// rebasing automatically per the thresholds above. The file is readable
// by LoadCheckpoint at every moment: after a base, after any delta, and
// (thanks to the append being a single write and torn trailing frames
// being dropped on load) even after a crash mid-append.
type CheckpointWriter struct {
	s     *Swarm
	path  string
	codec CheckpointCodec

	// Delta-chain state: the folded image of what the file holds, the
	// body CRC of its last frame, the chain length, the world clock and
	// recorder length at the previous save, and reusable scratch.
	mirror     *Checkpoint
	prevCRC    uint32
	chainLen   int
	sinceTime  int
	prevRecLen int
	sweepEps   bool
	touched    []int
	lastBytes  int
	lastDelta  bool
}

// NewCheckpointWriter returns a periodic checkpointer for the swarm,
// writing to path. With no explicit codec it uses the swarm's
// WithCheckpointCodec preference (default CodecJSON). CodecDelta
// enables position-touch tracking on the world, so the writer should be
// created before the run it will checkpoint.
func (s *Swarm) NewCheckpointWriter(path string, codec ...CheckpointCodec) (*CheckpointWriter, error) {
	c := s.opts.ckptCodec
	switch len(codec) {
	case 0:
	case 1:
		c = codec[0]
	default:
		return nil, fmt.Errorf("waggle: NewCheckpointWriter takes at most one codec, got %d", len(codec))
	}
	switch c {
	case CodecJSON, CodecBinary, CodecDelta:
	default:
		return nil, fmt.Errorf("waggle: unknown checkpoint codec %d", int(c))
	}
	cw := &CheckpointWriter{s: s, path: path, codec: c}
	if c == CodecDelta {
		s.net.World().EnableTouchTracking()
		cw.sweepEps = s.messenger != nil || s.opts.stabilizeEpoch > 0 || s.n <= endpointSweepMax
	}
	return cw, nil
}

// Codec returns the writer's serialization format.
func (cw *CheckpointWriter) Codec() CheckpointCodec { return cw.codec }

// Path returns the file the writer saves to.
func (cw *CheckpointWriter) Path() string { return cw.path }

// ChainLen returns how many delta frames follow the current base (0
// right after a base save, and always 0 for non-delta codecs).
func (cw *CheckpointWriter) ChainLen() int { return cw.chainLen }

// LastSaveBytes returns how many bytes the most recent Save wrote: the
// whole file for a full snapshot, just the appended frame for a delta.
func (cw *CheckpointWriter) LastSaveBytes() int { return cw.lastBytes }

// LastSaveWasDelta reports whether the most recent Save appended a
// delta frame rather than rewriting a full snapshot.
func (cw *CheckpointWriter) LastSaveWasDelta() bool { return cw.lastDelta }

// Save checkpoints the swarm's current state to the writer's path.
func (cw *CheckpointWriter) Save() error {
	if cw.codec != CodecDelta {
		ck, err := cw.s.Checkpoint()
		if err != nil {
			return err
		}
		if err := SaveCheckpoint(cw.path, ck, cw.codec); err != nil {
			return err
		}
		cw.lastBytes = cw.fileSize()
		cw.lastDelta = false
		return nil
	}
	if cw.mirror == nil || cw.configDrifted() {
		return cw.saveBase()
	}
	d, err := cw.captureDelta()
	if err != nil {
		return err
	}
	if cw.chainLen >= maxChainLen || float64(len(d.PosChanged)) >= rebaseFraction*float64(cw.s.n) {
		return cw.saveBase()
	}
	frame, crc, err := wire.EncodeDeltaFrame(d, &cw.mirror.State, cw.prevCRC)
	if err != nil {
		return err
	}
	if err := appendDurably(cw.path, frame); err != nil {
		return err
	}
	if err := wire.ApplyDelta(cw.mirror, d); err != nil {
		// The frame is already on disk but matches the mirror state it
		// was encoded against; an apply failure here means the delta
		// itself is malformed, which a load would reject too.
		return err
	}
	cw.prevCRC = crc
	cw.chainLen++
	cw.noteSaved(len(frame), true)
	return nil
}

// saveBase writes a fresh binary base snapshot atomically and resets
// the chain.
func (cw *CheckpointWriter) saveBase() error {
	ck, err := cw.s.Checkpoint()
	if err != nil {
		return err
	}
	frame, crc, err := wire.EncodeBaseFrame(ck)
	if err != nil {
		return err
	}
	if err := ckpt.WriteFileAtomic(cw.path, frame); err != nil {
		return err
	}
	cw.mirror = ck
	cw.prevCRC = crc
	cw.chainLen = 0
	cw.noteSaved(len(frame), false)
	return nil
}

// noteSaved records the bookkeeping every successful save shares: the
// world clock and recorder length the next delta will diff against.
func (cw *CheckpointWriter) noteSaved(bytes int, delta bool) {
	cw.sinceTime = cw.s.net.World().Time()
	cw.prevRecLen = cw.s.rec.Len()
	cw.lastBytes = bytes
	cw.lastDelta = delta
}

// configDrifted reports whether the swarm's construction recipe changed
// since the base snapshot — a radio or messenger coupled mid-run — in
// which case the base must be rewritten (deltas carry state, not
// config). Positions and options are immutable after construction, so
// only the cheap coupling fields are checked.
func (cw *CheckpointWriter) configDrifted() bool {
	cfg := &cw.mirror.Config
	if cfg.Messenger != (cw.s.messenger != nil) {
		return true
	}
	if (cfg.Radio == nil) != (cw.s.radio == nil) {
		return true
	}
	if cfg.Radio != nil && (cfg.Radio.N != cw.s.radio.n || cfg.Radio.Seed != cw.s.radio.seed) {
		return true
	}
	return false
}

// captureDelta builds the delta from the previous save's mirror to the
// swarm's current state without materializing a full snapshot: cost is
// proportional to what changed (plus one pass over the scheduler's
// idle counters when the scheduler is randomized), not to n.
func (cw *CheckpointWriter) captureDelta() (*wire.Delta, error) {
	s := cw.s
	w := s.net.World()
	mirror := &cw.mirror.State
	d := &wire.Delta{
		Time:     w.Time(),
		Consumed: s.net.Consumed(),
	}
	var idle []int
	d.SchedulerDraws, idle = schedulerStateRef(s.net.Scheduler())

	// Positions: only robots stamped by the touch tracker since the
	// previous save, value-diffed against the mirror (the stamp set may
	// be a superset of the robots that actually ended up elsewhere).
	cw.touched = w.AppendTouchedSince(cw.sinceTime, cw.touched[:0])
	for _, i := range cw.touched {
		p := w.Position(i)
		xy := ckpt.XY{X: p.X, Y: p.Y}
		if xy != mirror.Positions[i] {
			d.PosChanged = append(d.PosChanged, wire.PosChange{Index: i, Pos: xy})
		}
	}

	// Input log tail: the recorder only appends entries or grows the
	// last entry's run-length count, so everything before the previous
	// save's final entry is immutable.
	tailStart := cw.prevRecLen - 1
	if tailStart < 0 {
		tailStart = 0
	}
	d.InputTailStart = tailStart
	d.InputTail = s.rec.OpsSince(tailStart)

	// Endpoint observables. The sparse candidate set is the touched
	// robots (observables change during a robot's own activation, which
	// also moves it) plus every sender named in the new input entries.
	if cw.sweepEps {
		for i := 0; i < s.n; i++ {
			ep := s.net.Endpoint(i)
			es := ckpt.EndpointState{Pending: ep.PendingMessages(), Idle: ep.Idle(), SentBits: ep.SentBits()}
			if es != mirror.Endpoints[i] {
				d.EndpointChanged = append(d.EndpointChanged, wire.EndpointChange{Index: i, State: es})
			}
		}
	} else {
		cand := append([]int(nil), cw.touched...)
		for _, in := range d.InputTail {
			switch in.Op {
			case ckpt.OpSend, ckpt.OpBroadcast, ckpt.OpSendAll:
				if in.From >= 0 && in.From < s.n {
					cand = append(cand, in.From)
				}
			}
		}
		sort.Ints(cand)
		prev := -1
		for _, i := range cand {
			if i == prev {
				continue
			}
			prev = i
			ep := s.net.Endpoint(i)
			es := ckpt.EndpointState{Pending: ep.PendingMessages(), Idle: ep.Idle(), SentBits: ep.SentBits()}
			if es != mirror.Endpoints[i] {
				d.EndpointChanged = append(d.EndpointChanged, wire.EndpointChange{Index: i, State: es})
			}
		}
	}

	// Delivery log: append-only, so just the new suffix.
	d.DeliveredTail = messagesToState(s.net.DeliveredSince(len(mirror.Delivered)))

	if idle != nil {
		d.HasIdle = true
		d.IdleLen = len(idle)
		d.IdleShift, d.IdleOverrides = wire.DiffIdle(mirror.SchedulerIdle, idle)
	}

	// Subsystem snapshots are small relative to the swarm: recapture
	// whole, carry only if changed.
	if s.radio != nil || mirror.Radio != nil {
		var rs *ckpt.RadioState
		if s.radio != nil {
			rs = radioState(s.radio.inner.Snapshot())
		}
		if !reflect.DeepEqual(rs, mirror.Radio) {
			d.RadioChanged = true
			d.Radio = rs
		}
	}
	if s.messenger != nil || mirror.Messenger != nil {
		var ms *ckpt.MessengerState
		if s.messenger != nil {
			ms = messengerState(s.messenger.inner.Snapshot())
		}
		if !reflect.DeepEqual(ms, mirror.Messenger) {
			d.MessengerChanged = true
			d.Messenger = ms
		}
	}
	if fs := s.faultState(); !reflect.DeepEqual(fs, mirror.Fault) {
		d.FaultChanged = true
		d.Fault = fs
	}

	var err error
	if d.TraceDigest, err = s.traceDigest(); err != nil {
		return nil, err
	}
	if d.ObsDigest, err = s.obsDigest(); err != nil {
		return nil, err
	}
	return d, nil
}

// fileSize returns the current size of the writer's file (0 on error;
// informational only).
func (cw *CheckpointWriter) fileSize() int {
	fi, err := os.Stat(cw.path)
	if err != nil {
		return 0
	}
	return int(fi.Size())
}

// appendDurably appends one frame to the file with a single write and
// fsyncs it. A crash can only tear the trailing frame, which the chain
// loader drops — the file never stops being loadable.
func appendDurably(path string, frame []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("waggle: open checkpoint for append: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("waggle: append checkpoint delta: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("waggle: sync checkpoint delta: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("waggle: close checkpoint: %w", err)
	}
	return nil
}
