# Repo-level CI targets. `make verify` is the tier-1 gate: build, vet,
# and the full test suite under the race detector (the parallel step
# engine and the concurrent sweep harness are exercised by it).

GO ?= go

.PHONY: verify build vet fmt-check test race bench bench-json bench-check bench-step bench-ckpt bench-serve bench-queen bench-stream chaos-check obs-check replay-check serve-check stream-check queen-check vulncheck

verify: build vet fmt-check race bench-check chaos-check obs-check replay-check serve-check stream-check queen-check vulncheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting gate: fails listing any file gofmt would rewrite.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The speedup benchmarks for the parallel engine and sweep harness.
bench:
	$(GO) test -run xxx -bench 'BenchmarkStepParallel|BenchmarkSweepParallel' -benchmem .

# Full spatial-index before/after run: measures every grid fast path
# against its brute twin and writes BENCH_spatial.json (the table in
# EXPERIMENTS.md comes from this file).
bench-json:
	$(GO) run ./cmd/waggle-bench -out BENCH_spatial.json

# Step-engine scaling run: full-step wall time at n up to 1,000,000 for
# the structure-of-arrays engine, against the legacy dense-view engine
# where it still fits in memory. Writes BENCH_step.json (schema
# waggle-bench-step/v1; the scaling table in EXPERIMENTS.md).
bench-step:
	$(GO) run ./cmd/waggle-bench -step -out BENCH_step.json

# Checkpoint codec run: save/restore latency and bytes for the JSON v1
# envelope, the binary v2 wire format, and base + delta-frame chains, at
# n up to 1,000,000. Writes BENCH_ckpt.json (schema waggle-bench-ckpt/v1;
# the checkpoint table in EXPERIMENTS.md).
bench-ckpt:
	$(GO) run ./cmd/waggle-bench -ckpt -out BENCH_ckpt.json

# Smoke gate for the benchmark trajectory: every in-package benchmark
# compiles and runs one iteration, and every waggle-bench scenario body
# executes once — including the step-engine scaling bodies at tiny n.
# Catches silently-empty bench suites without paying for a full
# measurement run.
bench-check:
	$(GO) test -run xxx -bench . -benchtime 1x ./...
	$(GO) run ./cmd/waggle-bench -smoke
	$(GO) run ./cmd/waggle-bench -step -smoke
	$(GO) run ./cmd/waggle-bench -ckpt -smoke
	$(GO) run ./cmd/waggle-bench -stream -smoke

# Chaos smoke: one fast scenario per fault family through the
# fault-injection harness. The full table (EXPERIMENTS.md) is
# `go run ./cmd/waggle-chaos`.
chaos-check:
	$(GO) run ./cmd/waggle-chaos -scenario crash-sync
	$(GO) run ./cmd/waggle-chaos -scenario displace-sync
	$(GO) run ./cmd/waggle-chaos -scenario obs-noise-sync
	$(GO) run ./cmd/waggle-chaos -scenario move-error-sync
	$(GO) run ./cmd/waggle-chaos -scenario radio-outage
	$(GO) run ./cmd/waggle-chaos -scenario combined -engine parallel

# Record-replay gate: the committed golden checkpoint must restore,
# replay, and reproduce the committed movement trace byte-for-byte, and
# every chaos scenario must survive a mid-plan kill-and-resume.
# Regenerate the artifacts (only for intentional protocol changes) with
# `go test -run TestGoldenReplay -update-golden .`.
replay-check:
	$(GO) test -run TestGoldenReplay -count=1 .
	$(GO) run ./cmd/waggle-chaos -resume-check -scenario combined
	$(GO) run ./cmd/waggle-chaos -resume-check -scenario combined -ckpt-codec delta

# Observability smoke: run a short instrumented sim, validate that the
# Prometheus text exposition parses and the JSON snapshot round-trips
# byte-for-byte (DESIGN.md §5d).
obs-check:
	$(GO) run ./cmd/waggle-sim -obs-check

# Session-daemon smoke: start waggle-serve on an ephemeral port, run one
# create/step/evict/resume/delete lifecycle against its own API, verify
# the serve metrics saw it, and drain gracefully (DESIGN.md §5h). Then a
# seconds-long waggle-load pass: mixed create/step/evict/resume traffic
# plus an overload burst that must be answered with 429/503.
serve-check:
	$(GO) run ./cmd/waggle-serve -self-check
	$(GO) run ./cmd/waggle-load -smoke -out /dev/null

# Streaming-trace gate: record a deterministic run to a
# waggle-stream/v1 file and prove the crash contract end to end — the
# stream replays to the un-streamed control's trace digest under both
# engines (byte-identical files), a spectator joining at the latest
# keyframe converges to the live end state, and a kill -9 mid-append
# loses at most the torn tail record (DESIGN.md §5j). Run under -race:
# the stream taps ride the step loop next to the parallel engine.
stream-check:
	$(GO) run -race ./cmd/waggle-sim -stream-check

# Stream-writer overhead run: ns/step with the waggle-stream/v1 writer
# attached vs detached at n up to 1,000,000, plus the spectate
# join-mid-stream latency. Writes BENCH_stream.json (schema
# waggle-bench-stream/v1; the streaming table in EXPERIMENTS.md).
bench-stream:
	$(GO) run ./cmd/waggle-bench -stream -out BENCH_stream.json

# Orchestrator gauntlet: the full chaos matrix under a queen with 4
# worker processes, one worker SIGKILLed while it holds a shard with
# banked checkpoint progress (forcing a lease expiry and a
# checkpoint-migrating steal), and the queen itself restarted from its
# journal mid-campaign. The merged report is sha256-compared against
# the single-process waggle-chaos run and must be byte-identical
# (DESIGN.md §5i).
queen-check:
	$(GO) run -race ./cmd/waggle-queen -self-check

# Orchestrator scaling run: the chaos matrix and a sweep campaign at 1
# vs 4 workers, plus a worker-kill run. Writes BENCH_queen.json (schema
# waggle-bench-queen/v1; the queen table in EXPERIMENTS.md).
bench-queen:
	$(GO) run ./cmd/waggle-queen -bench -bench-out BENCH_queen.json

# Full load run against an in-process daemon: 1000 concurrent sessions,
# mixed create/step/evict/resume traffic and an overload burst. Writes
# BENCH_serve.json (the serve table in EXPERIMENTS.md).
bench-serve:
	$(GO) run ./cmd/waggle-load -out BENCH_serve.json

# Known-vulnerability scan, skipped gracefully when govulncheck is not
# installed or its database is unreachable (offline CI).
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "vulncheck: scan failed (offline?); skipping"; \
	else \
		echo "vulncheck: govulncheck not installed; skipping"; \
	fi
