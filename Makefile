# Repo-level CI targets. `make verify` is the tier-1 gate: build, vet,
# and the full test suite under the race detector (the parallel step
# engine and the concurrent sweep harness are exercised by it).

GO ?= go

.PHONY: verify build vet test race bench

verify: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The speedup benchmarks for the parallel engine and sweep harness.
bench:
	$(GO) test -run xxx -bench 'BenchmarkStepParallel|BenchmarkSweepParallel' -benchmem .
