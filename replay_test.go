package waggle

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate testdata/golden.ckpt and testdata/golden.trace")

const (
	goldenCkptPath  = "testdata/golden.ckpt"
	goldenTracePath = "testdata/golden.trace"
)

// goldenReplayStack builds the committed replay scenario: a four-robot
// synchronous swarm under an active fault plan (crash, radio outage,
// jamming ramp), a fault-coupled radio, and a self-healing messenger.
// Everything is keyed by fixed seeds, so the execution is a constant of
// the codebase.
func goldenReplayStack(t *testing.T) faultedStack {
	t.Helper()
	return newFaultedStack(t, EngineSequential)
}

// goldenHead drives the scenario to the checkpoint instant — mid-plan,
// with messenger retries in flight.
func goldenHead(t *testing.T, st faultedStack) {
	t.Helper()
	faultedPhase1(t, st)
}

// goldenTail finishes the scenario from the checkpoint instant.
func goldenTail(t *testing.T, st faultedStack) {
	t.Helper()
	faultedPhase2(t, st)
}

func goldenTrace(t *testing.T, st faultedStack) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.swarm.WriteTraceCSV(&buf); err != nil {
		t.Fatalf("trace: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenReplay is `make replay-check`: the committed checkpoint
// artifact restores, replays, and — after running the scenario's tail
// — reproduces the committed movement trace byte-for-byte. A failure
// means the execution semantics drifted from what the artifact
// recorded; regenerate with -update-golden only for intentional
// protocol changes.
func TestGoldenReplay(t *testing.T) {
	if *updateGolden {
		st := goldenReplayStack(t)
		goldenHead(t, st)
		ck, err := st.swarm.Checkpoint()
		if err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenCkptPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := SaveCheckpoint(goldenCkptPath, ck); err != nil {
			t.Fatalf("save: %v", err)
		}
		goldenTail(t, st)
		if err := os.WriteFile(goldenTracePath, goldenTrace(t, st), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden artifacts regenerated: %s, %s", goldenCkptPath, goldenTracePath)
		return
	}

	wantTrace, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("missing golden trace (run `go test -run TestGoldenReplay -update-golden .`): %v", err)
	}

	// The live scenario still produces the committed trace...
	live := goldenReplayStack(t)
	goldenHead(t, live)
	goldenTail(t, live)
	if got := goldenTrace(t, live); !bytes.Equal(got, wantTrace) {
		t.Fatalf("live run diverged from the committed golden trace (%d vs %d bytes)", len(got), len(wantTrace))
	}

	// ...and so does the committed checkpoint, restored and resumed.
	ck, err := LoadCheckpoint(goldenCkptPath)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := Restore(ck)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if res.Radio == nil || res.Messenger == nil {
		t.Fatal("golden checkpoint restored without its radio or messenger")
	}
	st := faultedStack{swarm: res.Swarm, radio: res.Radio, bm: res.Messenger}
	goldenTail(t, st)
	if got := goldenTrace(t, st); !bytes.Equal(got, wantTrace) {
		t.Fatalf("resumed run diverged from the committed golden trace (%d vs %d bytes)", len(got), len(wantTrace))
	}
}
