// Command waggle-sweep runs the quantitative experiments of DESIGN.md §4
// (C3-C8 plus scaling sweeps) and prints their tables — the data
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	waggle-sweep                 # all experiments
//	waggle-sweep -exp levels     # one experiment
//	waggle-sweep -exp drift -csv # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"

	"waggle/internal/sweep"
)

func main() {
	exp := flag.String("exp", "", "experiment name (empty = all): levels|slices|drift|silence|backup|latency|msgsize")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()
	if err := run(*exp, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "waggle-sweep:", err)
		os.Exit(1)
	}
}

func run(exp string, csv bool) error {
	names := sweep.Names()
	if exp != "" {
		names = []string{exp}
	}
	for _, name := range names {
		tbl, err := sweep.Run(name)
		if err != nil {
			return err
		}
		fmt.Printf("== %s ==\n", name)
		if csv {
			fmt.Print(tbl.CSV())
		} else {
			fmt.Print(tbl.String())
		}
		fmt.Println()
	}
	return nil
}
