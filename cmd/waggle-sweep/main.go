// Command waggle-sweep runs the quantitative experiments of DESIGN.md §4
// (C3-C8 plus scaling sweeps) and prints their tables — the data
// recorded in EXPERIMENTS.md.
//
// Independent experiments run concurrently over a worker pool; the
// tables are always printed in request order, and the first failing
// experiment (in that order) aborts the command.
//
// Usage:
//
//	waggle-sweep                 # all experiments, GOMAXPROCS-way parallel
//	waggle-sweep -exp levels     # one experiment
//	waggle-sweep -exp drift -csv # machine-readable output
//	waggle-sweep -o sweep.json   # schema-stable JSON for CI diffing
//	waggle-sweep -workers 1      # serial execution
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"waggle/internal/ckpt"
	"waggle/internal/sweep"
)

func main() {
	exp := flag.String("exp", "", "experiment name (empty = all): levels|slices|drift|silence|backup|latency|msgsize|...")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	workers := flag.Int("workers", 0, "concurrent experiments (0 = GOMAXPROCS)")
	out := flag.String("o", "", "write the schema-stable JSON report to this file (- = stdout)")
	flag.Parse()
	if err := run(*exp, *csv, *workers, *out); err != nil {
		fmt.Fprintln(os.Stderr, "waggle-sweep:", err)
		os.Exit(1)
	}
}

func run(exp string, csv bool, workers int, out string) error {
	names := sweep.Names()
	if exp != "" {
		names = []string{exp}
	}
	results, err := sweep.RunAll(names, workers)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("== %s ==\n", r.Name)
		if csv {
			fmt.Print(r.Table.CSV())
		} else {
			fmt.Print(r.Table.String())
		}
		fmt.Println()
	}
	if out != "" {
		report := sweep.NewSweepReport()
		for _, r := range results {
			report.Add(r.Name, r.Table)
		}
		if err := writeReport(out, report); err != nil {
			return err
		}
	}
	return nil
}

// writeReport lands the report atomically (temp + fsync + rename):
// a reader — or a CI diff — never sees a torn file, even if the
// process dies mid-write.
func writeReport(path string, report *sweep.SweepReport) error {
	if path == "-" {
		return report.WriteJSON(os.Stdout)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		return err
	}
	return ckpt.WriteFileAtomic(path, buf.Bytes())
}
