package main

import "testing"

func TestRunOneExperiment(t *testing.T) {
	if err := run("silence", false, 1); err != nil {
		t.Error(err)
	}
	if err := run("levels", true, 0); err != nil {
		t.Error(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", false, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}
