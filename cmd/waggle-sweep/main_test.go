package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"waggle/internal/sweep"
)

func TestRunOneExperiment(t *testing.T) {
	if err := run("silence", false, 1, ""); err != nil {
		t.Error(err)
	}
	if err := run("levels", true, 0, ""); err != nil {
		t.Error(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", false, 1, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := run("silence", false, 1, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report sweep.SweepReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Schema != sweep.SweepReportSchema {
		t.Errorf("schema = %q, want %q", report.Schema, sweep.SweepReportSchema)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].Name != "silence" {
		t.Fatalf("experiments = %+v", report.Experiments)
	}
	if len(report.Experiments[0].Rows) == 0 || len(report.Experiments[0].Header) == 0 {
		t.Error("experiment table empty in report")
	}
}
