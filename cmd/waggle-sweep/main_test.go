package main

import "testing"

func TestRunOneExperiment(t *testing.T) {
	if err := run("silence", false); err != nil {
		t.Error(err)
	}
	if err := run("levels", true); err != nil {
		t.Error(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", false); err == nil {
		t.Error("unknown experiment accepted")
	}
}
