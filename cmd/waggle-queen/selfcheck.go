package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"waggle/internal/obs"
	"waggle/internal/queen"
	"waggle/internal/sweep"
)

// selfCheck is the orchestrator gauntlet the Makefile gates on: the
// full chaos matrix under 4 workers, with one worker SIGKILLed while
// it holds a shard with banked progress (forcing a lease expiry and a
// checkpoint-migrating steal) and the queen itself killed and
// restarted from its journal mid-campaign — and the merged report
// must still be byte-identical (sha256-compared) to the
// single-process waggle-chaos run.
func selfCheck(cfg config) error {
	ref, err := referenceReport(cfg.seed)
	if err != nil {
		return err
	}
	fmt.Printf("self-check: single-process reference %s (%d bytes)\n", digest(ref), len(ref))

	res, err := runDistributed(distOpts{
		spec:    queen.Spec{Kind: "chaos", Seed: cfg.seed, Engine: "sequential", CheckpointEvery: 80},
		workers: 4,
		stall:   150 * time.Millisecond,
		ttl:     1500 * time.Millisecond,
		kill:    true,
		restart: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("self-check: distributed report    %s (%d bytes) in %.1fs; killed %s; counters %v\n",
		digest(res.report), len(res.report), res.elapsed.Seconds(), res.killed, res.counters)
	if !bytes.Equal(res.report, ref) {
		return fmt.Errorf("self-check: merged report diverges from the single-process run (%s vs %s)",
			digest(res.report), digest(ref))
	}
	if res.counters["lease_expired"] < 1 {
		return fmt.Errorf("self-check: SIGKILL did not surface as a lease expiry")
	}
	if res.counters["stolen"] < 1 {
		return fmt.Errorf("self-check: no shard was stolen with migrated progress")
	}
	fmt.Println("self-check ok: kill + steal + queen restart, merged report byte-identical")
	return nil
}

// referenceReport renders the single-process chaos report for the full
// matrix — the oracle every distributed run is compared against. The
// sequential engine keeps the oracle itself beyond suspicion.
func referenceReport(seed int64) ([]byte, error) {
	engine, err := sweep.ParseEngineMode("sequential")
	if err != nil {
		return nil, err
	}
	report, err := sweep.ChaosReportFor("", seed, engine, nil)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func digest(b []byte) string {
	return fmt.Sprintf("sha256:%x", sha256.Sum256(b))[:23]
}

// distOpts shapes one distributed campaign run.
type distOpts struct {
	spec    queen.Spec
	workers int
	stall   time.Duration
	ttl     time.Duration
	kill    bool // SIGKILL one worker once it banks a snapshot
	restart bool // restart the queen from its journal after the steal
}

// distResult is what a distributed run yields.
type distResult struct {
	elapsed  time.Duration
	report   []byte
	counters map[string]int64
	killed   string
}

// runDistributed stands up a queen on a loopback port, spawns local
// worker processes, optionally injects a worker SIGKILL and a queen
// restart, and waits for the merged report.
func runDistributed(o distOpts) (*distResult, error) {
	dir, err := os.MkdirTemp("", "waggle-queen-check-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	journal := filepath.Join(dir, "queen.journal")
	out := filepath.Join(dir, "report.json")

	opts := queen.Options{
		Spec:     o.spec,
		Journal:  journal,
		Out:      out,
		LeaseTTL: o.ttl,
	}
	ob := obs.New(1024)
	q, err := queen.New(opts, ob)
	if err != nil {
		return nil, err
	}
	q.Start()
	mux := obs.Mux(ob)
	q.Mount(mux)
	addr, stopHTTP, err := obs.ServeWith("127.0.0.1:0", mux, obs.ServeOptions{})
	if err != nil {
		q.Stop()
		return nil, err
	}
	base := fmt.Sprintf("http://%s", addr)
	start := time.Now()

	procs, err := spawnWorkers(base, o.workers, o.stall)
	if err != nil {
		stopHTTP()
		q.Stop()
		return nil, err
	}
	defer reapWorkers(procs)

	res := &distResult{counters: map[string]int64{}}
	deadline := time.Now().Add(4 * time.Minute)

	if o.kill {
		victim, err := killSnapshottedWorker(base, procs, deadline)
		if err != nil {
			stopHTTP()
			q.Stop()
			return nil, err
		}
		res.killed = victim
		// Wait for the death to be observed (lease expiry) and the
		// shard re-granted with the dead worker's progress (steal).
		if err := waitCounters(q, deadline, "lease_expired", "stolen"); err != nil {
			stopHTTP()
			q.Stop()
			return nil, err
		}
	}

	if o.restart {
		// Kill the queen mid-campaign: drop the listener, discard the
		// in-memory task graph, and rebuild from the journal on the
		// same address. Workers ride it out on their retry policies.
		for k, v := range q.Counters() {
			res.counters[k] += v
		}
		stopHTTP()
		q.Stop()
		ob = obs.New(1024)
		q, err = queen.NewFromJournal(journal, queen.Options{Out: out, LeaseTTL: o.ttl}, ob)
		if err != nil {
			return nil, err
		}
		q.Start()
		mux = obs.Mux(ob)
		q.Mount(mux)
		_, stopHTTP, err = obs.ServeWith(addr.String(), mux, obs.ServeOptions{})
		if err != nil {
			q.Stop()
			return nil, fmt.Errorf("rebind %s after queen restart: %w", addr, err)
		}
	}

	select {
	case <-q.Done():
	case <-time.After(time.Until(deadline)):
		stopHTTP()
		q.Stop()
		return nil, fmt.Errorf("campaign did not finish within the deadline")
	}
	res.elapsed = time.Since(start)
	// Drain workers before dropping the endpoint: each exits cleanly on
	// its next lease (done:true) instead of burning its retry budget
	// against a dead port.
	reapWorkers(procs)
	stopHTTP()
	defer q.Stop()
	if err := q.Err(); err != nil {
		return nil, err
	}
	for k, v := range q.Counters() {
		res.counters[k] += v
	}
	res.report = append([]byte(nil), q.Report()...)
	return res, nil
}

// killSnapshottedWorker polls the status endpoint until some worker
// holds a lease with banked progress, then SIGKILLs that worker's
// process — mid-shard by construction.
func killSnapshottedWorker(base string, procs []*workerProc, deadline time.Time) (string, error) {
	byName := map[string]*workerProc{}
	for _, p := range procs {
		byName[p.name] = p
	}
	for time.Now().Before(deadline) {
		st, err := statusOf(base)
		if err == nil {
			for _, sh := range st.Shards {
				if sh.State == "leased" && sh.HasSnapshot {
					p, ok := byName[sh.Worker]
					if !ok {
						continue
					}
					if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
						return "", fmt.Errorf("SIGKILL %s: %w", sh.Worker, err)
					}
					return sh.Worker, nil
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return "", fmt.Errorf("no worker banked a snapshot before the deadline")
}

// waitCounters blocks until every named campaign counter is nonzero.
func waitCounters(q *queen.Queen, deadline time.Time, names ...string) error {
	for time.Now().Before(deadline) {
		c := q.Counters()
		ok := true
		for _, n := range names {
			if c[n] < 1 {
				ok = false
			}
		}
		if ok {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("counters %v did not fire before the deadline: %v", names, q.Counters())
}

func statusOf(base string) (*queen.StatusResponse, error) {
	resp, err := http.Get(base + "/queen/v1/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st queen.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
