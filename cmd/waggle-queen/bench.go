package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"waggle/internal/ckpt"
	"waggle/internal/queen"
	"waggle/internal/sweep"
)

// benchReport is the committed BENCH_queen.json shape: 1-vs-4-worker
// wall time on the full chaos matrix and on a sweep campaign, plus a
// kill run proving fault tolerance costs correctness nothing. The two
// scaling groups bracket the orchestrator's regime: chaos shards are
// milliseconds each, so dispatch overhead dominates and distribution
// roughly breaks even; sweep experiments are heavy enough that the
// campaign tracks its critical path instead of its total work.
type benchReport struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Engine string `json:"engine"`
	// CPUs is the host's logical CPU count: on a single-CPU host the
	// worker processes time-share and speedup necessarily pins near
	// 1.0 — read the scaling numbers against this.
	CPUs         int        `json:"cpus"`
	ChaosRuns    []benchRun `json:"chaos_runs"`
	ChaosSpeedup float64    `json:"chaos_speedup"`
	SweepNames   []string   `json:"sweep_names"`
	SweepRuns    []benchRun `json:"sweep_runs"`
	SweepSpeedup float64    `json:"sweep_speedup"`
	Kill         benchKill  `json:"kill"`
}

// benchRun is one clean campaign.
type benchRun struct {
	Workers         int     `json:"workers"`
	Shards          int     `json:"shards"`
	Seconds         float64 `json:"seconds"`
	ReportIdentical bool    `json:"report_identical"`
}

// benchKill is the fault-injected chaos campaign: one worker
// SIGKILLed mid-shard, its progress stolen by a peer.
type benchKill struct {
	Workers         int     `json:"workers"`
	KilledWorker    string  `json:"killed_worker"`
	Seconds         float64 `json:"seconds"`
	LeaseExpired    int64   `json:"lease_expired"`
	Stolen          int64   `json:"stolen"`
	ReportIdentical bool    `json:"report_identical"`
}

const benchSchema = "waggle-bench-queen/v1"

// benchSweepNames are medium-weight experiments (the second-scale
// ones; "resolution" alone takes ~50s and would reduce any scaling
// measurement to its own runtime).
var benchSweepNames = []string{"slices", "visibility", "latency", "msgsize", "levels", "onetoall", "throughput", "silence"}

// runBench measures the scaling groups and the kill run, verifying
// every merged report against the single-process oracle, and writes
// the results to -bench-out.
func runBench(cfg config) error {
	chaosRef, err := referenceReport(cfg.seed)
	if err != nil {
		return err
	}
	sweepRef, err := sweepReference(benchSweepNames)
	if err != nil {
		return err
	}
	report := benchReport{
		Schema:     benchSchema,
		Seed:       cfg.seed,
		Engine:     "sequential",
		CPUs:       runtime.NumCPU(),
		SweepNames: benchSweepNames,
	}

	chaosSpec := queen.Spec{Kind: "chaos", Seed: cfg.seed, Engine: "sequential", CheckpointEvery: 400}
	report.ChaosRuns, err = benchScaling("chaos", chaosSpec, len(sweep.ChaosScenarioNames(cfg.seed)), chaosRef)
	if err != nil {
		return err
	}
	report.ChaosSpeedup = round3(report.ChaosRuns[0].Seconds / report.ChaosRuns[1].Seconds)

	sweepSpec := queen.Spec{Kind: "sweep", Names: benchSweepNames}
	report.SweepRuns, err = benchScaling("sweep", sweepSpec, len(benchSweepNames), sweepRef)
	if err != nil {
		return err
	}
	report.SweepSpeedup = round3(report.SweepRuns[0].Seconds / report.SweepRuns[1].Seconds)

	kill, err := runDistributed(distOpts{
		spec:    queen.Spec{Kind: "chaos", Seed: cfg.seed, Engine: "sequential", CheckpointEvery: 80},
		workers: 4,
		stall:   100 * time.Millisecond,
		ttl:     1500 * time.Millisecond,
		kill:    true,
	})
	if err != nil {
		return fmt.Errorf("bench kill run: %w", err)
	}
	identical := bytes.Equal(kill.report, chaosRef)
	report.Kill = benchKill{
		Workers:         4,
		KilledWorker:    kill.killed,
		Seconds:         round3(kill.elapsed.Seconds()),
		LeaseExpired:    kill.counters["lease_expired"],
		Stolen:          kill.counters["stolen"],
		ReportIdentical: identical,
	}
	fmt.Printf("bench: kill run %.2fs killed=%s lease_expired=%d stolen=%d identical=%v\n",
		kill.elapsed.Seconds(), kill.killed, report.Kill.LeaseExpired, report.Kill.Stolen, identical)
	if !identical {
		return fmt.Errorf("bench kill run: merged report diverges from the single-process run")
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := ckpt.WriteFileAtomic(cfg.benchOut, append(data, '\n')); err != nil {
		return err
	}
	fmt.Printf("bench report written to %s\n", cfg.benchOut)
	return nil
}

// benchScaling runs one campaign under 1 and 4 workers, checking each
// merged report against ref.
func benchScaling(label string, spec queen.Spec, shards int, ref []byte) ([]benchRun, error) {
	var runs []benchRun
	for _, workers := range []int{1, 4} {
		res, err := runDistributed(distOpts{spec: spec, workers: workers, ttl: 30 * time.Second})
		if err != nil {
			return nil, fmt.Errorf("bench %s %d workers: %w", label, workers, err)
		}
		identical := bytes.Equal(res.report, ref)
		runs = append(runs, benchRun{
			Workers:         workers,
			Shards:          shards,
			Seconds:         round3(res.elapsed.Seconds()),
			ReportIdentical: identical,
		})
		fmt.Printf("bench: %s %d worker(s) %.2fs identical=%v\n", label, workers, res.elapsed.Seconds(), identical)
		if !identical {
			return nil, fmt.Errorf("bench %s %d workers: merged report diverges from the single-process run", label, workers)
		}
	}
	return runs, nil
}

// sweepReference renders the single-process sweep report for names.
func sweepReference(names []string) ([]byte, error) {
	ref := sweep.NewSweepReport()
	for _, n := range names {
		tbl, err := sweep.Run(n)
		if err != nil {
			return nil, err
		}
		ref.Add(n, tbl)
	}
	var buf bytes.Buffer
	if err := ref.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }
