// Command waggle-queen is the distributed campaign orchestrator: it
// decomposes a chaos matrix or a parameter sweep into shards, leases
// them to workers over HTTP, steals checkpoint-migrated progress from
// dead workers, and merges the results into a report byte-identical
// to the single-process waggle-chaos / waggle-sweep run.
//
// Usage:
//
//	waggle-queen -campaign chaos -workers 4 -o report.json
//	waggle-queen -campaign sweep -names silence,drift -workers 2 -o sweep.json
//	waggle-queen -journal q.journal -campaign chaos -workers 4   # crash-restartable
//	waggle-queen -worker -join http://host:9090 -name w0         # remote worker
//	waggle-queen -listen :9090 -campaign chaos                   # serve workers + /metrics
//	waggle-queen -self-check                                     # kill/steal/restart gauntlet
//	waggle-queen -bench                                          # 1-vs-N scaling to BENCH_queen.json
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"waggle/internal/obs"
	"waggle/internal/queen"
)

// config carries the parsed flags.
type config struct {
	campaign  string // -campaign: chaos|sweep
	names     string // -names: comma-separated shard names (empty = all chaos scenarios)
	seed      int64
	engine    string
	workers   int    // -workers: local worker processes to spawn
	listen    string // -listen: queen API + observability address
	out       string // -o: merged report path
	journal   string // -journal: task-graph journal (enables restart-resume)
	leaseTTL  time.Duration
	attempts  int
	ckptEvery int

	worker bool   // -worker: run as a worker process
	join   string // -join: queen base URL for -worker
	name   string // -name: worker name
	stall  time.Duration

	selfCheck bool
	bench     bool
	benchOut  string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.campaign, "campaign", "chaos", "campaign kind: chaos|sweep")
	flag.StringVar(&cfg.names, "names", "", "comma-separated shard names (empty = every chaos scenario)")
	flag.Int64Var(&cfg.seed, "seed", 1, "campaign seed")
	flag.StringVar(&cfg.engine, "engine", "auto", "step engine: auto|sequential|parallel")
	flag.IntVar(&cfg.workers, "workers", 2, "local worker processes to spawn (0 = external workers only)")
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:0", "queen API and observability address")
	flag.StringVar(&cfg.out, "o", "", "write the merged report to this file")
	flag.StringVar(&cfg.journal, "journal", "", "task-graph journal path; an existing journal resumes its campaign")
	flag.DurationVar(&cfg.leaseTTL, "lease-ttl", 10*time.Second, "lease duration without a heartbeat")
	flag.IntVar(&cfg.attempts, "shard-attempts", 5, "grants of one shard before the campaign fails")
	flag.IntVar(&cfg.ckptEvery, "ckpt-every", 200, "chaos shard snapshot cadence in simulated instants")
	flag.BoolVar(&cfg.worker, "worker", false, "run as a worker process")
	flag.StringVar(&cfg.join, "join", "", "queen base URL to join (with -worker)")
	flag.StringVar(&cfg.name, "name", "", "worker name (with -worker)")
	flag.DurationVar(&cfg.stall, "stall", 0, "worker dwell after each banked snapshot (test hook)")
	flag.BoolVar(&cfg.selfCheck, "self-check", false, "run the kill/steal/restart gauntlet and exit")
	flag.BoolVar(&cfg.bench, "bench", false, "benchmark 1-vs-N workers and a worker-kill run")
	flag.StringVar(&cfg.benchOut, "bench-out", "BENCH_queen.json", "benchmark report path (with -bench)")
	flag.Parse()

	var err error
	switch {
	case cfg.worker:
		err = runWorker(cfg)
	case cfg.selfCheck:
		err = selfCheck(cfg)
	case cfg.bench:
		err = runBench(cfg)
	default:
		err = runQueen(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "waggle-queen:", err)
		os.Exit(1)
	}
}

func runWorker(cfg config) error {
	if cfg.join == "" {
		return fmt.Errorf("-worker requires -join")
	}
	return queen.RunWorker(queen.WorkerOptions{
		Base:  strings.TrimRight(cfg.join, "/"),
		Name:  cfg.name,
		Stall: cfg.stall,
	})
}

// specFrom derives the campaign spec from flags.
func specFrom(cfg config) queen.Spec {
	spec := queen.Spec{
		Kind:            cfg.campaign,
		Seed:            cfg.seed,
		Engine:          cfg.engine,
		CheckpointEvery: cfg.ckptEvery,
	}
	if cfg.names != "" {
		spec.Names = strings.Split(cfg.names, ",")
	}
	return spec
}

// newQueen builds (or resumes, when the journal already exists) the
// queen for cfg.
func newQueen(cfg config, ob *obs.Observer) (*queen.Queen, error) {
	opts := queen.Options{
		Spec:          specFrom(cfg),
		Journal:       cfg.journal,
		Out:           cfg.out,
		LeaseTTL:      cfg.leaseTTL,
		ShardAttempts: cfg.attempts,
	}
	if cfg.journal != "" {
		if st, err := os.Stat(cfg.journal); err == nil && st.Size() > 0 {
			fmt.Printf("resuming campaign from %s\n", cfg.journal)
			return queen.NewFromJournal(cfg.journal, opts, ob)
		}
	}
	return queen.New(opts, ob)
}

// runQueen is the coordinator path: serve the worker API, spawn local
// workers, wait for the merge.
func runQueen(cfg config) error {
	ob := obs.New(4096)
	q, err := newQueen(cfg, ob)
	if err != nil {
		return err
	}
	q.Start()
	defer q.Stop()

	mux := obs.Mux(ob)
	q.Mount(mux)
	addr, stopHTTP, err := obs.ServeWith(cfg.listen, mux, obs.ServeOptions{})
	if err != nil {
		return err
	}
	defer stopHTTP()
	base := fmt.Sprintf("http://%s", addr)
	fmt.Printf("queen serving on %s\n", base)

	procs, err := spawnWorkers(base, cfg.workers, cfg.stall)
	if err != nil {
		return err
	}
	defer reapWorkers(procs)

	<-q.Done()
	if err := q.Err(); err != nil {
		return err
	}
	printCounters(q.Counters())
	if cfg.out != "" {
		fmt.Printf("merged report written to %s (%d bytes)\n", cfg.out, len(q.Report()))
	}
	return nil
}

func printCounters(c map[string]int64) {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, c[k]))
	}
	fmt.Printf("campaign complete: %s\n", strings.Join(parts, " "))
}

// workerProc is one spawned local worker.
type workerProc struct {
	name string
	cmd  *exec.Cmd
}

// spawnWorkers launches n local worker processes of this same binary
// against base.
func spawnWorkers(base string, n int, stall time.Duration) ([]*workerProc, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	procs := make([]*workerProc, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("w%d", i)
		args := []string{"-worker", "-join", base, "-name", name}
		if stall > 0 {
			args = append(args, "-stall", stall.String())
		}
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			reapWorkers(procs)
			return nil, fmt.Errorf("spawn worker %s: %w", name, err)
		}
		procs = append(procs, &workerProc{name: name, cmd: cmd})
	}
	return procs, nil
}

// reapWorkers waits briefly for workers to exit on their own (they do,
// once the campaign is done) and kills stragglers.
func reapWorkers(procs []*workerProc) {
	done := make(chan struct{})
	go func() {
		for _, p := range procs {
			p.cmd.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		for _, p := range procs {
			if p.cmd.Process != nil {
				p.cmd.Process.Kill()
			}
		}
		<-done
	}
}
