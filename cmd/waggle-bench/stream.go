package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"waggle/internal/ckpt"
	"waggle/internal/geom"
	"waggle/internal/sim"
	"waggle/internal/wire"
)

// streamSchema identifies the BENCH_stream.json layout.
const streamSchema = "waggle-bench-stream/v1"

// StreamResult is one streamed-vs-not step measurement.
type StreamResult struct {
	// Name is "stream-step/off" (bare step loop) or "stream-step/on"
	// (identical loop with a waggle-stream/v1 writer tapping it).
	Name string `json:"name"`
	// N is the swarm size.
	N int `json:"n"`
	// Steps is how many instants were timed (after warm-up).
	Steps int `json:"steps"`
	// NsPerStep is wall time per instant.
	NsPerStep float64 `json:"ns_per_step"`
	// StreamBytes is the stream file size after the timed steps (0 for
	// the off variant); BytesPerStep is the appended stream volume per
	// timed instant.
	StreamBytes  int64   `json:"stream_bytes,omitempty"`
	BytesPerStep float64 `json:"bytes_per_step,omitempty"`
}

// StreamOverhead is the on-vs-off cost at one size — the acceptance
// number (<= 5% at n=100k).
type StreamOverhead struct {
	N int `json:"n"`
	// Percent is 100*(on-off)/off in ns/step.
	Percent float64 `json:"percent"`
}

// StreamJoin measures a spectator joining mid-stream: read the file,
// seek the latest keyframe, decode the tail from there.
type StreamJoin struct {
	// N and Steps describe the recorded run; FileBytes its stream.
	N         int   `json:"n"`
	Steps     int   `json:"steps"`
	FileBytes int64 `json:"file_bytes"`
	// Records is how many records a -1 join decodes (keyframe + tail);
	// NsPerJoin is wall time per join, file read included.
	Records   int     `json:"records"`
	NsPerJoin float64 `json:"ns_per_join"`
}

// StreamBench is the BENCH_stream.json document.
type StreamBench struct {
	Schema     string           `json:"schema"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Results    []StreamResult   `json:"results"`
	Overheads  []StreamOverhead `json:"overheads"`
	Join       *StreamJoin      `json:"join"`
	Notes      []string         `json:"notes"`
}

// benchTap mirrors the facade's stream tap (waggle.StreamWriter) at the
// sim.World layer the big sizes require — the chatting protocols cannot
// step a million-robot swarm, so the overhead is measured on the same
// engine workload BENCH_step.json uses. It stages every applied move
// and appends one step record per instant, with the same keyframe
// cadence the facade uses.
type benchTap struct {
	w        *wire.StreamWriter
	world    *sim.World
	moves    []wire.StreamMove
	sinceKey int
	err      error
}

func (t *benchTap) RecordMove(tm, robot int, to geom.Point) {
	t.moves = append(t.moves, wire.StreamMove{Robot: robot, To: ckpt.XY{X: to.X, Y: to.Y}})
}

func (t *benchTap) EndStep(tm int, active []int) {
	if t.err != nil {
		t.moves = t.moves[:0]
		return
	}
	if err := t.w.AppendStep(tm, t.moves, active, nil, nil); err != nil {
		t.err = err
	}
	t.moves = t.moves[:0]
	if t.sinceKey++; t.sinceKey >= t.w.Cadence() && t.err == nil {
		t.sinceKey = 0
		t.err = t.w.AppendKeyframe(tm+1, worldXY(t.world), 0, "")
	}
}

func worldXY(w *sim.World) []ckpt.XY {
	pts := w.Positions()
	out := make([]ckpt.XY, len(pts))
	for i, p := range pts {
		out[i] = ckpt.XY{X: p.X, Y: p.Y}
	}
	return out
}

// measureStreamStep times `steps` synchronous instants of the
// BENCH_step workload (uniform density, centroid drift, parallel
// engine), bare or with a stream writer attached. Both variants build
// the identical world and run the identical trajectory, so the delta
// is the stream tap alone.
func measureStreamStep(n int, path string, steps, warm int) (StreamResult, error) {
	w, err := stepWorld(n, true)
	if err != nil {
		return StreamResult{}, err
	}
	name := "stream-step/off"
	var tap *benchTap
	var startOff int64
	if path != "" {
		name = "stream-step/on"
		sw, err := wire.OpenStream(path, n, 0, 0)
		if err != nil {
			return StreamResult{}, err
		}
		defer sw.Close()
		// The attach-time keyframe, exactly as the facade writes it.
		if err := sw.AppendKeyframe(0, worldXY(w), 0, ""); err != nil {
			return StreamResult{}, err
		}
		tap = &benchTap{w: sw, world: w}
		w.SetStreamSink(tap)
	}
	for s := 0; s < warm; s++ {
		if _, err := w.Step(sim.Synchronous{}); err != nil {
			return StreamResult{}, err
		}
	}
	if tap != nil {
		startOff = tap.w.Offset()
	}
	t0 := time.Now()
	for s := 0; s < steps; s++ {
		if _, err := w.Step(sim.Synchronous{}); err != nil {
			return StreamResult{}, err
		}
	}
	dur := time.Since(t0)
	res := StreamResult{
		Name:      name,
		N:         n,
		Steps:     steps,
		NsPerStep: float64(dur.Nanoseconds()) / float64(steps),
	}
	if tap != nil {
		if tap.err != nil {
			return StreamResult{}, tap.err
		}
		if err := tap.w.Sync(); err != nil {
			return StreamResult{}, err
		}
		res.StreamBytes = tap.w.Offset()
		res.BytesPerStep = float64(tap.w.Offset()-startOff) / float64(steps)
	}
	return res, nil
}

// measureJoin records a long small-swarm stream (long enough that the
// keyframe cadence has fired and a -1 join skips most of the file),
// then times the full spectator join path: read the file, locate the
// latest keyframe, decode from there.
func measureJoin(dir string, n, steps int) (*StreamJoin, error) {
	w, err := stepWorld(n, true)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "join.wstream")
	sw, err := wire.OpenStream(path, n, 0, 0)
	if err != nil {
		return nil, err
	}
	defer sw.Close()
	if err := sw.AppendKeyframe(0, worldXY(w), 0, ""); err != nil {
		return nil, err
	}
	tap := &benchTap{w: sw, world: w}
	w.SetStreamSink(tap)
	for s := 0; s < steps; s++ {
		if _, err := w.Step(sim.Synchronous{}); err != nil {
			return nil, err
		}
	}
	if tap.err != nil {
		return nil, tap.err
	}
	if err := sw.Sync(); err != nil {
		return nil, err
	}
	join := &StreamJoin{N: n, Steps: steps, FileBytes: sw.Offset()}
	const iters = 50
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		recs, _, _, err := wire.TailStream(data, -1, 0)
		if err != nil {
			return nil, err
		}
		join.Records = len(recs)
	}
	join.NsPerJoin = float64(time.Since(t0).Nanoseconds()) / float64(iters)
	if join.Records == 0 || join.Records > steps+2 {
		return nil, fmt.Errorf("join decoded %d records from a %d-step stream, want a keyframe plus a short tail", join.Records, steps)
	}
	return join, nil
}

// streamCounts picks (steps, warm) per size so the big sizes stay
// tractable while the on/off delta stays above timer noise.
func streamCounts(n int) (steps, warm int) {
	switch {
	case n <= 10_000:
		return 40, 5
	case n <= 100_000:
		return 12, 3
	default:
		return 3, 1
	}
}

// runStream executes the stream-writer overhead benchmark and writes
// BENCH_stream.json. In smoke mode it runs one tiny paired measurement,
// verifies the recorded stream decodes to the stepped instants, and
// writes nothing.
func runStream(out string, smoke bool) error {
	sizes := []int{10_000, 100_000, 1_000_000}
	if smoke {
		sizes = []int{2_000}
	}
	dir, err := os.MkdirTemp("", "waggle-bench-stream-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bench := StreamBench{Schema: streamSchema, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, n := range sizes {
		steps, warm := streamCounts(n)
		if smoke {
			steps, warm = 4, 1
		}
		// Interleaved best-of-reps: a single off/on pair is dominated by
		// run-to-run engine variance at exactly the sizes where the tap
		// cost is smallest, so each variant keeps its fastest rep.
		reps := 3
		if smoke {
			reps = 1
		}
		var off, on StreamResult
		var path string
		for rep := 0; rep < reps; rep++ {
			o, err := measureStreamStep(n, "", steps, warm)
			if err != nil {
				return fmt.Errorf("stream-step/off n=%d: %w", n, err)
			}
			if rep == 0 || o.NsPerStep < off.NsPerStep {
				off = o
			}
			path = filepath.Join(dir, fmt.Sprintf("bench-%d-%d.wstream", n, rep))
			s, err := measureStreamStep(n, path, steps, warm)
			if err != nil {
				return fmt.Errorf("stream-step/on n=%d: %w", n, err)
			}
			if rep == 0 || s.NsPerStep < on.NsPerStep {
				on = s
			}
		}
		if smoke {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			recs, torn, err := wire.DecodeStream(data)
			if err != nil || torn {
				return fmt.Errorf("smoke n=%d: recorded stream does not decode cleanly (torn=%v): %v", n, torn, err)
			}
			streps := 0
			for _, rec := range recs {
				if rec.Kind == wire.StreamStep {
					streps++
				}
			}
			if streps != steps+warm {
				return fmt.Errorf("smoke n=%d: stream holds %d step records, want %d", n, streps, steps+warm)
			}
			fmt.Printf("smoke stream-step n=%d ok (%d step records, %d B)\n", n, streps, len(data))
			continue
		}
		bench.Results = append(bench.Results, off, on)
		pct := 100 * (on.NsPerStep - off.NsPerStep) / off.NsPerStep
		bench.Overheads = append(bench.Overheads, StreamOverhead{N: n, Percent: pct})
		fmt.Printf("%-16s n=%-8d %14.0f ns/step  (%d steps)\n", off.Name, n, off.NsPerStep, off.Steps)
		fmt.Printf("%-16s n=%-8d %14.0f ns/step  %10.0f B/step\n", on.Name, n, on.NsPerStep, on.BytesPerStep)
		fmt.Printf("overhead         n=%-8d %13.2f%%\n", n, pct)
	}
	if smoke {
		joinSteps := 20
		join, err := measureJoin(dir, 500, joinSteps)
		if err != nil {
			return fmt.Errorf("spectate-join smoke: %w", err)
		}
		fmt.Printf("smoke spectate-join ok (%d records, %.0f ns/join)\n", join.Records, join.NsPerJoin)
		return nil
	}

	// Spectate join: 600 steps at the keyframe cadence of 256 leaves the
	// latest keyframe at instant 512, so a -1 join decodes ~90 records
	// out of ~600 — the mid-stream entry the format exists for.
	join, err := measureJoin(dir, 1_000, 600)
	if err != nil {
		return fmt.Errorf("spectate-join: %w", err)
	}
	bench.Join = join
	fmt.Printf("spectate-join    n=%-8d %14.0f ns/join (%d of %d+ records decoded, %d B file)\n",
		join.N, join.NsPerJoin, join.Records, join.Steps, join.FileBytes)

	bench.Notes = []string{
		"workload: the BENCH_step synchronous trajectory (uniform density, centroid drift, parallel engine) — every robot moves every instant, the stream's worst case; on/off runs build identical worlds and execute identical trajectories, so the delta is the stream tap alone",
		"the on variant attaches a waggle-stream/v1 writer exactly as the facade does (attach-time keyframe, one step record per instant, keyframe every 256 steps, fsync batched every 64 records); deliveries and fault events are absent from this workload, as they are from any pure-movement run",
		"overhead percent is 100*(on-off)/off in ns/step, each variant the fastest of 3 interleaved reps; a small or negative percentage means the tap cost sits below residual engine variance at that size",
		"join is the spectator entry path: os.ReadFile + TailStream(-1) (locate the latest self-describing keyframe, decode only the tail), averaged over 50 joins",
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results)\n", out, len(bench.Results))
	return nil
}
