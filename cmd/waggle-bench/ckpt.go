package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"waggle"
)

// ckptSchema identifies the BENCH_ckpt.json layout.
const ckptSchema = "waggle-bench-ckpt/v1"

// ckptSparse is the number of robots whose state changes per delta
// save interval — the sparse workload delta checkpoints are built for.
// The interval mutations go through the recorded Send API (cheap, and
// exactly what a checkpoint must replay); the chatting protocols
// themselves cannot step a million-robot swarm at all, since every
// activation recomputes the full swarm geometry (O(n^2 log n) per
// robot under SEC naming), so position churn at these sizes is
// exercised by the chaos property tests at protocol scale instead.
const ckptSparse = 16

// CkptResult is one checkpoint-codec measurement at one swarm size.
type CkptResult struct {
	// N is the swarm size.
	N int `json:"n"`
	// Codec is "json" (v1 envelope), "binary" (v2 wire format, full
	// snapshot) or "delta" (v2 base + per-save delta frames; SaveNs and
	// Bytes are the per-interval delta cost, not the base).
	Codec string `json:"codec"`
	// Iterations is how many saves (and restores) were averaged.
	Iterations int `json:"iterations"`
	// SaveNs is wall time per save: state capture + encode + durable
	// write (fsync). For "delta" it is the incremental append.
	SaveNs float64 `json:"save_ns"`
	// RestoreNs is wall time to load the file and rebuild a verified
	// swarm from it (decode + chain fold + replay + state recapture +
	// deep-equal check).
	RestoreNs float64 `json:"restore_ns"`
	// Bytes is the size of one save: the whole file for json/binary,
	// the appended delta frame for delta.
	Bytes int64 `json:"bytes"`
	// FileBytes is the on-disk file size after the measured saves (for
	// delta: base frame + the whole chain).
	FileBytes int64 `json:"file_bytes"`
}

// CkptBench is the BENCH_ckpt.json document.
type CkptBench struct {
	Schema  string       `json:"schema"`
	Results []CkptResult `json:"results"`
	Notes   []string     `json:"notes"`
}

// ckptSwarm builds the benchmark swarm at uniform density and seeds it
// with some queued traffic so the captured state is not a blank slate:
// endpoint outboxes, a recorded input log the restore must replay.
func ckptSwarm(n int) (*waggle.Swarm, error) {
	rng := rand.New(rand.NewSource(int64(31 + n)))
	side := math.Sqrt(float64(n)) * 10
	pts := make([]waggle.Point, n)
	for i := range pts {
		pts[i] = waggle.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	s, err := waggle.NewSwarm(pts, waggle.WithSeed(1))
	if err != nil {
		return nil, err
	}
	if err := mutate(s, 0); err != nil {
		return nil, err
	}
	return s, nil
}

// mutate changes the state of ckptSparse robots through the public
// (recorded) API — the sparse per-interval churn between delta saves.
func mutate(s *waggle.Swarm, interval int) error {
	n := s.N()
	for k := 0; k < ckptSparse; k++ {
		from := (interval*ckptSparse + k) % n
		to := (from + 1) % n
		if err := s.Send(from, to, []byte{byte(interval), byte(k)}); err != nil {
			return err
		}
	}
	return nil
}

// measureFull times full-snapshot saves and restores for json or
// binary through the same writer the CLI uses.
func measureFull(s *waggle.Swarm, n int, codec waggle.CheckpointCodec, iters int, dir string) (CkptResult, error) {
	path := filepath.Join(dir, fmt.Sprintf("ckpt-%d.%s", n, codec))
	cw, err := s.NewCheckpointWriter(path, codec)
	if err != nil {
		return CkptResult{}, err
	}
	var saveNs int64
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if err := cw.Save(); err != nil {
			return CkptResult{}, err
		}
		saveNs += time.Since(t0).Nanoseconds()
	}
	restoreNs, err := measureRestore(path, iters)
	if err != nil {
		return CkptResult{}, err
	}
	return CkptResult{
		N: n, Codec: codec.String(), Iterations: iters,
		SaveNs:    float64(saveNs) / float64(iters),
		RestoreNs: restoreNs,
		Bytes:     int64(cw.LastSaveBytes()),
		FileBytes: fileBytes(path),
	}, nil
}

// measureDelta times the incremental path: one base snapshot, then
// `iters` save intervals of a few sparse instants each, timing only the
// delta appends. The restore folds the whole chain.
func measureDelta(s *waggle.Swarm, n, iters int, dir string) (CkptResult, error) {
	path := filepath.Join(dir, fmt.Sprintf("ckpt-%d.delta", n))
	cw, err := s.NewCheckpointWriter(path, waggle.CodecDelta)
	if err != nil {
		return CkptResult{}, err
	}
	// First save writes the base frame; not part of the delta cost.
	if err := cw.Save(); err != nil {
		return CkptResult{}, err
	}
	var saveNs, bytes int64
	for i := 0; i < iters; i++ {
		// The save interval: sparse churn via the recorded API, untimed
		// — the benchmark isolates the checkpoint cost, not the workload.
		if err := mutate(s, i+1); err != nil {
			return CkptResult{}, err
		}
		t0 := time.Now()
		if err := cw.Save(); err != nil {
			return CkptResult{}, err
		}
		saveNs += time.Since(t0).Nanoseconds()
		if !cw.LastSaveWasDelta() {
			return CkptResult{}, fmt.Errorf("n=%d: save %d was not a delta (unexpected rebase)", n, i)
		}
		bytes += int64(cw.LastSaveBytes())
	}
	restoreNs, err := measureRestore(path, iters)
	if err != nil {
		return CkptResult{}, err
	}
	return CkptResult{
		N: n, Codec: waggle.CodecDelta.String(), Iterations: iters,
		SaveNs:    float64(saveNs) / float64(iters),
		RestoreNs: restoreNs,
		Bytes:     bytes / int64(iters),
		FileBytes: fileBytes(path),
	}, nil
}

// measureRestore times LoadCheckpoint + Restore (decode, chain fold,
// replay, recapture, deep-equal verification) averaged over iters.
func measureRestore(path string, iters int) (float64, error) {
	var total int64
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		ck, err := waggle.LoadCheckpoint(path)
		if err != nil {
			return 0, err
		}
		if _, err := waggle.Restore(ck); err != nil {
			return 0, err
		}
		total += time.Since(t0).Nanoseconds()
	}
	return float64(total) / float64(iters), nil
}

func fileBytes(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// ckptIters keeps the big sizes tractable on one core.
func ckptIters(n int) int {
	switch {
	case n <= 512:
		return 10
	case n <= 10_000:
		return 5
	case n <= 100_000:
		return 2
	default:
		return 1
	}
}

// runCkpt executes the checkpoint-codec benchmark and writes
// BENCH_ckpt.json. In smoke mode it runs n=10k once, asserts the
// headline ratios (binary ≤ 25% of JSON bytes; delta save ≥ 10x faster
// than a binary full save), and writes nothing.
func runCkpt(out string, smoke bool) error {
	sizes := []int{512, 10_000, 100_000, 1_000_000}
	if smoke {
		sizes = []int{10_000}
	}
	dir, err := os.MkdirTemp("", "waggle-bench-ckpt-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bench := CkptBench{Schema: ckptSchema}
	for _, n := range sizes {
		iters := ckptIters(n)
		if smoke {
			iters = 2
		}
		s, err := ckptSwarm(n)
		if err != nil {
			return fmt.Errorf("n=%d: build: %w", n, err)
		}
		var row [3]CkptResult
		for i, codec := range []waggle.CheckpointCodec{waggle.CodecJSON, waggle.CodecBinary} {
			res, err := measureFull(s, n, codec, iters, dir)
			if err != nil {
				return fmt.Errorf("n=%d %s: %w", n, codec, err)
			}
			row[i] = res
		}
		res, err := measureDelta(s, n, iters, dir)
		if err != nil {
			return fmt.Errorf("n=%d delta: %w", n, err)
		}
		row[2] = res
		for _, r := range row {
			bench.Results = append(bench.Results, r)
			fmt.Printf("%-7s n=%-8d save %12.0f ns  restore %12.0f ns  %10d B/save  (file %d B)\n",
				r.Codec, r.N, r.SaveNs, r.RestoreNs, r.Bytes, r.FileBytes)
		}
		jsonB, binB := row[0].Bytes, row[1].Bytes
		binSave, deltaSave := row[1].SaveNs, row[2].SaveNs
		fmt.Printf("ratio   n=%-8d binary/json bytes %5.1f%%   delta/full save %6.1fx faster\n",
			n, 100*float64(binB)/float64(jsonB), binSave/deltaSave)
		if smoke || n >= 10_000 {
			if binB*4 > jsonB {
				msg := fmt.Sprintf("n=%d: binary snapshot is %d B, more than 25%% of the %d B JSON snapshot", n, binB, jsonB)
				if smoke {
					return fmt.Errorf("%s", msg)
				}
				fmt.Println("WARNING:", msg)
			}
			if deltaSave*10 > binSave {
				msg := fmt.Sprintf("n=%d: delta save (%.0f ns) is not 10x faster than a binary full save (%.0f ns)", n, deltaSave, binSave)
				if smoke {
					return fmt.Errorf("%s", msg)
				}
				fmt.Println("WARNING:", msg)
			}
		}
	}
	if smoke {
		fmt.Println("smoke ckpt ok: binary <= 25% of JSON bytes, delta save >= 10x faster than full")
		return nil
	}
	bench.Notes = []string{
		fmt.Sprintf("workload: asynchronous anonymous swarm at uniform density; between delta saves %d robots change state through the recorded Send API — the sparse regime delta checkpoints target; position churn is exercised by the chaos resume tests at protocol scale, since the chatting protocols recompute the full swarm geometry per activation and cannot step at these sizes", ckptSparse),
		"save_ns covers state capture + encode + durable write (fsync before the atomic rename; O_APPEND + fsync for delta frames); restore_ns covers read + decode (+ chain fold) + input replay + state recapture + the deep-equal verification restore always performs",
		"delta rows report the per-interval appended frame in bytes and save_ns; file_bytes is the base frame plus the whole measured chain",
		"json is the v1 envelope kept for debuggability; binary is the waggle-ckpt/v2 wire format (varints, zig-zag position deltas, run-length input logs); delta appends waggle-ckpt/v2 delta frames holding only changed robots",
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results)\n", out, len(bench.Results))
	return nil
}
