// Command waggle-bench measures the spatial-index fast paths against
// their brute-force twins and writes the results as machine-readable
// JSON (BENCH_spatial.json) — the before/after evidence behind the
// EXPERIMENTS.md performance table.
//
// Usage:
//
//	waggle-bench                      # full run, writes BENCH_spatial.json
//	waggle-bench -out results.json    # full run, custom output path
//	waggle-bench -smoke               # run every scenario body once, write nothing
//	waggle-bench -step                # step-engine scaling run, writes BENCH_step.json
//	waggle-bench -step -smoke         # tiny step-engine run, write nothing
//	waggle-bench -ckpt                # checkpoint codec run, writes BENCH_ckpt.json
//	waggle-bench -ckpt -smoke         # n=10k ratio check, write nothing
//	waggle-bench -stream              # stream-writer overhead run, writes BENCH_stream.json
//	waggle-bench -stream -smoke       # tiny paired run + decode check, write nothing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"waggle/internal/geom"
	"waggle/internal/sim"
	"waggle/internal/spatial"
	"waggle/internal/voronoi"
)

// Result is one benchmark scenario's measurement.
type Result struct {
	// Name identifies the scenario, "workload/variant" with variant
	// "grid" (spatial-index path) or "brute" (reference scan).
	Name string `json:"name"`
	// N is the problem size (points, sites, or robots).
	N int `json:"n"`
	// Iterations is how many times testing.Benchmark ran the body.
	Iterations int `json:"iterations"`
	// NsPerOp is the measured wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are the allocation costs per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// scenario is one benchmark body. Setup (input generation, world
// construction, warm-up) happens when the scenario is built, so body
// measures only the operation under test and the smoke mode can run it
// exactly once.
type scenario struct {
	name string
	n    int
	body func() error
}

func main() {
	out := flag.String("out", "", "output JSON path (default BENCH_spatial.json; BENCH_step.json with -step; BENCH_ckpt.json with -ckpt; BENCH_stream.json with -stream)")
	smoke := flag.Bool("smoke", false, "run each scenario body once and write nothing")
	step := flag.Bool("step", false, "run the step-engine scaling benchmark instead of the spatial scenarios")
	ckpt := flag.Bool("ckpt", false, "run the checkpoint-codec benchmark (json vs binary vs delta) instead of the spatial scenarios")
	stream := flag.Bool("stream", false, "run the stream-writer overhead benchmark (waggle-stream/v1 on vs off) instead of the spatial scenarios")
	flag.Parse()
	if *step {
		if *out == "" {
			*out = "BENCH_step.json"
		}
		if err := runStep(*out, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "waggle-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *ckpt {
		if *out == "" {
			*out = "BENCH_ckpt.json"
		}
		if err := runCkpt(*out, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "waggle-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *stream {
		if *out == "" {
			*out = "BENCH_stream.json"
		}
		if err := runStream(*out, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "waggle-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		*out = "BENCH_spatial.json"
	}
	if err := run(*out, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "waggle-bench:", err)
		os.Exit(1)
	}
}

func run(out string, smoke bool) error {
	scenarios := buildScenarios()
	if smoke {
		// One iteration per scenario: proves every benchmark body still
		// runs (the guard against silently-empty bench trajectories).
		for _, sc := range scenarios {
			if err := sc.body(); err != nil {
				return fmt.Errorf("%s (n=%d): %w", sc.name, sc.n, err)
			}
			fmt.Printf("smoke %-28s n=%-5d ok\n", sc.name, sc.n)
		}
		return nil
	}
	results := make([]Result, 0, len(scenarios))
	for _, sc := range scenarios {
		sc := sc
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := sc.body(); err != nil {
					b.Fatal(err)
				}
			}
		})
		res := Result{
			Name:        sc.name,
			N:           sc.n,
			Iterations:  br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		}
		results = append(results, res)
		fmt.Printf("%-28s n=%-5d %14.1f ns/op %8d allocs/op\n",
			res.Name, res.N, res.NsPerOp, res.AllocsPerOp)
	}
	printSpeedups(results)
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d scenarios)\n", out, len(results))
	return nil
}

// printSpeedups pairs each grid scenario with its brute twin at the same
// n and prints the ratio — the headline before/after numbers.
func printSpeedups(results []Result) {
	type key struct {
		base string
		n    int
	}
	brutes := make(map[key]Result, len(results))
	for _, r := range results {
		if base, ok := trimVariant(r.Name, "/brute"); ok {
			brutes[key{base, r.N}] = r
		}
	}
	for _, r := range results {
		base, ok := trimVariant(r.Name, "/grid")
		if !ok {
			continue
		}
		if b, found := brutes[key{base, r.N}]; found && r.NsPerOp > 0 {
			fmt.Printf("speedup %-24s n=%-5d %6.1fx\n", base, r.N, b.NsPerOp/r.NsPerOp)
		}
	}
}

func trimVariant(name, suffix string) (string, bool) {
	if len(name) <= len(suffix) || name[len(name)-len(suffix):] != suffix {
		return "", false
	}
	return name[:len(name)-len(suffix)], true
}

// randomPoints draws n points uniformly over the same side the
// benchmark configurations use (side = 12n, the benchPositions scale).
func randomPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	side := float64(n) * 12
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}
	return pts
}

func buildScenarios() []scenario {
	var scenarios []scenario

	// Granular radii (protocol.granularRadii / §3.2): half the
	// nearest-neighbour distance per robot, the preprocessing every
	// n-robot protocol pays.
	for _, n := range []int{128, 512, 2048} {
		pts := randomPoints(rand.New(rand.NewSource(11)), n)
		scenarios = append(scenarios,
			scenario{"granulars/grid", n, func() error {
				spatial.NearestRadii(pts)
				return nil
			}},
			scenario{"granulars/brute", n, func() error {
				spatial.NearestRadiiBrute(pts)
				return nil
			}},
		)
	}

	// Tracker construction (sim.NewTrackerFromConfig): granular radii
	// plus the attribution index.
	{
		n := 512
		homes := randomPoints(rand.New(rand.NewSource(12)), n)
		scenarios = append(scenarios,
			scenario{"tracker-fromconfig/grid", n, func() error {
				sim.NewTrackerFromConfig(homes)
				return nil
			}},
			scenario{"tracker-fromconfig/brute", n, func() error {
				sim.NewTracker(homes, spatial.NearestRadiiBrute(homes))
				return nil
			}},
		)
	}

	// Voronoi diagram construction: grid-pruned half-plane clipping
	// versus the all-pairs scan, above the pruneMinSites crossover
	// (below it New itself routes to the scan).
	for _, n := range []int{256, 512} {
		sites := randomPoints(rand.New(rand.NewSource(13)), n)
		scenarios = append(scenarios,
			scenario{"voronoi/grid", n, func() error {
				_, err := voronoi.New(sites)
				return err
			}},
			scenario{"voronoi/brute", n, func() error {
				_, err := voronoi.NewBrute(sites)
				return err
			}},
		)
	}

	// Limited-visibility stepping: per-instant simulator cost when every
	// robot has a bounded sensor, with the per-step visibility grid on
	// (grid) and forced off (brute).
	{
		n := 512
		scenarios = append(scenarios,
			scenario{"limited-vis-step/grid", n, visStepBody(n, true)},
			scenario{"limited-vis-step/brute", n, visStepBody(n, false)},
		)
	}

	// Placement: the shared minimum-separation rejection sampler
	// (figures.RandomConfiguration / benchPositions / sweep), grid-backed
	// Placer versus the all-pairs conflict scan.
	{
		n := 512
		minSep := 8.0
		side := float64(n) * 12
		scenarios = append(scenarios,
			scenario{"placement/grid", n, func() error {
				rng := rand.New(rand.NewSource(14))
				pl := spatial.NewPlacer(minSep)
				for pl.Len() < n {
					p := geom.Pt(rng.Float64()*side, rng.Float64()*side)
					if !pl.TooClose(p) {
						pl.Add(p)
					}
				}
				pl.Points()
				return nil
			}},
			scenario{"placement/brute", n, func() error {
				rng := rand.New(rand.NewSource(14))
				pts := make([]geom.Point, 0, n)
				for len(pts) < n {
					p := geom.Pt(rng.Float64()*side, rng.Float64()*side)
					ok := true
					for _, q := range pts {
						if p.Dist(q) < minSep {
							ok = false
							break
						}
					}
					if ok {
						pts = append(pts, p)
					}
				}
				return nil
			}},
		)
	}

	return scenarios
}

// visStepBody builds an n-robot stationary swarm whose sensors reach a
// bounded radius, warms it up, and returns a body that advances one
// synchronous instant with the visibility grid toggled per indexed.
func visStepBody(n int, indexed bool) func() error {
	rng := rand.New(rand.NewSource(15))
	pos := make([]geom.Point, n)
	robots := make([]*sim.Robot, n)
	stay := sim.BehaviorFunc(func(v sim.View) geom.Point { return geom.Pt(0, 0) })
	side := float64(n) * 2
	for i := range pos {
		pos[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
		robots[i] = &sim.Robot{
			Frame:     geom.WorldFrame(),
			Sigma:     1,
			VisRadius: 40,
			Behavior:  stay,
		}
	}
	w, err := sim.NewWorld(sim.Config{Positions: pos, Robots: robots})
	if err != nil {
		return func() error { return err }
	}
	w.SetViewIndexing(indexed)
	// Warm-up instant allocates the reusable buffers.
	if _, err := w.Step(sim.Synchronous{}); err != nil {
		return func() error { return err }
	}
	return func() error {
		_, err := w.Step(sim.Synchronous{})
		return err
	}
}
