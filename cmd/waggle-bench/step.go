package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"waggle/internal/geom"
	"waggle/internal/sim"
)

// stepSchema identifies the BENCH_step.json layout.
const stepSchema = "waggle-bench-step/v1"

// legacyMaxN is the largest swarm the legacy (dense-view) engine is
// measured at: dense views cost O(n) scratch memory PER ROBOT, so a
// synchronous 100k-robot step needs ~160 GB of view buffers — the
// pre-PR engine cannot run the larger sizes at all. Speedups above this
// size are extrapolated (see the notes emitted into the JSON).
const legacyMaxN = 10_000

// StepResult is one step-engine measurement.
type StepResult struct {
	// Name is "workload/variant": workload "step-sync" (synchronous
	// full activation) or "step-sparse" (5% block activation, the
	// incremental-grid path); variant "soa" (compact views, batched
	// construction, incremental grid) or "legacy" (dense views — the
	// pre-PR view path, kept accessible via SetCompactViews(false)).
	Name string `json:"name"`
	// N is the swarm size.
	N int `json:"n"`
	// Engine is the engine mode the measurement ran under.
	Engine string `json:"engine"`
	// Steps is how many instants were timed (after warm-up).
	Steps int `json:"steps"`
	// NsPerStep is wall time per instant.
	NsPerStep float64 `json:"ns_per_step"`
}

// StepSpeedup is one soa-vs-legacy ratio.
type StepSpeedup struct {
	Workload string  `json:"workload"`
	N        int     `json:"n"`
	Factor   float64 `json:"factor"`
	// Basis is "measured" when both variants ran at this n, or
	// "extrapolated" when the legacy cost is projected from legacyMaxN
	// (dense views scale ~n² per synchronous step: O(n) buffer work per
	// robot, n robots).
	Basis string `json:"basis"`
}

// StepBench is the BENCH_step.json document.
type StepBench struct {
	Schema     string        `json:"schema"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Results    []StepResult  `json:"results"`
	Speedups   []StepSpeedup `json:"speedups"`
	Notes      []string      `json:"notes"`
}

// centroidDrift walks toward the centroid of the robots it can see,
// reading the view through either layout — dense (skip invisible slots)
// or compact — with the identical float accumulation order, so both
// variants execute the identical trajectory and the comparison isolates
// the engine, not the workload.
func centroidDrift(v sim.View) geom.Point {
	var cx, cy float64
	n := 0
	for k, p := range v.Points {
		if v.Indices == nil && v.Visible != nil && !v.Visible[k] {
			continue
		}
		cx += p.X
		cy += p.Y
		n++
	}
	if n == 0 {
		return geom.Pt(0, 0)
	}
	return geom.Pt(cx/float64(n)*0.1, cy/float64(n)*0.1)
}

// blockScheduler activates a rotating block of robots — the sparse
// workload where few robots move per instant, so the engine's
// incremental grid splicing (instead of a full per-step rebuild) is the
// dominant effect.
type blockScheduler struct{ size int }

func (s blockScheduler) Next(t, n int) []int {
	size := s.size
	if size > n {
		size = n
	}
	out := make([]int, size)
	start := (t * size) % n
	for k := range out {
		out[k] = (start + k) % n
	}
	return out
}

// stepWorld builds the benchmark swarm: uniform density (~20 expected
// visible neighbours regardless of n), bounded sensors, parallel
// engine.
func stepWorld(n int, compact bool) (*sim.World, error) {
	rng := rand.New(rand.NewSource(int64(23 + n)))
	side := math.Sqrt(float64(n)) * 10
	pos := make([]geom.Point, n)
	robots := make([]*sim.Robot, n)
	drift := sim.BehaviorFunc(centroidDrift)
	for i := range pos {
		pos[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
		robots[i] = &sim.Robot{
			Frame:     geom.WorldFrame(),
			Sigma:     0.5,
			VisRadius: 25,
			Behavior:  drift,
		}
	}
	w, err := sim.NewWorld(sim.Config{Positions: pos, Robots: robots, Engine: sim.EngineParallel})
	if err != nil {
		return nil, err
	}
	w.SetCompactViews(compact)
	return w, nil
}

// measureStep times `steps` instants after `warm` warm-up instants.
func measureStep(n int, sparse, compact bool, steps, warm int) (StepResult, error) {
	w, err := stepWorld(n, compact)
	if err != nil {
		return StepResult{}, err
	}
	var sched sim.Scheduler = sim.Synchronous{}
	workload := "step-sync"
	if sparse {
		sched = blockScheduler{size: n/20 + 1}
		workload = "step-sparse"
	}
	variant := "legacy"
	if compact {
		variant = "soa"
	}
	for s := 0; s < warm; s++ {
		if _, err := w.Step(sched); err != nil {
			return StepResult{}, err
		}
	}
	t0 := time.Now()
	for s := 0; s < steps; s++ {
		if _, err := w.Step(sched); err != nil {
			return StepResult{}, err
		}
	}
	dur := time.Since(t0)
	return StepResult{
		Name:      workload + "/" + variant,
		N:         n,
		Engine:    w.Engine().String(),
		Steps:     steps,
		NsPerStep: float64(dur.Nanoseconds()) / float64(steps),
	}, nil
}

// stepCounts picks (steps, warm) per size so the big sizes stay
// tractable on one core.
func stepCounts(n int) (steps, warm int) {
	switch {
	case n <= 10_000:
		return 20, 3
	case n <= 100_000:
		return 8, 2
	default:
		return 3, 1
	}
}

// runStep executes the step-engine trajectory benchmark and writes
// BENCH_step.json. In smoke mode it runs tiny sizes once each and
// writes nothing.
func runStep(out string, smoke bool) error {
	sizes := []int{10_000, 100_000, 1_000_000}
	if smoke {
		sizes = []int{500, 1500}
	}
	bench := StepBench{Schema: stepSchema, GoMaxProcs: runtime.GOMAXPROCS(0)}
	legacySync := map[int]StepResult{} // n -> legacy result per workload key below
	legacySparse := map[int]StepResult{}
	for _, n := range sizes {
		steps, warm := stepCounts(n)
		if smoke {
			steps, warm = 1, 1
		}
		for _, sparse := range []bool{false, true} {
			variants := []bool{true} // compact/soa always
			if n <= legacyMaxN {
				variants = append(variants, false)
			}
			for _, compact := range variants {
				res, err := measureStep(n, sparse, compact, steps, warm)
				if err != nil {
					return fmt.Errorf("%s n=%d: %w", res.Name, n, err)
				}
				if smoke {
					fmt.Printf("smoke %-20s n=%-7d ok\n", res.Name, n)
					continue
				}
				bench.Results = append(bench.Results, res)
				fmt.Printf("%-20s n=%-8d %14.0f ns/step  (%d steps)\n", res.Name, n, res.NsPerStep, res.Steps)
				if !compact {
					if sparse {
						legacySparse[n] = res
					} else {
						legacySync[n] = res
					}
				}
			}
		}
	}
	if smoke {
		return nil
	}
	// Speedups: measured where legacy ran, extrapolated quadratically
	// from the largest measured legacy size above it (dense views are
	// O(n) per robot, so a synchronous step is ~n²; the sparse workload
	// activates a fixed fraction, which scales the same way).
	for _, r := range bench.Results {
		base, ok := trimVariant(r.Name, "/soa")
		if !ok {
			continue
		}
		legacy := legacySync
		if base == "step-sparse" {
			legacy = legacySparse
		}
		if l, found := legacy[r.N]; found {
			bench.Speedups = append(bench.Speedups, StepSpeedup{
				Workload: base, N: r.N, Factor: l.NsPerStep / r.NsPerStep, Basis: "measured",
			})
			continue
		}
		ref, refN := StepResult{}, 0
		for n, l := range legacy {
			if n > refN {
				ref, refN = l, n
			}
		}
		if refN == 0 {
			continue
		}
		scale := float64(r.N) / float64(refN)
		bench.Speedups = append(bench.Speedups, StepSpeedup{
			Workload: base, N: r.N,
			Factor: ref.NsPerStep * scale * scale / r.NsPerStep,
			Basis:  "extrapolated",
		})
	}
	for _, s := range bench.Speedups {
		fmt.Printf("speedup %-14s n=%-8d %8.1fx (%s)\n", s.Workload, s.N, s.Factor, s.Basis)
	}
	bench.Notes = []string{
		fmt.Sprintf("legacy (dense-view) variants measured up to n=%d only: dense views allocate O(n) scratch per robot, so a synchronous step at n=100000 needs ~160 GB of view buffers — the pre-PR engine cannot execute the larger sizes at all", legacyMaxN),
		"extrapolated speedups project the legacy cost quadratically from the largest measured legacy size (O(n) dense-view work per robot, O(n) robots per synchronous step); even a linear projection — the most conservative possible — exceeds the 5x acceptance threshold at n=100000",
		"both variants execute bit-identical trajectories (the behavior reads dense and compact views with the same accumulation order), so the ratio isolates the engine",
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results)\n", out, len(bench.Results))
	return nil
}
