package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSmokeRunsEveryScenario runs every benchmark body once — the tier-1
// guard against a silently-empty bench trajectory.
func TestSmokeRunsEveryScenario(t *testing.T) {
	scenarios := buildScenarios()
	if len(scenarios) == 0 {
		t.Fatal("no benchmark scenarios")
	}
	seenGrid, seenBrute := 0, 0
	for _, sc := range scenarios {
		if err := sc.body(); err != nil {
			t.Errorf("%s (n=%d): %v", sc.name, sc.n, err)
		}
		if _, ok := trimVariant(sc.name, "/grid"); ok {
			seenGrid++
		}
		if _, ok := trimVariant(sc.name, "/brute"); ok {
			seenBrute++
		}
	}
	if seenGrid == 0 || seenGrid != seenBrute {
		t.Errorf("scenario pairing broken: %d grid vs %d brute", seenGrid, seenBrute)
	}
}

// TestSmokeModeWritesNothing checks -smoke leaves no JSON behind.
func TestSmokeModeWritesNothing(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(out, true); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Errorf("smoke mode wrote %s", out)
	}
}

// TestResultJSONShape pins the field names EXPERIMENTS.md and external
// tooling read from BENCH_spatial.json.
func TestResultJSONShape(t *testing.T) {
	data, err := json.Marshal(Result{Name: "granulars/grid", N: 512, Iterations: 3, NsPerOp: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"name", "n", "iterations", "ns_per_op", "allocs_per_op", "bytes_per_op"} {
		if _, ok := m[k]; !ok {
			t.Errorf("missing JSON field %q in %s", k, data)
		}
	}
}
