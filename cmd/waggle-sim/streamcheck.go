package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"waggle"
	"waggle/internal/ckpt"
	"waggle/internal/wire"
)

// replayStream is `waggle-sim -replay-stream`: decode and verify a
// waggle-stream/v1 file, reconstruct the movement CSV it encodes, and
// report the digests.
func replayStream(path string) error {
	rep, err := waggle.ReplayStream(path)
	if err != nil {
		return err
	}
	fmt.Printf("stream %s: %d records, %d steps, final t=%d, %d delivered\n",
		path, rep.Records, rep.Steps, rep.FinalTime, rep.Delivered)
	if rep.Torn {
		fmt.Println("torn trailing record dropped (crash-cut tail)")
	}
	if rep.Digest != "" {
		fmt.Printf("replay digest: %s\n", rep.Digest)
	}
	switch {
	case rep.StreamDigest == "":
		fmt.Println("no embedded digest (stream cut before close, or an untraced run)")
	case rep.Digest == rep.StreamDigest:
		fmt.Println("replay digest matches the embedded closing digest")
	case rep.Digest == "":
		fmt.Printf("embedded digest: %s (stream does not start at instant 0; nothing to compare)\n", rep.StreamDigest)
	default:
		return fmt.Errorf("replay digest %s diverges from embedded digest %s", rep.Digest, rep.StreamDigest)
	}
	return nil
}

// The stream-check runs a fixed 4-robot synchronous configuration:
// full determinism is what makes the engine-parity and kill -9
// byte-prefix comparisons meaningful.
func streamCheckPositions() []waggle.Point {
	return []waggle.Point{{X: 0, Y: 0}, {X: 14, Y: 0}, {X: 0, Y: 15}, {X: 13, Y: 13}}
}

func streamCheckOptions(engine waggle.EngineMode) []waggle.Option {
	return []waggle.Option{
		waggle.WithSeed(2026), waggle.WithTrace(), waggle.WithSynchronous(),
		waggle.WithEngine(engine),
	}
}

// streamCheckWorkload drives the deterministic check run: periodic
// sends keep the robots moving (a send rejected because the sender is
// mid-excursion is rejected identically on every run, so failures are
// part of the determinism, not a hazard). steps < 0 runs until killed
// — the victim mode — paced so the parent's SIGKILL lands mid-stream.
func streamCheckWorkload(s *waggle.Swarm, steps int) error {
	for i := 0; steps < 0 || i < steps; i++ {
		if s.Time()%257 == 0 {
			_ = s.Send(0, 1, []byte("beat"))
		}
		if err := s.Step(); err != nil {
			return err
		}
		if steps < 0 {
			time.Sleep(200 * time.Microsecond)
		}
	}
	return nil
}

// streamVictim is the hidden `-stream-victim` mode streamCheck
// re-execs: stream an unbounded run to path until killed.
func streamVictim(path string) error {
	s, err := waggle.NewSwarm(streamCheckPositions(),
		append(streamCheckOptions(waggle.EngineAuto), waggle.WithStream(path))...)
	if err != nil {
		return err
	}
	return streamCheckWorkload(s, -1)
}

func liveTraceDigest(s *waggle.Swarm) (string, error) {
	var buf bytes.Buffer
	if err := s.WriteTraceCSV(&buf); err != nil {
		return "", err
	}
	return ckpt.Digest(buf.Bytes()), nil
}

// streamCheck is `make stream-check`: the self-contained validation of
// the whole streaming pipeline. It proves four properties:
//
//  1. attaching a stream does not change the run (digest equality with
//     an un-streamed control),
//  2. the stream replays byte-identically under both engines (replayed
//     and embedded digests equal the live digest; the stream files
//     themselves are byte-equal),
//  3. a spectator joining at the latest keyframe converges to the live
//     end state, and
//  4. kill -9 mid-append loses at most the torn tail record: the
//     victim's clean prefix is a byte prefix of an uninterrupted
//     identical run.
func streamCheck() error {
	dir, err := os.MkdirTemp("", "waggle-stream-check-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	const steps = 1500

	// 1. Un-streamed control.
	ctl, err := waggle.NewSwarm(streamCheckPositions(), streamCheckOptions(waggle.EngineAuto)...)
	if err != nil {
		return err
	}
	if err := streamCheckWorkload(ctl, steps); err != nil {
		return err
	}
	ctlDigest, err := liveTraceDigest(ctl)
	if err != nil {
		return err
	}

	// 2. Streamed runs under both engines.
	var files [][]byte
	for _, engine := range []waggle.EngineMode{waggle.EngineSequential, waggle.EngineParallel} {
		path := filepath.Join(dir, fmt.Sprintf("engine-%d.wstream", engine))
		s, err := waggle.NewSwarm(streamCheckPositions(),
			append(streamCheckOptions(engine), waggle.WithStream(path))...)
		if err != nil {
			return err
		}
		if err := streamCheckWorkload(s, steps); err != nil {
			return err
		}
		live, err := liveTraceDigest(s)
		if err != nil {
			return err
		}
		if live != ctlDigest {
			return fmt.Errorf("stream-check: attaching a stream changed the run: digest %s, control %s", live, ctlDigest)
		}
		if err := s.Stream().Close(); err != nil {
			return err
		}
		rep, err := waggle.ReplayStream(path)
		if err != nil {
			return err
		}
		if rep.Torn || rep.Digest != live || rep.StreamDigest != live {
			return fmt.Errorf("stream-check: engine %d replay torn=%v digest=%s embedded=%s, want clean %s",
				engine, rep.Torn, rep.Digest, rep.StreamDigest, live)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files = append(files, data)
	}
	if !bytes.Equal(files[0], files[1]) {
		return fmt.Errorf("stream-check: stream files differ between engines: %d vs %d bytes",
			len(files[0]), len(files[1]))
	}

	// 3. Mid-stream join at the latest keyframe.
	recs, _, _, err := wire.TailStream(files[0], -1, 0)
	if err != nil {
		return err
	}
	if len(recs) == 0 || recs[0].Kind != wire.StreamKeyframe {
		return fmt.Errorf("stream-check: join at -1 does not start at a keyframe")
	}
	joined := make([]waggle.Point, len(recs[0].Positions))
	for i, p := range recs[0].Positions {
		joined[i] = waggle.Point{X: p.X, Y: p.Y}
	}
	for _, rec := range recs[1:] {
		for _, m := range rec.Moves {
			joined[m.Robot] = waggle.Point{X: m.To.X, Y: m.To.Y}
		}
	}
	for i, p := range ctl.Positions() {
		if joined[i] != p {
			return fmt.Errorf("stream-check: mid-join diverged at robot %d: %v vs %v", i, joined[i], p)
		}
	}

	// 4. kill -9 a streaming victim mid-append.
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	vpath := filepath.Join(dir, "victim.wstream")
	victim := exec.Command(exe, "-stream-victim", vpath)
	victim.Stdout, victim.Stderr = os.Stdout, os.Stderr
	if err := victim.Start(); err != nil {
		return err
	}
	grown := false
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		if st, err := os.Stat(vpath); err == nil && st.Size() >= 4096 {
			grown = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !grown {
		_ = victim.Process.Kill()
		_ = victim.Wait()
		return fmt.Errorf("stream-check: victim stream never grew")
	}
	if err := victim.Process.Kill(); err != nil { // SIGKILL: no flush, no close
		return err
	}
	_ = victim.Wait()

	vdata, err := os.ReadFile(vpath)
	if err != nil {
		return err
	}
	vrecs, cleanEnd, _, err := wire.TailStream(vdata, 0, 0)
	if err != nil {
		return fmt.Errorf("stream-check: killed victim's stream does not tail-decode: %w", err)
	}
	vrep, err := waggle.ReplayStream(vpath)
	if err != nil {
		return fmt.Errorf("stream-check: killed victim's stream does not replay: %w", err)
	}
	if !vrep.FromStart || vrep.Records != len(vrecs) {
		return fmt.Errorf("stream-check: victim replay saw %d records from-start=%v", vrep.Records, vrep.FromStart)
	}

	// The clean prefix must be a byte prefix of the same run left
	// uninterrupted — i.e. the kill lost at most the torn tail record.
	rpath := filepath.Join(dir, "rerun.wstream")
	rerun, err := waggle.NewSwarm(streamCheckPositions(),
		append(streamCheckOptions(waggle.EngineAuto), waggle.WithStream(rpath))...)
	if err != nil {
		return err
	}
	if err := streamCheckWorkload(rerun, vrep.Steps); err != nil {
		return err
	}
	if err := rerun.Stream().Sync(); err != nil {
		return err
	}
	rdata, err := os.ReadFile(rpath)
	if err != nil {
		return err
	}
	if int64(len(rdata)) < cleanEnd || !bytes.Equal(rdata[:cleanEnd], vdata[:cleanEnd]) {
		return fmt.Errorf("stream-check: victim's clean prefix (%d bytes) is not a prefix of the uninterrupted rerun (%d bytes)",
			cleanEnd, len(rdata))
	}

	fmt.Printf("stream-check ok: %d-step run streams %d bytes, replays to the control digest under both engines, "+
		"mid-join converges, kill -9 victim kept %d clean records (%d torn tail bytes dropped)\n",
		steps, len(files[0]), len(vrecs), int64(len(vdata))-cleanEnd)
	return nil
}
