// Command waggle-sim runs one movement-signal communication scenario
// from command-line flags and prints the delivery trace.
//
// Examples:
//
//	waggle-sim -n 2 -sync -msg HELLO
//	waggle-sim -n 12 -from 9 -to 3 -msg FIG2 -seed 7
//	waggle-sim -n 6 -scheduler starver -msg X
//	waggle-sim -n 4 -sync -listen :8080   # serve /metrics, /trace, pprof
//	waggle-sim -obs-check                 # validate the obs pipeline
//	waggle-sim -checkpoint run.ckpt -checkpoint-every 5000
//	waggle-sim -resume run.ckpt           # continue an interrupted run
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"

	"waggle"
	"waggle/internal/figures"
	"waggle/internal/obs"
)

// config carries the parsed flags; tests drive run with it directly.
type config struct {
	n         int
	sync      bool
	ids       bool
	compass   bool
	seed      int64
	from, to  int
	msg       string
	levels    int
	bounded   int
	scheduler string
	budget    int
	quiet     bool
	tracePath string
	listen    string // -listen: observability endpoint address
	block     bool   // keep serving after the run until interrupted
	obsCheck  bool   // -obs-check: validate the obs pipeline and exit

	ckptPath  string // -checkpoint: write checkpoints to this file
	ckptEvery int    // -checkpoint-every: save every N instants while waiting
	ckptCodec string // -ckpt-codec: checkpoint serialization format
	resume    string // -resume: continue a run from this checkpoint file

	stream       string // -stream: record a waggle-stream/v1 movement stream
	replayStream string // -replay-stream: verify and summarize a stream file
	streamCheck  bool   // -stream-check: validate the streaming pipeline and exit
	streamVictim string // -stream-victim: internal stream-check kill -9 target
}

func main() {
	var cfg config
	flag.IntVar(&cfg.n, "n", 2, "number of robots (>= 2)")
	flag.BoolVar(&cfg.sync, "sync", false, "synchronous setting (§3); default asynchronous (§4)")
	flag.BoolVar(&cfg.ids, "ids", false, "robots carry observable IDs (§3.2)")
	flag.BoolVar(&cfg.compass, "compass", false, "robots share a sense of direction (§3.3)")
	flag.Int64Var(&cfg.seed, "seed", 1, "randomness seed (placement, frames, scheduler)")
	flag.IntVar(&cfg.from, "from", 0, "sender index")
	flag.IntVar(&cfg.to, "to", 1, "recipient index")
	flag.StringVar(&cfg.msg, "msg", "HELLO", "message payload")
	flag.IntVar(&cfg.levels, "levels", 0, "amplitude levels for 2-robot sync coding (power of two)")
	flag.IntVar(&cfg.bounded, "bounded", 0, "bounded-slice base k (>= 2) for the §5 variant")
	flag.StringVar(&cfg.scheduler, "scheduler", "random", "asynchronous scheduler: random|roundrobin|starver")
	flag.IntVar(&cfg.budget, "budget", 5_000_000, "maximum time instants")
	flag.BoolVar(&cfg.quiet, "q", false, "print only the delivery line")
	flag.StringVar(&cfg.tracePath, "trace", "", "write the full execution trace as CSV to this file")
	flag.StringVar(&cfg.listen, "listen", "", "serve the observability endpoint (/metrics, /trace, pprof) on this address")
	flag.BoolVar(&cfg.obsCheck, "obs-check", false, "run a short instrumented sim, validate the metrics pipeline, and exit")
	flag.StringVar(&cfg.ckptPath, "checkpoint", "", "write checkpoints to this file (atomic; see -checkpoint-every)")
	flag.IntVar(&cfg.ckptEvery, "checkpoint-every", 0, "while waiting for delivery, save a checkpoint every N instants (requires -checkpoint)")
	flag.StringVar(&cfg.ckptCodec, "ckpt-codec", "delta", "checkpoint serialization: json (debuggable v1 envelope), binary (compact v2), delta (binary base + per-save delta frames)")
	flag.StringVar(&cfg.resume, "resume", "", "resume a run from this checkpoint file instead of starting fresh")
	flag.StringVar(&cfg.stream, "stream", "", "record a waggle-stream/v1 movement stream (appendable, spectatable, crash-tolerant) to this file")
	flag.StringVar(&cfg.replayStream, "replay-stream", "", "replay and verify a waggle-stream/v1 file instead of running, printing its digests")
	flag.BoolVar(&cfg.streamCheck, "stream-check", false, "validate the streaming pipeline (engine parity, mid-stream join, kill -9 torn-tail tolerance) and exit")
	flag.StringVar(&cfg.streamVictim, "stream-victim", "", "(internal) stream-check victim: stream an unbounded run to this file until killed")
	flag.Parse()
	cfg.block = cfg.listen != ""
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "waggle-sim:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if cfg.obsCheck {
		return obsCheck()
	}
	if cfg.streamCheck {
		return streamCheck()
	}
	if cfg.streamVictim != "" {
		return streamVictim(cfg.streamVictim)
	}
	if cfg.replayStream != "" {
		return replayStream(cfg.replayStream)
	}
	if cfg.ckptEvery > 0 && cfg.ckptPath == "" {
		return fmt.Errorf("-checkpoint-every requires -checkpoint")
	}
	if cfg.resume != "" {
		return runResumed(cfg)
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	raw := figures.RandomConfiguration(rng, cfg.n, float64(cfg.n)*12, 8)
	positions := make([]waggle.Point, cfg.n)
	for i, p := range raw {
		positions[i] = waggle.Point{X: p.X, Y: p.Y}
	}

	opts := []waggle.Option{waggle.WithSeed(cfg.seed), waggle.WithTrace()}
	if cfg.stream != "" {
		opts = append(opts, waggle.WithStream(cfg.stream))
	}
	if cfg.sync {
		opts = append(opts, waggle.WithSynchronous())
	}
	if cfg.ids {
		opts = append(opts, waggle.WithIdentifiedRobots())
	}
	if cfg.compass {
		opts = append(opts, waggle.WithSenseOfDirection())
	}
	if cfg.levels > 0 {
		opts = append(opts, waggle.WithLevels(cfg.levels))
	}
	if cfg.bounded > 0 {
		opts = append(opts, waggle.WithBoundedSlices(cfg.bounded))
	}
	switch cfg.scheduler {
	case "roundrobin":
		opts = append(opts, waggle.WithScheduler(waggle.SchedulerRoundRobin))
	case "starver":
		opts = append(opts, waggle.WithStarver(cfg.to, 8))
	case "random", "":
	default:
		return fmt.Errorf("unknown scheduler %q", cfg.scheduler)
	}
	var obsv *waggle.Observer
	if cfg.listen != "" {
		obsv = waggle.NewObserver()
		opts = append(opts, waggle.WithObserver(obsv))
		stop, err := serveIntrospection(cfg.listen, obsv)
		if err != nil {
			return err
		}
		defer stop()
	}

	swarm, err := waggle.NewSwarm(positions, opts...)
	if err != nil {
		return err
	}
	if !cfg.quiet {
		fmt.Printf("swarm: n=%d protocol=%v scheduler=%s seed=%d\n", cfg.n, swarm.Protocol(), cfg.scheduler, cfg.seed)
	}
	if err := swarm.Send(cfg.from, cfg.to, []byte(cfg.msg)); err != nil {
		return err
	}
	return finishRun(cfg, swarm, cfg.budget)
}

// runResumed continues a run from a checkpoint file: the pending send,
// positions, clock, scheduler and RNG streams are all restored, so the
// continuation is byte-identical to a run that was never interrupted.
func runResumed(cfg config) error {
	ck, err := waggle.LoadCheckpoint(cfg.resume)
	if err != nil {
		return err
	}
	res, err := waggle.Restore(ck)
	if err != nil {
		return err
	}
	swarm := res.Swarm
	if cfg.stream != "" {
		// Attach after the restore replay: an existing stream file is
		// appended to (the evict/resume pattern), never re-streamed.
		if _, err := swarm.NewStreamWriter(cfg.stream); err != nil {
			return err
		}
	}
	if cfg.listen != "" {
		if res.Observer == nil {
			return fmt.Errorf("-listen with -resume needs a checkpoint captured with an observer")
		}
		stop, err := serveIntrospection(cfg.listen, res.Observer)
		if err != nil {
			return err
		}
		defer stop()
	}
	if !cfg.quiet {
		fmt.Printf("resumed from %s at t=%d (n=%d)\n", cfg.resume, swarm.Time(), swarm.N())
	}
	return finishRun(cfg, swarm, cfg.budget)
}

// finishRun drives the swarm to the first delivery — saving periodic
// checkpoints if configured — and prints the reports.
func finishRun(cfg config, swarm *waggle.Swarm, budget int) error {
	var cw *waggle.CheckpointWriter
	if cfg.ckptPath != "" {
		codec, err := waggle.ParseCheckpointCodec(cfg.ckptCodec)
		if err != nil {
			return err
		}
		// One writer for the whole run: with the delta codec the periodic
		// saves after the first append only what changed (and reuse the
		// recorder's merged input log instead of re-encoding it), instead
		// of rewriting the full snapshot every interval.
		cw, err = swarm.NewCheckpointWriter(cfg.ckptPath, codec)
		if err != nil {
			return err
		}
	}
	msgs, steps, err := deliverWithCheckpoints(cfg, swarm, budget, cw)
	if err != nil {
		return err
	}
	fmt.Printf("robot %d -> robot %d in %d instants: %q\n", msgs[0].From, msgs[0].To, steps, msgs[0].Payload)
	if !cfg.quiet {
		// Key the sender stats on the delivered message, not cfg.from: a
		// resumed run doesn't know the original -from flag.
		sender := msgs[0].From
		fmt.Printf("sender excursions: %d; sender distance: %.2f; min pairwise distance: %.3f\n",
			swarm.SentBits(sender), swarm.TotalDistance(sender), swarm.MinPairwiseDistance())
	}
	if cw != nil {
		if err := cw.Save(); err != nil {
			return err
		}
		if !cfg.quiet {
			fmt.Printf("final checkpoint (t=%d, %s) written to %s\n", swarm.Time(), cw.Codec(), cfg.ckptPath)
		}
	}
	if cfg.tracePath != "" {
		f, err := os.Create(cfg.tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := swarm.WriteTraceCSV(f); err != nil {
			return err
		}
		if !cfg.quiet {
			fmt.Printf("trace written to %s\n", cfg.tracePath)
		}
	}
	if sw := swarm.Stream(); sw != nil {
		if err := sw.Close(); err != nil {
			return err
		}
		if !cfg.quiet {
			fmt.Printf("stream (%d bytes) written to %s\n", sw.Offset(), sw.Path())
		}
	}
	if cfg.block {
		fmt.Println("serving observability endpoint; interrupt to exit")
		waitForInterrupt()
	}
	return nil
}

// deliverWithCheckpoints waits for the first delivery. With
// -checkpoint-every it runs the budget in chunks, saving a checkpoint
// after each undelivered chunk so an interrupted run can be continued
// with -resume from at most one chunk back. The writer decides how: a
// full atomic rewrite (json/binary) or an appended delta frame.
func deliverWithCheckpoints(cfg config, swarm *waggle.Swarm, budget int, cw *waggle.CheckpointWriter) ([]waggle.Message, int, error) {
	if cfg.ckptEvery <= 0 {
		return swarm.RunUntilDelivered(1, budget)
	}
	total := 0
	for {
		chunk := cfg.ckptEvery
		if remaining := budget - total; chunk > remaining {
			chunk = remaining
		}
		msgs, steps, err := swarm.RunUntilDelivered(1, chunk)
		total += steps
		if err == nil {
			return msgs, total, nil
		}
		if !errors.Is(err, waggle.ErrNotDelivered) {
			return nil, total, err
		}
		if ckErr := cw.Save(); ckErr != nil {
			return nil, total, ckErr
		}
		if !cfg.quiet {
			kind := "snapshot"
			if cw.LastSaveWasDelta() {
				kind = fmt.Sprintf("delta +%dB, chain %d", cw.LastSaveBytes(), cw.ChainLen())
			}
			fmt.Printf("checkpoint (t=%d, %s) written to %s\n", swarm.Time(), kind, cfg.ckptPath)
		}
		if total >= budget {
			return nil, total, err
		}
	}
}

// obsCheck is `make obs-check`: run a short instrumented sim, then
// validate that the Prometheus exposition parses and the JSON snapshot
// round-trips byte-for-byte — the end-to-end health check of the obs
// pipeline, with no external dependencies.
func obsCheck() error {
	obsv := waggle.NewObserver()
	s, err := waggle.NewSwarm(
		[]waggle.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 12}, {X: 11, Y: 11}},
		waggle.WithSynchronous(), waggle.WithSeed(1), waggle.WithObserver(obsv),
	)
	if err != nil {
		return err
	}
	if err := s.Send(0, 2, []byte("OBS")); err != nil {
		return err
	}
	if _, _, err := s.RunUntilDelivered(1, 200_000); err != nil {
		return err
	}

	var exposition bytes.Buffer
	if err := obsv.WriteMetrics(&exposition); err != nil {
		return err
	}
	samples, err := obs.ValidateExposition(exposition.String())
	if err != nil {
		return fmt.Errorf("obs-check: invalid Prometheus exposition: %w", err)
	}

	var snap bytes.Buffer
	if err := obsv.WriteSnapshot(&snap, true); err != nil {
		return err
	}
	var back waggle.MetricsSnapshot
	if err := json.Unmarshal(snap.Bytes(), &back); err != nil {
		return fmt.Errorf("obs-check: snapshot does not parse: %w", err)
	}
	var again bytes.Buffer
	if err := back.WriteJSON(&again); err != nil {
		return err
	}
	if !bytes.Equal(snap.Bytes(), again.Bytes()) {
		return fmt.Errorf("obs-check: snapshot does not round-trip")
	}
	if v, ok := back.CounterValue("waggle_sim_steps_total"); !ok || v == 0 {
		return fmt.Errorf("obs-check: step counter missing or zero after a delivered run")
	}
	fmt.Printf("obs-check ok: %d samples, %d trace events, snapshot round-trips\n",
		samples, len(back.Trace))
	return nil
}

// serveIntrospection starts the observability endpoint in the
// background via the shared obs wiring (hardened timeouts, graceful
// drain on stop), returning a closer that logs any shutdown error.
func serveIntrospection(addr string, o *waggle.Observer) (func(), error) {
	stop, err := obs.StartIntrospection(addr, o.Handler(), os.Stdout)
	if err != nil {
		return nil, err
	}
	return func() {
		if err := stop(); err != nil {
			fmt.Fprintf(os.Stderr, "waggle-sim: %v\n", err)
		}
	}, nil
}

func waitForInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}
