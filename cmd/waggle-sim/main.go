// Command waggle-sim runs one movement-signal communication scenario
// from command-line flags and prints the delivery trace.
//
// Examples:
//
//	waggle-sim -n 2 -sync -msg HELLO
//	waggle-sim -n 12 -from 9 -to 3 -msg FIG2 -seed 7
//	waggle-sim -n 6 -scheduler starver -msg X
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"waggle"
	"waggle/internal/figures"
)

func main() {
	var (
		n         = flag.Int("n", 2, "number of robots (>= 2)")
		sync      = flag.Bool("sync", false, "synchronous setting (§3); default asynchronous (§4)")
		ids       = flag.Bool("ids", false, "robots carry observable IDs (§3.2)")
		compass   = flag.Bool("compass", false, "robots share a sense of direction (§3.3)")
		seed      = flag.Int64("seed", 1, "randomness seed (placement, frames, scheduler)")
		from      = flag.Int("from", 0, "sender index")
		to        = flag.Int("to", 1, "recipient index")
		msg       = flag.String("msg", "HELLO", "message payload")
		levels    = flag.Int("levels", 0, "amplitude levels for 2-robot sync coding (power of two)")
		bounded   = flag.Int("bounded", 0, "bounded-slice base k (>= 2) for the §5 variant")
		scheduler = flag.String("scheduler", "random", "asynchronous scheduler: random|roundrobin|starver")
		budget    = flag.Int("budget", 5_000_000, "maximum time instants")
		quiet     = flag.Bool("q", false, "print only the delivery line")
		tracePath = flag.String("trace", "", "write the full execution trace as CSV to this file")
	)
	flag.Parse()
	if err := run(*n, *sync, *ids, *compass, *seed, *from, *to, *msg, *levels, *bounded, *scheduler, *budget, *quiet, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "waggle-sim:", err)
		os.Exit(1)
	}
}

func run(n int, sync, ids, compass bool, seed int64, from, to int, msg string,
	levels, bounded int, scheduler string, budget int, quiet bool, tracePath string) error {
	rng := rand.New(rand.NewSource(seed))
	raw := figures.RandomConfiguration(rng, n, float64(n)*12, 8)
	positions := make([]waggle.Point, n)
	for i, p := range raw {
		positions[i] = waggle.Point{X: p.X, Y: p.Y}
	}

	opts := []waggle.Option{waggle.WithSeed(seed), waggle.WithTrace()}
	if sync {
		opts = append(opts, waggle.WithSynchronous())
	}
	if ids {
		opts = append(opts, waggle.WithIdentifiedRobots())
	}
	if compass {
		opts = append(opts, waggle.WithSenseOfDirection())
	}
	if levels > 0 {
		opts = append(opts, waggle.WithLevels(levels))
	}
	if bounded > 0 {
		opts = append(opts, waggle.WithBoundedSlices(bounded))
	}
	switch scheduler {
	case "roundrobin":
		opts = append(opts, waggle.WithScheduler(waggle.SchedulerRoundRobin))
	case "starver":
		opts = append(opts, waggle.WithStarver(to, 8))
	case "random", "":
	default:
		return fmt.Errorf("unknown scheduler %q", scheduler)
	}

	swarm, err := waggle.NewSwarm(positions, opts...)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("swarm: n=%d protocol=%v scheduler=%s seed=%d\n", n, swarm.Protocol(), scheduler, seed)
	}
	if err := swarm.Send(from, to, []byte(msg)); err != nil {
		return err
	}
	msgs, steps, err := swarm.RunUntilDelivered(1, budget)
	if err != nil {
		return err
	}
	fmt.Printf("robot %d -> robot %d in %d instants: %q\n", msgs[0].From, msgs[0].To, steps, msgs[0].Payload)
	if !quiet {
		fmt.Printf("sender excursions: %d; sender distance: %.2f; min pairwise distance: %.3f\n",
			swarm.SentBits(from), swarm.TotalDistance(from), swarm.MinPairwiseDistance())
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := swarm.WriteTraceCSV(f); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("trace written to %s\n", tracePath)
		}
	}
	return nil
}
