package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunScenarios(t *testing.T) {
	tests := []struct {
		name string
		cfg  config
	}{
		{"two sync", config{n: 2, sync: true, seed: 1, from: 0, to: 1, msg: "HI", scheduler: "random", budget: 100_000, quiet: true}},
		{"n async sec", config{n: 5, seed: 2, from: 0, to: 3, msg: "X", scheduler: "random", budget: 5_000_000, quiet: true}},
		{"ids round robin", config{n: 4, ids: true, seed: 3, from: 1, to: 2, msg: "Y", scheduler: "roundrobin", budget: 5_000_000}},
		{"bounded starver", config{n: 4, compass: true, seed: 4, from: 0, to: 2, msg: "Z", bounded: 2, scheduler: "starver", budget: 10_000_000, quiet: true}},
		{"levels", config{n: 2, sync: true, seed: 5, from: 0, to: 1, msg: "L", levels: 16, scheduler: "random", budget: 100_000, quiet: true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestRunWithTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	cfg := config{n: 2, sync: true, seed: 1, from: 0, to: 1, msg: "T", scheduler: "random", budget: 100_000, quiet: true, tracePath: path}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time,robot,x,y\n") {
		t.Errorf("trace header wrong: %q", string(data[:20]))
	}
}

func TestRunBadScheduler(t *testing.T) {
	cfg := config{n: 2, sync: true, seed: 1, from: 0, to: 1, msg: "HI", scheduler: "bogus", budget: 1000, quiet: true}
	if err := run(cfg); err == nil {
		t.Error("bad scheduler accepted")
	}
}

func TestRunWithListen(t *testing.T) {
	// Non-blocking -listen: endpoint comes up, the run completes, the
	// server is torn down by the deferred closer.
	cfg := config{n: 2, sync: true, seed: 1, from: 0, to: 1, msg: "M", scheduler: "random", budget: 100_000, quiet: true, listen: "127.0.0.1:0"}
	if err := run(cfg); err != nil {
		t.Error(err)
	}
}

func TestObsCheck(t *testing.T) {
	if err := run(config{obsCheck: true}); err != nil {
		t.Error(err)
	}
}
