package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunScenarios(t *testing.T) {
	tests := []struct {
		name string
		f    func() error
	}{
		{"two sync", func() error {
			return run(2, true, false, false, 1, 0, 1, "HI", 0, 0, "random", 100_000, true, "")
		}},
		{"n async sec", func() error {
			return run(5, false, false, false, 2, 0, 3, "X", 0, 0, "random", 5_000_000, true, "")
		}},
		{"ids round robin", func() error {
			return run(4, false, true, false, 3, 1, 2, "Y", 0, 0, "roundrobin", 5_000_000, false, "")
		}},
		{"bounded starver", func() error {
			return run(4, false, false, true, 4, 0, 2, "Z", 0, 2, "starver", 10_000_000, true, "")
		}},
		{"levels", func() error {
			return run(2, true, false, false, 5, 0, 1, "L", 16, 0, "random", 100_000, true, "")
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.f(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestRunWithTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := run(2, true, false, false, 1, 0, 1, "T", 0, 0, "random", 100_000, true, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time,robot,x,y\n") {
		t.Errorf("trace header wrong: %q", string(data[:20]))
	}
}

func TestRunBadScheduler(t *testing.T) {
	if err := run(2, true, false, false, 1, 0, 1, "HI", 0, 0, "bogus", 1000, true, ""); err == nil {
		t.Error("bad scheduler accepted")
	}
}
