// Command waggle-chaos runs the fault-injection harness: scripted
// fault plans (crash-recover, displacement, observation faults,
// movement errors, radio outages, jamming ramps, and a combined
// scenario) swept across the protocols, reporting delivery rate,
// latency, messenger retry counters, and steps-to-recover.
//
// Identical seeds reproduce identical reports, under every engine.
//
// Usage:
//
//	waggle-chaos                     # all scenarios, automatic engine
//	waggle-chaos -scenario jam-ramp  # one scenario
//	waggle-chaos -seed 7 -csv        # reseeded, machine-readable
//	waggle-chaos -engine parallel    # force the parallel step engine
//	waggle-chaos -list               # scenario names
package main

import (
	"flag"
	"fmt"
	"os"

	"waggle"
	"waggle/internal/render"
	"waggle/internal/sweep"
)

func main() {
	scenario := flag.String("scenario", "", "scenario name (empty = all); see -list")
	seed := flag.Int64("seed", 1, "seed for schedulers, frames, fault draws and jamming")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	engine := flag.String("engine", "auto", "step engine: auto|sequential|parallel")
	list := flag.Bool("list", false, "list scenario names and exit")
	flag.Parse()
	if err := run(*scenario, *seed, *csv, *engine, *list); err != nil {
		fmt.Fprintln(os.Stderr, "waggle-chaos:", err)
		os.Exit(1)
	}
}

func run(scenario string, seed int64, csv bool, engineName string, list bool) error {
	if list {
		for _, sc := range sweep.ChaosScenarios(seed) {
			fmt.Printf("%-16s %s\n", sc.Name, sc.Family)
		}
		return nil
	}
	engine, err := parseEngine(engineName)
	if err != nil {
		return err
	}
	var tbl *render.Table
	if scenario == "" {
		if tbl, err = sweep.ChaosTable(seed, engine); err != nil {
			return err
		}
	} else {
		sc, err := findScenario(scenario, seed)
		if err != nil {
			return err
		}
		r, err := sweep.RunChaosScenario(sc, engine, false)
		if err != nil {
			return err
		}
		tbl = render.NewTable("scenario", "family", "protocol", "sent", "delivered", "rate",
			"mean latency", "retries", "failovers", "failbacks", "implicit acks", "steps to recover")
		tbl.AddRow(r.Scenario, r.Family, r.Protocol, r.Sent, r.Delivered, r.Rate(),
			r.MeanLatency, r.Retries, r.Failovers, r.Failbacks, r.ImplicitAcks, r.StepsToRecover)
	}
	if csv {
		fmt.Print(tbl.CSV())
	} else {
		fmt.Print(tbl.String())
	}
	return nil
}

func parseEngine(name string) (waggle.EngineMode, error) {
	switch name {
	case "auto", "":
		return waggle.EngineAuto, nil
	case "sequential":
		return waggle.EngineSequential, nil
	case "parallel":
		return waggle.EngineParallel, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (auto|sequential|parallel)", name)
	}
}

func findScenario(name string, seed int64) (sweep.ChaosScenario, error) {
	all := sweep.ChaosScenarios(seed)
	for _, sc := range all {
		if sc.Name == name {
			return sc, nil
		}
	}
	names := make([]string, len(all))
	for i, sc := range all {
		names[i] = sc.Name
	}
	return sweep.ChaosScenario{}, fmt.Errorf("unknown scenario %q (try: %v)", name, names)
}
