// Command waggle-chaos runs the fault-injection harness: scripted
// fault plans (crash-recover, displacement, observation faults,
// movement errors, radio outages, jamming ramps, and a combined
// scenario) swept across the protocols, reporting delivery rate,
// latency, messenger retry counters, and steps-to-recover.
//
// Identical seeds reproduce identical reports, under every engine.
//
// Usage:
//
//	waggle-chaos                     # all scenarios, automatic engine
//	waggle-chaos -scenario jam-ramp  # one scenario
//	waggle-chaos -seed 7 -csv        # reseeded, machine-readable
//	waggle-chaos -engine parallel    # force the parallel step engine
//	waggle-chaos -o report.json      # schema-stable JSON with obs rollups
//	waggle-chaos -listen :8080       # serve /metrics, /trace, pprof
//	waggle-chaos -list               # scenario names
//	waggle-chaos -resume-check       # verify kill-and-resume determinism
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"waggle"
	"waggle/internal/ckpt"
	"waggle/internal/obs"
	"waggle/internal/sweep"
)

// config carries the parsed flags; tests drive run with it directly.
type config struct {
	scenario string
	seed     int64
	csv      bool
	engine   string
	list     bool
	out      string // -o: JSON report path ("-" = stdout)
	listen   string // -listen: introspection endpoint address
	block    bool   // keep serving after the run until interrupted

	resumeCheck bool   // -resume-check: verify kill-and-resume determinism and exit
	killAt      int    // -kill-at: instant of the simulated death
	ckptCodec   string // -ckpt-codec: serialization for the resume-check round trip
}

func main() {
	var cfg config
	flag.StringVar(&cfg.scenario, "scenario", "", "scenario name (empty = all); see -list")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for schedulers, frames, fault draws and jamming")
	flag.BoolVar(&cfg.csv, "csv", false, "emit CSV instead of an aligned table")
	flag.StringVar(&cfg.engine, "engine", "auto", "step engine: auto|sequential|parallel")
	flag.BoolVar(&cfg.list, "list", false, "list scenario names and exit")
	flag.StringVar(&cfg.out, "o", "", "write the schema-stable JSON report to this file (- = stdout)")
	flag.StringVar(&cfg.listen, "listen", "", "serve the observability endpoint (/metrics, /trace, pprof) on this address")
	flag.BoolVar(&cfg.resumeCheck, "resume-check", false, "kill each scenario mid-plan, checkpoint, resume, and verify byte-identical traces; exit nonzero on divergence")
	flag.IntVar(&cfg.killAt, "kill-at", 150, "instant of the simulated process death for -resume-check")
	flag.StringVar(&cfg.ckptCodec, "ckpt-codec", "binary", "checkpoint serialization for -resume-check: json|binary|delta")
	flag.Parse()
	cfg.block = cfg.listen != ""
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "waggle-chaos:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if cfg.list {
		for _, sc := range sweep.ChaosScenarios(cfg.seed) {
			fmt.Printf("%-16s %s\n", sc.Name, sc.Family)
		}
		return nil
	}
	engine, err := sweep.ParseEngineMode(cfg.engine)
	if err != nil {
		return err
	}
	if cfg.resumeCheck {
		return resumeCheck(cfg, engine)
	}
	if cfg.scenario != "" {
		if _, err := sweep.FindChaosScenario(cfg.scenario, cfg.seed); err != nil {
			return err
		}
	}
	var obsv *waggle.Observer
	var stop func()
	if cfg.listen != "" {
		obsv = waggle.NewObserver()
		if stop, err = serveIntrospection(cfg.listen, obsv); err != nil {
			return err
		}
		defer stop()
	}
	report, err := sweep.ChaosReportFor(cfg.scenario, cfg.seed, engine, obsv)
	if err != nil {
		return err
	}
	tbl := sweep.ChaosResultTable(report.Results)
	if cfg.csv {
		fmt.Print(tbl.CSV())
	} else {
		fmt.Print(tbl.String())
	}
	if cfg.out != "" {
		if err := writeReport(cfg.out, report); err != nil {
			return err
		}
	}
	if cfg.block {
		fmt.Println("serving observability endpoint; interrupt to exit")
		waitForInterrupt()
	}
	return nil
}

// resumeCheck runs each scenario twice — uninterrupted, and with a
// simulated process death at -kill-at followed by a checkpoint restore
// — and verifies the movement traces and reports are byte-identical.
// One scenario can be selected with -scenario; the default sweeps all.
func resumeCheck(cfg config, engine waggle.EngineMode) error {
	codec, err := waggle.ParseCheckpointCodec(cfg.ckptCodec)
	if err != nil {
		return err
	}
	scenarios := sweep.ChaosScenarios(cfg.seed)
	if cfg.scenario != "" {
		sc, err := sweep.FindChaosScenario(cfg.scenario, cfg.seed)
		if err != nil {
			return err
		}
		scenarios = []sweep.ChaosScenario{sc}
	}
	for _, sc := range scenarios {
		killAt := cfg.killAt
		if killAt >= sc.Budget {
			killAt = sc.Budget / 2
		}
		want, err := sweep.RunChaosScenario(sc, engine, true)
		if err != nil {
			return err
		}
		got, err := sweep.RunChaosScenarioResumedCodec(sc, engine, killAt, codec)
		if err != nil {
			return err
		}
		if got.TraceCSV != want.TraceCSV {
			return fmt.Errorf("resume-check %s: resumed trace diverges from the uninterrupted run (kill at t=%d, codec %s)", sc.Name, killAt, codec)
		}
		fmt.Printf("resume-check ok: %-16s killed at t=%-5d codec=%-6s trace byte-identical (%d bytes)\n",
			sc.Name, killAt, codec, len(want.TraceCSV))
	}
	return nil
}

// writeReport lands the report atomically (temp + fsync + rename):
// a reader — or a CI diff — never sees a torn file, even if the
// process dies mid-write.
func writeReport(path string, report *sweep.ChaosReport) error {
	if path == "-" {
		return report.WriteJSON(os.Stdout)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		return err
	}
	return ckpt.WriteFileAtomic(path, buf.Bytes())
}

// serveIntrospection starts the observability endpoint in the
// background via the shared obs wiring (hardened timeouts, graceful
// drain on stop), returning a closer that logs any shutdown error.
func serveIntrospection(addr string, o *waggle.Observer) (func(), error) {
	stop, err := obs.StartIntrospection(addr, o.Handler(), os.Stdout)
	if err != nil {
		return nil, err
	}
	return func() {
		if err := stop(); err != nil {
			fmt.Fprintf(os.Stderr, "waggle-chaos: %v\n", err)
		}
	}, nil
}

func waitForInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}
