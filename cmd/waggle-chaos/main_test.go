package main

import "testing"

func TestRunOneScenario(t *testing.T) {
	if err := run("radio-outage", 1, false, "auto", false); err != nil {
		t.Error(err)
	}
	if err := run("displace-sync", 1, true, "sequential", false); err != nil {
		t.Error(err)
	}
}

func TestRunList(t *testing.T) {
	if err := run("", 1, false, "auto", true); err != nil {
		t.Error(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run("nope", 1, false, "auto", false); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run("", 1, false, "warp", false); err == nil {
		t.Error("unknown engine accepted")
	}
}
