package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"waggle/internal/sweep"
)

func TestRunOneScenario(t *testing.T) {
	if err := run(config{scenario: "radio-outage", seed: 1, engine: "auto"}); err != nil {
		t.Error(err)
	}
	if err := run(config{scenario: "displace-sync", seed: 1, csv: true, engine: "sequential"}); err != nil {
		t.Error(err)
	}
}

func TestRunList(t *testing.T) {
	if err := run(config{seed: 1, engine: "auto", list: true}); err != nil {
		t.Error(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run(config{scenario: "nope", seed: 1, engine: "auto"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run(config{seed: 1, engine: "warp"}); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestRunJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	if err := run(config{scenario: "radio-outage", seed: 1, engine: "auto", out: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report sweep.ChaosReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Schema != sweep.ChaosReportSchema {
		t.Errorf("schema = %q, want %q", report.Schema, sweep.ChaosReportSchema)
	}
	if len(report.Results) != 1 || report.Results[0].Scenario != "radio-outage" {
		t.Fatalf("results = %+v", report.Results)
	}
	if v := report.Results[0].Obs["waggle_msgr_retries_total"]; v == 0 {
		t.Errorf("obs rollup missing retries: %v", report.Results[0].Obs)
	}
}

func TestServeIntrospection(t *testing.T) {
	// -listen without block: the endpoint must come up and serve during
	// the run; run() itself is exercised non-blocking.
	if err := run(config{scenario: "displace-sync", seed: 1, engine: "auto", listen: "127.0.0.1:0"}); err != nil {
		t.Error(err)
	}
}
