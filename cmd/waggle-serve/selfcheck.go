package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"waggle/internal/obs"
	"waggle/internal/serve"
)

// selfCheck is `make serve-check`: one full session lifecycle against
// the daemon's own listener — create, step, evict to the checkpoint
// chain, transparently resume, verify the metrics saw it, delete —
// with no external dependencies. The caller drains afterwards, so a
// passing self-check also exercises graceful shutdown.
func selfCheck(base string, srv *serve.Server) error {
	var created serve.CreateResponse
	err := call("POST", base+"/v1/sessions", serve.CreateRequest{
		Positions:   [][2]float64{{0, 0}, {10, 0}},
		Synchronous: true,
		Seed:        7,
		Trace:       true,
	}, http.StatusCreated, &created)
	if err != nil {
		return fmt.Errorf("serve-check: create: %w", err)
	}
	sessURL := base + "/v1/sessions/" + created.ID

	var step serve.StepResponse
	if err := call("POST", sessURL+"/step", serve.StepRequest{Steps: 10}, http.StatusOK, &step); err != nil {
		return fmt.Errorf("serve-check: step: %w", err)
	}
	if step.Time != 10 {
		return fmt.Errorf("serve-check: stepped to t=%d, want 10", step.Time)
	}

	if n := srv.EvictIdle(0); n != 1 {
		return fmt.Errorf("serve-check: evicted %d sessions, want 1", n)
	}
	var info serve.InfoResponse
	if err := call("GET", sessURL, nil, http.StatusOK, &info); err != nil {
		return fmt.Errorf("serve-check: info: %w", err)
	}
	if info.State != "evicted" {
		return fmt.Errorf("serve-check: state %q after evict, want evicted", info.State)
	}

	// The next touch must transparently resume from the chain.
	if err := call("POST", sessURL+"/step", serve.StepRequest{Steps: 10}, http.StatusOK, &step); err != nil {
		return fmt.Errorf("serve-check: step after evict: %w", err)
	}
	var observed serve.ObserveResponse
	if err := call("GET", sessURL+"/observe?digest=1", nil, http.StatusOK, &observed); err != nil {
		return fmt.Errorf("serve-check: observe: %w", err)
	}
	if observed.Time != 20 || observed.Resumes != 1 || observed.State != "active" {
		return fmt.Errorf("serve-check: resumed session observed t=%d resumes=%d state=%q, want t=20 resumes=1 active",
			observed.Time, observed.Resumes, observed.State)
	}
	if observed.Digest == "" {
		return fmt.Errorf("serve-check: no trace digest on a traced session")
	}

	// Spectate the session's movement stream from the beginning: the
	// stream must hold a header, the instant-0 keyframe, the 20 steps
	// (with the evict-time closing keyframe and the resume-time reopen
	// keyframe in between), and rolling the moves forward must land on
	// the observed positions.
	var spec serve.SpectateResponse
	if err := call("GET", sessURL+"/spectate?offset=0", nil, http.StatusOK, &spec); err != nil {
		return fmt.Errorf("serve-check: spectate: %w", err)
	}
	steps, keyframes := 0, 0
	for _, rec := range spec.Records {
		switch rec.Kind {
		case "step":
			steps++
		case "keyframe":
			keyframes++
		}
	}
	if len(spec.Records) == 0 || spec.Records[0].Kind != "header" || steps != 20 || keyframes < 3 {
		return fmt.Errorf("serve-check: spectate saw %d records (%d steps, %d keyframes), want header + 20 steps + >=3 keyframes",
			len(spec.Records), steps, keyframes)
	}
	pos := append([][2]float64(nil), spec.Records[1].Positions...)
	for _, rec := range spec.Records[2:] {
		for _, m := range rec.Moves {
			pos[m.Robot] = [2]float64{m.X, m.Y}
		}
	}
	for i, p := range observed.Positions {
		if pos[i] != p {
			return fmt.Errorf("serve-check: spectate replay diverged at robot %d: %v vs observed %v", i, pos[i], p)
		}
	}

	var snap obs.Snapshot
	if err := call("GET", base+"/metrics.json", nil, http.StatusOK, &snap); err != nil {
		return fmt.Errorf("serve-check: metrics.json: %w", err)
	}
	for _, name := range []string{
		"waggle_serve_sessions_created_total",
		"waggle_serve_evictions_total",
		"waggle_serve_resumes_total",
		"waggle_serve_spectates_total",
	} {
		if v, ok := snap.CounterValue(name); !ok || v == 0 {
			return fmt.Errorf("serve-check: counter %s missing or zero", name)
		}
	}

	if err := call("DELETE", sessURL, nil, http.StatusNoContent, nil); err != nil {
		return fmt.Errorf("serve-check: delete: %w", err)
	}
	fmt.Printf("serve-check ok: session %s created, stepped to t=10, evicted, resumed to t=20, spectated %d stream records, deleted\n",
		created.ID, len(spec.Records))
	return nil
}

// call issues one JSON request and decodes the reply, enforcing the
// expected status.
func call(method, url string, body any, wantStatus int, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, bytes.TrimSpace(raw))
	}
	if out != nil && len(raw) > 0 {
		return json.Unmarshal(raw, out)
	}
	return nil
}
