// Command waggle-serve is the multi-tenant swarm session daemon: it
// hosts many concurrent swarm sessions behind an HTTP/JSON API and
// degrades gracefully under hostile traffic (backpressure, deadlines,
// step budgets, idle eviction to checkpoint chains, drain-on-shutdown).
//
// Examples:
//
//	waggle-serve -listen 127.0.0.1:8080 -dir /var/lib/waggle
//	waggle-serve -rate 2000 -burst 200         # throttle to 2k ops/s
//	waggle-serve -idle-after 30s               # aggressive eviction
//	waggle-serve -self-check                   # smoke the full lifecycle and exit
//
// The API lives under /v1 (sessions, step, send, observe); the same
// listener serves the observability endpoints (/metrics,
// /metrics.json, /trace, /snapshot, /debug/pprof/).
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting work,
// in-flight operations finish, and every live session is folded into
// its checkpoint chain in -dir, so a restarted daemon pointed at the
// same directory resumes every session byte-identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"waggle/internal/obs"
	"waggle/internal/serve"
)

type config struct {
	listen       string
	dir          string
	shards       int
	queueDepth   int
	maxSessions  int
	maxRobots    int
	stepBudget   int
	maxSteps     int
	reqTimeout   time.Duration
	idleAfter    time.Duration
	evictScan    time.Duration
	rate         float64
	burst        int
	observeWait  time.Duration
	drainTimeout time.Duration
	stream       bool
	selfCheck    bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:8080", "address to serve the /v1 API and observability endpoints on")
	flag.StringVar(&cfg.dir, "dir", "waggle-serve-data", "checkpoint directory (one delta chain per session; recovered on restart)")
	flag.IntVar(&cfg.shards, "shards", 0, "worker-pool shards sessions are pinned across (0 = 2x GOMAXPROCS)")
	flag.IntVar(&cfg.queueDepth, "queue-depth", 0, "bounded per-shard queue depth; a full queue sheds 503 (0 = default 128)")
	flag.IntVar(&cfg.maxSessions, "max-sessions", 0, "session capacity, live + evicted (0 = default 16384)")
	flag.IntVar(&cfg.maxRobots, "max-robots", 0, "largest swarm a session may host (0 = default 128)")
	flag.IntVar(&cfg.stepBudget, "step-budget", 0, "lifetime instant budget per session (0 = default 100000)")
	flag.IntVar(&cfg.maxSteps, "max-steps", 0, "largest single step request (0 = default 10000)")
	flag.DurationVar(&cfg.reqTimeout, "request-timeout", 0, "per-request execution deadline (0 = default 10s)")
	flag.DurationVar(&cfg.idleAfter, "idle-after", 0, "evict sessions untouched this long to their checkpoint chains (0 = default 2m)")
	flag.DurationVar(&cfg.evictScan, "evict-scan", 0, "idle-eviction scan period (0 = default 1s)")
	flag.Float64Var(&cfg.rate, "rate", 0, "global token-bucket rate over /v1 requests in ops/s (0 = unthrottled)")
	flag.IntVar(&cfg.burst, "burst", 0, "token-bucket burst (0 = rate)")
	flag.DurationVar(&cfg.observeWait, "max-observe-wait", 0, "longest observe/spectate long-poll (0 = default 30s)")
	flag.BoolVar(&cfg.stream, "stream", false, "record a waggle-stream/v1 movement stream per session and serve the spectate endpoint")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "how long shutdown waits for in-flight work to drain")
	flag.BoolVar(&cfg.selfCheck, "self-check", false, "start on an ephemeral port, run one create/step/evict/resume/delete cycle, drain, and exit")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "waggle-serve:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if cfg.selfCheck {
		cfg.listen = "127.0.0.1:0"
		// The self-check exercises the full surface, streaming included.
		cfg.stream = true
		dir, err := os.MkdirTemp("", "waggle-serve-check-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.dir = dir
	}

	ob := obs.New(4096)
	srv, err := serve.New(serve.Options{
		Dir:                cfg.dir,
		Shards:             cfg.shards,
		QueueDepth:         cfg.queueDepth,
		MaxSessions:        cfg.maxSessions,
		MaxRobots:          cfg.maxRobots,
		StepBudget:         cfg.stepBudget,
		MaxStepsPerRequest: cfg.maxSteps,
		RequestTimeout:     cfg.reqTimeout,
		IdleAfter:          cfg.idleAfter,
		EvictScan:          cfg.evictScan,
		Rate:               cfg.rate,
		Burst:              cfg.burst,
		MaxObserveWait:     cfg.observeWait,
		Stream:             cfg.stream,
	}, ob)
	if err != nil {
		return err
	}

	// The long-poll observe endpoint holds responses open up to the
	// observe wait, so the write timeout must clear it with margin; the
	// other knobs keep the hardened introspection defaults.
	observeWait := 30 * time.Second
	if cfg.observeWait > 0 {
		observeWait = cfg.observeWait
	}
	addr, stopHTTP, err := obs.ServeWith(cfg.listen, srv.Handler(), obs.ServeOptions{
		WriteTimeout:  observeWait + 15*time.Second,
		ShutdownGrace: 5 * time.Second,
	})
	if err != nil {
		return err
	}
	active, evicted := srv.Counts()
	fmt.Printf("waggle-serve: listening on http://%s (dir=%s, recovered %d evicted sessions)\n",
		addr, cfg.dir, evicted)
	_ = active

	if cfg.selfCheck {
		checkErr := selfCheck(fmt.Sprintf("http://%s", addr), srv)
		drainErr := drain(srv, stopHTTP, cfg.drainTimeout)
		if checkErr != nil {
			return checkErr
		}
		return drainErr
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("waggle-serve: %v received, draining\n", got)
	if err := drain(srv, stopHTTP, cfg.drainTimeout); err != nil {
		return err
	}
	active, evicted = srv.Counts()
	fmt.Printf("waggle-serve: drained; %d live sessions checkpointed, %d evicted chains on disk\n",
		active, evicted)
	return nil
}

// drain stops the listener, then drains and checkpoints the session
// daemon — the graceful-degradation exit every signal path shares.
func drain(srv *serve.Server, stopHTTP func() error, timeout time.Duration) error {
	httpErr := stopHTTP()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	return httpErr
}
