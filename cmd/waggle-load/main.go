// Command waggle-load drives the waggle-serve session daemon with
// thousands of simulated clients and reports what the daemon sustained:
// session-creation throughput, step-latency percentiles, eviction and
// resume counts, and how overload traffic was shed.
//
// By default it starts an in-process daemon on an ephemeral port (so
// `make bench-serve` needs no running server) and runs three phases:
//
//  1. create: N concurrent sessions (all stay alive for the whole run)
//  2. step rounds: every session is stepped each round; between rounds
//     every session is force-evicted to its checkpoint chain, so the
//     next round's traffic is create/step/evict/resume mixed — each op
//     transparently resumes the session it touches
//  3. overload: a deliberately tiny throttled server is hit with an
//     instantaneous burst to demonstrate 429/503 backpressure
//
// Results are written to -out (BENCH_serve.json).
//
//	waggle-load                      # 1000 sessions, in-process daemon
//	waggle-load -sessions 5000 -workers 256
//	waggle-load -addr 127.0.0.1:8080 # drive an external daemon
//	waggle-load -smoke               # seconds-long CI smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"waggle/internal/obs"
	"waggle/internal/serve"
)

type config struct {
	addr     string
	sessions int
	robots   int
	workers  int
	rounds   int
	steps    int
	overload int
	out      string
	smoke    bool
}

// benchResult is the BENCH_serve.json schema.
type benchResult struct {
	Sessions           int     `json:"sessions"`
	ConcurrentSessions int     `json:"concurrent_sessions"`
	Robots             int     `json:"robots"`
	Workers            int     `json:"workers"`
	StepRounds         int     `json:"step_rounds"`
	StepsPerOp         int     `json:"steps_per_op"`
	CreateSeconds      float64 `json:"create_seconds"`
	SessionsPerSec     float64 `json:"sessions_per_sec"`
	StepOps            int     `json:"step_ops"`
	StepSeconds        float64 `json:"step_seconds"`
	StepOpsPerSec      float64 `json:"step_ops_per_sec"`
	StepP50MS          float64 `json:"step_p50_ms"`
	StepP99MS          float64 `json:"step_p99_ms"`
	Evictions          int64   `json:"evictions"`
	Resumes            int64   `json:"resumes"`
	CheckpointBytes    int64   `json:"checkpoint_bytes"`
	Overload           struct {
		Requests     int `json:"requests"`
		Throttled429 int `json:"throttled_429"`
		Shed503      int `json:"shed_503"`
	} `json:"overload"`
	Errors int `json:"errors"`
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "address of a running waggle-serve (empty = start one in-process)")
	flag.IntVar(&cfg.sessions, "sessions", 1000, "concurrent sessions to create and keep alive")
	flag.IntVar(&cfg.robots, "robots", 4, "robots per session")
	flag.IntVar(&cfg.workers, "workers", 128, "concurrent client workers")
	flag.IntVar(&cfg.rounds, "rounds", 3, "step rounds (every session stepped once per round; evict-all between rounds)")
	flag.IntVar(&cfg.steps, "steps", 20, "instants per step request")
	flag.IntVar(&cfg.overload, "overload", 200, "requests in the instantaneous overload burst")
	flag.StringVar(&cfg.out, "out", "BENCH_serve.json", "result JSON path")
	flag.BoolVar(&cfg.smoke, "smoke", false, "seconds-long run for CI (overrides the scale flags)")
	flag.Parse()
	if cfg.smoke {
		cfg.sessions, cfg.workers, cfg.rounds, cfg.steps, cfg.overload = 32, 8, 2, 10, 40
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "waggle-load:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	client := &http.Client{
		Transport: &http.Transport{MaxIdleConns: cfg.workers * 2, MaxIdleConnsPerHost: cfg.workers * 2},
		Timeout:   60 * time.Second,
	}

	base := "http://" + cfg.addr
	var inproc *serve.Server
	if cfg.addr == "" {
		dir, err := os.MkdirTemp("", "waggle-load-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		srv, err := serve.New(serve.Options{
			Dir:         dir,
			MaxSessions: cfg.sessions + 16,
			IdleAfter:   time.Hour, // eviction is driven explicitly between rounds
			StepBudget:  cfg.rounds*cfg.steps + 1000,
		}, obs.New(1024))
		if err != nil {
			return err
		}
		addr, stopHTTP, err := obs.ServeWith("127.0.0.1:0", srv.Handler(), obs.ServeOptions{})
		if err != nil {
			return err
		}
		defer stopHTTP()
		inproc = srv
		base = fmt.Sprintf("http://%s", addr)
		fmt.Printf("waggle-load: in-process daemon on %s (dir=%s)\n", base, dir)
	}

	var result benchResult
	result.Sessions, result.Robots, result.Workers = cfg.sessions, cfg.robots, cfg.workers
	result.StepRounds, result.StepsPerOp = cfg.rounds, cfg.steps

	lc := newLoadClient(client, base)

	// Phase 1: create all sessions concurrently; they stay alive (and
	// countable) for the rest of the run.
	createStart := time.Now()
	ids := make([]string, cfg.sessions)
	forEach(cfg.workers, cfg.sessions, func(i int) {
		id, err := lc.create(cfg.robots, int64(i+1))
		if err != nil {
			lc.fail(err)
			return
		}
		ids[i] = id
	})
	result.CreateSeconds = time.Since(createStart).Seconds()
	result.SessionsPerSec = float64(cfg.sessions) / result.CreateSeconds
	fmt.Printf("waggle-load: created %d sessions in %.2fs (%.0f sessions/s)\n",
		cfg.sessions, result.CreateSeconds, result.SessionsPerSec)

	// Phase 2: step every session each round, force-evicting everything
	// between rounds so resumed-from-chain traffic dominates.
	stepStart := time.Now()
	for round := 0; round < cfg.rounds; round++ {
		if inproc != nil && round > 0 {
			evicted := inproc.EvictIdle(0)
			fmt.Printf("waggle-load: round %d: evicted %d sessions to their chains\n", round, evicted)
		}
		forEach(cfg.workers, cfg.sessions, func(i int) {
			if ids[i] == "" {
				return
			}
			if err := lc.step(ids[i], cfg.steps); err != nil {
				lc.fail(err)
			}
		})
	}
	result.StepSeconds = time.Since(stepStart).Seconds()
	result.StepOps = len(lc.samples())
	result.StepOpsPerSec = float64(result.StepOps) / result.StepSeconds

	// Every session must have survived all rounds (across evictions)
	// with exactly rounds*steps instants on its clock.
	wantTime := cfg.rounds * cfg.steps
	forEach(cfg.workers, cfg.sessions, func(i int) {
		if ids[i] == "" {
			return
		}
		tm, err := lc.observeTime(ids[i])
		if err != nil {
			lc.fail(err)
			return
		}
		if tm != wantTime {
			lc.fail(fmt.Errorf("session %s at t=%d, want %d", ids[i], tm, wantTime))
		}
	})
	result.ConcurrentSessions = lc.countSessions()
	p50, p99 := percentiles(lc.samples())
	result.StepP50MS, result.StepP99MS = p50, p99
	fmt.Printf("waggle-load: %d step ops in %.2fs (%.0f ops/s), p50 %.2fms p99 %.2fms, %d concurrent sessions\n",
		result.StepOps, result.StepSeconds, result.StepOpsPerSec, p50, p99, result.ConcurrentSessions)

	// Daemon-side counters (works for in-process and external daemons).
	var snap obs.Snapshot
	if err := lc.getJSON(base+"/metrics.json", &snap); err != nil {
		return fmt.Errorf("metrics.json: %w", err)
	}
	result.Evictions, _ = snap.CounterValue("waggle_serve_evictions_total")
	result.Resumes, _ = snap.CounterValue("waggle_serve_resumes_total")
	result.CheckpointBytes, _ = snap.CounterValue("waggle_serve_checkpoint_bytes_total")

	// Phase 3: overload a deliberately tiny, throttled daemon with an
	// instantaneous burst; backpressure must answer 429/503, never
	// unbounded queueing.
	over, err := overloadBurst(cfg.overload)
	if err != nil {
		return err
	}
	result.Overload = over
	fmt.Printf("waggle-load: overload burst of %d requests: %d throttled (429), %d shed (503)\n",
		over.Requests, over.Throttled429, over.Shed503)

	result.Errors = lc.errorCount()
	if result.Errors > 0 {
		for _, e := range lc.errorSample() {
			fmt.Fprintf(os.Stderr, "waggle-load: error: %v\n", e)
		}
	}

	if inproc != nil {
		ctx, cancel := contextWithTimeout(30 * time.Second)
		defer cancel()
		if err := inproc.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
	}

	f, err := os.Create(cfg.out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(result); err != nil {
		return err
	}
	fmt.Printf("waggle-load: results written to %s\n", cfg.out)
	if result.Errors > 0 {
		return fmt.Errorf("%d requests failed", result.Errors)
	}
	return nil
}

// forEach fans n indexed work items across a bounded worker pool.
func forEach(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// percentiles returns the p50/p99 of the samples in milliseconds.
func percentiles(samples []float64) (p50, p99 float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(0.50) * 1000, at(0.99) * 1000
}
