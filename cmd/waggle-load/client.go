package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"waggle/internal/obs"
	"waggle/internal/retry"
	"waggle/internal/serve"
)

// backpressurePolicy is how a simulated client honors Retry-After: up
// to 8 retries, advertised waits capped at a second so a load run
// cannot stall, no jitter (the daemon's advertised delays already
// spread the herd).
var backpressurePolicy = retry.Policy{
	MaxAttempts: 9,
	Base:        50 * time.Millisecond,
	Cap:         time.Second,
}.WithoutJitter()

// loadClient is the shared state of all simulated clients: one HTTP
// client, the latency samples, and the error tally.
type loadClient struct {
	hc   *http.Client
	base string

	mu       sync.Mutex
	lat      []float64 // seconds per successful step op
	errs     []error
	errCount int
}

func newLoadClient(hc *http.Client, base string) *loadClient {
	return &loadClient{hc: hc, base: base}
}

func (lc *loadClient) fail(err error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.errCount++
	if len(lc.errs) < 5 {
		lc.errs = append(lc.errs, err)
	}
}

func (lc *loadClient) errorCount() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.errCount
}

func (lc *loadClient) errorSample() []error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]error(nil), lc.errs...)
}

func (lc *loadClient) samples() []float64 {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]float64(nil), lc.lat...)
}

func (lc *loadClient) recordLatency(d time.Duration) {
	lc.mu.Lock()
	lc.lat = append(lc.lat, d.Seconds())
	lc.mu.Unlock()
}

// doJSON issues one request, honoring Retry-After backpressure like a
// well-behaved client: 429/503 replies are retried after the advertised
// delay (capped by backpressurePolicy), everything else is final.
func (lc *loadClient) doJSON(method, url string, body, out any) (int, error) {
	var payload []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		payload = b
	}
	var lastStatus int
	err := retry.Do(backpressurePolicy, 0, nil, func(int) error {
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return retry.Permanent(err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := lc.hc.Do(req)
		if err != nil {
			return retry.Permanent(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return retry.Permanent(err)
		}
		lastStatus = resp.StatusCode
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			hint, _ := retry.ParseRetryAfter(resp.Header.Get("Retry-After"))
			return retry.Hint(fmt.Errorf("%s %s: still backpressured (status %d)", method, url, resp.StatusCode), hint)
		}
		if resp.StatusCode >= 400 {
			return retry.Permanent(fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, bytes.TrimSpace(raw)))
		}
		if out != nil && len(raw) > 0 {
			if err := json.Unmarshal(raw, out); err != nil {
				return retry.Permanent(err)
			}
		}
		return nil
	})
	return lastStatus, err
}

func (lc *loadClient) getJSON(url string, out any) error {
	_, err := lc.doJSON("GET", url, nil, out)
	return err
}

// create builds one session: robots on a circle-ish lattice, traced so
// eviction transparency stays checkable.
func (lc *loadClient) create(robots int, seed int64) (string, error) {
	positions := make([][2]float64, robots)
	for i := range positions {
		positions[i] = [2]float64{float64(i%8) * 9, float64(i/8) * 9}
	}
	var resp serve.CreateResponse
	_, err := lc.doJSON("POST", lc.base+"/v1/sessions", serve.CreateRequest{
		Positions: positions,
		Seed:      seed,
		Trace:     true,
	}, &resp)
	if err != nil {
		return "", err
	}
	return resp.ID, nil
}

// step advances one session and records the op latency.
func (lc *loadClient) step(id string, steps int) error {
	start := time.Now()
	_, err := lc.doJSON("POST", lc.base+"/v1/sessions/"+id+"/step", serve.StepRequest{Steps: steps}, nil)
	if err != nil {
		return err
	}
	lc.recordLatency(time.Since(start))
	return nil
}

// observeTime reads one session's clock.
func (lc *loadClient) observeTime(id string) (int, error) {
	var resp serve.ObserveResponse
	if _, err := lc.doJSON("GET", lc.base+"/v1/sessions/"+id+"/observe", nil, &resp); err != nil {
		return 0, err
	}
	return resp.Time, nil
}

// countSessions reads how many sessions the daemon currently holds
// (live + evicted).
func (lc *loadClient) countSessions() int {
	var resp serve.ListResponse
	if err := lc.getJSON(lc.base+"/v1/sessions", &resp); err != nil {
		return 0
	}
	return resp.Active + resp.Evicted
}

// overloadBurst stands up a deliberately tiny throttled daemon (rate
// 100 ops/s, burst 20, one shard with a depth-2 queue) and hits it with
// an instantaneous burst: well over both the bucket and the queue, so
// the reply mix must contain 429s and/or 503s — and zero successes
// beyond what the bucket admits would mean unbounded queueing.
func overloadBurst(requests int) (out struct {
	Requests     int `json:"requests"`
	Throttled429 int `json:"throttled_429"`
	Shed503      int `json:"shed_503"`
}, err error) {
	out.Requests = requests
	dir, err := os.MkdirTemp("", "waggle-overload-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)
	srv, err := serve.New(serve.Options{
		Dir:        dir,
		Shards:     1,
		QueueDepth: 2,
		Rate:       100,
		Burst:      20,
		IdleAfter:  time.Hour,
	}, obs.New(256))
	if err != nil {
		return out, err
	}
	addr, stopHTTP, err := obs.ServeWith("127.0.0.1:0", srv.Handler(), obs.ServeOptions{})
	if err != nil {
		return out, err
	}
	defer stopHTTP()
	defer func() {
		ctx, cancel := contextWithTimeout(10 * time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := fmt.Sprintf("http://%s", addr)

	hc := &http.Client{Timeout: 30 * time.Second}
	var created serve.CreateResponse
	b, _ := json.Marshal(serve.CreateRequest{Positions: [][2]float64{{0, 0}, {9, 0}, {0, 8}, {7, 7}}, Seed: 1})
	resp, err := hc.Post(base+"/v1/sessions", "application/json", bytes.NewReader(b))
	if err != nil {
		return out, err
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		resp.Body.Close()
		return out, err
	}
	resp.Body.Close()

	stepBody, _ := json.Marshal(serve.StepRequest{Steps: 1000})
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := hc.Post(base+"/v1/sessions/"+created.ID+"/step", "application/json", bytes.NewReader(stepBody))
			if err != nil {
				return
			}
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
			mu.Lock()
			switch r.StatusCode {
			case http.StatusTooManyRequests:
				out.Throttled429++
			case http.StatusServiceUnavailable:
				out.Shed503++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if out.Throttled429+out.Shed503 == 0 {
		return out, fmt.Errorf("overload burst of %d requests was never backpressured", requests)
	}
	return out, nil
}

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}
