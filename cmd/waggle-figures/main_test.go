package main

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	for fig := 1; fig <= 6; fig++ {
		if err := run(fig, false, "."); err != nil {
			t.Errorf("figure %d: %v", fig, err)
		}
	}
}

func TestRunAllFigures(t *testing.T) {
	if err := run(0, false, "."); err != nil {
		t.Error(err)
	}
}

func TestRunSVG(t *testing.T) {
	dir := t.TempDir()
	if err := run(0, true, dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []int{2, 3, 4, 5, 6} {
		if _, err := os.Stat(filepath.Join(dir, "figure"+strconv.Itoa(f)+".svg")); err != nil {
			t.Errorf("figure %d svg missing: %v", f, err)
		}
	}
	if err := run(1, true, dir); err == nil {
		t.Error("figure 1 has no SVG form and should error")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(9, false, "."); err == nil {
		t.Error("figure 9 accepted")
	}
}
