// Command waggle-figures regenerates the data and diagrams behind the
// paper's six figures (experiments F1-F6 in DESIGN.md).
//
// Usage:
//
//	waggle-figures                 # all six figures as ASCII + tables
//	waggle-figures -fig 4          # one figure
//	waggle-figures -svg -out dir   # write figures 2-6 as SVG files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"waggle/internal/figures"
)

func main() {
	fig := flag.Int("fig", 0, "figure number 1-6 (0 = all)")
	svg := flag.Bool("svg", false, "emit SVG (figures 2-6) instead of ASCII")
	out := flag.String("out", ".", "output directory for -svg")
	flag.Parse()
	if err := run(*fig, *svg, *out); err != nil {
		fmt.Fprintln(os.Stderr, "waggle-figures:", err)
		os.Exit(1)
	}
}

func run(fig int, svg bool, outDir string) error {
	if svg {
		return runSVG(fig, outDir)
	}
	if fig != 0 {
		out, err := figures.Generate(fig)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	for f := 1; f <= 6; f++ {
		out, err := figures.Generate(f)
		if err != nil {
			return err
		}
		fmt.Print(out)
		fmt.Println()
	}
	return nil
}

func runSVG(fig int, outDir string) error {
	figs := []int{2, 3, 4, 5, 6}
	if fig != 0 {
		figs = []int{fig}
	}
	for _, f := range figs {
		doc, err := figures.GenerateSVG(f)
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, fmt.Sprintf("figure%d.svg", f))
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
