package waggle

import (
	"errors"

	"waggle/internal/core"
)

// ErrRadioFailed is returned by Radio.Send when a transmission is lost.
var ErrRadioFailed = core.ErrRadioFailed

// Radio simulates the conventional wireless device the paper's robots
// may carry, with injectable faults: broken transmitters and
// environment jamming. It exists for the fault-tolerance scenario —
// movement signalling as a communication backup (§1).
type Radio struct {
	inner *core.Radio
}

// NewRadio creates a radio network for n robots; seed drives the
// jamming randomness.
func NewRadio(n int, seed int64) *Radio {
	return &Radio{inner: core.NewRadio(n, seed)}
}

// SetJamming sets the probability that any single transmission is lost
// to interference.
func (r *Radio) SetJamming(p float64) { r.inner.JamProb = p }

// Break permanently disables robot i's transmitter. Out-of-range
// indices are reported as an error, matching Send.
func (r *Radio) Break(i int) error { return r.inner.Break(i) }

// Repair restores robot i's transmitter. Out-of-range indices are
// reported as an error, matching Send.
func (r *Radio) Repair(i int) error { return r.inner.Repair(i) }

// Broken reports whether robot i's transmitter is out of order;
// out-of-range indices report false.
func (r *Radio) Broken(i int) bool { return r.inner.Broken(i) }

// Send transmits a message over the radio, returning ErrRadioFailed when
// it is lost.
func (r *Radio) Send(from, to int, payload []byte) error {
	return r.inner.Send(from, to, payload)
}

// Receive drains robot i's radio inbox.
func (r *Radio) Receive(i int) []Message {
	msgs := r.inner.Receive(i)
	out := make([]Message, len(msgs))
	for j, m := range msgs {
		out[j] = Message{From: m.From, To: m.To, Payload: m.Payload}
	}
	return out
}

// Stats returns (sent, delivered, lost) counters.
func (r *Radio) Stats() (sent, delivered, lost int) { return r.inner.Stats() }

// BackupMessenger sends over the radio when it works and falls back to
// movement signalling when it does not — the paper's fault-tolerance
// application.
type BackupMessenger struct {
	inner *core.BackupMessenger
	swarm *Swarm
}

// NewBackupMessenger couples a radio with a swarm of the same size.
func NewBackupMessenger(radio *Radio, swarm *Swarm) (*BackupMessenger, error) {
	if radio == nil || swarm == nil {
		return nil, errors.New("waggle: nil radio or swarm")
	}
	inner, err := core.NewBackupMessenger(radio.inner, swarm.network())
	if err != nil {
		return nil, err
	}
	return &BackupMessenger{inner: inner, swarm: swarm}, nil
}

// Send delivers the message over the radio if possible, otherwise
// queues it on the movement channel; drive the swarm (Step /
// RunUntil...) to complete movement deliveries.
func (b *BackupMessenger) Send(from, to int, payload []byte) error {
	return b.inner.Send(from, to, payload)
}

// Swarm returns the movement channel.
func (b *BackupMessenger) Swarm() *Swarm { return b.swarm }

// Stats returns how many messages went over each channel.
func (b *BackupMessenger) Stats() (viaRadio, viaMovement int) { return b.inner.Stats() }
