package waggle

import (
	"errors"

	"waggle/internal/ckpt"
	"waggle/internal/core"
)

// ErrRadioFailed is returned by Radio.Send when a transmission is lost.
var ErrRadioFailed = core.ErrRadioFailed

// Radio simulates the conventional wireless device the paper's robots
// may carry, with injectable faults: broken transmitters and
// environment jamming. It exists for the fault-tolerance scenario —
// movement signalling as a communication backup (§1).
type Radio struct {
	inner *core.Radio
	n     int
	seed  int64
	// rec is the replay log this radio records into. A free-standing
	// radio records into its own log from birth; coupling it to a swarm
	// (WithFaultRadio, NewBackupMessenger) splices that log into the
	// swarm's so the checkpoint replays pre-coupling setup calls
	// (Break, SetJamming, …) in order.
	rec *ckpt.Recorder
}

// NewRadio creates a radio network for n robots; seed drives the
// jamming randomness.
func NewRadio(n int, seed int64) *Radio {
	return &Radio{inner: core.NewRadio(n, seed), n: n, seed: seed, rec: ckpt.NewRecorder()}
}

// attachRecorder splices this radio's log into rec and records there
// from now on. Coupling the same radio to a second swarm moves the log
// — checkpointing supports one swarm per radio.
func (r *Radio) attachRecorder(rec *ckpt.Recorder) {
	if r.rec == rec {
		return
	}
	rec.AbsorbFrom(r.rec)
	r.rec = rec
}

// SetJamming sets the probability that any single transmission is lost
// to interference. NaN and values outside [0,1] are rejected instead of
// silently behaving as always-lose or never-lose.
func (r *Radio) SetJamming(p float64) error {
	err := r.inner.SetJamming(p)
	if err == nil {
		r.rec.Record(ckpt.Input{Op: ckpt.OpRadioJam, P: p})
	}
	return err
}

// JamProb returns the current jamming probability.
func (r *Radio) JamProb() float64 { return r.inner.JamProb }

// Break permanently disables robot i's transmitter. Out-of-range
// indices are reported as an error, matching Send.
func (r *Radio) Break(i int) error {
	err := r.inner.Break(i)
	if err == nil {
		r.rec.Record(ckpt.Input{Op: ckpt.OpRadioBreak, From: i})
	}
	return err
}

// Repair restores robot i's transmitter. Out-of-range indices are
// reported as an error, matching Send.
func (r *Radio) Repair(i int) error {
	err := r.inner.Repair(i)
	if err == nil {
		r.rec.Record(ckpt.Input{Op: ckpt.OpRadioRepair, From: i})
	}
	return err
}

// Broken reports whether robot i's transmitter is out of order;
// out-of-range indices report false.
func (r *Radio) Broken(i int) bool { return r.inner.Broken(i) }

// Send transmits a message over the radio, returning ErrRadioFailed when
// it is lost. Lost transmissions are still recorded for checkpoint
// replay: a jammed send consumed a draw of the jam stream, and a
// resumed run must consume it too.
func (r *Radio) Send(from, to int, payload []byte) error {
	err := r.inner.Send(from, to, payload)
	if err == nil || errors.Is(err, ErrRadioFailed) {
		r.rec.Record(ckpt.Input{Op: ckpt.OpRadioSend, From: from, To: to, Payload: payload})
	}
	return err
}

// Receive drains robot i's radio inbox. Draining mutates state, so it
// is recorded for checkpoint replay like any send.
func (r *Radio) Receive(i int) []Message {
	msgs := r.inner.Receive(i)
	r.rec.Record(ckpt.Input{Op: ckpt.OpRadioRecv, From: i})
	out := make([]Message, len(msgs))
	for j, m := range msgs {
		out[j] = Message{From: m.From, To: m.To, Payload: m.Payload}
	}
	return out
}

// Stats returns (sent, delivered, lost) counters.
func (r *Radio) Stats() (sent, delivered, lost int) { return r.inner.Stats() }

// Channel identifies which substrate a messenger sender's traffic
// currently uses (see BackupMessenger.Health).
type Channel = core.Channel

// Channels of a BackupMessenger.
const (
	// ChannelRadio is the healthy state: traffic goes over the wireless
	// device.
	ChannelRadio = core.ChannelRadio
	// ChannelMovement is the failed-over state: traffic rides the
	// movement channel until a radio probe succeeds.
	ChannelMovement = core.ChannelMovement
)

// MessengerPolicy configures the self-healing behaviour of a
// BackupMessenger (see SetPolicy).
type MessengerPolicy = core.MessengerPolicy

// MessengerStats are the messenger's full counters (see
// BackupMessenger.DetailedStats).
type MessengerStats = core.MessengerStats

// DefaultMessengerPolicy returns the self-healing defaults: three
// retries with doubling backoff from two instants, a 64-instant
// deadline, and a radio probe every 16 instants while failed over.
func DefaultMessengerPolicy() MessengerPolicy { return core.DefaultMessengerPolicy() }

// BackupMessenger sends over the radio when it works and falls back to
// movement signalling when it does not — the paper's fault-tolerance
// application. With a policy set (SetPolicy) it is self-healing: failed
// radio sends are retried with backoff, fail over to the movement
// channel on exhaustion or deadline, are confirmed by the implicit
// acknowledgement of Lemma 4.1 (the delivery decoded from observed
// motion), and fail back to the radio once a probe succeeds.
type BackupMessenger struct {
	inner *core.BackupMessenger
	swarm *Swarm
	rec   *ckpt.Recorder
}

// NewBackupMessenger couples a radio with a swarm of the same size. The
// coupling registers both with the swarm's checkpoint machinery: a
// checkpoint of the swarm captures the radio and messenger state too,
// and Restore rebuilds all three.
func NewBackupMessenger(radio *Radio, swarm *Swarm) (*BackupMessenger, error) {
	if radio == nil || swarm == nil {
		return nil, errors.New("waggle: nil radio or swarm")
	}
	inner, err := core.NewBackupMessenger(radio.inner, swarm.network())
	if err != nil {
		return nil, err
	}
	radio.attachRecorder(swarm.rec)
	b := &BackupMessenger{inner: inner, swarm: swarm, rec: swarm.rec}
	swarm.radio = radio
	swarm.messenger = b
	return b, nil
}

// Send delivers the message over the radio if possible, otherwise
// queues it on the movement channel; drive the swarm (Step /
// RunUntil...) to complete movement deliveries.
func (b *BackupMessenger) Send(from, to int, payload []byte) error {
	err := b.inner.Send(from, to, payload)
	if err == nil {
		b.rec.Record(ckpt.Input{T: b.swarm.Time(), Op: ckpt.OpMsgSend, From: from, To: to, Payload: payload})
	}
	return err
}

// SetPolicy enables self-healing with the given policy. Call it before
// any traffic.
func (b *BackupMessenger) SetPolicy(p MessengerPolicy) error {
	err := b.inner.SetPolicy(p)
	if err == nil {
		b.rec.Record(ckpt.Input{T: b.swarm.Time(), Op: ckpt.OpMsgPolicy, Policy: &ckpt.PolicyConfig{
			MaxRetries: p.MaxRetries, Backoff: p.Backoff, Deadline: p.Deadline, ProbeEvery: p.ProbeEvery,
		}})
	}
	return err
}

// Tick runs one instant of self-healing bookkeeping (due retries,
// deadline failovers, implicit-acknowledgement detection). Call once
// per simulation step when driving the swarm directly; Step and
// RunUntilSettled do it for you.
func (b *BackupMessenger) Tick() error {
	err := b.inner.Tick()
	if err == nil {
		b.rec.Record(ckpt.Input{T: b.swarm.Time(), Op: ckpt.OpMsgTick})
	}
	return err
}

// Step advances the swarm one instant and ticks the messenger.
func (b *BackupMessenger) Step() error {
	err := b.inner.Step()
	if err == nil {
		b.rec.Record(ckpt.Input{T: b.swarm.Time(), Op: ckpt.OpMsgStep})
	}
	return err
}

// Settled reports whether nothing is outstanding: no pending retries,
// no unacknowledged failovers, and an idle movement channel.
func (b *BackupMessenger) Settled() bool { return b.inner.Settled() }

// RunUntilSettled steps the swarm (ticking per instant) until the
// messenger is settled or the budget runs out, returning the number of
// instants executed. A budget-exhausted run is still recorded for
// checkpoint replay — it stepped the world.
func (b *BackupMessenger) RunUntilSettled(maxSteps int) (int, error) {
	t := b.swarm.Time()
	steps, err := b.inner.RunUntilSettled(maxSteps)
	if err == nil || errors.Is(err, ErrNotDelivered) {
		b.rec.Record(ckpt.Input{T: t, Op: ckpt.OpMsgRun, Max: maxSteps})
	}
	return steps, err
}

// Health returns the channel robot i's traffic currently uses.
func (b *BackupMessenger) Health(i int) Channel { return b.inner.Health(i) }

// Swarm returns the movement channel.
func (b *BackupMessenger) Swarm() *Swarm { return b.swarm }

// Stats returns how many messages went over each channel.
func (b *BackupMessenger) Stats() (viaRadio, viaMovement int) { return b.inner.Stats() }

// DetailedStats returns the full counter set: per-channel deliveries,
// retries, failovers, failbacks, deadline expiries, implicit
// acknowledgements, and current queue depths.
func (b *BackupMessenger) DetailedStats() MessengerStats { return b.inner.DetailedStats() }
