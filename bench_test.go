package waggle

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"waggle/internal/figures"
)

// The paper has no measured tables — it is a brief announcement with
// six illustrative figures and asymptotic claims. Each benchmark below
// regenerates one figure-scenario (F1-F6) or quantitative claim (C1-C8)
// from DESIGN.md's experiment index; EXPERIMENTS.md records the
// resulting shapes next to the paper's statements.

// benchPositions delegates to the shared grid-backed placement helper
// (figures.RandomConfiguration, built on spatial.Placer) so generating a
// benchmark configuration costs O(n) expected instead of O(n²): min
// separation 8 on a side that grows with n, same as the sweep harness.
func benchPositions(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	gpts := figures.RandomConfiguration(rng, n, float64(n)*12, 8)
	pts := make([]Point, n)
	for i, p := range gpts {
		pts[i] = Point{X: p.X, Y: p.Y}
	}
	return pts
}

func deliverOne(b *testing.B, pts []Point, payload []byte, opts ...Option) int {
	b.Helper()
	s, err := NewSwarm(pts, opts...)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Send(0, s.N()-1, payload); err != nil {
		b.Fatal(err)
	}
	msgs, steps, err := s.RunUntilDelivered(1, 50_000_000)
	if err != nil {
		b.Fatal(err)
	}
	if !bytes.Equal(msgs[0].Payload, payload) {
		b.Fatal("payload corrupted")
	}
	return steps
}

// BenchmarkFig1Sync2 is experiment F1: the two-robot synchronous coding
// of Figure 1.
func BenchmarkFig1Sync2(b *testing.B) {
	pts := []Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	payload := []byte("FIG1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		steps := deliverOne(b, pts, payload, WithSynchronous(), WithSeed(1))
		b.ReportMetric(float64(steps), "instants/msg")
	}
}

// BenchmarkFig2SyncIDs is experiment F2: Figure 2's 12 identified
// robots; robot 0 sends across the swarm through sliced granulars.
func BenchmarkFig2SyncIDs(b *testing.B) {
	pts := benchPositions(12, 2)
	payload := []byte("FIG2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		steps := deliverOne(b, pts, payload, WithSynchronous(), WithIdentifiedRobots(), WithSeed(2))
		b.ReportMetric(float64(steps), "instants/msg")
	}
}

// BenchmarkFig3SymmetryCheck is experiment F3: certifying a Figure-3
// configuration (symmetry detection is the naming-impossibility test).
func BenchmarkFig3SymmetryCheck(b *testing.B) {
	// The check itself lives in internal/naming; here we measure the
	// public-path consequence: an anonymous chirality-only swarm still
	// communicates on a symmetric configuration via relative naming.
	pts := []Point{{X: 3, Y: 1}, {X: 1, Y: 4}, {X: -2, Y: 2}, {X: -3, Y: -1}, {X: -1, Y: -4}, {X: 2, Y: -2}}
	for i := range pts {
		pts[i].X *= 8
		pts[i].Y *= 8
	}
	payload := []byte("F3")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		steps := deliverOne(b, pts, payload, WithSynchronous(), WithSeed(3))
		b.ReportMetric(float64(steps), "instants/msg")
	}
}

// BenchmarkFig4SECNaming is experiment F4: anonymous robots, chirality
// only — addressing via the smallest-enclosing-circle relative naming.
func BenchmarkFig4SECNaming(b *testing.B) {
	pts := benchPositions(12, 4)
	payload := []byte("FIG4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		steps := deliverOne(b, pts, payload, WithSynchronous(), WithSeed(4))
		b.ReportMetric(float64(steps), "instants/msg")
	}
}

// BenchmarkFig5Async2 is experiment F5: the two-robot asynchronous
// protocol with implicit acknowledgements.
func BenchmarkFig5Async2(b *testing.B) {
	pts := []Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	payload := []byte("FIG5")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		steps := deliverOne(b, pts, payload, WithSeed(5))
		b.ReportMetric(float64(steps), "instants/msg")
	}
}

// BenchmarkFig6AsyncN is experiment F6: Protocol Asyncn with the idle
// slice κ, across swarm sizes.
func BenchmarkFig6AsyncN(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := benchPositions(n, 6)
			payload := []byte("F6")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				steps := deliverOne(b, pts, payload, WithSeed(6))
				b.ReportMetric(float64(steps), "instants/msg")
			}
		})
	}
}

// BenchmarkClaimLevelCoding is experiment C3: k amplitude levels carry
// log2(k) bits per excursion (§3.1 remark).
func BenchmarkClaimLevelCoding(b *testing.B) {
	pts := []Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	payload := bytes.Repeat([]byte{0xA7}, 16)
	for _, k := range []int{2, 16, 256} {
		b.Run(fmt.Sprintf("levels=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				steps := deliverOne(b, pts, payload, WithSynchronous(), WithLevels(k), WithSeed(7))
				b.ReportMetric(float64(steps), "instants/msg")
			}
		})
	}
}

// BenchmarkClaimSliceTradeoff is experiment C4: §5's bounded-slice
// variant trades granular slices for prelude excursions.
func BenchmarkClaimSliceTradeoff(b *testing.B) {
	pts := benchPositions(16, 8)
	payload := []byte{0x5C}
	variants := map[string][]Option{
		"direct":    nil,
		"bounded-2": {WithBoundedSlices(2)},
		"bounded-4": {WithBoundedSlices(4)},
	}
	for name, extra := range variants {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				steps := deliverOne(b, pts, payload, append(extra, WithSeed(8))...)
				b.ReportMetric(float64(steps), "instants/msg")
			}
		})
	}
}

// BenchmarkClaimDrift is experiment C6: the unbounded-drift base
// protocol versus the bounded alternating variant.
func BenchmarkClaimDrift(b *testing.B) {
	pts := []Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	payload := []byte("DRIFT")
	for name, extra := range map[string][]Option{
		"away":      nil,
		"alternate": {WithAlternatingDrift()},
	} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				steps := deliverOne(b, pts, payload, append(extra, WithSeed(9))...)
				b.ReportMetric(float64(steps), "instants/msg")
			}
		})
	}
}

// BenchmarkClaimBackup is experiment C8: wireless backup under total
// jamming — all traffic falls over to movement signalling.
func BenchmarkClaimBackup(b *testing.B) {
	pts := benchPositions(4, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := NewSwarm(pts, WithSynchronous(), WithSeed(10))
		if err != nil {
			b.Fatal(err)
		}
		radio := NewRadio(s.N(), 1)
		if err := radio.SetJamming(1); err != nil { // fully jammed
			b.Fatal(err)
		}
		bm, err := NewBackupMessenger(radio, s)
		if err != nil {
			b.Fatal(err)
		}
		if err := bm.Send(0, 2, []byte("J")); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.RunUntilDelivered(1, 50_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClaimLatencyScaling is the Latency sweep under testing.B:
// synchronous delivery cost is independent of n; asynchronous cost
// grows with n (every bit waits for 2 observed changes of every robot).
func BenchmarkClaimLatencyScaling(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		pts := benchPositions(n, int64(n))
		b.Run(fmt.Sprintf("sync/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				steps := deliverOne(b, pts, []byte{1}, WithSynchronous(), WithSeed(int64(n)))
				b.ReportMetric(float64(steps), "instants/msg")
			}
		})
		b.Run(fmt.Sprintf("async/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				steps := deliverOne(b, pts, []byte{1}, WithSeed(int64(n)))
				b.ReportMetric(float64(steps), "instants/msg")
			}
		})
	}
}

// BenchmarkSimulatorStep isolates the simulator's per-instant cost, the
// substrate every experiment pays.
func BenchmarkSimulatorStep(b *testing.B) {
	for _, n := range []int{2, 16, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, err := NewSwarm(benchPositions(n, 1), WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			// Warm up: the first instant runs the robots' preprocessing
			// (Voronoi, SEC, naming), which is not per-step cost.
			if err := s.Step(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStepParallel measures the tentpole: per-instant simulator
// cost with the compute phase sequential versus fanned out over the
// GOMAXPROCS worker pool, at swarm sizes where the O(n) per-robot view
// dominates. Synchronous scheduling activates all n robots every
// instant — the parallel engine's best case and the sweep harness's
// common case. (BenchmarkSweepParallel, the experiment-level
// counterpart, lives in bench_parallel_test.go: the sweep package
// imports waggle, so it needs the external test package.)
func BenchmarkStepParallel(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		for _, engine := range []struct {
			name string
			opt  Option
		}{
			{"sequential", WithEngine(EngineSequential)},
			{"parallel", WithEngine(EngineParallel)},
		} {
			b.Run(fmt.Sprintf("n=%d/%s", n, engine.name), func(b *testing.B) {
				s, err := NewSwarm(benchPositions(n, 1), WithSynchronous(), WithSeed(1), engine.opt)
				if err != nil {
					b.Fatal(err)
				}
				// Warm up: first instant runs preprocessing (Voronoi,
				// SEC, naming) and allocates the reusable buffers.
				if err := s.Step(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := s.Step(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStepObserver measures the instrumentation tax: per-instant
// simulator cost with no observer (the default — every site is a nil
// check), with an attached observer, and with an attached observer
// whose trace ring is tiny (constant eviction). The ISSUE bound is
// disabled ≤ 2% over the uninstrumented baseline; EXPERIMENTS.md
// records the measured table.
func BenchmarkStepObserver(b *testing.B) {
	for _, n := range []int{64, 256} {
		for _, engine := range []struct {
			name string
			opt  Option
		}{
			{"sequential", WithEngine(EngineSequential)},
			{"parallel", WithEngine(EngineParallel)},
		} {
			for _, obsv := range []struct {
				name string
				o    *Observer
			}{
				{"disabled", nil},
				{"enabled", NewObserver()},
				{"enabled-tiny-ring", NewObserverWithCapacity(64)},
			} {
				b.Run(fmt.Sprintf("n=%d/%s/%s", n, engine.name, obsv.name), func(b *testing.B) {
					opts := []Option{WithSynchronous(), WithSeed(1), engine.opt}
					if obsv.o != nil {
						opts = append(opts, WithObserver(obsv.o))
					}
					s, err := NewSwarm(benchPositions(n, 1), opts...)
					if err != nil {
						b.Fatal(err)
					}
					if err := s.Step(); err != nil {
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := s.Step(); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// benchCheckpointSwarm builds an n-robot swarm with a pending send.
// Stepped history is deliberately absent: run-length merging collapses
// any step run into one input-log entry, so history barely moves the
// checkpoint size, while restoring it re-pays the live per-instant
// cost 1:1 (the table in EXPERIMENTS.md separates that replay cost
// from the fixed capture/encode/rebuild overhead measured here).
func benchCheckpointSwarm(b *testing.B, n int) *Swarm {
	b.Helper()
	s, err := NewSwarm(benchPositions(n, 1), WithSynchronous(), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Send(0, n-1, []byte("CKPT")); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkCheckpointSave measures capture + wire encoding, reporting
// the serialized size (the EXPERIMENTS.md checkpoint table).
func BenchmarkCheckpointSave(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := benchCheckpointSwarm(b, n)
			var size int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ck, err := s.Checkpoint()
				if err != nil {
					b.Fatal(err)
				}
				var buf bytes.Buffer
				if err := WriteCheckpoint(&buf, ck); err != nil {
					b.Fatal(err)
				}
				size = buf.Len()
			}
			b.ReportMetric(float64(size), "ckpt-bytes")
		})
	}
}

// BenchmarkCheckpointRestore measures decode + rebuild + replay +
// verification — the full resume latency.
func BenchmarkCheckpointRestore(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := benchCheckpointSwarm(b, n)
			ck, err := s.Checkpoint()
			if err != nil {
				b.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteCheckpoint(&buf, ck); err != nil {
				b.Fatal(err)
			}
			wire := buf.Bytes()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loaded, err := ReadCheckpoint(bytes.NewReader(wire))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Restore(loaded); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
