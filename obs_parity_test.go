package waggle

import (
	"bytes"
	"reflect"
	"testing"
)

// observedFaultRun builds the richest instrumented configuration — a
// fault plan spanning every family plus a jammed radio driven by the
// self-healing messenger — and runs it for a fixed number of instants
// under the given engine, returning the observer.
func observedFaultRun(t *testing.T, mode EngineMode) *Observer {
	t.Helper()
	o := NewObserver()
	// The radio faults come first: the failed-over message needs a clean
	// movement channel for its implicit acknowledgement to decode. The
	// movement-corrupting faults run late, after all movement deliveries
	// are done — their counters still fire, the protocol's garbling no
	// longer matters.
	plan := FaultPlan{Events: []FaultEvent{
		{Kind: FaultRadioOutage, Robot: 0, At: 25, Until: 400},
		{Kind: FaultJamRamp, Robot: -1, At: 430, Until: 500, Min: 0.3, Max: 0.6},
		{Kind: FaultCrash, Robot: 1, At: 620, Until: 660},
		{Kind: FaultDisplace, Robot: 2, At: 630, DX: 1.5, DY: -0.5},
		{Kind: FaultObserveNoise, Robot: 0, At: 620, Until: 650, Mag: 0.05},
		{Kind: FaultDropSight, Robot: 3, At: 620, Until: 660, Mag: 0.4},
		{Kind: FaultMoveError, Robot: -1, At: 620, Until: 680, Min: 0.8, Max: 1.2},
	}}
	radio := NewRadio(4, 11)
	s, err := NewSwarm(square(), WithSynchronous(), WithSeed(11),
		WithEngine(mode), WithObserver(o),
		WithFaultPlan(plan), WithFaultRadio(radio))
	if err != nil {
		t.Fatal(err)
	}
	bm, err := NewBackupMessenger(radio, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := bm.SetPolicy(DefaultMessengerPolicy()); err != nil {
		t.Fatal(err)
	}
	send := map[int]struct{ to int }{
		5:   {1}, // clean radio delivery
		30:  {2}, // into the outage: retry, fail over, movement delivery
		410: {3}, // post-repair: failback probe
		440: {1}, // under jamming: radio retries
	}
	for s.Time() < 700 {
		if m, ok := send[s.Time()]; ok {
			if err := bm.Send(0, m.to, []byte{byte(s.Time())}); err != nil {
				t.Fatal(err)
			}
		}
		if err := bm.Step(); err != nil {
			t.Fatal(err)
		}
		radio.Receive(1)
		radio.Receive(3)
	}
	return o
}

// TestObserverEngineParity is the ISSUE acceptance criterion for the
// obs subsystem: identical seeds produce identical metric snapshots
// and identical trace event sequences whether the simulation ran under
// EngineSequential or EngineParallel. Run with -race this also proves
// the concurrent instrumentation sites (PerturbView under the parallel
// engine) are safe.
func TestObserverEngineParity(t *testing.T) {
	seq := observedFaultRun(t, EngineSequential)
	par := observedFaultRun(t, EngineParallel)

	ss, ps := seq.DeterministicSnapshot(), par.DeterministicSnapshot()
	if !reflect.DeepEqual(ss, ps) {
		t.Errorf("deterministic snapshots differ between engines:\n%+v\nvs\n%+v", ss, ps)
	}
	if !reflect.DeepEqual(seq.TraceEvents(), par.TraceEvents()) {
		t.Error("normalized trace sequences differ between engines")
	}
	var sj, pj bytes.Buffer
	if err := ss.WriteJSON(&sj); err != nil {
		t.Fatal(err)
	}
	if err := ps.WriteJSON(&pj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj.Bytes(), pj.Bytes()) {
		t.Error("deterministic snapshot JSON differs between engines")
	}

	// The run must actually have exercised the instrumentation: steps,
	// sends, retries, failovers, failbacks, and every fault family.
	for _, name := range []string{
		"waggle_sim_steps_total",
		"waggle_sim_activations_total",
		"waggle_net_sends_total",
		"waggle_net_deliveries_total",
		"waggle_radio_sends_total",
		"waggle_msgr_retries_total",
		"waggle_msgr_failovers_total",
		"waggle_msgr_failbacks_total",
		"waggle_msgr_implicit_acks_total",
		"waggle_fault_crash_total",
		"waggle_fault_displace_total",
		"waggle_fault_noise_total",
		"waggle_fault_drop_sight_total",
		"waggle_fault_move_error_total",
		"waggle_fault_outage_total",
		"waggle_fault_jam_set_total",
	} {
		if v, ok := ss.CounterValue(name); !ok || v == 0 {
			t.Errorf("counter %s missing or zero — scenario did not exercise it (value %d, present %v)", name, v, ok)
		}
	}
	if len(seq.TraceEvents()) == 0 {
		t.Error("no trace events recorded")
	}
}

// TestObserverNilSafety: every facade method on a nil *Observer is a
// no-op, and an uninstrumented swarm runs with a nil observer wired
// nowhere — the zero-cost default.
func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	var buf bytes.Buffer
	if err := o.WriteMetrics(&buf); err != nil {
		t.Error(err)
	}
	if err := o.WriteSnapshot(&buf, true); err != nil {
		t.Error(err)
	}
	if ev := o.TraceEvents(); ev != nil {
		t.Errorf("nil observer trace = %v", ev)
	}
	if n := o.TraceDropped(); n != 0 {
		t.Errorf("nil observer dropped = %d", n)
	}
	if h := o.Handler(); h == nil {
		t.Error("nil observer handler is nil")
	}
	s, err := NewSwarm(square(), WithSynchronous(), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Observe() != nil {
		t.Error("uninstrumented swarm reports an observer")
	}
}
