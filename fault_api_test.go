package waggle

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFaultPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
	}{
		{"unknown kind", FaultPlan{Events: []FaultEvent{{At: 1, Robot: 0}}}},
		{"robot out of range", FaultPlan{Events: []FaultEvent{
			{Kind: FaultCrash, Robot: 9, At: 1, Until: 2}}}},
		{"negative robot", FaultPlan{Events: []FaultEvent{
			{Kind: FaultCrash, Robot: -2, At: 1, Until: 2}}}},
		{"NaN magnitude", FaultPlan{Events: []FaultEvent{
			{Kind: FaultObserveNoise, Robot: 0, At: 1, Until: 2, Mag: math.NaN()}}}},
		{"inverted window", FaultPlan{Events: []FaultEvent{
			{Kind: FaultDropSight, Robot: 0, At: 5, Until: 2, Mag: 0.5}}}},
		{"inf displacement", FaultPlan{Events: []FaultEvent{
			{Kind: FaultDisplace, Robot: 0, At: 1, DX: math.Inf(1)}}}},
	}
	for _, c := range cases {
		if _, err := NewSwarm(square(), WithSynchronous(), WithFaultPlan(c.plan)); err == nil {
			t.Errorf("%s: plan accepted", c.name)
		}
	}
	// A valid plan builds.
	ok := FaultPlan{Events: []FaultEvent{
		{Kind: FaultCrash, Robot: 0, At: 10, Until: 20},
		{Kind: FaultMoveError, Robot: -1, At: 5, Until: 8, Min: 0.5, Max: 1.5},
	}}
	if _, err := NewSwarm(square(), WithSynchronous(), WithFaultPlan(ok)); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestFaultPlanRadioEventsNeedRadio(t *testing.T) {
	plan := FaultPlan{Events: []FaultEvent{
		{Kind: FaultRadioOutage, Robot: 0, At: 10, Until: 20},
	}}
	_, err := NewSwarm(square(), WithSynchronous(), WithFaultPlan(plan))
	if err == nil {
		t.Fatal("radio-event plan accepted without a radio")
	}
	if !strings.Contains(err.Error(), "WithFaultRadio") {
		t.Errorf("error %q does not point at WithFaultRadio", err)
	}
	radio := NewRadio(4, 1)
	if _, err := NewSwarm(square(), WithSynchronous(),
		WithFaultPlan(plan), WithFaultRadio(radio)); err != nil {
		t.Errorf("radio-event plan with a radio rejected: %v", err)
	}
}

func TestStabilizationOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"async", []Option{WithStabilization(100)}},
		{"negative epoch", []Option{WithSynchronous(), WithStabilization(-1)}},
		{"levels conflict", []Option{WithSynchronous(), WithStabilization(100), WithLevels(8)}},
		{"protocol conflict", []Option{WithSynchronous(), WithStabilization(100), WithProtocol(ProtoSync2)}},
	}
	for _, c := range cases {
		if _, err := NewSwarm(square(), c.opts...); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	s, err := NewSwarm(square(), WithSynchronous(), WithStabilization(120))
	if err != nil {
		t.Fatal(err)
	}
	if s.Protocol() != ProtoSyncN {
		t.Errorf("stabilized protocol = %v, want syncn", s.Protocol())
	}
}

func TestRadioJammingValidation(t *testing.T) {
	radio := NewRadio(4, 1)
	for _, p := range []float64{math.NaN(), -0.1, 1.1, math.Inf(1)} {
		if err := radio.SetJamming(p); err == nil {
			t.Errorf("SetJamming(%v) accepted", p)
		}
	}
	if err := radio.SetJamming(0.5); err != nil {
		t.Errorf("SetJamming(0.5) rejected: %v", err)
	}
	if got := radio.JamProb(); got != 0.5 {
		t.Errorf("JamProb = %v, want 0.5", got)
	}
}

// TestMessengerSelfHealsUnderFaultPlan is the ISSUE acceptance
// scenario on the public API: a FaultRadioOutage breaks the radio
// mid-run; the self-healing messenger retries, fails over to the
// movement channel, keeps delivering, and fails back once the plan
// repairs the radio.
func TestMessengerSelfHealsUnderFaultPlan(t *testing.T) {
	plan := FaultPlan{Events: []FaultEvent{
		{Kind: FaultRadioOutage, Robot: 0, At: 10, Until: 400},
	}}
	radio := NewRadio(4, 2)
	s, err := NewSwarm(square(), WithSynchronous(), WithSeed(5),
		WithFaultPlan(plan), WithFaultRadio(radio))
	if err != nil {
		t.Fatal(err)
	}
	bm, err := NewBackupMessenger(radio, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := bm.SetPolicy(DefaultMessengerPolicy()); err != nil {
		t.Fatal(err)
	}

	step := func(until int) {
		t.Helper()
		for s.Time() < until {
			if err := bm.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Healthy: over the radio, instantly.
	if err := bm.Send(0, 1, []byte("A")); err != nil {
		t.Fatal(err)
	}
	if got := radio.Receive(1); len(got) != 1 || !bytes.Equal(got[0].Payload, []byte("A")) {
		t.Fatalf("pre-fault radio delivery missing: %v", got)
	}

	// Into the outage: the plan has broken the transmitter.
	step(20)
	want := []byte("B")
	if err := bm.Send(0, 2, want); err != nil {
		t.Fatal(err)
	}
	step(300)
	if bm.Health(0) != ChannelMovement {
		t.Fatal("sender did not fail over during the outage")
	}
	delivered := s.Delivered()
	found := false
	for _, d := range delivered {
		if d.To == 2 && bytes.Equal(d.Payload, want) {
			found = true
		}
	}
	if !found {
		t.Fatalf("failover message not delivered by movement: %v", delivered)
	}
	st := bm.DetailedStats()
	if st.Retries < 1 || st.Failovers != 1 || st.ImplicitAcks != 1 {
		t.Errorf("self-heal counters incomplete mid-outage: %+v", st)
	}

	// Past the repair: the next send probes the radio and fails back.
	step(410)
	if err := bm.Send(0, 3, []byte("C")); err != nil {
		t.Fatal(err)
	}
	if got := radio.Receive(3); len(got) != 1 || !bytes.Equal(got[0].Payload, []byte("C")) {
		t.Fatalf("post-repair radio delivery missing: %v", got)
	}
	st = bm.DetailedStats()
	if st.Failbacks != 1 {
		t.Errorf("failback not recorded: %+v", st)
	}
	if bm.Health(0) != ChannelRadio {
		t.Error("sender did not fail back after the repair")
	}
}

// TestCrashPlanWithStabilizationRecovers: a crash-recover plan under
// the stabilizing wrapper — a message sent after the recovered robot's
// next epoch boundary goes through.
func TestCrashPlanWithStabilizationRecovers(t *testing.T) {
	plan := FaultPlan{Events: []FaultEvent{
		{Kind: FaultCrash, Robot: 1, At: 70, Until: 240},
	}}
	s, err := NewSwarm(square(), WithSynchronous(), WithSeed(3),
		WithStabilization(120), WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	for s.Time() < 242 {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want := []byte("R")
	if err := s.Send(0, 1, want); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.RunUntilDelivered(1, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].To != 1 || !bytes.Equal(got[0].Payload, want) {
		t.Errorf("post-recovery delivery = %+v", got[0])
	}
}
