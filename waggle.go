// Package waggle implements explicit communication for deaf and dumb
// mobile robots by movement signals, after Dieudonné, Dolev, Petit and
// Segal, "Deaf, Dumb, and Chatting Robots: Enabling Distributed
// Computation and Fault-Tolerance Among Stigmergic Robots" (PODC 2009
// brief announcement / INRIA research report inria-00363081).
//
// The robots live in the plane, observe each other's instantaneous
// positions, and have no communication device of any kind; the library
// lets them exchange arbitrary byte messages purely by moving —
// analogously to bee waggle dances. It implements all six protocols of
// the paper (two-robot and n-robot, synchronous and asynchronous, with
// observable IDs, lexicographic naming, or SEC-relative naming) plus the
// §5 extensions (amplitude-level coding, bounded-slice index preludes,
// flocking compensation, wireless-backup fault tolerance).
//
// Quickstart:
//
//	swarm, err := waggle.NewSwarm(
//		[]waggle.Point{{0, 0}, {10, 0}},
//		waggle.WithSynchronous(),
//	)
//	...
//	swarm.Send(0, 1, []byte("HELLO"))
//	msgs, steps, err := swarm.RunUntilDelivered(1, 100_000)
package waggle

import (
	"errors"
	"fmt"
	"io"

	"waggle/internal/ckpt"
	"waggle/internal/core"
	"waggle/internal/fault"
	"waggle/internal/geom"
	"waggle/internal/protocol"
	"waggle/internal/sim"
)

// Point is a position in the plane (world coordinates).
type Point struct {
	X, Y float64
}

// Message is one delivered message. From and To are robot indices in the
// initial configuration.
type Message struct {
	From, To int
	Payload  []byte
}

// Protocol identifies which of the paper's protocols a swarm runs.
type Protocol int

// Protocols selectable with WithProtocol; ProtoAuto picks from the swarm
// size and capability options.
const (
	ProtoAuto Protocol = iota
	// ProtoSync2 is §3.1: two synchronous robots.
	ProtoSync2
	// ProtoSyncN is §3.2-§3.4: n synchronous robots.
	ProtoSyncN
	// ProtoAsync2 is §4.1: two asynchronous robots.
	ProtoAsync2
	// ProtoAsyncN is §4.2: n asynchronous robots.
	ProtoAsyncN
	// ProtoAsyncBounded is the §5 bounded-slice variant of ProtoAsyncN.
	ProtoAsyncBounded
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtoAuto:
		return "auto"
	case ProtoSync2:
		return "sync2"
	case ProtoSyncN:
		return "syncn"
	case ProtoAsync2:
		return "async2"
	case ProtoAsyncN:
		return "asyncn"
	case ProtoAsyncBounded:
		return "asyncbounded"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Swarm is a set of deaf and dumb robots wired for movement-signal
// communication.
type Swarm struct {
	net      *core.Network
	opts     options
	n        int
	protocol Protocol

	// initial holds the construction positions and rec the ordered log
	// of state-mutating API calls — together with opts they are the
	// checkpoint's replayable image of this swarm (see Checkpoint).
	initial []Point
	rec     *ckpt.Recorder
	// radio and messenger are the coupled fault-channel facades, if
	// any; Checkpoint captures their state alongside the swarm's.
	radio     *Radio
	messenger *BackupMessenger
	// stream is the attached movement-stream writer, if any. Not part
	// of the checkpointed identity (see StreamWriter).
	stream *StreamWriter
}

// ErrTooFewRobots is returned for swarms of fewer than two robots.
var ErrTooFewRobots = errors.New("waggle: a swarm needs at least two robots")

// ErrNotDelivered is returned by RunUntil* calls whose step budget ran
// out before the condition held.
var ErrNotDelivered = core.ErrNotDelivered

// ErrInvalidBudget is returned by RunUntil* calls passed a negative
// step or delivery budget (zero is legal: "check without stepping").
var ErrInvalidBudget = core.ErrInvalidBudget

// ErrCorruptCursor is returned when the delivery consumption cursor is
// inconsistent with the delivered log — reachable only through a
// corrupted checkpoint restore.
var ErrCorruptCursor = core.ErrCorruptCursor

// NewSwarm places the robots at the given positions and wires the
// protocol selected by the options (asynchronous, anonymous, SEC naming,
// chirality only — the paper's weakest assumptions — unless options say
// otherwise). Each robot receives a private coordinate frame: random
// rotation (aligned instead when sense of direction is enabled), random
// scale, shared handedness.
func NewSwarm(positions []Point, opts ...Option) (*Swarm, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt.apply(&o)
	}
	var s *Swarm
	var err error
	if o.restore != nil {
		s, err = newSwarmRestored(positions, o)
	} else {
		s, err = newSwarm(positions, o)
	}
	if err != nil {
		return nil, err
	}
	if o.streamPath != "" {
		// Attached only after construction (and any restore replay)
		// completes, so replayed history is never re-streamed.
		if _, err := s.NewStreamWriter(o.streamPath); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// newSwarm builds a swarm from resolved options — the shared path of
// NewSwarm and checkpoint restore (which rebuilds the options from the
// checkpointed config).
func newSwarm(positions []Point, o options) (*Swarm, error) {
	if len(positions) < 2 {
		return nil, ErrTooFewRobots
	}
	if err := validateOptions(o, len(positions)); err != nil {
		return nil, err
	}
	pts := make([]geom.Point, len(positions))
	for i, p := range positions {
		pts[i] = geom.Pt(p.X, p.Y)
	}
	proto := pickProtocol(o, len(pts))

	frames := buildFrames(o, len(pts))
	// Protocol behaviors reason in their own frame units; give each its
	// movement bound converted accordingly so no commanded move is ever
	// clamped (which would silently corrupt dead reckoning).
	sigmaLocal := make([]float64, len(pts))
	for i, f := range frames {
		sigmaLocal[i] = o.sigma / f.Scale
	}
	behaviors, endpoints, err := buildProtocol(proto, o, pts, sigmaLocal)
	if err != nil {
		return nil, err
	}
	robots := make([]*sim.Robot, len(pts))
	for i := range robots {
		behavior := behaviors[i]
		if o.flock != nil {
			behavior = &protocol.Flocked{
				Inner: behavior,
				Drift: frames[i].VecToLocal(geom.V(o.flock.X, o.flock.Y)),
			}
		}
		robots[i] = &sim.Robot{
			Frame:    frames[i],
			Sigma:    o.sigma,
			Behavior: behavior,
		}
	}
	world, err := sim.NewWorld(sim.Config{
		Positions:   pts,
		Robots:      robots,
		Identified:  o.identified,
		RecordTrace: o.trace,
		Engine:      buildEngine(o),
	})
	if err != nil {
		return nil, fmt.Errorf("waggle: %w", err)
	}
	if o.observer != nil {
		world.SetObserver(o.observer.inner)
		if o.faultRadio != nil {
			o.faultRadio.inner.SetObserver(o.observer.inner)
		}
	}
	if o.faultPlan != nil {
		plan, err := buildFaultPlan(*o.faultPlan, len(pts))
		if err != nil {
			return nil, err
		}
		inj, err := fault.NewInjector(plan, len(pts), o.seed)
		if err != nil {
			return nil, fmt.Errorf("waggle: %w", err)
		}
		var rc fault.RadioControl
		if o.faultRadio != nil {
			rc = o.faultRadio.inner
		}
		if err := inj.AttachRadio(rc); err != nil {
			return nil, fmt.Errorf("waggle: %w (pass the radio with WithFaultRadio)", err)
		}
		if o.observer != nil {
			inj.SetObserver(o.observer.inner)
		}
		world.SetInjector(inj)
	}
	net, err := core.NewNetwork(world, buildScheduler(o), endpoints)
	if err != nil {
		return nil, fmt.Errorf("waggle: %w", err)
	}
	if o.observer != nil {
		net.SetObserver(o.observer.inner)
	}
	s := &Swarm{
		net:      net,
		opts:     o,
		n:        len(pts),
		protocol: proto,
		initial:  append([]Point(nil), positions...),
		rec:      ckpt.NewRecorder(),
	}
	if o.faultRadio != nil {
		s.radio = o.faultRadio
		s.radio.attachRecorder(s.rec)
	}
	return s, nil
}

// N returns the number of robots.
func (s *Swarm) N() int { return s.n }

// Protocol returns the protocol the swarm runs.
func (s *Swarm) Protocol() Protocol { return s.protocol }

// record appends one input to the swarm's replay log. Every
// state-mutating public API call records itself on success (and on the
// in-band failures that still mutate state, like a budget-exhausted
// run), so a checkpoint can replay the exact call sequence.
func (s *Swarm) record(in ckpt.Input) {
	in.T = s.net.World().Time()
	s.rec.Record(in)
}

// Send queues a message from robot `from` to robot `to`.
func (s *Swarm) Send(from, to int, payload []byte) error {
	err := s.net.Send(from, to, payload)
	if err == nil {
		s.record(ckpt.Input{Op: ckpt.OpSend, From: from, To: to, Payload: payload})
	}
	return err
}

// Broadcast queues a message from robot `from` to every other robot as
// n-1 separate unicasts (recipient-specific framing).
func (s *Swarm) Broadcast(from int, payload []byte) error {
	err := s.net.Broadcast(from, payload)
	if err == nil {
		s.record(ckpt.Input{Op: ckpt.OpBroadcast, From: from, Payload: payload})
	}
	return err
}

// SendAll transmits one message from robot `from` to every other robot
// in a single transmission on the sender's own diameter — the paper's
// efficient one-to-all (§1). Cost: one frame instead of n-1.
func (s *Swarm) SendAll(from int, payload []byte) error {
	err := s.net.SendAll(from, payload)
	if err == nil {
		s.record(ckpt.Input{Op: ckpt.OpSendAll, From: from, Payload: payload})
	}
	return err
}

// Step advances the swarm by one time instant.
func (s *Swarm) Step() error {
	err := s.net.Step()
	if err == nil {
		s.record(ckpt.Input{Op: ckpt.OpStep})
	}
	return err
}

// RunUntilDelivered advances the swarm until `count` undelivered-to-you
// messages are available (or the step budget is exhausted), returning
// them — oldest first, including any that arrived during an earlier run
// but were never returned — and the number of instants executed. A zero
// maxSteps checks without stepping; negative budgets fail with
// ErrInvalidBudget.
func (s *Swarm) RunUntilDelivered(count, maxSteps int) ([]Message, int, error) {
	t := s.net.World().Time()
	recs, steps, err := s.net.RunUntilDelivered(count, maxSteps)
	if err == nil || errors.Is(err, ErrNotDelivered) {
		// A budget-exhausted run still stepped the world; replay must
		// repeat it. Pure validation failures mutated nothing.
		s.rec.Record(ckpt.Input{T: t, Op: ckpt.OpRunDelivered, Count: count, Max: maxSteps})
	}
	return toMessages(recs), steps, err
}

// RunUntilQuiet advances the swarm until every robot has nothing queued
// or in flight, returning every message not yet handed out by a
// previous RunUntil* call plus those delivered during the run. A zero
// maxSteps checks without stepping; negative budgets fail with
// ErrInvalidBudget.
func (s *Swarm) RunUntilQuiet(maxSteps int) ([]Message, int, error) {
	t := s.net.World().Time()
	recs, steps, err := s.net.RunUntilQuiet(maxSteps)
	if err == nil || errors.Is(err, ErrNotDelivered) {
		s.rec.Record(ckpt.Input{T: t, Op: ckpt.OpRunQuiet, Max: maxSteps})
	}
	return toMessages(recs), steps, err
}

// Delivered returns every message delivered so far.
func (s *Swarm) Delivered() []Message { return toMessages(s.net.Delivered()) }

// Overheard drains robot i's log of messages it decoded but that were
// addressed to others — every robot can reconstruct all traffic (§3.4).
func (s *Swarm) Overheard(i int) []Message {
	return toMessages(s.net.Endpoint(i).Overheard())
}

// SentBits returns how many movement excursions robot i has performed
// for transmission.
func (s *Swarm) SentBits(i int) int { return s.net.Endpoint(i).SentBits() }

// Time returns the current instant.
func (s *Swarm) Time() int { return s.net.World().Time() }

// Positions returns the robots' current positions.
func (s *Swarm) Positions() []Point {
	pts := s.net.World().Positions()
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point{X: p.X, Y: p.Y}
	}
	return out
}

// TotalDistance returns the total distance robot i has covered, when the
// swarm was built WithTrace; it returns 0 otherwise.
func (s *Swarm) TotalDistance(i int) float64 {
	tr := s.net.World().Trace()
	if tr == nil {
		return 0
	}
	return tr.TotalDistance(i)
}

// WriteTraceCSV streams the recorded execution as CSV
// (time,robot,x,y), for external plotting. Requires WithTrace.
func (s *Swarm) WriteTraceCSV(w io.Writer) error {
	tr := s.net.World().Trace()
	if tr == nil {
		return errors.New("waggle: tracing disabled; build the swarm WithTrace()")
	}
	return tr.WriteCSV(w)
}

// MinPairwiseDistance returns the minimum distance any two robots ever
// reached (WithTrace required; 0 otherwise) — the collision-avoidance
// metric.
func (s *Swarm) MinPairwiseDistance() float64 {
	tr := s.net.World().Trace()
	if tr == nil {
		return 0
	}
	return tr.MinPairwiseDistance()
}

// network exposes the internal network to sibling helpers (radio
// backup).
func (s *Swarm) network() *core.Network { return s.net }

func toMessages(recs []protocol.Received) []Message {
	out := make([]Message, len(recs))
	for i, r := range recs {
		out[i] = Message{From: r.From, To: r.To, Payload: r.Payload}
	}
	return out
}

// validateOptions rejects option combinations that would be silently
// unsound rather than letting them degrade.
func validateOptions(o options, n int) error {
	if o.flock != nil && !o.synchronous {
		// Flocking superimposes an agreed per-activation drift; under
		// partial activation the robots' accumulated drifts diverge and
		// relative geometry — the communication medium — is destroyed.
		return errors.New("waggle: WithFlocking requires WithSynchronous (§5's flocking remark assumes lockstep drift)")
	}
	if o.levels != 0 {
		if !o.synchronous {
			return errors.New("waggle: WithLevels applies to the synchronous protocols (§3.1 and its n-robot composition)")
		}
		if o.protocol != ProtoAuto && o.protocol != ProtoSync2 && o.protocol != ProtoSyncN {
			return fmt.Errorf("waggle: WithLevels conflicts with WithProtocol(%v)", o.protocol)
		}
	}
	if o.boundedSlices != 0 {
		if o.boundedSlices < 2 {
			return fmt.Errorf("waggle: bounded-slice base %d must be at least 2", o.boundedSlices)
		}
		if o.synchronous {
			return errors.New("waggle: WithBoundedSlices selects the asynchronous §5 protocol; drop WithSynchronous")
		}
		if o.protocol != ProtoAuto && o.protocol != ProtoAsyncBounded {
			return fmt.Errorf("waggle: WithBoundedSlices conflicts with WithProtocol(%v)", o.protocol)
		}
	}
	if o.alternateDrift && (n != 2 || o.synchronous) {
		return errors.New("waggle: WithAlternatingDrift applies only to the two-robot asynchronous protocol (§4.1)")
	}
	if o.scheduler == SchedulerStarver && (o.starveVictim < 0 || o.starveVictim >= n) {
		return fmt.Errorf("waggle: starver victim %d out of range [0,%d)", o.starveVictim, n)
	}
	if o.sigma <= 0 {
		return fmt.Errorf("waggle: sigma %v must be positive", o.sigma)
	}
	if o.stabilizeEpoch != 0 {
		if o.stabilizeEpoch < 0 {
			return fmt.Errorf("waggle: stabilization epoch %d must be positive", o.stabilizeEpoch)
		}
		if !o.synchronous {
			return errors.New("waggle: WithStabilization requires WithSynchronous (§5's sketch assumes a global clock)")
		}
		if o.protocol != ProtoAuto && o.protocol != ProtoSyncN {
			return fmt.Errorf("waggle: WithStabilization conflicts with WithProtocol(%v)", o.protocol)
		}
		if o.levels != 0 {
			return errors.New("waggle: WithStabilization does not compose with WithLevels")
		}
	}
	if o.engine < EngineAuto || o.engine > EngineParallel {
		return fmt.Errorf("waggle: unknown engine mode %d", o.engine)
	}
	return nil
}

func pickProtocol(o options, n int) Protocol {
	if o.protocol != ProtoAuto {
		return o.protocol
	}
	if o.boundedSlices > 0 {
		return ProtoAsyncBounded
	}
	if o.stabilizeEpoch > 0 {
		// Stabilization is built on the n-robot synchronous protocol,
		// even for two robots.
		return ProtoSyncN
	}
	switch {
	case n == 2 && o.synchronous:
		return ProtoSync2
	case n == 2:
		return ProtoAsync2
	case o.synchronous:
		return ProtoSyncN
	default:
		return ProtoAsyncN
	}
}

func naming(o options) protocol.Naming {
	switch {
	case o.identified:
		return protocol.NamingIDs
	case o.senseOfDirection:
		return protocol.NamingLex
	default:
		return protocol.NamingSEC
	}
}

func buildProtocol(proto Protocol, o options, pts []geom.Point, sigmaLocal []float64) ([]sim.Behavior, []*protocol.Endpoint, error) {
	n := len(pts)
	switch proto {
	case ProtoSync2:
		if n != 2 {
			return nil, nil, fmt.Errorf("waggle: %v needs exactly 2 robots, got %d", proto, n)
		}
		return protocol.NewSync2(protocol.Sync2Config{
			Levels:     o.levels,
			SigmaLocal: [2]float64{sigmaLocal[0], sigmaLocal[1]},
		})
	case ProtoAsync2:
		if n != 2 {
			return nil, nil, fmt.Errorf("waggle: %v needs exactly 2 robots, got %d", proto, n)
		}
		drift := protocol.DriftAway
		if o.alternateDrift {
			drift = protocol.DriftAlternate
		}
		return protocol.NewAsync2(protocol.Async2Config{
			Drift:      drift,
			SigmaLocal: [2]float64{sigmaLocal[0], sigmaLocal[1]},
		})
	case ProtoSyncN:
		cfg := protocol.SyncNConfig{
			Naming:     naming(o),
			Levels:     o.levels,
			SigmaLocal: sigmaLocal,
		}
		if o.stabilizeEpoch > 0 {
			return protocol.NewStabilizingSyncN(n, o.stabilizeEpoch, cfg)
		}
		return protocol.NewSyncN(n, cfg)
	case ProtoAsyncN:
		return protocol.NewAsyncN(n, protocol.AsyncNConfig{Naming: naming(o), SigmaLocal: sigmaLocal})
	case ProtoAsyncBounded:
		k := o.boundedSlices
		if k == 0 {
			k = 2
		}
		return protocol.NewAsyncBounded(n, k, protocol.AsyncNConfig{Naming: naming(o), SigmaLocal: sigmaLocal})
	default:
		return nil, nil, fmt.Errorf("waggle: unknown protocol %v", proto)
	}
}
