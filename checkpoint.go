package waggle

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"

	"waggle/internal/ckpt"
	"waggle/internal/core"
	"waggle/internal/fault"
	"waggle/internal/protocol"
	"waggle/internal/sim"
	"waggle/internal/wire"
)

// Checkpoint is a versioned (schema "waggle-ckpt/v1"), resumable image
// of a run: the swarm's construction recipe, the ordered log of every
// state-mutating API call since construction, and a schema-stable
// snapshot of the externally observable state at capture time.
//
// Restore rebuilds the swarm from the recipe and replays the log — the
// execution is deterministic, so the replay reproduces every private
// behavior and endpoint state bit-for-bit — then re-captures the
// snapshot and requires deep equality with the stored one. A resumed
// run is byte-identical (positions, traces, obs snapshots) to the
// uninterrupted run, under EngineSequential and EngineParallel alike.
type Checkpoint = ckpt.Checkpoint

// Checkpoint file-format errors, re-exported for callers that handle
// damaged or incompatible files distinctly.
var (
	// ErrCheckpointSchema marks a checkpoint written by an
	// incompatible format version.
	ErrCheckpointSchema = ckpt.ErrSchema
	// ErrCheckpointChecksum marks a checkpoint whose body fails its
	// CRC32 (corruption).
	ErrCheckpointChecksum = ckpt.ErrChecksum
	// ErrCheckpointTruncated marks a checkpoint that does not parse.
	ErrCheckpointTruncated = ckpt.ErrTruncated
	// ErrRestoreMismatch is returned when the state reached by
	// replaying a checkpoint's input log diverges from the state
	// snapshot stored in it — a corrupt file, or a build whose
	// execution semantics drifted from the one that saved it.
	ErrRestoreMismatch = errors.New("waggle: restored state diverges from checkpoint snapshot")
	// ErrRestoreConfig is returned by WithRestore when the positions
	// and options passed to NewSwarm do not describe the checkpointed
	// swarm.
	ErrRestoreConfig = errors.New("waggle: checkpoint config does not match the swarm being built")
)

// SaveCheckpoint writes ck to path atomically (temp file + fsync +
// rename + directory fsync), in the versioned, CRC32-checksummed
// format of the chosen codec: the JSON envelope by default, the
// compact binary format with CodecBinary. CodecDelta is meaningful
// only for a periodic writer (Swarm.NewCheckpointWriter); for a
// single-shot save it degrades to a binary base snapshot.
func SaveCheckpoint(path string, ck *Checkpoint, codec ...CheckpointCodec) error {
	c := CodecJSON
	switch len(codec) {
	case 0:
	case 1:
		c = codec[0]
	default:
		return fmt.Errorf("waggle: SaveCheckpoint takes at most one codec, got %d", len(codec))
	}
	switch c {
	case CodecJSON:
		return ckpt.SaveFile(path, ck)
	case CodecBinary, CodecDelta:
		return ckpt.SaveFile(path, ck, wire.CodecName)
	default:
		return fmt.Errorf("waggle: unknown checkpoint codec %d", int(c))
	}
}

// LoadCheckpoint reads and validates the checkpoint at path,
// auto-detecting the format (JSON envelope, binary, or binary
// base+delta chain — chains are folded into one checkpoint). Failure
// modes are typed: ErrCheckpointSchema, ErrCheckpointChecksum,
// ErrCheckpointTruncated.
func LoadCheckpoint(path string) (*Checkpoint, error) { return ckpt.LoadFile(path) }

// WriteCheckpoint writes ck to w (non-atomic; SaveCheckpoint is the
// crash-safe file variant).
func WriteCheckpoint(w io.Writer, ck *Checkpoint) error { return ckpt.Save(w, ck) }

// ReadCheckpoint reads and validates a checkpoint from r.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) { return ckpt.Load(r) }

// Checkpoint captures a resumable image of the swarm — and of its
// coupled Radio and BackupMessenger, if any — at the current instant.
//
// What is captured: construction config (positions, options, radio
// seed, observer capacity), the ordered input log since construction,
// and the observable state (positions, time, delivery queues and
// cursor, scheduler and radio RNG stream positions, messenger retry
// and failover state, fault-plan window cursor, trace and
// deterministic-obs digests).
//
// What is not: wall-clock-derived observability metrics (marked
// volatile, excluded from DeterministicSnapshot), drained Overheard
// logs, and any Radio that was never coupled to this swarm via
// WithFaultRadio or NewBackupMessenger.
func (s *Swarm) Checkpoint() (*Checkpoint, error) {
	state, err := s.captureState()
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		Config: s.ckptConfig(),
		Inputs: s.rec.Ops(),
		State:  state,
	}, nil
}

// Restored bundles everything a full Restore rebuilds.
type Restored struct {
	Swarm *Swarm
	// Radio is the rebuilt coupled radio, nil when the checkpoint had
	// none. Messenger likewise.
	Radio     *Radio
	Messenger *BackupMessenger
	// Observer is the rebuilt observer, nil when the checkpoint had
	// none. Its deterministic metrics and trace match the capture-time
	// observer; volatile (wall-clock) metrics restart from zero.
	Observer *Observer
}

// RestoreOption adjusts how a checkpoint is restored.
type RestoreOption func(*restoreOptions)

type restoreOptions struct {
	engine    EngineMode
	setEngine bool
}

// RestoreWithEngine restores under the given engine mode instead of
// the checkpointed one. Sound because the engine never changes the
// computed execution — a checkpoint saved under EngineSequential
// resumes byte-identically under EngineParallel and vice versa.
func RestoreWithEngine(mode EngineMode) RestoreOption {
	return func(ro *restoreOptions) { ro.engine = mode; ro.setEngine = true }
}

// Restore rebuilds a swarm (and its coupled radio, messenger, and
// observer) from a checkpoint and resumes it at the checkpointed
// instant. The replayed state is verified against the checkpoint's
// snapshot; divergence fails with ErrRestoreMismatch rather than
// resuming a different run.
func Restore(ck *Checkpoint, ropts ...RestoreOption) (*Restored, error) {
	if ck == nil {
		return nil, errors.New("waggle: nil checkpoint")
	}
	var ro restoreOptions
	for _, opt := range ropts {
		opt(&ro)
	}
	o := optionsFromCkpt(ck.Config.Options)
	positions := pointsFromXY(ck.Config.Positions)
	if ro.setEngine {
		o.engine = ro.engine
	}
	res := &Restored{}
	if ck.Config.Observer != nil {
		res.Observer = NewObserverWithCapacity(ck.Config.Observer.TraceCapacity)
		o.observer = res.Observer
	}
	if ck.Config.Radio != nil {
		res.Radio = NewRadio(ck.Config.Radio.N, ck.Config.Radio.Seed)
		if ck.Config.Options.FaultRadio {
			o.faultRadio = res.Radio
		}
	}
	s, err := newSwarm(positions, o)
	if err != nil {
		return nil, err
	}
	res.Swarm = s
	if res.Radio != nil && s.radio == nil {
		// Coupled through the messenger (or checkpointed before any
		// coupling op): register for capture without the fault wiring.
		s.radio = res.Radio
		res.Radio.attachRecorder(s.rec)
	}
	if ck.Config.Messenger {
		if res.Radio == nil {
			return nil, fmt.Errorf("%w: checkpoint couples a messenger but has no radio config", ErrCheckpointTruncated)
		}
		res.Messenger, err = NewBackupMessenger(res.Radio, s)
		if err != nil {
			return nil, err
		}
	}
	if err := s.finishRestore(ck, res.Radio, res.Messenger); err != nil {
		return nil, err
	}
	return res, nil
}

// newSwarmRestored is the WithRestore path of NewSwarm: the caller
// passes the same positions and options the checkpoint was captured
// with (verified; engine mode excepted) plus the checkpoint itself.
// Messenger-coupled checkpoints need the full Restore entry point.
func newSwarmRestored(positions []Point, o options) (*Swarm, error) {
	ck := o.restore
	o.restore = nil
	if ck.Config.Messenger {
		return nil, fmt.Errorf("%w: checkpoint couples a BackupMessenger; restore it with waggle.Restore", ErrRestoreConfig)
	}
	s, err := newSwarm(positions, o)
	if err != nil {
		return nil, err
	}
	got, want := s.ckptConfig(), ck.Config
	// The engine never changes the computed execution, so restoring
	// under a different mode is allowed: compare configs engine-blind.
	got.Options.Engine, want.Options.Engine = 0, 0
	if !reflect.DeepEqual(got, want) {
		return nil, fmt.Errorf("%w: %s", ErrRestoreConfig, firstConfigDiff(got, want))
	}
	if err := s.finishRestore(ck, s.radio, nil); err != nil {
		return nil, err
	}
	return s, nil
}

// finishRestore replays the checkpoint's input log against a freshly
// built swarm, verifies the reached state against the stored snapshot,
// and seats the log so the resumed swarm keeps recording from genesis.
func (s *Swarm) finishRestore(ck *Checkpoint, radio *Radio, m *BackupMessenger) error {
	if err := replayInputs(s, radio, m, ck.Inputs); err != nil {
		return err
	}
	got, err := s.captureState()
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(got, ck.State) {
		return fmt.Errorf("%w: %s", ErrRestoreMismatch, firstStateDiff(got, ck.State))
	}
	s.rec.Reset(ck.Inputs)
	return nil
}

// replayInputs re-executes the recorded API calls in order, through
// the internal (non-recording) paths. In-band failures that the
// original run also saw — a jammed radio send, a budget-exhausted run
// — are expected; anything else aborts the restore.
func replayInputs(s *Swarm, r *Radio, m *BackupMessenger, inputs []ckpt.Input) error {
	for i, in := range inputs {
		reps := in.Reps
		if reps <= 0 {
			reps = 1
		}
		for k := 0; k < reps; k++ {
			if err := applyInput(s, r, m, in); err != nil {
				return fmt.Errorf("waggle: replay input %d (%s, t=%d): %w", i, in.Op, in.T, err)
			}
		}
	}
	return nil
}

// benignReplayErr reports errors a recorded call legitimately returned
// in the original run while still mutating state.
func benignReplayErr(err error) bool {
	return errors.Is(err, ErrNotDelivered) || errors.Is(err, ErrRadioFailed)
}

func applyInput(s *Swarm, r *Radio, m *BackupMessenger, in ckpt.Input) error {
	var err error
	switch in.Op {
	case ckpt.OpSend:
		err = s.net.Send(in.From, in.To, in.Payload)
	case ckpt.OpBroadcast:
		err = s.net.Broadcast(in.From, in.Payload)
	case ckpt.OpSendAll:
		err = s.net.SendAll(in.From, in.Payload)
	case ckpt.OpStep:
		err = s.net.Step()
	case ckpt.OpRunDelivered:
		_, _, err = s.net.RunUntilDelivered(in.Count, in.Max)
	case ckpt.OpRunQuiet:
		_, _, err = s.net.RunUntilQuiet(in.Max)
	case ckpt.OpMsgSend, ckpt.OpMsgTick, ckpt.OpMsgStep, ckpt.OpMsgRun, ckpt.OpMsgPolicy:
		if m == nil {
			return fmt.Errorf("messenger op without a coupled messenger")
		}
		switch in.Op {
		case ckpt.OpMsgSend:
			err = m.inner.Send(in.From, in.To, in.Payload)
		case ckpt.OpMsgTick:
			err = m.inner.Tick()
		case ckpt.OpMsgStep:
			err = m.inner.Step()
		case ckpt.OpMsgRun:
			_, err = m.inner.RunUntilSettled(in.Max)
		case ckpt.OpMsgPolicy:
			if in.Policy == nil {
				return fmt.Errorf("policy op without a policy")
			}
			err = m.inner.SetPolicy(core.MessengerPolicy{
				MaxRetries: in.Policy.MaxRetries,
				Backoff:    in.Policy.Backoff,
				Deadline:   in.Policy.Deadline,
				ProbeEvery: in.Policy.ProbeEvery,
			})
		}
	case ckpt.OpRadioBreak, ckpt.OpRadioRepair, ckpt.OpRadioJam, ckpt.OpRadioSend, ckpt.OpRadioRecv:
		if r == nil {
			return fmt.Errorf("radio op without a coupled radio")
		}
		switch in.Op {
		case ckpt.OpRadioBreak:
			err = r.inner.Break(in.From)
		case ckpt.OpRadioRepair:
			err = r.inner.Repair(in.From)
		case ckpt.OpRadioJam:
			err = r.inner.SetJamming(in.P)
		case ckpt.OpRadioSend:
			err = r.inner.Send(in.From, in.To, in.Payload)
		case ckpt.OpRadioRecv:
			r.inner.Receive(in.From)
		}
	default:
		return fmt.Errorf("unknown op %q", in.Op)
	}
	if err != nil && !benignReplayErr(err) {
		return err
	}
	return nil
}

// ckptConfig builds the checkpointed construction recipe of this
// swarm.
func (s *Swarm) ckptConfig() ckpt.Config {
	cfg := ckpt.Config{
		Positions: xyFromPoints(s.initial),
		Options:   ckptOptions(s.opts),
		Messenger: s.messenger != nil,
	}
	if s.radio != nil {
		cfg.Radio = &ckpt.RadioConfig{N: s.radio.n, Seed: s.radio.seed}
	}
	if s.opts.observer != nil {
		cfg.Observer = &ckpt.ObserverConfig{TraceCapacity: s.opts.observer.inner.TraceCapacity()}
	}
	return cfg
}

// ckptOptions maps the resolved option set to its schema form.
func ckptOptions(o options) ckpt.Options {
	co := ckpt.Options{
		Synchronous:      o.synchronous,
		Identified:       o.identified,
		SenseOfDirection: o.senseOfDirection,
		LeftHanded:       o.leftHanded,
		Protocol:         int(o.protocol),
		Levels:           o.levels,
		BoundedSlices:    o.boundedSlices,
		AlternateDrift:   o.alternateDrift,
		Seed:             o.seed,
		Sigma:            o.sigma,
		Trace:            o.trace,
		Scheduler:        int(o.scheduler),
		StarveVictim:     o.starveVictim,
		StarveDelay:      o.starveDelay,
		ActivationProb:   o.activationProb,
		Engine:           int(o.engine),
		StabilizeEpoch:   o.stabilizeEpoch,
		FaultRadio:       o.faultRadio != nil,
	}
	if o.flock != nil {
		co.Flock = &ckpt.XY{X: o.flock.X, Y: o.flock.Y}
	}
	if o.faultPlan != nil {
		co.HasFaultPlan = true
		if len(o.faultPlan.Events) > 0 {
			co.FaultPlan = make([]ckpt.FaultEventConfig, len(o.faultPlan.Events))
			for i, e := range o.faultPlan.Events {
				co.FaultPlan[i] = ckpt.FaultEventConfig{
					Kind: int(e.Kind), At: e.At, Until: e.Until, Robot: e.Robot,
					Mag: e.Mag, Min: e.Min, Max: e.Max, DX: e.DX, DY: e.DY,
				}
			}
		}
	}
	return co
}

// optionsFromCkpt inverts ckptOptions.
func optionsFromCkpt(co ckpt.Options) options {
	o := defaultOptions()
	o.synchronous = co.Synchronous
	o.identified = co.Identified
	o.senseOfDirection = co.SenseOfDirection
	o.leftHanded = co.LeftHanded
	o.protocol = Protocol(co.Protocol)
	o.levels = co.Levels
	o.boundedSlices = co.BoundedSlices
	o.alternateDrift = co.AlternateDrift
	o.seed = co.Seed
	o.sigma = co.Sigma
	o.trace = co.Trace
	o.scheduler = SchedulerKind(co.Scheduler)
	o.starveVictim = co.StarveVictim
	o.starveDelay = co.StarveDelay
	o.activationProb = co.ActivationProb
	o.engine = EngineMode(co.Engine)
	o.stabilizeEpoch = co.StabilizeEpoch
	if co.Flock != nil {
		o.flock = &Point{X: co.Flock.X, Y: co.Flock.Y}
	}
	if co.HasFaultPlan {
		plan := &FaultPlan{}
		for _, e := range co.FaultPlan {
			plan.Events = append(plan.Events, FaultEvent{
				Kind: FaultKind(e.Kind), At: e.At, Until: e.Until, Robot: e.Robot,
				Mag: e.Mag, Min: e.Min, Max: e.Max, DX: e.DX, DY: e.DY,
			})
		}
		o.faultPlan = plan
	}
	return o
}

// captureState snapshots the externally observable state. Empty slices
// are left nil throughout so a capture deep-equals its own JSON round
// trip (the restore verification compares a fresh capture against the
// decoded stored one).
func (s *Swarm) captureState() (ckpt.State, error) {
	w := s.net.World()
	st := ckpt.State{
		Time:      w.Time(),
		Positions: xyFromPoints(s.Positions()),
		Consumed:  s.net.Consumed(),
		Delivered: messagesToState(s.net.Delivered()),
		Endpoints: make([]ckpt.EndpointState, s.n),
	}
	for i := 0; i < s.n; i++ {
		ep := s.net.Endpoint(i)
		st.Endpoints[i] = ckpt.EndpointState{
			Pending:  ep.PendingMessages(),
			Idle:     ep.Idle(),
			SentBits: ep.SentBits(),
		}
	}
	st.SchedulerDraws, st.SchedulerIdle = schedulerState(s.net.Scheduler())
	if s.radio != nil {
		st.Radio = radioState(s.radio.inner.Snapshot())
	}
	if s.messenger != nil {
		st.Messenger = messengerState(s.messenger.inner.Snapshot())
	}
	st.Fault = s.faultState()
	var err error
	if st.TraceDigest, err = s.traceDigest(); err != nil {
		return ckpt.State{}, err
	}
	if st.ObsDigest, err = s.obsDigest(); err != nil {
		return ckpt.State{}, err
	}
	return st, nil
}

// faultState snapshots the injector's radio-window cursor, nil when the
// swarm has no fault plan.
func (s *Swarm) faultState() *ckpt.FaultState {
	inj := s.net.World().Injector()
	if inj == nil {
		return nil
	}
	fi, ok := inj.(*fault.Injector)
	if !ok {
		return nil
	}
	outage, jam := fi.WindowState()
	fs := &ckpt.FaultState{Jam: jam}
	if anyTrue(outage) {
		fs.Outage = outage
	}
	return fs
}

// traceDigest hashes the movement trace CSV ("" when tracing is off).
func (s *Swarm) traceDigest() (string, error) {
	if !s.opts.trace {
		return "", nil
	}
	var buf bytes.Buffer
	if err := s.WriteTraceCSV(&buf); err != nil {
		return "", fmt.Errorf("waggle: checkpoint trace digest: %w", err)
	}
	return ckpt.Digest(buf.Bytes()), nil
}

// obsDigest hashes the deterministic observability snapshot ("" when no
// observer is attached).
func (s *Swarm) obsDigest() (string, error) {
	if s.opts.observer == nil {
		return "", nil
	}
	var buf bytes.Buffer
	if err := s.opts.observer.DeterministicSnapshot().WriteJSON(&buf); err != nil {
		return "", fmt.Errorf("waggle: checkpoint obs digest: %w", err)
	}
	return ckpt.Digest(buf.Bytes()), nil
}

// schedulerState extracts the RNG stream position of the activation
// scheduler, unwrapping the FirstSync shell every asynchronous swarm
// uses. Stateless schedulers report zero.
func schedulerState(sc sim.Scheduler) (uint64, []int) {
	if fs, ok := sc.(sim.FirstSync); ok {
		sc = fs.Inner
	}
	if rf, ok := sc.(*sim.RandomFair); ok {
		return rf.StreamState()
	}
	return 0, nil
}

// schedulerStateRef is schedulerState without the idle copy: the slice
// aliases the scheduler and must not be retained across a step. The
// delta checkpointer diffs it against its mirror on every save.
func schedulerStateRef(sc sim.Scheduler) (uint64, []int) {
	if fs, ok := sc.(sim.FirstSync); ok {
		sc = fs.Inner
	}
	if rf, ok := sc.(*sim.RandomFair); ok {
		return rf.StreamStateRef()
	}
	return 0, nil
}

func radioState(rs core.RadioSnapshot) *ckpt.RadioState {
	out := &ckpt.RadioState{
		Seed:      rs.Seed,
		Draws:     rs.Draws,
		JamProb:   rs.JamProb,
		Broken:    rs.Broken,
		Sent:      rs.Sent,
		Lost:      rs.Lost,
		Delivered: rs.Delivered,
	}
	if len(rs.Inboxes) > 0 {
		out.Inboxes = make([][]ckpt.MessageState, len(rs.Inboxes))
		for i, box := range rs.Inboxes {
			for _, msg := range box {
				out.Inboxes[i] = append(out.Inboxes[i], ckpt.MessageState{
					From: msg.From, To: msg.To, Payload: nilIfEmpty(msg.Payload),
				})
			}
		}
	}
	return out
}

func messengerState(ms core.MessengerSnapshot) *ckpt.MessengerState {
	out := &ckpt.MessengerState{
		ViaRadio:     ms.Stats.ViaRadio,
		ViaMovement:  ms.Stats.ViaMovement,
		Retries:      ms.Stats.Retries,
		Failovers:    ms.Stats.Failovers,
		Failbacks:    ms.Stats.Failbacks,
		Expired:      ms.Stats.Expired,
		ImplicitAcks: ms.Stats.ImplicitAcks,
		AckCursor:    ms.AckCursor,
	}
	for _, p := range ms.Pending {
		out.Pending = append(out.Pending, ckpt.PendingState{
			From: p.From, To: p.To, Payload: nilIfEmpty(p.Payload),
			Submitted: p.Submitted, Attempts: p.Attempts, NextTry: p.NextTry,
		})
	}
	for _, wtc := range ms.Watches {
		out.Watches = append(out.Watches, ckpt.MessageState{
			From: wtc.From, To: wtc.To, Payload: nilIfEmpty(wtc.Payload),
		})
	}
	if ms.Mode != nil {
		out.Mode = make([]int, len(ms.Mode))
		for i, m := range ms.Mode {
			out.Mode[i] = int(m)
		}
	}
	out.ProbeAt = ms.ProbeAt
	return out
}

func messagesToState(recs []protocol.Received) []ckpt.MessageState {
	if len(recs) == 0 {
		return nil
	}
	out := make([]ckpt.MessageState, len(recs))
	for i, r := range recs {
		out[i] = ckpt.MessageState{From: r.From, To: r.To, Payload: nilIfEmpty(r.Payload)}
	}
	return out
}

func xyFromPoints(pts []Point) []ckpt.XY {
	out := make([]ckpt.XY, len(pts))
	for i, p := range pts {
		out[i] = ckpt.XY{X: p.X, Y: p.Y}
	}
	return out
}

func pointsFromXY(xs []ckpt.XY) []Point {
	out := make([]Point, len(xs))
	for i, p := range xs {
		out[i] = Point{X: p.X, Y: p.Y}
	}
	return out
}

func nilIfEmpty(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return b
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// firstStateDiff names the first top-level State field that differs,
// for actionable ErrRestoreMismatch messages.
func firstStateDiff(got, want ckpt.State) string {
	return firstFieldDiff(reflect.ValueOf(got), reflect.ValueOf(want))
}

// firstConfigDiff names the first top-level Config field that differs.
func firstConfigDiff(got, want ckpt.Config) string {
	return firstFieldDiff(reflect.ValueOf(got), reflect.ValueOf(want))
}

func firstFieldDiff(got, want reflect.Value) string {
	t := got.Type()
	for i := 0; i < t.NumField(); i++ {
		if !reflect.DeepEqual(got.Field(i).Interface(), want.Field(i).Interface()) {
			return fmt.Sprintf("field %s: replayed %+v, checkpoint says %+v",
				t.Field(i).Name, got.Field(i).Interface(), want.Field(i).Interface())
		}
	}
	return "states differ (no top-level field mismatch?)"
}
