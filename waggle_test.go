package waggle

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// square returns four robot positions.
func square() []Point {
	return []Point{{0, 0}, {20, 0}, {20, 20}, {0, 20}}
}

func TestNewSwarmValidation(t *testing.T) {
	if _, err := NewSwarm(nil); !errors.Is(err, ErrTooFewRobots) {
		t.Errorf("err = %v, want ErrTooFewRobots", err)
	}
	if _, err := NewSwarm([]Point{{0, 0}}); !errors.Is(err, ErrTooFewRobots) {
		t.Errorf("err = %v, want ErrTooFewRobots", err)
	}
	if _, err := NewSwarm(square(), WithProtocol(ProtoSync2)); err == nil {
		t.Error("Sync2 with 4 robots accepted")
	}
	if _, err := NewSwarm([]Point{{0, 0}, {0, 0}}); err == nil {
		t.Error("coincident robots accepted")
	}
}

func TestProtocolAutoSelection(t *testing.T) {
	tests := []struct {
		name string
		pts  []Point
		opts []Option
		want Protocol
	}{
		{"two sync", []Point{{0, 0}, {5, 0}}, []Option{WithSynchronous()}, ProtoSync2},
		{"two async", []Point{{0, 0}, {5, 0}}, nil, ProtoAsync2},
		{"n sync", square(), []Option{WithSynchronous()}, ProtoSyncN},
		{"n async", square(), nil, ProtoAsyncN},
		{"bounded", square(), []Option{WithBoundedSlices(3)}, ProtoAsyncBounded},
		{"forced asyncn for two", []Point{{0, 0}, {5, 0}}, []Option{WithProtocol(ProtoAsyncN)}, ProtoAsyncN},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, err := NewSwarm(tt.pts, tt.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if s.Protocol() != tt.want {
				t.Errorf("protocol = %v, want %v", s.Protocol(), tt.want)
			}
		})
	}
}

func TestSwarmEndToEndMatrix(t *testing.T) {
	// The headline integration test: every protocol/capability
	// combination delivers a message.
	cases := []struct {
		name string
		pts  []Point
		opts []Option
	}{
		{"sync2", []Point{{0, 0}, {10, 0}}, []Option{WithSynchronous()}},
		{"sync2 levels", []Point{{0, 0}, {10, 0}}, []Option{WithSynchronous(), WithLevels(16)}},
		{"async2", []Point{{0, 0}, {10, 0}}, nil},
		{"async2 alternating", []Point{{0, 0}, {10, 0}}, []Option{WithAlternatingDrift()}},
		{"syncn sec", square(), []Option{WithSynchronous()}},
		{"syncn lex", square(), []Option{WithSynchronous(), WithSenseOfDirection()}},
		{"syncn ids", square(), []Option{WithSynchronous(), WithIdentifiedRobots()}},
		{"asyncn sec", square(), nil},
		{"asyncn lex", square(), []Option{WithSenseOfDirection()}},
		{"asyncn ids", square(), []Option{WithIdentifiedRobots()}},
		{"bounded", square(), []Option{WithBoundedSlices(2)}},
		{"left-handed frames", square(), []Option{WithLeftHandedFrames()}},
		{"round robin", square(), []Option{WithScheduler(SchedulerRoundRobin)}},
		{"starver", square(), []Option{WithStarver(1, 6)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSwarm(tc.pts, append(tc.opts, WithSeed(7))...)
			if err != nil {
				t.Fatal(err)
			}
			want := []byte("E2E")
			if err := s.Send(0, 1, want); err != nil {
				t.Fatal(err)
			}
			got, steps, err := s.RunUntilDelivered(1, 2_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if got[0].From != 0 || got[0].To != 1 || !bytes.Equal(got[0].Payload, want) {
				t.Errorf("received %+v", got[0])
			}
			if steps == 0 {
				t.Error("delivered without any step")
			}
		})
	}
}

func TestSwarmRunUntilQuiet(t *testing.T) {
	s, err := NewSwarm(square(), WithSynchronous(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(0, 2, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Send(3, 1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	msgs, _, err := s.RunUntilQuiet(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("delivered %d, want 2", len(msgs))
	}
	if len(s.Delivered()) != 2 {
		t.Errorf("Delivered() = %d", len(s.Delivered()))
	}
}

func TestSwarmBroadcastAndOverhear(t *testing.T) {
	s, err := NewSwarm(square(), WithSynchronous(), WithSeed(5), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Broadcast(0, []byte("ALL")); err != nil {
		t.Fatal(err)
	}
	msgs, _, err := s.RunUntilQuiet(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("broadcast delivered %d, want 3", len(msgs))
	}
	// Robot 1 also decoded the copies addressed to 2 and 3.
	over := s.Overheard(1)
	if len(over) != 2 {
		t.Errorf("robot 1 overheard %d, want 2", len(over))
	}
}

func TestSwarmDeterministicPerSeed(t *testing.T) {
	run := func() ([]Message, int) {
		s, err := NewSwarm(square(), WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Send(2, 0, []byte("D")); err != nil {
			t.Fatal(err)
		}
		msgs, steps, err := s.RunUntilDelivered(1, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return msgs, steps
	}
	m1, s1 := run()
	m2, s2 := run()
	if s1 != s2 || !bytes.Equal(m1[0].Payload, m2[0].Payload) {
		t.Errorf("same seed diverged: %d vs %d steps", s1, s2)
	}
}

func TestSwarmFlocking(t *testing.T) {
	s, err := NewSwarm(square(), WithSynchronous(), WithFlocking(0.5, 0.25), WithSeed(1), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(0, 3, []byte("GO")); err != nil {
		t.Fatal(err)
	}
	msgs, steps, err := s.RunUntilDelivered(1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msgs[0].Payload, []byte("GO")) {
		t.Errorf("payload %q", msgs[0].Payload)
	}
	// The swarm as a whole must have drifted.
	pos := s.Positions()
	wantX := 0 + 0.5*float64(steps)
	if pos[0].X < wantX-6 || pos[0].X > wantX+6 {
		t.Errorf("robot 0 at x=%v, want about %v", pos[0].X, wantX)
	}
}

func TestSwarmSigmaClampKeepsAsyncNWorking(t *testing.T) {
	// A modest movement bound slows the robots but must not break
	// delivery (the protocols move in the same direction across
	// activations).
	s, err := NewSwarm(square(), WithSigma(0.8), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x42}
	if err := s.Send(1, 3, want); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.RunUntilDelivered(1, 4_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0].Payload, want) {
		t.Errorf("payload %v", got[0].Payload)
	}
}

func TestSwarmTraceMetrics(t *testing.T) {
	s, err := NewSwarm(square(), WithSynchronous(), WithSeed(2), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(0, 1, []byte("T")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RunUntilDelivered(1, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if s.TotalDistance(0) == 0 {
		t.Error("sender distance is zero")
	}
	if s.TotalDistance(2) != 0 {
		t.Error("idle robot moved in a silent synchronous protocol")
	}
	if s.MinPairwiseDistance() <= 0 {
		t.Error("robots collided")
	}
	if s.SentBits(0) != 24 { // 16-bit header + 1 byte
		t.Errorf("SentBits = %d, want 24", s.SentBits(0))
	}
}

func TestBackupMessengerFacade(t *testing.T) {
	s, err := NewSwarm(square(), WithSynchronous(), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	radio := NewRadio(s.N(), 1)
	bm, err := NewBackupMessenger(radio, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := bm.Send(0, 1, []byte("R")); err != nil {
		t.Fatal(err)
	}
	if got := radio.Receive(1); len(got) != 1 {
		t.Fatalf("radio delivery missing: %v", got)
	}
	radio.Break(0)
	if !radio.Broken(0) {
		t.Error("Break not recorded")
	}
	want := []byte("M")
	if err := bm.Send(0, 2, want); err != nil {
		t.Fatal(err)
	}
	got, _, err := bm.Swarm().RunUntilDelivered(1, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].To != 2 || !bytes.Equal(got[0].Payload, want) {
		t.Errorf("movement fallback delivered %+v", got[0])
	}
	viaRadio, viaMovement := bm.Stats()
	if viaRadio != 1 || viaMovement != 1 {
		t.Errorf("stats (%d,%d), want (1,1)", viaRadio, viaMovement)
	}
	if _, err := NewBackupMessenger(nil, nil); err == nil {
		t.Error("nil args accepted")
	}
}

func TestProtocolString(t *testing.T) {
	for p, want := range map[Protocol]string{
		ProtoAuto: "auto", ProtoSync2: "sync2", ProtoSyncN: "syncn",
		ProtoAsync2: "async2", ProtoAsyncN: "asyncn", ProtoAsyncBounded: "asyncbounded",
		Protocol(99): "Protocol(99)",
	} {
		if got := p.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(p), got, want)
		}
	}
}

func ExampleSwarm() {
	swarm, err := NewSwarm(
		[]Point{{0, 0}, {10, 0}},
		WithSynchronous(),
		WithSeed(1),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := swarm.Send(0, 1, []byte("HELLO")); err != nil {
		fmt.Println(err)
		return
	}
	msgs, _, err := swarm.RunUntilDelivered(1, 100_000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("robot %d received %q from robot %d\n", msgs[0].To, msgs[0].Payload, msgs[0].From)
	// Output: robot 1 received "HELLO" from robot 0
}

func TestSwarmSendAllEfficient(t *testing.T) {
	s, err := NewSwarm(square(), WithSynchronous(), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("ONE")
	if err := s.SendAll(1, want); err != nil {
		t.Fatal(err)
	}
	msgs, _, err := s.RunUntilQuiet(200_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("SendAll delivered %d copies, want 3", len(msgs))
	}
	for _, m := range msgs {
		if m.From != 1 || !bytes.Equal(m.Payload, want) {
			t.Errorf("bad copy %+v", m)
		}
	}
	// One frame, not n-1.
	if bits := s.SentBits(1); bits != 16+8*len(want) {
		t.Errorf("SentBits = %d, want %d", bits, 16+8*len(want))
	}
}

func TestOptionValidation(t *testing.T) {
	two := []Point{{0, 0}, {10, 0}}
	tests := []struct {
		name string
		pts  []Point
		opts []Option
	}{
		{"flocking without sync", square(), []Option{WithFlocking(1, 0)}},
		{"levels async", two, []Option{WithLevels(4)}},
		{"levels with forced async protocol", two, []Option{WithSynchronous(), WithLevels(4), WithProtocol(ProtoAsync2)}},
		{"bounded base 1", square(), []Option{WithBoundedSlices(1)}},
		{"bounded with sync", square(), []Option{WithSynchronous(), WithBoundedSlices(2)}},
		{"bounded with forced protocol", square(), []Option{WithBoundedSlices(2), WithProtocol(ProtoAsyncN)}},
		{"alternating drift on n robots", square(), []Option{WithAlternatingDrift()}},
		{"alternating drift sync", two, []Option{WithSynchronous(), WithAlternatingDrift()}},
		{"starver victim out of range", square(), []Option{WithStarver(9, 4)}},
		{"non-positive sigma", two, []Option{WithSigma(-1)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSwarm(tt.pts, tt.opts...); err == nil {
				t.Error("invalid option combination accepted")
			}
		})
	}
}

func TestSwarmNLevels(t *testing.T) {
	msg := bytes.Repeat([]byte{0x69}, 8)
	stepsFor := func(levels int) int {
		opts := []Option{WithSynchronous(), WithSeed(31)}
		if levels > 0 {
			opts = append(opts, WithLevels(levels))
		}
		s, err := NewSwarm(square(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Send(0, 2, msg); err != nil {
			t.Fatal(err)
		}
		got, steps, err := s.RunUntilDelivered(1, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[0].Payload, msg) {
			t.Fatalf("levels=%d payload corrupted", levels)
		}
		return steps
	}
	plain := stepsFor(0)
	leveled := stepsFor(16)
	if ratio := float64(plain) / float64(leveled); ratio < 3.5 || ratio > 4.5 {
		t.Errorf("n-robot 16-level speedup = %.2f, want about 4", ratio)
	}
}

func TestSwarmActivationProbability(t *testing.T) {
	stepsFor := func(p float64) int {
		opts := []Option{WithSeed(33)}
		if p > 0 {
			opts = append(opts, WithActivationProbability(p))
		}
		s, err := NewSwarm(square(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Send(0, 1, []byte{1}); err != nil {
			t.Fatal(err)
		}
		_, steps, err := s.RunUntilDelivered(1, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return steps
	}
	fast := stepsFor(0.9)
	slow := stepsFor(0.1)
	if slow <= fast {
		t.Errorf("sparse activation (%d steps) not slower than dense (%d steps)", slow, fast)
	}
}
