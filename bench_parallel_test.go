package waggle_test

import (
	"runtime"
	"testing"

	"waggle/internal/sweep"
)

// BenchmarkSweepParallel measures the harness half of the tentpole:
// the same batch of independent seeded experiments executed serially
// versus over the worker pool. It lives in the external test package
// because internal/sweep imports waggle.
func BenchmarkSweepParallel(b *testing.B) {
	batch := []string{"silence", "drift", "msgsize", "onetoall"}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		name := "serial"
		if workers > 1 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sweep.RunAll(batch, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
