// Election: the paper's headline — movement signalling enables
// CLASSICAL distributed algorithms among robots that physically cannot
// talk. Six anonymous robots elect a leader (flood-max over the
// movement channel) and then aggregate their battery levels so the
// leader can plan the mission.
//
// This example uses the internal building blocks directly to show how
// an application layer sits on top of the protocols; the other examples
// use the public waggle facade.
//
//	go run ./examples/election
package main

import (
	"fmt"
	"log"
	"math/rand"

	"waggle/internal/dist"
	"waggle/internal/geom"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(16))
	n := 6
	positions := make([]geom.Point, 0, n)
	for len(positions) < n {
		p := geom.Pt(rng.Float64()*80, rng.Float64()*80)
		ok := true
		for _, q := range positions {
			if p.Dist(q) < 10 {
				ok = false
				break
			}
		}
		if ok {
			positions = append(positions, p)
		}
	}

	// Phase 1: leader election. Ranks are private random draws — the
	// robots are anonymous, so symmetry is broken by communication, not
	// by geometry (compare Figure 3).
	elections := make([]*dist.LeaderElection, n)
	nodes := make([]dist.Node, n)
	for i := range nodes {
		elections[i] = &dist.LeaderElection{Rank: rng.Uint64() % 1000}
		nodes[i] = elections[i]
		fmt.Printf("robot %d draws rank %d\n", i, elections[i].Rank)
	}
	runner, err := dist.NewSwarmRunner(positions, true /* synchronous */, 1, nodes)
	if err != nil {
		return err
	}
	steps, err := runner.Run(1_000_000)
	if err != nil {
		return err
	}
	leader := elections[0].Leader()
	fmt.Printf("=> all %d robots elected robot %d in %d time instants\n\n", n, leader, steps)

	// Phase 2: the swarm aggregates battery levels for the leader.
	batteries := make([]*dist.Aggregation, n)
	for i := range nodes {
		batteries[i] = &dist.Aggregation{Value: 20 + rng.Float64()*80}
		nodes[i] = batteries[i]
		fmt.Printf("robot %d battery: %.1f%%\n", i, batteries[i].Value)
	}
	runner, err = dist.NewSwarmRunner(positions, true, 2, nodes)
	if err != nil {
		return err
	}
	steps, err = runner.Run(1_000_000)
	if err != nil {
		return err
	}
	agg := batteries[leader]
	fmt.Printf("=> leader %d learned in %d instants: mean %.1f%%, min %.1f%%, max %.1f%%\n",
		leader, steps, agg.Mean(), agg.Min(), agg.Max())
	return nil
}
