// Formation: the end-to-end payoff of giving stigmergic robots a
// language. A disordered anonymous swarm (chirality only) first TALKS —
// electing a leader and receiving pattern slots purely through movement
// signals — and then MOVES, each robot walking to its assigned slot on
// a circle around the swarm's centre. Circle formation is a flagship
// problem of the deterministic-robots literature the paper cites
// (Défago–Konagaya, Dieudonné–Labbani-Igbida–Petit); with explicit
// communication it reduces to three rounds of messages.
//
//	go run ./examples/formation
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"waggle/internal/dist"
	"waggle/internal/geom"
	"waggle/internal/render"
	"waggle/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(77))
	const n = 8
	positions := make([]geom.Point, 0, n)
	for len(positions) < n {
		p := geom.Pt(rng.Float64()*90, rng.Float64()*90)
		ok := true
		for _, q := range positions {
			if p.Dist(q) < 12 {
				ok = false
				break
			}
		}
		if ok {
			positions = append(positions, p)
		}
	}
	fmt.Println("before: a disordered swarm")
	fmt.Print(plot(positions))

	// Phase 1: chat. Elect a leader and hand out circle slots, all by
	// movement signalling.
	nodes := make([]dist.Node, n)
	forms := make([]*dist.FormationNode, n)
	for i := range nodes {
		forms[i] = &dist.FormationNode{Rank: rng.Uint64()}
		nodes[i] = forms[i]
	}
	runner, err := dist.NewSwarmRunner(positions, true /* synchronous */, 1, nodes)
	if err != nil {
		return err
	}
	steps, err := runner.Run(1_000_000)
	if err != nil {
		return err
	}
	leader := forms[0].Leader()
	fmt.Printf("\nphase 1 (%d instants of movement-signalling): leader %d elected, slots assigned\n\n",
		steps, leader)

	// Phase 2: walk. Each robot heads for its slot on a circle around
	// the swarm centroid. This is plain motion; the conversation is
	// over.
	center := geom.Centroid(positions)
	const radius = 35.0
	targets := make([]geom.Point, n)
	for i, f := range forms {
		slot, ok := f.Slot()
		if !ok {
			return fmt.Errorf("robot %d has no slot", i)
		}
		theta := float64(slot) / float64(n) * 2 * math.Pi
		targets[i] = geom.Point{
			X: center.X + radius*math.Cos(theta),
			Y: center.Y + radius*math.Sin(theta),
		}
	}
	robots := make([]*sim.Robot, n)
	for i := range robots {
		robots[i] = &sim.Robot{
			Frame:    geom.WorldFrame(),
			Sigma:    2,
			Behavior: gotoBehavior(positions[i], targets[i], 2),
		}
	}
	world, err := sim.NewWorld(sim.Config{Positions: positions, Robots: robots})
	if err != nil {
		return err
	}
	walked, _, err := world.Run(sim.Synchronous{}, 10_000, func(w *sim.World) bool {
		for i := 0; i < n; i++ {
			if w.Position(i).Dist(targets[i]) > 1e-6 {
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	fmt.Printf("phase 2 (%d instants of walking): circle formed\n", walked)
	fmt.Print(plot(world.Positions()))
	return nil
}

// gotoBehavior walks straight from start to a world target in steps of
// at most sigma, dead-reckoning its own position (frames in this
// example are world-aligned, so the local destination is simply the
// remaining displacement).
func gotoBehavior(start, target geom.Point, sigma float64) sim.Behavior {
	cur := start
	return sim.BehaviorFunc(func(sim.View) geom.Point {
		next := target
		if d := target.Sub(cur); d.Len() > sigma {
			next = cur.Add(d.Unit().Scale(sigma))
		}
		delta := next.Sub(cur)
		cur = next
		return geom.Point{X: delta.X, Y: delta.Y}
	})
}

func plot(pts []geom.Point) string {
	canvas := render.CanvasFor(pts, 70, 22, 8)
	for i, p := range pts {
		canvas.Plot(p, '*')
		canvas.Label(p.Add(geom.V(1.5, 0)), fmt.Sprintf("%d", i))
	}
	return canvas.String()
}
