// Surveillance: the paper's motivating scenario — a swarm on an
// intelligence mission in a zone where wireless communication is
// jammed. Twelve anonymous robots, no compasses, no identifiers, only a
// shared handedness (chirality): the weakest capability set the paper
// solves (§4.2 with §3.4's SEC-relative naming). A scout relays a
// sighting to the sink robot hop by hop; every other robot overhears
// the traffic, so the report survives even if a relay is later lost.
//
//	go run ./examples/surveillance
package main

import (
	"fmt"
	"log"
	"math/rand"

	"waggle"
)

const (
	scout = 0
	relay = 5
	sink  = 11
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A scattered swarm; positions as a patrol would leave them.
	rng := rand.New(rand.NewSource(2009))
	positions := make([]waggle.Point, 0, 12)
	for len(positions) < 12 {
		p := waggle.Point{X: rng.Float64() * 120, Y: rng.Float64() * 80}
		ok := true
		for _, q := range positions {
			dx, dy := p.X-q.X, p.Y-q.Y
			if dx*dx+dy*dy < 100 {
				ok = false
				break
			}
		}
		if ok {
			positions = append(positions, p)
		}
	}

	// Fully asynchronous: the robots act on their own schedules.
	swarm, err := waggle.NewSwarm(positions, waggle.WithSeed(7))
	if err != nil {
		return err
	}
	fmt.Printf("swarm of %d anonymous robots, protocol %v (chirality only)\n",
		swarm.N(), swarm.Protocol())

	// Hop 1: the scout reports to a relay.
	report := []byte("convoy at grid 27")
	if err := swarm.Send(scout, relay, report); err != nil {
		return err
	}
	msgs, steps1, err := swarm.RunUntilDelivered(1, 5_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("hop 1: robot %d -> robot %d in %d instants: %q\n",
		msgs[0].From, msgs[0].To, steps1, msgs[0].Payload)

	// Hop 2: the relay forwards to the sink.
	if err := swarm.Send(relay, sink, msgs[0].Payload); err != nil {
		return err
	}
	msgs, steps2, err := swarm.RunUntilDelivered(1, 5_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("hop 2: robot %d -> robot %d in %d instants: %q\n",
		msgs[0].From, msgs[0].To, steps2, msgs[0].Payload)

	// Redundancy (§3.4): every robot decoded both hops.
	witnesses := 0
	for i := 0; i < swarm.N(); i++ {
		if i == relay || i == sink {
			continue
		}
		for _, m := range swarm.Overheard(i) {
			if string(m.Payload) == string(report) {
				witnesses++
				break
			}
		}
	}
	fmt.Printf("%d bystander robots overheard the report and can re-send it\n", witnesses)
	return nil
}
