// Backup: the paper's fault-tolerance application (§1): robots carry
// wireless devices, but devices fail and environments jam. Movement
// signalling is the channel of last resort — slow, but it cannot be
// jammed and needs no hardware beyond locomotion and vision.
//
//	go run ./examples/backup
package main

import (
	"fmt"
	"log"

	"waggle"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	positions := []waggle.Point{
		{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 30, Y: 30}, {X: 0, Y: 30}, {X: 15, Y: 60},
	}
	swarm, err := waggle.NewSwarm(positions, waggle.WithSynchronous(), waggle.WithSeed(3))
	if err != nil {
		return err
	}
	radio := waggle.NewRadio(swarm.N(), 1)
	messenger, err := waggle.NewBackupMessenger(radio, swarm)
	if err != nil {
		return err
	}

	// Phase 1: the radio works; messages are instantaneous.
	if err := messenger.Send(0, 4, []byte("status: all clear")); err != nil {
		return err
	}
	for _, m := range radio.Receive(4) {
		fmt.Printf("radio:    robot %d -> robot %d: %q\n", m.From, m.To, m.Payload)
	}

	// Phase 2: robot 0's transmitter dies mid-mission.
	radio.Break(0)
	fmt.Println("-- robot 0's transmitter fails --")
	if err := messenger.Send(0, 4, []byte("status: radio down, switching to movement")); err != nil {
		return err
	}
	msgs, steps, err := swarm.RunUntilDelivered(1, 1_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("movement: robot %d -> robot %d in %d instants: %q\n",
		msgs[0].From, msgs[0].To, steps, msgs[0].Payload)

	viaRadio, viaMovement := messenger.Stats()
	sent, delivered, lost := radio.Stats()
	fmt.Printf("channels: %d via radio, %d via movement\n", viaRadio, viaMovement)
	fmt.Printf("radio:    %d sent, %d delivered, %d lost\n", sent, delivered, lost)
	return nil
}
