// Flocking: the §5 remark — a swarm can flock in an agreed direction
// while chatting, because every robot superimposes the agreed flock
// displacement on its communication movements and relative positions
// are untouched.
//
//	go run ./examples/flocking
package main

import (
	"fmt"
	"log"

	"waggle"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	positions := []waggle.Point{
		{X: 0, Y: 0}, {X: 25, Y: 5}, {X: 10, Y: 25}, {X: 35, Y: 30}, {X: 50, Y: 10},
	}
	swarm, err := waggle.NewSwarm(positions,
		waggle.WithSynchronous(),
		waggle.WithFlocking(0.4, 0.3), // agreed world drift per instant
		waggle.WithSeed(5),
		waggle.WithTrace(),
	)
	if err != nil {
		return err
	}
	fmt.Printf("swarm of %d robots flocking north-east at (0.4, 0.3) per instant\n", swarm.N())

	if err := swarm.Send(0, 4, []byte("keep formation")); err != nil {
		return err
	}
	if err := swarm.Send(3, 1, []byte("copy that")); err != nil {
		return err
	}
	msgs, steps, err := swarm.RunUntilDelivered(2, 1_000_000)
	if err != nil {
		return err
	}
	for _, m := range msgs {
		fmt.Printf("robot %d -> robot %d: %q\n", m.From, m.To, m.Payload)
	}

	fmt.Printf("after %d instants the swarm has moved:\n", steps)
	final := swarm.Positions()
	for i, p := range final {
		fmt.Printf("  robot %d: (%.1f, %.1f) -> (%.1f, %.1f)\n",
			i, positions[i].X, positions[i].Y, p.X, p.Y)
	}
	return nil
}
