// Quickstart: two deaf and dumb robots exchange greetings purely by
// moving (the §3.1 protocol, Figure 1). Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"waggle"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two robots ten metres apart. They observe each other's positions
	// but have no radio, no speech, no lights — only movement.
	swarm, err := waggle.NewSwarm(
		[]waggle.Point{{X: 0, Y: 0}, {X: 10, Y: 0}},
		waggle.WithSynchronous(),
		waggle.WithSeed(1),
		waggle.WithTrace(),
	)
	if err != nil {
		return err
	}
	fmt.Printf("protocol: %v\n", swarm.Protocol())

	// Full duplex: both robots transmit at once.
	if err := swarm.Send(0, 1, []byte("HELLO")); err != nil {
		return err
	}
	if err := swarm.Send(1, 0, []byte("WORLD")); err != nil {
		return err
	}

	msgs, steps, err := swarm.RunUntilDelivered(2, 100_000)
	if err != nil {
		return err
	}
	for _, m := range msgs {
		fmt.Printf("robot %d -> robot %d: %q\n", m.From, m.To, m.Payload)
	}
	fmt.Printf("delivered in %d time instants\n", steps)
	fmt.Printf("robot 0 covered %.2f distance units, robot 1 %.2f\n",
		swarm.TotalDistance(0), swarm.TotalDistance(1))
	return nil
}
