package waggle

import (
	"io"
	"net/http"

	"waggle/internal/obs"
)

// TraceEvent is one structured trace event recorded by an instrumented
// swarm: an activation, a move, a send, a delivery, a retry, a fault
// injection. T is the simulated instant (never wall-clock); Peer is -1
// when the event has no counterpart robot.
type TraceEvent = obs.Event

// EventKind identifies what a TraceEvent records. Kinds marshal to and
// from stable strings in JSON ("activate", "retry", "jam", ...).
type EventKind = obs.EventKind

// Trace event kinds.
const (
	EvActivate    = obs.EvActivate
	EvMove        = obs.EvMove
	EvSend        = obs.EvSend
	EvDeliver     = obs.EvDeliver
	EvRetry       = obs.EvRetry
	EvFailover    = obs.EvFailover
	EvFailback    = obs.EvFailback
	EvImplicitAck = obs.EvImplicitAck
	EvExpired     = obs.EvExpired
	EvCrash       = obs.EvCrash
	EvDisplace    = obs.EvDisplace
	EvNoise       = obs.EvNoise
	EvDropSight   = obs.EvDropSight
	EvMoveError   = obs.EvMoveError
	EvOutageStart = obs.EvOutageStart
	EvOutageEnd   = obs.EvOutageEnd
	EvJam         = obs.EvJam
)

// MetricsSnapshot is a schema-stable point-in-time copy of an
// observer's metrics (and optionally its trace), the JSON form written
// by WriteSnapshot and served at /metrics.json.
type MetricsSnapshot = obs.Snapshot

// Observer collects metrics and trace events from the swarm it is
// attached to (WithObserver). It is allocation-conscious — counters are
// single atomics, the trace is a bounded ring — and safe under both the
// sequential and the parallel engine. All methods are nil-safe: a nil
// *Observer observes nothing and reads as empty.
//
// Determinism: every metric that is a pure function of the seeded
// execution is identical for identical seeds under every EngineMode;
// wall-clock-derived metrics (step latency) are marked volatile and
// excluded from DeterministicSnapshot. Trace events are normalized by
// (T, Robot, Kind, Peer, Val) order.
type Observer struct {
	inner *obs.Observer
}

// NewObserver creates an observer with the default trace capacity
// (8192 events; the oldest instants are evicted beyond that).
func NewObserver() *Observer { return NewObserverWithCapacity(obs.DefaultRingCapacity) }

// NewObserverWithCapacity creates an observer whose trace ring holds up
// to traceCapacity events (DefaultRingCapacity when zero or negative).
func NewObserverWithCapacity(traceCapacity int) *Observer {
	return &Observer{inner: obs.New(traceCapacity)}
}

// WriteMetrics writes every metric in the Prometheus text exposition
// format (version 0.0.4), the same payload served at /metrics.
func (o *Observer) WriteMetrics(w io.Writer) error {
	if o == nil {
		return nil
	}
	return o.inner.Registry().WriteMetrics(w)
}

// Snapshot copies every metric, with the normalized trace included when
// withTrace is set.
func (o *Observer) Snapshot(withTrace bool) MetricsSnapshot {
	if o == nil {
		return (*obs.Observer)(nil).Snapshot(false)
	}
	return o.inner.Snapshot(withTrace)
}

// DeterministicSnapshot copies every engine-independent metric plus the
// normalized trace: identical seeds and options yield identical
// deterministic snapshots under every EngineMode.
func (o *Observer) DeterministicSnapshot() MetricsSnapshot {
	if o == nil {
		return (*obs.Observer)(nil).Snapshot(false)
	}
	return o.inner.DeterministicSnapshot()
}

// WriteSnapshot writes the JSON snapshot (schema "waggle-obs/v1"),
// trace included when withTrace is set.
func (o *Observer) WriteSnapshot(w io.Writer, withTrace bool) error {
	return o.Snapshot(withTrace).WriteJSON(w)
}

// TraceEvents returns the recorded trace in its normalized order.
func (o *Observer) TraceEvents() []TraceEvent {
	if o == nil {
		return nil
	}
	return o.inner.TraceEvents()
}

// TraceDropped returns how many events the bounded trace ring has
// evicted.
func (o *Observer) TraceDropped() int64 {
	if o == nil {
		return 0
	}
	return o.inner.TraceDropped()
}

// Handler returns the live introspection endpoint: /metrics (Prometheus
// text), /metrics.json, /trace, /snapshot, and /debug/pprof/. Serve it
// with net/http while the swarm runs; reads never block the simulation
// for long.
func (o *Observer) Handler() http.Handler {
	if o == nil {
		return http.NotFoundHandler()
	}
	return obs.Handler(o.inner)
}

// WithObserver attaches an observer to the swarm being built: the
// simulator, the movement network, the fault injector, and the fault
// radio (if any) all report into it. A nil observer means no
// instrumentation — the default, with near-zero overhead.
func WithObserver(o *Observer) Option {
	return optionFunc(func(opts *options) { opts.observer = o })
}

// Observe returns the observer the swarm was built with, or nil.
func (s *Swarm) Observe() *Observer { return s.opts.observer }
