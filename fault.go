package waggle

import (
	"fmt"

	"waggle/internal/fault"
	"waggle/internal/geom"
)

// FaultKind enumerates the fault families a swarm-level FaultPlan can
// schedule. The movement faults apply to the swarm itself; the radio
// faults drive the Radio passed with WithFaultRadio, so one plan can
// break both channels of a BackupMessenger at scripted instants.
type FaultKind int

// Fault kinds for FaultEvent. The zero value is invalid, so a forgotten
// Kind fails NewSwarm instead of silently picking a family.
const (
	// FaultCrash stops the robot being activated during [At, Until);
	// Until 0 means it never recovers.
	FaultCrash FaultKind = iota + 1
	// FaultDisplace teleports the robot by (DX, DY) world units at
	// instant At — the transient fault of the §5 stabilization sketch.
	FaultDisplace
	// FaultObserveNoise adds Gaussian noise with standard deviation Mag
	// (world units) to every sighting by the affected observers during
	// [At, Until).
	FaultObserveNoise
	// FaultDropSight makes every sighting by the affected observers
	// vanish with probability Mag during [At, Until).
	FaultDropSight
	// FaultMoveError scales every applied move of the affected robots
	// by a factor drawn uniformly from [Min, Max] during [At, Until) —
	// truncation below 1, overshoot above it.
	FaultMoveError
	// FaultRadioOutage breaks the affected robots' radio transmitters
	// during [At, Until) and repairs them after; requires WithFaultRadio.
	FaultRadioOutage
	// FaultJamRamp sweeps the radio jamming probability linearly from
	// Min to Max over [At, Until), restoring 0 after; requires
	// WithFaultRadio.
	FaultJamRamp
)

// FaultEvent is one scheduled fault of a FaultPlan.
type FaultEvent struct {
	// Kind selects the fault family.
	Kind FaultKind
	// At is the first affected instant; Until ends the window
	// (exclusive) for the windowed kinds.
	At, Until int
	// Robot is the affected robot, or -1 for every robot.
	Robot int
	// Mag is the noise standard deviation (FaultObserveNoise) or drop
	// probability (FaultDropSight).
	Mag float64
	// Min and Max bound the move scale factor (FaultMoveError).
	Min, Max float64
	// DX and DY are the displacement (FaultDisplace), world units.
	DX, DY float64
}

// FaultPlan is a declarative, deterministic schedule of fault events
// applied to a swarm's execution. The randomness of noise, dropped
// sightings and movement errors is keyed by the swarm seed (WithSeed):
// equal seeds and plans reproduce byte-identical executions, under the
// sequential and parallel engines alike.
type FaultPlan struct {
	Events []FaultEvent
}

// WithFaultPlan attaches a fault-injection plan to the swarm. Protocols
// do not expect faults; combine with WithStabilization to measure
// recovery (EXPERIMENTS.md chaos table), or run plain protocols under a
// plan to measure how they break.
func WithFaultPlan(plan FaultPlan) Option {
	return optionFunc(func(o *options) { o.faultPlan = &plan })
}

// WithFaultRadio couples a radio to the swarm's fault plan: the plan's
// FaultRadioOutage and FaultJamRamp events drive this radio's Break,
// Repair and SetJamming at their window edges. The injector owns the
// radio state the plan names; manual control outside the plan's windows
// is left alone.
func WithFaultRadio(r *Radio) Option {
	return optionFunc(func(o *options) { o.faultRadio = r })
}

// WithStabilization wraps the synchronous n-robot protocol in the §5
// epoch-based self-stabilization: every epoch instants of the global
// clock, each robot discards and recomputes all protocol state, so any
// transient fault is flushed within one epoch. In-flight transmissions
// at an epoch boundary are lost; the epoch must comfortably exceed the
// longest transmission (two instants per frame bit). Requires
// WithSynchronous and the SyncN protocol.
func WithStabilization(epoch int) Option {
	return optionFunc(func(o *options) { o.stabilizeEpoch = epoch })
}

// buildFaultPlan converts the public plan into the internal fault
// vocabulary, validating it against the swarm size.
func buildFaultPlan(plan FaultPlan, n int) (fault.Plan, error) {
	events := make([]fault.Event, len(plan.Events))
	for i, e := range plan.Events {
		var kind fault.Kind
		switch e.Kind {
		case FaultCrash:
			kind = fault.Crash
		case FaultDisplace:
			kind = fault.Displace
		case FaultObserveNoise:
			kind = fault.ObserveNoise
		case FaultDropSight:
			kind = fault.DropSight
		case FaultMoveError:
			kind = fault.MoveError
		case FaultRadioOutage:
			kind = fault.RadioOutage
		case FaultJamRamp:
			kind = fault.JamRamp
		default:
			return fault.Plan{}, fmt.Errorf("waggle: fault event %d has unknown kind %d", i, int(e.Kind))
		}
		events[i] = fault.Event{
			Kind:  kind,
			At:    e.At,
			Until: e.Until,
			Robot: e.Robot,
			Mag:   e.Mag,
			Min:   e.Min,
			Max:   e.Max,
			Delta: geom.V(e.DX, e.DY),
		}
	}
	p := fault.Plan{Events: events}
	if err := p.Validate(n); err != nil {
		return fault.Plan{}, fmt.Errorf("waggle: %w", err)
	}
	return p, nil
}
