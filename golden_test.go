package waggle

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestGoldenRun pins a full end-to-end execution: same options, same
// seed must yield bit-identical deliveries, step counts, and final
// positions across releases. If an intentional protocol change alters
// the trajectory, update the constants — consciously.
func TestGoldenRun(t *testing.T) {
	s, err := NewSwarm(
		[]Point{{X: 0, Y: 0}, {X: 24, Y: 6}, {X: 10, Y: 28}, {X: 30, Y: 30}},
		WithSeed(12345),
		WithTrace(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(0, 3, []byte("GOLD")); err != nil {
		t.Fatal(err)
	}
	msgs, steps, err := s.RunUntilDelivered(1, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msgs[0].Payload, []byte("GOLD")) {
		t.Fatalf("payload %q", msgs[0].Payload)
	}
	const wantSteps = 1226
	if steps != wantSteps {
		t.Errorf("steps = %d, want %d (golden; update only for intentional protocol changes)", steps, wantSteps)
	}
	// Re-run: must reproduce exactly.
	s2, err := NewSwarm(
		[]Point{{X: 0, Y: 0}, {X: 24, Y: 6}, {X: 10, Y: 28}, {X: 30, Y: 30}},
		WithSeed(12345),
		WithTrace(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Send(0, 3, []byte("GOLD")); err != nil {
		t.Fatal(err)
	}
	_, steps2, err := s2.RunUntilDelivered(1, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if steps2 != steps {
		t.Errorf("re-run diverged: %d vs %d steps", steps2, steps)
	}
	p1, p2 := s.Positions(), s2.Positions()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Errorf("robot %d final position diverged: %v vs %v", i, p1[i], p2[i])
		}
	}
}

// TestRandomizedEndToEnd is the facade-level property test: random
// payloads, random swarm shapes, random capability sets, random
// schedulers — every message must arrive intact with correct metadata.
func TestRandomizedEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			n := 2 + rng.Intn(5)
			positions := make([]Point, 0, n)
			for len(positions) < n {
				p := Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
				ok := true
				for _, q := range positions {
					dx, dy := p.X-q.X, p.Y-q.Y
					if dx*dx+dy*dy < 100 {
						ok = false
						break
					}
				}
				if ok {
					positions = append(positions, p)
				}
			}
			opts := []Option{WithSeed(rng.Int63())}
			if rng.Intn(2) == 0 {
				opts = append(opts, WithSynchronous())
			}
			switch rng.Intn(3) {
			case 0:
				opts = append(opts, WithIdentifiedRobots())
			case 1:
				opts = append(opts, WithSenseOfDirection())
			}
			if rng.Intn(2) == 0 {
				opts = append(opts, WithLeftHandedFrames())
			}
			s, err := NewSwarm(positions, opts...)
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, 1+rng.Intn(5))
			rng.Read(payload)
			from := rng.Intn(n)
			to := rng.Intn(n - 1)
			if to >= from {
				to++
			}
			if err := s.Send(from, to, payload); err != nil {
				t.Fatal(err)
			}
			msgs, _, err := s.RunUntilDelivered(1, 10_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if msgs[0].From != from || msgs[0].To != to || !bytes.Equal(msgs[0].Payload, payload) {
				t.Errorf("trial %d: got %+v, want %d->%d %v", trial, msgs[0], from, to, payload)
			}
		})
	}
}

// TestGoldenEngineParity is the acceptance gate for the step-engine
// modes: the same seed and scheduler must produce a byte-for-byte
// identical execution — step count, every recorded move, every final
// position — whether the moves are computed sequentially, over the
// worker pool, or under EngineAuto's size-dependent dispatch.
func TestGoldenEngineParity(t *testing.T) {
	positions := []Point{{X: 0, Y: 0}, {X: 24, Y: 6}, {X: 10, Y: 28}, {X: 30, Y: 30}, {X: -20, Y: 14}, {X: 8, Y: -22}}
	runWith := func(mode EngineMode) (*Swarm, int) {
		t.Helper()
		s, err := NewSwarm(positions, WithSeed(4242), WithTrace(), WithEngine(mode))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Send(0, 3, []byte("PARITY")); err != nil {
			t.Fatal(err)
		}
		if err := s.Send(2, 5, []byte("CHECK")); err != nil {
			t.Fatal(err)
		}
		msgs, steps, err := s.RunUntilDelivered(2, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 2 {
			t.Fatalf("%v: %d messages", mode, len(msgs))
		}
		return s, steps
	}
	seq, seqSteps := runWith(EngineSequential)
	var seqTrace bytes.Buffer
	if err := seq.WriteTraceCSV(&seqTrace); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []EngineMode{EngineParallel, EngineAuto} {
		other, otherSteps := runWith(mode)
		if seqSteps != otherSteps {
			t.Fatalf("step counts diverged: sequential %d, %v %d", seqSteps, mode, otherSteps)
		}
		p1, p2 := seq.Positions(), other.Positions()
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Errorf("%v: robot %d final position diverged: %v vs %v", mode, i, p1[i], p2[i])
			}
		}
		var otherTrace bytes.Buffer
		if err := other.WriteTraceCSV(&otherTrace); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seqTrace.Bytes(), otherTrace.Bytes()) {
			t.Errorf("recorded traces differ between sequential and %v engines", mode)
		}
	}
}
