package waggle

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"waggle/internal/ckpt"
	"waggle/internal/geom"
	"waggle/internal/obs"
	"waggle/internal/wire"
)

// StreamWriter records a swarm's execution as an append-only
// waggle-stream/v1 file (see internal/wire): per-step movement deltas,
// activation sets, deliveries, and fault events, punctuated by
// self-describing keyframes so a reader can join mid-stream. It taps
// the step loop directly on the stepping goroutine, so the stream is
// byte-identical under both engines, and it batches fsyncs, so the
// per-step overhead stays a small fraction of the step itself.
//
// A stream is not part of the run's identity: attaching one is not
// recorded in the input log and a checkpoint-restored swarm replays
// without re-streaming. Close flushes stragglers (teleports and
// deliveries collected after the last step), writes a final keyframe
// carrying the live trace digest (when the swarm runs WithTrace), and
// detaches the taps.
type StreamWriter struct {
	s       *Swarm
	w       *wire.StreamWriter
	path    string
	cadence int

	// Stepping-goroutine state: moves staged for the current instant
	// and the cursor into the network's collected-delivery log.
	pendMoves []wire.StreamMove
	sinceKey  int
	cursor    int

	// pendEvents buffers fault events between end-of-step marks; the
	// parallel engine records them from worker goroutines, hence the
	// mutex (the only concurrent path into the writer).
	mu         sync.Mutex
	pendEvents []obs.Event

	err    error
	closed bool
}

// NewStreamWriter attaches a movement stream writing to path. An
// existing file at path is appended to (its torn tail, if any,
// truncated) — that is how an evicted-and-resumed session's stream
// keeps growing — and in every case the attach writes a fresh keyframe
// at the current instant, the self-contained entry point the format
// requires after a (re)open. A swarm carries at most one stream.
func (s *Swarm) NewStreamWriter(path string) (*StreamWriter, error) {
	if s.stream != nil {
		return nil, errors.New("waggle: swarm already has an attached stream")
	}
	w, err := wire.OpenStream(path, s.n, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("waggle: stream: %w", err)
	}
	sw := &StreamWriter{
		s:       s,
		w:       w,
		path:    path,
		cadence: w.Cadence(),
		cursor:  s.net.CollectedCount(),
	}
	if err := w.AppendKeyframe(s.Time(), sw.worldXY(), sw.cursor, ""); err != nil {
		w.Close()
		return nil, fmt.Errorf("waggle: stream: %w", err)
	}
	s.net.World().SetStreamSink(streamTap{sw})
	if s.opts.observer != nil {
		s.opts.observer.inner.SetEventSink(sw.noteEvent)
	}
	s.stream = sw
	return sw, nil
}

// Stream returns the attached stream writer, or nil.
func (s *Swarm) Stream() *StreamWriter { return s.stream }

// Path returns the stream's file path.
func (sw *StreamWriter) Path() string { return sw.path }

// Offset reports the byte offset past the last appended record — the
// resume offset a live spectator starts tailing from.
func (sw *StreamWriter) Offset() int64 { return sw.w.Offset() }

// Err reports the first write error, if any. The taps are silent (the
// step loop cannot fail on stream I/O); errors stick and surface here
// and from Close.
func (sw *StreamWriter) Err() error { return sw.err }

// Sync forces the batched fsync.
func (sw *StreamWriter) Sync() error {
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Sync()
}

// Close flushes pending stragglers as an out-of-step record, writes a
// final keyframe carrying the live trace digest (WithTrace swarms; ""
// otherwise), detaches the taps, and closes the file. Idempotent; the
// swarm may attach a new stream afterwards.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return sw.err
	}
	sw.closed = true
	s := sw.s
	s.net.World().SetStreamSink(nil)
	if s.opts.observer != nil {
		s.opts.observer.inner.SetEventSink(nil)
	}
	s.stream = nil
	if sw.err == nil {
		evs := sw.drainEvents()
		del := sw.drainDeliveries()
		if len(sw.pendMoves) > 0 || len(del) > 0 || len(evs) > 0 {
			if err := sw.w.AppendEvents(s.Time(), sw.pendMoves, del, evs); err != nil {
				sw.err = err
			}
			sw.pendMoves = nil
		}
	}
	if sw.err == nil {
		digest, err := s.traceDigest()
		if err != nil {
			sw.err = err
		} else if err := sw.w.AppendKeyframe(s.Time(), sw.worldXY(), sw.cursor, digest); err != nil {
			sw.err = err
		}
	}
	if err := sw.w.Close(); err != nil && sw.err == nil {
		sw.err = err
	}
	return sw.err
}

// worldXY snapshots the world's positions for a keyframe. Keyframes
// deliberately carry the world's positions rather than the writer's
// delta mirror: a replay verifies each keyframe against its replayed
// state, so any divergence between the two fails loudly instead of
// propagating.
func (sw *StreamWriter) worldXY() []ckpt.XY {
	pts := sw.s.net.World().Positions()
	out := make([]ckpt.XY, len(pts))
	for i, p := range pts {
		out[i] = ckpt.XY{X: p.X, Y: p.Y}
	}
	return out
}

// streamTap adapts the writer to sim.StreamSink without exporting the
// step-loop callbacks on the public type.
type streamTap struct{ sw *StreamWriter }

func (t streamTap) RecordMove(tm, robot int, to geom.Point) {
	sw := t.sw
	if sw.err != nil {
		return
	}
	sw.pendMoves = append(sw.pendMoves, wire.StreamMove{Robot: robot, To: ckpt.XY{X: to.X, Y: to.Y}})
}

func (t streamTap) EndStep(tm int, active []int) {
	sw := t.sw
	if sw.err != nil {
		sw.pendMoves = sw.pendMoves[:0]
		return
	}
	evs := sw.drainEvents()
	del := sw.drainDeliveries()
	if err := sw.w.AppendStep(tm, sw.pendMoves, active, del, evs); err != nil {
		sw.err = err
		return
	}
	sw.pendMoves = sw.pendMoves[:0]
	sw.sinceKey++
	if sw.sinceKey >= sw.cadence {
		sw.sinceKey = 0
		// The post-step keyframe is stamped t+1: it describes the state
		// a joining reader starts from, i.e. before the next instant.
		if err := sw.w.AppendKeyframe(tm+1, sw.worldXY(), sw.cursor, ""); err != nil {
			sw.err = err
		}
	}
}

// noteEvent is the obs tap: it buffers the fault-family events (crash,
// noise, displacement, truncation, radio outage/jam, ...) for the
// step's record. Must be concurrency-safe — the parallel engine
// records perturbations from worker goroutines.
func (sw *StreamWriter) noteEvent(e obs.Event) {
	if e.Kind < obs.EvCrash || e.Kind > obs.EvJam {
		return
	}
	sw.mu.Lock()
	sw.pendEvents = append(sw.pendEvents, e)
	sw.mu.Unlock()
}

// drainEvents takes the buffered fault events in canonical trace order
// (engine-independent, like the obs snapshot normalization).
func (sw *StreamWriter) drainEvents() []wire.StreamEvent {
	sw.mu.Lock()
	evs := sw.pendEvents
	sw.pendEvents = nil
	sw.mu.Unlock()
	if len(evs) == 0 {
		return nil
	}
	obs.SortEvents(evs)
	out := make([]wire.StreamEvent, len(evs))
	for i, e := range evs {
		out[i] = wire.StreamEvent{Kind: byte(e.Kind), T: e.T, Robot: e.Robot, Peer: e.Peer, Val: e.Val}
	}
	return out
}

// drainDeliveries advances the cursor over the network's
// already-collected deliveries. It deliberately does not sweep the
// endpoints (core.Network.CollectedSince): a sweep inside the step
// hook would harvest the running step's receptions early and mis-stamp
// their trace events, so the stream sees each delivery one instant
// after the reception — deterministically — and Close picks up the
// stragglers.
func (sw *StreamWriter) drainDeliveries() []ckpt.MessageState {
	recs := sw.s.net.CollectedSince(sw.cursor)
	if len(recs) == 0 {
		return nil
	}
	sw.cursor += len(recs)
	out := make([]ckpt.MessageState, len(recs))
	for i, r := range recs {
		out[i] = ckpt.MessageState{From: r.From, To: r.To, Payload: r.Payload}
	}
	return out
}

// ---------------------------------------------------------------------
// Replay.

// StreamReplay summarizes a replayed stream file.
type StreamReplay struct {
	// Records and Steps count decoded records and step records; Torn
	// reports a crash-cut trailing record (dropped, never fatal).
	Records, Steps int
	Torn           bool
	// FromStart reports that the stream's first keyframe is the
	// initial configuration (instant 0) — only then can Digest be
	// compared against a live WriteTraceCSV digest.
	FromStart bool
	// FinalTime and Positions are the replayed end state; Delivered
	// counts delivered messages across the whole stream.
	FinalTime int
	Positions []Point
	Delivered int
	// Digest is the hex SHA-256 of the movement CSV reconstructed from
	// the stream ("" unless FromStart) — directly comparable to the
	// live trace digest a checkpoint stores. StreamDigest is the
	// digest embedded in the stream's closing keyframe ("" when the
	// stream was cut before Close or the swarm ran without WithTrace).
	Digest       string
	StreamDigest string
}

// ReplayStream decodes a waggle-stream/v1 file and reconstructs the
// run it recorded: positions are rolled forward move by move, each
// keyframe is verified against the replayed state (divergence is an
// error, not a shrug), and the movement CSV the live run would have
// produced is re-derived and hashed. A torn trailing record — the
// signature of kill -9 mid-append — is dropped and reported.
func ReplayStream(path string) (*StreamReplay, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("waggle: replay stream: %w", err)
	}
	recs, torn, err := wire.DecodeStream(data)
	if err != nil {
		return nil, fmt.Errorf("waggle: replay stream %s: %w", path, err)
	}
	rep := &StreamReplay{Torn: torn}
	h := sha256.New()
	io.WriteString(h, "time,robot,x,y\n")
	row := func(t, robot int, p Point) {
		fmt.Fprintf(h, "%d,%d,%g,%g\n", t, robot, p.X, p.Y)
	}
	var pos []Point
	seenKey := false
	for _, rec := range recs {
		rep.Records++
		switch rec.Kind {
		case wire.StreamHeader:
			// Validated by the decoder; nothing to replay.
		case wire.StreamKeyframe:
			if !seenKey {
				seenKey = true
				pos = make([]Point, len(rec.Positions))
				for i, p := range rec.Positions {
					pos[i] = Point{X: p.X, Y: p.Y}
				}
				rep.Delivered = rec.Delivered
				if rec.T == 0 {
					rep.FromStart = true
					for i, p := range pos {
						row(-1, i, p)
					}
				}
			} else {
				for i, p := range rec.Positions {
					if pos[i] != (Point{X: p.X, Y: p.Y}) {
						return nil, fmt.Errorf("waggle: replay stream %s: keyframe at offset %d diverges from replayed state (robot %d: %v vs %v)",
							path, rec.Offset, i, p, pos[i])
					}
				}
				if rec.Delivered != rep.Delivered {
					return nil, fmt.Errorf("waggle: replay stream %s: keyframe at offset %d says %d deliveries, replay counted %d",
						path, rec.Offset, rec.Delivered, rep.Delivered)
				}
			}
			if rec.Digest != "" {
				rep.StreamDigest = rec.Digest
			}
			if rec.T > rep.FinalTime {
				rep.FinalTime = rec.T
			}
		case wire.StreamStep:
			for _, m := range rec.Moves {
				pos[m.Robot] = Point{X: m.To.X, Y: m.To.Y}
			}
			for i, p := range pos {
				row(rec.T, i, p)
			}
			rep.Steps++
			rep.Delivered += len(rec.Deliveries)
			if rec.T+1 > rep.FinalTime {
				rep.FinalTime = rec.T + 1
			}
		case wire.StreamEvents:
			for _, m := range rec.Moves {
				pos[m.Robot] = Point{X: m.To.X, Y: m.To.Y}
			}
			rep.Delivered += len(rec.Deliveries)
		}
	}
	rep.Positions = pos
	if rep.FromStart {
		rep.Digest = hex.EncodeToString(h.Sum(nil))
	}
	return rep, nil
}
