module waggle

go 1.22
