package waggle

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"waggle/internal/ckpt"
	"waggle/internal/wire"
)

// streamWorkload drives a deterministic messaging run (the checkpoint
// tests' phase-1/phase-2 sequence) against a streamed swarm.
func streamWorkload(t *testing.T, s *Swarm) {
	t.Helper()
	ckptPhase1(t, s)
	ckptPhase2(t, s)
}

func liveTraceDigest(t *testing.T, s *Swarm) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteTraceCSV(&buf); err != nil {
		t.Fatalf("trace: %v", err)
	}
	return ckpt.Digest(buf.Bytes())
}

// TestStreamReplayDigest is the tentpole acceptance criterion: a
// streamed run replayed from the stream file is byte-identical (trace
// digest equality) to the live run, under both engines — and the two
// engines' stream files are themselves byte-identical.
func TestStreamReplayDigest(t *testing.T) {
	files := map[EngineMode][]byte{}
	for _, engine := range []EngineMode{EngineSequential, EngineParallel} {
		path := filepath.Join(t.TempDir(), "run.wstream")
		s, err := NewSwarm(ckptTestPositions(), append(ckptTestOptions(engine), WithStream(path))...)
		if err != nil {
			t.Fatalf("engine %v: NewSwarm: %v", engine, err)
		}
		if s.Stream() == nil {
			t.Fatalf("engine %v: WithStream did not attach a stream", engine)
		}
		streamWorkload(t, s)
		live := liveTraceDigest(t, s)
		if err := s.Stream().Close(); err != nil {
			t.Fatalf("engine %v: close stream: %v", engine, err)
		}
		rep, err := ReplayStream(path)
		if err != nil {
			t.Fatalf("engine %v: replay: %v", engine, err)
		}
		if !rep.FromStart {
			t.Fatalf("engine %v: stream does not start at instant 0", engine)
		}
		if rep.Torn {
			t.Fatalf("engine %v: clean stream reported torn", engine)
		}
		if rep.Digest != live {
			t.Fatalf("engine %v: replay digest %s != live digest %s", engine, rep.Digest, live)
		}
		if rep.StreamDigest != live {
			t.Fatalf("engine %v: embedded digest %s != live digest %s", engine, rep.StreamDigest, live)
		}
		if rep.FinalTime != s.Time() {
			t.Fatalf("engine %v: replay ends at t=%d, swarm at t=%d", engine, rep.FinalTime, s.Time())
		}
		for i, p := range rep.Positions {
			if p != s.Positions()[i] {
				t.Fatalf("engine %v: replayed position %d = %v, live %v", engine, i, p, s.Positions()[i])
			}
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read stream: %v", err)
		}
		files[engine] = data
	}
	if !bytes.Equal(files[EngineSequential], files[EngineParallel]) {
		t.Fatalf("stream files differ between engines: %d vs %d bytes",
			len(files[EngineSequential]), len(files[EngineParallel]))
	}
}

// TestStreamMidJoin pins the spectator entry point: joining at the
// latest keyframe (offset -1) and rolling forward converges to the
// live end state without reading the stream's prefix.
func TestStreamMidJoin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wstream")
	s, err := NewSwarm(ckptTestPositions(), append(ckptTestOptions(EngineAuto), WithStream(path))...)
	if err != nil {
		t.Fatalf("NewSwarm: %v", err)
	}
	streamWorkload(t, s)
	if err := s.Stream().Close(); err != nil {
		t.Fatalf("close stream: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	recs, next, torn, err := wire.TailStream(data, -1, 0)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	if torn {
		t.Fatal("clean stream reported torn")
	}
	if next != int64(len(data)) {
		t.Fatalf("tail ended at %d of %d bytes", next, len(data))
	}
	if len(recs) == 0 || recs[0].Kind != wire.StreamKeyframe {
		t.Fatalf("join does not start at a keyframe: %+v", recs)
	}
	pos := make([]Point, len(recs[0].Positions))
	for i, p := range recs[0].Positions {
		pos[i] = Point{X: p.X, Y: p.Y}
	}
	for _, rec := range recs[1:] {
		for _, m := range rec.Moves {
			pos[m.Robot] = Point{X: m.To.X, Y: m.To.Y}
		}
	}
	for i, p := range s.Positions() {
		if pos[i] != p {
			t.Fatalf("mid-join position %d = %v, live %v", i, pos[i], p)
		}
	}
}

// TestStreamTornTail cuts the file at every byte boundary of its tail
// and verifies the replay drops exactly the torn record: never an
// error, never fewer records than the clean prefix holds.
func TestStreamTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wstream")
	s, err := NewSwarm(ckptTestPositions(), append(ckptTestOptions(EngineAuto), WithStream(path))...)
	if err != nil {
		t.Fatalf("NewSwarm: %v", err)
	}
	ckptPhase1(t, s)
	if err := s.Stream().Close(); err != nil {
		t.Fatalf("close stream: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	full, torn, err := wire.DecodeStream(data)
	if err != nil || torn {
		t.Fatalf("clean decode: torn=%v err=%v", torn, err)
	}
	// Cut anywhere inside the last two records: exactly the complete
	// prefix must survive, torn reported iff the cut lands mid-record.
	boundaries := map[int64]bool{0: true}
	for _, rec := range full {
		boundaries[rec.Next] = true
	}
	for cut := full[len(full)-2].Offset; cut < int64(len(data)); cut++ {
		cutPath := filepath.Join(t.TempDir(), "cut.wstream")
		if err := os.WriteFile(cutPath, data[:cut], 0o644); err != nil {
			t.Fatalf("write cut: %v", err)
		}
		rep, err := ReplayStream(cutPath)
		if err != nil {
			t.Fatalf("cut at %d: replay: %v", cut, err)
		}
		wantRecs := 0
		for _, rec := range full {
			if rec.Next <= cut {
				wantRecs++
			}
		}
		if rep.Records != wantRecs {
			t.Fatalf("cut at %d: %d records, want %d", cut, rep.Records, wantRecs)
		}
		if want := !boundaries[cut]; rep.Torn != want {
			t.Fatalf("cut at %d: torn=%v, want %v", cut, rep.Torn, want)
		}
	}
}

// TestStreamResumeAppend pins the evict/resume path: a stream created
// at instant 0, closed at a checkpoint, and reopened by the restored
// swarm keeps growing the same file — and the full file still replays
// to the restored run's live digest.
func TestStreamResumeAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wstream")
	s, err := NewSwarm(ckptTestPositions(), append(ckptTestOptions(EngineAuto), WithStream(path))...)
	if err != nil {
		t.Fatalf("NewSwarm: %v", err)
	}
	ckptPhase1(t, s)
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := s.Stream().Close(); err != nil {
		t.Fatalf("close stream: %v", err)
	}
	resumed, err := NewSwarm(ckptTestPositions(),
		append(ckptTestOptions(EngineAuto), WithRestore(ck), WithStream(path))...)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	ckptPhase2(t, resumed)
	live := liveTraceDigest(t, resumed)
	if err := resumed.Stream().Close(); err != nil {
		t.Fatalf("close resumed stream: %v", err)
	}
	rep, err := ReplayStream(path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !rep.FromStart {
		t.Fatal("resumed stream lost its instant-0 keyframe")
	}
	if rep.Digest != live {
		t.Fatalf("replay digest %s != live digest %s", rep.Digest, live)
	}
	if rep.StreamDigest != live {
		t.Fatalf("embedded digest %s != live digest %s", rep.StreamDigest, live)
	}
}

// TestStreamFaultEvents verifies fault-family trace events ride the
// stream (via the obs tap), with the crash events of a seeded plan
// visible to a replay.
func TestStreamFaultEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wstream")
	plan := FaultPlan{Events: []FaultEvent{
		{Kind: FaultCrash, At: 3, Robot: 1},
	}}
	s, err := NewSwarm(ckptTestPositions(),
		WithSeed(12345), WithTrace(), WithObserver(NewObserver()),
		WithSynchronous(), WithFaultPlan(plan), WithStream(path))
	if err != nil {
		t.Fatalf("NewSwarm: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := s.Stream().Close(); err != nil {
		t.Fatalf("close stream: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	recs, _, err := wire.DecodeStream(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	events := 0
	for _, rec := range recs {
		events += len(rec.Events)
	}
	if events == 0 {
		t.Fatal("crash plan produced no fault events in the stream")
	}
}
