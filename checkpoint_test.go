package waggle

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// ckptFingerprint is everything the acceptance criteria require to be
// byte-identical between an uninterrupted run and a resumed one.
type ckptFingerprint struct {
	Time      int
	Positions []Point
	Delivered []Message
	Trace     string
	Obs       string
}

func fingerprint(t *testing.T, s *Swarm) ckptFingerprint {
	t.Helper()
	var trace bytes.Buffer
	if err := s.WriteTraceCSV(&trace); err != nil {
		t.Fatalf("trace: %v", err)
	}
	var obsJSON bytes.Buffer
	if o := s.Observe(); o != nil {
		if err := o.DeterministicSnapshot().WriteJSON(&obsJSON); err != nil {
			t.Fatalf("obs: %v", err)
		}
	}
	return ckptFingerprint{
		Time:      s.Time(),
		Positions: s.Positions(),
		Delivered: s.Delivered(),
		Trace:     trace.String(),
		Obs:       obsJSON.String(),
	}
}

func ckptTestPositions() []Point {
	return []Point{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
}

func ckptTestOptions(engine EngineMode) []Option {
	return []Option{
		WithSeed(12345),
		WithTrace(),
		WithObserver(NewObserver()),
		WithEngine(engine),
	}
}

// phase1 drives a swarm partway through a messaging workload; phase2
// finishes it. Both runs (interrupted and not) execute exactly this
// sequence.
func ckptPhase1(t *testing.T, s *Swarm) {
	t.Helper()
	if err := s.Send(0, 1, []byte("HELLO")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, _, err := s.RunUntilDelivered(1, 40_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := s.Send(2, 3, []byte("Q")); err != nil {
		t.Fatalf("send: %v", err)
	}
	for i := 0; i < 25; i++ {
		if err := s.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func ckptPhase2(t *testing.T, s *Swarm) {
	t.Helper()
	if _, _, err := s.RunUntilQuiet(60_000); err != nil {
		t.Fatalf("quiet: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

// TestCheckpointResumeByteIdentical is the tentpole acceptance
// property: a run resumed from a mid-run checkpoint — serialized and
// deserialized through the wire format — is byte-identical (positions,
// trace, obs snapshot, deliveries) to the uninterrupted run, under
// both engines.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		engine EngineMode
	}{
		{"sequential", EngineSequential},
		{"parallel", EngineParallel},
	} {
		t.Run(tc.name, func(t *testing.T) {
			full, err := NewSwarm(ckptTestPositions(), ckptTestOptions(tc.engine)...)
			if err != nil {
				t.Fatalf("full swarm: %v", err)
			}
			ckptPhase1(t, full)
			ckptPhase2(t, full)
			want := fingerprint(t, full)

			cut, err := NewSwarm(ckptTestPositions(), ckptTestOptions(tc.engine)...)
			if err != nil {
				t.Fatalf("cut swarm: %v", err)
			}
			ckptPhase1(t, cut)
			ck, err := cut.Checkpoint()
			if err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			var wire bytes.Buffer
			if err := WriteCheckpoint(&wire, ck); err != nil {
				t.Fatalf("encode: %v", err)
			}
			loaded, err := ReadCheckpoint(&wire)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			res, err := Restore(loaded)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if res.Swarm.Time() != cut.Time() {
				t.Fatalf("restored at t=%d, checkpointed at t=%d", res.Swarm.Time(), cut.Time())
			}
			ckptPhase2(t, res.Swarm)
			got := fingerprint(t, res.Swarm)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("resumed run diverged from uninterrupted run:\n got t=%d\nwant t=%d", got.Time, want.Time)
			}
		})
	}
}

// TestCheckpointResumeCrossEngine pins RestoreWithEngine: a checkpoint
// saved under one engine resumes byte-identically under the other.
func TestCheckpointResumeCrossEngine(t *testing.T) {
	full, err := NewSwarm(ckptTestPositions(), ckptTestOptions(EngineParallel)...)
	if err != nil {
		t.Fatalf("full swarm: %v", err)
	}
	ckptPhase1(t, full)
	ckptPhase2(t, full)
	want := fingerprint(t, full)

	cut, err := NewSwarm(ckptTestPositions(), ckptTestOptions(EngineSequential)...)
	if err != nil {
		t.Fatalf("cut swarm: %v", err)
	}
	ckptPhase1(t, cut)
	ck, err := cut.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	res, err := Restore(ck, RestoreWithEngine(EngineParallel))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	ckptPhase2(t, res.Swarm)
	got := fingerprint(t, res.Swarm)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cross-engine resume diverged (t=%d vs %d)", got.Time, want.Time)
	}
}

// TestCheckpointWithRestoreOption pins the NewSwarm(WithRestore(ck))
// path, including its config verification.
func TestCheckpointWithRestoreOption(t *testing.T) {
	cut, err := NewSwarm(ckptTestPositions(), ckptTestOptions(EngineSequential)...)
	if err != nil {
		t.Fatalf("swarm: %v", err)
	}
	ckptPhase1(t, cut)
	ck, err := cut.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// Mismatched options must be rejected, not silently replayed.
	if _, err := NewSwarm(ckptTestPositions(), WithSeed(999), WithRestore(ck)); !errors.Is(err, ErrRestoreConfig) {
		t.Fatalf("mismatched restore: got %v, want ErrRestoreConfig", err)
	}

	// Matching options (different engine is explicitly allowed) resume.
	resumed, err := NewSwarm(ckptTestPositions(), append(ckptTestOptions(EngineParallel), WithRestore(ck))...)
	if err != nil {
		t.Fatalf("WithRestore: %v", err)
	}
	ckptPhase2(t, resumed)

	full, err := NewSwarm(ckptTestPositions(), ckptTestOptions(EngineSequential)...)
	if err != nil {
		t.Fatalf("full swarm: %v", err)
	}
	ckptPhase1(t, full)
	ckptPhase2(t, full)
	if got, want := fingerprint(t, resumed), fingerprint(t, full); !reflect.DeepEqual(got, want) {
		t.Fatalf("WithRestore resume diverged (t=%d vs %d)", got.Time, want.Time)
	}
}

// faulted builds the full fault-tolerance stack: a jam-ramped radio
// with a scripted outage and crash window, a self-healing messenger,
// tracing and observability. The checkpoint is taken mid-plan, inside
// both the outage and the ramp.
func ckptFaultPlan() FaultPlan {
	return FaultPlan{Events: []FaultEvent{
		{Kind: FaultCrash, At: 10, Until: 30, Robot: 1},
		{Kind: FaultRadioOutage, At: 5, Until: 90, Robot: 0},
		{Kind: FaultJamRamp, At: 0, Until: 200, Min: 0.05, Max: 0.4, Robot: -1},
	}}
}

type faultedStack struct {
	swarm *Swarm
	radio *Radio
	bm    *BackupMessenger
}

func newFaultedStack(t *testing.T, engine EngineMode) faultedStack {
	t.Helper()
	radio := NewRadio(4, 99)
	swarm, err := NewSwarm(ckptTestPositions(),
		WithSynchronous(),
		WithSeed(7),
		WithTrace(),
		WithObserver(NewObserver()),
		WithEngine(engine),
		WithFaultPlan(ckptFaultPlan()),
		WithFaultRadio(radio),
	)
	if err != nil {
		t.Fatalf("swarm: %v", err)
	}
	bm, err := NewBackupMessenger(radio, swarm)
	if err != nil {
		t.Fatalf("messenger: %v", err)
	}
	if err := bm.SetPolicy(DefaultMessengerPolicy()); err != nil {
		t.Fatalf("policy: %v", err)
	}
	return faultedStack{swarm: swarm, radio: radio, bm: bm}
}

func faultedPhase1(t *testing.T, st faultedStack) {
	t.Helper()
	// Robot 0's radio breaks at t=5; this traffic exercises retries and
	// the movement failover while the jam ramp loses other sends.
	if err := st.bm.Send(0, 2, []byte("VIA-BACKUP")); err != nil {
		t.Fatalf("bm send: %v", err)
	}
	for i := 0; i < 40; i++ {
		if err := st.bm.Step(); err != nil {
			t.Fatalf("bm step %d: %v", i, err)
		}
	}
	if err := st.radio.Send(2, 3, []byte("DIRECT")); err != nil && !errors.Is(err, ErrRadioFailed) {
		t.Fatalf("radio send: %v", err)
	}
	st.radio.Receive(3)
}

func faultedPhase2(t *testing.T, st faultedStack) {
	t.Helper()
	if err := st.bm.Send(3, 1, []byte("LATE")); err != nil {
		t.Fatalf("bm send: %v", err)
	}
	if _, err := st.bm.RunUntilSettled(120_000); err != nil {
		t.Fatalf("settle: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := st.bm.Step(); err != nil {
			t.Fatalf("bm step %d: %v", i, err)
		}
	}
}

func faultedFingerprint(t *testing.T, st faultedStack) ckptFingerprint {
	fp := fingerprint(t, st.swarm)
	sent, delivered, lost := st.radio.Stats()
	fp.Obs += fmt.Sprintf("|radio:%d,%d,%d", sent, delivered, lost)
	vr, vm := st.bm.Stats()
	fp.Obs += fmt.Sprintf("|msgr:%d,%d", vr, vm)
	return fp
}

// TestCheckpointResumeUnderFaultPlan is the hard acceptance case: the
// checkpoint is taken mid-plan — inside an outage window, on a jam
// ramp, with messenger failover state live — and the resumed run must
// still be byte-identical under both engines.
func TestCheckpointResumeUnderFaultPlan(t *testing.T) {
	for _, tc := range []struct {
		name   string
		engine EngineMode
	}{
		{"sequential", EngineSequential},
		{"parallel", EngineParallel},
	} {
		t.Run(tc.name, func(t *testing.T) {
			full := newFaultedStack(t, tc.engine)
			faultedPhase1(t, full)
			faultedPhase2(t, full)
			want := faultedFingerprint(t, full)

			cut := newFaultedStack(t, tc.engine)
			faultedPhase1(t, cut)
			ck, err := cut.swarm.Checkpoint()
			if err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			var wire bytes.Buffer
			if err := WriteCheckpoint(&wire, ck); err != nil {
				t.Fatalf("encode: %v", err)
			}
			loaded, err := ReadCheckpoint(&wire)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			res, err := Restore(loaded)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if res.Radio == nil || res.Messenger == nil {
				t.Fatalf("restore dropped the radio or messenger")
			}
			faultedPhase2(t, faultedStack{swarm: res.Swarm, radio: res.Radio, bm: res.Messenger})
			got := faultedFingerprint(t, faultedStack{swarm: res.Swarm, radio: res.Radio, bm: res.Messenger})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("faulted resume diverged (t=%d vs %d)", got.Time, want.Time)
			}
		})
	}
}

// TestCheckpointRestoreMismatch pins the integrity check: a checkpoint
// whose stored snapshot disagrees with its replayed inputs must fail
// with ErrRestoreMismatch instead of resuming a different run.
func TestCheckpointRestoreMismatch(t *testing.T) {
	s, err := NewSwarm(ckptTestPositions(), ckptTestOptions(EngineSequential)...)
	if err != nil {
		t.Fatalf("swarm: %v", err)
	}
	ckptPhase1(t, s)
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	ck.State.Positions[0].X += 1e-9
	if _, err := Restore(ck); !errors.Is(err, ErrRestoreMismatch) {
		t.Fatalf("tampered snapshot: got %v, want ErrRestoreMismatch", err)
	}
}

// TestCheckpointRecheckpoint pins that a restored swarm can itself be
// checkpointed: the input log is re-seated from genesis.
func TestCheckpointRecheckpoint(t *testing.T) {
	s, err := NewSwarm(ckptTestPositions(), ckptTestOptions(EngineSequential)...)
	if err != nil {
		t.Fatalf("swarm: %v", err)
	}
	ckptPhase1(t, s)
	ck1, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	res, err := Restore(ck1)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := res.Swarm.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	ck2, err := res.Swarm.Checkpoint()
	if err != nil {
		t.Fatalf("second checkpoint: %v", err)
	}
	res2, err := Restore(ck2)
	if err != nil {
		t.Fatalf("second restore: %v", err)
	}
	if res2.Swarm.Time() != res.Swarm.Time() {
		t.Fatalf("re-restore at t=%d, want %d", res2.Swarm.Time(), res.Swarm.Time())
	}
}
