package waggle

import (
	"math"
	"math/rand"

	"waggle/internal/geom"
	"waggle/internal/sim"
)

// SchedulerKind selects the activation scheduler for asynchronous
// swarms.
type SchedulerKind int

// Scheduler kinds for WithScheduler.
const (
	// SchedulerRandomFair activates each robot with probability 1/2 per
	// instant under a fairness bound (the default asynchronous
	// scheduler, modelling the paper's uniform fair scheduler).
	SchedulerRandomFair SchedulerKind = iota
	// SchedulerRoundRobin activates exactly one robot per instant.
	SchedulerRoundRobin
	// SchedulerStarver adversarially delays one robot as long as
	// fairness allows.
	SchedulerStarver
)

// EngineMode selects how the simulator computes the moves of an
// instant's active robots. Every mode produces byte-for-byte identical
// executions — destinations are pure functions of the shared
// configuration snapshot and each robot's private state, applied in
// activation order after a barrier — so the mode only changes
// wall-clock time.
type EngineMode int

// Engine modes for WithEngine.
const (
	// EngineAuto (the default) parallelises instants whose activation
	// set is large enough to amortise goroutine overhead on a
	// multi-core host, and stays sequential otherwise.
	EngineAuto EngineMode = iota
	// EngineSequential computes every move on the calling goroutine —
	// the right choice for small swarms.
	EngineSequential
	// EngineParallel always fans the per-robot observe–compute phase
	// out over a worker pool sized to GOMAXPROCS.
	EngineParallel
)

// options is the resolved configuration of a swarm.
type options struct {
	synchronous      bool
	identified       bool
	senseOfDirection bool
	leftHanded       bool
	protocol         Protocol
	levels           int
	boundedSlices    int
	alternateDrift   bool
	seed             int64
	sigma            float64
	trace            bool
	flock            *Point
	scheduler        SchedulerKind
	starveVictim     int
	starveDelay      int
	activationProb   float64
	engine           EngineMode
	stabilizeEpoch   int
	faultPlan        *FaultPlan
	faultRadio       *Radio
	observer         *Observer
	restore          *Checkpoint
	ckptCodec        CheckpointCodec
	streamPath       string
}

func defaultOptions() options {
	return options{
		sigma: math.MaxFloat64 / 4,
	}
}

// Option configures NewSwarm.
type Option interface {
	apply(*options)
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithSynchronous runs the swarm in the paper's synchronous setting:
// every robot is active at every instant (§3). The default is the
// asynchronous setting of §4.
func WithSynchronous() Option {
	return optionFunc(func(o *options) { o.synchronous = true })
}

// WithIdentifiedRobots gives the robots observable identifiers (§3.2).
// It implies addressing by ID; without it the robots are anonymous.
func WithIdentifiedRobots() Option {
	return optionFunc(func(o *options) { o.identified = true })
}

// WithSenseOfDirection aligns all local frames on a common North
// (compasses). Anonymous robots then use the §3.3 lexicographic naming;
// without it they fall back to the §3.4 SEC-relative naming.
func WithSenseOfDirection() Option {
	return optionFunc(func(o *options) { o.senseOfDirection = true })
}

// WithLeftHandedFrames flips every robot's frame to left-handed. The
// protocols only require that handedness is SHARED (chirality), so this
// must not change any behaviour — it exists to test exactly that.
func WithLeftHandedFrames() Option {
	return optionFunc(func(o *options) { o.leftHanded = true })
}

// WithProtocol forces a specific protocol instead of automatic
// selection.
func WithProtocol(p Protocol) Option {
	return optionFunc(func(o *options) { o.protocol = p })
}

// WithLevels enables the §3.1 amplitude-level coding for synchronous
// swarms (two robots, or its n-robot composition on signed excursion
// lengths): k must be a power of two; each excursion carries log2(k)
// bits.
func WithLevels(k int) Option {
	return optionFunc(func(o *options) { o.levels = k })
}

// WithBoundedSlices selects the §5 bounded-slice asynchronous protocol:
// only k+2 movement directions are used regardless of swarm size, with
// the recipient index transmitted as a base-k prelude.
func WithBoundedSlices(k int) Option {
	return optionFunc(func(o *options) { o.boundedSlices = k })
}

// WithAlternatingDrift selects the §4.1 bounded-separation variant of
// the two-robot asynchronous protocol.
func WithAlternatingDrift() Option {
	return optionFunc(func(o *options) { o.alternateDrift = true })
}

// WithSeed seeds the swarm's randomness (frames, schedulers). Swarms
// with equal seeds and options behave identically.
func WithSeed(seed int64) Option {
	return optionFunc(func(o *options) { o.seed = seed })
}

// WithSigma bounds every robot's per-activation movement to the given
// world-space distance (the paper's σ_r).
func WithSigma(sigma float64) Option {
	return optionFunc(func(o *options) { o.sigma = sigma })
}

// WithTrace records the full execution (positions, moves) enabling
// TotalDistance and MinPairwiseDistance.
func WithTrace() Option {
	return optionFunc(func(o *options) { o.trace = true })
}

// WithFlocking makes the whole swarm drift by the given world vector per
// instant while communicating (§5). Requires a synchronous swarm.
func WithFlocking(dx, dy float64) Option {
	return optionFunc(func(o *options) { o.flock = &Point{X: dx, Y: dy} })
}

// WithEngine selects the simulator's step engine (see EngineMode). The
// default EngineAuto adapts per instant; the choice never changes the
// computed execution, only how fast it is computed.
func WithEngine(mode EngineMode) Option {
	return optionFunc(func(o *options) { o.engine = mode })
}

// WithScheduler selects the asynchronous activation scheduler. The
// starver parameters are only used by SchedulerStarver.
func WithScheduler(kind SchedulerKind) Option {
	return optionFunc(func(o *options) { o.scheduler = kind })
}

// WithActivationProbability sets the per-robot activation probability
// of the random fair scheduler (default 0.5). Lower values model
// sparser, slower robots; fairness is still enforced by the scheduler's
// lag bound. Only meaningful for asynchronous swarms.
func WithActivationProbability(p float64) Option {
	return optionFunc(func(o *options) { o.activationProb = p })
}

// WithRestore resumes the swarm being built from a checkpoint instead
// of starting at instant 0. The other options (and positions) passed to
// NewSwarm must describe the same swarm the checkpoint was captured
// from — NewSwarm verifies this (engine mode excepted, since the engine
// never changes the computed execution) and fails with
// ErrRestoreConfig on any mismatch. Checkpoints that couple a
// BackupMessenger cannot be restored through NewSwarm (it has no way to
// return the messenger); use Restore for those.
func WithRestore(ck *Checkpoint) Option {
	return optionFunc(func(o *options) { o.restore = ck })
}

// WithCheckpointCodec selects the serialization format the swarm's
// checkpoint writers default to (CodecJSON, CodecBinary, CodecDelta).
// Like the engine mode this is a preference about how state is written,
// not part of the run's identity: it is not stored in checkpoints, and
// a swarm restored from any format may save in any other.
func WithCheckpointCodec(c CheckpointCodec) Option {
	return optionFunc(func(o *options) { o.ckptCodec = c })
}

// WithStream attaches a waggle-stream/v1 movement stream writing to
// path (see Swarm.NewStreamWriter) as soon as the swarm is built —
// for a restored swarm, after the replay completes, so restoring never
// re-streams history the file already holds. Like the checkpoint
// codec, streaming is a preference about how state is written, not
// part of the run's identity: it is not recorded in the input log.
func WithStream(path string) Option {
	return optionFunc(func(o *options) { o.streamPath = path })
}

// WithStarver selects the adversarial scheduler delaying the given robot
// for `delay` consecutive instants per cycle.
func WithStarver(victim, delay int) Option {
	return optionFunc(func(o *options) {
		o.scheduler = SchedulerStarver
		o.starveVictim = victim
		o.starveDelay = delay
	})
}

// buildFrames derives the per-robot private coordinate systems implied
// by the capability options.
func buildFrames(o options, n int) []geom.Frame {
	rng := rand.New(rand.NewSource(o.seed ^ 0x5747A661E))
	hand := geom.RightHanded
	if o.leftHanded {
		hand = geom.LeftHanded
	}
	frames := make([]geom.Frame, n)
	for i := range frames {
		theta := 0.0
		if !o.senseOfDirection && !o.identified {
			theta = rng.Float64() * 2 * math.Pi
		}
		scale := 0.5 + rng.Float64()*2
		frames[i] = geom.NewFrame(geom.Point{}, theta, scale, hand)
	}
	return frames
}

// buildEngine maps the facade's engine mode onto the simulator's.
func buildEngine(o options) sim.EngineMode {
	switch o.engine {
	case EngineSequential:
		return sim.EngineSequential
	case EngineParallel:
		return sim.EngineParallel
	default:
		return sim.EngineAuto
	}
}

// buildScheduler derives the activation scheduler implied by the
// options.
func buildScheduler(o options) sim.Scheduler {
	if o.synchronous {
		return sim.Synchronous{}
	}
	var inner sim.Scheduler
	switch o.scheduler {
	case SchedulerRoundRobin:
		inner = sim.RoundRobin{}
	case SchedulerStarver:
		delay := o.starveDelay
		if delay <= 0 {
			delay = 8
		}
		inner = sim.Starver{Victim: o.starveVictim, Delay: delay}
	default:
		rf := sim.NewRandomFair(o.seed)
		if o.activationProb > 0 {
			rf.P = o.activationProb
		}
		inner = rf
	}
	return sim.FirstSync{Inner: inner}
}
