package waggle_test

import (
	"fmt"

	"waggle"
)

// Broadcasting reaches every robot; bystanders can also be read through
// Overheard, because every robot decodes all movement traffic.
func ExampleSwarm_Broadcast() {
	swarm, err := waggle.NewSwarm(
		[]waggle.Point{{X: 0, Y: 0}, {X: 20, Y: 0}, {X: 20, Y: 20}, {X: 0, Y: 20}},
		waggle.WithSynchronous(),
		waggle.WithSeed(2),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := swarm.Broadcast(0, []byte("RALLY")); err != nil {
		fmt.Println(err)
		return
	}
	msgs, _, err := swarm.RunUntilQuiet(1_000_000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d robots received the broadcast\n", len(msgs))
	// Output: 3 robots received the broadcast
}

// The amplitude-level extension (§3.1) packs several bits into one
// movement when the robots know each other's maximum step.
func ExampleWithLevels() {
	run := func(levels int) int {
		swarm, err := waggle.NewSwarm(
			[]waggle.Point{{X: 0, Y: 0}, {X: 10, Y: 0}},
			waggle.WithSynchronous(),
			waggle.WithLevels(levels),
			waggle.WithSeed(1),
		)
		if err != nil {
			return -1
		}
		if err := swarm.Send(0, 1, []byte("12345678")); err != nil {
			return -1
		}
		_, steps, err := swarm.RunUntilDelivered(1, 100_000)
		if err != nil {
			return -1
		}
		return steps
	}
	fmt.Printf("binary coding: %d instants\n", run(2))
	fmt.Printf("16-level coding: %d instants\n", run(16))
	// Output:
	// binary coding: 160 instants
	// 16-level coding: 40 instants
}

// Movement signalling backs up a failed radio (§1).
func ExampleBackupMessenger() {
	swarm, err := waggle.NewSwarm(
		[]waggle.Point{{X: 0, Y: 0}, {X: 15, Y: 0}, {X: 7, Y: 14}},
		waggle.WithSynchronous(),
		waggle.WithSeed(3),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	radio := waggle.NewRadio(swarm.N(), 1)
	messenger, err := waggle.NewBackupMessenger(radio, swarm)
	if err != nil {
		fmt.Println(err)
		return
	}
	radio.Break(0) // robot 0's transmitter dies
	if err := messenger.Send(0, 2, []byte("SOS")); err != nil {
		fmt.Println(err)
		return
	}
	msgs, _, err := swarm.RunUntilDelivered(1, 1_000_000)
	if err != nil {
		fmt.Println(err)
		return
	}
	viaRadio, viaMovement := messenger.Stats()
	fmt.Printf("%q delivered (radio: %d, movement: %d)\n", msgs[0].Payload, viaRadio, viaMovement)
	// Output: "SOS" delivered (radio: 0, movement: 1)
}
