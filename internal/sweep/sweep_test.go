package sweep

import (
	"strconv"
	"strings"
	"testing"
)

func TestNamesAllRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tbl, err := Run(name)
			if err != nil {
				t.Fatal(err)
			}
			if len(strings.Split(strings.TrimSpace(tbl.CSV()), "\n")) < 2 {
				t.Error("empty table")
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestLevelsShape(t *testing.T) {
	tbl, err := Levels()
	if err != nil {
		t.Fatal(err)
	}
	// C3's claim: within each swarm variant, steps shrink monotonically
	// as the level count grows.
	rows := csvRows(tbl.CSV())
	prev := map[string]int{}
	for _, r := range rows {
		steps, err := strconv.Atoi(r[3])
		if err != nil {
			t.Fatal(err)
		}
		group := r[0]
		if last, seen := prev[group]; seen && steps >= last {
			t.Errorf("group %q: steps not decreasing: %v", group, rows)
		}
		prev[group] = steps
	}
}

func TestSilenceShape(t *testing.T) {
	tbl, err := Silence()
	if err != nil {
		t.Fatal(err)
	}
	rows := csvRows(tbl.CSV())
	if rows[0][3] != "true" {
		t.Errorf("synchronous protocol not silent: %v", rows[0])
	}
	if rows[1][3] != "false" {
		t.Errorf("asynchronous protocol reported silent: %v", rows[1])
	}
}

func TestDriftShape(t *testing.T) {
	tbl, err := Drift()
	if err != nil {
		t.Fatal(err)
	}
	rows := csvRows(tbl.CSV())
	away, _ := strconv.ParseFloat(rows[0][3], 64)
	alt, _ := strconv.ParseFloat(rows[1][3], 64)
	if away <= 3*alt {
		t.Errorf("drift-away separation %v not much larger than alternating %v", away, alt)
	}
}

func csvRows(csv string) [][]string {
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	var rows [][]string
	for _, l := range lines[1:] {
		rows = append(rows, strings.Split(l, ","))
	}
	return rows
}

// TestRunAllDeterministicOrder pins the concurrent harness contract:
// results come back in request order with every experiment populated,
// however the workers interleave.
func TestRunAllDeterministicOrder(t *testing.T) {
	names := []string{"silence", "drift", "msgsize"}
	results, err := RunAll(names, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(names) {
		t.Fatalf("%d results for %d names", len(results), len(names))
	}
	for i, r := range results {
		if r.Name != names[i] {
			t.Errorf("result %d is %q, want %q", i, r.Name, names[i])
		}
		if r.Err != nil {
			t.Errorf("%s: %v", r.Name, r.Err)
		}
		if r.Table == nil {
			t.Errorf("%s: nil table", r.Name)
		}
	}
	// The same batch run serially must produce identical tables —
	// experiments are self-contained and seed their own randomness.
	serial, err := RunAll(names, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if got, want := results[i].Table.CSV(), serial[i].Table.CSV(); got != want {
			t.Errorf("%s: parallel and serial tables differ:\n%s\nvs\n%s", names[i], got, want)
		}
	}
}

// TestRunAllFirstErrorPropagates: an unknown experiment anywhere in the
// batch surfaces as the returned error — the first failure in request
// order — while the other rows still complete.
func TestRunAllFirstErrorPropagates(t *testing.T) {
	results, err := RunAll([]string{"silence", "bogus-one", "bogus-two"}, 2)
	if err == nil {
		t.Fatal("batch with unknown experiment succeeded")
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Error("unknown experiments did not record errors")
	}
	if err != results[1].Err {
		t.Errorf("returned error %v is not the first failure %v", err, results[1].Err)
	}
	if results[0].Err != nil || results[0].Table == nil {
		t.Error("healthy experiment did not complete alongside failures")
	}
}

// TestRunAllManyConcurrentFailures interleaves several unknown
// experiments among healthy ones at a worker count that guarantees
// failures complete out of request order, and pins the full contract:
// the returned error is the earliest failure by request position (not
// by completion time), every failure is recorded in place, and every
// healthy experiment still runs to completion.
func TestRunAllManyConcurrentFailures(t *testing.T) {
	names := []string{"silence", "bogus-a", "drift", "bogus-b", "msgsize", "bogus-c"}
	results, err := RunAll(names, 4)
	if err == nil {
		t.Fatal("batch with unknown experiments succeeded")
	}
	if len(results) != len(names) {
		t.Fatalf("%d results for %d names", len(results), len(names))
	}
	for i, r := range results {
		if r.Name != names[i] {
			t.Errorf("result %d is %q, want %q", i, r.Name, names[i])
		}
	}
	for _, i := range []int{1, 3, 5} {
		if results[i].Err == nil {
			t.Errorf("unknown experiment %q did not record an error", names[i])
		}
	}
	for _, i := range []int{0, 2, 4} {
		if results[i].Err != nil || results[i].Table == nil {
			t.Errorf("healthy experiment %q did not complete alongside failures", names[i])
		}
	}
	if err != results[1].Err {
		t.Errorf("returned error %v is not the first failure in request order %v", err, results[1].Err)
	}
}

// TestRunAllEmpty: a zero-length batch is a no-op, not a hang.
func TestRunAllEmpty(t *testing.T) {
	results, err := RunAll(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("%d results for empty batch", len(results))
	}
}
