package sweep

import (
	"strconv"
	"strings"
	"testing"
)

func TestNamesAllRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tbl, err := Run(name)
			if err != nil {
				t.Fatal(err)
			}
			if len(strings.Split(strings.TrimSpace(tbl.CSV()), "\n")) < 2 {
				t.Error("empty table")
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestLevelsShape(t *testing.T) {
	tbl, err := Levels()
	if err != nil {
		t.Fatal(err)
	}
	// C3's claim: within each swarm variant, steps shrink monotonically
	// as the level count grows.
	rows := csvRows(tbl.CSV())
	prev := map[string]int{}
	for _, r := range rows {
		steps, err := strconv.Atoi(r[3])
		if err != nil {
			t.Fatal(err)
		}
		group := r[0]
		if last, seen := prev[group]; seen && steps >= last {
			t.Errorf("group %q: steps not decreasing: %v", group, rows)
		}
		prev[group] = steps
	}
}

func TestSilenceShape(t *testing.T) {
	tbl, err := Silence()
	if err != nil {
		t.Fatal(err)
	}
	rows := csvRows(tbl.CSV())
	if rows[0][3] != "true" {
		t.Errorf("synchronous protocol not silent: %v", rows[0])
	}
	if rows[1][3] != "false" {
		t.Errorf("asynchronous protocol reported silent: %v", rows[1])
	}
}

func TestDriftShape(t *testing.T) {
	tbl, err := Drift()
	if err != nil {
		t.Fatal(err)
	}
	rows := csvRows(tbl.CSV())
	away, _ := strconv.ParseFloat(rows[0][3], 64)
	alt, _ := strconv.ParseFloat(rows[1][3], 64)
	if away <= 3*alt {
		t.Errorf("drift-away separation %v not much larger than alternating %v", away, alt)
	}
}

func csvRows(csv string) [][]string {
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	var rows [][]string
	for _, l := range lines[1:] {
		rows = append(rows, strings.Split(l, ","))
	}
	return rows
}
