package sweep

import (
	"fmt"

	"waggle"
	"waggle/internal/render"
)

// OneToAll is experiment C11: the §1 remark that the protocols adapt to
// "efficiently" implement one-to-many/one-to-all. Broadcast as n-1
// unicasts pays n-1 frames; SendAll transmits once on the sender's own
// diameter (unused for unicast) and every robot, which decodes all
// movements anyway, delivers it.
func OneToAll() (*render.Table, error) {
	payload := []byte{0xA1}
	tbl := render.NewTable("n", "method", "excursions", "steps")
	for _, n := range []int{4, 8, 16} {
		for _, method := range []string{"broadcast (n-1 unicasts)", "sendall (single frame)"} {
			s, err := waggle.NewSwarm(positionsFor(n, int64(50+n)), waggle.WithSynchronous(), waggle.WithSeed(int64(n)))
			if err != nil {
				return nil, err
			}
			if method[0] == 'b' {
				err = s.Broadcast(0, payload)
			} else {
				err = s.SendAll(0, payload)
			}
			if err != nil {
				return nil, err
			}
			got, steps, err := s.RunUntilQuiet(stepBudget)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d: %w", method, n, err)
			}
			if len(got) != n-1 {
				return nil, fmt.Errorf("%s n=%d: %d of %d delivered", method, n, len(got), n-1)
			}
			tbl.AddRow(n, method, s.SentBits(0), steps)
		}
	}
	return tbl, nil
}
