package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"

	"waggle/internal/render"
)

// Result is one experiment's outcome from a RunAll batch.
type Result struct {
	Name  string
	Table *render.Table
	Err   error
}

// RunAll executes the named experiments concurrently over a pool of
// `workers` goroutines (0 or negative selects GOMAXPROCS) and returns
// their results in the order the names were given, regardless of
// completion order. Every experiment is self-contained — it builds its
// own swarms and seeds its own randomness — so the rows are
// independent; the returned error is the first failure in request
// order (later experiments still run to completion).
func RunAll(names []string, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	results := make([]Result, len(names))
	if len(names) == 0 {
		return results, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(names) {
					return
				}
				tbl, err := Run(names[k])
				results[k] = Result{Name: names[k], Table: tbl, Err: err}
			}
		}()
	}
	wg.Wait()
	for _, r := range results {
		if r.Err != nil {
			return results, r.Err
		}
	}
	return results, nil
}
