package sweep

import (
	"encoding/json"
	"fmt"
	"io"

	"waggle"
	"waggle/internal/render"
)

// Report schemas. Bump on any incompatible field change so CI diffs of
// -o outputs fail loudly instead of silently comparing different
// shapes.
const (
	SweepReportSchema = "waggle-sweep/v1"
	ChaosReportSchema = "waggle-chaos/v1"
)

// TableReport is one experiment's table in machine-readable form:
// the header and the already-formatted cells, exactly as the text and
// CSV renderings print them, so a JSON diff and a CSV diff disagree
// only in framing.
type TableReport struct {
	Name   string     `json:"name"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// NewTableReport captures a rendered table.
func NewTableReport(name string, tbl *render.Table) TableReport {
	return TableReport{Name: name, Header: tbl.Header(), Rows: tbl.Rows()}
}

// SweepReport is the JSON form of a waggle-sweep run (-o): the
// requested experiments' tables, in request order.
type SweepReport struct {
	Schema      string        `json:"schema"`
	Seed        int64         `json:"seed,omitempty"`
	Experiments []TableReport `json:"experiments"`
}

// NewSweepReport assembles a sweep report with the schema tag set.
func NewSweepReport() *SweepReport {
	return &SweepReport{Schema: SweepReportSchema, Experiments: []TableReport{}}
}

// Add appends one experiment's table.
func (r *SweepReport) Add(name string, tbl *render.Table) {
	r.Experiments = append(r.Experiments, NewTableReport(name, tbl))
}

// WriteJSON writes the report as indented JSON.
func (r *SweepReport) WriteJSON(w io.Writer) error { return writeJSON(w, r) }

// ChaosReport is the JSON form of a waggle-chaos run (-o): the
// per-scenario results, each with its observability rollup.
type ChaosReport struct {
	Schema  string        `json:"schema"`
	Seed    int64         `json:"seed"`
	Engine  string        `json:"engine"`
	Results []ChaosResult `json:"results"`
}

// WriteJSON writes the report as indented JSON.
func (r *ChaosReport) WriteJSON(w io.Writer) error { return writeJSON(w, r) }

// ChaosReportFor runs the named scenario (every scenario when name is
// empty) with observability rollups and assembles the report. When a
// non-nil observer is passed, the scenarios additionally accumulate
// into it — the hook behind waggle-chaos -listen.
func ChaosReportFor(name string, seed int64, engine waggle.EngineMode, o *waggle.Observer) (*ChaosReport, error) {
	report := &ChaosReport{
		Schema:  ChaosReportSchema,
		Seed:    seed,
		Engine:  engineName(engine),
		Results: []ChaosResult{},
	}
	for _, sc := range ChaosScenarios(seed) {
		if name != "" && sc.Name != name {
			continue
		}
		obsv := o
		if obsv == nil {
			// Fresh observer per scenario: rollups never bleed across
			// scenarios even though the diff logic would tolerate it.
			obsv = waggle.NewObserver()
		}
		r, err := RunChaosScenarioObserved(sc, engine, false, obsv)
		if err != nil {
			return nil, err
		}
		report.Results = append(report.Results, *r)
	}
	if name != "" && len(report.Results) == 0 {
		_, err := FindChaosScenario(name, seed)
		return nil, err
	}
	return report, nil
}

// ChaosResultTable formats results the way ChaosTable does, for the
// text/CSV output paths of runners that already hold results.
func ChaosResultTable(results []ChaosResult) *render.Table {
	tbl := render.NewTable("scenario", "family", "protocol", "sent", "delivered", "rate",
		"mean latency", "retries", "failovers", "failbacks", "implicit acks", "steps to recover")
	for _, r := range results {
		tbl.AddRow(r.Scenario, r.Family, r.Protocol, r.Sent, r.Delivered, r.Rate(),
			r.MeanLatency, r.Retries, r.Failovers, r.Failbacks, r.ImplicitAcks, r.StepsToRecover)
	}
	return tbl
}

func engineName(engine waggle.EngineMode) string {
	switch engine {
	case waggle.EngineSequential:
		return "sequential"
	case waggle.EngineParallel:
		return "parallel"
	default:
		return "auto"
	}
}

// EngineModeName is the stable report-schema name of an engine mode.
func EngineModeName(engine waggle.EngineMode) string { return engineName(engine) }

// ParseEngineMode parses the report-schema engine name ("" = auto) —
// the shared inverse of EngineModeName for CLIs and the queen wire
// protocol.
func ParseEngineMode(name string) (waggle.EngineMode, error) {
	switch name {
	case "auto", "":
		return waggle.EngineAuto, nil
	case "sequential":
		return waggle.EngineSequential, nil
	case "parallel":
		return waggle.EngineParallel, nil
	default:
		return 0, fmt.Errorf("sweep: unknown engine %q (auto|sequential|parallel)", name)
	}
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
