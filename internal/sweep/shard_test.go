package sweep

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"waggle"
)

// TestChaosShardResumeMatchesUninterrupted is the migration-safety
// property the queen's work-stealing rests on: a shard driven in
// chunks, snapshot mid-run, torn down, and resumed from the snapshot
// bytes alone (as a stolen shard is on another worker) reports the
// exact result — obs rollup included — of the uninterrupted observed
// run.
func TestChaosShardResumeMatchesUninterrupted(t *testing.T) {
	for _, name := range []string{"crash-sync", "radio-outage", "combined"} {
		for _, engine := range []waggle.EngineMode{waggle.EngineSequential, waggle.EngineParallel} {
			sc, err := FindChaosScenario(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			want, err := RunChaosScenarioObserved(sc, engine, false, nil)
			if err != nil {
				t.Fatal(err)
			}

			run, err := NewChaosShardRun(sc, engine)
			if err != nil {
				t.Fatal(err)
			}
			chain := filepath.Join(t.TempDir(), "shard.wck")
			// Drive two small chunks well inside the fault window (every
			// scenario is still mid-chaos at t=120), snapshotting after
			// each so the chain grows a delta link; only the last
			// snapshot's bytes survive the abandonment.
			var snap []byte
			const chunk = 60
			for _, until := range []int{chunk, 2 * chunk} {
				if err := run.DriveTo(until); err != nil {
					t.Fatal(err)
				}
				if run.Finished() {
					t.Fatalf("%s/%v: scenario finished at t=%d, before a mid-run snapshot", name, engine, until)
				}
				if snap, err = run.Snapshot(chain); err != nil {
					t.Fatal(err)
				}
			}

			resumed, err := ResumeChaosShardRun(sc, engine, snap)
			if err != nil {
				t.Fatal(err)
			}
			for !resumed.Finished() {
				if err := resumed.DriveTo(resumed.T() + chunk); err != nil {
					t.Fatal(err)
				}
			}
			got, err := resumed.Result()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%v: resumed shard result diverges\n got: %+v\nwant: %+v", name, engine, got, want)
			}
		}
	}
}

// TestChaosShardSnapshotRejectsMismatch: a snapshot resumes only into
// the scenario it was taken from.
func TestChaosShardSnapshotRejectsMismatch(t *testing.T) {
	sc, err := FindChaosScenario("radio-outage", 1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := NewChaosShardRun(sc, waggle.EngineSequential)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.DriveTo(100); err != nil {
		t.Fatal(err)
	}
	snap, err := run.Snapshot(filepath.Join(t.TempDir(), "s.wck"))
	if err != nil {
		t.Fatal(err)
	}
	other, err := FindChaosScenario("jam-ramp", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeChaosShardRun(other, waggle.EngineSequential, snap); err == nil {
		t.Fatal("resumed a radio-outage snapshot into jam-ramp")
	}
	if _, err := ResumeChaosShardRun(sc, waggle.EngineSequential, []byte("{")); err == nil {
		t.Fatal("resumed from torn snapshot bytes")
	}
}

// TestMergeChaosReportDeterministic: merging identical result sets fed
// in different completion orders produces byte-identical reports, in
// canonical scenario order.
func TestMergeChaosReportDeterministic(t *testing.T) {
	names := ChaosScenarioNames(1)
	synth := func(name string, k int) ChaosResult {
		return ChaosResult{
			Scenario: name, Family: "f", Protocol: "p",
			Sent: k, Delivered: k - 1, MeanLatency: float64(k) / 3,
			StepsToRecover: -1,
			Obs:            ObsRollup{"waggle_sim_steps_total": int64(100 * k)},
		}
	}
	encode := func(order []string) []byte {
		results := map[string]ChaosResult{}
		for i, n := range order {
			results[n] = synth(n, i+7)
		}
		// Rebuild values keyed by name so both orders hold identical data.
		for i, n := range names {
			results[n] = synth(n, i+7)
		}
		report, err := MergeChaosReport(1, waggle.EngineAuto, nil, results)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	shuffled := append([]string(nil), names...)
	rand.New(rand.NewSource(42)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a, b := encode(names), encode(shuffled)
	if !bytes.Equal(a, b) {
		t.Fatal("merge output depends on completion order")
	}
	// And the canonical order is the scenario order.
	report, err := MergeChaosReport(1, waggle.EngineAuto, nil, func() map[string]ChaosResult {
		m := map[string]ChaosResult{}
		for i, n := range shuffled {
			m[n] = synth(n, i)
		}
		return m
	}())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range report.Results {
		if r.Scenario != names[i] {
			t.Fatalf("result %d is %q, want %q", i, r.Scenario, names[i])
		}
	}
}

// TestMergeChaosReportValidates: missing and out-of-campaign results
// are loud errors, not silent truncation.
func TestMergeChaosReportValidates(t *testing.T) {
	if _, err := MergeChaosReport(1, waggle.EngineAuto, nil, map[string]ChaosResult{}); err == nil {
		t.Fatal("merged a campaign with every result missing")
	}
	if _, err := MergeChaosReport(1, waggle.EngineAuto, []string{"crash-sync"},
		map[string]ChaosResult{"crash-sync": {}, "jam-ramp": {}}); err == nil {
		t.Fatal("accepted a result outside the campaign")
	}
	if _, err := MergeChaosReport(1, waggle.EngineAuto, []string{"no-such"}, nil); err == nil {
		t.Fatal("accepted an unknown scenario name")
	}
}

// TestMergeSweepReportDeterministic: sweep tables merge in request
// order whatever order they completed in, and validation is loud.
func TestMergeSweepReportDeterministic(t *testing.T) {
	names := []string{"alpha", "beta", "gamma"}
	tables := map[string]TableReport{
		"gamma": {Name: "gamma", Header: []string{"h"}, Rows: [][]string{{"3"}}},
		"alpha": {Name: "alpha", Header: []string{"h"}, Rows: [][]string{{"1"}}},
		"beta":  {Name: "beta", Header: []string{"h"}, Rows: [][]string{{"2"}}},
	}
	report, err := MergeSweepReport(names, tables)
	if err != nil {
		t.Fatal(err)
	}
	for i, exp := range report.Experiments {
		if exp.Name != names[i] {
			t.Fatalf("experiment %d is %q, want %q", i, exp.Name, names[i])
		}
	}
	if _, err := MergeSweepReport(names[:2], tables); err == nil {
		t.Fatal("accepted a table outside the campaign")
	}
	delete(tables, "beta")
	if _, err := MergeSweepReport(names, tables); err == nil {
		t.Fatal("merged with a missing experiment")
	}
}
