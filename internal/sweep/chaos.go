// Chaos is the fault-injection harness: scripted fault plans
// (internal/fault via the public FaultPlan API) swept across protocols
// and schedulers, reporting per-scenario delivery rate, latency,
// messenger retry counters, and steps-to-recover. cmd/waggle-chaos
// prints the table; EXPERIMENTS.md records it; `make chaos-check`
// smoke-runs one fast scenario per fault family.
//
// Every scenario is deterministic: the swarm seed keys the scheduler,
// the frames, every randomized fault draw (splitmix64, not stream
// state) and the radio jamming, so identical seeds reproduce identical
// reports — under the sequential and the parallel engine alike.
package sweep

import (
	"bytes"
	"fmt"

	"waggle"
	"waggle/internal/geom"
	"waggle/internal/render"
	"waggle/internal/spatial"
)

// ChaosSend is one scheduled message of a chaos scenario. Tag is the
// single-byte payload and must be unique within the scenario, so
// deliveries can be attributed to their submission even when fault
// windows corrupt or reorder traffic. Post marks probe traffic sent
// after the fault window, used to measure steps-to-recover.
type ChaosSend struct {
	At, From, To int
	Tag          byte
	Post         bool
}

// ChaosScenario is one scripted run of the chaos harness: a swarm
// configuration, a fault plan, and a message timeline.
type ChaosScenario struct {
	// Name and Family label the table row (Family is the fault family
	// under test: crash, displacement, observation, movement, radio,
	// combined).
	Name, Family string
	// Positions is the initial configuration.
	Positions []waggle.Point
	// Seed keys every random choice of the run.
	Seed int64
	// Epoch enables §5 stabilization (0 = plain protocol).
	Epoch int
	// Async selects the asynchronous setting (default scheduler) instead
	// of the synchronous one.
	Async bool
	// Radio wires a radio plus a self-healing BackupMessenger
	// (DefaultMessengerPolicy) and routes all sends through it.
	Radio bool
	// Budget bounds the run in instants.
	Budget int
	// FaultEnd is the first fault-free instant (Plan.End), the baseline
	// for steps-to-recover.
	FaultEnd int
	// Plan is the fault schedule.
	Plan waggle.FaultPlan
	// Sends is the message timeline.
	Sends []ChaosSend
}

// ObsRollup is the per-scenario observability rollup: every counter
// the scenario's run incremented, keyed by full metric name
// (waggle_sim_steps_total, waggle_msgr_retries_total, ...). Only
// nonzero deltas appear; JSON encoding sorts the keys, so rollups are
// schema-stable and diffable.
type ObsRollup map[string]int64

// ChaosResult is the measured outcome of one scenario. The JSON tags
// are the stable encoding used by the -o reports; renaming one is a
// schema break (bump ChaosReportSchema).
type ChaosResult struct {
	Scenario  string `json:"scenario"`
	Family    string `json:"family"`
	Protocol  string `json:"protocol"`
	Sent      int    `json:"sent"`
	Delivered int    `json:"delivered"`
	// MeanLatency is the mean instants from submission to delivery over
	// the delivered messages.
	MeanLatency float64 `json:"mean_latency"`
	// Messenger counters (zero for scenarios without a radio).
	Retries      int `json:"retries"`
	Failovers    int `json:"failovers"`
	Failbacks    int `json:"failbacks"`
	ImplicitAcks int `json:"implicit_acks"`
	// StepsToRecover is the fault-end-to-delivery time of the first
	// post-fault probe message, or -1 when none was delivered.
	StepsToRecover int `json:"steps_to_recover"`
	// TraceCSV is the full movement trace, when requested — the
	// byte-identical-replay check of the determinism tests.
	TraceCSV string `json:"-"`
	// Obs is the observability rollup (RunChaosScenarioObserved; nil
	// from the plain runner).
	Obs ObsRollup `json:"obs,omitempty"`
}

// Rate returns the delivery rate.
func (r ChaosResult) Rate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Sent)
}

// chaosEpoch is the stabilization epoch of the synchronous scenarios:
// comfortably above the 48-instant one-byte frame, small enough that
// recovery fits a short run.
const chaosEpoch = 120

// granularRadiiOf computes the per-robot granular radius (half the
// nearest-neighbour distance) of a configuration — the unit in which
// displacement and noise magnitudes are meaningful.
func granularRadiiOf(pts []waggle.Point) []float64 {
	gp := make([]geom.Point, len(pts))
	for i, p := range pts {
		gp[i] = geom.Pt(p.X, p.Y)
	}
	return spatial.NearestRadii(gp)
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// ChaosScenarios scripts the harness's fault scenarios, one or more per
// family: crash-recover under stabilizing SyncN and under plain AsyncN
// (which tolerates crash windows by construction — a crash is just an
// adversarial activation delay), transient displacement, observation
// noise, dropped sightings, movement truncation, a radio outage and a
// jamming ramp against the self-healing messenger, and a combined plan
// breaking both channels at once.
func ChaosScenarios(seed int64) []ChaosScenario {
	six := positionsFor(6, seed+40)
	rad6 := granularRadiiOf(six)
	four := positionsFor(4, seed+41)

	// The synchronous scenarios share one timeline: pre-fault traffic at
	// t=2, the fault window inside [60,240) (spanning the t=120 epoch
	// boundary), traffic mid-fault, and post-fault probes after the
	// first clean epoch boundary.
	displaced := geom.V(3, 2).Unit().Scale(0.95 * rad6[1])

	return []ChaosScenario{
		{
			Name: "crash-sync", Family: "crash",
			Positions: six, Seed: seed, Epoch: chaosEpoch, Budget: 1_500,
			// The sender crash-stops mid-transmission and recovers into a
			// later epoch: the in-flight frame is lost at the boundary,
			// the queued-but-unstarted message survives on the endpoint
			// outbox and goes out after recovery.
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultCrash, Robot: 0, At: 70, Until: 240},
			}},
			FaultEnd: 240,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 1, Tag: 'A'},
				{At: 50, From: 0, To: 2, Tag: 'B'},  // in flight at the crash: lost
				{At: 100, From: 0, To: 3, Tag: 'C'}, // queued while crashed: survives
				{At: 242, From: 0, To: 4, Tag: 'D', Post: true},
			},
		},
		{
			Name: "crash-async", Family: "crash",
			Positions: four, Seed: seed, Async: true, Budget: 400_000,
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultCrash, Robot: 1, At: 200, Until: 1_400},
			}},
			FaultEnd: 1_400,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 1, Tag: 'A'},
				{At: 100, From: 0, To: 1, Tag: 'B'}, // stalls while the receiver is down
				{At: 1_402, From: 0, To: 1, Tag: 'C', Post: true},
			},
		},
		{
			Name: "displace-sync", Family: "displacement",
			Positions: six, Seed: seed, Epoch: chaosEpoch, Budget: 1_000,
			// The receiver is displaced by most of its granular radius:
			// enough to desynchronise every observer's bookkeeping of it,
			// flushed at the next epoch boundary when current positions
			// become the new homes.
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultDisplace, Robot: 1, At: 60, DX: displaced.X, DY: displaced.Y},
			}},
			FaultEnd: 61,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 1, Tag: 'A'},
				{At: 30, From: 0, To: 1, Tag: 'B'}, // in flight at the displacement
				{At: 122, From: 0, To: 1, Tag: 'C', Post: true},
			},
		},
		{
			Name: "obs-noise-sync", Family: "observation",
			Positions: six, Seed: seed, Epoch: chaosEpoch, Budget: 1_000,
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultObserveNoise, Robot: -1, At: 60, Until: 120, Mag: 0.35 * minOf(rad6)},
			}},
			FaultEnd: 120,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 2, Tag: 'A'},
				{At: 66, From: 0, To: 2, Tag: 'B'}, // transmitted through the noise
				{At: 122, From: 0, To: 3, Tag: 'C', Post: true},
			},
		},
		{
			Name: "drop-sight-sync", Family: "observation",
			Positions: six, Seed: seed, Epoch: chaosEpoch, Budget: 1_000,
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultDropSight, Robot: -1, At: 60, Until: 120, Mag: 0.5},
			}},
			FaultEnd: 120,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 2, Tag: 'A'},
				{At: 66, From: 0, To: 2, Tag: 'B'},
				{At: 122, From: 0, To: 3, Tag: 'C', Post: true},
			},
		},
		{
			Name: "move-error-sync", Family: "movement",
			Positions: six, Seed: seed, Epoch: chaosEpoch, Budget: 1_000,
			// The sender's moves are truncated to as little as 5% of the
			// command: excursions shrink below the classification
			// threshold and its dead reckoning drifts off its home.
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultMoveError, Robot: 0, At: 60, Until: 120, Min: 0.05, Max: 1.2},
			}},
			FaultEnd: 120,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 2, Tag: 'A'},
				{At: 66, From: 0, To: 2, Tag: 'B'},
				{At: 122, From: 0, To: 3, Tag: 'C', Post: true},
			},
		},
		{
			Name: "radio-outage", Family: "radio",
			Positions: four, Seed: seed, Radio: true, Budget: 800,
			// The sender's transmitter breaks for 360 instants: the
			// messenger retries with backoff, fails over to the movement
			// channel, confirms deliveries by implicit acknowledgement,
			// and fails back on its first probe after the repair.
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultRadioOutage, Robot: 0, At: 40, Until: 400},
			}},
			FaultEnd: 400,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 1, Tag: 'A'},
				{At: 50, From: 0, To: 2, Tag: 'B'},
				{At: 150, From: 0, To: 3, Tag: 'C'},
				{At: 402, From: 0, To: 1, Tag: 'D', Post: true},
			},
		},
		{
			Name: "jam-ramp", Family: "radio",
			Positions: four, Seed: seed, Radio: true, Budget: 1_200,
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultJamRamp, Robot: -1, At: 40, Until: 360, Min: 0, Max: 1},
			}},
			FaultEnd: 360,
			Sends: []ChaosSend{
				{At: 10, From: 0, To: 1, Tag: 'A'},
				{At: 100, From: 0, To: 2, Tag: 'B'},
				{At: 200, From: 0, To: 3, Tag: 'C'},
				{At: 280, From: 0, To: 1, Tag: 'D'},
				{At: 362, From: 0, To: 2, Tag: 'E', Post: true},
			},
		},
		{
			Name: "combined", Family: "combined",
			Positions: six, Seed: seed, Epoch: chaosEpoch, Radio: true, Budget: 1_500,
			// Both channels break at once: the radio jams while a crash,
			// a displacement and movement errors corrupt the movement
			// channel the messenger fails over to. Stabilization heals
			// the movement channel at the epoch boundary; the jam lifting
			// heals the radio; the post probe confirms the failback.
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultJamRamp, Robot: -1, At: 40, Until: 240, Min: 0.3, Max: 1},
				{Kind: waggle.FaultCrash, Robot: 3, At: 60, Until: 180},
				{Kind: waggle.FaultDisplace, Robot: 1, At: 70, DX: displaced.X, DY: displaced.Y},
				{Kind: waggle.FaultMoveError, Robot: -1, At: 80, Until: 160, Min: 0.5, Max: 1.2},
			}},
			FaultEnd: 240,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 1, Tag: 'A'},
				{At: 90, From: 0, To: 2, Tag: 'B'},
				{At: 150, From: 0, To: 4, Tag: 'C'},
				{At: 242, From: 0, To: 5, Tag: 'D', Post: true},
			},
		},
	}
}

// FindChaosScenario looks a scenario up by name, listing the valid
// names in the error when it is unknown.
func FindChaosScenario(name string, seed int64) (ChaosScenario, error) {
	all := ChaosScenarios(seed)
	for _, sc := range all {
		if sc.Name == name {
			return sc, nil
		}
	}
	names := make([]string, len(all))
	for i, sc := range all {
		names[i] = sc.Name
	}
	return ChaosScenario{}, fmt.Errorf("chaos: unknown scenario %q (try: %v)", name, names)
}

// RunChaosScenario executes one scenario under the given engine. With
// trace set, the full movement trace is captured into the result (for
// the byte-identical determinism checks).
func RunChaosScenario(sc ChaosScenario, engine waggle.EngineMode, trace bool) (*ChaosResult, error) {
	return runChaos(sc, engine, trace, nil)
}

// RunChaosScenarioObserved executes one scenario with the given
// observer attached (a fresh one when nil) and fills the result's Obs
// rollup with the counters the run incremented. Passing a shared
// observer accumulates across scenarios — the rollup is still
// per-scenario, computed as a before/after counter diff.
func RunChaosScenarioObserved(sc ChaosScenario, engine waggle.EngineMode, trace bool, o *waggle.Observer) (*ChaosResult, error) {
	if o == nil {
		o = waggle.NewObserver()
	}
	before := o.DeterministicSnapshot()
	res, err := runChaos(sc, engine, trace, o)
	if err != nil {
		return nil, err
	}
	res.Obs = ObsRollup{}
	for _, c := range o.DeterministicSnapshot().Counters {
		prev, _ := before.CounterValue(c.Name)
		if d := c.Value - prev; d != 0 {
			res.Obs[c.Name] = d
		}
	}
	return res, nil
}

func runChaos(sc ChaosScenario, engine waggle.EngineMode, trace bool, obsv *waggle.Observer) (*ChaosResult, error) {
	n := len(sc.Positions)
	fail := func(err error) (*ChaosResult, error) {
		return nil, fmt.Errorf("chaos %s: %w", sc.Name, err)
	}
	opts := []waggle.Option{waggle.WithSeed(sc.Seed), waggle.WithEngine(engine)}
	if obsv != nil {
		opts = append(opts, waggle.WithObserver(obsv))
	}
	if !sc.Async {
		opts = append(opts, waggle.WithSynchronous())
	}
	if sc.Epoch > 0 {
		opts = append(opts, waggle.WithStabilization(sc.Epoch))
	}
	if trace {
		opts = append(opts, waggle.WithTrace())
	}
	var radio *waggle.Radio
	if sc.Radio {
		radio = waggle.NewRadio(n, sc.Seed^0x7AD10)
		opts = append(opts, waggle.WithFaultRadio(radio))
	}
	if len(sc.Plan.Events) > 0 {
		opts = append(opts, waggle.WithFaultPlan(sc.Plan))
	}
	s, err := waggle.NewSwarm(sc.Positions, opts...)
	if err != nil {
		return fail(err)
	}
	var bm *waggle.BackupMessenger
	if sc.Radio {
		if bm, err = waggle.NewBackupMessenger(radio, s); err != nil {
			return fail(err)
		}
		if err := bm.SetPolicy(waggle.DefaultMessengerPolicy()); err != nil {
			return fail(err)
		}
	}

	type msgState struct {
		send                ChaosSend
		sentAt, deliveredAt int
	}
	msgs := make([]msgState, len(sc.Sends))
	for i, m := range sc.Sends {
		msgs[i] = msgState{send: m, sentAt: -1, deliveredAt: -1}
	}
	// match attributes a delivery (or radio receipt) to the oldest
	// outstanding submission with the same route and tag; decoded
	// garbage matches nothing and is simply not counted.
	match := func(from, to int, payload []byte, now int) {
		if len(payload) != 1 {
			return
		}
		for k := range msgs {
			m := &msgs[k]
			if m.sentAt >= 0 && m.deliveredAt < 0 &&
				m.send.From == from && m.send.To == to && m.send.Tag == payload[0] {
				m.deliveredAt = now
				return
			}
		}
	}

	cursor := 0
	for t := 0; t < sc.Budget; t++ {
		for k := range msgs {
			m := &msgs[k]
			if m.send.At != t {
				continue
			}
			m.sentAt = t
			payload := []byte{m.send.Tag}
			if bm != nil {
				err = bm.Send(m.send.From, m.send.To, payload)
			} else {
				err = s.Send(m.send.From, m.send.To, payload)
			}
			if err != nil {
				return fail(err)
			}
		}
		if bm != nil {
			err = bm.Step()
		} else {
			err = s.Step()
		}
		if err != nil {
			return fail(err)
		}
		now := s.Time()
		if radio != nil {
			for i := 0; i < n; i++ {
				for _, rm := range radio.Receive(i) {
					match(rm.From, rm.To, rm.Payload, now)
				}
			}
		}
		all := s.Delivered()
		for ; cursor < len(all); cursor++ {
			d := all[cursor]
			match(d.From, d.To, d.Payload, now)
		}
		done := true
		for k := range msgs {
			if msgs[k].sentAt < 0 || msgs[k].deliveredAt < 0 {
				done = false
				break
			}
		}
		if done {
			break
		}
	}

	proto := s.Protocol().String()
	if sc.Epoch > 0 {
		proto = fmt.Sprintf("%s+stab(%d)", proto, sc.Epoch)
	}
	res := &ChaosResult{
		Scenario: sc.Name, Family: sc.Family, Protocol: proto,
		Sent: len(msgs), StepsToRecover: -1,
	}
	var latency float64
	for k := range msgs {
		m := &msgs[k]
		if m.deliveredAt < 0 {
			continue
		}
		res.Delivered++
		latency += float64(m.deliveredAt - m.sentAt)
		if m.send.Post {
			r := m.deliveredAt - sc.FaultEnd
			if res.StepsToRecover < 0 || r < res.StepsToRecover {
				res.StepsToRecover = r
			}
		}
	}
	if res.Delivered > 0 {
		res.MeanLatency = latency / float64(res.Delivered)
	}
	if bm != nil {
		st := bm.DetailedStats()
		res.Retries = st.Retries
		res.Failovers = st.Failovers
		res.Failbacks = st.Failbacks
		res.ImplicitAcks = st.ImplicitAcks
	}
	if trace {
		var buf bytes.Buffer
		if err := s.WriteTraceCSV(&buf); err != nil {
			return fail(err)
		}
		res.TraceCSV = buf.String()
	}
	return res, nil
}

// ChaosTable runs every scenario and formats the report.
func ChaosTable(seed int64, engine waggle.EngineMode) (*render.Table, error) {
	var results []ChaosResult
	for _, sc := range ChaosScenarios(seed) {
		r, err := RunChaosScenario(sc, engine, false)
		if err != nil {
			return nil, err
		}
		results = append(results, *r)
	}
	return ChaosResultTable(results), nil
}

// Chaos is the sweep-registry entry: the full scenario table at seed 1
// under the automatic engine.
func Chaos() (*render.Table, error) { return ChaosTable(1, waggle.EngineAuto) }
