// Chaos is the fault-injection harness: scripted fault plans
// (internal/fault via the public FaultPlan API) swept across protocols
// and schedulers, reporting per-scenario delivery rate, latency,
// messenger retry counters, and steps-to-recover. cmd/waggle-chaos
// prints the table; EXPERIMENTS.md records it; `make chaos-check`
// smoke-runs one fast scenario per fault family.
//
// Every scenario is deterministic: the swarm seed keys the scheduler,
// the frames, every randomized fault draw (splitmix64, not stream
// state) and the radio jamming, so identical seeds reproduce identical
// reports — under the sequential and the parallel engine alike.
package sweep

import (
	"bytes"
	"fmt"
	"os"

	"waggle"
	"waggle/internal/geom"
	"waggle/internal/render"
	"waggle/internal/spatial"
)

// ChaosSend is one scheduled message of a chaos scenario. Tag is the
// single-byte payload and must be unique within the scenario, so
// deliveries can be attributed to their submission even when fault
// windows corrupt or reorder traffic. Post marks probe traffic sent
// after the fault window, used to measure steps-to-recover.
type ChaosSend struct {
	At, From, To int
	Tag          byte
	Post         bool
}

// ChaosScenario is one scripted run of the chaos harness: a swarm
// configuration, a fault plan, and a message timeline.
type ChaosScenario struct {
	// Name and Family label the table row (Family is the fault family
	// under test: crash, displacement, observation, movement, radio,
	// combined).
	Name, Family string
	// Positions is the initial configuration.
	Positions []waggle.Point
	// Seed keys every random choice of the run.
	Seed int64
	// Epoch enables §5 stabilization (0 = plain protocol).
	Epoch int
	// Async selects the asynchronous setting (default scheduler) instead
	// of the synchronous one.
	Async bool
	// Radio wires a radio plus a self-healing BackupMessenger
	// (DefaultMessengerPolicy) and routes all sends through it.
	Radio bool
	// Budget bounds the run in instants.
	Budget int
	// FaultEnd is the first fault-free instant (Plan.End), the baseline
	// for steps-to-recover.
	FaultEnd int
	// Plan is the fault schedule.
	Plan waggle.FaultPlan
	// Sends is the message timeline.
	Sends []ChaosSend
}

// ObsRollup is the per-scenario observability rollup: every counter
// the scenario's run incremented, keyed by full metric name
// (waggle_sim_steps_total, waggle_msgr_retries_total, ...). Only
// nonzero deltas appear; JSON encoding sorts the keys, so rollups are
// schema-stable and diffable.
type ObsRollup map[string]int64

// ChaosResult is the measured outcome of one scenario. The JSON tags
// are the stable encoding used by the -o reports; renaming one is a
// schema break (bump ChaosReportSchema).
type ChaosResult struct {
	Scenario  string `json:"scenario"`
	Family    string `json:"family"`
	Protocol  string `json:"protocol"`
	Sent      int    `json:"sent"`
	Delivered int    `json:"delivered"`
	// MeanLatency is the mean instants from submission to delivery over
	// the delivered messages.
	MeanLatency float64 `json:"mean_latency"`
	// Messenger counters (zero for scenarios without a radio).
	Retries      int `json:"retries"`
	Failovers    int `json:"failovers"`
	Failbacks    int `json:"failbacks"`
	ImplicitAcks int `json:"implicit_acks"`
	// StepsToRecover is the fault-end-to-delivery time of the first
	// post-fault probe message, or -1 when none was delivered.
	StepsToRecover int `json:"steps_to_recover"`
	// TraceCSV is the full movement trace, when requested — the
	// byte-identical-replay check of the determinism tests.
	TraceCSV string `json:"-"`
	// Obs is the observability rollup (RunChaosScenarioObserved; nil
	// from the plain runner).
	Obs ObsRollup `json:"obs,omitempty"`
}

// Rate returns the delivery rate.
func (r ChaosResult) Rate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Sent)
}

// chaosEpoch is the stabilization epoch of the synchronous scenarios:
// comfortably above the 48-instant one-byte frame, small enough that
// recovery fits a short run.
const chaosEpoch = 120

// granularRadiiOf computes the per-robot granular radius (half the
// nearest-neighbour distance) of a configuration — the unit in which
// displacement and noise magnitudes are meaningful.
func granularRadiiOf(pts []waggle.Point) []float64 {
	gp := make([]geom.Point, len(pts))
	for i, p := range pts {
		gp[i] = geom.Pt(p.X, p.Y)
	}
	return spatial.NearestRadii(gp)
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// ChaosScenarios scripts the harness's fault scenarios, one or more per
// family: crash-recover under stabilizing SyncN and under plain AsyncN
// (which tolerates crash windows by construction — a crash is just an
// adversarial activation delay), transient displacement, observation
// noise, dropped sightings, movement truncation, a radio outage and a
// jamming ramp against the self-healing messenger, and a combined plan
// breaking both channels at once.
func ChaosScenarios(seed int64) []ChaosScenario {
	six := positionsFor(6, seed+40)
	rad6 := granularRadiiOf(six)
	four := positionsFor(4, seed+41)

	// The synchronous scenarios share one timeline: pre-fault traffic at
	// t=2, the fault window inside [60,240) (spanning the t=120 epoch
	// boundary), traffic mid-fault, and post-fault probes after the
	// first clean epoch boundary.
	displaced := geom.V(3, 2).Unit().Scale(0.95 * rad6[1])

	return []ChaosScenario{
		{
			Name: "crash-sync", Family: "crash",
			Positions: six, Seed: seed, Epoch: chaosEpoch, Budget: 1_500,
			// The sender crash-stops mid-transmission and recovers into a
			// later epoch: the in-flight frame is lost at the boundary,
			// the queued-but-unstarted message survives on the endpoint
			// outbox and goes out after recovery.
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultCrash, Robot: 0, At: 70, Until: 240},
			}},
			FaultEnd: 240,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 1, Tag: 'A'},
				{At: 50, From: 0, To: 2, Tag: 'B'},  // in flight at the crash: lost
				{At: 100, From: 0, To: 3, Tag: 'C'}, // queued while crashed: survives
				{At: 242, From: 0, To: 4, Tag: 'D', Post: true},
			},
		},
		{
			Name: "crash-async", Family: "crash",
			Positions: four, Seed: seed, Async: true, Budget: 400_000,
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultCrash, Robot: 1, At: 200, Until: 1_400},
			}},
			FaultEnd: 1_400,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 1, Tag: 'A'},
				{At: 100, From: 0, To: 1, Tag: 'B'}, // stalls while the receiver is down
				{At: 1_402, From: 0, To: 1, Tag: 'C', Post: true},
			},
		},
		{
			Name: "displace-sync", Family: "displacement",
			Positions: six, Seed: seed, Epoch: chaosEpoch, Budget: 1_000,
			// The receiver is displaced by most of its granular radius:
			// enough to desynchronise every observer's bookkeeping of it,
			// flushed at the next epoch boundary when current positions
			// become the new homes.
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultDisplace, Robot: 1, At: 60, DX: displaced.X, DY: displaced.Y},
			}},
			FaultEnd: 61,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 1, Tag: 'A'},
				{At: 30, From: 0, To: 1, Tag: 'B'}, // in flight at the displacement
				{At: 122, From: 0, To: 1, Tag: 'C', Post: true},
			},
		},
		{
			Name: "obs-noise-sync", Family: "observation",
			Positions: six, Seed: seed, Epoch: chaosEpoch, Budget: 1_000,
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultObserveNoise, Robot: -1, At: 60, Until: 120, Mag: 0.35 * minOf(rad6)},
			}},
			FaultEnd: 120,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 2, Tag: 'A'},
				{At: 66, From: 0, To: 2, Tag: 'B'}, // transmitted through the noise
				{At: 122, From: 0, To: 3, Tag: 'C', Post: true},
			},
		},
		{
			Name: "drop-sight-sync", Family: "observation",
			Positions: six, Seed: seed, Epoch: chaosEpoch, Budget: 1_000,
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultDropSight, Robot: -1, At: 60, Until: 120, Mag: 0.5},
			}},
			FaultEnd: 120,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 2, Tag: 'A'},
				{At: 66, From: 0, To: 2, Tag: 'B'},
				{At: 122, From: 0, To: 3, Tag: 'C', Post: true},
			},
		},
		{
			Name: "move-error-sync", Family: "movement",
			Positions: six, Seed: seed, Epoch: chaosEpoch, Budget: 1_000,
			// The sender's moves are truncated to as little as 5% of the
			// command: excursions shrink below the classification
			// threshold and its dead reckoning drifts off its home.
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultMoveError, Robot: 0, At: 60, Until: 120, Min: 0.05, Max: 1.2},
			}},
			FaultEnd: 120,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 2, Tag: 'A'},
				{At: 66, From: 0, To: 2, Tag: 'B'},
				{At: 122, From: 0, To: 3, Tag: 'C', Post: true},
			},
		},
		{
			Name: "radio-outage", Family: "radio",
			Positions: four, Seed: seed, Radio: true, Budget: 800,
			// The sender's transmitter breaks for 360 instants: the
			// messenger retries with backoff, fails over to the movement
			// channel, confirms deliveries by implicit acknowledgement,
			// and fails back on its first probe after the repair.
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultRadioOutage, Robot: 0, At: 40, Until: 400},
			}},
			FaultEnd: 400,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 1, Tag: 'A'},
				{At: 50, From: 0, To: 2, Tag: 'B'},
				{At: 150, From: 0, To: 3, Tag: 'C'},
				{At: 402, From: 0, To: 1, Tag: 'D', Post: true},
			},
		},
		{
			Name: "jam-ramp", Family: "radio",
			Positions: four, Seed: seed, Radio: true, Budget: 1_200,
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultJamRamp, Robot: -1, At: 40, Until: 360, Min: 0, Max: 1},
			}},
			FaultEnd: 360,
			Sends: []ChaosSend{
				{At: 10, From: 0, To: 1, Tag: 'A'},
				{At: 100, From: 0, To: 2, Tag: 'B'},
				{At: 200, From: 0, To: 3, Tag: 'C'},
				{At: 280, From: 0, To: 1, Tag: 'D'},
				{At: 362, From: 0, To: 2, Tag: 'E', Post: true},
			},
		},
		{
			Name: "combined", Family: "combined",
			Positions: six, Seed: seed, Epoch: chaosEpoch, Radio: true, Budget: 1_500,
			// Both channels break at once: the radio jams while a crash,
			// a displacement and movement errors corrupt the movement
			// channel the messenger fails over to. Stabilization heals
			// the movement channel at the epoch boundary; the jam lifting
			// heals the radio; the post probe confirms the failback.
			Plan: waggle.FaultPlan{Events: []waggle.FaultEvent{
				{Kind: waggle.FaultJamRamp, Robot: -1, At: 40, Until: 240, Min: 0.3, Max: 1},
				{Kind: waggle.FaultCrash, Robot: 3, At: 60, Until: 180},
				{Kind: waggle.FaultDisplace, Robot: 1, At: 70, DX: displaced.X, DY: displaced.Y},
				{Kind: waggle.FaultMoveError, Robot: -1, At: 80, Until: 160, Min: 0.5, Max: 1.2},
			}},
			FaultEnd: 240,
			Sends: []ChaosSend{
				{At: 2, From: 0, To: 1, Tag: 'A'},
				{At: 90, From: 0, To: 2, Tag: 'B'},
				{At: 150, From: 0, To: 4, Tag: 'C'},
				{At: 242, From: 0, To: 5, Tag: 'D', Post: true},
			},
		},
	}
}

// FindChaosScenario looks a scenario up by name, listing the valid
// names in the error when it is unknown.
func FindChaosScenario(name string, seed int64) (ChaosScenario, error) {
	all := ChaosScenarios(seed)
	for _, sc := range all {
		if sc.Name == name {
			return sc, nil
		}
	}
	names := make([]string, len(all))
	for i, sc := range all {
		names[i] = sc.Name
	}
	return ChaosScenario{}, fmt.Errorf("chaos: unknown scenario %q (try: %v)", name, names)
}

// RunChaosScenario executes one scenario under the given engine. With
// trace set, the full movement trace is captured into the result (for
// the byte-identical determinism checks).
func RunChaosScenario(sc ChaosScenario, engine waggle.EngineMode, trace bool) (*ChaosResult, error) {
	return runChaos(sc, engine, trace, nil)
}

// RunChaosScenarioObserved executes one scenario with the given
// observer attached (a fresh one when nil) and fills the result's Obs
// rollup with the counters the run incremented. Passing a shared
// observer accumulates across scenarios — the rollup is still
// per-scenario, computed as a before/after counter diff.
func RunChaosScenarioObserved(sc ChaosScenario, engine waggle.EngineMode, trace bool, o *waggle.Observer) (*ChaosResult, error) {
	if o == nil {
		o = waggle.NewObserver()
	}
	before := o.DeterministicSnapshot()
	res, err := runChaos(sc, engine, trace, o)
	if err != nil {
		return nil, err
	}
	res.Obs = ObsRollup{}
	for _, c := range o.DeterministicSnapshot().Counters {
		prev, _ := before.CounterValue(c.Name)
		if d := c.Value - prev; d != 0 {
			res.Obs[c.Name] = d
		}
	}
	return res, nil
}

// chaosMsg tracks one scheduled send through the run.
type chaosMsg struct {
	send                ChaosSend
	sentAt, deliveredAt int
}

// chaosRun is the live state of a scenario being driven: the swarm
// stack plus the harness-side message ledger and delivery cursor. It is
// the unit of kill-and-resume: the stack can be swapped for a restored
// one mid-run (the ledger and cursor are harness state, reconstructed
// identically because the restored stack reports identical deliveries).
type chaosRun struct {
	sc     ChaosScenario
	trace  bool
	s      *waggle.Swarm
	bm     *waggle.BackupMessenger
	radio  *waggle.Radio
	msgs   []chaosMsg
	cursor int
	done   bool
}

func (r *chaosRun) fail(err error) error {
	return fmt.Errorf("chaos %s: %w", r.sc.Name, err)
}

func newChaosRun(sc ChaosScenario, engine waggle.EngineMode, trace bool, obsv *waggle.Observer) (*chaosRun, error) {
	n := len(sc.Positions)
	r := &chaosRun{sc: sc, trace: trace}
	opts := []waggle.Option{waggle.WithSeed(sc.Seed), waggle.WithEngine(engine)}
	if obsv != nil {
		opts = append(opts, waggle.WithObserver(obsv))
	}
	if !sc.Async {
		opts = append(opts, waggle.WithSynchronous())
	}
	if sc.Epoch > 0 {
		opts = append(opts, waggle.WithStabilization(sc.Epoch))
	}
	if trace {
		opts = append(opts, waggle.WithTrace())
	}
	if sc.Radio {
		r.radio = waggle.NewRadio(n, sc.Seed^0x7AD10)
		opts = append(opts, waggle.WithFaultRadio(r.radio))
	}
	if len(sc.Plan.Events) > 0 {
		opts = append(opts, waggle.WithFaultPlan(sc.Plan))
	}
	s, err := waggle.NewSwarm(sc.Positions, opts...)
	if err != nil {
		return nil, r.fail(err)
	}
	r.s = s
	if sc.Radio {
		if r.bm, err = waggle.NewBackupMessenger(r.radio, s); err != nil {
			return nil, r.fail(err)
		}
		if err := r.bm.SetPolicy(waggle.DefaultMessengerPolicy()); err != nil {
			return nil, r.fail(err)
		}
	}
	r.msgs = make([]chaosMsg, len(sc.Sends))
	for i, m := range sc.Sends {
		r.msgs[i] = chaosMsg{send: m, sentAt: -1, deliveredAt: -1}
	}
	return r, nil
}

// match attributes a delivery (or radio receipt) to the oldest
// outstanding submission with the same route and tag; decoded garbage
// matches nothing and is simply not counted.
func (r *chaosRun) match(from, to int, payload []byte, now int) {
	if len(payload) != 1 {
		return
	}
	for k := range r.msgs {
		m := &r.msgs[k]
		if m.sentAt >= 0 && m.deliveredAt < 0 &&
			m.send.From == from && m.send.To == to && m.send.Tag == payload[0] {
			m.deliveredAt = now
			return
		}
	}
}

// drive runs instants [from, until), submitting scheduled sends,
// stepping the stack and attributing deliveries, stopping early once
// every message is accounted for. It may be called again (with a later
// window, against a restored stack) to continue an interrupted run.
func (r *chaosRun) drive(from, until int) error {
	if r.done {
		return nil
	}
	n := len(r.sc.Positions)
	for t := from; t < until; t++ {
		var err error
		for k := range r.msgs {
			m := &r.msgs[k]
			if m.send.At != t {
				continue
			}
			m.sentAt = t
			payload := []byte{m.send.Tag}
			if r.bm != nil {
				err = r.bm.Send(m.send.From, m.send.To, payload)
			} else {
				err = r.s.Send(m.send.From, m.send.To, payload)
			}
			if err != nil {
				return r.fail(err)
			}
		}
		if r.bm != nil {
			err = r.bm.Step()
		} else {
			err = r.s.Step()
		}
		if err != nil {
			return r.fail(err)
		}
		now := r.s.Time()
		if r.radio != nil {
			for i := 0; i < n; i++ {
				for _, rm := range r.radio.Receive(i) {
					r.match(rm.From, rm.To, rm.Payload, now)
				}
			}
		}
		// The cursor over the delivery log is harness state; it stays
		// valid across a kill-and-resume because the restored stack
		// rebuilds the identical log.
		all := r.s.Delivered()
		for ; r.cursor < len(all); r.cursor++ {
			d := all[r.cursor]
			r.match(d.From, d.To, d.Payload, now)
		}
		r.done = true
		for k := range r.msgs {
			if r.msgs[k].sentAt < 0 || r.msgs[k].deliveredAt < 0 {
				r.done = false
				break
			}
		}
		if r.done {
			break
		}
	}
	return nil
}

// result summarizes the run into the reported row.
func (r *chaosRun) result() (*ChaosResult, error) {
	proto := r.s.Protocol().String()
	if r.sc.Epoch > 0 {
		proto = fmt.Sprintf("%s+stab(%d)", proto, r.sc.Epoch)
	}
	res := &ChaosResult{
		Scenario: r.sc.Name, Family: r.sc.Family, Protocol: proto,
		Sent: len(r.msgs), StepsToRecover: -1,
	}
	var latency float64
	for k := range r.msgs {
		m := &r.msgs[k]
		if m.deliveredAt < 0 {
			continue
		}
		res.Delivered++
		latency += float64(m.deliveredAt - m.sentAt)
		if m.send.Post {
			rec := m.deliveredAt - r.sc.FaultEnd
			if res.StepsToRecover < 0 || rec < res.StepsToRecover {
				res.StepsToRecover = rec
			}
		}
	}
	if res.Delivered > 0 {
		res.MeanLatency = latency / float64(res.Delivered)
	}
	if r.bm != nil {
		st := r.bm.DetailedStats()
		res.Retries = st.Retries
		res.Failovers = st.Failovers
		res.Failbacks = st.Failbacks
		res.ImplicitAcks = st.ImplicitAcks
	}
	if r.trace {
		var buf bytes.Buffer
		if err := r.s.WriteTraceCSV(&buf); err != nil {
			return nil, r.fail(err)
		}
		res.TraceCSV = buf.String()
	}
	return res, nil
}

func runChaos(sc ChaosScenario, engine waggle.EngineMode, trace bool, obsv *waggle.Observer) (*ChaosResult, error) {
	r, err := newChaosRun(sc, engine, trace, obsv)
	if err != nil {
		return nil, err
	}
	if err := r.drive(0, sc.Budget); err != nil {
		return nil, err
	}
	return r.result()
}

// RunChaosScenarioResumed executes a scenario with a simulated process
// death at instant killAt: the whole stack (swarm, radio, messenger) is
// checkpointed, serialized through the wire format, discarded, restored
// from the bytes, and the run continues on the restored stack. The
// result — including the byte-identical movement trace — must equal
// RunChaosScenario's; the chaos determinism tests and waggle-chaos
// -resume-check enforce exactly that.
func RunChaosScenarioResumed(sc ChaosScenario, engine waggle.EngineMode, killAt int) (*ChaosResult, error) {
	if killAt < 0 || killAt > sc.Budget {
		return nil, fmt.Errorf("chaos %s: kill instant %d outside run budget %d", sc.Name, killAt, sc.Budget)
	}
	r, err := newChaosRun(sc, engine, true, nil)
	if err != nil {
		return nil, err
	}
	if err := r.drive(0, killAt); err != nil {
		return nil, err
	}
	if !r.done {
		ck, err := r.s.Checkpoint()
		if err != nil {
			return nil, r.fail(err)
		}
		var wire bytes.Buffer
		if err := waggle.WriteCheckpoint(&wire, ck); err != nil {
			return nil, r.fail(err)
		}
		loaded, err := waggle.ReadCheckpoint(&wire)
		if err != nil {
			return nil, r.fail(err)
		}
		res, err := waggle.Restore(loaded, waggle.RestoreWithEngine(engine))
		if err != nil {
			return nil, r.fail(err)
		}
		r.s, r.radio, r.bm = res.Swarm, res.Radio, res.Messenger
	}
	if err := r.drive(killAt, sc.Budget); err != nil {
		return nil, err
	}
	return r.result()
}

// RunChaosScenarioResumedCodec is RunChaosScenarioResumed parameterized
// by checkpoint serialization. CodecJSON round-trips the checkpoint
// through the in-memory v1 envelope (identical to
// RunChaosScenarioResumed); CodecBinary saves and reloads a v2 binary
// file; CodecDelta drives the run to killAt in chunks with a periodic
// CheckpointWriter — so the file restored from is a real base +
// delta-frame chain, folded by the loader — before the stack is
// discarded and rebuilt. Whatever the format, the continuation must be
// byte-identical to the uninterrupted run.
func RunChaosScenarioResumedCodec(sc ChaosScenario, engine waggle.EngineMode, killAt int, codec waggle.CheckpointCodec) (*ChaosResult, error) {
	if codec == waggle.CodecJSON {
		return RunChaosScenarioResumed(sc, engine, killAt)
	}
	if killAt < 0 || killAt > sc.Budget {
		return nil, fmt.Errorf("chaos %s: kill instant %d outside run budget %d", sc.Name, killAt, sc.Budget)
	}
	r, err := newChaosRun(sc, engine, true, nil)
	if err != nil {
		return nil, err
	}
	tmp, err := os.CreateTemp("", "waggle-chaos-*.ckptb")
	if err != nil {
		return nil, r.fail(err)
	}
	path := tmp.Name()
	tmp.Close()
	defer os.Remove(path)
	saved := false
	switch codec {
	case waggle.CodecBinary:
		if err := r.drive(0, killAt); err != nil {
			return nil, err
		}
		if !r.done {
			ck, err := r.s.Checkpoint()
			if err != nil {
				return nil, r.fail(err)
			}
			if err := waggle.SaveCheckpoint(path, ck, waggle.CodecBinary); err != nil {
				return nil, r.fail(err)
			}
			saved = true
		}
	case waggle.CodecDelta:
		cw, err := r.s.NewCheckpointWriter(path, waggle.CodecDelta)
		if err != nil {
			return nil, r.fail(err)
		}
		chunk := killAt / 4
		if chunk < 1 {
			chunk = 1
		}
		for t := 0; t < killAt && !r.done; {
			next := t + chunk
			if next > killAt {
				next = killAt
			}
			if err := r.drive(t, next); err != nil {
				return nil, err
			}
			t = next
			if !r.done {
				if err := cw.Save(); err != nil {
					return nil, r.fail(err)
				}
				saved = true
			}
		}
	default:
		return nil, fmt.Errorf("chaos %s: unsupported checkpoint codec %v", sc.Name, codec)
	}
	if !r.done && saved {
		loaded, err := waggle.LoadCheckpoint(path)
		if err != nil {
			return nil, r.fail(err)
		}
		res, err := waggle.Restore(loaded, waggle.RestoreWithEngine(engine))
		if err != nil {
			return nil, r.fail(err)
		}
		r.s, r.radio, r.bm = res.Swarm, res.Radio, res.Messenger
	}
	if err := r.drive(killAt, sc.Budget); err != nil {
		return nil, err
	}
	return r.result()
}

// ChaosTable runs every scenario and formats the report.
func ChaosTable(seed int64, engine waggle.EngineMode) (*render.Table, error) {
	var results []ChaosResult
	for _, sc := range ChaosScenarios(seed) {
		r, err := RunChaosScenario(sc, engine, false)
		if err != nil {
			return nil, err
		}
		results = append(results, *r)
	}
	return ChaosResultTable(results), nil
}

// Chaos is the sweep-registry entry: the full scenario table at seed 1
// under the automatic engine.
func Chaos() (*render.Table, error) { return ChaosTable(1, waggle.EngineAuto) }
