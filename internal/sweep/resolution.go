package sweep

import (
	"fmt"
	"math"
	"math/rand"

	"waggle/internal/geom"
	"waggle/internal/protocol"
	"waggle/internal/render"
	"waggle/internal/sim"
)

// Resolution is the §5 round-off experiment: robots that can only
// realise/recognise a fixed number of movement directions. The direct
// protocol needs 2(n+1) distinguishable directions, so its channels
// start misrouting once the swarm outgrows the sensor (the quantization
// error exceeds the half-sector width π/(2(n+1))); the bounded-slice
// variant needs only 2(k+2) directions regardless of n — the exact
// motivation the paper gives for it. Each row probes several
// sender→recipient channels and reports the fraction that still
// deliver.
func Resolution() (*render.Table, error) {
	const (
		directions = 32
		trials     = 6
	)
	tbl := render.NewTable("n", "variant", "directions needed", "delivery rate")
	for _, n := range []int{6, 12, 20, 28} {
		positions := ablationPositions(n, int64(40+n))
		direct, err := resolutionRate(positions, 0, directions, trials)
		if err != nil {
			return nil, fmt.Errorf("direct n=%d: %w", n, err)
		}
		tbl.AddRow(n, "direct (§4.2)", 2*(n+1), direct)
		bounded, err := resolutionRate(positions, 2, directions, trials)
		if err != nil {
			return nil, fmt.Errorf("bounded n=%d: %w", n, err)
		}
		tbl.AddRow(n, "bounded k=2 (§5)", 2*(2+2), bounded)
	}
	return tbl, nil
}

// resolutionRate probes `trials` channels (distinct recipients, random
// per-robot frame rotations) and returns the delivered fraction.
// boundedK == 0 selects the direct protocol.
func resolutionRate(positions []geom.Point, boundedK, directions, trials int) (float64, error) {
	n := len(positions)
	delivered := 0
	for trial := 0; trial < trials; trial++ {
		to := 1 + trial%(n-1)
		ok, err := resolutionDelivered(positions, boundedK, directions, to, int64(trial))
		if err != nil {
			return 0, err
		}
		if ok {
			delivered++
		}
	}
	return float64(delivered) / float64(trials), nil
}

func resolutionDelivered(positions []geom.Point, boundedK, directions, to int, seed int64) (bool, error) {
	n := len(positions)
	cfg := protocol.AsyncNConfig{DirectionResolution: directions}
	var (
		behaviors []sim.Behavior
		endpoints []*protocol.Endpoint
		err       error
	)
	if boundedK > 0 {
		behaviors, endpoints, err = protocol.NewAsyncBounded(n, boundedK, cfg)
	} else {
		behaviors, endpoints, err = protocol.NewAsyncN(n, cfg)
	}
	if err != nil {
		return false, err
	}
	rng := rand.New(rand.NewSource(seed))
	robots := make([]*sim.Robot, n)
	for i := range robots {
		frame := geom.NewFrame(geom.Point{}, rng.Float64()*2*math.Pi, 1, geom.RightHanded)
		robots[i] = &sim.Robot{Frame: frame, Sigma: 1e18, Behavior: behaviors[i]}
	}
	world, err := sim.NewWorld(sim.Config{Positions: positions, Robots: robots})
	if err != nil {
		return false, err
	}
	payload := []byte{0x9D}
	if err := endpoints[0].Send(to, payload); err != nil {
		return false, err
	}
	delivered := false
	_, _, err = world.Run(sim.FirstSync{Inner: sim.NewRandomFair(seed)}, 50_000, func(*sim.World) bool {
		for _, r := range endpoints[to].Receive() {
			if r.From == 0 && string(r.Payload) == string(payload) {
				delivered = true
			}
		}
		return delivered
	})
	if err != nil {
		return false, err
	}
	return delivered, nil
}
