package sweep

import (
	"fmt"

	"waggle"
	"waggle/internal/render"
	"waggle/internal/workload"
)

// Throughput measures aggregate channel capacity under different traffic
// patterns: total frame bits delivered per time instant for a
// synchronous swarm. Because every robot owns its granular, senders
// transmit simultaneously without interference — the aggregate
// throughput grows with the number of concurrently-sending robots
// (spatial reuse), peaking for all-to-all traffic and degenerating to a
// single sender's 0.5 bit/instant under the hotspot's sink... which
// still receives everything, just serialised per sender.
func Throughput() (*render.Table, error) {
	tbl := render.NewTable("pattern", "n", "messages", "total bits", "steps", "bits/instant")
	for _, pattern := range []workload.Pattern{workload.Ring, workload.Hotspot, workload.AllToAll, workload.RandomPairs} {
		n := 8
		cfg := workload.Config{
			Pattern:    pattern,
			N:          n,
			Messages:   n * 2,
			PayloadLen: 4,
			Seed:       31,
		}
		msgs, err := workload.Generate(cfg)
		if err != nil {
			return nil, err
		}
		s, err := waggle.NewSwarm(positionsFor(n, 31), waggle.WithSynchronous(), waggle.WithSeed(31))
		if err != nil {
			return nil, err
		}
		for _, m := range msgs {
			if err := s.Send(m.From, m.To, m.Payload); err != nil {
				return nil, err
			}
		}
		delivered, steps, err := s.RunUntilQuiet(stepBudget)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", pattern, err)
		}
		if len(delivered) != len(msgs) {
			return nil, fmt.Errorf("%v: delivered %d of %d", pattern, len(delivered), len(msgs))
		}
		bits := workload.TotalBits(msgs)
		tbl.AddRow(pattern.String(), n, len(msgs), bits, steps, float64(bits)/float64(steps))
	}
	return tbl, nil
}
