package sweep

import (
	"reflect"
	"testing"

	"waggle"
)

// TestChaosTableDeterministic: two runs of the full scenario table at
// the same seed produce byte-identical CSV reports.
func TestChaosTableDeterministic(t *testing.T) {
	a, err := ChaosTable(1, waggle.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChaosTable(1, waggle.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if a.CSV() != b.CSV() {
		t.Errorf("chaos reports differ between identical runs:\n%s\nvs\n%s", a.CSV(), b.CSV())
	}
}

// TestChaosEngineIndependence: the sequential and the parallel engine
// produce byte-identical movement traces and identical reports for the
// same scenario and seed — fault injection included. Run with -race
// this also exercises the concurrent PerturbView path.
func TestChaosEngineIndependence(t *testing.T) {
	for _, name := range []string{"crash-sync", "combined"} {
		var sc ChaosScenario
		found := false
		for _, c := range ChaosScenarios(1) {
			if c.Name == name {
				sc, found = c, true
				break
			}
		}
		if !found {
			t.Fatalf("scenario %q missing", name)
		}
		seq, err := RunChaosScenario(sc, waggle.EngineSequential, true)
		if err != nil {
			t.Fatal(err)
		}
		par, err := RunChaosScenario(sc, waggle.EngineParallel, true)
		if err != nil {
			t.Fatal(err)
		}
		if seq.TraceCSV == "" || seq.TraceCSV != par.TraceCSV {
			t.Errorf("%s: engines disagree on the movement trace", name)
		}
		seq.TraceCSV, par.TraceCSV = "", ""
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: engines disagree on the report:\n%+v\nvs\n%+v", name, seq, par)
		}
	}
}

// TestChaosScenarioOutcomes pins the qualitative behaviour of every
// scenario: all recover after their fault window, the radio scenarios
// drive the self-healing messenger through its full lifecycle, and the
// crash scenarios deliver what the model says must survive.
func TestChaosScenarioOutcomes(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range ChaosScenarios(1) {
		r, err := RunChaosScenario(sc, waggle.EngineAuto, false)
		if err != nil {
			t.Fatal(err)
		}
		seen[sc.Name] = true
		if r.StepsToRecover < 0 {
			t.Errorf("%s: no post-fault message delivered (steps-to-recover %d)", sc.Name, r.StepsToRecover)
		}
		if r.Delivered == 0 || r.Sent < 3 {
			t.Errorf("%s: implausible traffic: %+v", sc.Name, r)
		}
		switch sc.Family {
		case "radio", "combined":
			if r.Retries < 1 || r.Failovers < 1 || r.Failbacks < 1 || r.ImplicitAcks < 1 {
				t.Errorf("%s: messenger lifecycle incomplete: %+v", sc.Name, r)
			}
			if r.Rate() != 1 {
				t.Errorf("%s: self-healing messenger lost traffic: %+v", sc.Name, r)
			}
		default:
			if r.Retries != 0 || r.Failovers != 0 {
				t.Errorf("%s: radio counters on a radioless scenario: %+v", sc.Name, r)
			}
		}
		switch sc.Name {
		case "crash-sync":
			// The in-flight frame is lost at the epoch boundary; the
			// queued-but-unstarted message and the post-recovery probe
			// survive.
			if r.Delivered != 3 {
				t.Errorf("crash-sync delivered %d, want 3 (in-flight frame lost)", r.Delivered)
			}
		case "crash-async":
			// AsyncN tolerates a crash window by construction.
			if r.Rate() != 1 {
				t.Errorf("crash-async rate %v, want 1", r.Rate())
			}
		}
	}
	if len(seen) < 6 {
		t.Errorf("only %d scenarios scripted, want at least 6", len(seen))
	}
	families := map[string]bool{}
	for _, sc := range ChaosScenarios(1) {
		families[sc.Family] = true
	}
	for _, f := range []string{"crash", "displacement", "observation", "movement", "radio", "combined"} {
		if !families[f] {
			t.Errorf("fault family %q not covered", f)
		}
	}
}

// TestChaosSeedSensitivity: a different seed changes the configuration
// and schedules, so at least something in the table moves — the
// determinism is per-seed, not a constant table.
func TestChaosSeedSensitivity(t *testing.T) {
	a, err := ChaosTable(1, waggle.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChaosTable(2, waggle.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if a.CSV() == b.CSV() {
		t.Error("tables identical across seeds; the seed is not wired through")
	}
}

// TestChaosRegistry: the sweep registry exposes the chaos table.
func TestChaosRegistry(t *testing.T) {
	names := Names()
	found := false
	for _, n := range names {
		if n == "chaos" {
			found = true
		}
	}
	if !found {
		t.Fatalf("chaos missing from sweep names %v", names)
	}
	tbl, err := Run("chaos")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.CSV() == "" {
		t.Error("empty chaos table from the registry")
	}
}

// TestChaosKillAndResume is the checkpoint acceptance check at the
// chaos level: killing the whole stack mid-plan — inside active fault
// windows, with messenger retries in flight — serializing it, and
// resuming from the bytes must reproduce the uninterrupted run
// byte-for-byte, trace included, under both engines.
func TestChaosKillAndResume(t *testing.T) {
	for _, tc := range []struct {
		scenario string
		killAt   int
	}{
		{"radio-outage", 200}, // mid-outage, retries pending
		{"combined", 150},     // crash + outage + ramp all active
		{"crash-sync", 120},   // no radio: swarm-only restore path
	} {
		for _, engine := range []waggle.EngineMode{waggle.EngineSequential, waggle.EngineParallel} {
			sc, err := FindChaosScenario(tc.scenario, 1)
			if err != nil {
				t.Fatal(err)
			}
			want, err := RunChaosScenario(sc, engine, true)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunChaosScenarioResumed(sc, engine, tc.killAt)
			if err != nil {
				t.Fatalf("%s killAt=%d: %v", tc.scenario, tc.killAt, err)
			}
			if got.TraceCSV == "" || got.TraceCSV != want.TraceCSV {
				t.Errorf("%s (engine %v): resumed trace differs from uninterrupted run", tc.scenario, engine)
			}
			got.TraceCSV, want.TraceCSV = "", ""
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s (engine %v): resumed report differs:\n%+v\nvs\n%+v", tc.scenario, engine, got, want)
			}
		}
	}
}
