// Package sweep runs the parameter-sweep experiments of DESIGN.md §4
// (C3, C4, C5, C6, C8 plus latency scaling) and formats them as tables.
// cmd/waggle-sweep prints them; EXPERIMENTS.md records their outputs;
// the root bench suite exercises the same code paths under testing.B.
package sweep

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"

	"waggle"
	"waggle/internal/encoding"
	"waggle/internal/figures"
	"waggle/internal/render"
)

// stepBudget bounds every individual run.
const stepBudget = 20_000_000

// Run executes the named experiment.
func Run(name string) (*render.Table, error) {
	switch name {
	case "levels":
		return Levels()
	case "slices":
		return Slices()
	case "drift":
		return Drift()
	case "silence":
		return Silence()
	case "backup":
		return Backup()
	case "latency":
		return Latency()
	case "msgsize":
		return MessageSize()
	case "throughput":
		return Throughput()
	case "resolution":
		return Resolution()
	case "onetoall":
		return OneToAll()
	case "visibility":
		return Visibility()
	case "ablation-stepdivisor":
		return AblationStepDivisor()
	case "ablation-amplitude":
		return AblationAmplitude()
	case "ablation-activation":
		return AblationActivation()
	case "chaos":
		return Chaos()
	default:
		return nil, fmt.Errorf("sweep: unknown experiment %q (try: %v)", name, Names())
	}
}

// Names lists the available experiments.
func Names() []string {
	return []string{
		"levels", "slices", "drift", "silence", "backup", "latency", "msgsize",
		"throughput", "resolution", "onetoall", "visibility",
		"ablation-stepdivisor", "ablation-amplitude", "ablation-activation",
		"chaos",
	}
}

// positionsFor draws a benchmark configuration from the shared
// grid-backed placement helper (figures.RandomConfiguration, built on
// spatial.Placer): identical accept/reject decisions to the old O(n²)
// rejection scan, so the sweep tables are unchanged.
func positionsFor(n int, seed int64) []waggle.Point {
	rng := rand.New(rand.NewSource(seed))
	raw := figures.RandomConfiguration(rng, n, float64(n)*12, 8)
	out := make([]waggle.Point, n)
	for i, p := range raw {
		out[i] = waggle.Point{X: p.X, Y: p.Y}
	}
	return out
}

// Levels is experiment C3: §3.1's amplitude-level coding. k levels carry
// log2(k) bits per excursion, so delivery steps shrink by that factor.
func Levels() (*render.Table, error) {
	msg := bytes.Repeat([]byte{0xA7}, 32)
	tbl := render.NewTable("swarm", "levels", "bits/excursion", "steps", "speedup vs binary")
	run := func(variant string, positions []waggle.Point, k int) (int, error) {
		opts := []waggle.Option{waggle.WithSynchronous(), waggle.WithSeed(1)}
		if k > 0 {
			opts = append(opts, waggle.WithLevels(k))
		}
		s, err := waggle.NewSwarm(positions, opts...)
		if err != nil {
			return 0, err
		}
		if err := s.Send(0, 1, msg); err != nil {
			return 0, err
		}
		_, steps, err := s.RunUntilDelivered(1, stepBudget)
		if err != nil {
			return 0, fmt.Errorf("%s levels=%d: %w", variant, k, err)
		}
		return steps, nil
	}
	two := []waggle.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	var base float64
	for _, k := range []int{2, 4, 16, 64, 256} {
		steps, err := run("sync2", two, k)
		if err != nil {
			return nil, err
		}
		if k == 2 {
			base = float64(steps)
		}
		tbl.AddRow("2 robots (§3.1)", k, bitsPer(k), steps, base/float64(steps))
	}
	// The n-robot composition: signed excursion lengths on the
	// recipient's diameter.
	nPos := positionsFor(6, 19)
	var baseN float64
	for _, k := range []int{0, 4, 16} {
		steps, err := run("syncn", nPos, k)
		if err != nil {
			return nil, err
		}
		if k == 0 {
			baseN = float64(steps)
			tbl.AddRow("6 robots (plain §3.2-3.4)", 0, 1, steps, 1.0)
			continue
		}
		tbl.AddRow("6 robots (levels composition)", k, bitsPer(k), steps, baseN/float64(steps))
	}
	return tbl, nil
}

func bitsPer(k int) int {
	b := 0
	for v := k; v > 1; v >>= 1 {
		b++
	}
	return b
}

// Slices is experiment C4: the §5 trade-off between granular slices and
// transmission steps. The direct protocol uses n+1 diameters and sends a
// message in frameBits excursions; the bounded variant uses k+2
// diameters and pays a ⌈log_k n⌉-excursion prelude.
func Slices() (*render.Table, error) {
	msg := []byte{0x5C}
	frameBits := 16 + 8*len(msg)
	tbl := render.NewTable("n", "variant", "diameters", "excursions/msg", "steps")
	for _, n := range []int{8, 16, 32} {
		positions := positionsFor(n, int64(n))
		run := func(opts ...waggle.Option) (int, int, error) {
			s, err := waggle.NewSwarm(positions, append(opts, waggle.WithSeed(int64(n)))...)
			if err != nil {
				return 0, 0, err
			}
			if err := s.Send(0, n-1, msg); err != nil {
				return 0, 0, err
			}
			_, steps, err := s.RunUntilDelivered(1, stepBudget)
			if err != nil {
				return 0, 0, err
			}
			return s.SentBits(0), steps, nil
		}
		exc, steps, err := run()
		if err != nil {
			return nil, fmt.Errorf("direct n=%d: %w", n, err)
		}
		tbl.AddRow(n, "direct (§4.2)", n+1, exc, steps)
		for _, k := range []int{2, 4} {
			exc, steps, err := run(waggle.WithBoundedSlices(k))
			if err != nil {
				return nil, fmt.Errorf("bounded n=%d k=%d: %w", n, k, err)
			}
			wantExc := frameBits + encoding.IndexCodeLen(n, k)
			variant := fmt.Sprintf("bounded k=%d (§5)", k)
			if exc != wantExc {
				variant += " (!)"
			}
			tbl.AddRow(n, variant, k+2, exc, steps)
		}
	}
	return tbl, nil
}

// Drift is experiment C6: the §4.1 drawback. The base Async2 drifts
// apart without bound; the alternating variant stays near the initial
// separation at the cost of infinitesimally small movements.
func Drift() (*render.Table, error) {
	tbl := render.NewTable("variant", "messages", "steps", "final separation", "min distance")
	for _, alt := range []bool{false, true} {
		opts := []waggle.Option{waggle.WithSeed(3), waggle.WithTrace()}
		name := "drift-away (§4.1 base)"
		if alt {
			opts = append(opts, waggle.WithAlternatingDrift())
			name = "alternating (§4.1 variant)"
		}
		s, err := waggle.NewSwarm([]waggle.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}, opts...)
		if err != nil {
			return nil, err
		}
		const messages = 4
		for m := 0; m < messages; m++ {
			if err := s.Send(0, 1, []byte{byte(m)}); err != nil {
				return nil, err
			}
		}
		_, steps, err := s.RunUntilDelivered(messages, stepBudget)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		pos := s.Positions()
		dx, dy := pos[0].X-pos[1].X, pos[0].Y-pos[1].Y
		sep := dx*dx + dy*dy
		tbl.AddRow(name, messages, steps, math.Sqrt(sep), s.MinPairwiseDistance())
	}
	return tbl, nil
}

// Silence is experiment C5: synchronous protocols are silent (idle
// robots never move); asynchronous protocols are provably not
// (Remark 4.3).
func Silence() (*render.Table, error) {
	tbl := render.NewTable("setting", "protocol", "idle robot distance", "silent")
	for _, sync := range []bool{true, false} {
		opts := []waggle.Option{waggle.WithSeed(5), waggle.WithTrace()}
		if sync {
			opts = append(opts, waggle.WithSynchronous())
		}
		s, err := waggle.NewSwarm(positionsFor(5, 9), opts...)
		if err != nil {
			return nil, err
		}
		if err := s.Send(0, 1, []byte("S")); err != nil {
			return nil, err
		}
		if _, _, err := s.RunUntilDelivered(1, stepBudget); err != nil {
			return nil, err
		}
		idle := s.TotalDistance(3) // robot 3 neither sends nor receives
		tbl.AddRow(settingName(sync), s.Protocol().String(), idle, idle == 0)
	}
	return tbl, nil
}

func settingName(sync bool) string {
	if sync {
		return "synchronous (§3)"
	}
	return "asynchronous (§4)"
}

// Backup is experiment C8: movement signalling as a wireless backup.
// As jamming grows, the share of traffic carried by movement grows to
// 100% while overall delivery stays at 100%.
func Backup() (*render.Table, error) {
	tbl := render.NewTable("jam probability", "messages", "via radio", "via movement", "delivered", "steps")
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		s, err := waggle.NewSwarm(positionsFor(4, 11), waggle.WithSynchronous(), waggle.WithSeed(11))
		if err != nil {
			return nil, err
		}
		radio := waggle.NewRadio(s.N(), 42)
		if err := radio.SetJamming(p); err != nil {
			return nil, err
		}
		bm, err := waggle.NewBackupMessenger(radio, s)
		if err != nil {
			return nil, err
		}
		const messages = 12
		for m := 0; m < messages; m++ {
			if err := bm.Send(m%4, (m+1)%4, []byte{byte(m)}); err != nil {
				return nil, err
			}
		}
		// Radio deliveries are instantaneous; drain the movement channel.
		moved, steps, err := s.RunUntilQuiet(stepBudget)
		if err != nil {
			return nil, err
		}
		viaRadio, viaMovement := bm.Stats()
		delivered := viaRadio + len(moved)
		tbl.AddRow(p, messages, viaRadio, viaMovement, delivered, steps)
	}
	return tbl, nil
}

// Latency measures delivery steps against swarm size for both settings:
// synchronous cost stays flat at two instants per bit (routing is
// positional, not hop-by-hop), while the asynchronous cost grows with n
// because every bit waits for every robot to move twice.
func Latency() (*render.Table, error) {
	msg := []byte{0xEE}
	tbl := render.NewTable("n", "sync steps", "async steps", "async/sync")
	for _, n := range []int{2, 4, 8, 16, 32} {
		positions := positionsFor(n, int64(100+n))
		runOne := func(sync bool) (int, error) {
			opts := []waggle.Option{waggle.WithSeed(int64(n))}
			if sync {
				opts = append(opts, waggle.WithSynchronous())
			}
			if n == 2 {
				// Compare like with like: the n-robot protocols.
				opts = append(opts, waggle.WithProtocol(protoFor(sync)))
			}
			s, err := waggle.NewSwarm(positions, opts...)
			if err != nil {
				return 0, err
			}
			if err := s.Send(0, n-1, msg); err != nil {
				return 0, err
			}
			_, steps, err := s.RunUntilDelivered(1, stepBudget)
			return steps, err
		}
		syncSteps, err := runOne(true)
		if err != nil {
			return nil, fmt.Errorf("sync n=%d: %w", n, err)
		}
		asyncSteps, err := runOne(false)
		if err != nil {
			return nil, fmt.Errorf("async n=%d: %w", n, err)
		}
		tbl.AddRow(n, syncSteps, asyncSteps, float64(asyncSteps)/float64(syncSteps))
	}
	return tbl, nil
}

func protoFor(sync bool) waggle.Protocol {
	if sync {
		return waggle.ProtoSyncN
	}
	return waggle.ProtoAsyncN
}

// MessageSize measures delivery steps against payload length: linear in
// both settings (each bit costs a constant number of excursions).
func MessageSize() (*render.Table, error) {
	tbl := render.NewTable("payload bytes", "frame bits", "sync steps", "steps/bit")
	for _, size := range []int{1, 4, 16, 64, 256} {
		msg := bytes.Repeat([]byte{0b10110010}, size)
		s, err := waggle.NewSwarm(positionsFor(4, 13), waggle.WithSynchronous(), waggle.WithSeed(13))
		if err != nil {
			return nil, err
		}
		if err := s.Send(0, 2, msg); err != nil {
			return nil, err
		}
		_, steps, err := s.RunUntilDelivered(1, stepBudget)
		if err != nil {
			return nil, err
		}
		frameBits := 16 + 8*size
		tbl.AddRow(size, frameBits, steps, float64(steps)/float64(frameBits))
	}
	return tbl, nil
}
