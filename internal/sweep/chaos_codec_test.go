package sweep

import (
	"reflect"
	"testing"

	"waggle"
)

// TestChaosResumedAllCodecs is the cross-codec determinism property:
// for EVERY chaos scenario, under both engines, a run killed mid-plan
// and restored from a checkpoint — serialized as the JSON v1 envelope,
// as a v2 binary snapshot, or as a real base + delta-frame chain
// written by the periodic CheckpointWriter — continues byte-identically
// to the uninterrupted run. The restore path itself re-captures state
// and requires deep equality, so a fold or codec bug fails the restore
// rather than corrupting the continuation.
func TestChaosResumedAllCodecs(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario × engine × codec sweep")
	}
	engines := []waggle.EngineMode{waggle.EngineSequential, waggle.EngineParallel}
	codecs := []waggle.CheckpointCodec{waggle.CodecJSON, waggle.CodecBinary, waggle.CodecDelta}
	for _, sc := range ChaosScenarios(1) {
		for _, engine := range engines {
			killAt := sc.Budget / 2
			want, err := RunChaosScenario(sc, engine, true)
			if err != nil {
				t.Fatalf("%s (engine %v): baseline: %v", sc.Name, engine, err)
			}
			for _, codec := range codecs {
				got, err := RunChaosScenarioResumedCodec(sc, engine, killAt, codec)
				if err != nil {
					t.Fatalf("%s (engine %v, codec %v): %v", sc.Name, engine, codec, err)
				}
				if got.TraceCSV == "" || got.TraceCSV != want.TraceCSV {
					t.Errorf("%s (engine %v, codec %v): resumed trace differs from the uninterrupted run", sc.Name, engine, codec)
				}
				gotCopy, wantCopy := *got, *want
				gotCopy.TraceCSV, wantCopy.TraceCSV = "", ""
				if !reflect.DeepEqual(&gotCopy, &wantCopy) {
					t.Errorf("%s (engine %v, codec %v): resumed report differs:\n%+v\nvs\n%+v", sc.Name, engine, codec, got, want)
				}
			}
		}
	}
}
