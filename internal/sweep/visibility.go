package sweep

import (
	"fmt"
	"math"

	"waggle/internal/geom"
	"waggle/internal/protocol"
	"waggle/internal/render"
	"waggle/internal/sim"
)

// Visibility probes the §5 open problem — "Can one-to-one communication
// be achieved by a team of robots with limited visibility?" — by
// running the unmodified full-visibility protocols on robots whose
// sensors are range-limited. The protocols' preprocessing (granulars,
// SEC naming) and change counting silently consume censored views, so
// delivery collapses once the sensor radius falls below the swarm
// diameter: a measured statement of why the problem is open, not a
// solution to it.
func Visibility() (*render.Table, error) {
	n := 6
	positions := ablationPositions(n, 61)
	// Swarm diameter for reference.
	diameter := 0.0
	for i := range positions {
		for j := i + 1; j < len(positions); j++ {
			diameter = math.Max(diameter, positions[i].Dist(positions[j]))
		}
	}
	tbl := render.NewTable("sensor radius / diameter", "delivered")
	for _, frac := range []float64{1.1, 0.8, 0.5, 0.3} {
		ok, err := visibilityDelivered(positions, frac*diameter)
		if err != nil {
			return nil, fmt.Errorf("radius %.1f: %w", frac, err)
		}
		tbl.AddRow(frac, ok)
	}
	return tbl, nil
}

func visibilityDelivered(positions []geom.Point, radius float64) (bool, error) {
	n := len(positions)
	behaviors, endpoints, err := protocol.NewSyncN(n, protocol.SyncNConfig{})
	if err != nil {
		return false, err
	}
	robots := make([]*sim.Robot, n)
	for i := range robots {
		robots[i] = &sim.Robot{
			Frame:     geom.WorldFrame(),
			Sigma:     1e18,
			VisRadius: radius,
			Behavior:  behaviors[i],
		}
	}
	world, err := sim.NewWorld(sim.Config{Positions: positions, Robots: robots})
	if err != nil {
		return false, err
	}
	payload := []byte{0x44}
	if err := endpoints[0].Send(n-1, payload); err != nil {
		return false, err
	}
	delivered := false
	_, _, err = world.Run(sim.Synchronous{}, 50_000, func(*sim.World) bool {
		for _, r := range endpoints[n-1].Receive() {
			if r.From == 0 && string(r.Payload) == string(payload) {
				delivered = true
			}
		}
		return delivered
	})
	if err != nil {
		return false, err
	}
	return delivered, nil
}
