package sweep

import (
	"fmt"

	"waggle/internal/figures"
	"waggle/internal/geom"
	"waggle/internal/protocol"
	"waggle/internal/render"
	"waggle/internal/sim"

	"math/rand"
)

// Ablations run the design-choice sweeps DESIGN.md calls out: the
// asynchronous step divisor (x > 1 of §4.2), the synchronous excursion
// amplitude, and the scheduler activation probability. They operate on
// the internal protocol layer directly because the knobs are
// deliberately not part of the public facade.

func ablationPositions(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	return figures.RandomConfiguration(rng, n, float64(n)*12, 8)
}

func runAsyncN(positions []geom.Point, cfg protocol.AsyncNConfig, scheduler sim.Scheduler, payload []byte) (steps int, minDist float64, err error) {
	n := len(positions)
	behaviors, endpoints, err := protocol.NewAsyncN(n, cfg)
	if err != nil {
		return 0, 0, err
	}
	robots := make([]*sim.Robot, n)
	for i := range robots {
		robots[i] = &sim.Robot{Frame: geom.WorldFrame(), Sigma: 1e18, Behavior: behaviors[i]}
	}
	world, err := sim.NewWorld(sim.Config{Positions: positions, Robots: robots, RecordTrace: true})
	if err != nil {
		return 0, 0, err
	}
	if err := endpoints[0].Send(n-1, payload); err != nil {
		return 0, 0, err
	}
	delivered := false
	steps, _, err = world.Run(scheduler, stepBudget, func(*sim.World) bool {
		if delivered {
			return true
		}
		for _, r := range endpoints[n-1].Receive() {
			if string(r.Payload) == string(payload) {
				delivered = true
			}
		}
		return delivered
	})
	if err != nil {
		return 0, 0, err
	}
	if !delivered {
		return 0, 0, fmt.Errorf("sweep: not delivered in %d steps", stepBudget)
	}
	return steps, world.Trace().MinPairwiseDistance(), nil
}

// AblationStepDivisor sweeps §4.2's x > 1: small divisors approach the
// granular border quickly (long visible moves), large divisors keep
// moves tiny. Delivery time is insensitive — the waiting, not the
// moving, dominates — which is why the library defaults to a
// border-safe 8.
func AblationStepDivisor() (*render.Table, error) {
	tbl := render.NewTable("step divisor", "steps", "min distance")
	positions := ablationPositions(5, 21)
	for _, x := range []float64{1.5, 2, 4, 8, 32} {
		steps, minDist, err := runAsyncN(positions,
			protocol.AsyncNConfig{StepDivisor: x},
			sim.FirstSync{Inner: sim.NewRandomFair(2)},
			[]byte{0xD1})
		if err != nil {
			return nil, fmt.Errorf("divisor %v: %w", x, err)
		}
		tbl.AddRow(x, steps, minDist)
	}
	return tbl, nil
}

// AblationAmplitude sweeps the synchronous excursion amplitude as a
// fraction of the granular radius: delivery cost is flat (the decoder
// is threshold-based), while the worst-case approach between robots
// scales linearly — quantifying the safety margin the 0.6 default buys.
func AblationAmplitude() (*render.Table, error) {
	tbl := render.NewTable("amplitude frac", "steps", "min distance")
	positions := ablationPositions(6, 23)
	for _, frac := range []float64{0.1, 0.3, 0.6, 0.9} {
		n := len(positions)
		behaviors, endpoints, err := protocol.NewSyncN(n, protocol.SyncNConfig{AmplitudeFrac: frac})
		if err != nil {
			return nil, err
		}
		robots := make([]*sim.Robot, n)
		for i := range robots {
			robots[i] = &sim.Robot{Frame: geom.WorldFrame(), Sigma: 1e18, Behavior: behaviors[i]}
		}
		world, err := sim.NewWorld(sim.Config{Positions: positions, Robots: robots, RecordTrace: true})
		if err != nil {
			return nil, err
		}
		// All-to-all traffic maximises simultaneous excursions.
		for i := 0; i < n; i++ {
			if err := endpoints[i].Broadcast([]byte{byte(i)}); err != nil {
				return nil, err
			}
		}
		want := n * (n - 1)
		got := 0
		steps, _, err := world.Run(sim.Synchronous{}, stepBudget, func(*sim.World) bool {
			for _, e := range endpoints {
				got += len(e.Receive())
			}
			return got >= want
		})
		if err != nil {
			return nil, err
		}
		if got < want {
			return nil, fmt.Errorf("amplitude %v: %d of %d delivered", frac, got, want)
		}
		tbl.AddRow(frac, steps, world.Trace().MinPairwiseDistance())
	}
	return tbl, nil
}

// AblationActivation sweeps the random fair scheduler's activation
// probability: sparse activation stretches asynchronous delivery
// because each implicit acknowledgement waits for two observed changes
// of every robot.
func AblationActivation() (*render.Table, error) {
	tbl := render.NewTable("activation p", "steps")
	positions := ablationPositions(5, 25)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		inner := sim.NewRandomFair(3)
		inner.P = p
		steps, _, err := runAsyncN(positions,
			protocol.AsyncNConfig{},
			sim.FirstSync{Inner: inner},
			[]byte{0xD2})
		if err != nil {
			return nil, fmt.Errorf("p=%v: %w", p, err)
		}
		tbl.AddRow(p, steps)
	}
	return tbl, nil
}
