// Shard extraction and deterministic merge: the pieces of the chaos
// and sweep harnesses the waggle-queen orchestrator distributes.
//
// A shard is one scenario (or one sweep experiment) run to completion.
// Chaos shards are migratable mid-run: ChaosShardRun drives a scenario
// in chunks, folding the stack into a delta checkpoint chain
// (internal/ckpt + internal/wire) between chunks, and Snapshot wraps
// the chain with the harness-side message ledger so ANOTHER process
// can pick the run up exactly where it stopped — the paper's robots
// coordinate through observable state alone, and so do the queen's
// workers: the snapshot artifact is the only channel between them.
// Kill-and-resume byte-identity is already proven by the chaos
// harness (RunChaosScenarioResumedCodec), which makes work-stealing
// safe: a stolen shard produces the same bytes as an undisturbed one.
//
// The merge side is the dual: results arrive in completion order from
// any number of workers, and MergeChaosReport/MergeSweepReport emit
// them in the canonical single-process order, so the merged report is
// byte-identical to the report the unsharded CLI writes.
package sweep

import (
	"encoding/json"
	"fmt"
	"os"

	"waggle"
)

// ShardSnapshotSchema versions the migratable shard-state envelope.
const ShardSnapshotSchema = "waggle-queen-shard/v1"

// shardSnap is the wire form of an interrupted chaos shard: the
// harness-side ledger plus the stack's checkpoint chain. Stack holds
// the raw bytes of a delta chain file (or any format LoadCheckpoint
// auto-detects).
type shardSnap struct {
	Schema string `json:"schema"`
	Name   string `json:"name"`
	// T is the next undriven instant: the resumed run continues with
	// drive(T, Budget).
	T      int  `json:"t"`
	Cursor int  `json:"cursor"`
	Done   bool `json:"done"`
	// SentAt/DeliveredAt mirror the chaosMsg ledger, indexed like
	// the scenario's Sends (-1 = not yet).
	SentAt      []int  `json:"sent_at"`
	DeliveredAt []int  `json:"delivered_at"`
	Stack       []byte `json:"stack"`
}

// ChaosShardRun is one chaos scenario being driven in resumable
// chunks — the unit of work a queen worker executes. The zero value is
// unusable; construct with NewChaosShardRun or ResumeChaosShardRun.
type ChaosShardRun struct {
	sc     ChaosScenario
	engine waggle.EngineMode
	r      *chaosRun
	obsv   *waggle.Observer
	t      int
	cw     *waggle.CheckpointWriter
}

// NewChaosShardRun starts a fresh shard run of sc with its own
// observer attached, so the eventual Result carries the same obs
// rollup ChaosReportFor computes single-process.
func NewChaosShardRun(sc ChaosScenario, engine waggle.EngineMode) (*ChaosShardRun, error) {
	obsv := waggle.NewObserver()
	r, err := newChaosRun(sc, engine, false, obsv)
	if err != nil {
		return nil, err
	}
	return &ChaosShardRun{sc: sc, engine: engine, r: r, obsv: obsv}, nil
}

// ResumeChaosShardRun rebuilds an interrupted shard from a Snapshot
// taken by any process: the stack is restored from the embedded
// checkpoint chain (replay-verified, byte-identical continuation) and
// the harness ledger is seated as saved. sc must be the same scenario
// the snapshot was taken from — same name and seed.
func ResumeChaosShardRun(sc ChaosScenario, engine waggle.EngineMode, snap []byte) (*ChaosShardRun, error) {
	var ss shardSnap
	if err := json.Unmarshal(snap, &ss); err != nil {
		return nil, fmt.Errorf("chaos %s: shard snapshot: %w", sc.Name, err)
	}
	if ss.Schema != ShardSnapshotSchema {
		return nil, fmt.Errorf("chaos %s: shard snapshot schema %q, want %q", sc.Name, ss.Schema, ShardSnapshotSchema)
	}
	if ss.Name != sc.Name {
		return nil, fmt.Errorf("chaos %s: shard snapshot is of scenario %q", sc.Name, ss.Name)
	}
	if len(ss.SentAt) != len(sc.Sends) || len(ss.DeliveredAt) != len(sc.Sends) {
		return nil, fmt.Errorf("chaos %s: shard snapshot ledger has %d/%d entries, want %d",
			sc.Name, len(ss.SentAt), len(ss.DeliveredAt), len(sc.Sends))
	}
	// LoadCheckpoint wants a file (chain folding is format-sniffed on
	// open); round-trip the bytes through a private temp file.
	tmp, err := os.CreateTemp("", "waggle-shard-*.wck")
	if err != nil {
		return nil, fmt.Errorf("chaos %s: %w", sc.Name, err)
	}
	path := tmp.Name()
	defer os.Remove(path)
	if _, err := tmp.Write(ss.Stack); err != nil {
		tmp.Close()
		return nil, fmt.Errorf("chaos %s: %w", sc.Name, err)
	}
	if err := tmp.Close(); err != nil {
		return nil, fmt.Errorf("chaos %s: %w", sc.Name, err)
	}
	ck, err := waggle.LoadCheckpoint(path)
	if err != nil {
		return nil, fmt.Errorf("chaos %s: shard snapshot stack: %w", sc.Name, err)
	}
	res, err := waggle.Restore(ck, waggle.RestoreWithEngine(engine))
	if err != nil {
		return nil, fmt.Errorf("chaos %s: %w", sc.Name, err)
	}
	if res.Observer == nil {
		return nil, fmt.Errorf("chaos %s: shard snapshot stack has no observer (not a shard checkpoint)", sc.Name)
	}
	msgs := make([]chaosMsg, len(sc.Sends))
	for i, m := range sc.Sends {
		msgs[i] = chaosMsg{send: m, sentAt: ss.SentAt[i], deliveredAt: ss.DeliveredAt[i]}
	}
	r := &chaosRun{
		sc: sc, trace: false,
		s: res.Swarm, bm: res.Messenger, radio: res.Radio,
		msgs: msgs, cursor: ss.Cursor, done: ss.Done,
	}
	return &ChaosShardRun{sc: sc, engine: engine, r: r, obsv: res.Observer, t: ss.T}, nil
}

// T returns the next undriven instant.
func (cs *ChaosShardRun) T() int { return cs.t }

// Budget returns the scenario's instant budget.
func (cs *ChaosShardRun) Budget() int { return cs.sc.Budget }

// Done reports whether every scheduled message is accounted for (the
// run may stop before the budget).
func (cs *ChaosShardRun) Done() bool { return cs.r.done }

// Finished reports whether the run has nothing left to drive: done, or
// budget exhausted.
func (cs *ChaosShardRun) Finished() bool { return cs.r.done || cs.t >= cs.sc.Budget }

// DriveTo advances the run through instant until-1 (clamped to the
// budget). Chunked driving is equivalent to one uninterrupted drive —
// the invariant the chaos delta-resume tests pin.
func (cs *ChaosShardRun) DriveTo(until int) error {
	if until > cs.sc.Budget {
		until = cs.sc.Budget
	}
	if until <= cs.t {
		return nil
	}
	if err := cs.r.drive(cs.t, until); err != nil {
		return err
	}
	cs.t = until
	return nil
}

// Snapshot folds the stack into the delta chain at chainPath (created
// on first use; appended thereafter) and returns the migratable shard
// state: chain bytes plus the harness ledger. The returned bytes are
// self-contained — ResumeChaosShardRun needs nothing else.
func (cs *ChaosShardRun) Snapshot(chainPath string) ([]byte, error) {
	if cs.cw == nil {
		cw, err := cs.r.s.NewCheckpointWriter(chainPath, waggle.CodecDelta)
		if err != nil {
			return nil, fmt.Errorf("chaos %s: %w", cs.sc.Name, err)
		}
		cs.cw = cw
	}
	if err := cs.cw.Save(); err != nil {
		return nil, fmt.Errorf("chaos %s: %w", cs.sc.Name, err)
	}
	stack, err := os.ReadFile(chainPath)
	if err != nil {
		return nil, fmt.Errorf("chaos %s: %w", cs.sc.Name, err)
	}
	ss := shardSnap{
		Schema: ShardSnapshotSchema,
		Name:   cs.sc.Name,
		T:      cs.t,
		Cursor: cs.r.cursor,
		Done:   cs.r.done,
		Stack:  stack,
	}
	ss.SentAt = make([]int, len(cs.r.msgs))
	ss.DeliveredAt = make([]int, len(cs.r.msgs))
	for i := range cs.r.msgs {
		ss.SentAt[i] = cs.r.msgs[i].sentAt
		ss.DeliveredAt[i] = cs.r.msgs[i].deliveredAt
	}
	return json.Marshal(ss)
}

// Result summarizes the finished run, obs rollup included — identical
// to what RunChaosScenarioObserved reports for an uninterrupted run,
// even when the shard was snapshot-migrated mid-way (restore replays
// the input log, so the deterministic counters are fully rebuilt).
func (cs *ChaosShardRun) Result() (*ChaosResult, error) {
	res, err := cs.r.result()
	if err != nil {
		return nil, err
	}
	res.Obs = ObsRollup{}
	for _, c := range cs.obsv.DeterministicSnapshot().Counters {
		if c.Value != 0 {
			res.Obs[c.Name] = c.Value
		}
	}
	return res, nil
}

// ChaosScenarioNames lists the scenario names in canonical (report)
// order — the shard decomposition of a chaos campaign.
func ChaosScenarioNames(seed int64) []string {
	all := ChaosScenarios(seed)
	names := make([]string, len(all))
	for i, sc := range all {
		names[i] = sc.Name
	}
	return names
}

// MergeChaosReport assembles the canonical chaos report from
// per-scenario results completed in any order by any number of
// workers. names selects the campaign's scenarios (nil = all); the
// output orders results exactly as the single-process ChaosReportFor
// run would, so the merged report is byte-identical to it regardless
// of worker count, completion order, or mid-shard migrations.
func MergeChaosReport(seed int64, engine waggle.EngineMode, names []string, results map[string]ChaosResult) (*ChaosReport, error) {
	want := map[string]bool{}
	if names == nil {
		for _, n := range ChaosScenarioNames(seed) {
			want[n] = true
		}
	} else {
		valid := map[string]bool{}
		for _, n := range ChaosScenarioNames(seed) {
			valid[n] = true
		}
		for _, n := range names {
			if !valid[n] {
				return nil, fmt.Errorf("sweep: merge: unknown chaos scenario %q", n)
			}
			want[n] = true
		}
	}
	for n := range results {
		if !want[n] {
			return nil, fmt.Errorf("sweep: merge: result for scenario %q outside the campaign", n)
		}
	}
	report := &ChaosReport{
		Schema:  ChaosReportSchema,
		Seed:    seed,
		Engine:  engineName(engine),
		Results: []ChaosResult{},
	}
	for _, sc := range ChaosScenarios(seed) {
		if !want[sc.Name] {
			continue
		}
		r, ok := results[sc.Name]
		if !ok {
			return nil, fmt.Errorf("sweep: merge: scenario %q has no result", sc.Name)
		}
		report.Results = append(report.Results, r)
	}
	return report, nil
}

// MergeSweepReport assembles the canonical sweep report from
// per-experiment tables completed in any order: tables are emitted in
// the request order of names, matching the single-process waggle-sweep
// -o output byte-for-byte.
func MergeSweepReport(names []string, tables map[string]TableReport) (*SweepReport, error) {
	for n := range tables {
		found := false
		for _, want := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("sweep: merge: table for experiment %q outside the campaign", n)
		}
	}
	report := NewSweepReport()
	for _, n := range names {
		tbl, ok := tables[n]
		if !ok {
			return nil, fmt.Errorf("sweep: merge: experiment %q has no table", n)
		}
		report.Experiments = append(report.Experiments, tbl)
	}
	return report, nil
}
