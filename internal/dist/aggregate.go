package dist

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Aggregation computes a global aggregate of per-robot sensor values by
// all-to-all exchange over the movement channel — "distributed
// computation among stigmergic robots" in its simplest form: every node
// broadcasts its reading; once a node holds all n readings it knows the
// swarm-wide sum, minimum, maximum, and mean.
type Aggregation struct {
	// Value is this robot's local reading.
	Value float64

	values map[int]float64
	want   int
	done   bool
}

var _ Node = (*Aggregation)(nil)

// Start implements Node.
func (a *Aggregation) Start(api API) error {
	a.values = map[int]float64{api.Self(): a.Value}
	a.want = api.N()
	if a.want == 1 {
		a.done = true
		return nil
	}
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, math.Float64bits(a.Value))
	return api.Broadcast(buf)
}

// Deliver implements Node.
func (a *Aggregation) Deliver(from int, payload []byte, _ API) error {
	if len(payload) != 8 {
		return fmt.Errorf("dist: aggregation message from %d has %d bytes, want 8", from, len(payload))
	}
	if _, dup := a.values[from]; dup {
		return fmt.Errorf("dist: duplicate aggregation message from %d", from)
	}
	a.values[from] = math.Float64frombits(binary.BigEndian.Uint64(payload))
	if len(a.values) == a.want {
		a.done = true
	}
	return nil
}

// Done implements Node.
func (a *Aggregation) Done() bool { return a.done }

// Sum returns the swarm-wide sum; valid once Done.
func (a *Aggregation) Sum() float64 {
	var s float64
	for _, v := range a.values {
		s += v
	}
	return s
}

// Min returns the swarm-wide minimum; valid once Done.
func (a *Aggregation) Min() float64 {
	m := math.Inf(1)
	for _, v := range a.values {
		m = math.Min(m, v)
	}
	return m
}

// Max returns the swarm-wide maximum; valid once Done.
func (a *Aggregation) Max() float64 {
	m := math.Inf(-1)
	for _, v := range a.values {
		m = math.Max(m, v)
	}
	return m
}

// Mean returns the swarm-wide mean; valid once Done.
func (a *Aggregation) Mean() float64 {
	if len(a.values) == 0 {
		return 0
	}
	return a.Sum() / float64(len(a.values))
}
