package dist

import (
	"math/rand"
	"testing"
)

func runFormation(t *testing.T, n int, synchronous bool, seed int64) []*FormationNode {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]Node, n)
	forms := make([]*FormationNode, n)
	for i := range nodes {
		forms[i] = &FormationNode{Rank: rng.Uint64()}
		nodes[i] = forms[i]
	}
	r, err := NewSwarmRunner(testPositions(rng, n), synchronous, seed, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	return forms
}

func checkFormation(t *testing.T, forms []*FormationNode) {
	t.Helper()
	n := len(forms)
	leader := forms[0].Leader()
	slots := map[int]int{}
	for i, f := range forms {
		if !f.Done() {
			t.Fatalf("node %d not done", i)
		}
		if f.Leader() != leader {
			t.Errorf("node %d disagrees on leader: %d vs %d", i, f.Leader(), leader)
		}
		slot, ok := f.Slot()
		if !ok {
			t.Fatalf("node %d has no slot", i)
		}
		if prev, dup := slots[slot]; dup {
			t.Errorf("slot %d assigned to both %d and %d", slot, prev, i)
		}
		slots[slot] = i
		if slot < 0 || slot >= n {
			t.Errorf("node %d slot %d out of range", i, slot)
		}
	}
	if got, ok := forms[leader].Slot(); !ok || got != 0 {
		t.Errorf("leader slot = %d, want 0", got)
	}
}

func TestFormationSync(t *testing.T) {
	for _, n := range []int{3, 6} {
		checkFormation(t, runFormation(t, n, true, int64(n)))
	}
}

func TestFormationAsync(t *testing.T) {
	// Asynchronous: the leader may finish before the followers, so the
	// early-slot buffering path is exercised.
	checkFormation(t, runFormation(t, 4, false, 11))
}

func TestFormationMalformed(t *testing.T) {
	f := &FormationNode{}
	api := nodeAPI{self: 0, n: 2}
	f.self = 0
	f.phase = phaseElect
	f.heard = map[int]bool{0: true}
	f.n = 2
	if err := f.Deliver(1, nil, api); err == nil {
		t.Error("empty payload accepted")
	}
	if err := f.Deliver(1, []byte{0x7F}, api); err == nil {
		t.Error("unknown type accepted")
	}
	if err := f.Deliver(1, []byte{msgRank, 1, 2}, api); err == nil {
		t.Error("short rank accepted")
	}
	if err := f.Deliver(1, []byte{msgSlot, 1, 2}, api); err == nil {
		t.Error("long slot accepted")
	}
}
