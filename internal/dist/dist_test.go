package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"waggle/internal/geom"
	"waggle/internal/sim"
)

func testPositions(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		p := geom.Pt(rng.Float64()*float64(n)*12, rng.Float64()*float64(n)*12)
		ok := true
		for _, q := range pts {
			if p.Dist(q) < 8 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, p)
		}
	}
	return pts
}

func TestLeaderElectionSync(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 6
	nodes := make([]Node, n)
	elections := make([]*LeaderElection, n)
	for i := range nodes {
		elections[i] = &LeaderElection{Rank: uint64(rng.Intn(1000))}
		nodes[i] = elections[i]
	}
	// Robot 4 is guaranteed to win.
	elections[4].Rank = 5000
	r, err := NewSwarmRunner(testPositions(rng, n), true, 1, nodes)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := r.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if steps == 0 {
		t.Error("terminated instantly")
	}
	for i, e := range elections {
		if !e.Done() {
			t.Fatalf("node %d not done", i)
		}
		if e.Leader() != 4 {
			t.Errorf("node %d elected %d, want 4", i, e.Leader())
		}
		if e.IsLeader() != (i == 4) {
			t.Errorf("node %d IsLeader = %v", i, e.IsLeader())
		}
	}
}

func TestLeaderElectionAsyncWithTies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 4
	nodes := make([]Node, n)
	elections := make([]*LeaderElection, n)
	for i := range nodes {
		elections[i] = &LeaderElection{Rank: 7} // all tied: highest index wins
		nodes[i] = elections[i]
	}
	r, err := NewSwarmRunner(testPositions(rng, n), false, 3, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	for i, e := range elections {
		if e.Leader() != n-1 {
			t.Errorf("node %d elected %d, want %d (tie-break by index)", i, e.Leader(), n-1)
		}
	}
}

func TestAggregationSync(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 5
	values := []float64{3.5, -1.25, 10, 0, 2.75}
	nodes := make([]Node, n)
	aggs := make([]*Aggregation, n)
	for i := range nodes {
		aggs[i] = &Aggregation{Value: values[i]}
		nodes[i] = aggs[i]
	}
	r, err := NewSwarmRunner(testPositions(rng, n), true, 4, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	wantSum := 15.0
	for i, a := range aggs {
		if math.Abs(a.Sum()-wantSum) > 1e-9 {
			t.Errorf("node %d sum = %v, want %v", i, a.Sum(), wantSum)
		}
		if a.Min() != -1.25 || a.Max() != 10 {
			t.Errorf("node %d min/max = %v/%v", i, a.Min(), a.Max())
		}
		if math.Abs(a.Mean()-3) > 1e-9 {
			t.Errorf("node %d mean = %v", i, a.Mean())
		}
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := NewRunner(nil, nil, nil, nil); err == nil {
		t.Error("nil world accepted")
	}
	rng := rand.New(rand.NewSource(5))
	r, err := NewSwarmRunner(testPositions(rng, 3), true, 1, []Node{
		&LeaderElection{}, &LeaderElection{}, &LeaderElection{},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = r
	if _, err := NewSwarmRunner(testPositions(rng, 2), true, 1, []Node{&LeaderElection{}}); err == nil {
		t.Error("node count mismatch accepted")
	}
	if _, err := NewSwarmRunner(testPositions(rng, 2), true, 1, []Node{nil, nil}); err == nil {
		t.Error("nil nodes accepted")
	}
}

func TestRunnerBudgetExhausted(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nodes := []Node{&LeaderElection{}, &LeaderElection{}, &LeaderElection{}}
	r, err := NewSwarmRunner(testPositions(rng, 3), true, 1, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(3); !errors.Is(err, ErrNotTerminated) {
		t.Errorf("err = %v, want ErrNotTerminated", err)
	}
}

func TestDeliverRejectsMalformed(t *testing.T) {
	var e LeaderElection
	api := nodeAPI{self: 0, n: 2}
	e.self = 0
	e.heard = map[int]bool{0: true}
	e.want = 2
	if err := e.Deliver(1, []byte{1, 2, 3}, api); err == nil {
		t.Error("short election payload accepted")
	}
	var a Aggregation
	a.values = map[int]float64{0: 1}
	a.want = 2
	if err := a.Deliver(1, []byte{1}, api); err == nil {
		t.Error("short aggregation payload accepted")
	}
}

// TestElectionUnderAdversarialScheduler couples the distributed
// algorithm with the starver scheduler: progress only through implicit
// acknowledgements, with one robot maximally delayed.
func TestElectionUnderAdversarialScheduler(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 3
	nodes := make([]Node, n)
	elections := make([]*LeaderElection, n)
	for i := range nodes {
		elections[i] = &LeaderElection{Rank: uint64(i * 10)}
		nodes[i] = elections[i]
	}
	// Hand-wire an AsyncN world with a starver.
	r, err := NewSwarmRunner(testPositions(rng, n), false, 9, nodes)
	if err != nil {
		t.Fatal(err)
	}
	r.scheduler = sim.FirstSync{Inner: sim.Starver{Victim: 2, Delay: 6}}
	if _, err := r.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	for i, e := range elections {
		if e.Leader() != 2 {
			t.Errorf("node %d elected %d, want 2", i, e.Leader())
		}
	}
}
