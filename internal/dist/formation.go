package dist

import (
	"encoding/binary"
	"fmt"
)

// FormationNode is a three-phase application that turns a disordered
// anonymous swarm into a coordinated one using nothing but movement
// signals — the paper's "distributed computation" promise end to end:
//
//  1. elect: every node broadcasts its rank; the highest (rank, index)
//     pair wins (as in LeaderElection);
//  2. assign: the leader sends every follower a distinct slot number;
//  3. each follower terminates once it holds its slot; the leader
//     terminates once every assignment is out.
//
// Slots index positions on a target pattern (e.g. a circle); the
// post-communication movement to the slots is ordinary robot motion,
// outside the protocol (see examples/formation). The deterministic
// circle-formation literature the paper cites solves this by geometry
// alone under stronger assumptions; with explicit communication it is
// three rounds of messages.
type FormationNode struct {
	// Rank is this robot's election candidate value.
	Rank uint64

	self   int
	n      int
	phase  formationPhase
	leader int

	bestRank uint64
	bestID   int
	heard    map[int]bool

	slot     int
	assigned bool
	done     bool

	// A slot can arrive before this node has heard every rank (the
	// leader finished its election first); it is buffered until the
	// local election completes.
	pendingSlot int
	pendingFrom int
	pending     bool
}

type formationPhase int

const (
	phaseElect formationPhase = iota + 1
	phaseAwaitSlot
	phaseDone
)

const (
	msgRank = 0x01
	msgSlot = 0x02
)

var _ Node = (*FormationNode)(nil)

// Start implements Node.
func (f *FormationNode) Start(api API) error {
	f.self = api.Self()
	f.n = api.N()
	f.phase = phaseElect
	f.bestRank, f.bestID = f.Rank, f.self
	f.heard = map[int]bool{f.self: true}
	buf := make([]byte, 9)
	buf[0] = msgRank
	binary.BigEndian.PutUint64(buf[1:], f.Rank)
	return api.Broadcast(buf)
}

// Deliver implements Node.
func (f *FormationNode) Deliver(from int, payload []byte, api API) error {
	if len(payload) == 0 {
		return fmt.Errorf("dist: empty formation message from %d", from)
	}
	switch payload[0] {
	case msgRank:
		return f.deliverRank(from, payload, api)
	case msgSlot:
		return f.deliverSlot(from, payload)
	default:
		return fmt.Errorf("dist: unknown formation message type %#x from %d", payload[0], from)
	}
}

func (f *FormationNode) deliverRank(from int, payload []byte, api API) error {
	if len(payload) != 9 {
		return fmt.Errorf("dist: rank message from %d has %d bytes, want 9", from, len(payload))
	}
	if f.heard[from] {
		return fmt.Errorf("dist: duplicate rank from %d", from)
	}
	f.heard[from] = true
	rank := binary.BigEndian.Uint64(payload[1:])
	if rank > f.bestRank || (rank == f.bestRank && from > f.bestID) {
		f.bestRank, f.bestID = rank, from
	}
	if len(f.heard) < f.n {
		return nil
	}
	// Election complete.
	f.leader = f.bestID
	if f.leader != f.self {
		f.phase = phaseAwaitSlot
		if f.pending {
			if f.pendingFrom != f.leader {
				return fmt.Errorf("dist: buffered slot from non-leader %d (leader %d)", f.pendingFrom, f.leader)
			}
			f.applySlot(f.pendingSlot)
		}
		return nil
	}
	// This node leads: hand out slots. The leader takes slot 0; the
	// followers get 1..n-1 in index order.
	f.slot, f.assigned = 0, true
	next := 1
	for to := 0; to < f.n; to++ {
		if to == f.self {
			continue
		}
		if err := api.Send(to, []byte{msgSlot, byte(next)}); err != nil {
			return err
		}
		next++
	}
	f.phase = phaseDone
	f.done = true
	return nil
}

func (f *FormationNode) deliverSlot(from int, payload []byte) error {
	if len(payload) != 2 {
		return fmt.Errorf("dist: slot message from %d has %d bytes, want 2", from, len(payload))
	}
	switch f.phase {
	case phaseElect:
		// The sender finished its election before we finished ours;
		// buffer the assignment until we know who the leader is.
		if f.pending {
			return fmt.Errorf("dist: second early slot message from %d", from)
		}
		f.pendingSlot, f.pendingFrom, f.pending = int(payload[1]), from, true
		return nil
	case phaseAwaitSlot:
		if from != f.leader {
			return fmt.Errorf("dist: slot message from non-leader %d (leader %d)", from, f.leader)
		}
		f.applySlot(int(payload[1]))
		return nil
	default:
		return fmt.Errorf("dist: slot message from %d after termination", from)
	}
}

func (f *FormationNode) applySlot(slot int) {
	f.slot = slot
	f.assigned = true
	f.phase = phaseDone
	f.done = true
}

// Done implements Node.
func (f *FormationNode) Done() bool { return f.done }

// Leader returns the elected robot; valid once Done.
func (f *FormationNode) Leader() int { return f.leader }

// Slot returns this robot's assigned pattern slot; valid once Done.
func (f *FormationNode) Slot() (int, bool) { return f.slot, f.assigned }
