// Package dist runs classical message-passing distributed algorithms on
// top of the movement-signal channel — the paper's motivating claim:
// "our protocols enable the use of distributed algorithms based on
// message exchanges among swarms of stigmergic robots" (§1, §5).
//
// A Node is the application program of one robot; the Runner drives the
// simulation, delivering each decoded message to its addressee. The
// package ships two textbook algorithms as executable proof:
// flood-max leader election and all-to-all aggregation.
package dist

import (
	"errors"
	"fmt"

	"waggle/internal/geom"
	"waggle/internal/protocol"
	"waggle/internal/sim"
)

// API is what a node may do: inspect its identity and send messages
// over the movement channel.
type API interface {
	// Self returns this node's robot index.
	Self() int
	// N returns the swarm size.
	N() int
	// Send queues a message to another robot.
	Send(to int, payload []byte) error
	// Broadcast queues a message to every other robot. It uses the
	// protocols' efficient one-to-all (a single transmission on the
	// sender's own diameter, §1).
	Broadcast(payload []byte) error
}

// Node is one robot's application program.
type Node interface {
	// Start runs once before the first instant.
	Start(api API) error
	// Deliver handles one message addressed to this node.
	Deliver(from int, payload []byte, api API) error
	// Done reports whether this node has terminated.
	Done() bool
}

// Runner couples nodes with a communicating swarm and drives the
// execution to global termination.
type Runner struct {
	world     *sim.World
	scheduler sim.Scheduler
	endpoints []*protocol.Endpoint
	nodes     []Node
}

// ErrNotTerminated is returned when the step budget runs out before all
// nodes are done.
var ErrNotTerminated = errors.New("dist: nodes did not terminate within the step budget")

// NewRunner validates and assembles a runner. The endpoints must drive
// the world's behaviors, index-aligned with nodes.
func NewRunner(world *sim.World, scheduler sim.Scheduler, endpoints []*protocol.Endpoint, nodes []Node) (*Runner, error) {
	if world == nil || scheduler == nil {
		return nil, errors.New("dist: nil world or scheduler")
	}
	if world.N() != len(endpoints) || world.N() != len(nodes) {
		return nil, fmt.Errorf("dist: %d robots, %d endpoints, %d nodes", world.N(), len(endpoints), len(nodes))
	}
	for i, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("dist: node %d is nil", i)
		}
	}
	return &Runner{world: world, scheduler: scheduler, endpoints: endpoints, nodes: nodes}, nil
}

// nodeAPI implements API for one node.
type nodeAPI struct {
	self     int
	n        int
	endpoint *protocol.Endpoint
}

func (a nodeAPI) Self() int { return a.self }
func (a nodeAPI) N() int    { return a.n }
func (a nodeAPI) Send(to int, payload []byte) error {
	return a.endpoint.Send(to, payload)
}
func (a nodeAPI) Broadcast(payload []byte) error {
	return a.endpoint.SendAll(payload)
}

var _ API = nodeAPI{}

// Run starts every node, then advances the simulation, dispatching
// deliveries, until every node reports Done (returning the number of
// instants executed) or the budget runs out.
func (r *Runner) Run(maxSteps int) (int, error) {
	n := r.world.N()
	apis := make([]nodeAPI, n)
	for i := range apis {
		apis[i] = nodeAPI{self: i, n: n, endpoint: r.endpoints[i]}
	}
	for i, node := range r.nodes {
		if err := node.Start(apis[i]); err != nil {
			return 0, fmt.Errorf("dist: node %d start: %w", i, err)
		}
	}
	for step := 0; step < maxSteps; step++ {
		if r.allDone() {
			return step, nil
		}
		if _, err := r.world.Step(r.scheduler); err != nil {
			return step, err
		}
		for i, e := range r.endpoints {
			for _, msg := range e.Receive() {
				if err := r.nodes[i].Deliver(msg.From, msg.Payload, apis[i]); err != nil {
					return step, fmt.Errorf("dist: node %d deliver: %w", i, err)
				}
			}
		}
	}
	if r.allDone() {
		return maxSteps, nil
	}
	return maxSteps, ErrNotTerminated
}

func (r *Runner) allDone() bool {
	for _, n := range r.nodes {
		if !n.Done() {
			return false
		}
	}
	return true
}

// NewSwarmRunner is a convenience constructor: it builds an n-robot
// communicating world (synchronous SyncN or asynchronous AsyncN, both
// with SEC naming — anonymous robots, chirality only) and wires the
// given nodes to it.
func NewSwarmRunner(positions []geom.Point, synchronous bool, seed int64, nodes []Node) (*Runner, error) {
	n := len(positions)
	var (
		behaviors []sim.Behavior
		endpoints []*protocol.Endpoint
		err       error
		scheduler sim.Scheduler = sim.Synchronous{}
	)
	if synchronous {
		behaviors, endpoints, err = protocol.NewSyncN(n, protocol.SyncNConfig{})
	} else {
		behaviors, endpoints, err = protocol.NewAsyncN(n, protocol.AsyncNConfig{})
		scheduler = sim.FirstSync{Inner: sim.NewRandomFair(seed)}
	}
	if err != nil {
		return nil, err
	}
	robots := make([]*sim.Robot, n)
	for i := range robots {
		robots[i] = &sim.Robot{Frame: geom.WorldFrame(), Sigma: 1e18, Behavior: behaviors[i]}
	}
	world, err := sim.NewWorld(sim.Config{Positions: positions, Robots: robots})
	if err != nil {
		return nil, err
	}
	return NewRunner(world, scheduler, endpoints, nodes)
}
