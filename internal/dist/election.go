package dist

import (
	"encoding/binary"
	"fmt"
)

// LeaderElection elects a leader among the robots by exchanging ranks
// over the movement channel: every node broadcasts its rank; once a
// node has heard from everyone it declares the robot with the highest
// (rank, index) pair the leader. The movement channel is a complete
// graph, so one round suffices; deterministic and self-contained — the
// kind of "classical" distributed algorithm the paper's protocols are
// meant to enable, running on robots that, physically, can only move.
//
// Note the contrast with Figure 3: anonymous robots cannot always break
// symmetry by GEOMETRY, but once explicit communication exists they can
// exchange arbitrary ranks (here: application-provided values, e.g.
// battery levels or private random draws).
type LeaderElection struct {
	// Rank is this robot's candidate value (higher wins; ties broken by
	// robot index).
	Rank uint64

	self     int
	bestRank uint64
	bestID   int
	heard    map[int]bool
	want     int
	done     bool
}

var _ Node = (*LeaderElection)(nil)

// Start implements Node.
func (l *LeaderElection) Start(api API) error {
	l.self = api.Self()
	l.bestRank, l.bestID = l.Rank, api.Self()
	l.heard = map[int]bool{api.Self(): true}
	l.want = api.N()
	if l.want == 1 {
		l.done = true
		return nil
	}
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, l.Rank)
	return api.Broadcast(buf)
}

// Deliver implements Node.
func (l *LeaderElection) Deliver(from int, payload []byte, _ API) error {
	if len(payload) != 8 {
		return fmt.Errorf("dist: election message from %d has %d bytes, want 8", from, len(payload))
	}
	rank := binary.BigEndian.Uint64(payload)
	if l.heard[from] {
		return fmt.Errorf("dist: duplicate election message from %d", from)
	}
	l.heard[from] = true
	if rank > l.bestRank || (rank == l.bestRank && from > l.bestID) {
		l.bestRank, l.bestID = rank, from
	}
	if len(l.heard) == l.want {
		l.done = true
	}
	return nil
}

// Done implements Node.
func (l *LeaderElection) Done() bool { return l.done }

// Leader returns the elected robot index; valid once Done.
func (l *LeaderElection) Leader() int { return l.bestID }

// IsLeader reports whether this robot won; valid once Done.
func (l *LeaderElection) IsLeader() bool { return l.bestID == l.self }
