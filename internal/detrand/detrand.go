// Package detrand wraps math/rand sources with a draw counter, so a
// seeded stream's position can be captured as (seed, draws) in a
// checkpoint and verified after a deterministic replay. Delegation is
// transparent: a rand.Rand built over a CountingSource produces the
// exact values of one built over rand.NewSource with the same seed —
// the counter never perturbs the stream it counts.
package detrand

import "math/rand"

// CountingSource is a rand.Source64 that counts every draw.
type CountingSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

// New returns a counting source seeded with seed and a rand.Rand over
// it.
func New(seed int64) (*CountingSource, *rand.Rand) {
	cs := &CountingSource{src: newSource64(seed), seed: seed}
	return cs, rand.New(cs)
}

// newSource64 builds the standard seeded source. rand.NewSource's
// concrete type has implemented Source64 since Go 1.8; the assertion
// documents the dependency instead of hiding it behind a fallback that
// would silently change the stream.
func newSource64(seed int64) rand.Source64 {
	return rand.NewSource(seed).(rand.Source64)
}

// Int63 implements rand.Source.
func (c *CountingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

// Uint64 implements rand.Source64.
func (c *CountingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

// Seed implements rand.Source, resetting the draw counter.
func (c *CountingSource) Seed(seed int64) {
	c.seed = seed
	c.draws = 0
	c.src.Seed(seed)
}

// SeedValue returns the seed the stream was last seeded with.
func (c *CountingSource) SeedValue() int64 { return c.seed }

// Draws returns how many values have been drawn since seeding.
func (c *CountingSource) Draws() uint64 { return c.draws }
