package spatial

import "waggle/internal/geom"

// dynRebuildFraction is the per-update moved fraction above which
// DynamicRadii abandons the incremental path: past it, re-deriving
// everything from scratch is cheaper than chasing dirty cells, and it
// also bounds how far the underlying grid's bucket balance can degrade.
const dynRebuildFraction = 0.25

// DynamicRadii maintains the nearest-neighbour radii of a moving point
// set — the granular radii of the paper's §3.2 preprocessing —
// incrementally across updates. When few points moved since the last
// Update, only the points whose radius could have changed are
// recomputed: a radius depends exactly on the points within twice its
// value, so a point is re-derived iff a dirty cell (a cell some point
// left, entered, or moved within) intersects that disc. Values are
// always bit-identical to NearestRadii on the same slice: recomputation
// uses the same grid NearestTo arithmetic, and an untouched radius is
// the min over a candidate set whose members within the critical
// distance did not move.
type DynamicRadii struct {
	pts   []geom.Point // owned copy, referenced by grid
	radii []float64
	grid  *Grid // nil below bruteCutoff (full brute recompute per update)
	moved []int32
}

// NewDynamicRadii computes the radii of pts and returns a tracker
// primed for incremental updates. The slice is copied.
func NewDynamicRadii(pts []geom.Point) *DynamicRadii {
	d := &DynamicRadii{pts: append([]geom.Point(nil), pts...)}
	d.full()
	return d
}

// Radii returns the current radii, index-aligned with the points of the
// last Update. The slice is shared: callers must not mutate it and must
// copy what they keep across Updates.
func (d *DynamicRadii) Radii() []float64 { return d.radii }

// Update moves the tracked set to pts and returns the refreshed radii,
// bit-identical to NearestRadii(pts). Cost is proportional to the
// number of moved points (plus a linear dirty-disc scan) when under
// dynRebuildFraction of the set moved, and one full recomputation
// otherwise.
func (d *DynamicRadii) Update(pts []geom.Point) []float64 {
	if len(pts) != len(d.pts) {
		d.pts = append(d.pts[:0], pts...)
		d.full()
		return d.radii
	}
	moved := d.moved[:0]
	for i := range pts {
		if pts[i] != d.pts[i] {
			moved = append(moved, int32(i))
		}
	}
	d.moved = moved
	if len(moved) == 0 {
		return d.radii
	}
	if d.grid == nil || float64(len(moved)) > dynRebuildFraction*float64(len(pts)) {
		copy(d.pts, pts)
		d.full()
		return d.radii
	}
	for _, i := range moved {
		from := d.pts[i]
		d.pts[i] = pts[i]
		d.grid.Move(int(i), from, pts[i])
	}
	for i := range d.pts {
		// 2*radii[i] is the exact reach of point i's radius: its nearest
		// neighbour sits at that distance, so only a point leaving or
		// entering the closed disc of that radius can change the min.
		// Moved points are always caught — their destination cell is
		// dirty and inside any range around themselves.
		reach := 2 * d.radii[i]
		if !d.grid.DirtyWithin(d.pts[i], reach+safetyMargin(reach)) {
			continue
		}
		_, dist := d.grid.NearestTo(d.pts[i], i)
		d.radii[i] = dist / 2
	}
	d.grid.ClearDirty()
	return d.radii
}

// full recomputes every radius from scratch, routing small sets to the
// brute scan exactly as NearestRadii does.
func (d *DynamicRadii) full() {
	if len(d.radii) != len(d.pts) {
		d.radii = make([]float64, len(d.pts))
	}
	if len(d.pts) < bruteCutoff {
		d.grid = nil
		nearestRadiiBruteInto(d.radii, d.pts)
		return
	}
	if d.grid == nil {
		d.grid = NewGrid(d.pts)
	} else {
		d.grid.Rebuild(d.pts)
	}
	for i := range d.pts {
		_, dist := d.grid.NearestTo(d.pts[i], i)
		d.radii[i] = dist / 2
	}
}
