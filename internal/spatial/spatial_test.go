package spatial

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"waggle/internal/geom"
)

// Configurations the property tests sweep: uniform random, tightly
// clustered (grid degenerates towards one bucket), collinear with exact
// ties, plus coincident and singleton edge cases.
func testConfigurations(rng *rand.Rand, n int) map[string][]geom.Point {
	random := make([]geom.Point, n)
	for i := range random {
		random[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	clustered := make([]geom.Point, 0, n)
	for len(clustered) < n {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		for k := 0; k < 8 && len(clustered) < n; k++ {
			clustered = append(clustered, geom.Pt(cx+rng.NormFloat64(), cy+rng.NormFloat64()))
		}
	}
	collinear := make([]geom.Point, n)
	for i := range collinear {
		// Equally spaced on a line: every interior point has an exact
		// two-sided distance tie, exercising the lowest-index rule.
		collinear[i] = geom.Pt(float64(i)*3, float64(i)*4)
	}
	coincident := make([]geom.Point, n)
	for i := range coincident {
		coincident[i] = geom.Pt(float64(i/2)*10, 5) // every point duplicated
	}
	return map[string][]geom.Point{
		"random":     random,
		"clustered":  clustered,
		"collinear":  collinear,
		"coincident": coincident,
	}
}

func bruteNearest(pts []geom.Point, p geom.Point, exclude int) (int, float64) {
	best, bestIdx := math.Inf(1), -1
	for j, q := range pts {
		if j == exclude {
			continue
		}
		if d := p.Dist(q); d < best {
			best, bestIdx = d, j
		}
	}
	return bestIdx, best
}

func TestNearestMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 3, 17, 64, 257} {
		for name, pts := range testConfigurations(rng, n) {
			t.Run(fmt.Sprintf("%s/n=%d", name, n), func(t *testing.T) {
				g := NewGrid(pts)
				for i := range pts {
					gotIdx, gotD := g.NearestTo(pts[i], i)
					wantIdx, wantD := bruteNearest(pts, pts[i], i)
					if gotIdx != wantIdx || gotD != wantD {
						t.Fatalf("NearestTo(%d) = (%d, %v), brute (%d, %v)", i, gotIdx, gotD, wantIdx, wantD)
					}
				}
				// Off-site query points, inside and far outside the bbox.
				for s := 0; s < 40; s++ {
					p := geom.Pt(rng.Float64()*3000-1000, rng.Float64()*3000-1000)
					gotIdx, gotD := g.NearestTo(p, -1)
					wantIdx, wantD := bruteNearest(pts, p, -1)
					if gotIdx != wantIdx || gotD != wantD {
						t.Fatalf("NearestTo(%v) = (%d, %v), brute (%d, %v)", p, gotIdx, gotD, wantIdx, wantD)
					}
				}
			})
		}
	}
}

func TestNearestSinglePoint(t *testing.T) {
	g := NewGrid([]geom.Point{geom.Pt(4, 4)})
	if idx, d := g.NearestTo(geom.Pt(4, 4), 0); idx != -1 || !math.IsInf(d, 1) {
		t.Errorf("single excluded point: (%d, %v), want (-1, +Inf)", idx, d)
	}
	if idx, d := g.NearestTo(geom.Pt(0, 0), -1); idx != 0 || d != geom.Pt(0, 0).Dist(geom.Pt(4, 4)) {
		t.Errorf("single point query: (%d, %v)", idx, d)
	}
	empty := NewGrid(nil)
	if idx, _ := empty.NearestTo(geom.Pt(0, 0), -1); idx != -1 {
		t.Errorf("empty grid returned %d", idx)
	}
}

func TestVisitNeighborhoodCoversRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{3, 50, 200} {
		for name, pts := range testConfigurations(rng, n) {
			t.Run(fmt.Sprintf("%s/n=%d", name, n), func(t *testing.T) {
				g := NewGrid(pts)
				for s := 0; s < 25; s++ {
					p := geom.Pt(rng.Float64()*1200-100, rng.Float64()*1200-100)
					r := rng.Float64() * 500
					got := map[int]bool{}
					g.VisitNeighborhood(p, r, func(j int, d float64) {
						if d != p.Dist(pts[j]) {
							t.Fatalf("reported distance %v != exact %v", d, p.Dist(pts[j]))
						}
						if d <= r {
							got[j] = true
						}
					})
					for j, q := range pts {
						if (p.Dist(q) <= r) != got[j] {
							t.Fatalf("point %d (dist %v, radius %v): in-set mismatch", j, p.Dist(q), r)
						}
					}
				}
			})
		}
	}
}

func TestVisitRingsEnumeratesAllWithValidBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for name, pts := range testConfigurations(rng, 120) {
		t.Run(name, func(t *testing.T) {
			g := NewGrid(pts)
			p := pts[rng.Intn(len(pts))]
			seen := map[int]int{}
			bound := 0.0
			var pending []int
			flush := func(nextBound float64) {
				// Every point of the just-finished ring must respect the
				// bound under which it was enumerated.
				for _, j := range pending {
					if d := p.Dist(pts[j]); d < bound-safetyMargin(bound) {
						t.Fatalf("point %d at distance %v violates ring bound %v", j, d, bound)
					}
				}
				pending = pending[:0]
				bound = nextBound
			}
			g.VisitRings(p,
				func(lb float64) bool { flush(lb); return true },
				func(j int) { seen[j]++; pending = append(pending, j) })
			if len(seen) != len(pts) {
				t.Fatalf("enumerated %d of %d points", len(seen), len(pts))
			}
			for j, c := range seen {
				if c != 1 {
					t.Fatalf("point %d visited %d times", j, c)
				}
			}
		})
	}
}

func TestNearestRadiiMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 2, 5, bruteCutoff, 100, 512} {
		for name, pts := range testConfigurations(rng, n) {
			got := NearestRadii(pts)
			want := NearestRadiiBrute(pts)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/n=%d: radius %d = %v, brute %v", name, n, i, got[i], want[i])
				}
			}
		}
	}
	single := NearestRadii([]geom.Point{geom.Pt(1, 1)})
	if !math.IsInf(single[0], 1) {
		t.Errorf("singleton radius = %v, want +Inf", single[0])
	}
}

func TestRebuildReusesBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([]geom.Point, 256)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	g := NewGrid(pts)
	for step := 0; step < 5; step++ {
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		g.Rebuild(pts)
		for _, i := range []int{0, 100, 255} {
			gotIdx, gotD := g.NearestTo(pts[i], i)
			wantIdx, wantD := bruteNearest(pts, pts[i], i)
			if gotIdx != wantIdx || gotD != wantD {
				t.Fatalf("step %d: NearestTo(%d) = (%d, %v), brute (%d, %v)", step, i, gotIdx, gotD, wantIdx, wantD)
			}
		}
	}
}

// TestPlacerMatchesBruteRejection replays the same random stream through
// the grid-backed placer and the original all-pairs rejection loop: the
// accept/reject decisions, and hence the configurations, must coincide.
func TestPlacerMatchesBruteRejection(t *testing.T) {
	for _, minSep := range []float64{0, 4, 8} {
		rngA := rand.New(rand.NewSource(21))
		rngB := rand.New(rand.NewSource(21))
		pl := NewPlacer(minSep)
		var brute []geom.Point
		for pl.Len() < 300 {
			pa := geom.Pt(rngA.Float64()*600, rngA.Float64()*600)
			pb := geom.Pt(rngB.Float64()*600, rngB.Float64()*600)
			if pa != pb {
				t.Fatal("random streams diverged")
			}
			ok := true
			for _, q := range brute {
				if pb.Dist(q) < minSep {
					ok = false
					break
				}
			}
			if ok != !pl.TooClose(pa) {
				t.Fatalf("minSep %v: placer and brute disagree at point %v", minSep, pa)
			}
			if ok {
				brute = append(brute, pb)
				pl.Add(pa)
			}
			if len(brute) >= 300 {
				break
			}
		}
		got := pl.Points()
		sort.Slice(got, func(i, j int) bool { return got[i].X < got[j].X })
		sort.Slice(brute, func(i, j int) bool { return brute[i].X < brute[j].X })
		for i := range brute {
			if got[i] != brute[i] {
				t.Fatalf("minSep %v: configurations differ at %d", minSep, i)
			}
		}
	}
}

func benchSites(n int) []geom.Point {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*float64(n)*12, rng.Float64()*float64(n)*12)
	}
	return pts
}

func BenchmarkNearestRadii(b *testing.B) {
	for _, n := range []int{128, 512, 2048} {
		pts := benchSites(n)
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				NearestRadii(pts)
			}
		})
		b.Run(fmt.Sprintf("brute/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				NearestRadiiBrute(pts)
			}
		})
	}
}

func BenchmarkRebuild(b *testing.B) {
	for _, n := range []int{512, 2048} {
		pts := benchSites(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := NewGrid(pts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Rebuild(pts)
			}
		})
	}
}
