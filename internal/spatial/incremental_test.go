package spatial

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"waggle/internal/geom"
)

// TestRebuildEmptyGrid pins the empty-slice Rebuild fix: a grid shrunk
// to zero points must reset its cell geometry, not leave minX/cellW
// stale so a later cellCoords clamps its column to cols-1 == -1 and
// indexes out of bounds. Every query on the empty grid must come back
// empty, and the grid must be fully usable after growing again.
func TestRebuildEmptyGrid(t *testing.T) {
	pts := []geom.Point{geom.Pt(3, 4), geom.Pt(100, 200), geom.Pt(-50, 7), geom.Pt(12, -9)}
	g := NewGrid(pts)
	g.Rebuild(nil)
	if g.Len() != 0 {
		t.Fatalf("Len after empty Rebuild = %d", g.Len())
	}
	if idx, d := g.NearestTo(geom.Pt(1e6, -1e6), -1); idx != -1 || !math.IsInf(d, 1) {
		t.Fatalf("NearestTo on empty grid = (%d, %v)", idx, d)
	}
	g.VisitNeighborhood(geom.Pt(-1e6, 1e6), 1e9, func(j int, d float64) {
		t.Fatalf("VisitNeighborhood on empty grid visited %d", j)
	})
	rings := 0
	g.VisitRings(geom.Pt(5, 5), func(lb float64) bool { rings++; return true }, func(j int) {
		t.Fatalf("VisitRings on empty grid visited %d", j)
	})
	if rings != 1 {
		t.Fatalf("VisitRings on empty grid called ringFn %d times, want the single +Inf flush", rings)
	}
	if g.DirtyWithin(geom.Pt(0, 0), 10) {
		t.Fatal("empty grid reports dirty cells")
	}
	// cellCoords itself must be safe for any query point.
	if ix, iy := g.cellCoords(geom.Pt(1e9, 1e9)); ix != 0 || iy != 0 {
		t.Fatalf("cellCoords on empty grid = (%d, %d)", ix, iy)
	}
	// Growing again restores full service.
	g.Rebuild(pts)
	if idx, _ := g.NearestTo(geom.Pt(3.1, 4.1), -1); idx != 0 {
		t.Fatalf("NearestTo after re-grow = %d, want 0", idx)
	}
	// NewGrid on an empty slice takes the same path.
	e := NewGrid(nil)
	if idx, _ := e.NearestTo(geom.Pt(0, 0), -1); idx != -1 {
		t.Fatalf("NearestTo on NewGrid(nil) = %d", idx)
	}
}

// neighborhoodSet collects the accepted radius-query set through the
// grid, applying the exact caller-side predicate.
func neighborhoodSet(g *Grid, p geom.Point, r float64) []int {
	var out []int
	g.VisitNeighborhood(p, r, func(j int, d float64) {
		if d <= r {
			out = append(out, j)
		}
	})
	sort.Ints(out)
	return out
}

func bruteNeighborhoodSet(pts []geom.Point, p geom.Point, r float64) []int {
	var out []int
	for j, q := range pts {
		if p.Dist(q) <= r {
			out = append(out, j)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGridMoveMatchesRebuild is the incremental-grid property test: a
// grid maintained by Move through random walks — local jitter, long
// teleports out of the original bounding box, exact returns, coincident
// pile-ups — must answer every query identically to a grid rebuilt
// from scratch over the same points. Run under -race by `make race`.
func TestGridMoveMatchesRebuild(t *testing.T) {
	for _, n := range []int{0, 1, 2, 64, 4096} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(77 + n)))
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			}
			inc := NewGrid(pts)
			rounds := 30
			if n > 1000 {
				rounds = 10
			}
			for round := 0; round < rounds; round++ {
				// Move a random subset, at most the rebuild threshold.
				moves := rng.Intn(n/4+1) + 1
				if n == 0 {
					moves = 0
				}
				for m := 0; m < moves; m++ {
					i := rng.Intn(n)
					from := pts[i]
					var to geom.Point
					switch rng.Intn(4) {
					case 0: // local jitter, usually within a cell
						to = geom.Pt(from.X+rng.NormFloat64(), from.Y+rng.NormFloat64())
					case 1: // teleport, possibly far outside the indexed box
						to = geom.Pt(rng.Float64()*4000-1500, rng.Float64()*4000-1500)
					case 2: // pile onto another point (coincidence)
						to = pts[rng.Intn(n)]
					default: // move out and exactly back
						mid := geom.Pt(from.X+100, from.Y-100)
						pts[i] = mid
						inc.Move(i, from, mid)
						if !inc.DirtyWithin(mid, 0) {
							t.Fatal("destination cell not dirty after Move")
						}
						to = from
						from = mid
					}
					pts[i] = to
					inc.Move(i, from, to)
					if !inc.DirtyWithin(to, 0) || !inc.DirtyWithin(from, 0) {
						t.Fatal("Move left source or destination cell clean")
					}
				}
				if f := inc.MovedFraction(); f < 0 || f > 1 {
					t.Fatalf("MovedFraction = %v", f)
				}

				fresh := NewGrid(append([]geom.Point(nil), pts...))
				queries := 40
				if n == 0 {
					queries = 4
				}
				for q := 0; q < queries; q++ {
					p := geom.Pt(rng.Float64()*3000-1000, rng.Float64()*3000-1000)
					if n > 0 && q%2 == 0 {
						p = pts[rng.Intn(n)] // on-point queries hit ties and self-exclusion
					}
					exclude := -1
					if n > 0 && q%3 == 0 {
						exclude = rng.Intn(n)
					}
					gi, gd := inc.NearestTo(p, exclude)
					fi, fd := fresh.NearestTo(p, exclude)
					if gi != fi || gd != fd {
						t.Fatalf("round %d: NearestTo(%v, %d) = (%d, %v) incremental, (%d, %v) rebuilt",
							round, p, exclude, gi, gd, fi, fd)
					}
					r := rng.Float64() * 200
					if got, want := neighborhoodSet(inc, p, r), bruteNeighborhoodSet(pts, p, r); !equalInts(got, want) {
						t.Fatalf("round %d: neighborhood(%v, %v) = %v, want %v", round, p, r, got, want)
					}
				}
				// Periodically collapse the overlay, as the engine's
				// dirty-fraction fallback does.
				if round%7 == 6 {
					inc.Rebuild(pts)
					if inc.MovedFraction() != 0 || len(inc.DirtyCells()) != 0 {
						t.Fatal("Rebuild did not reset the incremental overlay")
					}
				} else {
					inc.ClearDirty()
					if n > 0 && inc.DirtyWithin(pts[rng.Intn(n)], 1e9) {
						t.Fatal("ClearDirty left dirty cells behind")
					}
				}
			}
		})
	}
}

// TestDynamicRadiiMatchesBrute pins DynamicRadii.Update bit-identical
// to the from-scratch computation across random walks, including
// coincident points (radius zero), sub-cutoff sizes, and a mid-walk
// length change.
func TestDynamicRadiiMatchesBrute(t *testing.T) {
	for _, n := range []int{0, 1, 2, 64, 4096} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(131 + n)))
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			}
			d := NewDynamicRadii(pts)
			check := func(stage string) {
				t.Helper()
				got := d.Radii()
				want := NearestRadiiBrute(pts)
				if len(got) != len(want) {
					t.Fatalf("%s: %d radii, want %d", stage, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: radius %d = %v, want %v", stage, i, got[i], want[i])
					}
				}
			}
			check("initial")
			rounds := 25
			if n > 1000 {
				rounds = 8
			}
			for round := 0; round < rounds; round++ {
				if n > 0 {
					moves := rng.Intn(n/3+1) + 1 // sometimes past the rebuild fraction
					for m := 0; m < moves; m++ {
						i := rng.Intn(n)
						switch rng.Intn(3) {
						case 0:
							pts[i] = geom.Pt(pts[i].X+rng.NormFloat64(), pts[i].Y+rng.NormFloat64())
						case 1:
							pts[i] = geom.Pt(rng.Float64()*2000-500, rng.Float64()*2000-500)
						default:
							pts[i] = pts[rng.Intn(n)] // coincidence: radius collapses to zero
						}
					}
				}
				d.Update(pts)
				check(fmt.Sprintf("round %d", round))
			}
			// Length change forces the full path.
			pts = append(pts, geom.Pt(-3, -7))
			d.Update(pts)
			check("grown")
		})
	}
}
