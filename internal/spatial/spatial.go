// Package spatial provides a uniform-grid point index over planar point
// sets: expected-O(1) nearest-neighbour and radius queries on a static
// site set, a rebuildable variant for per-step snapshots of moving
// robots, and an incremental minimum-separation index for rejection
// sampling.
//
// Every accelerated caller in this repository keeps a brute-force twin
// and is pinned to it by property tests; the index is engineered so the
// accelerated results are not merely close but IDENTICAL:
//
//   - The grid only narrows the candidate set. Final predicates
//     ("distance <= r", "distance < minSep") are evaluated by the caller
//     with exactly the arithmetic the brute-force scan uses
//     (geom.Point.Dist, i.e. math.Hypot), so a candidate superset yields
//     the same accepted set, the same minimum value, and — with the
//     shared lowest-index tie rule — the same argmin.
//   - Pruning bounds carry a geom.Eps-scaled safety margin, orders of
//     magnitude above float64 rounding of the bound arithmetic, so a
//     point can never be pruned while still beating the current best.
//
// Cell sizing targets ~2 points per cell on quasi-uniform sets
// (cols = rows = floor(sqrt(n/2))), which bounds the bucket array by n/2
// and keeps rebuilds allocation-free after warm-up. Clustered or
// collinear inputs degrade gracefully: queries fall back to scanning
// more rings and remain correct (worst case O(n), the brute-force cost).
//
// Between rebuilds the grid supports incremental updates: Move splices a
// single point between buckets in O(1) and marks both cells in a dirty
// bitmap, so per-step simulator snapshots where few robots moved skip
// the O(n) Rebuild entirely. Moved points may drift outside the bounding
// box the cell geometry was computed from; cellCoords clamps them into
// edge cells, which keeps every query exact (the grid only ever narrows
// candidates — final predicates are evaluated by the caller) and only
// degrades bucket balance. Callers bound that degradation by falling
// back to Rebuild once MovedFraction passes a threshold (the simulator
// uses ~25%).
package spatial

import (
	"math"

	"waggle/internal/geom"
)

// bruteCutoff is the point count below which NearestRadii stays with the
// direct all-pairs scan: building a grid costs more than ~500 distance
// evaluations.
const bruteCutoff = 24

// safetyMargin is the slack added to every pruning bound so that float64
// rounding in the bound arithmetic can never exclude a candidate that
// would win an exact comparison. It mirrors geom.ApproxEq's scaling.
func safetyMargin(d float64) float64 { return geom.Eps * (1 + d) }

// Grid is a uniform bucket index over a point slice. The points are
// referenced, not copied: the caller must not mutate them between
// Rebuild and the queries that depend on them. A zero Grid is not
// usable; construct with NewGrid or call Rebuild first.
type Grid struct {
	pts          []geom.Point
	minX, minY   float64
	cellW, cellH float64
	cols, rows   int

	// CSR bucket layout: bucket c holds items[start[c]:start[c+1]],
	// in ascending point-index order. After a Move, items that left
	// their CSR bucket are masked out of it (cellOf no longer matches)
	// and live in their current cell's extra list instead; visit order
	// within a cell is then base items first, movers after.
	start  []int32
	items  []int32
	counts []int32 // rebuild scratch

	// Incremental overlay (Move), built lazily on the first Move after
	// a Rebuild. Invariants: cellOf[i] is the cell of pts[i] under the
	// current (clamped) geometry; i is in exactly one extra list —
	// extra[cellOf[i]] at position extraSlot[i] — iff cellOf[i] !=
	// base[i]; movedN counts such items.
	overlayReady bool
	base         []int32
	cellOf       []int32
	extra        [][]int32
	extraSlot    []int32
	extraUsed    []int32 // cells whose extra list has been appended to
	movedN       int

	// Dirty-cell tracking: a bitmap plus the list of set bits. Move
	// marks the source and destination cells; Rebuild and ClearDirty
	// reset the set. Invariant: dirty has exactly the bits in dirtyList.
	dirty     []uint64
	dirtyList []int32
}

// NewGrid indexes pts. The slice is referenced, not copied.
func NewGrid(pts []geom.Point) *Grid {
	g := &Grid{}
	g.Rebuild(pts)
	return g
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// Rebuild re-indexes the grid over pts, reusing the internal buffers —
// the per-step snapshot path in the simulator calls this once per
// instant and allocates nothing after warm-up.
func (g *Grid) Rebuild(pts []geom.Point) {
	g.pts = pts
	g.resetOverlay()
	n := len(pts)
	if n == 0 {
		// Reset the full geometry, not just the cell counts: stale
		// minX/cellW with cols == 0 would make a later cellCoords clamp
		// its column to cols-1 == -1 and index out of bounds.
		g.minX, g.minY = 0, 0
		g.cellW, g.cellH = 1, 1
		g.cols, g.rows = 0, 0
		g.items = g.items[:0]
		if g.start != nil {
			g.start = g.start[:1]
			g.start[0] = 0
		}
		return
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	dim := int(math.Sqrt(float64(n) / 2))
	if dim < 1 {
		dim = 1
	}
	w, h := maxX-minX, maxY-minY
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	g.minX, g.minY = minX, minY
	g.cols, g.rows = dim, dim
	g.cellW, g.cellH = w/float64(dim), h/float64(dim)

	cells := dim * dim
	if cap(g.start) < cells+1 {
		g.start = make([]int32, cells+1)
		g.counts = make([]int32, cells)
	}
	g.start = g.start[:cells+1]
	g.counts = g.counts[:cells]
	for i := range g.counts {
		g.counts[i] = 0
	}
	if cap(g.items) < n {
		g.items = make([]int32, n)
	}
	g.items = g.items[:n]

	for _, p := range pts {
		g.counts[g.cellIndex(p)]++
	}
	g.start[0] = 0
	for c := 0; c < cells; c++ {
		g.start[c+1] = g.start[c] + g.counts[c]
		g.counts[c] = g.start[c]
	}
	for i, p := range pts {
		c := g.cellIndex(p)
		g.items[g.counts[c]] = int32(i)
		g.counts[c]++
	}

	words := (cells + 63) / 64
	if cap(g.dirty) < words {
		g.dirty = make([]uint64, words)
	}
	// The cap region is zero by invariant: every set bit is in
	// dirtyList, and resetOverlay cleared them all.
	g.dirty = g.dirty[:words]
}

// resetOverlay discards the incremental state: extra lists are
// truncated (capacity kept), the dirty set is cleared, and the overlay
// is rebuilt lazily on the next Move.
func (g *Grid) resetOverlay() {
	for _, c := range g.extraUsed {
		if int(c) < len(g.extra) {
			g.extra[c] = g.extra[c][:0]
		}
	}
	g.extraUsed = g.extraUsed[:0]
	g.movedN = 0
	g.overlayReady = false
	g.ClearDirty()
}

// buildOverlay initialises base/cellOf from the CSR layout.
func (g *Grid) buildOverlay() {
	n := len(g.pts)
	cells := g.cols * g.rows
	if cap(g.base) < n {
		g.base = make([]int32, n)
		g.cellOf = make([]int32, n)
		g.extraSlot = make([]int32, n)
	}
	g.base = g.base[:n]
	g.cellOf = g.cellOf[:n]
	g.extraSlot = g.extraSlot[:n]
	if cap(g.extra) < cells {
		g.extra = append(g.extra[:cap(g.extra)], make([][]int32, cells-cap(g.extra))...)
	}
	g.extra = g.extra[:cells]
	for c := 0; c < cells; c++ {
		for k := g.start[c]; k < g.start[c+1]; k++ {
			g.base[g.items[k]] = int32(c)
			g.cellOf[g.items[k]] = int32(c)
		}
	}
	g.overlayReady = true
}

// Move re-indexes point i after it moved from `from` to `to`, splicing
// it between buckets in O(1) and updating g.pts[i] in place. Every
// position change between Rebuilds must go through Move (or trigger a
// Rebuild): the overlay tracks cells by what it was told, not by
// re-scanning. `from` must be the previous value of pts[i]. Both the
// source and destination cells are marked dirty — a within-cell move
// marks its one cell, since distances to the point still changed.
//
// Moved points may lie outside the bounding box of the last Rebuild;
// they are clamped into edge cells, which keeps queries exact but skews
// bucket balance — watch MovedFraction and Rebuild past ~25%.
func (g *Grid) Move(i int, from, to geom.Point) {
	_ = from // the overlay already knows the source cell; kept for symmetry and debuggability
	if !g.overlayReady {
		g.buildOverlay()
	}
	g.pts[i] = to
	cf := g.cellOf[i]
	ct := int32(g.cellIndex(to))
	g.markDirty(cf)
	if ct == cf {
		return
	}
	g.markDirty(ct)
	if cf != g.base[i] {
		g.extraRemove(int32(i), cf)
	}
	if ct != g.base[i] {
		g.extraAdd(int32(i), ct)
	}
	if cf == g.base[i] {
		g.movedN++
	} else if ct == g.base[i] {
		g.movedN--
	}
	g.cellOf[i] = ct
}

func (g *Grid) extraAdd(i, c int32) {
	if len(g.extra[c]) == 0 {
		g.extraUsed = append(g.extraUsed, c)
	}
	g.extraSlot[i] = int32(len(g.extra[c]))
	g.extra[c] = append(g.extra[c], i)
}

func (g *Grid) extraRemove(i, c int32) {
	lst := g.extra[c]
	s := g.extraSlot[i]
	last := int32(len(lst)) - 1
	movedItem := lst[last]
	lst[s] = movedItem
	g.extraSlot[movedItem] = s
	g.extra[c] = lst[:last]
}

// MovedFraction returns the fraction of points currently outside their
// Rebuild-time bucket — the signal callers use to decide when the
// incremental overlay has degraded enough to warrant a full Rebuild.
func (g *Grid) MovedFraction() float64 {
	if len(g.pts) == 0 {
		return 0
	}
	return float64(g.movedN) / float64(len(g.pts))
}

func (g *Grid) markDirty(c int32) {
	w, b := c>>6, uint64(1)<<(uint(c)&63)
	if g.dirty[w]&b == 0 {
		g.dirty[w] |= b
		g.dirtyList = append(g.dirtyList, c)
	}
}

// DirtyCells returns the cells marked dirty since the last ClearDirty
// or Rebuild. The slice is shared and invalidated by the next Move;
// callers must not retain or mutate it.
func (g *Grid) DirtyCells() []int32 { return g.dirtyList }

// ClearDirty empties the dirty-cell set.
func (g *Grid) ClearDirty() {
	for _, c := range g.dirtyList {
		g.dirty[c>>6] &^= uint64(1) << (uint(c) & 63)
	}
	g.dirtyList = g.dirtyList[:0]
}

// DirtyWithin reports whether any dirty cell intersects the axis-aligned
// square covering the disc of the given radius around p (widened by one
// cell against boundary rounding, like VisitNeighborhood's cull). It is
// the dirty-set analogue of a radius query: if no point within radius r
// of p moved since the last ClearDirty, it returns false.
func (g *Grid) DirtyWithin(p geom.Point, r float64) bool {
	if len(g.dirtyList) == 0 || len(g.pts) == 0 {
		return false
	}
	if r < 0 {
		r = 0
	}
	if math.IsInf(r, 1) {
		return true
	}
	x0 := g.clampCol(int(math.Floor((p.X-r-g.minX)/g.cellW)) - 1)
	x1 := g.clampCol(int(math.Floor((p.X+r-g.minX)/g.cellW)) + 1)
	y0 := g.clampRow(int(math.Floor((p.Y-r-g.minY)/g.cellH)) - 1)
	y1 := g.clampRow(int(math.Floor((p.Y+r-g.minY)/g.cellH)) + 1)
	area := (x1 - x0 + 1) * (y1 - y0 + 1)
	if len(g.dirtyList) < area {
		for _, c := range g.dirtyList {
			cx, cy := int(c)%g.cols, int(c)/g.cols
			if cx >= x0 && cx <= x1 && cy >= y0 && cy <= y1 {
				return true
			}
		}
		return false
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			c := y*g.cols + x
			if g.dirty[c>>6]&(uint64(1)<<(uint(c)&63)) != 0 {
				return true
			}
		}
	}
	return false
}

// cellCoords returns the (column, row) of the cell containing p, clamped
// into the grid (query points may lie outside the indexed bounding box).
// An empty grid has no cells; (0, 0) keeps downstream arithmetic in
// bounds and no caller dereferences a bucket without indexed points.
func (g *Grid) cellCoords(p geom.Point) (int, int) {
	if g.cols <= 0 || g.rows <= 0 {
		return 0, 0
	}
	ix := int((p.X - g.minX) / g.cellW)
	if ix < 0 {
		ix = 0
	} else if ix >= g.cols {
		ix = g.cols - 1
	}
	iy := int((p.Y - g.minY) / g.cellH)
	if iy < 0 {
		iy = 0
	} else if iy >= g.rows {
		iy = g.rows - 1
	}
	return ix, iy
}

func (g *Grid) cellIndex(p geom.Point) int {
	ix, iy := g.cellCoords(p)
	return iy*g.cols + ix
}

// visitCell calls fn for every point currently in cell (ix, iy): the
// CSR bucket in ascending point-index order, then — when Moves are
// outstanding — the cell's extra list of moved-in points (arbitrary
// order). Items that moved out of their CSR bucket are masked by the
// cellOf check. Result sets and explicit lowest-index tie rules are
// unaffected by the weaker order; only the "ascending" visit guarantee
// is limited to move-free grids.
func (g *Grid) visitCell(ix, iy int, fn func(j int32)) {
	c := int32(iy*g.cols + ix)
	if g.movedN == 0 {
		for k := g.start[c]; k < g.start[c+1]; k++ {
			fn(g.items[k])
		}
		return
	}
	for k := g.start[c]; k < g.start[c+1]; k++ {
		if j := g.items[k]; g.cellOf[j] == c {
			fn(j)
		}
	}
	for _, j := range g.extra[c] {
		fn(j)
	}
}

// visitRing visits every in-grid cell at Chebyshev distance exactly r
// from (ix, iy).
func (g *Grid) visitRing(ix, iy, r int, fn func(j int32)) {
	if r == 0 {
		g.visitCell(ix, iy, fn)
		return
	}
	x0, x1 := ix-r, ix+r
	y0, y1 := iy-r, iy+r
	for x := x0; x <= x1; x++ {
		if x < 0 || x >= g.cols {
			continue
		}
		if y0 >= 0 {
			g.visitCell(x, y0, fn)
		}
		if y1 < g.rows {
			g.visitCell(x, y1, fn)
		}
	}
	for y := y0 + 1; y <= y1-1; y++ {
		if y < 0 || y >= g.rows {
			continue
		}
		if x0 >= 0 {
			g.visitCell(x0, y, fn)
		}
		if x1 < g.cols {
			g.visitCell(x1, y, fn)
		}
	}
}

// maxRing returns the largest Chebyshev ring around (ix, iy) that still
// intersects the grid.
func (g *Grid) maxRing(ix, iy int) int {
	m := ix
	if v := g.cols - 1 - ix; v > m {
		m = v
	}
	if iy > m {
		m = iy
	}
	if v := g.rows - 1 - iy; v > m {
		m = v
	}
	return m
}

// ringLowerBound returns a lower bound on the distance from p to any
// indexed point whose cell lies at Chebyshev ring >= r around (ix, iy).
// Directions in which rings 0..r-1 already cover the whole grid
// contribute +Inf (no unvisited point can lie that way); the bound is
// +Inf exactly when every indexed point has been visited.
func (g *Grid) ringLowerBound(p geom.Point, ix, iy, r int) float64 {
	if r <= 0 {
		return 0
	}
	b := math.Inf(1)
	if lo := ix - (r - 1); lo > 0 {
		if d := p.X - (g.minX + float64(lo)*g.cellW); d < b {
			b = d
		}
	}
	if hi := ix + (r - 1); hi < g.cols-1 {
		if d := (g.minX + float64(hi+1)*g.cellW) - p.X; d < b {
			b = d
		}
	}
	if lo := iy - (r - 1); lo > 0 {
		if d := p.Y - (g.minY + float64(lo)*g.cellH); d < b {
			b = d
		}
	}
	if hi := iy + (r - 1); hi < g.rows-1 {
		if d := (g.minY + float64(hi+1)*g.cellH) - p.Y; d < b {
			b = d
		}
	}
	if b < 0 {
		b = 0
	}
	return b
}

// NearestTo returns the index of the indexed point nearest to p by
// geom.Point.Dist, excluding index `exclude` (pass a negative value to
// exclude nothing), together with that distance. Exact distance ties go
// to the lowest index — the same rule as an ascending brute-force scan
// with a strict "<" comparison, so the two agree bit-for-bit. Returns
// (-1, +Inf) when no point qualifies.
func (g *Grid) NearestTo(p geom.Point, exclude int) (int, float64) {
	best := math.Inf(1)
	bestIdx := -1
	if len(g.pts) == 0 {
		return bestIdx, best
	}
	ix, iy := g.cellCoords(p)
	maxR := g.maxRing(ix, iy)
	for r := 0; r <= maxR; r++ {
		if bestIdx >= 0 && g.ringLowerBound(p, ix, iy, r) > best+safetyMargin(best) {
			break
		}
		g.visitRing(ix, iy, r, func(j int32) {
			if int(j) == exclude {
				return
			}
			d := p.Dist(g.pts[j])
			if d < best || (d == best && int(j) < bestIdx) {
				best, bestIdx = d, int(j)
			}
		})
	}
	return bestIdx, best
}

// VisitNeighborhood calls fn(j, d) — d being the exact geom.Point.Dist
// from p to point j — for every indexed point whose distance to p is at
// most radius, and possibly for some points slightly beyond (the cull is
// by covering cells, widened by one cell against boundary rounding).
// Callers must apply their own final predicate on d; doing so with the
// brute-force arithmetic makes the accepted set identical to a full
// scan. Visit order is bucket order, not distance order.
func (g *Grid) VisitNeighborhood(p geom.Point, radius float64, fn func(j int, d float64)) {
	if len(g.pts) == 0 || radius < 0 {
		return
	}
	x0 := g.clampCol(int(math.Floor((p.X-radius-g.minX)/g.cellW)) - 1)
	x1 := g.clampCol(int(math.Floor((p.X+radius-g.minX)/g.cellW)) + 1)
	y0 := g.clampRow(int(math.Floor((p.Y-radius-g.minY)/g.cellH)) - 1)
	y1 := g.clampRow(int(math.Floor((p.Y+radius-g.minY)/g.cellH)) + 1)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			g.visitCell(x, y, func(j int32) {
				fn(int(j), p.Dist(g.pts[j]))
			})
		}
	}
}

// CellCount returns the number of grid cells (cols × rows; 0 for an
// empty grid). Cell indices are row-major: c = row*cols + col. The count
// is only invalidated by Rebuild, so callers may iterate cells while
// issuing queries.
func (g *Grid) CellCount() int { return g.cols * g.rows }

// VisitCellMembers calls fn for every point currently located in cell c:
// the CSR bucket in ascending point-index order, then any moved-in
// points (see visitCell).
func (g *Grid) VisitCellMembers(c int, fn func(j int32)) {
	if g.cols <= 0 {
		return
	}
	g.visitCell(c%g.cols, c/g.cols, fn)
}

// AppendCellWindow appends to buf the index of every point whose current
// cell lies within ceil(r/cellSide)+1 cells of cell c in each axis — a
// guaranteed candidate superset of the points within distance r of ANY
// point located in cell c. The guarantee covers moved points clamped
// into c from outside the indexed box: clamping columns is monotone and
// non-expansive, so two points within distance r land at most
// ceil(r/cellW)+1 clamped columns apart (likewise rows). Each point is
// appended at most once; callers apply the exact distance predicate.
func (g *Grid) AppendCellWindow(buf []int32, c int, r float64) []int32 {
	if g.cols <= 0 || r < 0 {
		return buf
	}
	cx, cy := c%g.cols, c/g.cols
	sx := spanCells(r, g.cellW, g.cols)
	sy := spanCells(r, g.cellH, g.rows)
	x0, x1 := g.clampCol(cx-sx), g.clampCol(cx+sx)
	y0, y1 := g.clampRow(cy-sy), g.clampRow(cy+sy)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			g.visitCell(x, y, func(j int32) { buf = append(buf, j) })
		}
	}
	return buf
}

// spanCells converts a world-space radius into a half-width in cells,
// saturating at the full axis (NaN, Inf and huge radii all take it).
func spanCells(r, side float64, cells int) int {
	s := math.Ceil(r / side)
	if !(s < float64(cells)) {
		return cells
	}
	return int(s) + 1
}

func (g *Grid) clampCol(x int) int {
	if x < 0 {
		return 0
	}
	if x >= g.cols {
		return g.cols - 1
	}
	return x
}

func (g *Grid) clampRow(y int) int {
	if y < 0 {
		return 0
	}
	if y >= g.rows {
		return g.rows - 1
	}
	return y
}

// VisitRings enumerates every indexed point, grouped into Chebyshev
// rings of nondecreasing distance lower bound around p. Before each
// ring, ringFn receives a lower bound on the distance from p to every
// point not yet enumerated (this ring and beyond); returning false stops
// the enumeration. After the last ring, ringFn is called once more with
// +Inf so callers can flush per-ring accumulation. fn sees each point
// exactly once. Within a ring the visit order is cell order, not
// distance order — the bound applies to the whole remainder.
func (g *Grid) VisitRings(p geom.Point, ringFn func(lowerBound float64) bool, fn func(j int)) {
	if len(g.pts) == 0 {
		ringFn(math.Inf(1))
		return
	}
	ix, iy := g.cellCoords(p)
	maxR := g.maxRing(ix, iy)
	for r := 0; r <= maxR; r++ {
		if !ringFn(g.ringLowerBound(p, ix, iy, r)) {
			return
		}
		g.visitRing(ix, iy, r, func(j int32) { fn(int(j)) })
	}
	ringFn(math.Inf(1))
}

// NearestRadii returns, per point, half the distance to its nearest
// neighbour — the granular radius of the paper's §3.2 preprocessing. A
// single point (no neighbour) gets +Inf, matching the brute-force
// convention. Values are bit-identical to NearestRadiiBrute: the grid
// only narrows candidates, the minimum is taken with the same
// geom.Point.Dist arithmetic.
func NearestRadii(pts []geom.Point) []float64 {
	out := make([]float64, len(pts))
	if len(pts) < bruteCutoff {
		nearestRadiiBruteInto(out, pts)
		return out
	}
	g := NewGrid(pts)
	for i := range pts {
		_, d := g.NearestTo(pts[i], i)
		out[i] = d / 2
	}
	return out
}

// NearestRadiiBrute is the O(n²) reference twin of NearestRadii, kept
// for property tests and the before/after benchmarks.
func NearestRadiiBrute(pts []geom.Point) []float64 {
	out := make([]float64, len(pts))
	nearestRadiiBruteInto(out, pts)
	return out
}

func nearestRadiiBruteInto(out []float64, pts []geom.Point) {
	for i, p := range pts {
		best := math.Inf(1)
		for j, q := range pts {
			if i != j {
				if d := p.Dist(q); d < best {
					best = d
				}
			}
		}
		out[i] = best / 2
	}
}

// Placer is an incremental minimum-separation index over an unbounded
// domain, for rejection-sampling placement loops: instead of scanning
// all previously accepted points (O(n) per attempt, O(n²) per
// configuration), each conflict check inspects the 3×3 cell
// neighbourhood of the candidate. The conflict predicate is exactly
// "exists an accepted point with Dist(p, q) < minSep" — the same strict
// comparison the brute-force loops used — so accept/reject decisions,
// and therefore the generated configurations for a given random stream,
// are unchanged.
type Placer struct {
	minSep  float64
	cell    float64
	buckets map[[2]int32][]int32
	pts     []geom.Point
}

// NewPlacer creates a placer with the given minimum separation
// (non-positive means no separation constraint).
func NewPlacer(minSep float64) *Placer {
	cell := minSep
	if cell <= 0 {
		cell = 1
	}
	return &Placer{minSep: minSep, cell: cell, buckets: make(map[[2]int32][]int32)}
}

// Len returns the number of accepted points.
func (pl *Placer) Len() int { return len(pl.pts) }

// Points returns the accepted points. The caller may take ownership;
// the Placer must not be used afterwards.
func (pl *Placer) Points() []geom.Point { return pl.pts }

func (pl *Placer) key(p geom.Point) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / pl.cell)), int32(math.Floor(p.Y / pl.cell))}
}

// TooClose reports whether an accepted point lies strictly closer than
// minSep to p. With cell side = minSep, any such point's cell differs by
// at most one in each axis, so the 3×3 neighbourhood is a guaranteed
// superset of conflicts.
func (pl *Placer) TooClose(p geom.Point) bool {
	if pl.minSep <= 0 {
		return false
	}
	k := pl.key(p)
	for dy := int32(-1); dy <= 1; dy++ {
		for dx := int32(-1); dx <= 1; dx++ {
			for _, j := range pl.buckets[[2]int32{k[0] + dx, k[1] + dy}] {
				if p.Dist(pl.pts[j]) < pl.minSep {
					return true
				}
			}
		}
	}
	return false
}

// Add accepts p into the index.
func (pl *Placer) Add(p geom.Point) {
	k := pl.key(p)
	pl.buckets[k] = append(pl.buckets[k], int32(len(pl.pts)))
	pl.pts = append(pl.pts, p)
}
