// Package spatial provides a uniform-grid point index over planar point
// sets: expected-O(1) nearest-neighbour and radius queries on a static
// site set, a rebuildable variant for per-step snapshots of moving
// robots, and an incremental minimum-separation index for rejection
// sampling.
//
// Every accelerated caller in this repository keeps a brute-force twin
// and is pinned to it by property tests; the index is engineered so the
// accelerated results are not merely close but IDENTICAL:
//
//   - The grid only narrows the candidate set. Final predicates
//     ("distance <= r", "distance < minSep") are evaluated by the caller
//     with exactly the arithmetic the brute-force scan uses
//     (geom.Point.Dist, i.e. math.Hypot), so a candidate superset yields
//     the same accepted set, the same minimum value, and — with the
//     shared lowest-index tie rule — the same argmin.
//   - Pruning bounds carry a geom.Eps-scaled safety margin, orders of
//     magnitude above float64 rounding of the bound arithmetic, so a
//     point can never be pruned while still beating the current best.
//
// Cell sizing targets ~2 points per cell on quasi-uniform sets
// (cols = rows = floor(sqrt(n/2))), which bounds the bucket array by n/2
// and keeps rebuilds allocation-free after warm-up. Clustered or
// collinear inputs degrade gracefully: queries fall back to scanning
// more rings and remain correct (worst case O(n), the brute-force cost).
package spatial

import (
	"math"

	"waggle/internal/geom"
)

// bruteCutoff is the point count below which NearestRadii stays with the
// direct all-pairs scan: building a grid costs more than ~500 distance
// evaluations.
const bruteCutoff = 24

// safetyMargin is the slack added to every pruning bound so that float64
// rounding in the bound arithmetic can never exclude a candidate that
// would win an exact comparison. It mirrors geom.ApproxEq's scaling.
func safetyMargin(d float64) float64 { return geom.Eps * (1 + d) }

// Grid is a uniform bucket index over a point slice. The points are
// referenced, not copied: the caller must not mutate them between
// Rebuild and the queries that depend on them. A zero Grid is not
// usable; construct with NewGrid or call Rebuild first.
type Grid struct {
	pts          []geom.Point
	minX, minY   float64
	cellW, cellH float64
	cols, rows   int

	// CSR bucket layout: bucket c holds items[start[c]:start[c+1]],
	// in ascending point-index order.
	start  []int32
	items  []int32
	counts []int32 // rebuild scratch
}

// NewGrid indexes pts. The slice is referenced, not copied.
func NewGrid(pts []geom.Point) *Grid {
	g := &Grid{}
	g.Rebuild(pts)
	return g
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// Rebuild re-indexes the grid over pts, reusing the internal buffers —
// the per-step snapshot path in the simulator calls this once per
// instant and allocates nothing after warm-up.
func (g *Grid) Rebuild(pts []geom.Point) {
	g.pts = pts
	n := len(pts)
	if n == 0 {
		g.cols, g.rows = 0, 0
		g.items = g.items[:0]
		return
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	dim := int(math.Sqrt(float64(n) / 2))
	if dim < 1 {
		dim = 1
	}
	w, h := maxX-minX, maxY-minY
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	g.minX, g.minY = minX, minY
	g.cols, g.rows = dim, dim
	g.cellW, g.cellH = w/float64(dim), h/float64(dim)

	cells := dim * dim
	if cap(g.start) < cells+1 {
		g.start = make([]int32, cells+1)
		g.counts = make([]int32, cells)
	}
	g.start = g.start[:cells+1]
	g.counts = g.counts[:cells]
	for i := range g.counts {
		g.counts[i] = 0
	}
	if cap(g.items) < n {
		g.items = make([]int32, n)
	}
	g.items = g.items[:n]

	for _, p := range pts {
		g.counts[g.cellIndex(p)]++
	}
	g.start[0] = 0
	for c := 0; c < cells; c++ {
		g.start[c+1] = g.start[c] + g.counts[c]
		g.counts[c] = g.start[c]
	}
	for i, p := range pts {
		c := g.cellIndex(p)
		g.items[g.counts[c]] = int32(i)
		g.counts[c]++
	}
}

// cellCoords returns the (column, row) of the cell containing p, clamped
// into the grid (query points may lie outside the indexed bounding box).
func (g *Grid) cellCoords(p geom.Point) (int, int) {
	ix := int((p.X - g.minX) / g.cellW)
	if ix < 0 {
		ix = 0
	} else if ix >= g.cols {
		ix = g.cols - 1
	}
	iy := int((p.Y - g.minY) / g.cellH)
	if iy < 0 {
		iy = 0
	} else if iy >= g.rows {
		iy = g.rows - 1
	}
	return ix, iy
}

func (g *Grid) cellIndex(p geom.Point) int {
	ix, iy := g.cellCoords(p)
	return iy*g.cols + ix
}

// visitCell calls fn for every point bucketed in cell (ix, iy), in
// ascending point-index order.
func (g *Grid) visitCell(ix, iy int, fn func(j int32)) {
	c := iy*g.cols + ix
	for k := g.start[c]; k < g.start[c+1]; k++ {
		fn(g.items[k])
	}
}

// visitRing visits every in-grid cell at Chebyshev distance exactly r
// from (ix, iy).
func (g *Grid) visitRing(ix, iy, r int, fn func(j int32)) {
	if r == 0 {
		g.visitCell(ix, iy, fn)
		return
	}
	x0, x1 := ix-r, ix+r
	y0, y1 := iy-r, iy+r
	for x := x0; x <= x1; x++ {
		if x < 0 || x >= g.cols {
			continue
		}
		if y0 >= 0 {
			g.visitCell(x, y0, fn)
		}
		if y1 < g.rows {
			g.visitCell(x, y1, fn)
		}
	}
	for y := y0 + 1; y <= y1-1; y++ {
		if y < 0 || y >= g.rows {
			continue
		}
		if x0 >= 0 {
			g.visitCell(x0, y, fn)
		}
		if x1 < g.cols {
			g.visitCell(x1, y, fn)
		}
	}
}

// maxRing returns the largest Chebyshev ring around (ix, iy) that still
// intersects the grid.
func (g *Grid) maxRing(ix, iy int) int {
	m := ix
	if v := g.cols - 1 - ix; v > m {
		m = v
	}
	if iy > m {
		m = iy
	}
	if v := g.rows - 1 - iy; v > m {
		m = v
	}
	return m
}

// ringLowerBound returns a lower bound on the distance from p to any
// indexed point whose cell lies at Chebyshev ring >= r around (ix, iy).
// Directions in which rings 0..r-1 already cover the whole grid
// contribute +Inf (no unvisited point can lie that way); the bound is
// +Inf exactly when every indexed point has been visited.
func (g *Grid) ringLowerBound(p geom.Point, ix, iy, r int) float64 {
	if r <= 0 {
		return 0
	}
	b := math.Inf(1)
	if lo := ix - (r - 1); lo > 0 {
		if d := p.X - (g.minX + float64(lo)*g.cellW); d < b {
			b = d
		}
	}
	if hi := ix + (r - 1); hi < g.cols-1 {
		if d := (g.minX + float64(hi+1)*g.cellW) - p.X; d < b {
			b = d
		}
	}
	if lo := iy - (r - 1); lo > 0 {
		if d := p.Y - (g.minY + float64(lo)*g.cellH); d < b {
			b = d
		}
	}
	if hi := iy + (r - 1); hi < g.rows-1 {
		if d := (g.minY + float64(hi+1)*g.cellH) - p.Y; d < b {
			b = d
		}
	}
	if b < 0 {
		b = 0
	}
	return b
}

// NearestTo returns the index of the indexed point nearest to p by
// geom.Point.Dist, excluding index `exclude` (pass a negative value to
// exclude nothing), together with that distance. Exact distance ties go
// to the lowest index — the same rule as an ascending brute-force scan
// with a strict "<" comparison, so the two agree bit-for-bit. Returns
// (-1, +Inf) when no point qualifies.
func (g *Grid) NearestTo(p geom.Point, exclude int) (int, float64) {
	best := math.Inf(1)
	bestIdx := -1
	if len(g.pts) == 0 {
		return bestIdx, best
	}
	ix, iy := g.cellCoords(p)
	maxR := g.maxRing(ix, iy)
	for r := 0; r <= maxR; r++ {
		if bestIdx >= 0 && g.ringLowerBound(p, ix, iy, r) > best+safetyMargin(best) {
			break
		}
		g.visitRing(ix, iy, r, func(j int32) {
			if int(j) == exclude {
				return
			}
			d := p.Dist(g.pts[j])
			if d < best || (d == best && int(j) < bestIdx) {
				best, bestIdx = d, int(j)
			}
		})
	}
	return bestIdx, best
}

// VisitNeighborhood calls fn(j, d) — d being the exact geom.Point.Dist
// from p to point j — for every indexed point whose distance to p is at
// most radius, and possibly for some points slightly beyond (the cull is
// by covering cells, widened by one cell against boundary rounding).
// Callers must apply their own final predicate on d; doing so with the
// brute-force arithmetic makes the accepted set identical to a full
// scan. Visit order is bucket order, not distance order.
func (g *Grid) VisitNeighborhood(p geom.Point, radius float64, fn func(j int, d float64)) {
	if len(g.pts) == 0 || radius < 0 {
		return
	}
	x0 := g.clampCol(int(math.Floor((p.X-radius-g.minX)/g.cellW)) - 1)
	x1 := g.clampCol(int(math.Floor((p.X+radius-g.minX)/g.cellW)) + 1)
	y0 := g.clampRow(int(math.Floor((p.Y-radius-g.minY)/g.cellH)) - 1)
	y1 := g.clampRow(int(math.Floor((p.Y+radius-g.minY)/g.cellH)) + 1)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			g.visitCell(x, y, func(j int32) {
				fn(int(j), p.Dist(g.pts[j]))
			})
		}
	}
}

func (g *Grid) clampCol(x int) int {
	if x < 0 {
		return 0
	}
	if x >= g.cols {
		return g.cols - 1
	}
	return x
}

func (g *Grid) clampRow(y int) int {
	if y < 0 {
		return 0
	}
	if y >= g.rows {
		return g.rows - 1
	}
	return y
}

// VisitRings enumerates every indexed point, grouped into Chebyshev
// rings of nondecreasing distance lower bound around p. Before each
// ring, ringFn receives a lower bound on the distance from p to every
// point not yet enumerated (this ring and beyond); returning false stops
// the enumeration. After the last ring, ringFn is called once more with
// +Inf so callers can flush per-ring accumulation. fn sees each point
// exactly once. Within a ring the visit order is cell order, not
// distance order — the bound applies to the whole remainder.
func (g *Grid) VisitRings(p geom.Point, ringFn func(lowerBound float64) bool, fn func(j int)) {
	if len(g.pts) == 0 {
		ringFn(math.Inf(1))
		return
	}
	ix, iy := g.cellCoords(p)
	maxR := g.maxRing(ix, iy)
	for r := 0; r <= maxR; r++ {
		if !ringFn(g.ringLowerBound(p, ix, iy, r)) {
			return
		}
		g.visitRing(ix, iy, r, func(j int32) { fn(int(j)) })
	}
	ringFn(math.Inf(1))
}

// NearestRadii returns, per point, half the distance to its nearest
// neighbour — the granular radius of the paper's §3.2 preprocessing. A
// single point (no neighbour) gets +Inf, matching the brute-force
// convention. Values are bit-identical to NearestRadiiBrute: the grid
// only narrows candidates, the minimum is taken with the same
// geom.Point.Dist arithmetic.
func NearestRadii(pts []geom.Point) []float64 {
	out := make([]float64, len(pts))
	if len(pts) < bruteCutoff {
		nearestRadiiBruteInto(out, pts)
		return out
	}
	g := NewGrid(pts)
	for i := range pts {
		_, d := g.NearestTo(pts[i], i)
		out[i] = d / 2
	}
	return out
}

// NearestRadiiBrute is the O(n²) reference twin of NearestRadii, kept
// for property tests and the before/after benchmarks.
func NearestRadiiBrute(pts []geom.Point) []float64 {
	out := make([]float64, len(pts))
	nearestRadiiBruteInto(out, pts)
	return out
}

func nearestRadiiBruteInto(out []float64, pts []geom.Point) {
	for i, p := range pts {
		best := math.Inf(1)
		for j, q := range pts {
			if i != j {
				if d := p.Dist(q); d < best {
					best = d
				}
			}
		}
		out[i] = best / 2
	}
}

// Placer is an incremental minimum-separation index over an unbounded
// domain, for rejection-sampling placement loops: instead of scanning
// all previously accepted points (O(n) per attempt, O(n²) per
// configuration), each conflict check inspects the 3×3 cell
// neighbourhood of the candidate. The conflict predicate is exactly
// "exists an accepted point with Dist(p, q) < minSep" — the same strict
// comparison the brute-force loops used — so accept/reject decisions,
// and therefore the generated configurations for a given random stream,
// are unchanged.
type Placer struct {
	minSep  float64
	cell    float64
	buckets map[[2]int32][]int32
	pts     []geom.Point
}

// NewPlacer creates a placer with the given minimum separation
// (non-positive means no separation constraint).
func NewPlacer(minSep float64) *Placer {
	cell := minSep
	if cell <= 0 {
		cell = 1
	}
	return &Placer{minSep: minSep, cell: cell, buckets: make(map[[2]int32][]int32)}
}

// Len returns the number of accepted points.
func (pl *Placer) Len() int { return len(pl.pts) }

// Points returns the accepted points. The caller may take ownership;
// the Placer must not be used afterwards.
func (pl *Placer) Points() []geom.Point { return pl.pts }

func (pl *Placer) key(p geom.Point) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / pl.cell)), int32(math.Floor(p.Y / pl.cell))}
}

// TooClose reports whether an accepted point lies strictly closer than
// minSep to p. With cell side = minSep, any such point's cell differs by
// at most one in each axis, so the 3×3 neighbourhood is a guaranteed
// superset of conflicts.
func (pl *Placer) TooClose(p geom.Point) bool {
	if pl.minSep <= 0 {
		return false
	}
	k := pl.key(p)
	for dy := int32(-1); dy <= 1; dy++ {
		for dx := int32(-1); dx <= 1; dx++ {
			for _, j := range pl.buckets[[2]int32{k[0] + dx, k[1] + dy}] {
				if p.Dist(pl.pts[j]) < pl.minSep {
					return true
				}
			}
		}
	}
	return false
}

// Add accepts p into the index.
func (pl *Placer) Add(p geom.Point) {
	k := pl.key(p)
	pl.buckets[k] = append(pl.buckets[k], int32(len(pl.pts)))
	pl.pts = append(pl.pts, p)
}
