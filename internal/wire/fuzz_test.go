package wire

import (
	"errors"
	"testing"

	"waggle/internal/ckpt"
)

// FuzzDecodeCheckpoint hammers the binary decoder with arbitrary
// bytes. The contract under attack: Decode never panics, never
// allocates proportionally to a length claimed by the input (only to
// the input's actual size), and every failure is one of the typed
// sentinels — ErrSchema, ErrChecksum, ErrTruncated — so callers can
// distinguish "wrong format" from "damaged file" from "torn write".
func FuzzDecodeCheckpoint(f *testing.F) {
	// Seed corpus: valid encodings of increasingly-populated
	// checkpoints plus a multi-frame delta chain, so mutation starts
	// from deep inside the format instead of rediscovering the magic.
	small := &ckpt.Checkpoint{
		Config: ckpt.Config{Positions: []ckpt.XY{{X: 0, Y: 0}, {X: 1, Y: 1}}},
		State: ckpt.State{
			Positions: []ckpt.XY{{X: 0, Y: 0}, {X: 1, Y: 1}},
			Endpoints: []ckpt.EndpointState{{Idle: true}, {Idle: true}},
		},
	}
	if data, err := Encode(small); err == nil {
		f.Add(data)
	}
	full := fullCheckpoint()
	if data, err := Encode(full); err == nil {
		f.Add(data)
	}
	if base, crc, err := EncodeBaseFrame(full); err == nil {
		cur := mutateCheckpoint(full)
		if d, err := ComputeDelta(full, cur); err == nil {
			if frame, _, err := EncodeDeltaFrame(d, &full.State, crc); err == nil {
				f.Add(append(append([]byte(nil), base...), frame...))
			}
		}
	}
	f.Add([]byte(magicBase))
	f.Add([]byte(magicDelta))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ckpt.ErrSchema) && !errors.Is(err, ckpt.ErrChecksum) && !errors.Is(err, ckpt.ErrTruncated) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A successful decode must hand back an internally consistent
		// checkpoint: re-encoding it must work (the encoder validates
		// ascending indices and schema invariants as it goes).
		if _, err := Encode(ck); err != nil {
			t.Fatalf("decoded checkpoint does not re-encode: %v", err)
		}
	})
}
