package wire

import (
	"fmt"
	"math"

	"waggle/internal/ckpt"
)

// Delta is the difference between two consecutive checkpoints of the
// same run: everything needed to advance a folded Checkpoint from the
// previous capture to the next one. Values are stored absolute (the
// new value); the compression against the previous state happens at
// encode time, so ApplyDelta needs no wire knowledge and the writer's
// in-memory mirror and the loader's fold share one code path.
//
// The sparse fields exploit what actually changes between captures of
// a large sparse-activation run: a handful of robots moved (PosChanged,
// EndpointChanged), the input log only grew at its run-length-merged
// tail (InputTailStart/InputTail), the delivery log only appended
// (DeliveredTail), and the scheduler's per-robot idle counters moved
// mostly in lockstep (IdleShift plus overrides).
type Delta struct {
	Time     int
	Consumed int
	// SchedulerDraws is the absolute RNG stream position.
	SchedulerDraws uint64
	// PosChanged lists robots whose position differs from the previous
	// capture, ascending by index, with the new absolute position.
	PosChanged []PosChange
	// EndpointChanged lists robots whose endpoint observables differ,
	// ascending by index, with the new absolute observable tuple.
	EndpointChanged []EndpointChange
	// DeliveredTail is the suffix appended to State.Delivered since the
	// previous capture (the delivery log is append-only).
	DeliveredTail []ckpt.MessageState
	// InputTailStart and InputTail splice the input log: the folded log
	// becomes inputs[:InputTailStart] + InputTail. The recorder only
	// appends entries or grows the last entry's run-length count, so the
	// tail is the shared-prefix remainder — usually one or two entries.
	InputTailStart int
	InputTail      []ckpt.Input
	// HasIdle mirrors whether the new state carries scheduler idle
	// counters at all (nil for synchronous schedulers). When set, the
	// folded counters are expand(prev, IdleLen) + IdleShift with sparse
	// absolute IdleOverrides — under random-fair scheduling every
	// counter increments each step except the activated few, so the
	// majority shift covers almost every robot.
	HasIdle       bool
	IdleLen       int
	IdleShift     int
	IdleOverrides []IdleOverride
	// The subsystem snapshots are small; a changed one is carried whole.
	RadioChanged     bool
	Radio            *ckpt.RadioState
	MessengerChanged bool
	Messenger        *ckpt.MessengerState
	FaultChanged     bool
	Fault            *ckpt.FaultState
	// Digests are absolute (cheap strings, recomputed per capture).
	TraceDigest string
	ObsDigest   string
}

// PosChange is one robot's new absolute position.
type PosChange struct {
	Index int
	Pos   ckpt.XY
}

// EndpointChange is one robot's new absolute endpoint observables.
type EndpointChange struct {
	Index int
	State ckpt.EndpointState
}

// IdleOverride is one robot's absolute idle counter where the majority
// shift does not apply (the robots activated during the interval).
type IdleOverride struct {
	Index int
	Value int
}

// ComputeDelta diffs two full checkpoints of the same run, cur against
// prev. It is the reference producer (the facade's checkpoint writer
// computes the same delta sparsely without materializing cur). The
// robot count must not change between captures.
func ComputeDelta(prev, cur *ckpt.Checkpoint) (*Delta, error) {
	ps, cs := &prev.State, &cur.State
	if len(ps.Positions) != len(cs.Positions) {
		return nil, fmt.Errorf("wire: robot count changed between captures (%d -> %d)", len(ps.Positions), len(cs.Positions))
	}
	if len(ps.Endpoints) != len(cs.Endpoints) {
		return nil, fmt.Errorf("wire: endpoint count changed between captures (%d -> %d)", len(ps.Endpoints), len(cs.Endpoints))
	}
	d := &Delta{
		Time:           cs.Time,
		Consumed:       cs.Consumed,
		SchedulerDraws: cs.SchedulerDraws,
		TraceDigest:    cs.TraceDigest,
		ObsDigest:      cs.ObsDigest,
	}
	for i := range cs.Positions {
		if cs.Positions[i] != ps.Positions[i] {
			d.PosChanged = append(d.PosChanged, PosChange{Index: i, Pos: cs.Positions[i]})
		}
	}
	for i := range cs.Endpoints {
		if cs.Endpoints[i] != ps.Endpoints[i] {
			d.EndpointChanged = append(d.EndpointChanged, EndpointChange{Index: i, State: cs.Endpoints[i]})
		}
	}
	if len(cs.Delivered) < len(ps.Delivered) {
		return nil, fmt.Errorf("wire: delivery log shrank between captures (%d -> %d)", len(ps.Delivered), len(cs.Delivered))
	}
	if tail := cs.Delivered[len(ps.Delivered):]; len(tail) > 0 {
		d.DeliveredTail = append([]ckpt.MessageState(nil), tail...)
	}
	// Longest common input prefix; the recorder only appends or grows
	// the final entry, so this is len-1 or len in practice.
	p := 0
	for p < len(prev.Inputs) && p < len(cur.Inputs) && inputEqual(&prev.Inputs[p], &cur.Inputs[p]) {
		p++
	}
	d.InputTailStart = p
	if tail := cur.Inputs[p:]; len(tail) > 0 {
		d.InputTail = append([]ckpt.Input(nil), tail...)
	}
	if cs.SchedulerIdle != nil {
		d.HasIdle = true
		d.IdleLen = len(cs.SchedulerIdle)
		d.IdleShift, d.IdleOverrides = DiffIdle(ps.SchedulerIdle, cs.SchedulerIdle)
	}
	if !radioEqual(ps.Radio, cs.Radio) {
		d.RadioChanged = true
		d.Radio = cs.Radio
	}
	if !messengerEqual(ps.Messenger, cs.Messenger) {
		d.MessengerChanged = true
		d.Messenger = cs.Messenger
	}
	if !faultEqual(ps.Fault, cs.Fault) {
		d.FaultChanged = true
		d.Fault = cs.Fault
	}
	return d, nil
}

// ApplyDelta advances a folded checkpoint by one delta, in place. It is
// the single fold step shared by the chain loader and the writer's
// mirror. Indices out of range mean a corrupt or mismatched delta.
func ApplyDelta(ck *ckpt.Checkpoint, d *Delta) error {
	st := &ck.State
	st.Time = d.Time
	st.Consumed = d.Consumed
	st.SchedulerDraws = d.SchedulerDraws
	st.TraceDigest = d.TraceDigest
	st.ObsDigest = d.ObsDigest
	for _, pc := range d.PosChanged {
		if pc.Index < 0 || pc.Index >= len(st.Positions) {
			return fmt.Errorf("%w: delta position index %d out of range %d", ckpt.ErrTruncated, pc.Index, len(st.Positions))
		}
		st.Positions[pc.Index] = pc.Pos
	}
	for _, ec := range d.EndpointChanged {
		if ec.Index < 0 || ec.Index >= len(st.Endpoints) {
			return fmt.Errorf("%w: delta endpoint index %d out of range %d", ckpt.ErrTruncated, ec.Index, len(st.Endpoints))
		}
		st.Endpoints[ec.Index] = ec.State
	}
	st.Delivered = append(st.Delivered, d.DeliveredTail...)
	if d.InputTailStart < 0 || d.InputTailStart > len(ck.Inputs) {
		return fmt.Errorf("%w: delta input splice point %d beyond log length %d", ckpt.ErrTruncated, d.InputTailStart, len(ck.Inputs))
	}
	ck.Inputs = append(ck.Inputs[:d.InputTailStart], d.InputTail...)
	if ck.Inputs != nil && len(ck.Inputs) == 0 {
		ck.Inputs = nil
	}
	if !d.HasIdle {
		st.SchedulerIdle = nil
	} else {
		idle := expandIdle(st.SchedulerIdle, d.IdleLen)
		for i := range idle {
			idle[i] += d.IdleShift
		}
		for _, ov := range d.IdleOverrides {
			if ov.Index < 0 || ov.Index >= len(idle) {
				return fmt.Errorf("%w: delta idle index %d out of range %d", ckpt.ErrTruncated, ov.Index, len(idle))
			}
			idle[ov.Index] = ov.Value
		}
		st.SchedulerIdle = idle
	}
	if d.RadioChanged {
		st.Radio = d.Radio
	}
	if d.MessengerChanged {
		st.Messenger = d.Messenger
	}
	if d.FaultChanged {
		st.Fault = d.Fault
	}
	return nil
}

// expandIdle resizes a previous idle-counter slice to n entries: kept
// counters carry over, new entries start at zero (exactly the lazy
// resize the random-fair scheduler performs).
func expandIdle(prev []int, n int) []int {
	out := make([]int, n)
	copy(out, prev)
	return out
}

// DiffIdle encodes the step from one idle-counter snapshot to the next
// as the majority increment (Boyer–Moore, one pass) plus absolute
// overrides for the exceptions. Under random-fair scheduling every
// counter rises by the number of elapsed steps except the few robots
// that were activated, so the overrides are the activated set.
// Allocation-free apart from the overrides themselves; prev may be
// shorter than cur (counters not yet allocated read as zero, matching
// the scheduler's lazy resize).
func DiffIdle(prev, cur []int) (shift int, overrides []IdleOverride) {
	at := func(i int) int {
		if i < len(prev) {
			return prev[i]
		}
		return 0
	}
	count := 0
	for i := range cur {
		d := cur[i] - at(i)
		switch {
		case count == 0:
			shift, count = d, 1
		case d == shift:
			count++
		default:
			count--
		}
	}
	for i := range cur {
		if at(i)+shift != cur[i] {
			overrides = append(overrides, IdleOverride{Index: i, Value: cur[i]})
		}
	}
	return shift, overrides
}

func inputEqual(a, b *ckpt.Input) bool {
	if a.T != b.T || a.Op != b.Op || a.From != b.From || a.To != b.To ||
		a.Count != b.Count || a.Max != b.Max || a.Reps != b.Reps || a.P != b.P {
		return false
	}
	if (a.Payload == nil) != (b.Payload == nil) || len(a.Payload) != len(b.Payload) {
		return false
	}
	for i := range a.Payload {
		if a.Payload[i] != b.Payload[i] {
			return false
		}
	}
	if (a.Policy == nil) != (b.Policy == nil) {
		return false
	}
	return a.Policy == nil || *a.Policy == *b.Policy
}

func messagesEqual(a, b []ckpt.MessageState) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].From != b[i].From || a[i].To != b[i].To {
			return false
		}
		if (a[i].Payload == nil) != (b[i].Payload == nil) || len(a[i].Payload) != len(b[i].Payload) {
			return false
		}
		for j := range a[i].Payload {
			if a[i].Payload[j] != b[i].Payload[j] {
				return false
			}
		}
	}
	return true
}

func boolsEqual(a, b []bool) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func radioEqual(a, b *ckpt.RadioState) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Seed != b.Seed || a.Draws != b.Draws || a.JamProb != b.JamProb ||
		a.Sent != b.Sent || a.Lost != b.Lost || a.Delivered != b.Delivered {
		return false
	}
	if !boolsEqual(a.Broken, b.Broken) {
		return false
	}
	if (a.Inboxes == nil) != (b.Inboxes == nil) || len(a.Inboxes) != len(b.Inboxes) {
		return false
	}
	for i := range a.Inboxes {
		if !messagesEqual(a.Inboxes[i], b.Inboxes[i]) {
			return false
		}
	}
	return true
}

func messengerEqual(a, b *ckpt.MessengerState) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.ViaRadio != b.ViaRadio || a.ViaMovement != b.ViaMovement ||
		a.Retries != b.Retries || a.Failovers != b.Failovers ||
		a.Failbacks != b.Failbacks || a.Expired != b.Expired ||
		a.ImplicitAcks != b.ImplicitAcks || a.AckCursor != b.AckCursor {
		return false
	}
	if (a.Pending == nil) != (b.Pending == nil) || len(a.Pending) != len(b.Pending) {
		return false
	}
	for i := range a.Pending {
		p, q := &a.Pending[i], &b.Pending[i]
		if p.From != q.From || p.To != q.To || p.Submitted != q.Submitted ||
			p.Attempts != q.Attempts || p.NextTry != q.NextTry {
			return false
		}
		if (p.Payload == nil) != (q.Payload == nil) || len(p.Payload) != len(q.Payload) {
			return false
		}
		for j := range p.Payload {
			if p.Payload[j] != q.Payload[j] {
				return false
			}
		}
	}
	return messagesEqual(a.Watches, b.Watches) && intsEqual(a.Mode, b.Mode) && intsEqual(a.ProbeAt, b.ProbeAt)
}

func faultEqual(a, b *ckpt.FaultState) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Jam == b.Jam && boolsEqual(a.Outage, b.Outage)
}

// ---------------------------------------------------------------------
// Delta wire coding. Like the base body, the previous (folded) state is
// the compression dictionary: changed positions are coded as index gaps
// plus IEEE-754 bit-pattern deltas against the robot's previous
// position, which for a bounded move shares the exponent and high
// mantissa bits and collapses to a few bytes.

func encodeDeltaBody(d *Delta, prev *ckpt.State) ([]byte, error) {
	w := &writer{buf: make([]byte, 0, 64+len(d.PosChanged)*10+len(d.EndpointChanged)*6)}
	w.int(d.Time)
	w.int(d.Consumed)
	w.uvarint(d.SchedulerDraws)
	w.uint(len(d.PosChanged))
	pidx := -1
	for _, pc := range d.PosChanged {
		if pc.Index <= pidx || pc.Index >= len(prev.Positions) {
			return nil, fmt.Errorf("wire: delta position index %d not ascending in range %d", pc.Index, len(prev.Positions))
		}
		w.uint(pc.Index - pidx)
		old := prev.Positions[pc.Index]
		w.varint(int64(math.Float64bits(pc.Pos.X) - math.Float64bits(old.X)))
		w.varint(int64(math.Float64bits(pc.Pos.Y) - math.Float64bits(old.Y)))
		pidx = pc.Index
	}
	w.uint(len(d.EndpointChanged))
	eidx := -1
	for _, ec := range d.EndpointChanged {
		if ec.Index <= eidx {
			return nil, fmt.Errorf("wire: delta endpoint index %d not ascending", ec.Index)
		}
		w.uint(ec.Index - eidx)
		w.int(ec.State.Pending)
		w.bool(ec.State.Idle)
		w.int(ec.State.SentBits)
		eidx = ec.Index
	}
	encodeMessages(w, d.DeliveredTail)
	w.uint(d.InputTailStart)
	encodeInputs(w, d.InputTail)
	w.bool(d.HasIdle)
	if d.HasIdle {
		w.uint(d.IdleLen)
		w.int(d.IdleShift)
		w.uint(len(d.IdleOverrides))
		oidx := -1
		for _, ov := range d.IdleOverrides {
			if ov.Index <= oidx {
				return nil, fmt.Errorf("wire: delta idle index %d not ascending", ov.Index)
			}
			w.uint(ov.Index - oidx)
			w.int(ov.Value)
			oidx = ov.Index
		}
	}
	w.bool(d.RadioChanged)
	if d.RadioChanged {
		encodeRadioState(w, d.Radio)
	}
	w.bool(d.MessengerChanged)
	if d.MessengerChanged {
		encodeMessengerState(w, d.Messenger)
	}
	w.bool(d.FaultChanged)
	if d.FaultChanged {
		encodeFaultState(w, d.Fault)
	}
	w.str(d.TraceDigest)
	w.str(d.ObsDigest)
	return w.buf, nil
}

func decodeDeltaBody(body []byte, prev *ckpt.State) (*Delta, error) {
	r := &reader{buf: body}
	d := &Delta{}
	d.Time = r.int()
	d.Consumed = r.int()
	d.SchedulerDraws = r.uvarint()
	npos, _ := r.sliceLenRaw(3)
	idx := -1
	for k := 0; k < npos && r.err == nil; k++ {
		idx += int(r.uvarint())
		if idx < 0 || idx >= len(prev.Positions) {
			r.fail("delta position index %d out of range %d", idx, len(prev.Positions))
			break
		}
		old := prev.Positions[idx]
		dx := uint64(r.varint())
		dy := uint64(r.varint())
		d.PosChanged = append(d.PosChanged, PosChange{Index: idx, Pos: ckpt.XY{
			X: math.Float64frombits(math.Float64bits(old.X) + dx),
			Y: math.Float64frombits(math.Float64bits(old.Y) + dy),
		}})
	}
	nep, _ := r.sliceLenRaw(4)
	idx = -1
	for k := 0; k < nep && r.err == nil; k++ {
		idx += int(r.uvarint())
		if idx < 0 {
			r.fail("delta endpoint index underflow")
			break
		}
		d.EndpointChanged = append(d.EndpointChanged, EndpointChange{Index: idx, State: ckpt.EndpointState{
			Pending: r.int(), Idle: r.bool(), SentBits: r.int(),
		}})
	}
	d.DeliveredTail = decodeMessages(r)
	d.InputTailStart = int(r.uvarint())
	d.InputTail = decodeInputs(r)
	d.HasIdle = r.bool()
	if d.HasIdle {
		// IdleLen counts folded entries, not wire bytes (the shift covers
		// most robots without any wire cost), so it is bounded by the
		// known robot count instead of the frame size: the fold allocates
		// at most one int per robot.
		d.IdleLen = clampIdleLen(r, int(r.uvarint()), len(prev.Positions))
		d.IdleShift = r.int()
		nov, _ := r.sliceLenRaw(2)
		idx = -1
		for k := 0; k < nov && r.err == nil; k++ {
			idx += int(r.uvarint())
			if idx < 0 {
				r.fail("delta idle index underflow")
				break
			}
			d.IdleOverrides = append(d.IdleOverrides, IdleOverride{Index: idx, Value: r.int()})
		}
	}
	if d.RadioChanged = r.bool(); d.RadioChanged {
		d.Radio = decodeRadioState(r)
	}
	if d.MessengerChanged = r.bool(); d.MessengerChanged {
		d.Messenger = decodeMessengerState(r)
	}
	if d.FaultChanged = r.bool(); d.FaultChanged {
		d.Fault = decodeFaultState(r)
	}
	d.TraceDigest = r.str()
	d.ObsDigest = r.str()
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in delta frame body", ckpt.ErrTruncated, r.remaining())
	}
	return d, nil
}

// clampIdleLen bounds the claimed idle-counter length by the known
// robot count so a corrupt length cannot drive a giant allocation.
func clampIdleLen(r *reader, n, robots int) int {
	if n < 0 || n > robots+1 {
		r.fail("delta idle length %d exceeds robot count %d", n, robots)
		return 0
	}
	return n
}
