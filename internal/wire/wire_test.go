package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"waggle/internal/ckpt"
)

// fullCheckpoint builds a checkpoint exercising every field of the
// schema: all option fields set, a fault plan, a coupled radio,
// messenger and observer, every input op (plus an unknown one, forcing
// the literal-string escape), and a state with every subsystem present.
func fullCheckpoint() *ckpt.Checkpoint {
	pol := &ckpt.PolicyConfig{MaxRetries: 3, Backoff: 2, Deadline: 40, ProbeEvery: 5}
	return &ckpt.Checkpoint{
		Config: ckpt.Config{
			Positions: []ckpt.XY{{X: 0.1, Y: -2.7}, {X: 3.14159, Y: 0}, {X: -0.0001, Y: 1e9}},
			Options: ckpt.Options{
				Synchronous:      true,
				Identified:       true,
				SenseOfDirection: true,
				LeftHanded:       true,
				Protocol:         3,
				Levels:           4,
				BoundedSlices:    2,
				AlternateDrift:   true,
				Seed:             -77,
				Sigma:            0.25,
				Trace:            true,
				Flock:            &ckpt.XY{X: 0.5, Y: -0.5},
				Scheduler:        2,
				StarveVictim:     1,
				StarveDelay:      8,
				ActivationProb:   0.125,
				Engine:           1,
				StabilizeEpoch:   64,
				FaultPlan: []ckpt.FaultEventConfig{
					{Kind: 1, At: 5, Until: 9, Robot: 0, Mag: 1.5, Min: 0.1, Max: 0.9, DX: 2, DY: -3},
					{Kind: 4, At: 20, Robot: 2},
				},
				HasFaultPlan: true,
				FaultRadio:   true,
			},
			Radio:     &ckpt.RadioConfig{N: 3, Seed: 99},
			Messenger: true,
			Observer:  &ckpt.ObserverConfig{TraceCapacity: 128},
		},
		Inputs: []ckpt.Input{
			{T: 0, Op: ckpt.OpSend, From: 0, To: 1, Payload: []byte{1, 2, 3}},
			{T: 0, Op: ckpt.OpBroadcast, From: 1, Payload: []byte{}},
			{T: 1, Op: ckpt.OpSendAll, From: 2, Payload: []byte{0xFF}},
			{T: 1, Op: ckpt.OpStep, Reps: 12},
			{T: 13, Op: ckpt.OpRunDelivered, Count: 2, Max: 100},
			{T: 40, Op: ckpt.OpRunQuiet, Max: 50},
			{T: 41, Op: ckpt.OpMsgSend, From: 1, To: 2, Payload: []byte("hi")},
			{T: 41, Op: ckpt.OpMsgTick, Reps: 3},
			{T: 44, Op: ckpt.OpMsgStep},
			{T: 45, Op: ckpt.OpMsgRun, Max: 30},
			{T: 45, Op: ckpt.OpMsgPolicy, Policy: pol},
			{T: 46, Op: ckpt.OpRadioBreak, From: 0},
			{T: 47, Op: ckpt.OpRadioRepair, From: 0},
			{T: 47, Op: ckpt.OpRadioJam, P: 0.75},
			{T: 48, Op: ckpt.OpRadioSend, From: 2, To: 0, Payload: []byte{9}},
			{T: 49, Op: ckpt.OpRadioRecv, From: 0},
			{T: 50, Op: "future-op", From: 1, To: 2, Count: 7},
		},
		State: ckpt.State{
			Time:      52,
			Positions: []ckpt.XY{{X: 0.1, Y: -2.7}, {X: 3.25, Y: 0.001}, {X: -0.0001, Y: 1e9 + 1}},
			Consumed:  1,
			Delivered: []ckpt.MessageState{
				{From: 0, To: 1, Payload: []byte{1, 2, 3}},
				{From: 2, To: 1, Payload: nil},
			},
			Endpoints: []ckpt.EndpointState{
				{Pending: 2, Idle: false, SentBits: 17},
				{Idle: true},
				{Pending: 1, Idle: false, SentBits: 3},
			},
			SchedulerDraws: 1234,
			SchedulerIdle:  []int{0, 3, 1},
			Radio: &ckpt.RadioState{
				Seed: 99, Draws: 17, JamProb: 0.75,
				Broken:  []bool{true, false, false},
				Inboxes: [][]ckpt.MessageState{{{From: 2, To: 0, Payload: []byte{9}}}, nil, {}},
				Sent:    4, Lost: 1, Delivered: 3,
			},
			Messenger: &ckpt.MessengerState{
				ViaRadio: 2, ViaMovement: 1, Retries: 3, Failovers: 1,
				Failbacks: 1, Expired: 0, ImplicitAcks: 2,
				Pending: []ckpt.PendingState{
					{From: 1, To: 2, Payload: []byte("hi"), Submitted: 41, Attempts: 2, NextTry: 55},
				},
				Watches:   []ckpt.MessageState{{From: 1, To: 2, Payload: []byte("hi")}},
				AckCursor: 2,
				Mode:      []int{0, 1, 0},
				ProbeAt:   []int{0, 60, 0},
			},
			Fault:       &ckpt.FaultState{Outage: []bool{false, true, false}, Jam: true},
			TraceDigest: "sha256:abc",
			ObsDigest:   "sha256:def",
		},
	}
}

func TestRoundTripFull(t *testing.T) {
	ck := fullCheckpoint()
	data, err := Encode(ck)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ck)
	}
}

func TestRoundTripMinimal(t *testing.T) {
	ck := &ckpt.Checkpoint{
		Config: ckpt.Config{Positions: []ckpt.XY{{X: 0, Y: 0}, {X: 1, Y: 1}}},
		State: ckpt.State{
			Positions: []ckpt.XY{{X: 0, Y: 0}, {X: 1, Y: 1}},
			Endpoints: []ckpt.EndpointState{{Idle: true}, {Idle: true}},
		},
	}
	data, err := Encode(ck)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatalf("round trip mismatch: nil/empty fields not preserved\n got %#v\nwant %#v", got, ck)
	}
	if got.Inputs != nil {
		t.Fatalf("nil Inputs decoded as %#v", got.Inputs)
	}
}

// TestRoundTripFixedPoint drives the fixed-point position mode: every
// coordinate an exact multiple of 2^-20 must survive bit-exactly.
func TestRoundTripFixedPoint(t *testing.T) {
	const q = 1.0 / (1 << 20)
	pts := []ckpt.XY{
		{X: 0, Y: 0},
		{X: 1.5, Y: -2.25},
		{X: 1000000 * q, Y: -33 * q},
		{X: 123456789 * q, Y: 42},
	}
	ck := &ckpt.Checkpoint{
		Config: ckpt.Config{Positions: pts},
		State: ckpt.State{
			Positions: append([]ckpt.XY(nil), pts...),
			Endpoints: make([]ckpt.EndpointState, len(pts)),
		},
	}
	data, err := Encode(ck)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatalf("fixed-point round trip mismatch")
	}
}

// TestCompactness is the codec's reason to exist: the binary encoding
// of a realistic checkpoint — random full-precision coordinates, state
// positions mostly still at their configuration — must be well under
// the JSON size.
func TestCompactness(t *testing.T) {
	n := 2000
	rng := rand.New(rand.NewSource(7))
	ck := &ckpt.Checkpoint{
		Config: ckpt.Config{Positions: make([]ckpt.XY, n)},
		State: ckpt.State{
			Positions: make([]ckpt.XY, n),
			Endpoints: make([]ckpt.EndpointState, n),
		},
	}
	for i := 0; i < n; i++ {
		p := ckpt.XY{X: rng.Float64() * 5000, Y: rng.Float64() * 5000}
		ck.Config.Positions[i] = p
		ck.State.Positions[i] = p
	}
	for i := 0; i < n; i += 37 { // the sparse minority that has moved
		ck.State.Positions[i].X += 0.5
	}
	bin, err := Encode(ck)
	if err != nil {
		t.Fatal(err)
	}
	jsonData, err := ckpt.Encode(ck)
	if err != nil {
		t.Fatal(err)
	}
	if 4*len(bin) > len(jsonData) {
		t.Fatalf("binary %d B is more than 25%% of JSON %d B", len(bin), len(jsonData))
	}
}

func TestDecodeErrors(t *testing.T) {
	ck := fullCheckpoint()
	data, err := Encode(ck)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong magic", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		copy(bad, "NOPE")
		if _, err := Decode(bad); !errors.Is(err, ckpt.ErrSchema) {
			t.Fatalf("got %v, want ErrSchema", err)
		}
	})
	t.Run("short magic", func(t *testing.T) {
		if _, err := Decode(data[:3]); !errors.Is(err, ckpt.ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("truncated base", func(t *testing.T) {
		for _, cut := range []int{5, 9, len(data) / 2, len(data) - 1} {
			if _, err := Decode(data[:cut]); !errors.Is(err, ckpt.ErrTruncated) {
				t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, err)
			}
		}
	})
	t.Run("bit flip", func(t *testing.T) {
		for _, pos := range []int{12, len(data) / 2, len(data) - 2} {
			bad := append([]byte(nil), data...)
			bad[pos] ^= 0x40
			_, err := Decode(bad)
			if !errors.Is(err, ckpt.ErrChecksum) && !errors.Is(err, ckpt.ErrTruncated) {
				t.Fatalf("flip at %d: got %v, want ErrChecksum or ErrTruncated", pos, err)
			}
		}
	})
}

// mutate builds the "current" checkpoint one sparse interval after
// prev: two robots moved, one send appended, one delivery, endpoint and
// scheduler churn.
func mutateCheckpoint(prev *ckpt.Checkpoint) *ckpt.Checkpoint {
	cur := &ckpt.Checkpoint{
		Config: prev.Config,
		Inputs: append(append([]ckpt.Input(nil), prev.Inputs...),
			ckpt.Input{T: 52, Op: ckpt.OpSend, From: 2, To: 0, Payload: []byte{7}},
			ckpt.Input{T: 52, Op: ckpt.OpStep, Reps: 2},
		),
		State: prev.State,
	}
	cur.State.Time = 54
	cur.State.Positions = append([]ckpt.XY(nil), prev.State.Positions...)
	cur.State.Positions[0] = ckpt.XY{X: 0.4, Y: -2.5}
	cur.State.Positions[2] = ckpt.XY{X: 0, Y: 1e9 + 2}
	cur.State.Consumed = 2
	cur.State.Delivered = append(append([]ckpt.MessageState(nil), prev.State.Delivered...),
		ckpt.MessageState{From: 2, To: 0, Payload: []byte{7}})
	cur.State.Endpoints = append([]ckpt.EndpointState(nil), prev.State.Endpoints...)
	cur.State.Endpoints[2] = ckpt.EndpointState{Pending: 2, SentBits: 5}
	cur.State.SchedulerDraws = 1300
	cur.State.SchedulerIdle = []int{2, 0, 3}
	cur.State.Radio = &ckpt.RadioState{
		Seed: 99, Draws: 19, JamProb: 0.75,
		Broken:  []bool{true, false, false},
		Inboxes: [][]ckpt.MessageState{nil, nil, {}},
		Sent:    5, Lost: 1, Delivered: 4,
	}
	cur.State.TraceDigest = "sha256:abd"
	return cur
}

func TestDeltaChainRoundTrip(t *testing.T) {
	prev := fullCheckpoint()
	cur := mutateCheckpoint(prev)

	base, crc, err := EncodeBaseFrame(prev)
	if err != nil {
		t.Fatalf("base frame: %v", err)
	}
	d, err := ComputeDelta(prev, cur)
	if err != nil {
		t.Fatalf("compute delta: %v", err)
	}
	frame, crc2, err := EncodeDeltaFrame(d, &prev.State, crc)
	if err != nil {
		t.Fatalf("delta frame: %v", err)
	}
	chain := append(append([]byte(nil), base...), frame...)

	got, err := DecodeChain(chain)
	if err != nil {
		t.Fatalf("decode chain: %v", err)
	}
	if !reflect.DeepEqual(got, cur) {
		t.Fatalf("folded chain differs from the live checkpoint:\n got %+v\nwant %+v", got, cur)
	}

	// A second delta on top: cur -> cur2 with an idle shift.
	cur2 := mutateCheckpoint(prev)
	cur2.State.Time = 56
	cur2.State.SchedulerIdle = []int{4, 2, 5}
	cur2.State.Positions[1] = ckpt.XY{X: 3.5, Y: 0.002}
	d2, err := ComputeDelta(cur, cur2)
	if err != nil {
		t.Fatal(err)
	}
	frame2, _, err := EncodeDeltaFrame(d2, &cur.State, crc2)
	if err != nil {
		t.Fatal(err)
	}
	chain2 := append(append([]byte(nil), chain...), frame2...)
	got2, err := DecodeChain(chain2)
	if err != nil {
		t.Fatalf("decode 2-delta chain: %v", err)
	}
	if !reflect.DeepEqual(got2, cur2) {
		t.Fatalf("2-delta fold differs from the live checkpoint")
	}
}

// TestDeltaTornTail verifies the crash-window policy: an incomplete
// trailing delta frame (a torn append) is dropped silently, restoring
// the last complete save.
func TestDeltaTornTail(t *testing.T) {
	prev := fullCheckpoint()
	cur := mutateCheckpoint(prev)
	base, crc, err := EncodeBaseFrame(prev)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ComputeDelta(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	frame, _, err := EncodeDeltaFrame(d, &prev.State, crc)
	if err != nil {
		t.Fatal(err)
	}
	chain := append(append([]byte(nil), base...), frame...)

	for cut := len(base) + 1; cut < len(chain); cut++ {
		got, err := DecodeChain(chain[:cut])
		if err != nil {
			t.Fatalf("torn tail at %d: %v", cut, err)
		}
		if !reflect.DeepEqual(got, prev) {
			t.Fatalf("torn tail at %d: fold is not the last complete save", cut)
		}
	}
	// The complete chain still folds to cur.
	got, err := DecodeChain(chain)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cur) {
		t.Fatal("complete chain no longer folds to cur")
	}
}

// TestDeltaChainCorruption: a complete but damaged delta frame must
// fail loudly — bad CRC, or a prev-CRC that does not match the frame it
// claims to extend.
func TestDeltaChainCorruption(t *testing.T) {
	prev := fullCheckpoint()
	cur := mutateCheckpoint(prev)
	base, crc, err := EncodeBaseFrame(prev)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ComputeDelta(prev, cur)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bit flip in delta body", func(t *testing.T) {
		frame, _, err := EncodeDeltaFrame(d, &prev.State, crc)
		if err != nil {
			t.Fatal(err)
		}
		chain := append(append([]byte(nil), base...), frame...)
		chain[len(chain)-1] ^= 0x01
		if _, err := DecodeChain(chain); !errors.Is(err, ckpt.ErrChecksum) {
			t.Fatalf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("wrong prev crc", func(t *testing.T) {
		frame, _, err := EncodeDeltaFrame(d, &prev.State, crc^0xDEADBEEF)
		if err != nil {
			t.Fatal(err)
		}
		chain := append(append([]byte(nil), base...), frame...)
		if _, err := DecodeChain(chain); !errors.Is(err, ckpt.ErrChecksum) {
			t.Fatalf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("wrong delta magic", func(t *testing.T) {
		frame, _, err := EncodeDeltaFrame(d, &prev.State, crc)
		if err != nil {
			t.Fatal(err)
		}
		chain := append(append([]byte(nil), base...), frame...)
		copy(chain[len(base):], "WXYZ")
		if _, err := DecodeChain(chain); !errors.Is(err, ckpt.ErrSchema) {
			t.Fatalf("got %v, want ErrSchema", err)
		}
	})
}

func TestApplyDeltaRejectsOutOfRange(t *testing.T) {
	prev := fullCheckpoint()
	d := &Delta{
		Time:       60,
		PosChanged: []PosChange{{Index: 99, Pos: ckpt.XY{X: 1, Y: 1}}},
	}
	if err := ApplyDelta(prev, d); err == nil {
		t.Fatal("out-of-range position index accepted")
	}
}

func TestDiffIdle(t *testing.T) {
	cases := []struct {
		prev, cur []int
	}{
		{nil, nil},
		{nil, []int{1, 2, 3}},
		{[]int{0, 0, 0}, []int{1, 1, 1}},
		{[]int{5, 3, 9}, []int{6, 0, 10}},
		{[]int{1, 2}, []int{7, 8, 9}},
		{[]int{4, 4, 4, 4}, []int{4, 4, 4, 4}},
	}
	for i, c := range cases {
		shift, overrides := DiffIdle(c.prev, c.cur)
		d := &Delta{HasIdle: true, IdleLen: len(c.cur), IdleShift: shift, IdleOverrides: overrides}
		ck := &ckpt.Checkpoint{State: ckpt.State{SchedulerIdle: c.prev,
			Positions: make([]ckpt.XY, 4), Endpoints: make([]ckpt.EndpointState, 4)}}
		if err := ApplyDelta(ck, d); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		want := c.cur
		if len(want) == 0 {
			want = nil
		}
		got := ck.State.SchedulerIdle
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: got %v, want %v (shift %d overrides %v)", i, got, want, shift, overrides)
		}
	}
}

// TestDetect: the registered codec routes binary data through
// ckpt.Decode transparently while JSON keeps decoding as before.
func TestDetect(t *testing.T) {
	ck := fullCheckpoint()
	bin, err := Encode(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !Detect(bin) {
		t.Fatal("Detect rejected its own encoding")
	}
	got, err := ckpt.Decode(bin)
	if err != nil {
		t.Fatalf("ckpt.Decode on binary: %v", err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatal("auto-detected binary decode mismatch")
	}

	// The JSON leg uses a capture-discipline checkpoint (empty slices
	// nil — the only shape the v1 envelope round-trips exactly).
	jck := fullCheckpoint()
	jck.Inputs[1].Payload = nil
	jck.State.Radio.Inboxes[2] = nil
	jsonData, err := ckpt.Encode(jck)
	if err != nil {
		t.Fatal(err)
	}
	if Detect(jsonData) {
		t.Fatal("Detect claimed a JSON envelope")
	}
	got2, err := ckpt.Decode(jsonData)
	if err != nil {
		t.Fatalf("ckpt.Decode on JSON: %v", err)
	}
	if !reflect.DeepEqual(got2, jck) {
		t.Fatal("JSON decode mismatch after codec registration")
	}
}

// TestEncodeAs: the ckpt registry serializes through the named codec.
func TestEncodeAs(t *testing.T) {
	ck := fullCheckpoint()
	bin, err := ckpt.EncodeAs(ck, CodecName)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(bin, []byte(magicBase)) {
		t.Fatalf("EncodeAs(%q) did not produce a binary frame", CodecName)
	}
	if _, err := ckpt.EncodeAs(ck, "no-such-codec"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}
