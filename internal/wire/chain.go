package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"waggle/internal/ckpt"
)

// Frame layout. A v2 checkpoint file is one base frame followed by zero
// or more delta frames, each:
//
//	base:  "WCK2" | uvarint(len(body)) | crc32(body) LE32 | body
//	delta: "WCD2" | uvarint(len(body)) | crc32(body) LE32 | prevCRC LE32 | body
//
// prevCRC is the body CRC of the immediately preceding frame, chaining
// each delta to exactly the state it was computed against: appending to
// the wrong file, or dropping a middle frame, fails the load with
// ErrChecksum instead of folding a plausible-but-wrong state. (The
// restore-time recapture check would catch that too — the link just
// turns a late, opaque mismatch into an immediate, typed one.)
//
// Only a *trailing* delta frame may be torn (header or body extending
// past EOF): that is the signature of a crash during an append, and the
// chain loads as of the last complete frame — matching the atomicity
// the v1 rename-based save promises. A torn base frame, or corruption
// anywhere else, is a typed error.

// EncodeBaseFrame serializes a checkpoint as one base frame and returns
// the frame plus the body CRC (the prevCRC for the first appended
// delta).
func EncodeBaseFrame(ck *ckpt.Checkpoint) ([]byte, uint32, error) {
	body, err := encodeCheckpointBody(ck)
	if err != nil {
		return nil, 0, err
	}
	crc := crc32.ChecksumIEEE(body)
	frame := make([]byte, 0, len(magicBase)+binary.MaxVarintLen64+4+len(body))
	frame = append(frame, magicBase...)
	frame = binary.AppendUvarint(frame, uint64(len(body)))
	frame = binary.LittleEndian.AppendUint32(frame, crc)
	frame = append(frame, body...)
	return frame, crc, nil
}

// EncodeDeltaFrame serializes a delta (computed against the folded
// state prev) as one appendable frame, linked to the preceding frame's
// body CRC. It returns the frame plus this frame's body CRC.
func EncodeDeltaFrame(d *Delta, prev *ckpt.State, prevCRC uint32) ([]byte, uint32, error) {
	body, err := encodeDeltaBody(d, prev)
	if err != nil {
		return nil, 0, err
	}
	crc := crc32.ChecksumIEEE(body)
	frame := make([]byte, 0, len(magicDelta)+binary.MaxVarintLen64+8+len(body))
	frame = append(frame, magicDelta...)
	frame = binary.AppendUvarint(frame, uint64(len(body)))
	frame = binary.LittleEndian.AppendUint32(frame, crc)
	frame = binary.LittleEndian.AppendUint32(frame, prevCRC)
	frame = append(frame, body...)
	return frame, crc, nil
}

// DecodeChain parses a base frame plus appended delta frames and folds
// them into one checkpoint.
func DecodeChain(data []byte) (*ckpt.Checkpoint, error) {
	if len(data) < len(magicBase) {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the v2 magic", ckpt.ErrTruncated, len(data))
	}
	if !Detect(data) {
		return nil, fmt.Errorf("%w: not a %s file (magic %q)", ckpt.ErrSchema, Schema, data[:len(magicBase)])
	}
	rest := data[len(magicBase):]
	body, tail, ok := splitFrameBody(rest)
	if !ok {
		return nil, fmt.Errorf("%w: base frame extends past end of file", ckpt.ErrTruncated)
	}
	storedCRC := binary.LittleEndian.Uint32(tailCRC(rest))
	if crc32.ChecksumIEEE(body) != storedCRC {
		return nil, fmt.Errorf("%w: base frame body does not match its CRC32", ckpt.ErrChecksum)
	}
	ck, err := decodeCheckpointBody(body)
	if err != nil {
		return nil, err
	}
	prevCRC := storedCRC
	for len(tail) > 0 {
		if len(tail) < len(magicDelta) {
			break // torn trailing append, shorter than a magic
		}
		if string(tail[:len(magicDelta)]) != string(magicDelta) {
			return nil, fmt.Errorf("%w: expected a delta frame, found magic %q", ckpt.ErrSchema, tail[:len(magicDelta)])
		}
		rest := tail[len(magicDelta):]
		bodyLen, n := binary.Uvarint(rest)
		if n == 0 {
			break // torn mid-header
		}
		if n < 0 {
			return nil, fmt.Errorf("%w: malformed delta frame length", ckpt.ErrTruncated)
		}
		rest = rest[n:]
		if len(rest) < 8 {
			break // torn mid-header
		}
		bodyCRC := binary.LittleEndian.Uint32(rest[:4])
		linkCRC := binary.LittleEndian.Uint32(rest[4:8])
		rest = rest[8:]
		if uint64(len(rest)) < bodyLen {
			break // torn mid-body: load as of the last complete frame
		}
		body := rest[:bodyLen]
		if crc32.ChecksumIEEE(body) != bodyCRC {
			return nil, fmt.Errorf("%w: delta frame body does not match its CRC32", ckpt.ErrChecksum)
		}
		if linkCRC != prevCRC {
			return nil, fmt.Errorf("%w: delta frame links to a different predecessor (chain spliced?)", ckpt.ErrChecksum)
		}
		d, err := decodeDeltaBody(body, &ck.State)
		if err != nil {
			return nil, err
		}
		if err := ApplyDelta(ck, d); err != nil {
			return nil, err
		}
		prevCRC = bodyCRC
		tail = rest[bodyLen:]
	}
	return ck, nil
}

// splitFrameBody parses "uvarint(len) | crc 4B | body" and returns the
// body and whatever follows it. ok is false when the declared body (or
// the header itself) extends past the end of the data.
func splitFrameBody(data []byte) (body, tail []byte, ok bool) {
	bodyLen, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, false
	}
	rest := data[n:]
	if len(rest) < 4 {
		return nil, nil, false
	}
	rest = rest[4:]
	if uint64(len(rest)) < bodyLen {
		return nil, nil, false
	}
	return rest[:bodyLen], rest[bodyLen:], true
}

// tailCRC returns the 4 CRC bytes of a frame's header (after the
// length varint). Callers have already validated the layout via
// splitFrameBody.
func tailCRC(data []byte) []byte {
	_, n := binary.Uvarint(data)
	return data[n : n+4]
}
