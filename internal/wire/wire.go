// Package wire is the compact binary checkpoint codec ("waggle-ckpt/v2")
// and its delta-chain extension. It keeps the exact discipline of the
// JSON v1 codec in internal/ckpt — versioned header, CRC32 over the
// body, typed ErrSchema/ErrChecksum/ErrTruncated failures — while
// encoding the same ckpt.Checkpoint an order of magnitude smaller:
//
//   - integers are varints (zig-zag for signed values), so the many
//     near-zero counters of a large swarm cost one byte each;
//   - positions are zig-zag delta coded: exactly-representable
//     fixed-point configurations ship as integer deltas, everything
//     else as deltas of IEEE-754 bit patterns — both are lossless, so
//     a decode round trip is reflect.DeepEqual with the original and
//     the restore-time recapture check still holds bit for bit;
//   - the state positions are coded sparsely against the config
//     positions, so a robot that never moved costs two bytes;
//   - the input log keeps its run-length merge and ops are coded as
//     single-byte opcodes.
//
// A v2 file is a base frame optionally followed by delta frames (see
// chain.go); Decode folds the chain back into one Checkpoint. The JSON
// v1 format remains readable (and is auto-detected by ckpt.Decode)
// for backward compatibility and debugging.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"waggle/internal/ckpt"
)

// Schema is the version tag of the binary checkpoint format, reported
// in errors alongside the v1 tag so a wrong-version file names both.
const Schema = "waggle-ckpt/v2"

// CodecName is the name the binary codec registers with internal/ckpt
// (ckpt.SaveFile's codec option).
const CodecName = "binary"

// Frame magics. A v2 file starts with a base frame; zero or more delta
// frames follow. The magic doubles as the format version: an
// incompatible future layout gets a new magic and old readers fail
// with ErrSchema instead of misparsing.
var (
	magicBase  = []byte("WCK2")
	magicDelta = []byte("WCD2")
)

// fixedShift is the fixed-point probe resolution: a configuration whose
// coordinates are all integer multiples of 2^-fixedShift (and small
// enough to fit the mantissa budget) is coded as integer deltas. The
// scale is a power of two, so the int64 round trip is exact — the probe
// only selects the mode, it never quantizes.
const fixedShift = 20

func init() {
	ckpt.RegisterCodec(ckpt.Codec{
		Name:   CodecName,
		Encode: Encode,
		Decode: Decode,
		Detect: Detect,
	})
}

// Detect reports whether data starts with a v2 base frame.
func Detect(data []byte) bool {
	return len(data) >= len(magicBase) && string(data[:len(magicBase)]) == string(magicBase)
}

// Encode serializes a checkpoint as a single v2 base frame.
func Encode(ck *ckpt.Checkpoint) ([]byte, error) {
	frame, _, err := EncodeBaseFrame(ck)
	return frame, err
}

// Decode parses a v2 file — a base frame plus any appended delta
// frames — and folds it back into one checkpoint. Failure modes are the
// ckpt sentinels: ErrSchema (wrong magic), ErrChecksum (a frame's body
// fails its CRC32 or a delta's back-link names the wrong predecessor),
// ErrTruncated (cut short or malformed). A truncated *trailing* delta
// frame is the signature of a crash mid-append and is dropped: the
// chain loads as of the last complete frame, exactly what the atomic
// v1 semantics promise.
func Decode(data []byte) (*ckpt.Checkpoint, error) {
	return DecodeChain(data)
}

// ---------------------------------------------------------------------
// Primitives: a byte writer and a sticky-error reader. Every count the
// reader trusts is capped by the bytes actually remaining, so a
// corrupted length can never make a decode allocate more than the
// input's own size.

type writer struct {
	buf []byte
}

func (w *writer) raw(b []byte)     { w.buf = append(w.buf, b...) }
func (w *writer) byte(b byte)      { w.buf = append(w.buf, b) }
func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) uint(v int)       { w.uvarint(uint64(v)) }
func (w *writer) int(v int)        { w.varint(int64(v)) }

func (w *writer) bool(b bool) {
	if b {
		w.byte(1)
	} else {
		w.byte(0)
	}
}

func (w *writer) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// bytes is nil-aware: the header is len+1, with 0 meaning nil, so the
// v1 nil-if-empty capture discipline survives the round trip and the
// restore recapture check stays a plain reflect.DeepEqual.
func (w *writer) bytes(b []byte) {
	if b == nil {
		w.uvarint(0)
		return
	}
	w.uvarint(uint64(len(b)) + 1)
	w.raw(b)
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.raw([]byte(s))
}

// sliceLen writes the nil-aware header for any slice.
func (w *writer) sliceLen(n int, isNil bool) {
	if isNil {
		w.uvarint(0)
		return
	}
	w.uvarint(uint64(n) + 1)
}

type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ckpt.ErrTruncated, fmt.Sprintf(format, args...))
	}
}

func (r *reader) remaining() int { return len(r.buf) - r.pos }

func (r *reader) raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.remaining() {
		r.fail("need %d bytes, %d remain", n, r.remaining())
		return nil
	}
	out := r.buf[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *reader) byte() byte {
	b := r.raw(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) int() int { return int(r.varint()) }

func (r *reader) bool() bool {
	switch r.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bad bool at offset %d", r.pos-1)
		return false
	}
}

func (r *reader) f64() float64 {
	b := r.raw(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (r *reader) bytes() []byte {
	h := r.uvarint()
	if h == 0 {
		return nil
	}
	n := int(h - 1)
	b := r.raw(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

func (r *reader) str() string {
	n := int(r.uvarint())
	b := r.raw(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// sliceLen reads a nil-aware slice header, capping the claimed count by
// the bytes remaining (each element costs at least minBytes on the
// wire), so a flipped length bit cannot trigger a giant allocation.
func (r *reader) sliceLen(minBytes int) (n int, isNil bool) {
	h := r.uvarint()
	if h == 0 {
		return 0, true
	}
	n = int(h - 1)
	if minBytes < 1 {
		minBytes = 1
	}
	if n < 0 || n > r.remaining()/minBytes {
		r.fail("slice of %d elements exceeds %d remaining bytes", n, r.remaining())
		return 0, false
	}
	return n, false
}

// ---------------------------------------------------------------------
// Position coding.

// encodePositions writes a self-contained position list. The fixed-point
// probe picks integer delta coding when every coordinate is exactly an
// integer multiple of 2^-fixedShift; otherwise consecutive IEEE-754 bit
// patterns are delta coded. Both modes reconstruct the float64 bits
// exactly.
func encodePositions(w *writer, pts []ckpt.XY) {
	w.sliceLen(len(pts), pts == nil)
	if pts == nil {
		return
	}
	if fixedExact(pts) {
		w.byte(1)
		w.byte(fixedShift)
		var px, py int64
		for _, p := range pts {
			ix := int64(p.X * (1 << fixedShift))
			iy := int64(p.Y * (1 << fixedShift))
			w.varint(ix - px)
			w.varint(iy - py)
			px, py = ix, iy
		}
		return
	}
	w.byte(0)
	var px, py uint64
	for _, p := range pts {
		bx, by := math.Float64bits(p.X), math.Float64bits(p.Y)
		w.varint(int64(bx - px))
		w.varint(int64(by - py))
		px, py = bx, by
	}
}

func decodePositions(r *reader) []ckpt.XY {
	n, isNil := r.sliceLen(2)
	if isNil || r.err != nil {
		return nil
	}
	pts := make([]ckpt.XY, n)
	switch mode := r.byte(); mode {
	case 1:
		shift := int(r.byte())
		if shift <= 0 || shift > 62 {
			r.fail("bad fixed-point shift %d", shift)
			return nil
		}
		scale := float64(int64(1) << shift)
		var px, py int64
		for i := 0; i < n && r.err == nil; i++ {
			px += r.varint()
			py += r.varint()
			pts[i] = ckpt.XY{X: float64(px) / scale, Y: float64(py) / scale}
		}
	case 0:
		var px, py uint64
		for i := 0; i < n && r.err == nil; i++ {
			px += uint64(r.varint())
			py += uint64(r.varint())
			pts[i] = ckpt.XY{X: math.Float64frombits(px), Y: math.Float64frombits(py)}
		}
	default:
		r.fail("bad position mode %d", mode)
		return nil
	}
	if r.err != nil {
		return nil
	}
	return pts
}

// fixedExact reports whether every coordinate is exactly representable
// at the fixed-point resolution (and within the int64 headroom).
func fixedExact(pts []ckpt.XY) bool {
	for _, p := range pts {
		if !fixedOK(p.X) || !fixedOK(p.Y) {
			return false
		}
	}
	return true
}

// encodeStatePositions codes the state positions sparsely against the
// config positions: only the robots whose position bits differ are
// written (index gaps + bit-pattern deltas). A robot that never moved
// costs nothing; the common sparse-activation snapshot is a handful of
// entries. Falls back to a self-contained list when the lengths differ.
func encodeStatePositions(w *writer, state, base []ckpt.XY) {
	if state == nil || len(state) != len(base) {
		w.byte(0)
		encodePositions(w, state)
		return
	}
	w.byte(1)
	changed := 0
	for i := range state {
		if state[i] != base[i] {
			changed++
		}
	}
	w.uint(changed)
	prev := -1
	for i := range state {
		if state[i] == base[i] {
			continue
		}
		w.uint(i - prev)
		w.varint(int64(math.Float64bits(state[i].X) - math.Float64bits(base[i].X)))
		w.varint(int64(math.Float64bits(state[i].Y) - math.Float64bits(base[i].Y)))
		prev = i
	}
}

func decodeStatePositions(r *reader, base []ckpt.XY) []ckpt.XY {
	switch mode := r.byte(); mode {
	case 0:
		return decodePositions(r)
	case 1:
		changed, _ := r.sliceLenRaw(3)
		if r.err != nil {
			return nil
		}
		out := make([]ckpt.XY, len(base))
		copy(out, base)
		idx := -1
		for k := 0; k < changed && r.err == nil; k++ {
			gap := int(r.uvarint())
			idx += gap
			if gap <= 0 || idx >= len(out) {
				r.fail("state position index %d out of range %d", idx, len(out))
				return nil
			}
			dx := uint64(r.varint())
			dy := uint64(r.varint())
			out[idx] = ckpt.XY{
				X: math.Float64frombits(math.Float64bits(base[idx].X) + dx),
				Y: math.Float64frombits(math.Float64bits(base[idx].Y) + dy),
			}
		}
		if r.err != nil {
			return nil
		}
		return out
	default:
		r.fail("bad state position mode %d", mode)
		return nil
	}
}

// sliceLenRaw is sliceLen without the nil-aware +1 shift, for counts
// that are never nil.
func (r *reader) sliceLenRaw(minBytes int) (int, bool) {
	n := int(r.uvarint())
	if minBytes < 1 {
		minBytes = 1
	}
	if n < 0 || n > r.remaining()/minBytes {
		r.fail("count %d exceeds %d remaining bytes", n, r.remaining())
		return 0, false
	}
	return n, false
}

// ---------------------------------------------------------------------
// Input coding. Ops are single-byte opcodes; an unknown op (a future
// schema revision) round-trips as an escaped literal string.

var opToCode = map[string]byte{
	ckpt.OpSend: 1, ckpt.OpBroadcast: 2, ckpt.OpSendAll: 3, ckpt.OpStep: 4,
	ckpt.OpRunDelivered: 5, ckpt.OpRunQuiet: 6, ckpt.OpMsgSend: 7,
	ckpt.OpMsgTick: 8, ckpt.OpMsgStep: 9, ckpt.OpMsgRun: 10,
	ckpt.OpMsgPolicy: 11, ckpt.OpRadioBreak: 12, ckpt.OpRadioRepair: 13,
	ckpt.OpRadioJam: 14, ckpt.OpRadioSend: 15, ckpt.OpRadioRecv: 16,
}

var codeToOp = func() map[byte]string {
	m := make(map[byte]string, len(opToCode))
	for op, c := range opToCode {
		m[c] = op
	}
	return m
}()

func encodeInput(w *writer, in *ckpt.Input) {
	if code, ok := opToCode[in.Op]; ok {
		w.byte(code)
	} else {
		w.byte(0)
		w.str(in.Op)
	}
	w.int(in.T)
	w.int(in.From)
	w.int(in.To)
	w.bytes(in.Payload)
	w.int(in.Count)
	w.int(in.Max)
	w.int(in.Reps)
	w.f64(in.P)
	if in.Policy == nil {
		w.bool(false)
	} else {
		w.bool(true)
		w.int(in.Policy.MaxRetries)
		w.int(in.Policy.Backoff)
		w.int(in.Policy.Deadline)
		w.int(in.Policy.ProbeEvery)
	}
}

func decodeInput(r *reader) ckpt.Input {
	var in ckpt.Input
	code := r.byte()
	if code == 0 {
		in.Op = r.str()
	} else {
		op, ok := codeToOp[code]
		if !ok {
			r.fail("unknown opcode %d", code)
			return in
		}
		in.Op = op
	}
	in.T = r.int()
	in.From = r.int()
	in.To = r.int()
	in.Payload = r.bytes()
	in.Count = r.int()
	in.Max = r.int()
	in.Reps = r.int()
	in.P = r.f64()
	if r.bool() {
		in.Policy = &ckpt.PolicyConfig{
			MaxRetries: r.int(),
			Backoff:    r.int(),
			Deadline:   r.int(),
			ProbeEvery: r.int(),
		}
	}
	return in
}

func encodeInputs(w *writer, inputs []ckpt.Input) {
	w.sliceLen(len(inputs), inputs == nil)
	for i := range inputs {
		encodeInput(w, &inputs[i])
	}
}

func decodeInputs(r *reader) []ckpt.Input {
	n, isNil := r.sliceLen(12)
	if isNil || r.err != nil {
		return nil
	}
	out := make([]ckpt.Input, n)
	for i := 0; i < n && r.err == nil; i++ {
		out[i] = decodeInput(r)
	}
	if r.err != nil {
		return nil
	}
	return out
}

// ---------------------------------------------------------------------
// Config coding.

func encodeOptions(w *writer, o *ckpt.Options) {
	w.bool(o.Synchronous)
	w.bool(o.Identified)
	w.bool(o.SenseOfDirection)
	w.bool(o.LeftHanded)
	w.int(o.Protocol)
	w.int(o.Levels)
	w.int(o.BoundedSlices)
	w.bool(o.AlternateDrift)
	w.varint(o.Seed)
	w.f64(o.Sigma)
	w.bool(o.Trace)
	if o.Flock == nil {
		w.bool(false)
	} else {
		w.bool(true)
		w.f64(o.Flock.X)
		w.f64(o.Flock.Y)
	}
	w.int(o.Scheduler)
	w.int(o.StarveVictim)
	w.int(o.StarveDelay)
	w.f64(o.ActivationProb)
	w.int(o.Engine)
	w.int(o.StabilizeEpoch)
	w.sliceLen(len(o.FaultPlan), o.FaultPlan == nil)
	for _, e := range o.FaultPlan {
		w.int(e.Kind)
		w.int(e.At)
		w.int(e.Until)
		w.int(e.Robot)
		w.f64(e.Mag)
		w.f64(e.Min)
		w.f64(e.Max)
		w.f64(e.DX)
		w.f64(e.DY)
	}
	w.bool(o.HasFaultPlan)
	w.bool(o.FaultRadio)
}

func decodeOptions(r *reader) ckpt.Options {
	var o ckpt.Options
	o.Synchronous = r.bool()
	o.Identified = r.bool()
	o.SenseOfDirection = r.bool()
	o.LeftHanded = r.bool()
	o.Protocol = r.int()
	o.Levels = r.int()
	o.BoundedSlices = r.int()
	o.AlternateDrift = r.bool()
	o.Seed = r.varint()
	o.Sigma = r.f64()
	o.Trace = r.bool()
	if r.bool() {
		o.Flock = &ckpt.XY{X: r.f64(), Y: r.f64()}
	}
	o.Scheduler = r.int()
	o.StarveVictim = r.int()
	o.StarveDelay = r.int()
	o.ActivationProb = r.f64()
	o.Engine = r.int()
	o.StabilizeEpoch = r.int()
	n, isNil := r.sliceLen(44)
	if !isNil && r.err == nil {
		o.FaultPlan = make([]ckpt.FaultEventConfig, n)
		for i := 0; i < n && r.err == nil; i++ {
			o.FaultPlan[i] = ckpt.FaultEventConfig{
				Kind: r.int(), At: r.int(), Until: r.int(), Robot: r.int(),
				Mag: r.f64(), Min: r.f64(), Max: r.f64(), DX: r.f64(), DY: r.f64(),
			}
		}
	}
	o.HasFaultPlan = r.bool()
	o.FaultRadio = r.bool()
	return o
}

func encodeConfig(w *writer, c *ckpt.Config) {
	encodePositions(w, c.Positions)
	encodeOptions(w, &c.Options)
	if c.Radio == nil {
		w.bool(false)
	} else {
		w.bool(true)
		w.int(c.Radio.N)
		w.varint(c.Radio.Seed)
	}
	w.bool(c.Messenger)
	if c.Observer == nil {
		w.bool(false)
	} else {
		w.bool(true)
		w.int(c.Observer.TraceCapacity)
	}
}

func decodeConfig(r *reader) ckpt.Config {
	var c ckpt.Config
	c.Positions = decodePositions(r)
	c.Options = decodeOptions(r)
	if r.bool() {
		c.Radio = &ckpt.RadioConfig{N: r.int(), Seed: r.varint()}
	}
	c.Messenger = r.bool()
	if r.bool() {
		c.Observer = &ckpt.ObserverConfig{TraceCapacity: r.int()}
	}
	return c
}

// ---------------------------------------------------------------------
// State coding.

func encodeMessage(w *writer, m *ckpt.MessageState) {
	w.int(m.From)
	w.int(m.To)
	w.bytes(m.Payload)
}

func decodeMessage(r *reader) ckpt.MessageState {
	return ckpt.MessageState{From: r.int(), To: r.int(), Payload: r.bytes()}
}

func encodeMessages(w *writer, ms []ckpt.MessageState) {
	w.sliceLen(len(ms), ms == nil)
	for i := range ms {
		encodeMessage(w, &ms[i])
	}
}

func decodeMessages(r *reader) []ckpt.MessageState {
	n, isNil := r.sliceLen(3)
	if isNil || r.err != nil {
		return nil
	}
	out := make([]ckpt.MessageState, n)
	for i := 0; i < n && r.err == nil; i++ {
		out[i] = decodeMessage(r)
	}
	if r.err != nil {
		return nil
	}
	return out
}

func encodeBools(w *writer, bs []bool) {
	w.sliceLen(len(bs), bs == nil)
	for _, b := range bs {
		w.bool(b)
	}
}

func decodeBools(r *reader) []bool {
	n, isNil := r.sliceLen(1)
	if isNil || r.err != nil {
		return nil
	}
	out := make([]bool, n)
	for i := 0; i < n && r.err == nil; i++ {
		out[i] = r.bool()
	}
	if r.err != nil {
		return nil
	}
	return out
}

func encodeInts(w *writer, xs []int) {
	w.sliceLen(len(xs), xs == nil)
	for _, x := range xs {
		w.int(x)
	}
}

func decodeInts(r *reader) []int {
	n, isNil := r.sliceLen(1)
	if isNil || r.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := 0; i < n && r.err == nil; i++ {
		out[i] = r.int()
	}
	if r.err != nil {
		return nil
	}
	return out
}

func encodeRadioState(w *writer, rs *ckpt.RadioState) {
	if rs == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.varint(rs.Seed)
	w.uvarint(rs.Draws)
	w.f64(rs.JamProb)
	encodeBools(w, rs.Broken)
	w.sliceLen(len(rs.Inboxes), rs.Inboxes == nil)
	for _, box := range rs.Inboxes {
		encodeMessages(w, box)
	}
	w.int(rs.Sent)
	w.int(rs.Lost)
	w.int(rs.Delivered)
}

func decodeRadioState(r *reader) *ckpt.RadioState {
	if !r.bool() {
		return nil
	}
	rs := &ckpt.RadioState{
		Seed:    r.varint(),
		Draws:   r.uvarint(),
		JamProb: r.f64(),
		Broken:  decodeBools(r),
	}
	n, isNil := r.sliceLen(1)
	if !isNil && r.err == nil {
		rs.Inboxes = make([][]ckpt.MessageState, n)
		for i := 0; i < n && r.err == nil; i++ {
			rs.Inboxes[i] = decodeMessages(r)
		}
	}
	rs.Sent = r.int()
	rs.Lost = r.int()
	rs.Delivered = r.int()
	return rs
}

func encodeMessengerState(w *writer, ms *ckpt.MessengerState) {
	if ms == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.int(ms.ViaRadio)
	w.int(ms.ViaMovement)
	w.int(ms.Retries)
	w.int(ms.Failovers)
	w.int(ms.Failbacks)
	w.int(ms.Expired)
	w.int(ms.ImplicitAcks)
	w.sliceLen(len(ms.Pending), ms.Pending == nil)
	for _, p := range ms.Pending {
		w.int(p.From)
		w.int(p.To)
		w.bytes(p.Payload)
		w.int(p.Submitted)
		w.int(p.Attempts)
		w.int(p.NextTry)
	}
	encodeMessages(w, ms.Watches)
	w.int(ms.AckCursor)
	encodeInts(w, ms.Mode)
	encodeInts(w, ms.ProbeAt)
}

func decodeMessengerState(r *reader) *ckpt.MessengerState {
	if !r.bool() {
		return nil
	}
	ms := &ckpt.MessengerState{
		ViaRadio:     r.int(),
		ViaMovement:  r.int(),
		Retries:      r.int(),
		Failovers:    r.int(),
		Failbacks:    r.int(),
		Expired:      r.int(),
		ImplicitAcks: r.int(),
	}
	n, isNil := r.sliceLen(6)
	if !isNil && r.err == nil {
		ms.Pending = make([]ckpt.PendingState, n)
		for i := 0; i < n && r.err == nil; i++ {
			ms.Pending[i] = ckpt.PendingState{
				From: r.int(), To: r.int(), Payload: r.bytes(),
				Submitted: r.int(), Attempts: r.int(), NextTry: r.int(),
			}
		}
	}
	ms.Watches = decodeMessages(r)
	ms.AckCursor = r.int()
	ms.Mode = decodeInts(r)
	ms.ProbeAt = decodeInts(r)
	return ms
}

func encodeFaultState(w *writer, fs *ckpt.FaultState) {
	if fs == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	encodeBools(w, fs.Outage)
	w.bool(fs.Jam)
}

func decodeFaultState(r *reader) *ckpt.FaultState {
	if !r.bool() {
		return nil
	}
	return &ckpt.FaultState{Outage: decodeBools(r), Jam: r.bool()}
}

// encodeState writes the state snapshot; basePositions (the config
// positions) anchor the sparse position coding.
func encodeState(w *writer, st *ckpt.State, basePositions []ckpt.XY) {
	w.int(st.Time)
	encodeStatePositions(w, st.Positions, basePositions)
	w.int(st.Consumed)
	encodeMessages(w, st.Delivered)
	w.sliceLen(len(st.Endpoints), st.Endpoints == nil)
	for i := range st.Endpoints {
		ep := &st.Endpoints[i]
		w.int(ep.Pending)
		w.bool(ep.Idle)
		w.int(ep.SentBits)
	}
	w.uvarint(st.SchedulerDraws)
	encodeInts(w, st.SchedulerIdle)
	encodeRadioState(w, st.Radio)
	encodeMessengerState(w, st.Messenger)
	encodeFaultState(w, st.Fault)
	w.str(st.TraceDigest)
	w.str(st.ObsDigest)
}

func decodeState(r *reader, basePositions []ckpt.XY) ckpt.State {
	var st ckpt.State
	st.Time = r.int()
	st.Positions = decodeStatePositions(r, basePositions)
	st.Consumed = r.int()
	st.Delivered = decodeMessages(r)
	n, isNil := r.sliceLen(3)
	if !isNil && r.err == nil {
		st.Endpoints = make([]ckpt.EndpointState, n)
		for i := 0; i < n && r.err == nil; i++ {
			st.Endpoints[i] = ckpt.EndpointState{
				Pending: r.int(), Idle: r.bool(), SentBits: r.int(),
			}
		}
	}
	st.SchedulerDraws = r.uvarint()
	st.SchedulerIdle = decodeInts(r)
	st.Radio = decodeRadioState(r)
	st.Messenger = decodeMessengerState(r)
	st.Fault = decodeFaultState(r)
	st.TraceDigest = r.str()
	st.ObsDigest = r.str()
	return st
}

// encodeCheckpointBody serializes the base-frame body.
func encodeCheckpointBody(ck *ckpt.Checkpoint) ([]byte, error) {
	if ck == nil {
		return nil, fmt.Errorf("wire: nil checkpoint")
	}
	w := &writer{buf: make([]byte, 0, 64+len(ck.Inputs)*8+len(ck.Config.Positions)*20)}
	encodeConfig(w, &ck.Config)
	encodeInputs(w, ck.Inputs)
	encodeState(w, &ck.State, ck.Config.Positions)
	return w.buf, nil
}

// decodeCheckpointBody parses a base-frame body.
func decodeCheckpointBody(body []byte) (*ckpt.Checkpoint, error) {
	r := &reader{buf: body}
	var ck ckpt.Checkpoint
	ck.Config = decodeConfig(r)
	ck.Inputs = decodeInputs(r)
	ck.State = decodeState(r, ck.Config.Positions)
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in base frame body", ckpt.ErrTruncated, r.remaining())
	}
	return &ck, nil
}
