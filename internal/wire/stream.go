// waggle-stream/v1: an append-only movement/event stream sharing the
// §5g frame discipline of the checkpoint chain — per-record magic +
// uvarint body length + CRC32 over the body, a torn trailing record
// tolerated on read, fsyncs batched on write — but tuned for tailing
// rather than folding:
//
//   - every record is self-delimiting and written with a single
//     write(2), so a concurrent reader (or a reader after kill -9)
//     sees a clean prefix plus at most one torn tail record;
//   - there is deliberately *no* WCD2-style prevCRC back-link: a
//     spectator joining mid-stream starts at a keyframe without having
//     hashed the prefix, which is the whole point of the format. The
//     per-record CRC still catches corruption; ordering is protected
//     by the file being single-writer append-only;
//   - periodic keyframes carry the full position vector (and the
//     cumulative delivery count, and — on close — the live trace
//     digest), so a reader can seed its state at any keyframe and
//     decode forward.
//
// Record bodies (all CRC-protected, first byte is the kind):
//
//	header:   schema string, robot count n, keyframe cadence
//	keyframe: time, positions (encodePositions), delivered, digest
//	step:     time, moves, active set, deliveries, fault events
//	events:   time, moves, deliveries, fault events (no step row —
//	          used for trailing teleports/deliveries flushed at close)
//
// Moves are sparse: signed index gaps plus per-coordinate deltas
// against the previous position of the moved robot, fixed-point when
// every endpoint is exactly representable (same probe as the
// checkpoint codec) and IEEE-754 bit-pattern deltas otherwise.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"math"
	"os"

	"waggle/internal/ckpt"
)

// StreamSchema is the version tag written in every stream header.
const StreamSchema = "waggle-stream/v1"

var magicStream = []byte("WST1")

// Record kinds, on the wire as the first body byte and decoded to the
// Stream* name constants below.
const (
	streamKindHeader   byte = 0
	streamKindKeyframe byte = 1
	streamKindStep     byte = 2
	streamKindEvents   byte = 3
)

// Decoded record kind names.
const (
	StreamHeader   = "header"
	StreamKeyframe = "keyframe"
	StreamStep     = "step"
	StreamEvents   = "events"
)

// Default writer tuning: a keyframe every 256 steps bounds a
// mid-stream join to replaying at most 256 step records, and one fsync
// per 64 records keeps the write overhead per step far under the cost
// of the step itself without risking more than a bounded tail on
// crash (the torn-tail reader absorbs whatever the page cache lost).
const (
	DefaultStreamKeyframeEvery = 256
	DefaultStreamSyncEvery     = 64
)

// StreamMove is one robot's position change within a step, in
// application order (a teleport may interleave with scheduler moves,
// and a robot may appear more than once).
type StreamMove struct {
	Robot int
	To    ckpt.XY
}

// StreamEvent is a fault-family trace event carried in the stream.
type StreamEvent struct {
	Kind  byte
	T     int
	Robot int
	Peer  int
	Val   float64
}

// StreamRecord is one decoded stream record. Offset/Next are its byte
// bounds in the file, so Next of the last record is the resume offset
// for a tailing reader. Move targets are resolved to absolute
// positions by the decoder.
type StreamRecord struct {
	Kind   string
	Offset int64
	Next   int64
	T      int

	// header
	N       int
	Cadence int

	// keyframe
	Positions []ckpt.XY
	Delivered int
	Digest    string

	// step / events
	Moves      []StreamMove
	Active     []int
	Deliveries []ckpt.MessageState
	Events     []StreamEvent
}

// ---------------------------------------------------------------------
// Writer.

// StreamWriter appends waggle-stream/v1 records to a file. It is not
// safe for concurrent use; the facade drives it from the stepping
// goroutine. The writer mirrors the swarm's positions so move records
// can be delta coded and keyframes need no caller-side copy.
type StreamWriter struct {
	f            *os.File
	n            int
	cadence      int
	syncEvery    int
	sinceSync    int
	offset       int64
	mirror       []ckpt.XY
	needKeyframe bool
}

// OpenStream opens path for appending, creating it (header record
// included) when absent. On an existing file it validates the header
// against n, verifies every complete record's CRC, and truncates a
// torn tail left by a crash. In both cases the contract is the same:
// the caller must append a keyframe before any step record, which
// seeds the mirror and gives joining readers a clean entry point —
// AppendStep errors until then. cadence and syncEvery fall back to the
// package defaults when <= 0.
func OpenStream(path string, n, cadence, syncEvery int) (*StreamWriter, error) {
	if n <= 0 {
		return nil, fmt.Errorf("wire: stream needs n >= 1, got %d", n)
	}
	if cadence <= 0 {
		cadence = DefaultStreamKeyframeEvery
	}
	if syncEvery <= 0 {
		syncEvery = DefaultStreamSyncEvery
	}
	sw := &StreamWriter{n: n, cadence: cadence, syncEvery: syncEvery, needKeyframe: true}

	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("wire: open stream: %w", err)
	}
	if len(data) == 0 {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wire: create stream: %w", err)
		}
		sw.f = f
		if err := sw.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return sw, nil
	}

	d := &streamDecoder{}
	end, _, err := scanStream(data, func(off, next int64, kind byte, body []byte) error {
		if off != 0 {
			return nil
		}
		rec, err := d.decode(kind, body, off, next)
		if err != nil {
			return err
		}
		if rec.Kind != StreamHeader {
			return fmt.Errorf("%w: stream does not start with a header record", ckpt.ErrSchema)
		}
		if rec.N != n {
			return fmt.Errorf("%w: stream holds %d robots, writer has %d", ckpt.ErrSchema, rec.N, n)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("wire: open stream %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wire: open stream: %w", err)
	}
	if int64(len(data)) != end {
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, fmt.Errorf("wire: truncate torn stream tail: %w", err)
		}
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wire: open stream: %w", err)
	}
	sw.f = f
	sw.offset = end
	if end == 0 {
		// The whole file was one torn record: rewrite the header.
		if err := sw.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return sw, nil
}

func (sw *StreamWriter) writeHeader() error {
	w := &writer{}
	w.byte(streamKindHeader)
	w.str(StreamSchema)
	w.uint(sw.n)
	w.uint(sw.cadence)
	return sw.appendRecord(w.buf)
}

// Offset reports the byte offset past the last appended record.
func (sw *StreamWriter) Offset() int64 { return sw.offset }

// Cadence reports the keyframe cadence the header advertises.
func (sw *StreamWriter) Cadence() int { return sw.cadence }

// appendRecord frames and appends one record body with a single
// write(2): a tailing reader or a post-crash scan never sees an
// interleaved record, only a clean prefix plus at most one torn tail.
func (sw *StreamWriter) appendRecord(body []byte) error {
	frame := make([]byte, 0, len(magicStream)+binary.MaxVarintLen64+4+len(body))
	frame = append(frame, magicStream...)
	frame = binary.AppendUvarint(frame, uint64(len(body)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(body))
	frame = append(frame, body...)
	if _, err := sw.f.Write(frame); err != nil {
		return fmt.Errorf("wire: stream append: %w", err)
	}
	sw.offset += int64(len(frame))
	sw.sinceSync++
	if sw.sinceSync >= sw.syncEvery {
		sw.sinceSync = 0
		if err := sw.f.Sync(); err != nil {
			return fmt.Errorf("wire: stream sync: %w", err)
		}
	}
	return nil
}

// AppendKeyframe writes a self-contained state record: the position
// vector at time t, the cumulative delivery count, and an optional
// trace digest (written by the facade on close so a replay can verify
// itself). positions == nil means "use the writer's own mirror"; an
// explicit slice (re)seeds the mirror, which is how OpenStream's
// keyframe-first contract is satisfied after create or reopen.
func (sw *StreamWriter) AppendKeyframe(t int, positions []ckpt.XY, delivered int, digest string) error {
	if positions == nil {
		positions = sw.mirror
	}
	if len(positions) != sw.n {
		return fmt.Errorf("wire: keyframe has %d positions, stream holds %d robots", len(positions), sw.n)
	}
	w := &writer{buf: make([]byte, 0, 16+len(positions)*6+len(digest))}
	w.byte(streamKindKeyframe)
	w.int(t)
	encodePositions(w, positions)
	w.uint(delivered)
	w.str(digest)
	if err := sw.appendRecord(w.buf); err != nil {
		return err
	}
	if sw.mirror == nil {
		sw.mirror = make([]ckpt.XY, sw.n)
	}
	copy(sw.mirror, positions)
	sw.needKeyframe = false
	return nil
}

// AppendStep writes one step record: the moves applied at time t (in
// application order), the activated set, the deliveries collected for
// the step, and any fault events observed during it.
func (sw *StreamWriter) AppendStep(t int, moves []StreamMove, active []int, deliveries []ckpt.MessageState, events []StreamEvent) error {
	if sw.needKeyframe {
		return errors.New("wire: stream needs a keyframe before step records")
	}
	w := &writer{buf: make([]byte, 0, 16+len(moves)*8+len(active)*2)}
	w.byte(streamKindStep)
	w.int(t)
	if err := sw.encodeMoves(w, moves); err != nil {
		return err
	}
	encodeActive(w, active)
	encodeMessages(w, deliveries)
	encodeStreamEvents(w, events)
	return sw.appendRecord(w.buf)
}

// AppendEvents writes an out-of-step record — moves (teleports),
// deliveries, or events that happened at time t without an enclosing
// step, e.g. stragglers flushed when the stream closes. A replay
// applies its moves but emits no step row.
func (sw *StreamWriter) AppendEvents(t int, moves []StreamMove, deliveries []ckpt.MessageState, events []StreamEvent) error {
	if sw.needKeyframe {
		return errors.New("wire: stream needs a keyframe before event records")
	}
	w := &writer{}
	w.byte(streamKindEvents)
	w.int(t)
	if err := sw.encodeMoves(w, moves); err != nil {
		return err
	}
	encodeMessages(w, deliveries)
	encodeStreamEvents(w, events)
	return sw.appendRecord(w.buf)
}

// Sync forces the batched fsync.
func (sw *StreamWriter) Sync() error {
	sw.sinceSync = 0
	if err := sw.f.Sync(); err != nil {
		return fmt.Errorf("wire: stream sync: %w", err)
	}
	return nil
}

// Close syncs and closes the file.
func (sw *StreamWriter) Close() error {
	if sw.f == nil {
		return nil
	}
	serr := sw.f.Sync()
	cerr := sw.f.Close()
	sw.f = nil
	if serr != nil {
		return fmt.Errorf("wire: stream close: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wire: stream close: %w", cerr)
	}
	return nil
}

func fixedOK(c float64) bool {
	const limit = 1 << 62
	s := c * (1 << fixedShift)
	return s == math.Trunc(s) && math.Abs(s) < limit
}

// encodeMoves delta codes moves against the mirror and folds them into
// it. The mode probe mirrors encodePositions: fixed-point integer
// deltas when every endpoint is exactly representable, IEEE-754
// bit-pattern deltas otherwise — both lossless.
func (sw *StreamWriter) encodeMoves(w *writer, moves []StreamMove) error {
	w.uint(len(moves))
	if len(moves) == 0 {
		return nil
	}
	mode := byte(1)
	for _, m := range moves {
		if m.Robot < 0 || m.Robot >= sw.n {
			return fmt.Errorf("wire: stream move for robot %d, stream holds %d", m.Robot, sw.n)
		}
		from := sw.mirror[m.Robot]
		if !fixedOK(from.X) || !fixedOK(from.Y) || !fixedOK(m.To.X) || !fixedOK(m.To.Y) {
			mode = 0
			break
		}
	}
	w.byte(mode)
	prev := 0
	for _, m := range moves {
		from := sw.mirror[m.Robot]
		w.varint(int64(m.Robot - prev))
		prev = m.Robot
		if mode == 1 {
			w.varint(int64(m.To.X*(1<<fixedShift)) - int64(from.X*(1<<fixedShift)))
			w.varint(int64(m.To.Y*(1<<fixedShift)) - int64(from.Y*(1<<fixedShift)))
		} else {
			w.varint(int64(math.Float64bits(m.To.X) - math.Float64bits(from.X)))
			w.varint(int64(math.Float64bits(m.To.Y) - math.Float64bits(from.Y)))
		}
		sw.mirror[m.Robot] = m.To
	}
	return nil
}

func encodeActive(w *writer, active []int) {
	w.uint(len(active))
	prev := 0
	for _, a := range active {
		w.varint(int64(a - prev))
		prev = a
	}
}

func encodeStreamEvents(w *writer, events []StreamEvent) {
	w.uint(len(events))
	for _, e := range events {
		w.byte(e.Kind)
		w.int(e.T)
		w.int(e.Robot)
		w.int(e.Peer)
		w.f64(e.Val)
	}
}

// ---------------------------------------------------------------------
// Reader.

// streamDecoder resolves delta-coded records against running state:
// the header seeds n, each keyframe reseeds the position vector, and
// step/events records fold their moves into it.
type streamDecoder struct {
	n         int
	gotHeader bool
	pos       []ckpt.XY
}

func (d *streamDecoder) decode(kind byte, body []byte, off, next int64) (StreamRecord, error) {
	rec := StreamRecord{Offset: off, Next: next}
	r := &reader{buf: body}
	r.byte() // kind, already split out by the frame scan
	switch kind {
	case streamKindHeader:
		rec.Kind = StreamHeader
		schema := r.str()
		if r.err == nil && schema != StreamSchema {
			return rec, fmt.Errorf("%w: stream schema %q, want %q", ckpt.ErrSchema, schema, StreamSchema)
		}
		rec.N = int(r.uvarint())
		rec.Cadence = int(r.uvarint())
		if r.err == nil && rec.N <= 0 {
			return rec, fmt.Errorf("%w: stream header holds %d robots", ckpt.ErrSchema, rec.N)
		}
		d.n = rec.N
		d.gotHeader = true
	case streamKindKeyframe:
		if !d.gotHeader {
			return rec, fmt.Errorf("%w: stream keyframe before header", ckpt.ErrSchema)
		}
		rec.Kind = StreamKeyframe
		rec.T = r.int()
		rec.Positions = decodePositions(r)
		if r.err == nil && len(rec.Positions) != d.n {
			return rec, fmt.Errorf("%w: keyframe has %d positions, header says %d", ckpt.ErrSchema, len(rec.Positions), d.n)
		}
		rec.Delivered = int(r.uvarint())
		rec.Digest = r.str()
		if r.err == nil {
			// Copy: later move records fold into d.pos, and the
			// emitted record must keep the keyframe's own snapshot.
			d.pos = append([]ckpt.XY(nil), rec.Positions...)
		}
	case streamKindStep, streamKindEvents:
		if d.pos == nil {
			return rec, fmt.Errorf("%w: stream step record before any keyframe", ckpt.ErrSchema)
		}
		rec.Kind = StreamStep
		rec.T = r.int()
		rec.Moves = d.decodeMoves(r)
		if kind == streamKindEvents {
			rec.Kind = StreamEvents
		} else {
			rec.Active = decodeActive(r)
		}
		rec.Deliveries = decodeMessages(r)
		rec.Events = decodeStreamEvents(r)
	default:
		return rec, fmt.Errorf("%w: unknown stream record kind %d", ckpt.ErrSchema, kind)
	}
	if r.err != nil {
		return rec, r.err
	}
	if r.remaining() != 0 {
		return rec, fmt.Errorf("%w: %d trailing bytes in stream record", ckpt.ErrTruncated, r.remaining())
	}
	return rec, nil
}

func (d *streamDecoder) decodeMoves(r *reader) []StreamMove {
	count, _ := r.sliceLenRaw(3)
	if count == 0 || r.err != nil {
		return nil
	}
	mode := r.byte()
	if r.err == nil && mode > 1 {
		r.fail("bad stream move mode %d", mode)
		return nil
	}
	out := make([]StreamMove, 0, count)
	prev := 0
	for k := 0; k < count && r.err == nil; k++ {
		robot := prev + int(r.varint())
		prev = robot
		if r.err != nil {
			break
		}
		if robot < 0 || robot >= len(d.pos) {
			r.fail("stream move robot %d out of range %d", robot, len(d.pos))
			return nil
		}
		from := d.pos[robot]
		var to ckpt.XY
		if mode == 1 {
			const scale = float64(int64(1) << fixedShift)
			to = ckpt.XY{
				X: float64(int64(from.X*(1<<fixedShift))+r.varint()) / scale,
				Y: float64(int64(from.Y*(1<<fixedShift))+r.varint()) / scale,
			}
		} else {
			to = ckpt.XY{
				X: math.Float64frombits(math.Float64bits(from.X) + uint64(r.varint())),
				Y: math.Float64frombits(math.Float64bits(from.Y) + uint64(r.varint())),
			}
		}
		d.pos[robot] = to
		out = append(out, StreamMove{Robot: robot, To: to})
	}
	if r.err != nil {
		return nil
	}
	return out
}

func decodeActive(r *reader) []int {
	count, _ := r.sliceLenRaw(1)
	if count == 0 || r.err != nil {
		return nil
	}
	out := make([]int, 0, count)
	prev := 0
	for k := 0; k < count && r.err == nil; k++ {
		prev += int(r.varint())
		out = append(out, prev)
	}
	if r.err != nil {
		return nil
	}
	return out
}

func decodeStreamEvents(r *reader) []StreamEvent {
	count, _ := r.sliceLenRaw(12)
	if count == 0 || r.err != nil {
		return nil
	}
	out := make([]StreamEvent, 0, count)
	for k := 0; k < count && r.err == nil; k++ {
		out = append(out, StreamEvent{
			Kind:  r.byte(),
			T:     r.int(),
			Robot: r.int(),
			Peer:  r.int(),
			Val:   r.f64(),
		})
	}
	if r.err != nil {
		return nil
	}
	return out
}

// scanStream walks the frames of data from the start, calling fn (when
// non-nil) for each complete CRC-valid record. It stops cleanly at a
// torn trailing record — a magic prefix, a cut length, a cut CRC, or a
// cut body at end of file — reporting the offset of the clean end and
// torn=true. Corruption that cannot be a crash artifact (wrong magic
// bytes, a CRC mismatch on a complete record) is an error: a torn tail
// from a single-writer append can only ever be a prefix of a valid
// frame.
func scanStream(data []byte, fn func(off, next int64, kind byte, body []byte) error) (end int64, torn bool, err error) {
	off := int64(0)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < len(magicStream) {
			if string(rest) == string(magicStream[:len(rest)]) {
				return off, true, nil
			}
			return off, false, fmt.Errorf("%w: bad stream magic at offset %d", ckpt.ErrSchema, off)
		}
		if string(rest[:len(magicStream)]) != string(magicStream) {
			return off, false, fmt.Errorf("%w: bad stream magic at offset %d", ckpt.ErrSchema, off)
		}
		hdr := rest[len(magicStream):]
		bodyLen, un := binary.Uvarint(hdr)
		if un == 0 {
			return off, true, nil // torn mid-length
		}
		if un < 0 {
			return off, false, fmt.Errorf("%w: malformed stream record length at offset %d", ckpt.ErrTruncated, off)
		}
		hdr = hdr[un:]
		if len(hdr) < 4 {
			return off, true, nil // torn mid-CRC
		}
		crc := binary.LittleEndian.Uint32(hdr[:4])
		hdr = hdr[4:]
		if uint64(len(hdr)) < bodyLen {
			return off, true, nil // torn mid-body
		}
		body := hdr[:bodyLen]
		if crc32.ChecksumIEEE(body) != crc {
			return off, false, fmt.Errorf("%w: stream record at offset %d does not match its CRC32", ckpt.ErrChecksum, off)
		}
		if len(body) == 0 {
			return off, false, fmt.Errorf("%w: empty stream record at offset %d", ckpt.ErrTruncated, off)
		}
		next := off + int64(len(magicStream)+un+4) + int64(bodyLen)
		if fn != nil {
			if err := fn(off, next, body[0], body); err != nil {
				return off, false, err
			}
		}
		off = next
	}
	return off, false, nil
}

type streamFrame struct {
	off, next int64
	kind      byte
	body      []byte
}

// TailStream decodes records from data starting at a byte offset,
// which must be a record boundary (a Next reported by an earlier call,
// or 0). offset < 0 means "join live": start at the latest keyframe,
// the self-contained entry point for a spectator. The decoder seeds
// its state from the nearest keyframe at or before the start, so a
// join never pays more than one keyframe cadence of silent replay.
// max > 0 caps the records returned. next is the offset to pass back
// to continue the tail; torn reports a crash-cut trailing record (only
// meaningful when the returned records reach the end of data).
func TailStream(data []byte, offset int64, max int) (recs []StreamRecord, next int64, torn bool, err error) {
	var frames []streamFrame
	end, torn, err := scanStream(data, func(off, next int64, kind byte, body []byte) error {
		frames = append(frames, streamFrame{off: off, next: next, kind: kind, body: body})
		return nil
	})
	if err != nil {
		return nil, 0, false, err
	}
	start := offset
	if start < 0 {
		start = end
		for i := len(frames) - 1; i >= 0; i-- {
			if frames[i].kind == streamKindKeyframe {
				start = frames[i].off
				break
			}
		}
	}
	if start >= end {
		// Nothing at or past the requested offset yet (or the file
		// shrank under a reopen-truncate): wait at the clean end.
		return nil, end, torn, nil
	}
	si := -1
	for i := range frames {
		if frames[i].off == start {
			si = i
			break
		}
	}
	if si < 0 {
		return nil, 0, false, fmt.Errorf("wire: stream offset %d is not a record boundary", start)
	}

	d := &streamDecoder{}
	// Seed: the header is always frame 0; then roll forward silently
	// from the latest keyframe strictly before the start.
	silentFrom := si
	if si > 0 {
		if _, err := d.decode(frames[0].kind, frames[0].body, frames[0].off, frames[0].next); err != nil {
			return nil, 0, false, err
		}
		silentFrom = 1
		for i := si - 1; i >= 1; i-- {
			if frames[i].kind == streamKindKeyframe {
				silentFrom = i
				break
			}
		}
		for i := silentFrom; i < si; i++ {
			if _, err := d.decode(frames[i].kind, frames[i].body, frames[i].off, frames[i].next); err != nil {
				return nil, 0, false, err
			}
		}
	}
	next = start
	for i := si; i < len(frames); i++ {
		if max > 0 && len(recs) >= max {
			torn = false // more complete records remain past the cap
			break
		}
		rec, err := d.decode(frames[i].kind, frames[i].body, frames[i].off, frames[i].next)
		if err != nil {
			return nil, 0, false, err
		}
		recs = append(recs, rec)
		next = rec.Next
	}
	return recs, next, torn, nil
}

// DecodeStream decodes an entire stream file from the beginning,
// tolerating a torn tail (reported, not fatal). Mid-file corruption is
// an error.
func DecodeStream(data []byte) ([]StreamRecord, bool, error) {
	recs, _, torn, err := TailStream(data, 0, 0)
	return recs, torn, err
}
