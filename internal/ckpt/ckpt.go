// Package ckpt implements deterministic checkpoint/restore for waggle
// swarms: a versioned, schema-stable file format holding everything
// needed to resume a run byte-identically.
//
// A checkpoint is three things:
//
//   - Config: the swarm's complete construction recipe (positions,
//     options, radio seed, messenger coupling, observer capacity) —
//     enough to rebuild an identical swarm at instant 0.
//   - Inputs: the ordered log of every state-mutating public API call
//     since construction (sends, steps, messenger and radio traffic).
//     The simulation is deterministic — the paper's premise is that an
//     execution is fully determined by the observed configuration
//     history — so replaying the inputs against the rebuilt swarm
//     reproduces the checkpointed run exactly, including every private
//     behavior and endpoint state no snapshot could serialize.
//   - State: a schema-stable snapshot of the externally observable
//     state at capture time (positions, time, queues, cursors, RNG
//     stream positions, fault windows, trace and obs digests). Restore
//     re-captures the same snapshot after replay and requires deep
//     equality; any divergence — a corrupt file, a code change that
//     broke determinism — fails the restore instead of silently
//     resuming a different run.
//
// The facade (package waggle) owns capture and replay; this package
// owns the schema, the input recorder, and the codec.
package ckpt

import "sync"

// Schema is the version tag of the checkpoint format. Decoding rejects
// every other value, so an incompatible future format fails loudly.
const Schema = "waggle-ckpt/v1"

// Checkpoint is the complete resumable image of a run. The codec wraps
// it in a checksummed envelope carrying Schema.
type Checkpoint struct {
	Config Config  `json:"config"`
	Inputs []Input `json:"inputs,omitempty"`
	State  State   `json:"state"`
}

// XY is a plain point, the JSON form of waggle.Point.
type XY struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Config is the swarm's construction recipe: rebuild a swarm from it
// and you are at instant 0 of the same seeded execution.
type Config struct {
	Positions []XY            `json:"positions"`
	Options   Options         `json:"options"`
	Radio     *RadioConfig    `json:"radio,omitempty"`
	Messenger bool            `json:"messenger,omitempty"`
	Observer  *ObserverConfig `json:"observer,omitempty"`
}

// Options mirrors the facade's resolved option set field by field, in
// JSON-stable form.
type Options struct {
	Synchronous      bool               `json:"synchronous,omitempty"`
	Identified       bool               `json:"identified,omitempty"`
	SenseOfDirection bool               `json:"sense_of_direction,omitempty"`
	LeftHanded       bool               `json:"left_handed,omitempty"`
	Protocol         int                `json:"protocol,omitempty"`
	Levels           int                `json:"levels,omitempty"`
	BoundedSlices    int                `json:"bounded_slices,omitempty"`
	AlternateDrift   bool               `json:"alternate_drift,omitempty"`
	Seed             int64              `json:"seed,omitempty"`
	Sigma            float64            `json:"sigma,omitempty"`
	Trace            bool               `json:"trace,omitempty"`
	Flock            *XY                `json:"flock,omitempty"`
	Scheduler        int                `json:"scheduler,omitempty"`
	StarveVictim     int                `json:"starve_victim,omitempty"`
	StarveDelay      int                `json:"starve_delay,omitempty"`
	ActivationProb   float64            `json:"activation_prob,omitempty"`
	Engine           int                `json:"engine,omitempty"`
	StabilizeEpoch   int                `json:"stabilize_epoch,omitempty"`
	FaultPlan        []FaultEventConfig `json:"fault_plan,omitempty"`
	HasFaultPlan     bool               `json:"has_fault_plan,omitempty"`
	FaultRadio       bool               `json:"fault_radio,omitempty"`
}

// FaultEventConfig is one scheduled fault event, mirroring
// waggle.FaultEvent.
type FaultEventConfig struct {
	Kind  int     `json:"kind"`
	At    int     `json:"at"`
	Until int     `json:"until,omitempty"`
	Robot int     `json:"robot"`
	Mag   float64 `json:"mag,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	DX    float64 `json:"dx,omitempty"`
	DY    float64 `json:"dy,omitempty"`
}

// RadioConfig rebuilds the coupled radio.
type RadioConfig struct {
	N    int   `json:"n"`
	Seed int64 `json:"seed"`
}

// ObserverConfig rebuilds the attached observer.
type ObserverConfig struct {
	TraceCapacity int `json:"trace_capacity"`
}

// Input ops. Each names one state-mutating public API call; the replay
// dispatcher in the facade switches on them.
const (
	OpSend         = "send"         // Swarm.Send(From, To, Payload)
	OpBroadcast    = "broadcast"    // Swarm.Broadcast(From, Payload)
	OpSendAll      = "sendall"      // Swarm.SendAll(From, Payload)
	OpStep         = "step"         // Swarm.Step, Reps times
	OpRunDelivered = "run-sim"      // Swarm.RunUntilDelivered(Count, Max)
	OpRunQuiet     = "run-quiet"    // Swarm.RunUntilQuiet(Max)
	OpMsgSend      = "msend"        // BackupMessenger.Send(From, To, Payload)
	OpMsgTick      = "mtick"        // BackupMessenger.Tick, Reps times
	OpMsgStep      = "mstep"        // BackupMessenger.Step, Reps times
	OpMsgRun       = "mrun-settled" // BackupMessenger.RunUntilSettled(Max)
	OpMsgPolicy    = "mpolicy"      // BackupMessenger.SetPolicy(Policy)
	OpRadioBreak   = "rbreak"       // Radio.Break(From)
	OpRadioRepair  = "rrepair"      // Radio.Repair(From)
	OpRadioJam     = "rjam"         // Radio.SetJamming(P)
	OpRadioSend    = "rsend"        // Radio.Send(From, To, Payload)
	OpRadioRecv    = "rrecv"        // Radio.Receive(From)
)

// Input is one recorded public API call. T is the simulated instant at
// which it was issued (diagnostic only: replay is ordered, not timed).
// Reps > 1 marks a run-length-merged repetition of an argument-free op
// (step, mstep, mtick), keeping the log linear in distinct operations
// rather than in simulated instants.
type Input struct {
	T       int           `json:"t"`
	Op      string        `json:"op"`
	From    int           `json:"from,omitempty"`
	To      int           `json:"to,omitempty"`
	Payload []byte        `json:"payload,omitempty"`
	Count   int           `json:"count,omitempty"`
	Max     int           `json:"max,omitempty"`
	Reps    int           `json:"reps,omitempty"`
	P       float64       `json:"p,omitempty"`
	Policy  *PolicyConfig `json:"policy,omitempty"`
}

// PolicyConfig mirrors waggle.MessengerPolicy.
type PolicyConfig struct {
	MaxRetries int `json:"max_retries"`
	Backoff    int `json:"backoff"`
	Deadline   int `json:"deadline"`
	ProbeEvery int `json:"probe_every"`
}

// State is the externally observable snapshot at capture time, used as
// the post-replay integrity check (and as human-readable metadata). The
// capture code must leave empty slices nil so a snapshot survives a
// JSON round trip under reflect.DeepEqual.
type State struct {
	Time           int             `json:"time"`
	Positions      []XY            `json:"positions"`
	Consumed       int             `json:"consumed"`
	Delivered      []MessageState  `json:"delivered,omitempty"`
	Endpoints      []EndpointState `json:"endpoints"`
	SchedulerDraws uint64          `json:"scheduler_draws,omitempty"`
	SchedulerIdle  []int           `json:"scheduler_idle,omitempty"`
	Radio          *RadioState     `json:"radio,omitempty"`
	Messenger      *MessengerState `json:"messenger,omitempty"`
	Fault          *FaultState     `json:"fault,omitempty"`
	TraceDigest    string          `json:"trace_digest,omitempty"`
	ObsDigest      string          `json:"obs_digest,omitempty"`
}

// MessageState is one queued or delivered message.
type MessageState struct {
	From    int    `json:"from"`
	To      int    `json:"to"`
	Payload []byte `json:"payload,omitempty"`
}

// EndpointState is the observable slice of one robot's protocol
// endpoint: queue depth, idleness, and transmitted bits. The private
// codec state is opaque — it is reproduced by replay and checked
// indirectly through positions, traces, and these observables.
type EndpointState struct {
	Pending  int  `json:"pending,omitempty"`
	Idle     bool `json:"idle"`
	SentBits int  `json:"sent_bits,omitempty"`
}

// RadioState is the checkpointed core.Radio: jam-stream position as
// (seed, draws), per-robot faults, undrained inboxes, counters.
type RadioState struct {
	Seed      int64            `json:"seed"`
	Draws     uint64           `json:"draws,omitempty"`
	JamProb   float64          `json:"jam_prob,omitempty"`
	Broken    []bool           `json:"broken,omitempty"`
	Inboxes   [][]MessageState `json:"inboxes,omitempty"`
	Sent      int              `json:"sent,omitempty"`
	Lost      int              `json:"lost,omitempty"`
	Delivered int              `json:"delivered,omitempty"`
}

// MessengerState is the checkpointed core.BackupMessenger: counters,
// retry queue, acknowledgement watches, ack cursor, per-sender modes.
type MessengerState struct {
	ViaRadio     int            `json:"via_radio,omitempty"`
	ViaMovement  int            `json:"via_movement,omitempty"`
	Retries      int            `json:"retries,omitempty"`
	Failovers    int            `json:"failovers,omitempty"`
	Failbacks    int            `json:"failbacks,omitempty"`
	Expired      int            `json:"expired,omitempty"`
	ImplicitAcks int            `json:"implicit_acks,omitempty"`
	Pending      []PendingState `json:"pending,omitempty"`
	Watches      []MessageState `json:"watches,omitempty"`
	AckCursor    int            `json:"ack_cursor,omitempty"`
	Mode         []int          `json:"mode,omitempty"`
	ProbeAt      []int          `json:"probe_at,omitempty"`
}

// PendingState is one retry-queue entry.
type PendingState struct {
	From      int    `json:"from"`
	To        int    `json:"to"`
	Payload   []byte `json:"payload,omitempty"`
	Submitted int    `json:"submitted,omitempty"`
	Attempts  int    `json:"attempts,omitempty"`
	NextTry   int    `json:"next_try,omitempty"`
}

// FaultState is the injector's radio-window cursor: which outage
// windows it currently holds open and whether a jam window is active.
type FaultState struct {
	Outage []bool `json:"outage,omitempty"`
	Jam    bool   `json:"jam,omitempty"`
}

// Recorder accumulates the ordered input log. The facade records every
// state-mutating public API call into it; consecutive repetitions of
// argument-free ops are run-length merged so driving loops (step, step,
// step, …) cost one entry, not one per instant. Safe for concurrent
// use, though a swarm's public API is not itself concurrent.
type Recorder struct {
	mu  sync.Mutex
	ops []Input
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// mergeable reports whether consecutive identical ops of this kind
// collapse into one run-length-counted entry.
func mergeable(op string) bool {
	switch op {
	case OpStep, OpMsgStep, OpMsgTick:
		return true
	}
	return false
}

// Record appends one input, copying the payload so later caller
// mutations cannot corrupt the log.
func (r *Recorder) Record(in Input) {
	if in.Payload != nil {
		in.Payload = append([]byte(nil), in.Payload...)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.ops); n > 0 && mergeable(in.Op) && r.ops[n-1].Op == in.Op {
		last := &r.ops[n-1]
		if last.Reps == 0 {
			last.Reps = 1
		}
		last.Reps++
		return
	}
	r.ops = append(r.ops, in)
}

// Ops returns a copy of the log (entries share payload backing; the
// recorder never mutates recorded payloads).
func (r *Recorder) Ops() []Input {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ops == nil {
		return nil
	}
	return append([]Input(nil), r.ops...)
}

// OpsSince returns a copy of the log entries from index from onward.
// Because Record only ever appends entries or grows the final entry's
// run-length count, the prefix before from is immutable once observed —
// a periodic saver can remember the previous Len()-1 and fetch just the
// (possibly re-merged) tail instead of re-copying the whole log on
// every save. A from past the end returns nil; a negative from is
// treated as zero.
func (r *Recorder) OpsSince(from int) []Input {
	r.mu.Lock()
	defer r.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= len(r.ops) {
		return nil
	}
	return append([]Input(nil), r.ops[from:]...)
}

// Len returns how many (merged) entries the log holds.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// Reset replaces the log wholesale — restore uses it to seat the
// replayed checkpoint's log so the resumed swarm keeps recording from
// genesis and can itself be checkpointed again.
func (r *Recorder) Reset(ops []Input) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append([]Input(nil), ops...)
}

// AbsorbFrom moves every op recorded by other into this recorder,
// leaving other empty. The facade uses it when a free-standing radio
// (which buffers its own pre-coupling ops) is attached to a swarm's
// recorder; the move makes a double splice harmless.
func (r *Recorder) AbsorbFrom(other *Recorder) {
	if other == nil || other == r {
		return
	}
	other.mu.Lock()
	moved := other.ops
	other.ops = nil
	other.mu.Unlock()
	r.mu.Lock()
	r.ops = append(r.ops, moved...)
	r.mu.Unlock()
}
