package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
)

// Digest returns the hex SHA-256 of b, the form stored in State for the
// trace and obs-snapshot integrity checks. Hashing keeps arbitrarily
// long traces out of the checkpoint while still pinning them
// byte-for-byte.
func Digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
