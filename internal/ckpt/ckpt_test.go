package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Config: Config{
			Positions: []XY{{0, 0}, {10, 0}, {0, 10}},
			Options:   Options{Seed: 42, Trace: true, Sigma: 1.5},
			Radio:     &RadioConfig{N: 3, Seed: 99},
			Messenger: true,
			Observer:  &ObserverConfig{TraceCapacity: 8192},
		},
		Inputs: []Input{
			{Op: OpSend, From: 0, To: 1, Payload: []byte("HI")},
			{T: 3, Op: OpStep, Reps: 12},
			{T: 15, Op: OpRunDelivered, Count: 1, Max: 500},
		},
		State: State{
			Time:           27,
			Positions:      []XY{{0.5, 0}, {10, 0.25}, {0, 10}},
			Consumed:       1,
			SchedulerDraws: 81,
			Radio:          &RadioState{Seed: 99, Draws: 4, JamProb: 0.25},
			TraceDigest:    Digest([]byte("trace")),
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	ck := sampleCheckpoint()
	data, err := Encode(ck)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatalf("round trip mutated the checkpoint:\n got %+v\nwant %+v", got, ck)
	}
}

func TestDecodeTruncated(t *testing.T) {
	data, err := Encode(sampleCheckpoint())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for _, cut := range []int{0, 1, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:cut]); !errors.Is(err, ErrTruncated) {
			t.Errorf("Decode(first %d bytes): got %v, want ErrTruncated", cut, err)
		}
	}
}

func TestDecodeCorrupted(t *testing.T) {
	data, err := Encode(sampleCheckpoint())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Flip one letter inside the body — a key-name character, so the
	// envelope still parses as JSON and carries the right schema; only
	// the checksum can catch this.
	i := bytes.Index(data, []byte(`"body"`)) + len(`"body"`)
	for i < len(data) && (data[i] < 'a' || data[i] > 'z') {
		i++
	}
	corrupt := append([]byte(nil), data...)
	corrupt[i] = '0'
	if _, err := Decode(corrupt); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted body: got %v, want ErrChecksum", err)
	}
}

func TestDecodeSchemaMismatch(t *testing.T) {
	data, err := Encode(sampleCheckpoint())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	wrong := bytes.Replace(data, []byte(Schema), []byte("waggle-ckpt/v0"), 1)
	if _, err := Decode(wrong); !errors.Is(err, ErrSchema) {
		t.Fatalf("wrong schema: got %v, want ErrSchema", err)
	}
	if err != nil && !strings.Contains(err.Error(), "v0") {
		t.Fatalf("schema error should name the offending version: %v", err)
	}
}

func TestSaveFileAtomicAndLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	ck := sampleCheckpoint()
	if err := SaveFile(path, ck); err != nil {
		t.Fatalf("save: %v", err)
	}
	// SaveFile must not leave its temp file behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	if len(entries) != 1 || entries[0].Name() != "run.ckpt" {
		t.Fatalf("directory holds %v, want only run.ckpt", entries)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatalf("file round trip mutated the checkpoint")
	}
	// Overwrite must be atomic too: the second save replaces the first.
	ck.State.Time = 99
	if err := SaveFile(path, ck); err != nil {
		t.Fatalf("second save: %v", err)
	}
	got, err = LoadFile(path)
	if err != nil {
		t.Fatalf("second load: %v", err)
	}
	if got.State.Time != 99 {
		t.Fatalf("overwrite not visible: time %d, want 99", got.State.Time)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

func TestRecorderMergesRuns(t *testing.T) {
	r := NewRecorder()
	r.Record(Input{T: 1, Op: OpStep})
	r.Record(Input{T: 2, Op: OpStep})
	r.Record(Input{T: 3, Op: OpStep})
	r.Record(Input{T: 4, Op: OpSend, From: 0, To: 1, Payload: []byte("x")})
	r.Record(Input{T: 4, Op: OpStep})
	ops := r.Ops()
	if len(ops) != 3 {
		t.Fatalf("got %d ops, want 3 (merged step run, send, step): %+v", len(ops), ops)
	}
	if ops[0].Op != OpStep || ops[0].Reps != 3 {
		t.Fatalf("first op = %+v, want 3-rep step run", ops[0])
	}
	if ops[2].Op != OpStep || ops[2].Reps != 0 {
		t.Fatalf("third op = %+v, want fresh single step (Reps 0 = once)", ops[2])
	}
}

func TestRecorderCopiesPayload(t *testing.T) {
	r := NewRecorder()
	p := []byte("live")
	r.Record(Input{Op: OpSend, Payload: p})
	p[0] = 'X'
	if got := string(r.Ops()[0].Payload); got != "live" {
		t.Fatalf("recorder aliased caller's payload: %q", got)
	}
}

func TestRecorderAbsorb(t *testing.T) {
	pre := NewRecorder()
	pre.Record(Input{Op: OpRadioBreak, From: 2})
	main := NewRecorder()
	main.Record(Input{Op: OpSend, From: 0, To: 1})
	main.AbsorbFrom(pre)
	ops := main.Ops()
	if len(ops) != 2 || ops[1].Op != OpRadioBreak {
		t.Fatalf("absorb got %+v, want send then rbreak", ops)
	}
	if pre.Len() != 0 {
		t.Fatalf("absorbed recorder still holds %d ops", pre.Len())
	}
}
