package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Typed decode failures. Each failure mode has its own sentinel so
// callers (and tests) can tell a wrong-version file from a damaged one.
var (
	// ErrSchema marks a checkpoint written by an incompatible format
	// version.
	ErrSchema = errors.New("ckpt: checkpoint schema mismatch")
	// ErrChecksum marks a checkpoint whose body does not match its
	// recorded CRC32 (bit rot, partial overwrite, manual edits).
	ErrChecksum = errors.New("ckpt: checkpoint checksum mismatch")
	// ErrTruncated marks a checkpoint that does not parse at all —
	// typically a write cut short.
	ErrTruncated = errors.New("ckpt: truncated or malformed checkpoint")
)

// envelope is the on-disk frame: the schema tag, an IEEE CRC32 over the
// raw body bytes, and the body itself. The CRC is computed over the
// exact serialized body, so any post-write corruption — inside the body
// or from truncation that happens to keep the JSON well-formed — is
// caught before the body is even parsed.
type envelope struct {
	Schema string          `json:"schema"`
	CRC32  uint32          `json:"crc32"`
	Body   json.RawMessage `json:"body"`
}

// Encode serializes a checkpoint into the versioned, checksummed wire
// form.
func Encode(ck *Checkpoint) ([]byte, error) {
	if ck == nil {
		return nil, errors.New("ckpt: nil checkpoint")
	}
	body, err := json.Marshal(ck)
	if err != nil {
		return nil, fmt.Errorf("ckpt: encode body: %w", err)
	}
	data, err := json.Marshal(envelope{Schema: Schema, CRC32: crc32.ChecksumIEEE(body), Body: body})
	if err != nil {
		return nil, fmt.Errorf("ckpt: encode envelope: %w", err)
	}
	return data, nil
}

// Decode parses and validates the wire form: envelope shape, schema
// version, body checksum, body shape — in that order, so the error
// names the outermost failure.
func Decode(data []byte) (*Checkpoint, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if env.Schema != Schema {
		return nil, fmt.Errorf("%w: file says %q, this build reads %q", ErrSchema, env.Schema, Schema)
	}
	if got := crc32.ChecksumIEEE(env.Body); got != env.CRC32 {
		return nil, fmt.Errorf("%w: body CRC32 %08x, envelope says %08x", ErrChecksum, got, env.CRC32)
	}
	var ck Checkpoint
	if err := json.Unmarshal(env.Body, &ck); err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrTruncated, err)
	}
	return &ck, nil
}

// Save writes the encoded checkpoint to w.
func Save(w io.Writer, ck *Checkpoint) error {
	data, err := Encode(ck)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("ckpt: write: %w", err)
	}
	return nil
}

// Load reads and decodes a checkpoint from r.
func Load(r io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ckpt: read: %w", err)
	}
	return Decode(data)
}

// SaveFile writes the checkpoint atomically: encode, write to a
// same-directory temp file, fsync, rename. A crash mid-save leaves
// either the previous checkpoint or none — never a torn file that
// Decode would then reject at the worst possible moment.
func SaveFile(path string, ck *Checkpoint) error {
	data, err := Encode(ck)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: rename into place: %w", err)
	}
	return nil
}

// LoadFile reads and decodes the checkpoint at path.
func LoadFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: read %s: %w", path, err)
	}
	ck, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ck, nil
}
