package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// Typed decode failures. Each failure mode has its own sentinel so
// callers (and tests) can tell a wrong-version file from a damaged one.
var (
	// ErrSchema marks a checkpoint written by an incompatible format
	// version.
	ErrSchema = errors.New("ckpt: checkpoint schema mismatch")
	// ErrChecksum marks a checkpoint whose body does not match its
	// recorded CRC32 (bit rot, partial overwrite, manual edits).
	ErrChecksum = errors.New("ckpt: checkpoint checksum mismatch")
	// ErrTruncated marks a checkpoint that does not parse at all —
	// typically a write cut short.
	ErrTruncated = errors.New("ckpt: truncated or malformed checkpoint")
)

// Codec is a pluggable checkpoint serialization format. The JSON
// envelope ("waggle-ckpt/v1") is built in; the binary format
// ("waggle-ckpt/v2", package internal/wire) registers itself on import.
// The registry lives here rather than in the wire package so decoding
// can auto-detect formats without this package importing its own
// codecs.
type Codec struct {
	// Name selects the codec in SaveFile/EncodeAs ("json", "binary").
	Name string
	// Encode serializes a checkpoint to the codec's wire form.
	Encode func(*Checkpoint) ([]byte, error)
	// Decode parses the codec's wire form, returning the package's
	// typed sentinels (ErrSchema/ErrChecksum/ErrTruncated) on failure.
	Decode func([]byte) (*Checkpoint, error)
	// Detect reports whether data is in this codec's format; Decode
	// auto-detection tries each registered codec before falling back to
	// the JSON envelope.
	Detect func([]byte) bool
}

var codecs []Codec

// RegisterCodec adds a codec to the auto-detection chain. Called from
// codec package init functions; not safe for concurrent use.
func RegisterCodec(c Codec) {
	codecs = append(codecs, c)
}

// LookupCodec finds a registered codec by name. The built-in JSON
// envelope is not in the registry; callers use Encode/Decode directly
// for it (or pass "json" to SaveFile).
func LookupCodec(name string) (Codec, bool) {
	for _, c := range codecs {
		if c.Name == name {
			return c, true
		}
	}
	return Codec{}, false
}

// envelope is the on-disk frame: the schema tag, an IEEE CRC32 over the
// raw body bytes, and the body itself. The CRC is computed over the
// exact serialized body, so any post-write corruption — inside the body
// or from truncation that happens to keep the JSON well-formed — is
// caught before the body is even parsed.
type envelope struct {
	Schema string          `json:"schema"`
	CRC32  uint32          `json:"crc32"`
	Body   json.RawMessage `json:"body"`
}

// Encode serializes a checkpoint into the versioned, checksummed wire
// form.
func Encode(ck *Checkpoint) ([]byte, error) {
	if ck == nil {
		return nil, errors.New("ckpt: nil checkpoint")
	}
	body, err := json.Marshal(ck)
	if err != nil {
		return nil, fmt.Errorf("ckpt: encode body: %w", err)
	}
	data, err := json.Marshal(envelope{Schema: Schema, CRC32: crc32.ChecksumIEEE(body), Body: body})
	if err != nil {
		return nil, fmt.Errorf("ckpt: encode envelope: %w", err)
	}
	return data, nil
}

// EncodeAs serializes a checkpoint with the named codec. The empty
// string and "json" select the built-in envelope; any other name must
// have been registered (importing the codec package registers it).
func EncodeAs(ck *Checkpoint, codec string) ([]byte, error) {
	switch codec {
	case "", "json":
		return Encode(ck)
	}
	c, ok := LookupCodec(codec)
	if !ok {
		return nil, fmt.Errorf("ckpt: unknown codec %q (codec package not imported?)", codec)
	}
	return c.Encode(ck)
}

// Decode parses and validates the wire form, auto-detecting the format:
// each registered codec's Detect is tried first (binary files announce
// themselves with a magic), then the JSON envelope — so a loader never
// needs to know which codec wrote a file. For the envelope the checks
// run in order — shape, schema version, body checksum, body shape — so
// the error names the outermost failure.
func Decode(data []byte) (*Checkpoint, error) {
	for _, c := range codecs {
		if c.Detect(data) {
			return c.Decode(data)
		}
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if env.Schema != Schema {
		return nil, fmt.Errorf("%w: file says %q, this build reads %q", ErrSchema, env.Schema, Schema)
	}
	if got := crc32.ChecksumIEEE(env.Body); got != env.CRC32 {
		return nil, fmt.Errorf("%w: body CRC32 %08x, envelope says %08x", ErrChecksum, got, env.CRC32)
	}
	var ck Checkpoint
	if err := json.Unmarshal(env.Body, &ck); err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrTruncated, err)
	}
	return &ck, nil
}

// Save writes the encoded checkpoint to w.
func Save(w io.Writer, ck *Checkpoint) error {
	data, err := Encode(ck)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("ckpt: write: %w", err)
	}
	return nil
}

// Load reads and decodes a checkpoint from r.
func Load(r io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ckpt: read: %w", err)
	}
	return Decode(data)
}

// SaveFile writes the checkpoint atomically in the named codec
// (default: the JSON envelope; at most one codec name). A crash
// mid-save leaves either the previous checkpoint or none — never a
// torn file that Decode would then reject at the worst possible
// moment.
func SaveFile(path string, ck *Checkpoint, codec ...string) error {
	name := ""
	switch len(codec) {
	case 0:
	case 1:
		name = codec[0]
	default:
		return fmt.Errorf("ckpt: SaveFile takes at most one codec, got %d", len(codec))
	}
	data, err := EncodeAs(ck, name)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data)
}

// WriteFileAtomic writes data to path via a same-directory temp file:
// write, fsync the file, rename into place, fsync the directory. The
// file fsync keeps the rename from publishing a name whose contents
// are still in flight; the directory fsync makes the rename itself
// durable, so a crash immediately after a reported save cannot roll
// the path back to the previous checkpoint (or to nothing).
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: rename into place: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that cannot sync a directory handle (some network and
// overlay mounts) degrade to the pre-sync guarantee rather than
// failing the save.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.ENOTTY) {
			return nil
		}
		return fmt.Errorf("ckpt: sync dir %s: %w", dir, err)
	}
	return nil
}

// LoadFile reads and decodes the checkpoint at path.
func LoadFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: read %s: %w", path, err)
	}
	ck, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ck, nil
}
