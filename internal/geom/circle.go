package geom

import "math"

// Circle is a circle with Center and radius R.
type Circle struct {
	Center Point
	R      float64
}

// Contains reports whether p lies inside or on the circle, with Eps
// slack on the boundary.
func (c Circle) Contains(p Point) bool {
	return c.Center.Dist(p) <= c.R+Eps*(1+c.R)
}

// StrictlyInside reports whether p lies strictly inside the circle with
// Eps slack.
func (c Circle) StrictlyInside(p Point) bool {
	return c.Center.Dist(p) < c.R-Eps*(1+c.R)
}

// OnBoundary reports whether p lies on the circle within tolerance.
func (c Circle) OnBoundary(p Point) bool {
	return math.Abs(c.Center.Dist(p)-c.R) <= Eps*(1+c.R)
}

// PointAt returns the boundary point at polar angle theta.
func (c Circle) PointAt(theta float64) Point {
	s, cth := math.Sincos(theta)
	return Point{X: c.Center.X + c.R*cth, Y: c.Center.Y + c.R*s}
}

// Area returns the area of the circle.
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// CircleFrom2 returns the smallest circle through a and b (diameter ab).
func CircleFrom2(a, b Point) Circle {
	return Circle{Center: a.Mid(b), R: a.Dist(b) / 2}
}

// CircleFrom3 returns the circumscribed circle of the triangle abc and
// true, or the zero circle and false if the points are (near-)collinear.
func CircleFrom3(a, b, c Point) (Circle, bool) {
	// Solve for the circumcenter via perpendicular bisector intersection.
	l1 := PerpBisector(a, b)
	l2 := PerpBisector(b, c)
	center, ok := l1.Intersect(l2)
	if !ok {
		return Circle{}, false
	}
	return Circle{Center: center, R: center.Dist(a)}, true
}

// Disc is an alias emphasising the filled region semantics of Circle in
// contexts such as the granular of a Voronoi cell.
type Disc = Circle
