package geom

import "math"

// Line is an infinite directed line through Origin with direction Dir.
// Dir need not be normalised but must be non-zero.
type Line struct {
	Origin Point
	Dir    Vec
}

// LineThrough returns the directed line from a towards b.
func LineThrough(a, b Point) Line {
	return Line{Origin: a, Dir: b.Sub(a)}
}

// At returns the point Origin + t*Dir.
func (l Line) At(t float64) Point { return l.Origin.Add(l.Dir.Scale(t)) }

// Project returns the parameter t of the orthogonal projection of p onto
// l, i.e. l.At(t) is the closest point of l to p.
func (l Line) Project(p Point) float64 {
	d2 := l.Dir.Len2()
	if d2 <= Eps*Eps {
		return 0
	}
	return p.Sub(l.Origin).Dot(l.Dir) / d2
}

// ClosestPoint returns the point of l closest to p.
func (l Line) ClosestPoint(p Point) Point { return l.At(l.Project(p)) }

// Dist returns the distance from p to l.
func (l Line) Dist(p Point) float64 { return p.Dist(l.ClosestPoint(p)) }

// Side reports which side of l the point p lies on: +1 for the left side
// (counterclockwise of Dir), -1 for the right side, 0 for on the line.
func (l Line) Side(p Point) int {
	cross := l.Dir.Cross(p.Sub(l.Origin))
	tol := Eps * (1 + l.Dir.Len()*p.Sub(l.Origin).Len())
	switch {
	case cross > tol:
		return 1
	case cross < -tol:
		return -1
	default:
		return 0
	}
}

// Intersect returns the intersection point of l and m and true, or the
// zero point and false when the lines are (near-)parallel.
func (l Line) Intersect(m Line) (Point, bool) {
	denom := l.Dir.Cross(m.Dir)
	if math.Abs(denom) <= Eps*(1+l.Dir.Len()*m.Dir.Len()) {
		return Point{}, false
	}
	t := m.Origin.Sub(l.Origin).Cross(m.Dir) / denom
	return l.At(t), true
}

// PerpBisector returns the perpendicular bisector of segment ab, directed
// so that a lies on its left side. This orientation is what the Voronoi
// half-plane clipping relies on.
func PerpBisector(a, b Point) Line {
	mid := a.Mid(b)
	// ab rotated by +90° points to the left of ab; with Dir set to that
	// rotation the point a (which is to the left of the bisector when the
	// bisector is directed along Perp of ab)... Orient explicitly instead:
	dir := b.Sub(a).Perp()
	l := Line{Origin: mid, Dir: dir}
	if l.Side(a) < 0 {
		l.Dir = l.Dir.Neg()
	}
	return l
}

// Segment is the closed segment between A and B.
type Segment struct {
	A, B Point
}

// Len returns the length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Mid returns the midpoint of the segment.
func (s Segment) Mid() Point { return s.A.Mid(s.B) }

// At returns the point a fraction t of the way from A to B.
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

// ClosestPoint returns the point of the segment closest to p.
func (s Segment) ClosestPoint(p Point) Point {
	t := LineThrough(s.A, s.B).Project(p)
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return s.At(t)
}

// Dist returns the distance from p to the segment.
func (s Segment) Dist(p Point) float64 { return p.Dist(s.ClosestPoint(p)) }

// Contains reports whether p lies on the segment within Eps.
func (s Segment) Contains(p Point) bool { return s.Dist(p) <= Eps }

// HalfPlane is the closed set of points on the non-negative side of a
// directed line: {p : Line.Side(p) >= 0}, i.e. the left side.
type HalfPlane struct {
	Boundary Line
}

// Contains reports whether p is inside the half-plane (boundary
// included).
func (h HalfPlane) Contains(p Point) bool { return h.Boundary.Side(p) >= 0 }

// signedDist returns the signed distance from p to the boundary,
// positive inside the half-plane.
func (h HalfPlane) signedDist(p Point) float64 {
	d := h.Boundary.Dir.Unit()
	return d.Cross(p.Sub(h.Boundary.Origin))
}
