package geom

import (
	"fmt"
	"math"
)

// Handedness is the orientation of a coordinate frame's y axis relative
// to its x axis. The paper's chirality assumption is that all robots
// share the same handedness.
type Handedness int

const (
	// RightHanded means the +y axis is 90° counterclockwise of +x.
	RightHanded Handedness = iota + 1
	// LeftHanded means the +y axis is 90° clockwise of +x.
	LeftHanded
)

// String implements fmt.Stringer.
func (h Handedness) String() string {
	switch h {
	case RightHanded:
		return "right-handed"
	case LeftHanded:
		return "left-handed"
	default:
		return fmt.Sprintf("Handedness(%d)", int(h))
	}
}

// Frame is a robot's private x-y Cartesian coordinate system: an origin
// in the world, an orientation for the +x axis, a unit of measure, and a
// handedness. Every observation a robot makes is expressed in its frame;
// every move it computes is mapped back to the world through it.
//
// The world itself is, by convention, a right-handed frame with scale 1,
// rotation 0, origin (0,0).
type Frame struct {
	Origin Point
	// Theta is the world polar angle of the frame's +x axis, in radians.
	Theta float64
	// Scale is the length, in world units, of one local unit. Must be
	// positive.
	Scale float64
	// Hand is the frame's handedness.
	Hand Handedness
}

// WorldFrame returns the canonical world frame.
func WorldFrame() Frame {
	return Frame{Scale: 1, Hand: RightHanded}
}

// NewFrame returns a frame with the given parameters, defaulting a
// non-positive scale to 1 and an unset handedness to right-handed.
func NewFrame(origin Point, theta, scale float64, hand Handedness) Frame {
	if scale <= 0 {
		scale = 1
	}
	if hand != LeftHanded {
		hand = RightHanded
	}
	return Frame{Origin: origin, Theta: theta, Scale: scale, Hand: hand}
}

// axes returns the world-space basis vectors of one local unit along the
// frame's x and y axes.
func (f Frame) axes() (ex, ey Vec) {
	s, c := math.Sincos(f.Theta)
	ex = Vec{X: c, Y: s}.Scale(f.scaleOr1())
	ey = ex.Perp()
	if f.Hand == LeftHanded {
		ey = ey.Neg()
	}
	return ex, ey
}

func (f Frame) scaleOr1() float64 {
	if f.Scale <= 0 {
		return 1
	}
	return f.Scale
}

// ToLocal maps a world point into the frame's coordinates.
func (f Frame) ToLocal(world Point) Point {
	d := world.Sub(f.Origin)
	ex, ey := f.axes()
	inv := 1 / (f.scaleOr1() * f.scaleOr1())
	return Point{X: d.Dot(ex) * inv, Y: d.Dot(ey) * inv}
}

// ToWorld maps a local point into world coordinates.
func (f Frame) ToWorld(local Point) Point {
	ex, ey := f.axes()
	return f.Origin.Add(ex.Scale(local.X)).Add(ey.Scale(local.Y))
}

// VecToLocal maps a world displacement into the frame.
func (f Frame) VecToLocal(world Vec) Vec {
	ex, ey := f.axes()
	inv := 1 / (f.scaleOr1() * f.scaleOr1())
	return Vec{X: world.Dot(ex) * inv, Y: world.Dot(ey) * inv}
}

// VecToWorld maps a local displacement into the world.
func (f Frame) VecToWorld(local Vec) Vec {
	ex, ey := f.axes()
	return ex.Scale(local.X).Add(ey.Scale(local.Y))
}

// WithOrigin returns a copy of the frame translated to the given world
// origin. Robots carry their frame with them as they move.
func (f Frame) WithOrigin(origin Point) Frame {
	f.Origin = origin
	return f
}

// ClockwiseIsPositive reports whether increasing polar angle in this
// frame corresponds to the world's clockwise direction. Two frames with
// equal handedness always agree on the answer relative to their own
// axes, which is exactly the chirality property the paper's protocols
// exploit.
func (f Frame) ClockwiseIsPositive() bool { return f.Hand == LeftHanded }
