package geom

import "math"

// Polygon is a convex polygon stored as counterclockwise-ordered
// vertices. All operations assume convexity; the package only ever
// produces convex polygons (boxes clipped by half-planes).
type Polygon struct {
	vertices []Point
}

// NewPolygon builds a polygon from counterclockwise vertices. The input
// slice is copied.
func NewPolygon(vertices []Point) Polygon {
	vs := make([]Point, len(vertices))
	copy(vs, vertices)
	return Polygon{vertices: vs}
}

// Box returns the axis-aligned rectangle with corners (minX, minY) and
// (maxX, maxY) as a counterclockwise polygon.
func Box(minX, minY, maxX, maxY float64) Polygon {
	return Polygon{vertices: []Point{
		{X: minX, Y: minY},
		{X: maxX, Y: minY},
		{X: maxX, Y: maxY},
		{X: minX, Y: maxY},
	}}
}

// Vertices returns a copy of the polygon's vertices in counterclockwise
// order.
func (pg Polygon) Vertices() []Point {
	vs := make([]Point, len(pg.vertices))
	copy(vs, pg.vertices)
	return vs
}

// Len returns the number of vertices.
func (pg Polygon) Len() int { return len(pg.vertices) }

// Empty reports whether the polygon has no interior (fewer than three
// vertices).
func (pg Polygon) Empty() bool { return len(pg.vertices) < 3 }

// Area returns the polygon's area (shoelace formula).
func (pg Polygon) Area() float64 {
	if pg.Empty() {
		return 0
	}
	var sum float64
	n := len(pg.vertices)
	for i := 0; i < n; i++ {
		a, b := pg.vertices[i], pg.vertices[(i+1)%n]
		sum += a.X*b.Y - b.X*a.Y
	}
	return sum / 2
}

// Contains reports whether p lies inside or on the polygon.
func (pg Polygon) Contains(p Point) bool {
	if pg.Empty() {
		return false
	}
	n := len(pg.vertices)
	for i := 0; i < n; i++ {
		a, b := pg.vertices[i], pg.vertices[(i+1)%n]
		if LineThrough(a, b).Side(p) < 0 {
			return false
		}
	}
	return true
}

// Clip returns the intersection of the polygon with the half-plane
// (Sutherland–Hodgman against a single edge). The result is again convex
// and counterclockwise; it may be empty.
func (pg Polygon) Clip(h HalfPlane) Polygon {
	if pg.Empty() {
		return Polygon{}
	}
	n := len(pg.vertices)
	out := make([]Point, 0, n+1)
	for i := 0; i < n; i++ {
		cur, next := pg.vertices[i], pg.vertices[(i+1)%n]
		curIn := h.signedDist(cur) >= -Eps
		nextIn := h.signedDist(next) >= -Eps
		if curIn {
			out = append(out, cur)
		}
		if curIn != nextIn {
			// The edge crosses the boundary; add the crossing point.
			if ip, ok := LineThrough(cur, next).Intersect(h.Boundary); ok {
				out = append(out, ip)
			}
		}
	}
	out = dedupeRing(out)
	if len(out) < 3 {
		return Polygon{}
	}
	return Polygon{vertices: out}
}

// FarthestVertexDist returns the maximum distance from p to a vertex of
// the polygon — for a convex polygon containing p, the radius of the
// smallest disc centred at p that covers the polygon. Returns 0 for an
// empty polygon.
func (pg Polygon) FarthestVertexDist(p Point) float64 {
	var max float64
	for _, v := range pg.vertices {
		if d := p.Dist(v); d > max {
			max = d
		}
	}
	return max
}

// DistToBoundary returns the minimum distance from p to the polygon's
// boundary. For p inside a convex polygon this is the radius of the
// largest disc centred at p that fits inside the polygon.
func (pg Polygon) DistToBoundary(p Point) float64 {
	if pg.Empty() {
		return 0
	}
	minDist := math.Inf(1)
	n := len(pg.vertices)
	for i := 0; i < n; i++ {
		d := Segment{A: pg.vertices[i], B: pg.vertices[(i+1)%n]}.Dist(p)
		if d < minDist {
			minDist = d
		}
	}
	return minDist
}

// Centroid returns the centroid of the polygon's vertices.
func (pg Polygon) Centroid() Point { return Centroid(pg.vertices) }

// dedupeRing removes consecutive (near-)duplicate points from a closed
// ring, including the wrap-around pair.
func dedupeRing(pts []Point) []Point {
	if len(pts) == 0 {
		return pts
	}
	out := pts[:0]
	for _, p := range pts {
		if len(out) == 0 || !out[len(out)-1].Eq(p) {
			out = append(out, p)
		}
	}
	for len(out) > 1 && out[0].Eq(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	return out
}
