package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBox(t *testing.T) {
	b := Box(0, 0, 4, 2)
	if b.Len() != 4 {
		t.Fatalf("Box has %d vertices, want 4", b.Len())
	}
	if !ApproxEq(b.Area(), 8) {
		t.Errorf("Area = %v, want 8", b.Area())
	}
	if !b.Contains(Pt(1, 1)) {
		t.Error("interior point should be contained")
	}
	if !b.Contains(Pt(0, 0)) {
		t.Error("corner should be contained")
	}
	if b.Contains(Pt(5, 1)) {
		t.Error("exterior point should not be contained")
	}
}

func TestClipKeepsHalf(t *testing.T) {
	b := Box(0, 0, 2, 2)
	// Keep the left half: boundary x = 1 pointing +y keeps x <= 1.
	h := HalfPlane{Boundary: LineThrough(Pt(1, 0), Pt(1, 1))}
	got := b.Clip(h)
	if got.Empty() {
		t.Fatal("clip should not be empty")
	}
	if !ApproxEq(got.Area(), 2) {
		t.Errorf("clipped area = %v, want 2", got.Area())
	}
	if !got.Contains(Pt(0.5, 1)) || got.Contains(Pt(1.5, 1)) {
		t.Error("clip kept the wrong half")
	}
}

func TestClipAllOrNothing(t *testing.T) {
	b := Box(0, 0, 2, 2)
	// Half-plane containing the whole box.
	all := HalfPlane{Boundary: LineThrough(Pt(-10, 0), Pt(-10, 1))}
	// Wait: boundary x=-10 pointing +y keeps x <= -10 (left of upward line
	// is -x side). Flip direction to keep x >= -10.
	all = HalfPlane{Boundary: LineThrough(Pt(-10, 1), Pt(-10, 0))}
	got := b.Clip(all)
	if !ApproxEq(got.Area(), 4) {
		t.Errorf("clip by containing half-plane: area = %v, want 4", got.Area())
	}
	none := HalfPlane{Boundary: LineThrough(Pt(-10, 0), Pt(-10, 1))}
	if got := b.Clip(none); !got.Empty() {
		t.Errorf("clip by disjoint half-plane should be empty, got area %v", got.Area())
	}
}

func TestClipCorner(t *testing.T) {
	b := Box(0, 0, 2, 2)
	// Diagonal cut keeping the lower-left triangle x+y <= 2:
	// line from (2,0) to (0,2), left side is the origin side.
	h := HalfPlane{Boundary: LineThrough(Pt(2, 0), Pt(0, 2))}
	got := b.Clip(h)
	if !ApproxEq(got.Area(), 2) {
		t.Errorf("triangle area = %v, want 2", got.Area())
	}
	if !got.Contains(Pt(0.1, 0.1)) || got.Contains(Pt(1.9, 1.9)) {
		t.Error("diagonal clip kept the wrong side")
	}
}

func TestDistToBoundary(t *testing.T) {
	b := Box(0, 0, 4, 4)
	tests := []struct {
		name string
		p    Point
		want float64
	}{
		{"center", Pt(2, 2), 2},
		{"near left edge", Pt(1, 2), 1},
		{"near corner", Pt(0.5, 0.25), 0.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := b.DistToBoundary(tt.p); !ApproxEq(got, tt.want) {
				t.Errorf("DistToBoundary(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestPolygonVerticesCopied(t *testing.T) {
	src := []Point{Pt(0, 0), Pt(1, 0), Pt(0, 1)}
	pg := NewPolygon(src)
	src[0] = Pt(99, 99)
	if pg.Vertices()[0].Eq(Pt(99, 99)) {
		t.Error("NewPolygon must copy its input")
	}
	vs := pg.Vertices()
	vs[0] = Pt(-1, -1)
	if pg.Vertices()[0].Eq(Pt(-1, -1)) {
		t.Error("Vertices must return a copy")
	}
}

// Property: clipping never increases area, and the clipped polygon is
// contained in both the original polygon and the half-plane.
func TestClipPropertyMonotone(t *testing.T) {
	f := func(ox, oy, dx, dy float64) bool {
		b := Box(-10, -10, 10, 10)
		dir := V(clampCoord(dx), clampCoord(dy))
		if dir.Len() < 1e-3 {
			return true
		}
		h := HalfPlane{Boundary: Line{
			Origin: Pt(math.Mod(clampCoord(ox), 15), math.Mod(clampCoord(oy), 15)),
			Dir:    dir,
		}}
		got := b.Clip(h)
		if got.Area() > b.Area()+1e-6 {
			return false
		}
		if got.Empty() {
			return true
		}
		c := got.Centroid()
		return b.Contains(c) && h.Contains(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sequential clipping is order-independent for the resulting
// area (intersection is commutative).
func TestClipPropertyCommutative(t *testing.T) {
	f := func(a1, a2 float64) bool {
		b := Box(-5, -5, 5, 5)
		t1 := math.Mod(clampCoord(a1), 2*math.Pi)
		t2 := math.Mod(clampCoord(a2), 2*math.Pi)
		h1 := HalfPlane{Boundary: Line{Origin: Pt(1, 0), Dir: V(math.Cos(t1), math.Sin(t1))}}
		h2 := HalfPlane{Boundary: Line{Origin: Pt(0, 1), Dir: V(math.Cos(t2), math.Sin(t2))}}
		if h1.Boundary.Dir.Len() < 1e-6 || h2.Boundary.Dir.Len() < 1e-6 {
			return true
		}
		x := b.Clip(h1).Clip(h2).Area()
		y := b.Clip(h2).Clip(h1).Area()
		return math.Abs(x-y) <= 1e-6*(1+x+y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
