package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	tests := []struct {
		name string
		got  Point
		want Point
	}{
		{"add", Pt(1, 2).Add(V(3, -1)), Pt(4, 1)},
		{"mid", Pt(0, 0).Mid(Pt(4, 6)), Pt(2, 3)},
		{"lerp0", Pt(1, 1).Lerp(Pt(5, 5), 0), Pt(1, 1)},
		{"lerp1", Pt(1, 1).Lerp(Pt(5, 5), 1), Pt(5, 5)},
		{"lerpHalf", Pt(0, 0).Lerp(Pt(2, 4), 0.5), Pt(1, 2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.got.Eq(tt.want) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64
	}{
		{"same", Pt(1, 1), Pt(1, 1), 0},
		{"unit x", Pt(0, 0), Pt(1, 0), 1},
		{"345", Pt(0, 0), Pt(3, 4), 5},
		{"negative", Pt(-1, -1), Pt(2, 3), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Dist(tt.b); !ApproxEq(got, tt.want) {
				t.Errorf("Dist = %v, want %v", got, tt.want)
			}
			if got := tt.a.Dist2(tt.b); !ApproxEq(got, tt.want*tt.want) {
				t.Errorf("Dist2 = %v, want %v", got, tt.want*tt.want)
			}
		})
	}
}

func TestVecOps(t *testing.T) {
	if got := V(1, 2).Dot(V(3, 4)); !ApproxEq(got, 11) {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := V(1, 0).Cross(V(0, 1)); !ApproxEq(got, 1) {
		t.Errorf("Cross = %v, want 1", got)
	}
	if got := V(0, 1).Cross(V(1, 0)); !ApproxEq(got, -1) {
		t.Errorf("Cross = %v, want -1", got)
	}
	if got := V(3, 4).Len(); !ApproxEq(got, 5) {
		t.Errorf("Len = %v, want 5", got)
	}
	u := V(10, 0).Unit()
	if !ApproxEq(u.X, 1) || !ApproxEq(u.Y, 0) {
		t.Errorf("Unit = %v, want <1,0>", u)
	}
	if !V(0, 0).Unit().IsZero() {
		t.Error("Unit of zero vector should be zero")
	}
}

func TestPerpAndRotate(t *testing.T) {
	p := V(1, 0).Perp()
	if !ApproxEq(p.X, 0) || !ApproxEq(p.Y, 1) {
		t.Errorf("Perp(<1,0>) = %v, want <0,1>", p)
	}
	r := V(1, 0).Rotate(math.Pi / 2)
	if !ApproxEq(r.X, 0) || !ApproxEq(r.Y, 1) {
		t.Errorf("Rotate 90 = %v, want <0,1>", r)
	}
	r = V(1, 0).Rotate(math.Pi)
	if !ApproxEq(r.X, -1) || !ApproxEq(r.Y, 0) {
		t.Errorf("Rotate 180 = %v, want <-1,0>", r)
	}
}

func TestOrientation(t *testing.T) {
	tests := []struct {
		name    string
		a, b, c Point
		want    int
	}{
		{"ccw", Pt(0, 0), Pt(1, 0), Pt(0, 1), 1},
		{"cw", Pt(0, 0), Pt(0, 1), Pt(1, 0), -1},
		{"collinear", Pt(0, 0), Pt(1, 1), Pt(2, 2), 0},
		{"collinear reversed", Pt(2, 2), Pt(1, 1), Pt(0, 0), 0},
		{"large ccw", Pt(0, 0), Pt(1e6, 0), Pt(1e6, 1e6), 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Orientation(tt.a, tt.b, tt.c); got != tt.want {
				t.Errorf("Orientation = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestNormalizeAngle(t *testing.T) {
	tests := []struct {
		give, want float64
	}{
		{0, 0},
		{2 * math.Pi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
		{-4 * math.Pi, 0},
	}
	for _, tt := range tests {
		if got := NormalizeAngle(tt.give); !ApproxEq(got, tt.want) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{0, math.Pi, math.Pi},
		{0.1, 2*math.Pi - 0.1, 0.2},
		{math.Pi / 2, -math.Pi / 2, math.Pi},
	}
	for _, tt := range tests {
		if got := AngleDiff(tt.a, tt.b); !ApproxEq(got, tt.want) {
			t.Errorf("AngleDiff(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCentroid(t *testing.T) {
	c := Centroid([]Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)})
	if !c.Eq(Pt(1, 1)) {
		t.Errorf("Centroid = %v, want (1,1)", c)
	}
}

// Property: rotating a vector preserves its length, and rotating by theta
// then -theta is the identity.
func TestRotatePropertyPreservesLength(t *testing.T) {
	f := func(x, y, theta float64) bool {
		x, y = clampCoord(x), clampCoord(y)
		theta = math.Mod(theta, 2*math.Pi)
		v := V(x, y)
		r := v.Rotate(theta)
		if !ApproxEq(v.Len(), r.Len()) {
			return false
		}
		back := r.Rotate(-theta)
		return back.Sub(v).Len() <= 1e-6*(1+v.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dist is a metric — symmetric and satisfies the triangle
// inequality.
func TestDistPropertyMetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(clampCoord(ax), clampCoord(ay))
		b := Pt(clampCoord(bx), clampCoord(by))
		c := Pt(clampCoord(cx), clampCoord(cy))
		if !ApproxEq(a.Dist(b), b.Dist(a)) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cross product is antisymmetric.
func TestCrossPropertyAntisymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := V(clampCoord(ax), clampCoord(ay))
		b := V(clampCoord(bx), clampCoord(by))
		return ApproxEq(a.Cross(b), -b.Cross(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampCoord maps an arbitrary quick-generated float into a sane
// simulation coordinate range, discarding NaN/Inf.
func clampCoord(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e3)
}

func TestStringers(t *testing.T) {
	if got := Pt(1, 2).String(); got != "(1, 2)" {
		t.Errorf("Point.String = %q", got)
	}
	if got := V(1, 2).String(); got != "<1, 2>" {
		t.Errorf("Vec.String = %q", got)
	}
	if RightHanded.String() != "right-handed" || LeftHanded.String() != "left-handed" {
		t.Error("Handedness strings wrong")
	}
	if got := Handedness(9).String(); got != "Handedness(9)" {
		t.Errorf("unknown handedness = %q", got)
	}
}

func TestVecAngle(t *testing.T) {
	if got := V(0, 1).Angle(); !ApproxEq(got, math.Pi/2) {
		t.Errorf("Angle = %v", got)
	}
	if got := V(-1, 0).Angle(); !ApproxEq(got, math.Pi) {
		t.Errorf("Angle = %v", got)
	}
}

func TestCircleArea(t *testing.T) {
	c := Circle{Center: Pt(0, 0), R: 2}
	if !ApproxEq(c.Area(), 4*math.Pi) {
		t.Errorf("Area = %v", c.Area())
	}
}

func TestFrameWithOrigin(t *testing.T) {
	f := NewFrame(Pt(1, 1), 0, 2, RightHanded).WithOrigin(Pt(9, 9))
	if !f.Origin.Eq(Pt(9, 9)) || f.Scale != 2 {
		t.Errorf("WithOrigin = %+v", f)
	}
}
