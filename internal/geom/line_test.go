package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLineProject(t *testing.T) {
	l := LineThrough(Pt(0, 0), Pt(10, 0))
	tests := []struct {
		name string
		p    Point
		want Point
	}{
		{"above origin", Pt(0, 5), Pt(0, 0)},
		{"above middle", Pt(5, 3), Pt(5, 0)},
		{"beyond end", Pt(20, -2), Pt(20, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := l.ClosestPoint(tt.p); !got.Eq(tt.want) {
				t.Errorf("ClosestPoint = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLineSide(t *testing.T) {
	l := LineThrough(Pt(0, 0), Pt(1, 0)) // pointing +x, left side is +y
	tests := []struct {
		name string
		p    Point
		want int
	}{
		{"left", Pt(0, 1), 1},
		{"right", Pt(0, -1), -1},
		{"on", Pt(5, 0), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := l.Side(tt.p); got != tt.want {
				t.Errorf("Side(%v) = %d, want %d", tt.p, got, tt.want)
			}
		})
	}
}

func TestLineIntersect(t *testing.T) {
	l := LineThrough(Pt(0, 0), Pt(1, 1))
	m := LineThrough(Pt(0, 2), Pt(1, 1))
	p, ok := l.Intersect(m)
	if !ok {
		t.Fatal("expected intersection")
	}
	if !p.Eq(Pt(1, 1)) {
		t.Errorf("Intersect = %v, want (1,1)", p)
	}
	// Parallel lines do not intersect.
	if _, ok := l.Intersect(LineThrough(Pt(0, 1), Pt(1, 2))); ok {
		t.Error("parallel lines reported as intersecting")
	}
}

func TestPerpBisector(t *testing.T) {
	a, b := Pt(0, 0), Pt(4, 0)
	l := PerpBisector(a, b)
	if l.Side(a) <= 0 {
		t.Error("a must be strictly on the left of its bisector")
	}
	if l.Side(b) >= 0 {
		t.Error("b must be strictly on the right of its bisector")
	}
	if !ApproxEq(l.Dist(a), l.Dist(b)) {
		t.Error("bisector must be equidistant from a and b")
	}
	if !l.ClosestPoint(a).Eq(a.Mid(b)) {
		t.Error("projection of a onto the bisector must be the midpoint")
	}
}

// Property: for any two distinct points, every point of the bisector is
// equidistant from them, and each endpoint is on its designated side.
func TestPerpBisectorProperty(t *testing.T) {
	f := func(ax, ay, bx, by, tpar float64) bool {
		a := Pt(clampCoord(ax), clampCoord(ay))
		b := Pt(clampCoord(bx), clampCoord(by))
		if a.Dist(b) < 1e-3 {
			return true // degenerate, skip
		}
		l := PerpBisector(a, b)
		if l.Side(a) <= 0 || l.Side(b) >= 0 {
			return false
		}
		p := l.At(math.Mod(tpar, 10))
		return math.Abs(p.Dist(a)-p.Dist(b)) <= 1e-6*(1+p.Dist(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegment(t *testing.T) {
	s := Segment{A: Pt(0, 0), B: Pt(10, 0)}
	if !ApproxEq(s.Len(), 10) {
		t.Errorf("Len = %v, want 10", s.Len())
	}
	if !s.Mid().Eq(Pt(5, 0)) {
		t.Errorf("Mid = %v, want (5,0)", s.Mid())
	}
	tests := []struct {
		name string
		p    Point
		want Point
	}{
		{"interior projection", Pt(3, 4), Pt(3, 0)},
		{"clamped to A", Pt(-5, 2), Pt(0, 0)},
		{"clamped to B", Pt(15, 2), Pt(10, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.ClosestPoint(tt.p); !got.Eq(tt.want) {
				t.Errorf("ClosestPoint(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
	if !s.Contains(Pt(5, 0)) {
		t.Error("segment should contain its midpoint")
	}
	if s.Contains(Pt(5, 1)) {
		t.Error("segment should not contain an off-segment point")
	}
}

func TestHalfPlane(t *testing.T) {
	h := HalfPlane{Boundary: LineThrough(Pt(0, 0), Pt(1, 0))}
	if !h.Contains(Pt(0, 5)) {
		t.Error("left point should be inside")
	}
	if !h.Contains(Pt(3, 0)) {
		t.Error("boundary point should be inside")
	}
	if h.Contains(Pt(0, -5)) {
		t.Error("right point should be outside")
	}
}

func TestCircle(t *testing.T) {
	c := Circle{Center: Pt(0, 0), R: 5}
	if !c.Contains(Pt(3, 4)) {
		t.Error("boundary point should be contained")
	}
	if !c.OnBoundary(Pt(3, 4)) {
		t.Error("(3,4) should be on the boundary of radius-5 circle")
	}
	if !c.StrictlyInside(Pt(1, 1)) {
		t.Error("(1,1) should be strictly inside")
	}
	if c.Contains(Pt(4, 4)) {
		t.Error("(4,4) should be outside")
	}
	p := c.PointAt(math.Pi / 2)
	if !p.Eq(Pt(0, 5)) {
		t.Errorf("PointAt(pi/2) = %v, want (0,5)", p)
	}
}

func TestCircleFrom2(t *testing.T) {
	c := CircleFrom2(Pt(0, 0), Pt(4, 0))
	if !c.Center.Eq(Pt(2, 0)) || !ApproxEq(c.R, 2) {
		t.Errorf("CircleFrom2 = %+v, want center (2,0) r 2", c)
	}
}

func TestCircleFrom3(t *testing.T) {
	c, ok := CircleFrom3(Pt(1, 0), Pt(-1, 0), Pt(0, 1))
	if !ok {
		t.Fatal("expected a circumcircle")
	}
	if !c.Center.Eq(Pt(0, 0)) || !ApproxEq(c.R, 1) {
		t.Errorf("CircleFrom3 = %+v, want unit circle", c)
	}
	if _, ok := CircleFrom3(Pt(0, 0), Pt(1, 1), Pt(2, 2)); ok {
		t.Error("collinear points must not have a circumcircle")
	}
}

// Property: the circumcircle of three non-collinear points passes through
// all three.
func TestCircleFrom3Property(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(clampCoord(ax), clampCoord(ay))
		b := Pt(clampCoord(bx), clampCoord(by))
		c := Pt(clampCoord(cx), clampCoord(cy))
		if Collinear(a, b, c) || a.Dist(b) < 1e-3 || b.Dist(c) < 1e-3 || a.Dist(c) < 1e-3 {
			return true
		}
		cc, ok := CircleFrom3(a, b, c)
		if !ok {
			return true // near-degenerate; the predicate may reject it
		}
		tol := 1e-5 * (1 + cc.R)
		return math.Abs(cc.Center.Dist(a)-cc.R) <= tol &&
			math.Abs(cc.Center.Dist(b)-cc.R) <= tol &&
			math.Abs(cc.Center.Dist(c)-cc.R) <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
