package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWorldFrameIsIdentity(t *testing.T) {
	f := WorldFrame()
	p := Pt(3, -7)
	if !f.ToLocal(p).Eq(p) || !f.ToWorld(p).Eq(p) {
		t.Error("world frame must be the identity transform")
	}
}

func TestFrameTranslation(t *testing.T) {
	f := NewFrame(Pt(10, 5), 0, 1, RightHanded)
	if got := f.ToLocal(Pt(10, 5)); !got.Eq(Pt(0, 0)) {
		t.Errorf("origin maps to %v, want (0,0)", got)
	}
	if got := f.ToLocal(Pt(11, 5)); !got.Eq(Pt(1, 0)) {
		t.Errorf("ToLocal = %v, want (1,0)", got)
	}
}

func TestFrameRotation(t *testing.T) {
	// Frame whose +x axis points along world +y.
	f := NewFrame(Pt(0, 0), math.Pi/2, 1, RightHanded)
	if got := f.ToLocal(Pt(0, 1)); !got.Eq(Pt(1, 0)) {
		t.Errorf("ToLocal(world +y) = %v, want (1,0)", got)
	}
	if got := f.ToWorld(Pt(1, 0)); !got.Eq(Pt(0, 1)) {
		t.Errorf("ToWorld(local +x) = %v, want (0,1)", got)
	}
}

func TestFrameScale(t *testing.T) {
	f := NewFrame(Pt(0, 0), 0, 2, RightHanded) // one local unit = 2 world units
	if got := f.ToLocal(Pt(4, 0)); !got.Eq(Pt(2, 0)) {
		t.Errorf("ToLocal = %v, want (2,0)", got)
	}
	if got := f.ToWorld(Pt(1, 1)); !got.Eq(Pt(2, 2)) {
		t.Errorf("ToWorld = %v, want (2,2)", got)
	}
}

func TestFrameHandedness(t *testing.T) {
	right := NewFrame(Pt(0, 0), 0, 1, RightHanded)
	left := NewFrame(Pt(0, 0), 0, 1, LeftHanded)
	// World +y is local +y in a right-handed frame, local -y in a
	// left-handed frame with the same x axis.
	if got := right.ToLocal(Pt(0, 1)); !got.Eq(Pt(0, 1)) {
		t.Errorf("right-handed ToLocal = %v, want (0,1)", got)
	}
	if got := left.ToLocal(Pt(0, 1)); !got.Eq(Pt(0, -1)) {
		t.Errorf("left-handed ToLocal = %v, want (0,-1)", got)
	}
	if right.ClockwiseIsPositive() {
		t.Error("right-handed frame must not report clockwise-positive")
	}
	if !left.ClockwiseIsPositive() {
		t.Error("left-handed frame must report clockwise-positive")
	}
}

func TestFrameDefaulting(t *testing.T) {
	f := NewFrame(Pt(0, 0), 0, -3, Handedness(0))
	if f.Scale != 1 {
		t.Errorf("non-positive scale should default to 1, got %v", f.Scale)
	}
	if f.Hand != RightHanded {
		t.Errorf("unset handedness should default to right-handed, got %v", f.Hand)
	}
}

func TestVecTransforms(t *testing.T) {
	f := NewFrame(Pt(100, 100), math.Pi/2, 2, RightHanded)
	// Vectors ignore the origin.
	v := f.VecToWorld(V(1, 0))
	if !ApproxEq(v.X, 0) || !ApproxEq(v.Y, 2) {
		t.Errorf("VecToWorld = %v, want <0,2>", v)
	}
	back := f.VecToLocal(v)
	if !ApproxEq(back.X, 1) || !ApproxEq(back.Y, 0) {
		t.Errorf("VecToLocal = %v, want <1,0>", back)
	}
}

// Property: ToWorld is the inverse of ToLocal for arbitrary frames.
func TestFramePropertyRoundTrip(t *testing.T) {
	f := func(ox, oy, theta, scale, px, py float64, leftHand bool) bool {
		hand := RightHanded
		if leftHand {
			hand = LeftHanded
		}
		s := math.Abs(math.Mod(clampCoord(scale), 10)) + 0.1
		fr := NewFrame(Pt(clampCoord(ox), clampCoord(oy)), math.Mod(clampCoord(theta), 2*math.Pi), s, hand)
		p := Pt(clampCoord(px), clampCoord(py))
		rt := fr.ToWorld(fr.ToLocal(p))
		return rt.Dist(p) <= 1e-6*(1+p.Sub(fr.Origin).Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: frames with the same handedness agree on the sign of the
// cross product of observed displacement pairs (the chirality property
// used throughout the paper), regardless of rotation and scale.
func TestFramePropertyChirality(t *testing.T) {
	f := func(t1, t2, s1, s2, ax, ay, bx, by float64) bool {
		sc1 := math.Abs(math.Mod(clampCoord(s1), 10)) + 0.1
		sc2 := math.Abs(math.Mod(clampCoord(s2), 10)) + 0.1
		f1 := NewFrame(Pt(0, 0), math.Mod(clampCoord(t1), 2*math.Pi), sc1, RightHanded)
		f2 := NewFrame(Pt(5, 5), math.Mod(clampCoord(t2), 2*math.Pi), sc2, RightHanded)
		a := V(clampCoord(ax), clampCoord(ay))
		b := V(clampCoord(bx), clampCoord(by))
		if a.Len() < 1e-3 || b.Len() < 1e-3 {
			return true
		}
		c := a.Cross(b)
		if math.Abs(c) < 1e-6 {
			return true // ambiguous, skip
		}
		c1 := f1.VecToLocal(a).Cross(f1.VecToLocal(b))
		c2 := f2.VecToLocal(a).Cross(f2.VecToLocal(b))
		return (c1 > 0) == (c > 0) && (c2 > 0) == (c > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a left-handed observer sees the opposite rotation sense from
// a right-handed one.
func TestFramePropertyMirrorFlipsChirality(t *testing.T) {
	f := func(theta, ax, ay, bx, by float64) bool {
		r := NewFrame(Pt(0, 0), math.Mod(clampCoord(theta), 2*math.Pi), 1, RightHanded)
		l := NewFrame(Pt(0, 0), math.Mod(clampCoord(theta), 2*math.Pi), 1, LeftHanded)
		a := V(clampCoord(ax), clampCoord(ay))
		b := V(clampCoord(bx), clampCoord(by))
		c := a.Cross(b)
		if math.Abs(c) < 1e-6 {
			return true
		}
		cr := r.VecToLocal(a).Cross(r.VecToLocal(b))
		cl := l.VecToLocal(a).Cross(l.VecToLocal(b))
		return (cr > 0) != (cl > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
