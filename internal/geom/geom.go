// Package geom provides the planar geometry substrate for the robot
// simulator: points, vectors, angles, lines, segments, circles, convex
// polygons with half-plane clipping, and local coordinate frames with
// configurable orientation, scale, and handedness (chirality).
//
// The paper models robots as points in the Euclidean plane observed with
// "infinite decimal precision". This package substitutes float64
// arithmetic with epsilon-aware predicates; the protocols built on top
// only ever need to distinguish O(n) slice directions and detect "the
// position changed", both of which are far coarser than float64
// resolution (see DESIGN.md §3).
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used by the approximate predicates in this
// package. Coordinates handled by the simulator are O(1e3), so 1e-9
// leaves six orders of magnitude of slack above float64 noise.
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Vec is a displacement in the plane.
type Vec struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// V is shorthand for Vec{x, y}.
func V(x, y float64) Vec { return Vec{X: x, Y: y} }

// Add returns p translated by v.
func (p Point) Add(v Vec) Point { return Point{X: p.X + v.X, Y: p.Y + v.Y} }

// Sub returns the displacement from q to p.
func (p Point) Sub(q Point) Vec { return Vec{X: p.X - q.X, Y: p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool { return p.Dist(q) <= Eps }

// Mid returns the midpoint of p and q.
func (p Point) Mid(q Point) Point {
	return Point{X: (p.X + q.X) / 2, Y: (p.Y + q.Y) / 2}
}

// Lerp returns the point a fraction t of the way from p to q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{X: p.X + (q.X-p.X)*t, Y: p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Add returns the vector sum v + w.
func (v Vec) Add(w Vec) Vec { return Vec{X: v.X + w.X, Y: v.Y + w.Y} }

// Sub returns the vector difference v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{X: v.X - w.X, Y: v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{X: v.X * s, Y: v.Y * s} }

// Neg returns -v.
func (v Vec) Neg() Vec { return Vec{X: -v.X, Y: -v.Y} }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z component of the 3-D cross product of v and w.
// It is positive when w is counterclockwise of v.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// Len2 returns the squared length of v.
func (v Vec) Len2() float64 { return v.X*v.X + v.Y*v.Y }

// Unit returns v normalised to length one. The zero vector is returned
// unchanged.
func (v Vec) Unit() Vec {
	l := v.Len()
	if l <= Eps {
		return Vec{}
	}
	return Vec{X: v.X / l, Y: v.Y / l}
}

// Perp returns v rotated by +90 degrees (counterclockwise in a
// right-handed frame).
func (v Vec) Perp() Vec { return Vec{X: -v.Y, Y: v.X} }

// Rotate returns v rotated counterclockwise by theta radians.
func (v Vec) Rotate(theta float64) Vec {
	s, c := math.Sincos(theta)
	return Vec{X: c*v.X - s*v.Y, Y: s*v.X + c*v.Y}
}

// Angle returns the polar angle of v in (-pi, pi].
func (v Vec) Angle() float64 { return math.Atan2(v.Y, v.X) }

// IsZero reports whether v has length at most Eps.
func (v Vec) IsZero() bool { return v.Len() <= Eps }

// String implements fmt.Stringer.
func (v Vec) String() string { return fmt.Sprintf("<%.6g, %.6g>", v.X, v.Y) }

// Orientation classifies the turn a->b->c: +1 for a counterclockwise
// turn, -1 for clockwise, 0 for (near-)collinear.
func Orientation(a, b, c Point) int {
	cross := b.Sub(a).Cross(c.Sub(a))
	// Scale the tolerance by the magnitude of the operands so that the
	// predicate is meaningful for both tiny and large triangles.
	scale := b.Sub(a).Len() * c.Sub(a).Len()
	tol := Eps * (1 + scale)
	switch {
	case cross > tol:
		return 1
	case cross < -tol:
		return -1
	default:
		return 0
	}
}

// Collinear reports whether a, b, and c are collinear within tolerance.
func Collinear(a, b, c Point) bool { return Orientation(a, b, c) == 0 }

// Centroid returns the arithmetic mean of the given points. It panics
// only implicitly (NaN) for an empty slice; callers must pass at least
// one point.
func Centroid(pts []Point) Point {
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	return Point{X: sx / n, Y: sy / n}
}

// NormalizeAngle maps theta into [0, 2*pi).
func NormalizeAngle(theta float64) float64 {
	t := math.Mod(theta, 2*math.Pi)
	if t < 0 {
		t += 2 * math.Pi
	}
	return t
}

// AngleDiff returns the smallest absolute difference between two angles,
// in [0, pi].
func AngleDiff(a, b float64) float64 {
	d := math.Abs(NormalizeAngle(a) - NormalizeAngle(b))
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// ApproxEq reports whether a and b differ by at most Eps scaled to the
// magnitude of the operands.
func ApproxEq(a, b float64) bool {
	return math.Abs(a-b) <= Eps*(1+math.Abs(a)+math.Abs(b))
}
