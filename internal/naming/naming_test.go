package naming

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"waggle/internal/geom"
	"waggle/internal/sec"
)

func TestLexLabels(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(2, 0), // label 2
		geom.Pt(0, 1), // label 1
		geom.Pt(0, 0), // label 0
		geom.Pt(3, 5), // label 3
	}
	got := LexLabels(pts)
	want := []int{2, 1, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LexLabels = %v, want %v", got, want)
		}
	}
}

// Property: LexLabels is invariant under uniform positive scaling (each
// robot's private unit of measure must not change the order).
func TestLexLabelsPropertyScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		pts := make([]geom.Point, n)
		scaled := make([]geom.Point, n)
		s := rng.Float64()*10 + 0.01
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
			scaled[i] = geom.Pt(pts[i].X*s, pts[i].Y*s)
		}
		a, b := LexLabels(pts), LexLabels(scaled)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: scaling changed labels: %v vs %v", trial, a, b)
			}
		}
	}
}

// Property: LexLabels is a permutation of 0..n-1.
func TestLexLabelsPropertyPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(30)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		labels := LexLabels(pts)
		seen := make([]bool, n)
		for _, l := range labels {
			if l < 0 || l >= n || seen[l] {
				t.Fatalf("trial %d: labels %v not a permutation", trial, labels)
			}
			seen[l] = true
		}
	}
}

func secOf(t *testing.T, pts []geom.Point) geom.Circle {
	t.Helper()
	c, err := sec.Enclosing(pts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSECLabelsErrors(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 0), geom.Pt(-1, 0)}
	c := secOf(t, pts)
	if _, err := SECLabels(pts, 5, c); !errors.Is(err, ErrObserverOutOfRange) {
		t.Errorf("err = %v, want ErrObserverOutOfRange", err)
	}
	withCenter := []geom.Point{geom.Pt(1, 0), geom.Pt(-1, 0), geom.Pt(0, 0)}
	c = secOf(t, withCenter)
	if _, err := SECLabels(withCenter, 2, c); !errors.Is(err, ErrObserverAtCenter) {
		t.Errorf("err = %v, want ErrObserverAtCenter", err)
	}
}

func TestSECLabelsSquare(t *testing.T) {
	// Square centred at the origin. Observer at (1,0); clockwise sweep
	// from its horizon visits (0,-1), (-1,0), (0,1).
	pts := []geom.Point{
		geom.Pt(1, 0),  // observer, label 0
		geom.Pt(0, 1),  // label 3 (clockwise last)
		geom.Pt(-1, 0), // label 2
		geom.Pt(0, -1), // label 1 (first clockwise)
	}
	labels, err := SECLabels(pts, 0, secOf(t, pts))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 2, 1}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("SECLabels = %v, want %v", labels, want)
		}
	}
}

func TestSECLabelsSharedRadius(t *testing.T) {
	// Two robots on the observer's own radius: the one nearer the centre
	// gets the smaller label; the observer itself is NOT necessarily 0.
	pts := []geom.Point{
		geom.Pt(2, 0),  // observer, outermost on horizon -> label 1
		geom.Pt(1, 0),  // inner on horizon -> label 0
		geom.Pt(0, -2), // first strictly clockwise radius -> label 2
		geom.Pt(-2, 0), // label 3
	}
	labels, err := SECLabels(pts, 0, secOf(t, pts))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 2, 3}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("SECLabels = %v, want %v", labels, want)
		}
	}
}

// Property: SECLabels is a permutation, and every robot can reconstruct
// every other observer's labelling (the paper's redundancy argument) —
// here checked as: the labelling depends only on (pts, observer), not on
// who computes it, which holds trivially, plus rotation invariance: a
// rigid rotation of the whole configuration leaves all labels unchanged.
func TestSECLabelsPropertyRotationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(15)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		}
		c := secOf(t, pts)
		theta := rng.Float64() * 2 * math.Pi
		rot := make([]geom.Point, n)
		for i, p := range pts {
			rot[i] = geom.Point{}.Add(p.Sub(geom.Point{}).Rotate(theta))
		}
		cRot := secOf(t, rot)
		for obs := 0; obs < n; obs++ {
			a, err := SECLabels(pts, obs, c)
			if err != nil {
				if errors.Is(err, ErrObserverAtCenter) {
					continue
				}
				t.Fatal(err)
			}
			seen := make([]bool, n)
			for _, l := range a {
				if l < 0 || l >= n || seen[l] {
					t.Fatalf("trial %d: labels %v not a permutation", trial, a)
				}
				seen[l] = true
			}
			b, err := SECLabels(rot, obs, cRot)
			if err != nil {
				continue
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d obs %d: rotation changed labels %v -> %v", trial, obs, a, b)
				}
			}
		}
	}
}

func TestRotationalSymmetryOrder(t *testing.T) {
	tests := []struct {
		name string
		pts  []geom.Point
		want int
	}{
		{"single point", []geom.Point{geom.Pt(3, 3)}, 1},
		{"pair", []geom.Point{geom.Pt(-1, 0), geom.Pt(1, 0)}, 2},
		{"square", []geom.Point{geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(-1, 0), geom.Pt(0, -1)}, 4},
		{"asymmetric triangle", []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(1, 3)}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := RotationalSymmetryOrder(tt.pts); got != tt.want {
				t.Errorf("RotationalSymmetryOrder = %d, want %d", got, tt.want)
			}
		})
	}
	t.Run("regular hexagon", func(t *testing.T) {
		var hex []geom.Point
		for k := 0; k < 6; k++ {
			theta := float64(k) / 6 * 2 * math.Pi
			hex = append(hex, geom.Pt(math.Cos(theta), math.Sin(theta)))
		}
		if got := RotationalSymmetryOrder(hex); got != 6 {
			t.Errorf("hexagon symmetry = %d, want 6", got)
		}
	})
}

// TestFig3SymmetryDefeatsGlobalNaming reproduces Figure 3: six robots in
// a configuration with 2-fold rotational symmetry, where for every robot
// there is another robot with the same view. Experiment F3 in DESIGN.md.
func TestFig3SymmetryDefeatsGlobalNaming(t *testing.T) {
	pts := Fig3Configuration()
	if got := RotationalSymmetryOrder(pts); got < 2 {
		t.Fatalf("Fig. 3 configuration symmetry order = %d, want >= 2", got)
	}
	// Every robot has a counterpart with an indistinguishable view.
	for i := range pts {
		found := false
		for j := range pts {
			if i != j && ViewsIndistinguishable(pts, i, j) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("robot %d has no symmetric counterpart", i)
		}
	}
	// By contrast the robots CAN still agree pairwise via relative naming:
	// SECLabels succeeds for every observer.
	c, err := sec.Enclosing(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if _, err := SECLabels(pts, i, c); err != nil {
			t.Fatalf("observer %d: %v", i, err)
		}
	}
}

func TestViewsIndistinguishableNegative(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(1, 3)}
	if ViewsIndistinguishable(pts, 0, 1) {
		t.Error("asymmetric triangle robots should be distinguishable")
	}
	if !ViewsIndistinguishable(pts, 2, 2) {
		t.Error("a robot is always indistinguishable from itself")
	}
}
