package naming

import (
	"fmt"
	"math/rand"
	"testing"

	"waggle/internal/geom"
	"waggle/internal/sec"
)

func benchPoints(n int) []geom.Point {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return pts
}

func BenchmarkLexLabels(b *testing.B) {
	pts := benchPoints(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LexLabels(pts)
	}
}

func BenchmarkSECLabels(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := benchPoints(n)
			circle, err := sec.Enclosing(pts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SECLabels(pts, i%n, circle); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRotationalSymmetryOrder(b *testing.B) {
	pts := Fig3Configuration()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RotationalSymmetryOrder(pts)
	}
}
