package naming

import "waggle/internal/geom"

// Fig3Configuration returns the paper's Figure 3 scenario: six robots
// placed with 2-fold rotational symmetry about the origin, so that for
// every robot there is another robot with an identical view. In this
// configuration anonymous robots with chirality but without sense of
// direction cannot deterministically agree on a common direction or a
// common global naming — which is exactly why §3.4 builds a *relative*
// naming instead.
func Fig3Configuration() []geom.Point {
	half := []geom.Point{
		geom.Pt(3, 1),
		geom.Pt(1, 4),
		geom.Pt(-2, 2),
	}
	pts := make([]geom.Point, 0, 2*len(half))
	for _, p := range half {
		pts = append(pts, p)
	}
	for _, p := range half {
		pts = append(pts, geom.Pt(-p.X, -p.Y))
	}
	return pts
}
