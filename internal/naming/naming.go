// Package naming implements the recognition mechanisms the paper uses to
// address anonymous robots:
//
//   - LexLabels (§3.3): with sense of direction and chirality all robots
//     share the orientation of both axes, so ordering observed positions
//     lexicographically yields a total order every robot agrees on, even
//     though each robot has its own unit of measure.
//   - SECLabels (§3.4, Fig. 4): with chirality only, each robot r builds
//     a *relative* naming: compute the smallest enclosing circle (SEC)
//     of the configuration, take the "horizon" radius through r, and
//     number robots along radii in clockwise order starting from the
//     horizon, breaking ties on a radius by distance from the centre.
//     Every robot can also reconstruct every other robot's relative
//     naming, which is how bits get addressed.
//   - RotationalSymmetryOrder (Fig. 3): detects the rotationally
//     symmetric configurations in which anonymous robots without sense
//     of direction provably cannot agree on a global naming.
package naming

import (
	"errors"
	"math"
	"sort"

	"waggle/internal/geom"
)

// ErrObserverAtCenter is returned by SECLabels when the observer sits at
// the centre of the SEC: its horizon line is undefined. The paper's
// protocol implicitly assumes this does not happen; callers must handle
// it (e.g. by having that robot step off the centre first).
var ErrObserverAtCenter = errors.New("naming: observer at SEC centre has no horizon")

// ErrObserverOutOfRange is returned when the observer index is invalid.
var ErrObserverOutOfRange = errors.New("naming: observer index out of range")

// angleEps is the tolerance under which two polar angles are considered
// the same radius.
const angleEps = 1e-9

// LexLabels returns, for each point, its rank under the lexicographic
// order (x, then y). Because the order only compares coordinates along
// shared axis directions, it is invariant under the positive per-robot
// scale factors of the paper's model: every robot with sense of
// direction and chirality computes the same labelling.
func LexLabels(pts []geom.Point) []int {
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	labels := make([]int, len(pts))
	for rank, i := range idx {
		labels[i] = rank
	}
	return labels
}

// SECLabels returns the relative naming of the configuration with
// respect to pts[observer], as defined in §3.4: robots are numbered
// along SEC radii in clockwise order starting from the observer's
// horizon radius; robots sharing a radius are numbered outward from the
// centre. The returned slice maps point index -> label.
//
// The enclosing circle must be the SEC of pts (callers typically obtain
// it from package sec); it is passed in so a robot can compute the
// naming for every observer from a single SEC computation.
func SECLabels(pts []geom.Point, observer int, enclosing geom.Circle) ([]int, error) {
	if observer < 0 || observer >= len(pts) {
		return nil, ErrObserverOutOfRange
	}
	center := enclosing.Center
	horizon := pts[observer].Sub(center)
	if horizon.IsZero() {
		return nil, ErrObserverAtCenter
	}
	horizonAngle := horizon.Angle()

	type keyed struct {
		idx   int
		cw    float64 // clockwise angle from the horizon, in [0, 2*pi)
		rdist float64 // distance from the centre along the radius
	}
	ks := make([]keyed, len(pts))
	for i, p := range pts {
		v := p.Sub(center)
		var cw float64
		if v.IsZero() {
			// A robot exactly at the centre belongs to every radius; put it
			// first on the horizon radius (distance 0 sorts it before all).
			cw = 0
		} else {
			// Clockwise sweep: decreasing mathematical angle.
			cw = geom.NormalizeAngle(horizonAngle - v.Angle())
			if 2*math.Pi-cw < angleEps {
				cw = 0
			}
		}
		ks[i] = keyed{idx: i, cw: cw, rdist: v.Len()}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		if math.Abs(ks[a].cw-ks[b].cw) > angleEps {
			return ks[a].cw < ks[b].cw
		}
		return ks[a].rdist < ks[b].rdist
	})
	labels := make([]int, len(pts))
	for rank, k := range ks {
		labels[k.idx] = rank
	}
	return labels, nil
}

// RotationalSymmetryOrder returns the order of the rotational symmetry
// group of the point set about its centroid: the largest k such that a
// rotation by 2*pi/k maps the set onto itself. k == 1 means the set is
// asymmetric (a global naming is achievable); k > 1 certifies a Fig. 3
// situation in which anonymous robots without sense of direction cannot
// deterministically agree on a common naming.
func RotationalSymmetryOrder(pts []geom.Point) int {
	n := len(pts)
	if n <= 1 {
		return 1
	}
	center := geom.Centroid(pts)
	// Pick a reference point off-centre with maximal radius for numeric
	// stability.
	ref, refR := -1, 0.0
	for i, p := range pts {
		if r := p.Dist(center); r > refR {
			ref, refR = i, r
		}
	}
	if ref < 0 || refR <= geom.Eps {
		return 1 // all points coincide with the centroid (impossible for distinct points, n>1)
	}
	refAngle := pts[ref].Sub(center).Angle()
	count := 0
	tol := 1e-6 * (1 + refR)
	for _, q := range pts {
		// Candidate rotation mapping ref -> q: must preserve radius.
		if math.Abs(q.Dist(center)-refR) > tol {
			continue
		}
		theta := q.Sub(center).Angle() - refAngle
		if mapsOntoItself(pts, center, theta, tol) {
			count++
		}
	}
	if count < 1 {
		count = 1
	}
	return count
}

// mapsOntoItself reports whether rotating every point by theta about
// center permutes the point set.
func mapsOntoItself(pts []geom.Point, center geom.Point, theta, tol float64) bool {
	for _, p := range pts {
		rp := center.Add(p.Sub(center).Rotate(theta))
		found := false
		for _, q := range pts {
			if rp.Dist(q) <= tol {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ViewsIndistinguishable reports whether the two observer robots have
// identical views up to their local frames: there is a rotation about
// the configuration's centroid carrying one observer to the other while
// mapping the configuration onto itself. In such configurations no
// deterministic anonymous algorithm without sense of direction can make
// the two robots choose different roles (the Fig. 3 argument).
func ViewsIndistinguishable(pts []geom.Point, a, b int) bool {
	if a == b {
		return true
	}
	center := geom.Centroid(pts)
	va, vb := pts[a].Sub(center), pts[b].Sub(center)
	tol := 1e-6 * (1 + va.Len())
	if math.Abs(va.Len()-vb.Len()) > tol {
		return false
	}
	if va.IsZero() {
		return vb.IsZero()
	}
	theta := vb.Angle() - va.Angle()
	return mapsOntoItself(pts, center, theta, tol)
}
