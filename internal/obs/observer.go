package obs

// Observer bundles the metrics registry and the trace ring, with every
// metric the instrumented layers use pre-registered as a direct field —
// an instrumentation site pays one nil check and one atomic add, never
// a map lookup or an interface conversion.
//
// All methods tolerate a nil receiver, so call sites that hold an
// optional observer can use the helpers without their own guard; the
// hot paths in sim/core/fault still guard explicitly to skip argument
// evaluation entirely when disabled.
type Observer struct {
	reg  *Registry
	ring *Ring

	// sink, when set, sees every recorded event in addition to the
	// ring. Record may be called from engine worker goroutines, so the
	// sink must be safe for concurrent calls; the field itself may
	// only be set between steps (same discipline as World.SetObserver).
	sink EventSink

	// Sim is the step-engine instrumentation.
	Sim struct {
		// Steps counts completed instants; Activations counts robot
		// activations; ViewIndexViews counts local views built through
		// the per-step spatial grid (view-index hits).
		Steps, Activations, ViewIndexViews *Counter
		// Robots and Time are the swarm size and current instant.
		Robots, Time *Gauge
		// StepSeconds is the wall-clock step latency (volatile: excluded
		// from deterministic snapshots). ActivationsPerStep is the
		// activation-set size distribution.
		StepSeconds, ActivationsPerStep *Histogram
	}
	// Net is the movement-channel (Network) instrumentation.
	Net struct {
		// Sends counts queued movement-channel messages, Deliveries
		// decoded ones.
		Sends, Deliveries *Counter
	}
	// Radio is the wireless-substrate instrumentation.
	Radio struct {
		// Sends counts transmission attempts, Delivered successful ones,
		// BrokenDrops losses to a broken transmitter, JamDrops losses to
		// interference.
		Sends, Delivered, BrokenDrops, JamDrops *Counter
	}
	// Msgr is the self-healing BackupMessenger instrumentation.
	Msgr struct {
		ViaRadio, ViaMovement, Retries, Failovers, Failbacks, Expired, ImplicitAcks *Counter
		// PendingRetries and AwaitingAck are the current queue depths.
		PendingRetries, AwaitingAck *Gauge
	}
	// Fault counts injector firings by family.
	Fault struct {
		Crashes, Displacements, Noise, DropSights, MoveErrors, Outages, JamSets *Counter
	}
}

// stepSecondsBounds spans 1µs–1s: a two-robot step sits near the
// bottom, a 512-robot limited-visibility step near the middle.
var stepSecondsBounds = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1,
}

// activationsBounds covers the benchmark swarm sizes.
var activationsBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// New creates an observer with a trace ring of the given capacity
// (DefaultRingCapacity when 0 or negative).
func New(traceCapacity int) *Observer {
	r := NewRegistry()
	o := &Observer{reg: r, ring: NewRing(traceCapacity)}

	o.Sim.Steps = r.Counter("waggle_sim_steps_total", "Completed simulation instants.")
	o.Sim.Activations = r.Counter("waggle_sim_activations_total", "Robot activations across all instants.")
	o.Sim.ViewIndexViews = r.Counter("waggle_sim_viewindex_views_total", "Local views built through the per-step spatial grid.")
	o.Sim.Robots = r.Gauge("waggle_sim_robots", "Number of robots in the observed world.")
	o.Sim.Time = r.Gauge("waggle_sim_time", "Current simulated instant.")
	o.Sim.StepSeconds = r.Histogram("waggle_sim_step_seconds", "Wall-clock latency of one World.Step.", stepSecondsBounds, true)
	o.Sim.ActivationsPerStep = r.Histogram("waggle_sim_activations_per_step", "Activation-set size per instant.", activationsBounds, false)

	o.Net.Sends = r.Counter("waggle_net_sends_total", "Messages queued on the movement channel.")
	o.Net.Deliveries = r.Counter("waggle_net_deliveries_total", "Messages decoded and delivered over the movement channel.")

	o.Radio.Sends = r.Counter("waggle_radio_sends_total", "Radio transmission attempts.")
	o.Radio.Delivered = r.Counter("waggle_radio_delivered_total", "Radio transmissions delivered.")
	o.Radio.BrokenDrops = r.Counter("waggle_radio_broken_drops_total", "Radio transmissions lost to a broken transmitter.")
	o.Radio.JamDrops = r.Counter("waggle_radio_jam_drops_total", "Radio transmissions lost to jamming.")

	o.Msgr.ViaRadio = r.Counter("waggle_msgr_via_radio_total", "Messenger submissions delivered over the radio.")
	o.Msgr.ViaMovement = r.Counter("waggle_msgr_via_movement_total", "Messenger submissions diverted to the movement channel.")
	o.Msgr.Retries = r.Counter("waggle_msgr_retries_total", "Messenger radio re-attempts (initial sends excluded).")
	o.Msgr.Failovers = r.Counter("waggle_msgr_failovers_total", "Sender transitions radio->movement.")
	o.Msgr.Failbacks = r.Counter("waggle_msgr_failbacks_total", "Sender transitions movement->radio.")
	o.Msgr.Expired = r.Counter("waggle_msgr_expired_total", "Messages failed over because their deadline passed.")
	o.Msgr.ImplicitAcks = r.Counter("waggle_msgr_implicit_acks_total", "Failed-over messages confirmed by implicit acknowledgement (Lemma 4.1).")
	o.Msgr.PendingRetries = r.Gauge("waggle_msgr_pending_retries", "Messages currently in the radio retry queue.")
	o.Msgr.AwaitingAck = r.Gauge("waggle_msgr_awaiting_ack", "Failed-over messages awaiting implicit acknowledgement.")

	o.Fault.Crashes = r.Counter("waggle_fault_crash_total", "Robot-instants suppressed by crash-stop faults.")
	o.Fault.Displacements = r.Counter("waggle_fault_displace_total", "Transient displacement faults fired.")
	o.Fault.Noise = r.Counter("waggle_fault_noise_total", "Observation-noise perturbations applied (per observer-instant).")
	o.Fault.DropSights = r.Counter("waggle_fault_drop_sight_total", "Sightings dropped by observation faults.")
	o.Fault.MoveErrors = r.Counter("waggle_fault_move_error_total", "Movement truncation/overshoot faults applied.")
	o.Fault.Outages = r.Counter("waggle_fault_outage_total", "Radio outage windows opened by the injector.")
	o.Fault.JamSets = r.Counter("waggle_fault_jam_set_total", "Jamming-probability updates applied by the injector.")

	return o
}

// Registry returns the metrics registry (nil for a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// EventSink taps the event flow ahead of the ring's retention limit —
// the movement-stream writer uses it to persist fault events the ring
// may have already evicted by snapshot time. Implementations must be
// concurrency-safe: the parallel engine records perturbation events
// from worker goroutines.
type EventSink func(Event)

// SetEventSink attaches (or, with nil, detaches) the event tap. Safe
// between steps only; nil-observer safe.
func (o *Observer) SetEventSink(sink EventSink) {
	if o == nil {
		return
	}
	o.sink = sink
}

// Record appends a trace event; a nil observer drops it.
func (o *Observer) Record(e Event) {
	if o == nil {
		return
	}
	o.ring.Append(e)
	if o.sink != nil {
		o.sink(e)
	}
}

// TraceEvents returns the normalized retained trace (nil observer:
// nil). See Ring.Events for the determinism rules.
func (o *Observer) TraceEvents() []Event {
	if o == nil {
		return nil
	}
	return o.ring.Events()
}

// TraceDropped returns how many trace events the ring has overwritten.
func (o *Observer) TraceDropped() int64 {
	if o == nil {
		return 0
	}
	return o.ring.Dropped()
}

// TraceCapacity returns the ring's retention depth (nil observer: 0),
// so a checkpoint can rebuild an observer with an identical ring.
func (o *Observer) TraceCapacity() int {
	if o == nil {
		return 0
	}
	return o.ring.Capacity()
}
