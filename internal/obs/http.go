package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves an observer's live state:
//
//	/metrics       Prometheus text exposition (scrape target)
//	/metrics.json  JSON snapshot of every metric (no trace)
//	/trace         normalized trace events as JSON
//	/snapshot      full JSON snapshot, trace included
//	/debug/pprof/  the standard Go profiling endpoints
//	/              plain-text index of the above
//
// All reads are lock-free or briefly locked (the trace ring), so
// scraping a live run never blocks the simulation for long. The
// handler is safe to serve while the observed swarm is stepping.
func Handler(o *Observer) http.Handler { return Mux(o) }

// Mux builds the introspection routes on a fresh ServeMux the caller
// can extend with more routes before serving — the shared
// handler-builder behind every waggle CLI's "-listen" endpoint and the
// waggle-serve daemon (which mounts its /v1 session API on top).
func Mux(o *Observer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Registry().WriteMetrics(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Snapshot(false).WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s := Snapshot{Schema: SnapshotSchema, Trace: o.TraceEvents()}
		if s.Trace == nil {
			s.Trace = []Event{}
		}
		_ = s.WriteJSON(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Snapshot(true).WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("waggle introspection\n\n" +
			"/metrics       Prometheus text exposition\n" +
			"/metrics.json  JSON metric snapshot\n" +
			"/trace         normalized trace events (JSON)\n" +
			"/snapshot      full snapshot, trace included\n" +
			"/debug/pprof/  Go profiling endpoints\n"))
	})
	return mux
}
