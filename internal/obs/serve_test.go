package obs

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeHardenedAndGracefulStop pins the introspection server's
// hardening: it serves normally, a slowloris client (connects, sends
// nothing) is cut off by the header timeout instead of holding a
// connection forever, and stop shuts the listener down.
func TestServeHardenedAndGracefulStop(t *testing.T) {
	o := New(DefaultRingCapacity)
	addr, stop, err := Serve("127.0.0.1:0", Handler(o))
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d, err %v", resp.StatusCode, err)
	}
	if !strings.Contains(string(body), "waggle") {
		t.Fatalf("metrics body unexpectedly empty: %q", body)
	}

	// A connection that never sends a request header must be closed by
	// the server (ReadHeaderTimeout), not held open. Reading from it
	// eventually returns EOF / reset; it must not outlive the timeout by
	// much. We can't wait the full production timeout in a unit test, so
	// just pin that the deadline mechanism is wired at all by checking
	// the configured constant is finite and small.
	if ServeReadHeaderTimeout <= 0 || ServeReadHeaderTimeout > time.Minute {
		t.Fatalf("ReadHeaderTimeout %v is not a sane slowloris bound", ServeReadHeaderTimeout)
	}

	stop()
	if _, err := net.DialTimeout("tcp", addr.String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after stop")
	}
}
