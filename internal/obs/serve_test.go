package obs

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeHardenedAndGracefulStop pins the introspection server's
// hardening: it serves normally, a slowloris client (connects, sends
// nothing) is cut off by the header timeout instead of holding a
// connection forever, and stop shuts the listener down.
func TestServeHardenedAndGracefulStop(t *testing.T) {
	o := New(DefaultRingCapacity)
	addr, stop, err := Serve("127.0.0.1:0", Handler(o))
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d, err %v", resp.StatusCode, err)
	}
	if !strings.Contains(string(body), "waggle") {
		t.Fatalf("metrics body unexpectedly empty: %q", body)
	}

	// A connection that never sends a request header must be closed by
	// the server (ReadHeaderTimeout), not held open. Reading from it
	// eventually returns EOF / reset; it must not outlive the timeout by
	// much. We can't wait the full production timeout in a unit test, so
	// just pin that the deadline mechanism is wired at all by checking
	// the configured constant is finite and small.
	if ServeReadHeaderTimeout <= 0 || ServeReadHeaderTimeout > time.Minute {
		t.Fatalf("ReadHeaderTimeout %v is not a sane slowloris bound", ServeReadHeaderTimeout)
	}

	if err := stop(); err != nil {
		t.Fatalf("stop after idle server: %v", err)
	}
	if _, err := net.DialTimeout("tcp", addr.String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after stop")
	}
}

// TestServeWithOverrides pins that ServeOptions zero fields keep the
// hardened defaults while set fields override them, and that the
// returned stop function surfaces a clean shutdown as nil.
func TestServeWithOverrides(t *testing.T) {
	got := (ServeOptions{WriteTimeout: 90 * time.Second}).withDefaults()
	if got.WriteTimeout != 90*time.Second {
		t.Fatalf("override lost: %v", got.WriteTimeout)
	}
	if got.ReadHeaderTimeout != ServeReadHeaderTimeout || got.ReadTimeout != ServeReadTimeout ||
		got.IdleTimeout != ServeIdleTimeout || got.ShutdownGrace != ServeShutdownGrace {
		t.Fatalf("zero fields did not default: %+v", got)
	}

	o := New(DefaultRingCapacity)
	addr, stop, err := ServeWith("127.0.0.1:0", Handler(o), ServeOptions{WriteTimeout: 90 * time.Second})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics.json")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

// TestMuxExtensible pins that Mux returns a ServeMux callers can mount
// extra routes on without disturbing the introspection endpoints.
func TestMuxExtensible(t *testing.T) {
	o := New(DefaultRingCapacity)
	mux := Mux(o)
	mux.HandleFunc("GET /v1/ping", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("pong"))
	})
	addr, stop, err := Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer stop()
	for path, want := range map[string]string{"/v1/ping": "pong", "/metrics": "waggle"} {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), want) {
			t.Fatalf("%s: status %d body %q", path, resp.StatusCode, body)
		}
	}
}
