package obs

import (
	"fmt"
	"sort"
	"sync"
)

// EventKind is the type tag of a trace event.
type EventKind uint8

// Trace event kinds, one per instrumented simulated action.
const (
	// EvActivate: robot Robot was activated at instant T (recorded in
	// activation order on the stepping goroutine).
	EvActivate EventKind = iota
	// EvMove: robot Robot changed position at instant T; Val is the
	// world-space distance covered.
	EvMove
	// EvSend: a message was submitted on the movement channel
	// (Robot=sender, Peer=recipient, Val=payload bytes).
	EvSend
	// EvDeliver: a message was decoded and delivered (Robot=recipient,
	// Peer=sender, Val=payload bytes).
	EvDeliver
	// EvRetry: the self-healing messenger re-attempted a radio send
	// (Robot=sender, Peer=recipient).
	EvRetry
	// EvFailover: a sender's traffic switched radio→movement.
	EvFailover
	// EvFailback: a sender's traffic switched movement→radio.
	EvFailback
	// EvImplicitAck: a failed-over message was confirmed from observed
	// swarm motion (Lemma 4.1); Robot=sender, Peer=recipient.
	EvImplicitAck
	// EvExpired: a pending radio message hit its deadline and failed
	// over (Robot=sender, Peer=recipient).
	EvExpired
	// EvCrash: a crash-stopped robot was dropped from the activation
	// set at instant T.
	EvCrash
	// EvDisplace: robot Robot was teleported; Val is the displacement
	// length.
	EvDisplace
	// EvNoise: observation noise was applied to Robot's view.
	EvNoise
	// EvDropSight: Robot's sighting of Peer was dropped.
	EvDropSight
	// EvMoveError: Robot's move was scaled by Val (truncation or
	// overshoot).
	EvMoveError
	// EvOutageStart / EvOutageEnd: the injector broke / repaired
	// Robot's radio transmitter.
	EvOutageStart
	EvOutageEnd
	// EvJam: the injector set the radio jamming probability to Val
	// (Robot is -1: environment-wide).
	EvJam

	numEventKinds // sentinel
)

var eventKindNames = [numEventKinds]string{
	"activate", "move", "send", "deliver", "retry", "failover",
	"failback", "implicit-ack", "expired", "crash", "displace", "noise",
	"drop-sight", "move-error", "outage-start", "outage-end", "jam",
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// MarshalText implements encoding.TextMarshaler, so JSON carries the
// stable string form instead of the internal ordinal.
func (k EventKind) MarshalText() ([]byte, error) {
	if int(k) >= len(eventKindNames) {
		return nil, fmt.Errorf("obs: unknown event kind %d", int(k))
	}
	return []byte(eventKindNames[k]), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *EventKind) UnmarshalText(b []byte) error {
	for i, n := range eventKindNames {
		if n == string(b) {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", b)
}

// Event is one structured trace record. Events carry the simulated
// instant T, never a wall-clock timestamp — wall time differs between
// runs and engines, and the trace is compared in golden tests.
type Event struct {
	// T is the simulated instant the event belongs to.
	T int `json:"t"`
	// Kind tags the event (serialized as its string form).
	Kind EventKind `json:"kind"`
	// Robot is the primary robot index, or -1 for environment-wide
	// events (jamming).
	Robot int `json:"robot"`
	// Peer is the secondary robot index (recipient, dropped target), or
	// -1 when the event has none.
	Peer int `json:"peer"`
	// Val is the event's magnitude (distance, payload bytes, scale
	// factor, probability), 0 when the event has none.
	Val float64 `json:"val"`
}

// less is the canonical (T, Robot, Kind, Peer, Val) order trace
// snapshots are normalized to. Within one instant a robot's events are
// emitted concurrently under the parallel engine; sorting by this total
// order makes the snapshot engine-independent, because the *set* of
// events per instant is deterministic even when the emission order is
// not.
func (e Event) less(o Event) bool {
	if e.T != o.T {
		return e.T < o.T
	}
	if e.Robot != o.Robot {
		return e.Robot < o.Robot
	}
	if e.Kind != o.Kind {
		return e.Kind < o.Kind
	}
	if e.Peer != o.Peer {
		return e.Peer < o.Peer
	}
	return e.Val < o.Val
}

// SortEvents sorts events into the canonical (T, Robot, Kind, Peer,
// Val) trace order — the same normalization Ring.Events applies — so
// external consumers (the movement-stream writer batching one step's
// events) produce engine-independent output.
func SortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].less(evs[j]) })
}

// Ring is a bounded ring buffer of trace events: the newest capacity
// events are retained, older ones are overwritten. Appends take a
// mutex — events are emitted from worker goroutines under the parallel
// engine — and cost no allocation after construction.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int // total events ever appended
	dropped int64
}

// DefaultRingCapacity is the trace depth of an observer built with
// capacity 0.
const DefaultRingCapacity = 8192

// NewRing creates a ring retaining the newest capacity events
// (DefaultRingCapacity when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Append records one event, overwriting the oldest when full.
func (r *Ring) Append(e Event) {
	r.mu.Lock()
	r.buf[r.next%len(r.buf)] = e
	r.next++
	if r.next > len(r.buf) {
		r.dropped++
	}
	r.mu.Unlock()
}

// Capacity returns how many events the ring retains.
func (r *Ring) Capacity() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped returns how many events have been overwritten.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the retained events, normalized for deterministic
// comparison: sorted by (T, Robot, Kind, Peer, Val), and — when the
// ring has wrapped — with every event of the oldest retained instant
// discarded. Appends are monotone in T across instants, so a wrap
// evicts a prefix that can cut at most one instant in half; which of
// that instant's events survive depends on the engine's intra-step
// emission order, so the whole instant is dropped to keep the snapshot
// engine-independent.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	var out []Event
	wrapped := r.next > len(r.buf)
	if !wrapped {
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	r.mu.Unlock()
	if len(out) == 0 {
		return out
	}
	if wrapped {
		minT := out[0].T
		for _, e := range out[1:] {
			if e.T < minT {
				minT = e.T
			}
		}
		kept := out[:0]
		for _, e := range out {
			if e.T != minT {
				kept = append(kept, e)
			}
		}
		out = kept
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}
