package obs

import (
	"context"
	"net"
	"net/http"
	"time"
)

// Timeouts of the introspection server. The endpoint serves small,
// locally generated responses, so the limits are tight: a client that
// cannot send its request header within ReadHeaderTimeout is a
// slowloris, not a slow link.
const (
	ServeReadHeaderTimeout = 5 * time.Second
	ServeReadTimeout       = 10 * time.Second
	ServeWriteTimeout      = 10 * time.Second
	ServeIdleTimeout       = 60 * time.Second
	// ServeShutdownGrace bounds how long Stop waits for in-flight
	// requests before cutting them off.
	ServeShutdownGrace = 3 * time.Second
)

// Serve starts an HTTP introspection server for h on addr in the
// background and returns the bound address (so ":0" is usable in
// scripts and tests) and a stop function. The server is hardened
// against slow clients — header, read, write and idle timeouts are all
// set — and stop drains in-flight requests gracefully for up to
// ServeShutdownGrace before closing remaining connections.
func Serve(addr string, h http.Handler) (net.Addr, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: ServeReadHeaderTimeout,
		ReadTimeout:       ServeReadTimeout,
		WriteTimeout:      ServeWriteTimeout,
		IdleTimeout:       ServeIdleTimeout,
	}
	go func() { _ = srv.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), ServeShutdownGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			_ = srv.Close()
		}
	}
	return ln.Addr(), stop, nil
}
