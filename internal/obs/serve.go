package obs

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// Default timeouts of the introspection server. The endpoint serves
// small, locally generated responses, so the limits are tight: a client
// that cannot send its request header within ReadHeaderTimeout is a
// slowloris, not a slow link. Servers with slower endpoints (the
// waggle-serve long-poll observe) raise the write timeout through
// ServeOptions.
const (
	ServeReadHeaderTimeout = 5 * time.Second
	ServeReadTimeout       = 10 * time.Second
	ServeWriteTimeout      = 10 * time.Second
	ServeIdleTimeout       = 60 * time.Second
	// ServeShutdownGrace bounds how long stop waits for in-flight
	// requests before cutting them off.
	ServeShutdownGrace = 3 * time.Second
)

// ServeOptions overrides the hardened defaults of Serve. The zero value
// of every field means "use the default above", so callers only state
// what they need changed.
type ServeOptions struct {
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration
	// ShutdownGrace bounds the graceful drain the stop function
	// performs before forcing remaining connections closed.
	ShutdownGrace time.Duration
}

// withDefaults resolves zero fields to the package defaults.
func (o ServeOptions) withDefaults() ServeOptions {
	if o.ReadHeaderTimeout == 0 {
		o.ReadHeaderTimeout = ServeReadHeaderTimeout
	}
	if o.ReadTimeout == 0 {
		o.ReadTimeout = ServeReadTimeout
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = ServeWriteTimeout
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = ServeIdleTimeout
	}
	if o.ShutdownGrace == 0 {
		o.ShutdownGrace = ServeShutdownGrace
	}
	return o
}

// Serve starts an HTTP server for h on addr in the background with the
// default hardened timeouts and returns the bound address (so ":0" is
// usable in scripts and tests) and a stop function. Stop drains
// in-flight requests gracefully for up to ServeShutdownGrace, then
// closes remaining connections, and returns the shutdown error (nil
// after a clean drain).
func Serve(addr string, h http.Handler) (net.Addr, func() error, error) {
	return ServeWith(addr, h, ServeOptions{})
}

// ServeWith is Serve with explicit timeout overrides: zero fields keep
// the hardened defaults.
func ServeWith(addr string, h http.Handler, opts ServeOptions) (net.Addr, func() error, error) {
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: opts.ReadHeaderTimeout,
		ReadTimeout:       opts.ReadTimeout,
		WriteTimeout:      opts.WriteTimeout,
		IdleTimeout:       opts.IdleTimeout,
	}
	go func() { _ = srv.Serve(ln) }()
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), opts.ShutdownGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			_ = srv.Close()
			return fmt.Errorf("obs: server shutdown: %w", err)
		}
		return nil
	}
	return ln.Addr(), stop, nil
}

// StartIntrospection is the shared "-listen" wiring of the waggle CLIs:
// it serves h (typically Handler(o), or a mux built on Mux(o)) on addr
// with the hardened defaults and prints the resolved metrics URL to w,
// so ":0" is usable in scripts and tests. The returned stop function
// drains gracefully and surfaces the shutdown error.
func StartIntrospection(addr string, h http.Handler, w io.Writer) (func() error, error) {
	bound, stop, err := Serve(addr, h)
	if err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintf(w, "observability endpoint: http://%s/metrics\n", bound)
	}
	return stop, nil
}
