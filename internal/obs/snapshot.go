package obs

import (
	"encoding/json"
	"io"
)

// SnapshotSchema names the JSON snapshot's schema version; bump it on
// any incompatible field change so CI diffs fail loudly instead of
// silently comparing different shapes.
const SnapshotSchema = "waggle-obs/v1"

// CounterSnapshot is one counter's value at snapshot time.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's value at snapshot time.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnapshot is one histogram's full state at snapshot time.
// Counts are per-bucket (not cumulative); the last entry is the +Inf
// bucket.
type HistogramSnapshot struct {
	Name     string    `json:"name"`
	Volatile bool      `json:"volatile,omitempty"`
	Bounds   []float64 `json:"bounds"`
	Counts   []int64   `json:"counts"`
	Sum      float64   `json:"sum"`
	Count    int64     `json:"count"`
}

// Snapshot is a point-in-time copy of a registry (and optionally the
// trace ring), ordered by metric name — the schema-stable JSON form.
type Snapshot struct {
	Schema     string              `json:"schema"`
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
	Trace      []Event             `json:"trace,omitempty"`
}

// Snapshot copies every metric. A nil registry yields an empty (but
// schema-tagged) snapshot.
func (r *Registry) Snapshot() Snapshot { return r.snapshot(true) }

// DeterministicSnapshot copies every metric except the volatile
// (wall-clock-derived) histograms: the form that is identical for
// identical seeds under every engine mode, compared by the parity
// tests.
func (r *Registry) DeterministicSnapshot() Snapshot { return r.snapshot(false) }

func (r *Registry) snapshot(includeVolatile bool) Snapshot {
	s := Snapshot{
		Schema:     SnapshotSchema,
		Counters:   []CounterSnapshot{},
		Gauges:     []GaugeSnapshot{},
		Histograms: []HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	cs, gs, hs := r.sorted()
	for _, c := range cs {
		s.Counters = append(s.Counters, CounterSnapshot{Name: c.name, Value: c.Value()})
	}
	for _, g := range gs {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: g.name, Value: g.Value()})
	}
	for _, h := range hs {
		if h.volatile && !includeVolatile {
			continue
		}
		hist := HistogramSnapshot{
			Name:     h.name,
			Volatile: h.volatile,
			Bounds:   append([]float64(nil), h.bounds...),
			Counts:   make([]int64, len(h.counts)),
			Sum:      h.Sum(),
			Count:    h.Count(),
		}
		for i := range h.counts {
			hist.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hist)
	}
	return s
}

// Snapshot returns the observer's full snapshot, trace included when
// withTrace is set. A nil observer yields an empty snapshot.
func (o *Observer) Snapshot(withTrace bool) Snapshot {
	if o == nil {
		return (*Registry)(nil).Snapshot()
	}
	s := o.reg.Snapshot()
	if withTrace {
		s.Trace = o.TraceEvents()
	}
	return s
}

// DeterministicSnapshot returns the engine-independent snapshot: no
// volatile metrics, trace included.
func (o *Observer) DeterministicSnapshot() Snapshot {
	if o == nil {
		return (*Registry)(nil).Snapshot()
	}
	s := o.reg.DeterministicSnapshot()
	s.Trace = o.TraceEvents()
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// CounterValue returns the named counter's value in the snapshot (0,
// false when absent) — the rollup helper for harnesses that diff
// before/after snapshots.
func (s Snapshot) CounterValue(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}
