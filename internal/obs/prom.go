package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteMetrics writes the registry in the Prometheus text exposition
// format (version 0.0.4), metrics sorted by name. A nil registry
// writes nothing.
func (r *Registry) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	cs, gs, hs := r.sorted()
	for _, c := range cs {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.Value())
	}
	for _, g := range gs {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", g.name, g.help, g.name, g.name, formatFloat(g.Value()))
	}
	for _, h := range hs {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", h.name, formatFloat(b), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
		fmt.Fprintf(bw, "%s_sum %s\n%s_count %d\n", h.name, formatFloat(h.Sum()), h.name, h.Count())
	}
	return bw.Flush()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidateExposition checks that data is a well-formed Prometheus text
// exposition: every sample line parses as `name[{labels}] value`, every
// TYPE is known, every sample belongs to an announced family, histogram
// bucket counts are monotone in le, and each histogram carries _sum and
// _count. It returns the number of sample lines. It is the checker
// behind `make obs-check` and the endpoint tests — deliberately strict
// on what this package emits rather than a full scrape parser.
func ValidateExposition(data string) (samples int, err error) {
	types := map[string]string{} // family -> counter|gauge|histogram
	type histState struct {
		lastLE  float64
		lastCum int64
		buckets int
		sum     bool
		count   bool
	}
	hists := map[string]*histState{}
	for ln, line := range strings.Split(data, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return samples, fmt.Errorf("obs: line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return samples, fmt.Errorf("obs: line %d: malformed TYPE %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram":
				default:
					return samples, fmt.Errorf("obs: line %d: unknown type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return samples, fmt.Errorf("obs: line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = typ
				if typ == "histogram" {
					hists[name] = &histState{}
				}
			}
			continue
		}
		// Sample line: name[{labels}] value
		rest := line
		brace := strings.IndexByte(rest, '{')
		var name, labels string
		if brace >= 0 {
			close := strings.IndexByte(rest, '}')
			if close < brace {
				return samples, fmt.Errorf("obs: line %d: malformed labels %q", lineNo, line)
			}
			name, labels, rest = rest[:brace], rest[brace+1:close], strings.TrimSpace(rest[close+1:])
		} else {
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				return samples, fmt.Errorf("obs: line %d: malformed sample %q", lineNo, line)
			}
			name, rest = fields[0], fields[1]
		}
		if !metricName.MatchString(name) {
			return samples, fmt.Errorf("obs: line %d: invalid metric name %q", lineNo, name)
		}
		value, perr := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if perr != nil {
			return samples, fmt.Errorf("obs: line %d: unparseable value in %q: %v", lineNo, line, perr)
		}
		family := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, s) {
				if _, ok := types[strings.TrimSuffix(name, s)]; ok {
					family, suffix = strings.TrimSuffix(name, s), s
					break
				}
			}
		}
		typ, ok := types[family]
		if !ok {
			return samples, fmt.Errorf("obs: line %d: sample %q has no TYPE announcement", lineNo, name)
		}
		if typ == "histogram" {
			hs := hists[family]
			switch suffix {
			case "_bucket":
				le := strings.TrimPrefix(labels, "le=")
				le = strings.Trim(le, `"`)
				bound, berr := parseLE(le)
				if berr != nil {
					return samples, fmt.Errorf("obs: line %d: %v", lineNo, berr)
				}
				cum := int64(value)
				if hs.buckets > 0 && (bound <= hs.lastLE || cum < hs.lastCum) {
					return samples, fmt.Errorf("obs: line %d: non-monotone histogram %q", lineNo, family)
				}
				hs.lastLE, hs.lastCum = bound, cum
				hs.buckets++
			case "_sum":
				hs.sum = true
			case "_count":
				hs.count = true
			default:
				return samples, fmt.Errorf("obs: line %d: bare sample %q for histogram family", lineNo, name)
			}
		} else if suffix != "" {
			return samples, fmt.Errorf("obs: line %d: suffix sample %q for %s family", lineNo, name, typ)
		}
		samples++
	}
	for name, hs := range hists {
		if hs.buckets == 0 || !hs.sum || !hs.count {
			return samples, fmt.Errorf("obs: histogram %q missing buckets, _sum or _count", name)
		}
	}
	return samples, nil
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("unparseable le %q", s)
	}
	return v, nil
}
