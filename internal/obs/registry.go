// Package obs is the simulator's observability subsystem: an
// allocation-conscious metrics registry (atomic counters, gauges and
// fixed-bucket histograms, no external dependencies), a bounded
// structured trace recorder (trace.go), text/JSON exposition writers
// (prom.go, snapshot.go) and an opt-in net/http introspection endpoint
// (http.go).
//
// Instrumentation sites across sim, core, fault and sweep hold a plain
// `*obs.Observer` pointer and guard every record with a single nil
// check — a disabled observer costs one predictable branch per site and
// allocates nothing (see the root BenchmarkStepObserver).
//
// Determinism: every metric that counts simulated events (sends,
// retries, activations, fault firings, ...) is a pure function of the
// seeded execution, so identical seeds produce identical values under
// both the sequential and the parallel step engine — atomic counters
// commute, and histogram sums here add small exact integers. Metrics
// derived from wall-clock time (step latency) are registered as
// *volatile* and excluded from DeterministicSnapshot, the form the
// engine-parity tests compare.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// metricName is the Prometheus metric-name grammar.
var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (negative deltas are a programming error and are dropped:
// counters are monotone by contract).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a fixed-bucket cumulative histogram. Buckets are chosen
// at registration and never change, so Observe is two atomic adds plus
// a CAS loop for the floating-point sum — no allocation, safe under
// concurrent workers.
type Histogram struct {
	name, help string
	// volatile marks wall-clock-derived histograms, excluded from
	// DeterministicSnapshot (their content is timing, not execution).
	volatile bool
	// bounds are the inclusive bucket upper bounds, ascending; an
	// implicit +Inf bucket follows the last bound.
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (tens); linear scan beats binary search on such
	// short, cache-resident slices.
	k := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			k = i
			break
		}
	}
	h.counts[k].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Count returns the total number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Volatile reports whether the histogram holds wall-clock-derived data.
func (h *Histogram) Volatile() bool { return h.volatile }

// Registry holds a fixed set of metrics. Registration happens once at
// observer construction; reads and writes after that are lock-free.
type Registry struct {
	mu         sync.Mutex
	names      map[string]struct{}
	counters   []*Counter
	gauges     []*Gauge
	histograms []*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]struct{}{}}
}

func (r *Registry) claim(name string) {
	if !metricName.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.names[name] = struct{}{}
}

// Counter registers and returns a counter. Duplicate or invalid names
// panic: registration is wiring code, not input handling.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	c := &Counter{name: name, help: help}
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	g := &Gauge{name: name, help: help}
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram registers a histogram with the given ascending bucket upper
// bounds (an implicit +Inf bucket is appended). volatile marks
// wall-clock-derived histograms, excluded from DeterministicSnapshot.
func (r *Registry) Histogram(name, help string, bounds []float64, volatile bool) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		name: name, help: help, volatile: volatile,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.histograms = append(r.histograms, h)
	return h
}

// sorted returns the metric slices ordered by name (stable exposition
// order for both writers).
func (r *Registry) sorted() ([]*Counter, []*Gauge, []*Histogram) {
	r.mu.Lock()
	cs := append([]*Counter(nil), r.counters...)
	gs := append([]*Gauge(nil), r.gauges...)
	hs := append([]*Histogram(nil), r.histograms...)
	r.mu.Unlock()
	sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
	sort.Slice(gs, func(i, j int) bool { return gs[i].name < gs[j].name })
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	return cs, gs, hs
}
