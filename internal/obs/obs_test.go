package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	o := New(16)
	o.Sim.Steps.Add(3)
	o.Sim.Robots.Set(6)
	o.Sim.StepSeconds.Observe(0.0003)
	o.Sim.StepSeconds.Observe(2) // above the last bound: +Inf bucket
	o.Sim.ActivationsPerStep.Observe(6)
	o.Msgr.Retries.Inc()

	var buf bytes.Buffer
	if err := o.Registry().WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"waggle_sim_steps_total 3",
		"# TYPE waggle_sim_step_seconds histogram",
		`waggle_sim_step_seconds_bucket{le="+Inf"} 2`,
		"waggle_sim_step_seconds_count 2",
		"waggle_msgr_retries_total 1",
		"waggle_sim_robots 6",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if n, err := ValidateExposition(text); err != nil {
		t.Fatalf("exposition does not validate: %v", err)
	} else if n == 0 {
		t.Fatal("validator saw no samples")
	}
}

func TestValidateExpositionRejectsGarbage(t *testing.T) {
	for name, text := range map[string]string{
		"no type":        "some_metric 1\n",
		"bad value":      "# TYPE m counter\n# HELP m h\nm notanumber\n",
		"bad type":       "# TYPE m summary\nm 1\n",
		"shrinking hist": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_sum 1\nh_count 5\n",
		"missing sum":    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
	} {
		if _, err := ValidateExposition(text); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test", []float64{1, 10}, false)
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hs := s.Histograms[0]
	if want := []int64{2, 1, 1}; !reflect.DeepEqual(hs.Counts, want) {
		t.Errorf("bucket counts = %v, want %v", hs.Counts, want)
	}
	if hs.Count != 4 || hs.Sum != 106.5 {
		t.Errorf("count/sum = %d/%v, want 4/106.5", hs.Count, hs.Sum)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	o := New(8)
	o.Net.Sends.Add(2)
	o.Record(Event{T: 1, Kind: EvSend, Robot: 0, Peer: 1, Val: 5})
	o.Record(Event{T: 3, Kind: EvDeliver, Robot: 1, Peer: 0, Val: 5})

	var buf bytes.Buffer
	if err := o.Snapshot(true).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := back.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Errorf("snapshot does not round-trip:\n%s\nvs\n%s", buf.String(), again.String())
	}
	if back.Schema != SnapshotSchema {
		t.Errorf("schema = %q", back.Schema)
	}
	if len(back.Trace) != 2 || back.Trace[0].Kind != EvSend {
		t.Errorf("trace lost in round-trip: %+v", back.Trace)
	}
}

func TestDeterministicSnapshotExcludesVolatile(t *testing.T) {
	o := New(8)
	o.Sim.StepSeconds.Observe(0.1)
	o.Sim.ActivationsPerStep.Observe(4)
	det := o.DeterministicSnapshot()
	for _, h := range det.Histograms {
		if h.Volatile {
			t.Errorf("volatile histogram %q in deterministic snapshot", h.Name)
		}
	}
	full := o.Snapshot(false)
	if len(full.Histograms) != len(det.Histograms)+1 {
		t.Errorf("expected exactly one volatile histogram excluded: %d vs %d",
			len(full.Histograms), len(det.Histograms))
	}
}

func TestRingNormalization(t *testing.T) {
	r := NewRing(8)
	// Deliberately unsorted within an instant (parallel emission order).
	r.Append(Event{T: 2, Kind: EvNoise, Robot: 3})
	r.Append(Event{T: 2, Kind: EvNoise, Robot: 1})
	r.Append(Event{T: 2, Kind: EvActivate, Robot: 1})
	got := r.Events()
	want := []Event{
		{T: 2, Kind: EvActivate, Robot: 1},
		{T: 2, Kind: EvNoise, Robot: 1},
		{T: 2, Kind: EvNoise, Robot: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("normalized = %+v, want %+v", got, want)
	}
}

func TestRingWrapDropsOldestInstant(t *testing.T) {
	r := NewRing(4)
	for t0 := 0; t0 < 3; t0++ {
		r.Append(Event{T: t0, Kind: EvActivate, Robot: 0})
		r.Append(Event{T: t0, Kind: EvActivate, Robot: 1})
	}
	// Capacity 4, six appended: retained instants {1 (partial), 2}; the
	// partially-evicted instant 1 must be dropped entirely.
	got := r.Events()
	for _, e := range got {
		if e.T != 2 {
			t.Errorf("event from partially-evicted instant retained: %+v", e)
		}
	}
	if len(got) != 2 {
		t.Errorf("retained %d events, want 2: %+v", len(got), got)
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", r.Dropped())
	}
}

func TestEventKindJSON(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		var back EventKind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if back != k {
			t.Errorf("kind %v round-trips to %v", k, back)
		}
	}
}

func TestNilObserverIsInert(t *testing.T) {
	var o *Observer
	o.Record(Event{T: 1})
	if o.TraceEvents() != nil || o.TraceDropped() != 0 {
		t.Error("nil observer holds state")
	}
	if o.Registry() != nil {
		t.Error("nil observer has a registry")
	}
	s := o.Snapshot(true)
	if s.Schema != SnapshotSchema || len(s.Counters) != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
	var buf bytes.Buffer
	if err := (*Registry)(nil).WriteMetrics(&buf); err != nil || buf.Len() != 0 {
		t.Error("nil registry wrote something")
	}
}

func TestConcurrentObserves(t *testing.T) {
	o := New(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				o.Sim.Activations.Inc()
				o.Sim.ActivationsPerStep.Observe(float64(i % 7))
				o.Record(Event{T: i, Kind: EvActivate, Robot: w})
			}
		}(w)
	}
	wg.Wait()
	if v := o.Sim.Activations.Value(); v != 8000 {
		t.Errorf("activations = %d, want 8000", v)
	}
	if c := o.Sim.ActivationsPerStep.Count(); c != 8000 {
		t.Errorf("histogram count = %d, want 8000", c)
	}
	if s := o.Sim.ActivationsPerStep.Sum(); math.IsNaN(s) {
		t.Error("histogram sum corrupted")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	o := New(32)
	o.Sim.Steps.Inc()
	o.Msgr.Retries.Add(4)
	o.Sim.StepSeconds.Observe(0.002)
	o.Record(Event{T: 7, Kind: EvRetry, Robot: 0, Peer: 2})
	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metrics := get("/metrics")
	if _, err := ValidateExposition(metrics); err != nil {
		t.Errorf("/metrics invalid: %v", err)
	}
	for _, want := range []string{"waggle_sim_step_seconds_bucket", "waggle_msgr_retries_total 4"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Errorf("/metrics.json: %v", err)
	}
	var tr Snapshot
	if err := json.Unmarshal([]byte(get("/trace")), &tr); err != nil {
		t.Errorf("/trace: %v", err)
	} else if len(tr.Trace) != 1 || tr.Trace[0].Kind != EvRetry {
		t.Errorf("/trace = %+v", tr.Trace)
	}
	if !strings.Contains(get("/debug/pprof/cmdline"), "") {
		t.Error("pprof unreachable")
	}
	if !strings.Contains(get("/"), "/metrics") {
		t.Error("index missing endpoint list")
	}
}
