// Package encoding turns byte messages into the movement-signal
// alphabets the protocols transmit, and back:
//
//   - bit frames: a 16-bit big-endian length prefix followed by the
//     payload bits, MSB first. One bit per movement excursion is the
//     paper's base coding (§3.1, Fig. 1).
//   - amplitude levels (§3.1 remark): when a robot knows the other's
//     maximum step 2σ, it can subdivide the left/right travel into k
//     levels and send log2(k) bits per excursion.
//   - index codes (§5): with only k+1 movement segments available, the
//     recipient's index is transmitted as ⌈log_k n⌉ base-k symbols
//     preceding the message, trading slices for steps.
package encoding

import (
	"errors"
	"fmt"
	"math"
)

// MaxMessageLen is the largest message a frame can carry, bounded by the
// 16-bit length prefix.
const MaxMessageLen = 1<<16 - 1

// ErrMessageTooLong is returned when a message exceeds MaxMessageLen.
var ErrMessageTooLong = errors.New("encoding: message exceeds 65535 bytes")

// headerBits is the size of the length prefix.
const headerBits = 16

// BitsFromBytes expands bytes to bits, MSB first.
func BitsFromBytes(data []byte) []bool {
	out := make([]bool, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			out = append(out, b&(1<<uint(i)) != 0)
		}
	}
	return out
}

// BytesFromBits packs bits (MSB first) into bytes. The bit count must be
// a multiple of eight.
func BytesFromBits(bits []bool) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("encoding: %d bits is not a whole number of bytes", len(bits))
	}
	out := make([]byte, len(bits)/8)
	for i, bit := range bits {
		if bit {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out, nil
}

// EncodeFrame produces the bit stream for one message: 16-bit length
// prefix followed by the payload bits.
func EncodeFrame(msg []byte) ([]bool, error) {
	if len(msg) > MaxMessageLen {
		return nil, ErrMessageTooLong
	}
	header := []byte{byte(len(msg) >> 8), byte(len(msg))}
	bits := BitsFromBytes(header)
	return append(bits, BitsFromBytes(msg)...), nil
}

// FrameDecoder incrementally reassembles messages from a bit stream.
// Feed bits with Push; each completed message is returned exactly once.
type FrameDecoder struct {
	bits    []bool
	needLen int // payload length in bits, -1 while reading the header
}

// NewFrameDecoder returns an empty decoder.
func NewFrameDecoder() *FrameDecoder {
	return &FrameDecoder{needLen: -1}
}

// Push feeds one bit. When the bit completes a message, the message is
// returned with ok == true; otherwise ok is false.
func (d *FrameDecoder) Push(bit bool) (msg []byte, ok bool) {
	d.bits = append(d.bits, bit)
	if d.needLen < 0 {
		if len(d.bits) < headerBits {
			return nil, false
		}
		header, err := BytesFromBits(d.bits[:headerBits])
		if err != nil {
			// Unreachable: headerBits is a multiple of 8.
			return nil, false
		}
		d.needLen = (int(header[0])<<8 | int(header[1])) * 8
		d.bits = d.bits[:0]
		if d.needLen > 0 {
			return nil, false
		}
		// Zero-length message completes immediately.
		d.needLen = -1
		return []byte{}, true
	}
	if len(d.bits) < d.needLen {
		return nil, false
	}
	payload, err := BytesFromBits(d.bits)
	if err != nil {
		return nil, false // unreachable: needLen is a multiple of 8
	}
	d.bits = d.bits[:0]
	d.needLen = -1
	return payload, true
}

// Pending returns how many bits are buffered towards the next message.
func (d *FrameDecoder) Pending() int { return len(d.bits) }

// Levels is the §3.1 amplitude-level codec: the sender's left/right
// travel range [-1, 1] (normalised to the receiver-known maximum step)
// is split into K equal levels, each carrying log2(K) bits. K must be a
// power of two, at least 2, so level boundaries align with bit groups;
// K = 2 degenerates to the plain one-bit-per-move coding.
type Levels struct {
	k       int
	bitsPer int
}

// ErrBadLevelCount is returned when K is not a power of two >= 2.
var ErrBadLevelCount = errors.New("encoding: level count must be a power of two >= 2")

// NewLevels validates K and returns the codec.
func NewLevels(k int) (Levels, error) {
	if k < 2 || k&(k-1) != 0 {
		return Levels{}, ErrBadLevelCount
	}
	return Levels{k: k, bitsPer: int(math.Round(math.Log2(float64(k))))}, nil
}

// K returns the level count.
func (l Levels) K() int { return l.k }

// BitsPerSymbol returns log2(K).
func (l Levels) BitsPerSymbol() int { return l.bitsPer }

// Offset maps a symbol in [0, K) to its normalised displacement in
// [-1, 1] \ {0}: the centre of the symbol's level band. Level bands are
// arranged from -1 (symbol 0) to +1 (symbol K-1); because K is even, no
// band centre falls on zero, so every symbol is a visible move.
func (l Levels) Offset(symbol int) (float64, error) {
	if symbol < 0 || symbol >= l.k {
		return 0, fmt.Errorf("encoding: symbol %d out of range [0,%d)", symbol, l.k)
	}
	return -1 + 2*(float64(symbol)+0.5)/float64(l.k), nil
}

// Symbol maps an observed normalised displacement back to the nearest
// symbol.
func (l Levels) Symbol(offset float64) int {
	s := int(math.Floor((offset + 1) / 2 * float64(l.k)))
	if s < 0 {
		s = 0
	}
	if s >= l.k {
		s = l.k - 1
	}
	return s
}

// SymbolsFromBits groups a bit stream into symbols of BitsPerSymbol bits
// (MSB first), zero-padding the tail.
func (l Levels) SymbolsFromBits(bits []bool) []int {
	nSym := (len(bits) + l.bitsPer - 1) / l.bitsPer
	out := make([]int, 0, nSym)
	for i := 0; i < len(bits); i += l.bitsPer {
		s := 0
		for j := 0; j < l.bitsPer; j++ {
			s <<= 1
			if i+j < len(bits) && bits[i+j] {
				s |= 1
			}
		}
		out = append(out, s)
	}
	return out
}

// BitsFromSymbols expands symbols back into bits, BitsPerSymbol each.
// The caller (typically a FrameDecoder) discards any zero padding by
// stopping at frame completion.
func (l Levels) BitsFromSymbols(symbols []int) []bool {
	out := make([]bool, 0, len(symbols)*l.bitsPer)
	for _, s := range symbols {
		for j := l.bitsPer - 1; j >= 0; j-- {
			out = append(out, s&(1<<uint(j)) != 0)
		}
	}
	return out
}

// IndexCodeLen returns ⌈log_k n⌉, the number of base-k symbols needed to
// address one of n recipients (§5). n must be >= 1 and k >= 2.
func IndexCodeLen(n, k int) int {
	if n <= 1 {
		return 1
	}
	length := 0
	for v := n - 1; v > 0; v /= k {
		length++
	}
	return length
}

// EncodeIndex writes the recipient index as base-k symbols, most
// significant first, using exactly IndexCodeLen(n, k) symbols.
func EncodeIndex(index, n, k int) ([]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("encoding: base %d too small", k)
	}
	if index < 0 || index >= n {
		return nil, fmt.Errorf("encoding: index %d out of range [0,%d)", index, n)
	}
	length := IndexCodeLen(n, k)
	out := make([]int, length)
	v := index
	for i := length - 1; i >= 0; i-- {
		out[i] = v % k
		v /= k
	}
	return out, nil
}

// DecodeIndex reverses EncodeIndex.
func DecodeIndex(symbols []int, k int) (int, error) {
	if k < 2 {
		return 0, fmt.Errorf("encoding: base %d too small", k)
	}
	v := 0
	for _, s := range symbols {
		if s < 0 || s >= k {
			return 0, fmt.Errorf("encoding: symbol %d out of base-%d range", s, k)
		}
		v = v*k + s
	}
	return v, nil
}
