package encoding

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsBytesRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		give []byte
	}{
		{"empty", nil},
		{"single zero", []byte{0}},
		{"single 0xFF", []byte{0xFF}},
		{"ascii", []byte("HELLO")},
		{"binary", []byte{0x00, 0x01, 0x80, 0xAA, 0x55}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			bits := BitsFromBytes(tt.give)
			if len(bits) != len(tt.give)*8 {
				t.Fatalf("bit count = %d, want %d", len(bits), len(tt.give)*8)
			}
			back, err := BytesFromBits(bits)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, tt.give) {
				t.Errorf("round trip = %v, want %v", back, tt.give)
			}
		})
	}
}

func TestBitsMSBFirst(t *testing.T) {
	bits := BitsFromBytes([]byte{0x80})
	if !bits[0] {
		t.Error("0x80 must have its first bit set (MSB first)")
	}
	for _, b := range bits[1:] {
		if b {
			t.Error("0x80 must have only its first bit set")
		}
	}
}

func TestBytesFromBitsRejectsPartial(t *testing.T) {
	if _, err := BytesFromBits(make([]bool, 7)); err == nil {
		t.Error("7 bits should be rejected")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		msg  []byte
	}{
		{"empty message", []byte{}},
		{"one byte", []byte{0x42}},
		{"text", []byte("deaf dumb chatting")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			bits, err := EncodeFrame(tt.msg)
			if err != nil {
				t.Fatal(err)
			}
			d := NewFrameDecoder()
			var got []byte
			done := false
			for i, b := range bits {
				msg, ok := d.Push(b)
				if ok {
					if i != len(bits)-1 {
						t.Fatalf("frame completed early at bit %d of %d", i, len(bits))
					}
					got, done = msg, true
				}
			}
			if !done {
				t.Fatal("frame never completed")
			}
			if !bytes.Equal(got, tt.msg) {
				t.Errorf("decoded %q, want %q", got, tt.msg)
			}
		})
	}
}

func TestFrameDecoderBackToBack(t *testing.T) {
	msgs := [][]byte{[]byte("A"), []byte("BC"), {}, []byte("DEF")}
	var stream []bool
	for _, m := range msgs {
		bits, err := EncodeFrame(m)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, bits...)
	}
	d := NewFrameDecoder()
	var got [][]byte
	for _, b := range stream {
		if msg, ok := d.Push(b); ok {
			got = append(got, msg)
		}
	}
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Errorf("message %d = %q, want %q", i, got[i], msgs[i])
		}
	}
	if d.Pending() != 0 {
		t.Errorf("decoder has %d stray bits", d.Pending())
	}
}

func TestEncodeFrameTooLong(t *testing.T) {
	if _, err := EncodeFrame(make([]byte, MaxMessageLen+1)); !errors.Is(err, ErrMessageTooLong) {
		t.Errorf("err = %v, want ErrMessageTooLong", err)
	}
	if _, err := EncodeFrame(make([]byte, MaxMessageLen)); err != nil {
		t.Errorf("max-length message rejected: %v", err)
	}
}

// Property: any byte message survives the frame round trip.
func TestFramePropertyRoundTrip(t *testing.T) {
	f := func(msg []byte) bool {
		if len(msg) > MaxMessageLen {
			msg = msg[:MaxMessageLen]
		}
		bits, err := EncodeFrame(msg)
		if err != nil {
			return false
		}
		d := NewFrameDecoder()
		for i, b := range bits {
			got, ok := d.Push(b)
			if ok {
				return i == len(bits)-1 && bytes.Equal(got, msg)
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewLevelsValidation(t *testing.T) {
	for _, k := range []int{-1, 0, 1, 3, 6, 100} {
		if _, err := NewLevels(k); !errors.Is(err, ErrBadLevelCount) {
			t.Errorf("k=%d: err = %v, want ErrBadLevelCount", k, err)
		}
	}
	for _, k := range []int{2, 4, 8, 256} {
		l, err := NewLevels(k)
		if err != nil {
			t.Errorf("k=%d: %v", k, err)
			continue
		}
		if l.BitsPerSymbol() != int(math.Log2(float64(k))) {
			t.Errorf("k=%d: bits per symbol = %d", k, l.BitsPerSymbol())
		}
	}
}

func TestLevelsOffsets(t *testing.T) {
	l, err := NewLevels(2)
	if err != nil {
		t.Fatal(err)
	}
	o0, _ := l.Offset(0)
	o1, _ := l.Offset(1)
	if o0 != -0.5 || o1 != 0.5 {
		t.Errorf("binary offsets = %v, %v; want -0.5, 0.5", o0, o1)
	}
	if _, err := l.Offset(2); err == nil {
		t.Error("out-of-range symbol accepted")
	}
	if _, err := l.Offset(-1); err == nil {
		t.Error("negative symbol accepted")
	}
}

// Property: every symbol's offset decodes back to the symbol, offsets
// are strictly increasing, and none is zero (a zero offset would be an
// invisible move).
func TestLevelsPropertyRoundTrip(t *testing.T) {
	for _, k := range []int{2, 4, 8, 16, 64, 256} {
		l, err := NewLevels(k)
		if err != nil {
			t.Fatal(err)
		}
		prev := math.Inf(-1)
		for s := 0; s < k; s++ {
			off, err := l.Offset(s)
			if err != nil {
				t.Fatal(err)
			}
			if off <= prev {
				t.Fatalf("k=%d: offsets not increasing at symbol %d", k, s)
			}
			prev = off
			if math.Abs(off) < 1.0/float64(2*k) {
				t.Fatalf("k=%d symbol %d: offset %v too close to zero", k, s, off)
			}
			if got := l.Symbol(off); got != s {
				t.Fatalf("k=%d: Symbol(Offset(%d)) = %d", k, s, got)
			}
			// Decoding tolerates noise up to half a level width.
			noise := 0.9 / float64(k)
			if got := l.Symbol(off + noise*0.99/2); got != s {
				t.Fatalf("k=%d symbol %d: positive noise broke decoding", k, s)
			}
		}
	}
}

func TestSymbolBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{2, 4, 16} {
		l, err := NewLevels(k)
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, 1+rng.Intn(64))
		rng.Read(msg)
		frame, err := EncodeFrame(msg)
		if err != nil {
			t.Fatal(err)
		}
		symbols := l.SymbolsFromBits(frame)
		bits := l.BitsFromSymbols(symbols)
		if len(bits) < len(frame) {
			t.Fatalf("k=%d: lost bits: %d < %d", k, len(bits), len(frame))
		}
		d := NewFrameDecoder()
		var got []byte
		for _, b := range bits {
			if m, ok := d.Push(b); ok {
				got = m
				break
			}
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("k=%d: decoded %v, want %v", k, got, msg)
		}
	}
}

func TestIndexCodeLen(t *testing.T) {
	tests := []struct {
		n, k, want int
	}{
		{1, 2, 1},
		{2, 2, 1},
		{3, 2, 2},
		{8, 2, 3},
		{9, 2, 4},
		{16, 4, 2},
		{17, 4, 3},
		{1000, 10, 3},
	}
	for _, tt := range tests {
		if got := IndexCodeLen(tt.n, tt.k); got != tt.want {
			t.Errorf("IndexCodeLen(%d, %d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

// Property: every index of every swarm size round-trips at every base.
func TestIndexCodePropertyRoundTrip(t *testing.T) {
	for _, k := range []int{2, 3, 5, 16} {
		for _, n := range []int{1, 2, 7, 64, 100} {
			wantLen := IndexCodeLen(n, k)
			for idx := 0; idx < n; idx++ {
				syms, err := EncodeIndex(idx, n, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(syms) != wantLen {
					t.Fatalf("n=%d k=%d idx=%d: %d symbols, want %d", n, k, idx, len(syms), wantLen)
				}
				got, err := DecodeIndex(syms, k)
				if err != nil {
					t.Fatal(err)
				}
				if got != idx {
					t.Fatalf("n=%d k=%d: round trip %d -> %d", n, k, idx, got)
				}
			}
		}
	}
}

func TestIndexCodeErrors(t *testing.T) {
	if _, err := EncodeIndex(0, 4, 1); err == nil {
		t.Error("base 1 accepted")
	}
	if _, err := EncodeIndex(4, 4, 2); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := EncodeIndex(-1, 4, 2); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := DecodeIndex([]int{2}, 2); err == nil {
		t.Error("out-of-base symbol accepted")
	}
	if _, err := DecodeIndex([]int{0}, 0); err == nil {
		t.Error("base 0 accepted")
	}
}
