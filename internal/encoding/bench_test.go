package encoding

import (
	"bytes"
	"testing"
)

func BenchmarkEncodeFrame(b *testing.B) {
	msg := bytes.Repeat([]byte{0xA5}, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeFrame(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameDecoder(b *testing.B) {
	msg := bytes.Repeat([]byte{0xA5}, 64)
	frame, err := EncodeFrame(msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewFrameDecoder()
		for _, bit := range frame {
			d.Push(bit)
		}
	}
}
