package workload

import (
	"testing"
)

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"n too small", Config{Pattern: Ring, N: 1, Messages: 1}},
		{"no messages", Config{Pattern: Ring, N: 3}},
		{"negative payload", Config{Pattern: Ring, N: 3, Messages: 1, PayloadLen: -1}},
		{"unknown pattern", Config{Pattern: Pattern(99), N: 3, Messages: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Generate(tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestRing(t *testing.T) {
	msgs, err := Generate(Config{Pattern: Ring, N: 3, Messages: 6, PayloadLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 6 {
		t.Fatalf("got %d messages", len(msgs))
	}
	for i, m := range msgs {
		if m.From != i%3 || m.To != (i+1)%3 {
			t.Errorf("message %d: %d -> %d", i, m.From, m.To)
		}
		if len(m.Payload) != 2 {
			t.Errorf("message %d payload len %d", i, len(m.Payload))
		}
	}
}

func TestHotspot(t *testing.T) {
	msgs, err := Generate(Config{Pattern: Hotspot, N: 4, Messages: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range msgs {
		if m.To != 0 {
			t.Errorf("message %d addressed to %d, want 0", i, m.To)
		}
		if m.From == 0 {
			t.Errorf("message %d sent by the sink", i)
		}
	}
}

func TestAllToAll(t *testing.T) {
	msgs, err := Generate(Config{Pattern: AllToAll, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 12 {
		t.Fatalf("got %d messages, want 12", len(msgs))
	}
	seen := map[[2]int]bool{}
	for _, m := range msgs {
		if m.From == m.To {
			t.Errorf("self message %d -> %d", m.From, m.To)
		}
		key := [2]int{m.From, m.To}
		if seen[key] {
			t.Errorf("duplicate pair %v", key)
		}
		seen[key] = true
	}
}

func TestRandomPairsNoSelfSend(t *testing.T) {
	msgs, err := Generate(Config{Pattern: RandomPairs, N: 5, Messages: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, m := range msgs {
		if m.From == m.To {
			t.Fatal("self send generated")
		}
		if m.From < 0 || m.From >= 5 || m.To < 0 || m.To >= 5 {
			t.Fatalf("out of range pair %d -> %d", m.From, m.To)
		}
		counts[m.From]++
	}
	// Rough uniformity: every robot sends something.
	for i := 0; i < 5; i++ {
		if counts[i] == 0 {
			t.Errorf("robot %d never sends in 500 draws", i)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, err := Generate(Config{Pattern: RandomPairs, N: 4, Messages: 20, PayloadLen: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Pattern: RandomPairs, N: 4, Messages: 20, PayloadLen: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].From != b[i].From || a[i].To != b[i].To || string(a[i].Payload) != string(b[i].Payload) {
			t.Fatalf("message %d diverged", i)
		}
	}
}

func TestTotalBits(t *testing.T) {
	msgs := []Message{
		{Payload: make([]byte, 1)},
		{Payload: make([]byte, 4)},
		{Payload: nil},
	}
	if got := TotalBits(msgs); got != 16+8+16+32+16 {
		t.Errorf("TotalBits = %d, want 88", got)
	}
}

func TestPatternStrings(t *testing.T) {
	for p, want := range map[Pattern]string{
		Ring: "ring", Hotspot: "hotspot", AllToAll: "all-to-all", RandomPairs: "random-pairs",
	} {
		if p.String() != want {
			t.Errorf("String(%d) = %q", int(p), p.String())
		}
		got, err := ParsePattern(want)
		if err != nil || got != p {
			t.Errorf("ParsePattern(%q) = %v, %v", want, got, err)
		}
	}
	if _, err := ParsePattern("nope"); err == nil {
		t.Error("bad pattern parsed")
	}
}
