// Package workload generates message traffic patterns for the
// throughput experiments and benchmarks: who talks to whom, how much,
// with reproducible randomness.
package workload

import (
	"fmt"
	"math/rand"
)

// Pattern is a traffic shape.
type Pattern int

// Traffic patterns.
const (
	// Ring sends messages around a ring: i -> (i+1) mod n.
	Ring Pattern = iota + 1
	// Hotspot directs all traffic at robot 0 (a sink collecting
	// reports).
	Hotspot
	// AllToAll has every robot message every other robot.
	AllToAll
	// RandomPairs draws independent (sender, recipient) pairs.
	RandomPairs
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Ring:
		return "ring"
	case Hotspot:
		return "hotspot"
	case AllToAll:
		return "all-to-all"
	case RandomPairs:
		return "random-pairs"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// ParsePattern parses a pattern name.
func ParsePattern(s string) (Pattern, error) {
	switch s {
	case "ring":
		return Ring, nil
	case "hotspot":
		return Hotspot, nil
	case "all-to-all", "alltoall":
		return AllToAll, nil
	case "random-pairs", "random":
		return RandomPairs, nil
	default:
		return 0, fmt.Errorf("workload: unknown pattern %q", s)
	}
}

// Message is one unit of traffic.
type Message struct {
	From, To int
	Payload  []byte
}

// Config parameterises a workload.
type Config struct {
	// Pattern selects the traffic shape.
	Pattern Pattern
	// N is the swarm size (>= 2).
	N int
	// Messages is the total message count; AllToAll ignores it and
	// produces exactly N*(N-1) messages.
	Messages int
	// PayloadLen is the payload size in bytes (>= 0).
	PayloadLen int
	// Seed drives the payload bytes and the RandomPairs draws.
	Seed int64
}

// Generate produces the workload's message list.
func Generate(cfg Config) ([]Message, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("workload: n = %d, need >= 2", cfg.N)
	}
	if cfg.PayloadLen < 0 {
		return nil, fmt.Errorf("workload: negative payload length %d", cfg.PayloadLen)
	}
	if cfg.Pattern != AllToAll && cfg.Messages <= 0 {
		return nil, fmt.Errorf("workload: message count %d, need > 0", cfg.Messages)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	payload := func() []byte {
		b := make([]byte, cfg.PayloadLen)
		rng.Read(b)
		return b
	}
	var out []Message
	switch cfg.Pattern {
	case Ring:
		for m := 0; m < cfg.Messages; m++ {
			from := m % cfg.N
			out = append(out, Message{From: from, To: (from + 1) % cfg.N, Payload: payload()})
		}
	case Hotspot:
		for m := 0; m < cfg.Messages; m++ {
			from := 1 + m%(cfg.N-1)
			out = append(out, Message{From: from, To: 0, Payload: payload()})
		}
	case AllToAll:
		for from := 0; from < cfg.N; from++ {
			for to := 0; to < cfg.N; to++ {
				if from != to {
					out = append(out, Message{From: from, To: to, Payload: payload()})
				}
			}
		}
	case RandomPairs:
		for m := 0; m < cfg.Messages; m++ {
			from := rng.Intn(cfg.N)
			to := rng.Intn(cfg.N - 1)
			if to >= from {
				to++
			}
			out = append(out, Message{From: from, To: to, Payload: payload()})
		}
	default:
		return nil, fmt.Errorf("workload: unknown pattern %v", cfg.Pattern)
	}
	return out, nil
}

// TotalBits returns the number of frame bits the workload occupies on
// the movement channel (16-bit header per message plus the payloads).
func TotalBits(msgs []Message) int {
	bits := 0
	for _, m := range msgs {
		bits += 16 + 8*len(m.Payload)
	}
	return bits
}
