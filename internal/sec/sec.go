// Package sec computes the smallest enclosing circle (SEC) of a planar
// point set.
//
// The paper's anonymous-naming protocol (§3.4) has every robot compute
// the SEC of the observed configuration; the SEC is unique, so all robots
// agree on its centre O, and with chirality they agree on a clockwise
// sweep around it. The paper cites Megiddo's deterministic linear-time
// algorithm; this package implements Welzl's move-to-front algorithm,
// which computes the identical circle in expected linear time (the
// substitution is recorded in DESIGN.md §3).
package sec

import (
	"errors"
	"math/rand"

	"waggle/internal/geom"
)

// ErrNoPoints is returned when the point set is empty.
var ErrNoPoints = errors.New("sec: empty point set")

// Enclosing returns the unique smallest circle containing all points.
// Degenerate inputs are handled: one point yields a zero-radius circle
// and two points yield their diameter circle.
//
// The computation is deterministic: the internal shuffle uses a fixed
// seed, so every robot computing the SEC of the same configuration gets
// bit-identical output — mirroring the paper's requirement that all
// robots agree on SEC exactly.
func Enclosing(points []geom.Point) (geom.Circle, error) {
	n := len(points)
	if n == 0 {
		return geom.Circle{}, ErrNoPoints
	}
	pts := make([]geom.Point, n)
	copy(pts, points)
	// Fixed-seed shuffle: Welzl's expected-linear bound needs a random
	// permutation, determinism needs a fixed seed.
	rng := rand.New(rand.NewSource(0x5EC))
	rng.Shuffle(n, func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })

	c := geom.Circle{Center: pts[0], R: 0}
	for i := 1; i < n; i++ {
		if c.Contains(pts[i]) {
			continue
		}
		c = circleWithOneBoundary(pts[:i], pts[i])
	}
	return c, nil
}

// circleWithOneBoundary returns the SEC of pts ∪ {p} with p on the
// boundary.
func circleWithOneBoundary(pts []geom.Point, p geom.Point) geom.Circle {
	c := geom.Circle{Center: p, R: 0}
	for i, q := range pts {
		if c.Contains(q) {
			continue
		}
		c = circleWithTwoBoundary(pts[:i], p, q)
	}
	return c
}

// circleWithTwoBoundary returns the SEC of pts ∪ {p, q} with p and q on
// the boundary.
func circleWithTwoBoundary(pts []geom.Point, p, q geom.Point) geom.Circle {
	c := geom.CircleFrom2(p, q)
	for _, r := range pts {
		if c.Contains(r) {
			continue
		}
		if cc, ok := geom.CircleFrom3(p, q, r); ok {
			c = cc
		}
	}
	return c
}

// Support returns the points of pts lying on the boundary of the circle
// (within tolerance). For the SEC these are the support points; there
// are always between one and len(pts) of them, and at most three
// determine the circle.
func Support(pts []geom.Point, c geom.Circle) []geom.Point {
	var out []geom.Point
	for _, p := range pts {
		if c.OnBoundary(p) {
			out = append(out, p)
		}
	}
	return out
}
