package sec

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"waggle/internal/geom"
)

func TestEnclosingErrors(t *testing.T) {
	if _, err := Enclosing(nil); !errors.Is(err, ErrNoPoints) {
		t.Errorf("err = %v, want ErrNoPoints", err)
	}
}

func TestEnclosingDegenerate(t *testing.T) {
	c, err := Enclosing([]geom.Point{geom.Pt(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Center.Eq(geom.Pt(3, 4)) || c.R > geom.Eps {
		t.Errorf("single point SEC = %+v, want zero circle at point", c)
	}

	c, err = Enclosing([]geom.Point{geom.Pt(0, 0), geom.Pt(4, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Center.Eq(geom.Pt(2, 0)) || !geom.ApproxEq(c.R, 2) {
		t.Errorf("two point SEC = %+v, want center (2,0) r=2", c)
	}
}

func TestEnclosingKnownSets(t *testing.T) {
	tests := []struct {
		name       string
		pts        []geom.Point
		wantCenter geom.Point
		wantR      float64
	}{
		{
			name:       "equilateral-ish triangle on unit circle",
			pts:        []geom.Point{geom.Pt(1, 0), geom.Pt(-0.5, math.Sqrt(3)/2), geom.Pt(-0.5, -math.Sqrt(3)/2)},
			wantCenter: geom.Pt(0, 0),
			wantR:      1,
		},
		{
			name:       "obtuse triangle (diameter pair dominates)",
			pts:        []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 1)},
			wantCenter: geom.Pt(5, 0),
			wantR:      5,
		},
		{
			name: "square with interior points",
			pts: []geom.Point{
				geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(2, 2), geom.Pt(0, 2),
				geom.Pt(1, 1), geom.Pt(0.5, 1.5),
			},
			wantCenter: geom.Pt(1, 1),
			wantR:      math.Sqrt2,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, err := Enclosing(tt.pts)
			if err != nil {
				t.Fatal(err)
			}
			if !c.Center.Eq(tt.wantCenter) {
				t.Errorf("center = %v, want %v", c.Center, tt.wantCenter)
			}
			if !geom.ApproxEq(c.R, tt.wantR) {
				t.Errorf("R = %v, want %v", c.R, tt.wantR)
			}
		})
	}
}

func TestEnclosingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]geom.Point, 40)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	a, err := Enclosing(pts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Enclosing(pts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("SEC not deterministic: %+v vs %+v", a, b)
	}
	// Input order must not matter either (uniqueness of the SEC).
	rev := make([]geom.Point, len(pts))
	for i, p := range pts {
		rev[len(pts)-1-i] = p
	}
	c, err := Enclosing(rev)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Center.Eq(a.Center) || !geom.ApproxEq(c.R, a.R) {
		t.Errorf("SEC depends on input order: %+v vs %+v", a, c)
	}
}

// Property: the SEC contains every input point, and it is minimal in the
// sense that (a) at least two input points lie on its boundary (for
// n >= 2 non-coincident points) and (b) shrinking the radius by 0.1%
// excludes some point.
func TestEnclosingPropertyContainsAndMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(60)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*1000-500, rng.Float64()*1000-500)
		}
		c, err := Enclosing(pts)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if !c.Contains(p) {
				t.Fatalf("trial %d: point %v outside SEC %+v", trial, p, c)
			}
		}
		support := Support(pts, c)
		if len(support) < 2 {
			t.Fatalf("trial %d: SEC has %d support points, want >= 2", trial, len(support))
		}
		shrunk := geom.Circle{Center: c.Center, R: c.R * 0.999}
		excluded := false
		for _, p := range pts {
			if !shrunk.Contains(p) {
				excluded = true
				break
			}
		}
		if !excluded {
			t.Fatalf("trial %d: SEC radius %v not minimal", trial, c.R)
		}
	}
}

// Property: SEC is invariant under rigid motion — translating and
// rotating the input translates/rotates the circle.
func TestEnclosingPropertyRigidMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(20)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		theta := rng.Float64() * 2 * math.Pi
		shift := geom.V(rng.Float64()*50, rng.Float64()*50)
		moved := make([]geom.Point, n)
		for i, p := range pts {
			moved[i] = geom.Point{}.Add(p.Sub(geom.Point{}).Rotate(theta)).Add(shift)
		}
		a, err := Enclosing(pts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Enclosing(moved)
		if err != nil {
			t.Fatal(err)
		}
		wantCenter := geom.Point{}.Add(a.Center.Sub(geom.Point{}).Rotate(theta)).Add(shift)
		if b.Center.Dist(wantCenter) > 1e-6*(1+a.R) {
			t.Fatalf("trial %d: center moved to %v, want %v", trial, b.Center, wantCenter)
		}
		if math.Abs(a.R-b.R) > 1e-6*(1+a.R) {
			t.Fatalf("trial %d: radius changed %v -> %v", trial, a.R, b.R)
		}
	}
}

func TestSupport(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 0), geom.Pt(-1, 0), geom.Pt(0, 0.5)}
	c := geom.Circle{Center: geom.Pt(0, 0), R: 1}
	s := Support(pts, c)
	if len(s) != 2 {
		t.Fatalf("support count = %d, want 2", len(s))
	}
}

func BenchmarkEnclosing(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 256)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enclosing(pts); err != nil {
			b.Fatal(err)
		}
	}
}
