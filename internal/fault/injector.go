package fault

import (
	"fmt"

	"waggle/internal/geom"
	"waggle/internal/obs"
	"waggle/internal/sim"
)

// RadioControl is the slice of a radio the injector drives for
// RadioOutage and JamRamp events. Both core.Radio and the public
// waggle.Radio implement it.
type RadioControl interface {
	Break(i int) error
	Repair(i int) error
	SetJamming(p float64) error
}

// Injector compiles a Plan into the simulator's fault hooks. Attach it
// with World.SetInjector; radio events additionally need AttachRadio.
//
// The injector owns the fault state of whatever the plan names: robots
// listed in RadioOutage events are broken and repaired by the injector
// (manual Break calls on them will be overridden at window edges), and
// JamRamp windows overwrite the jamming probability.
type Injector struct {
	plan Plan
	n    int
	seed int64

	radio RadioControl

	crashed []bool
	// prevOutage and prevJam track the injector's own last-applied radio
	// state so Break/Repair/SetJamming fire only at window transitions,
	// leaving manual radio control outside the plan's windows alone.
	prevOutage []bool
	prevJam    bool

	// dropMask holds one full-visibility mask per robot for DropSight
	// perturbations of views that had no Visible slice of their own.
	// Each robot owns exactly one mask, so concurrent PerturbView calls
	// never share one.
	dropMask [][]bool

	// obs is the optional observability hook. PerturbView runs
	// concurrently under the parallel engine, so its sites touch only
	// atomic counters and the mutex-guarded trace ring.
	obs *obs.Observer
}

var _ sim.Injector = (*Injector)(nil)

// NewInjector validates the plan against a system of n robots and
// compiles it. The seed drives every randomized perturbation; equal
// (plan, n, seed) triples produce byte-identical fault schedules.
func NewInjector(plan Plan, n int, seed int64) (*Injector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fault: injector for %d robots", n)
	}
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	inj := &Injector{
		plan:       plan,
		n:          n,
		seed:       seed,
		crashed:    make([]bool, n),
		prevOutage: make([]bool, n),
		dropMask:   make([][]bool, n),
	}
	for i := range inj.dropMask {
		inj.dropMask[i] = make([]bool, n)
	}
	return inj, nil
}

// AttachRadio couples the radio the plan's RadioOutage/JamRamp events
// drive. Returns an error if the plan has radio events and r is nil.
func (inj *Injector) AttachRadio(r RadioControl) error {
	if r == nil && inj.plan.NeedsRadio() {
		return fmt.Errorf("fault: plan schedules radio events but no radio is attached")
	}
	inj.radio = r
	return nil
}

// Plan returns the compiled plan.
func (inj *Injector) Plan() Plan { return inj.plan }

// SetObserver attaches (or, with nil, detaches) the observability hook.
func (inj *Injector) SetObserver(o *obs.Observer) { inj.obs = o }

// Observer returns the attached observer, or nil.
func (inj *Injector) Observer() *obs.Observer { return inj.obs }

// WindowState reports the injector's last-applied radio window state —
// which robots it currently holds broken and whether a jam window was
// active — for checkpoint capture. The outage slice is a copy. Restoring
// this state lets the injector's edge-triggered Break/Repair/SetJamming
// logic resume mid-window without re-firing transitions.
func (inj *Injector) WindowState() (outage []bool, jam bool) {
	return append([]bool(nil), inj.prevOutage...), inj.prevJam
}

// RestoreWindowState reinstates a previously captured radio window
// state. A nil outage slice leaves all robots unbroken; a wrong-length
// slice is an error.
func (inj *Injector) RestoreWindowState(outage []bool, jam bool) error {
	if outage != nil && len(outage) != inj.n {
		return fmt.Errorf("fault: window state for %d robots, injector has %d", len(outage), inj.n)
	}
	for i := range inj.prevOutage {
		inj.prevOutage[i] = false
	}
	copy(inj.prevOutage, outage)
	inj.prevJam = jam
	return nil
}

// Crashed reports whether robot i is crash-stopped at instant t.
func (inj *Injector) Crashed(t, i int) bool {
	for _, e := range inj.plan.Events {
		if e.Kind == Crash && e.active(t) && e.hits(i) {
			return true
		}
	}
	return false
}

// BeginStep implements sim.Injector: displacements, crash bookkeeping,
// and the coupled radio's window transitions.
func (inj *Injector) BeginStep(t int, w *sim.World) {
	for i := range inj.crashed {
		inj.crashed[i] = false
	}
	jam, jamActive := 0.0, false
	for _, e := range inj.plan.Events {
		switch e.Kind {
		case Displace:
			if t == e.At {
				inj.forEachTarget(func(i int) {
					// Teleport validates the index; plan validation
					// already guaranteed it.
					_ = w.Teleport(i, w.Position(i).Add(e.Delta))
					if o := inj.obs; o != nil {
						o.Fault.Displacements.Inc()
						o.Record(obs.Event{T: t, Kind: obs.EvDisplace, Robot: i, Peer: -1, Val: e.Delta.Len()})
					}
				}, e)
			}
		case Crash:
			if e.active(t) {
				inj.forEachTarget(func(i int) { inj.crashed[i] = true }, e)
			}
		case JamRamp:
			if e.active(t) {
				jamActive = true
				span := e.Until - 1 - e.At
				frac := 1.0
				if span > 0 {
					frac = float64(t-e.At) / float64(span)
				}
				jam = e.Min + (e.Max-e.Min)*frac
			}
		}
	}
	if inj.radio == nil {
		return
	}
	// Outage windows: fire Break/Repair only on transitions so manual
	// radio control outside the plan's windows is left alone.
	for i := 0; i < inj.n; i++ {
		want := false
		for _, e := range inj.plan.Events {
			if e.Kind == RadioOutage && e.active(t) && e.hits(i) {
				want = true
				break
			}
		}
		if want && !inj.prevOutage[i] {
			_ = inj.radio.Break(i)
			if o := inj.obs; o != nil {
				o.Fault.Outages.Inc()
				o.Record(obs.Event{T: t, Kind: obs.EvOutageStart, Robot: i, Peer: -1})
			}
		}
		if !want && inj.prevOutage[i] {
			_ = inj.radio.Repair(i)
			if o := inj.obs; o != nil {
				o.Record(obs.Event{T: t, Kind: obs.EvOutageEnd, Robot: i, Peer: -1})
			}
		}
		inj.prevOutage[i] = want
	}
	if jamActive {
		p := clamp01(jam)
		_ = inj.radio.SetJamming(p)
		inj.prevJam = true
		if o := inj.obs; o != nil {
			o.Fault.JamSets.Inc()
			o.Record(obs.Event{T: t, Kind: obs.EvJam, Robot: -1, Peer: -1, Val: p})
		}
	} else if inj.prevJam {
		_ = inj.radio.SetJamming(0)
		inj.prevJam = false
		if o := inj.obs; o != nil {
			o.Fault.JamSets.Inc()
			o.Record(obs.Event{T: t, Kind: obs.EvJam, Robot: -1, Peer: -1, Val: 0})
		}
	}
}

// FilterActive implements sim.Injector: crash-stopped robots drop out
// of the activation set in place, preserving order. The crash counter
// and events therefore count suppressed activations, one per crashed
// robot per step it would have been activated.
func (inj *Injector) FilterActive(t int, active []int) []int {
	out := active[:0]
	for _, i := range active {
		if !inj.crashed[i] {
			out = append(out, i)
			continue
		}
		if o := inj.obs; o != nil {
			o.Fault.Crashes.Inc()
			o.Record(obs.Event{T: t, Kind: obs.EvCrash, Robot: i, Peer: -1})
		}
	}
	return out
}

// PerturbView implements sim.Injector: sensor noise and dropped
// sightings, rewritten into the observer's own scratch slices. Safe
// under the parallel engine — every random draw is keyed by
// (seed, t, observer, target, event) and the only mutable state touched
// is the observer's own.
func (inj *Injector) PerturbView(t, observer int, frame geom.Frame, view sim.View) sim.View {
	for idx, e := range inj.plan.Events {
		if !e.active(t) || !e.hits(observer) {
			continue
		}
		switch e.Kind {
		case ObserveNoise:
			if e.Mag == 0 {
				continue
			}
			noised := 0
			for j := range view.Points {
				if j == view.Self || !visibleIn(view, j) {
					continue
				}
				gx, gy := gauss2(key(inj.seed, t, observer, j, idx))
				noise := frame.VecToLocal(geom.V(gx*e.Mag, gy*e.Mag))
				view.Points[j] = view.Points[j].Add(noise)
				noised++
			}
			if o := inj.obs; o != nil && noised > 0 {
				// One event per noised view, not per point — per-point
				// events would flood the ring at n² per instant. The
				// counter still counts points.
				o.Fault.Noise.Add(int64(noised))
				o.Record(obs.Event{T: t, Kind: obs.EvNoise, Robot: observer, Peer: -1, Val: e.Mag})
			}
		case DropSight:
			if e.Mag == 0 {
				continue
			}
			if view.Visible == nil {
				mask := inj.dropMask[observer]
				for j := range mask {
					mask[j] = true
				}
				view.Visible = mask
			}
			for j := range view.Points {
				if j == view.Self || !view.Visible[j] {
					continue
				}
				if unit(key(inj.seed, t, observer, j, ^idx)) < e.Mag {
					// The sensor reports nothing there: same convention
					// as limited visibility — the slot holds the
					// observer's own position.
					view.Visible[j] = false
					view.Points[j] = view.Points[view.Self]
					if o := inj.obs; o != nil {
						o.Fault.DropSights.Inc()
						o.Record(obs.Event{T: t, Kind: obs.EvDropSight, Robot: observer, Peer: j})
					}
				}
			}
		}
	}
	return view
}

// PerturbMove implements sim.Injector: movement truncation/overshoot.
func (inj *Injector) PerturbMove(t, robot int, from, dest geom.Point) geom.Point {
	for idx, e := range inj.plan.Events {
		if e.Kind != MoveError || !e.active(t) || !e.hits(robot) {
			continue
		}
		f := e.Min + unit(key(inj.seed, t, robot, robot, idx))*(e.Max-e.Min)
		dest = from.Add(dest.Sub(from).Scale(f))
		if o := inj.obs; o != nil {
			o.Fault.MoveErrors.Inc()
			o.Record(obs.Event{T: t, Kind: obs.EvMoveError, Robot: robot, Peer: -1, Val: f})
		}
	}
	return dest
}

func (inj *Injector) forEachTarget(fn func(i int), e Event) {
	if e.Robot == AllRobots {
		for i := 0; i < inj.n; i++ {
			fn(i)
		}
		return
	}
	fn(e.Robot)
}

func visibleIn(v sim.View, j int) bool {
	return v.Visible == nil || v.Visible[j]
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
