package fault

import (
	"math"
	"testing"

	"waggle/internal/geom"
	"waggle/internal/sim"
)

// still is a behavior that never moves.
type still struct{}

func (still) Step(v sim.View) geom.Point { return v.Points[v.Self] }

func testWorld(t *testing.T, positions []geom.Point) *sim.World {
	t.Helper()
	robots := make([]*sim.Robot, len(positions))
	for i := range robots {
		robots[i] = &sim.Robot{Frame: geom.WorldFrame(), Sigma: 1e9, Behavior: still{}}
	}
	w, err := sim.NewWorld(sim.Config{Positions: positions, Robots: robots})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		e    Event
	}{
		{"zero kind", Event{At: 0, Until: 10}},
		{"unknown kind", Event{Kind: JamRamp + 1, At: 0, Until: 10}},
		{"robot out of range", Event{Kind: Crash, Robot: 4, At: 0, Until: 10}},
		{"robot negative non-sentinel", Event{Kind: Crash, Robot: -2, At: 0, Until: 10}},
		{"negative start", Event{Kind: Crash, At: -1, Until: 10}},
		{"empty window", Event{Kind: ObserveNoise, At: 10, Until: 10}},
		{"inverted window", Event{Kind: DropSight, At: 10, Until: 5, Mag: 0.5}},
		{"NaN noise", Event{Kind: ObserveNoise, At: 0, Until: 10, Mag: math.NaN()}},
		{"negative noise", Event{Kind: ObserveNoise, At: 0, Until: 10, Mag: -1}},
		{"infinite noise", Event{Kind: ObserveNoise, At: 0, Until: 10, Mag: math.Inf(1)}},
		{"drop prob above 1", Event{Kind: DropSight, At: 0, Until: 10, Mag: 1.5}},
		{"move range inverted", Event{Kind: MoveError, At: 0, Until: 10, Min: 2, Max: 1}},
		{"move range negative", Event{Kind: MoveError, At: 0, Until: 10, Min: -0.5, Max: 1}},
		{"move range NaN", Event{Kind: MoveError, At: 0, Until: 10, Min: math.NaN(), Max: 1}},
		{"jam prob above 1", Event{Kind: JamRamp, At: 0, Until: 10, Min: 0, Max: 1.2}},
		{"jam prob NaN", Event{Kind: JamRamp, At: 0, Until: 10, Min: math.NaN(), Max: 1}},
		{"displacement NaN", Event{Kind: Displace, At: 0, Delta: geom.V(math.NaN(), 0)}},
		{"displacement infinite", Event{Kind: Displace, At: 0, Delta: geom.V(0, math.Inf(-1))}},
	}
	for _, c := range cases {
		if err := (Plan{Events: []Event{c.e}}).Validate(4); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	ok := Plan{Events: []Event{
		{Kind: Crash, Robot: 0, At: 5},                               // crash-stop forever
		{Kind: Crash, Robot: AllRobots, At: 0, Until: 3},             // crash-recover, everyone
		{Kind: Displace, Robot: 1, At: 7, Delta: geom.V(1, 2)},       // no window needed
		{Kind: MoveError, Robot: 2, At: 0, Until: 9, Min: 1, Max: 1}, // degenerate range
	}}
	if err := ok.Validate(4); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestPlanEndAndNeedsRadio(t *testing.T) {
	if end := (Plan{}).End(); end != 0 {
		t.Errorf("empty plan End() = %d", end)
	}
	p := Plan{Events: []Event{
		{Kind: Displace, Robot: 0, At: 30, Delta: geom.V(1, 0)},
		{Kind: ObserveNoise, Robot: AllRobots, At: 10, Until: 50, Mag: 1},
	}}
	if end := p.End(); end != 50 {
		t.Errorf("End() = %d, want 50", end)
	}
	if p.NeedsRadio() {
		t.Error("movement-only plan claims to need a radio")
	}
	p.Events = append(p.Events, Event{Kind: JamRamp, At: 60, Until: 70, Max: 1})
	if end := p.End(); end != 70 {
		t.Errorf("End() = %d, want 70", end)
	}
	if !p.NeedsRadio() {
		t.Error("jam plan does not need a radio")
	}
	forever := Plan{Events: []Event{{Kind: Crash, Robot: 0, At: 5}}}
	if end := forever.End(); end != -1 {
		t.Errorf("never-ending plan End() = %d, want -1", end)
	}
}

func TestInjectorCrashFilter(t *testing.T) {
	plan := Plan{Events: []Event{{Kind: Crash, Robot: 1, At: 5, Until: 8}}}
	inj, err := NewInjector(plan, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := testWorld(t, []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 10)})
	check := func(tt int, want []int) {
		t.Helper()
		inj.BeginStep(tt, w)
		got := inj.FilterActive(tt, []int{0, 1, 2})
		if len(got) != len(want) {
			t.Fatalf("t=%d: active %v, want %v", tt, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("t=%d: active %v, want %v", tt, got, want)
			}
		}
	}
	check(4, []int{0, 1, 2})
	check(5, []int{0, 2})
	check(7, []int{0, 2})
	check(8, []int{0, 1, 2})
	if !inj.Crashed(6, 1) || inj.Crashed(6, 0) || inj.Crashed(8, 1) {
		t.Error("Crashed window wrong")
	}
}

func TestInjectorDisplace(t *testing.T) {
	plan := Plan{Events: []Event{{Kind: Displace, Robot: 0, At: 3, Delta: geom.V(2, -1)}}}
	inj, err := NewInjector(plan, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := testWorld(t, []geom.Point{geom.Pt(1, 1), geom.Pt(9, 9)})
	inj.BeginStep(2, w)
	if got := w.Position(0); got != geom.Pt(1, 1) {
		t.Fatalf("displaced early: %v", got)
	}
	inj.BeginStep(3, w)
	if got := w.Position(0); got != geom.Pt(3, 0) {
		t.Fatalf("position after displacement %v, want (3,0)", got)
	}
	inj.BeginStep(4, w)
	if got := w.Position(0); got != geom.Pt(3, 0) {
		t.Fatalf("displacement applied twice: %v", got)
	}
}

// recordingRadio records the injector's control calls.
type recordingRadio struct {
	calls []string
	jams  []float64
}

func (r *recordingRadio) Break(i int) error  { r.calls = append(r.calls, "break"); return nil }
func (r *recordingRadio) Repair(i int) error { r.calls = append(r.calls, "repair"); return nil }
func (r *recordingRadio) SetJamming(p float64) error {
	r.calls = append(r.calls, "jam")
	r.jams = append(r.jams, p)
	return nil
}

func TestInjectorRadioOutageEdges(t *testing.T) {
	plan := Plan{Events: []Event{{Kind: RadioOutage, Robot: 1, At: 2, Until: 4}}}
	inj, err := NewInjector(plan, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	radio := &recordingRadio{}
	if err := inj.AttachRadio(radio); err != nil {
		t.Fatal(err)
	}
	w := testWorld(t, []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)})
	for tt := 0; tt < 6; tt++ {
		inj.BeginStep(tt, w)
	}
	// Exactly one Break at the window start and one Repair at its end —
	// edge-triggered, so manual radio control between them is untouched.
	if len(radio.calls) != 2 || radio.calls[0] != "break" || radio.calls[1] != "repair" {
		t.Errorf("radio calls %v, want [break repair]", radio.calls)
	}
}

func TestInjectorJamRamp(t *testing.T) {
	plan := Plan{Events: []Event{{Kind: JamRamp, Robot: AllRobots, At: 10, Until: 14, Min: 0.2, Max: 0.8}}}
	inj, err := NewInjector(plan, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	radio := &recordingRadio{}
	if err := inj.AttachRadio(radio); err != nil {
		t.Fatal(err)
	}
	w := testWorld(t, []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)})
	for tt := 9; tt <= 15; tt++ {
		inj.BeginStep(tt, w)
	}
	// Linear from Min at t=10 to Max at t=13, then one restore to 0.
	want := []float64{0.2, 0.4, 0.6, 0.8, 0}
	if len(radio.jams) != len(want) {
		t.Fatalf("jam values %v, want %v", radio.jams, want)
	}
	for k := range want {
		if math.Abs(radio.jams[k]-want[k]) > 1e-12 {
			t.Fatalf("jam values %v, want %v", radio.jams, want)
		}
	}
}

func TestAttachRadioRequired(t *testing.T) {
	plan := Plan{Events: []Event{{Kind: RadioOutage, Robot: 0, At: 0, Until: 5}}}
	inj, err := NewInjector(plan, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.AttachRadio(nil); err == nil {
		t.Error("radio plan accepted a nil radio")
	}
	clean, err := NewInjector(Plan{}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.AttachRadio(nil); err != nil {
		t.Errorf("fault-free plan rejected a nil radio: %v", err)
	}
}

func viewFor(positions []geom.Point, self, time int) sim.View {
	pts := append([]geom.Point(nil), positions...)
	return sim.View{Time: time, Self: self, Points: pts}
}

func TestPerturbViewNoiseDeterministic(t *testing.T) {
	positions := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 10)}
	plan := Plan{Events: []Event{{Kind: ObserveNoise, Robot: AllRobots, At: 0, Until: 100, Mag: 0.5}}}
	frame := geom.WorldFrame()
	build := func(seed int64) *Injector {
		inj, err := NewInjector(plan, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	a := build(7).PerturbView(3, 1, frame, viewFor(positions, 1, 3))
	b := build(7).PerturbView(3, 1, frame, viewFor(positions, 1, 3))
	for j := range a.Points {
		if a.Points[j] != b.Points[j] {
			t.Fatalf("same (seed,t,observer) produced different noise: %v vs %v", a.Points, b.Points)
		}
	}
	if a.Points[1] != positions[1] {
		t.Error("observer's own sighting was perturbed")
	}
	if a.Points[0] == positions[0] && a.Points[2] == positions[2] {
		t.Error("no sighting was perturbed")
	}
	c := build(8).PerturbView(3, 1, frame, viewFor(positions, 1, 3))
	same := true
	for j := range a.Points {
		if a.Points[j] != c.Points[j] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestPerturbViewDropSight(t *testing.T) {
	positions := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 10)}
	plan := Plan{Events: []Event{{Kind: DropSight, Robot: 0, At: 0, Until: 10, Mag: 1}}}
	inj, err := NewInjector(plan, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := inj.PerturbView(2, 0, geom.WorldFrame(), viewFor(positions, 0, 2))
	if v.Visible == nil {
		t.Fatal("drop-sight left Visible nil")
	}
	if !v.Visible[0] {
		t.Error("observer lost sight of itself")
	}
	for _, j := range []int{1, 2} {
		if v.Visible[j] {
			t.Errorf("sighting of robot %d survived drop probability 1", j)
		}
		if v.Points[j] != positions[0] {
			t.Errorf("dropped slot %d holds %v, want the observer's own position", j, v.Points[j])
		}
	}
	// An untargeted observer is untouched.
	u := inj.PerturbView(2, 1, geom.WorldFrame(), viewFor(positions, 1, 2))
	if u.Visible != nil {
		t.Error("drop-sight leaked onto an untargeted observer")
	}
}

func TestPerturbMoveRange(t *testing.T) {
	plan := Plan{Events: []Event{{Kind: MoveError, Robot: 0, At: 0, Until: 1000, Min: 0.25, Max: 0.75}}}
	inj, err := NewInjector(plan, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	from, dest := geom.Pt(0, 0), geom.Pt(4, 0)
	sawLow, sawHigh := false, false
	for tt := 0; tt < 200; tt++ {
		got := inj.PerturbMove(tt, 0, from, dest)
		f := got.X / dest.X
		if f < 0.25 || f > 0.75 {
			t.Fatalf("t=%d: scale factor %v outside [0.25,0.75]", tt, f)
		}
		if f < 0.4 {
			sawLow = true
		}
		if f > 0.6 {
			sawHigh = true
		}
		if again := inj.PerturbMove(tt, 0, from, dest); again != got {
			t.Fatalf("t=%d: PerturbMove not deterministic", tt)
		}
	}
	if !sawLow || !sawHigh {
		t.Error("200 draws never spanned the factor range")
	}
	if got := inj.PerturbMove(5, 1, from, dest); got != dest {
		t.Errorf("untargeted robot's move was perturbed to %v", got)
	}
}

func TestNewInjectorValidation(t *testing.T) {
	if _, err := NewInjector(Plan{}, 0, 1); err == nil {
		t.Error("zero robots accepted")
	}
	bad := Plan{Events: []Event{{Kind: Crash, Robot: 9, At: 0, Until: 5}}}
	if _, err := NewInjector(bad, 3, 1); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestKindString(t *testing.T) {
	for k := Crash; k <= JamRamp; k++ {
		if s := k.String(); s == "" || s == "Kind(0)" {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if s := Kind(0).String(); s != "Kind(0)" {
		t.Errorf("zero kind String() = %q", s)
	}
}
