package fault

import "math"

// The injector never draws from a shared random stream: every choice is
// a pure function of (seed, instant, robot, target, event index) hashed
// through splitmix64. That makes each perturbation independent of call
// order, which is what keeps the parallel engine's concurrent
// PerturbView calls byte-identical to the sequential engine's.

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// key folds the identifying coordinates of one random decision into a
// single hash.
func key(seed int64, t, a, b, event int) uint64 {
	h := mix64(uint64(seed))
	h = mix64(h ^ uint64(uint32(t)))
	h = mix64(h ^ uint64(uint32(a))<<32)
	h = mix64(h ^ uint64(uint32(b)))
	return mix64(h ^ uint64(uint32(event))<<16)
}

// unit maps a hash onto (0,1): the half-open offset keeps log(u) finite
// for the Box-Muller transform below.
func unit(h uint64) float64 {
	return (float64(h>>11) + 0.5) / (1 << 53)
}

// gauss2 derives two independent standard normal variates from a hash
// via the Box-Muller transform.
func gauss2(h uint64) (float64, float64) {
	u1 := unit(h)
	u2 := unit(mix64(h ^ 0xD1B54A32D192ED03))
	r := math.Sqrt(-2 * math.Log(u1))
	return r * math.Cos(2*math.Pi*u2), r * math.Sin(2*math.Pi*u2)
}
