// Package fault is the deterministic fault-injection subsystem: a
// declarative, time-ordered Plan of fault events compiled into an
// Injector that drives the simulator's injection hooks (sim.Injector)
// and, optionally, a coupled radio (RadioControl).
//
// The paper's headline application is fault-tolerance — movement
// signalling as "a communication backup" when wireless devices break or
// are jammed (§1) — and the related work motivates two further fault
// families: asynchronous delivery under adversarial activation
// (RoboCast, arXiv:1006.5877) and inaccurate/truncated motion
// (arXiv:2010.09667). The Plan vocabulary covers both sides:
//
//   - Crash / crash-recover: a robot stops being activated for a window
//     (or forever), the classic crash-stop model.
//   - Displace: a transient world-position fault (a gust of wind, an
//     operator picking the robot up) applied via World.Teleport.
//   - ObserveNoise: per-sighting Gaussian sensor noise in world units.
//   - DropSight: each sighting of another robot is lost with a fixed
//     probability (the observer perceives nothing there).
//   - MoveError: every applied move is scaled by a factor drawn from
//     [Min, Max] — truncation below 1, overshoot above it.
//   - RadioOutage: a robot's (or everyone's) wireless transmitter is
//     broken for a window and repaired afterwards.
//   - JamRamp: the environment jamming probability ramps linearly from
//     Min to Max across the window and resets to zero afterwards.
//
// Every random choice is keyed by a splitmix64 hash of (seed, time,
// robot, target, event), never by shared stream state, so a plan run
// twice with the same seed produces byte-identical executions — under
// the sequential and the parallel step engine alike.
package fault

import (
	"fmt"
	"math"

	"waggle/internal/geom"
)

// Kind enumerates the fault families a Plan can schedule.
type Kind int

// Fault kinds. The zero value is invalid so that a forgotten Kind in an
// Event literal fails validation instead of silently becoming a crash.
const (
	// Crash stops the robot being activated during [At, Until); Until 0
	// means it never recovers (crash-stop without recovery).
	Crash Kind = iota + 1
	// Displace teleports the robot by Delta (world units) at instant At.
	Displace
	// ObserveNoise adds Gaussian noise with standard deviation Mag
	// (world units) to every sighting made by the affected observers
	// during [At, Until).
	ObserveNoise
	// DropSight makes every sighting by the affected observers vanish
	// with probability Mag during [At, Until).
	DropSight
	// MoveError scales every move applied to the affected robots by a
	// factor drawn uniformly from [Min, Max] during [At, Until).
	MoveError
	// RadioOutage breaks the affected robots' transmitters during
	// [At, Until) and repairs them at Until. Requires an attached radio.
	RadioOutage
	// JamRamp ramps the radio jamming probability linearly from Min (at
	// At) to Max (at Until-1) during the window, restoring 0 at Until.
	// Requires an attached radio.
	JamRamp
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Displace:
		return "displace"
	case ObserveNoise:
		return "observe-noise"
	case DropSight:
		return "drop-sight"
	case MoveError:
		return "move-error"
	case RadioOutage:
		return "radio-outage"
	case JamRamp:
		return "jam-ramp"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	// Kind selects the fault family.
	Kind Kind
	// At is the first instant the fault is in effect.
	At int
	// Until is the end of the fault window, exclusive. Windowed kinds
	// (everything except Displace) require Until > At, with the single
	// exception of a Crash with Until 0: that robot never recovers.
	Until int
	// Robot is the affected robot, or AllRobots.
	Robot int
	// Mag is the kind-specific magnitude: noise standard deviation in
	// world units (ObserveNoise) or drop probability (DropSight).
	Mag float64
	// Min and Max bound the move scale factor (MoveError) or the
	// jamming probability ramp (JamRamp).
	Min, Max float64
	// Delta is the world-space displacement (Displace).
	Delta geom.Vec
}

// AllRobots targets every robot in the system.
const AllRobots = -1

// active reports whether the event is in effect at instant t.
func (e Event) active(t int) bool {
	if t < e.At {
		return false
	}
	if e.Kind == Crash && e.Until == 0 {
		return true
	}
	return t < e.Until
}

// hits reports whether the event targets robot i.
func (e Event) hits(i int) bool { return e.Robot == AllRobots || e.Robot == i }

// Plan is a declarative, time-ordered schedule of fault events. The
// zero value is the empty (fault-free) plan.
type Plan struct {
	Events []Event
}

// Validate checks the plan against a system of n robots. It is called
// by NewInjector; exported so harnesses can fail fast on construction.
func (p Plan) Validate(n int) error {
	for idx, e := range p.Events {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("fault: event %d (%v): %s", idx, e.Kind, fmt.Sprintf(format, args...))
		}
		if e.Kind < Crash || e.Kind > JamRamp {
			return fmt.Errorf("fault: event %d has unknown kind %d", idx, int(e.Kind))
		}
		if e.Robot != AllRobots && (e.Robot < 0 || e.Robot >= n) {
			return fail("robot %d out of range [0,%d)", e.Robot, n)
		}
		if e.At < 0 {
			return fail("start instant %d negative", e.At)
		}
		windowed := e.Kind != Displace && !(e.Kind == Crash && e.Until == 0)
		if windowed && e.Until <= e.At {
			return fail("window [%d,%d) empty", e.At, e.Until)
		}
		switch e.Kind {
		case ObserveNoise:
			if math.IsNaN(e.Mag) || e.Mag < 0 || math.IsInf(e.Mag, 0) {
				return fail("noise stddev %v must be finite and non-negative", e.Mag)
			}
		case DropSight:
			if math.IsNaN(e.Mag) || e.Mag < 0 || e.Mag > 1 {
				return fail("drop probability %v outside [0,1]", e.Mag)
			}
		case MoveError:
			if math.IsNaN(e.Min) || math.IsNaN(e.Max) || e.Min < 0 || e.Max < e.Min || math.IsInf(e.Max, 0) {
				return fail("move factor range [%v,%v] invalid", e.Min, e.Max)
			}
		case JamRamp:
			for _, v := range []float64{e.Min, e.Max} {
				if math.IsNaN(v) || v < 0 || v > 1 {
					return fail("jam probability %v outside [0,1]", v)
				}
			}
		case Displace:
			if math.IsNaN(e.Delta.X) || math.IsNaN(e.Delta.Y) ||
				math.IsInf(e.Delta.X, 0) || math.IsInf(e.Delta.Y, 0) {
				return fail("displacement %v not finite", e.Delta)
			}
		}
	}
	return nil
}

// NeedsRadio reports whether the plan contains radio events, which
// require an attached RadioControl.
func (p Plan) NeedsRadio() bool {
	for _, e := range p.Events {
		if e.Kind == RadioOutage || e.Kind == JamRamp {
			return true
		}
	}
	return false
}

// End returns the first instant at which no event is in effect any
// more, or -1 when some event never ends. The chaos harness uses it to
// place its post-fault probe traffic.
func (p Plan) End() int {
	end := 0
	for _, e := range p.Events {
		if e.Kind == Crash && e.Until == 0 {
			return -1
		}
		u := e.Until
		if e.Kind == Displace {
			u = e.At + 1
		}
		if u > end {
			end = u
		}
	}
	return end
}
