// Package figures regenerates the paper's six figures as ASCII diagrams
// plus machine-readable traces. The paper is a theory paper: its figures
// are illustrative, so each generator both re-draws the illustrated
// scenario and actually RUNS it in the simulator, printing what the
// protocol did (experiments F1-F6 in DESIGN.md).
package figures

import (
	"fmt"
	"math/rand"
	"strings"

	"waggle/internal/geom"
	"waggle/internal/naming"
	"waggle/internal/protocol"
	"waggle/internal/render"
	"waggle/internal/sec"
	"waggle/internal/sim"
	"waggle/internal/spatial"
	"waggle/internal/voronoi"
)

// Fig2Positions is the 12-robot layout used by Figures 2 and 4.
func Fig2Positions() []geom.Point {
	return []geom.Point{
		geom.Pt(12, 55), geom.Pt(35, 66), geom.Pt(57, 71), geom.Pt(77, 58),
		geom.Pt(24, 40), geom.Pt(45, 48), geom.Pt(68, 42), geom.Pt(88, 36),
		geom.Pt(15, 20), geom.Pt(38, 12), geom.Pt(60, 18), geom.Pt(82, 14),
	}
}

// Generate produces the named figure (1..6).
func Generate(fig int) (string, error) {
	switch fig {
	case 1:
		return Fig1()
	case 2:
		return Fig2()
	case 3:
		return Fig3()
	case 4:
		return Fig4()
	case 5:
		return Fig5()
	case 6:
		return Fig6()
	default:
		return "", fmt.Errorf("figures: no figure %d (paper has 1-6)", fig)
	}
}

// Fig1 re-enacts Figure 1: one-to-one communication between two
// synchronous robots — bit 0 is a move to the right of the direction
// towards the peer, bit 1 to the left, with a return move in between.
func Fig1() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 1 — one-to-one communication for 2 synchronous robots (§3.1)\n")
	b.WriteString("robot 0 transmits the bits 0,1,1,0 to robot 1 (raw excursions)\n\n")

	behaviors, endpoints, err := protocol.NewSync2(protocol.Sync2Config{})
	if err != nil {
		return "", err
	}
	robots := []*sim.Robot{
		{Frame: geom.WorldFrame(), Sigma: 1e9, Behavior: behaviors[0]},
		{Frame: geom.WorldFrame(), Sigma: 1e9, Behavior: behaviors[1]},
	}
	w, err := sim.NewWorld(sim.Config{
		Positions:   []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)},
		Robots:      robots,
		RecordTrace: true,
	})
	if err != nil {
		return "", err
	}
	// 0x60 = 0110 0000 — the leading payload bits 0,1,1,0 after the
	// 16-bit length header.
	if err := endpoints[0].Send(1, []byte{0x60}); err != nil {
		return "", err
	}
	if _, _, err := w.Run(sim.Synchronous{}, 10_000, func(*sim.World) bool {
		return len(endpoints[1].Receive()) > 0
	}); err != nil {
		return "", err
	}

	tbl := render.NewTable("instant", "robot0 offset", "reading")
	for _, s := range w.Trace().Steps() {
		if s.Time >= 48 { // header is 16 bits = 32 instants; show 8 payload instants
			break
		}
		if s.Time < 32 {
			continue
		}
		off := s.Positions[0].Y
		reading := "home"
		if off > 1e-9 {
			reading = "LEFT  -> bit 1" // +y is left of the +x direction towards the peer
		} else if off < -1e-9 {
			reading = "RIGHT -> bit 0"
		}
		tbl.AddRow(s.Time, fmt.Sprintf("%+.2f", off), reading)
	}
	b.WriteString(tbl.String())
	b.WriteString("\n(robot 1 observes each excursion at the following instant and decodes\n")
	b.WriteString("the side into the bit; the even/odd step parity separates bits)\n")
	return b.String(), nil
}

// Fig2 reproduces Figure 2: the Voronoi diagram and sliced granulars of
// 12 identified robots with sense of direction, then robot 9 sending a
// bit to robot 3.
func Fig2() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 2 — Voronoi cells and granulars, 12 identified robots (§3.2)\n\n")
	pts := Fig2Positions()
	d, err := voronoi.New(pts)
	if err != nil {
		return "", err
	}
	canvas := render.CanvasFor(pts, 95, 30, 6)
	for i, c := range d.Cells() {
		canvas.Polygon(c.Region, '.')
		canvas.Circle(c.Granular, 'o')
		canvas.Plot(c.Site, '*')
		canvas.Label(c.Site.Add(geom.V(1.2, 0)), fmt.Sprintf("%d", i))
	}
	b.WriteString(canvas.String())

	b.WriteString("\ngranular radii (half the distance to the nearest robot):\n")
	tbl := render.NewTable("robot", "granular radius", "nearest robot")
	for i, c := range d.Cells() {
		tbl.AddRow(i, c.Granular.R, c.NearestSite)
	}
	b.WriteString(tbl.String())

	b.WriteString("\nrobot 9 sends \"0\" then \"1\" to robot 3: with n=12 the granular has\n")
	b.WriteString("12 diameters numbered clockwise from North; robot 9 moves on the\n")
	b.WriteString("diameter labelled 3 — Northern side for 0, Southern side for 1 —\n")
	b.WriteString("and returns to its centre in between.\n")
	return b.String(), nil
}

// Fig3 reproduces Figure 3: a symmetric configuration in which
// anonymous robots without sense of direction cannot agree on a common
// naming.
func Fig3() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 3 — symmetry defeats global naming (§3.4)\n\n")
	pts := naming.Fig3Configuration()
	canvas := render.CanvasFor(pts, 61, 21, 2)
	for i, p := range pts {
		canvas.Plot(p, '*')
		canvas.Label(p.Add(geom.V(0.4, 0)), fmt.Sprintf("%d", i))
	}
	b.WriteString(canvas.String())

	order := naming.RotationalSymmetryOrder(pts)
	fmt.Fprintf(&b, "\nrotational symmetry order: %d\n", order)
	b.WriteString("indistinguishable pairs (identical views up to local frames):\n")
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if naming.ViewsIndistinguishable(pts, i, j) {
				fmt.Fprintf(&b, "  robots %d and %d\n", i, j)
			}
		}
	}
	b.WriteString("=> no deterministic algorithm can give these robots a common naming;\n")
	b.WriteString("   the §3.4 protocol builds a RELATIVE naming per observer instead.\n")
	return b.String(), nil
}

// Fig4 reproduces Figure 4: the SEC-relative naming with respect to one
// robot.
func Fig4() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 4 — SEC-relative naming (§3.4)\n\n")
	pts := Fig2Positions()
	circle, err := sec.Enclosing(pts)
	if err != nil {
		return "", err
	}
	const observer = 8 // the paper draws the naming for one robot r
	labels, err := naming.SECLabels(pts, observer, circle)
	if err != nil {
		return "", err
	}
	canvas := render.CanvasFor(pts, 95, 30, 8)
	canvas.Circle(circle, '.')
	canvas.Plot(circle.Center, '+')
	canvas.Label(circle.Center.Add(geom.V(1.5, 0)), "O")
	// Horizon radius through the observer.
	canvas.Segment(geom.Segment{A: circle.Center, B: pts[observer]}, '-')
	for i, p := range pts {
		canvas.Plot(p, '*')
		canvas.Label(p.Add(geom.V(1.2, 0)), fmt.Sprintf("%d", labels[i]))
	}
	b.WriteString(canvas.String())
	fmt.Fprintf(&b, "\nlabels are RELATIVE to robot %d (its horizon radius is drawn):\n", observer)
	tbl := render.NewTable("robot (home index)", "label w.r.t. observer")
	for i, l := range labels {
		tbl.AddRow(i, l)
	}
	b.WriteString(tbl.String())
	b.WriteString("\nrobots are numbered along SEC radii clockwise from the horizon,\n")
	b.WriteString("ties on a radius broken outward from the centre O; every robot can\n")
	b.WriteString("recompute every other robot's labelling, so bits are addressable.\n")
	return b.String(), nil
}

// Fig5 re-enacts Figure 5: two asynchronous robots; robot 0 transmits
// while both drift away on the horizon line H.
func Fig5() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 5 — asynchronous one-to-one communication, 2 robots (§4.1)\n")
	b.WriteString("robot 0 sends bits; excursions perpendicular to H carry the bits,\n")
	b.WriteString("drifting on H provides the implicit acknowledgements (Lemma 4.1)\n\n")

	behaviors, endpoints, err := protocol.NewAsync2(protocol.Async2Config{})
	if err != nil {
		return "", err
	}
	robots := []*sim.Robot{
		{Frame: geom.WorldFrame(), Sigma: 1e9, Behavior: behaviors[0]},
		{Frame: geom.WorldFrame(), Sigma: 1e9, Behavior: behaviors[1]},
	}
	w, err := sim.NewWorld(sim.Config{
		Positions:   []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)},
		Robots:      robots,
		RecordTrace: true,
	})
	if err != nil {
		return "", err
	}
	if err := endpoints[0].Send(1, []byte{0x25}); err != nil {
		return "", err
	}
	sched := sim.FirstSync{Inner: sim.NewRandomFair(1)}
	if _, _, err := w.Run(sched, 1_000_000, func(*sim.World) bool {
		return len(endpoints[1].Receive()) > 0
	}); err != nil {
		return "", err
	}

	// Plot both robots' paths: x along H, y perpendicular (excursions).
	var all []geom.Point
	for _, s := range w.Trace().Steps() {
		all = append(all, s.Positions...)
	}
	canvas := render.CanvasFor(all, 95, 21, 1)
	for _, s := range w.Trace().Steps() {
		canvas.Plot(s.Positions[0], '0')
		canvas.Plot(s.Positions[1], '1')
	}
	b.WriteString(canvas.String())
	b.WriteString("\n(H is horizontal; '0'/'1' mark the robots' visited positions —\n")
	b.WriteString("robot 0's perpendicular spurs are its transmitted bits, robot 1\n")
	b.WriteString("drifts along H only, acknowledging by its own movement)\n")
	fmt.Fprintf(&b, "final separation: %.2f (the §4.1 unbounded-drift drawback)\n",
		w.Position(0).Dist(w.Position(1)))
	return b.String(), nil
}

// Fig6 reproduces Figure 6: the n+1-way sliced granular with the idle
// slice κ used by Protocol Asyncn.
func Fig6() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 6 — the sliced granular with idle slice κ (§4.2)\n\n")
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(30, 6), geom.Pt(18, 28), geom.Pt(-10, 22),
	}
	circle, err := sec.Enclosing(pts)
	if err != nil {
		return "", err
	}
	const robot = 0
	n := len(pts)
	horizon := pts[robot].Sub(circle.Center).Unit()
	radius := granularRadius(pts, robot)

	canvas := render.CanvasFor([]geom.Point{
		pts[robot].Add(geom.V(-radius, -radius)),
		pts[robot].Add(geom.V(radius, radius)),
	}, 61, 31, radius*0.2)
	canvas.Circle(geom.Circle{Center: pts[robot], R: radius}, 'o')
	diameters := n + 1
	for k := 0; k < diameters; k++ {
		dir := horizon.Rotate(-float64(k) * 3.141592653589793 / float64(diameters))
		a := pts[robot].Add(dir.Scale(radius))
		c := pts[robot].Add(dir.Scale(-radius))
		mark := '/'
		if k == 0 {
			mark = '#' // κ
		}
		canvas.Segment(geom.Segment{A: pts[robot], B: a}, mark)
		canvas.Segment(geom.Segment{A: pts[robot], B: c}, mark)
		canvas.Label(pts[robot].Add(dir.Scale(radius*1.12)), diameterName(k))
	}
	canvas.Plot(pts[robot], '*')
	b.WriteString(canvas.String())
	fmt.Fprintf(&b, "\nrobot %d's granular (radius %.2f) sliced into %d diameters:\n", robot, radius, diameters)
	b.WriteString("  κ (marked #) lies on the SEC radius through the robot; idle robots\n")
	b.WriteString("  oscillate on κ; the other diameters address the robots labelled\n")
	b.WriteString("  0..n-1 in the robot's relative naming; the side encodes the bit.\n")
	return b.String(), nil
}

func diameterName(k int) string {
	if k == 0 {
		return "k"
	}
	return fmt.Sprintf("%d", k-1)
}

func granularRadius(pts []geom.Point, i int) float64 {
	best := -1.0
	for j, q := range pts {
		if j == i {
			continue
		}
		if d := pts[i].Dist(q); best < 0 || d < best {
			best = d
		}
	}
	return best / 2
}

// RandomConfiguration places n robots uniformly with a minimum
// separation — the placement helper shared by the figure tools, the
// sweep harness, and the root benchmark suite. Conflict checks go
// through the grid-backed spatial.Placer (O(1) expected per attempt
// instead of O(n)), with the same strict Dist < minSep predicate as the
// original scan, so a given random stream yields the identical
// configuration.
func RandomConfiguration(rng *rand.Rand, n int, side, minSep float64) []geom.Point {
	pl := spatial.NewPlacer(minSep)
	for pl.Len() < n {
		p := geom.Pt(rng.Float64()*side, rng.Float64()*side)
		if !pl.TooClose(p) {
			pl.Add(p)
		}
	}
	return pl.Points()
}
