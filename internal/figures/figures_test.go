package figures

import (
	"math/rand"
	"strings"
	"testing"
)

func TestGenerateAllFigures(t *testing.T) {
	wantFragments := map[int][]string{
		1: {"Figure 1", "bit 0", "bit 1", "instant"},
		2: {"Figure 2", "granular", "robot 9", "nearest robot"},
		3: {"Figure 3", "symmetry order: 2", "robots 0 and 3"},
		4: {"Figure 4", "O", "label w.r.t. observer", "clockwise"},
		5: {"Figure 5", "final separation", "Lemma 4.1"},
		6: {"Figure 6", "κ", "diameters"},
	}
	for fig := 1; fig <= 6; fig++ {
		out, err := Generate(fig)
		if err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
		for _, frag := range wantFragments[fig] {
			if !strings.Contains(out, frag) {
				t.Errorf("figure %d missing %q", fig, frag)
			}
		}
	}
}

func TestGenerateUnknownFigure(t *testing.T) {
	if _, err := Generate(7); err == nil {
		t.Error("figure 7 accepted")
	}
	if _, err := Generate(0); err == nil {
		t.Error("figure 0 accepted")
	}
}

func TestFig1ShowsBothBitValues(t *testing.T) {
	out, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "RIGHT -> bit 0") || !strings.Contains(out, "LEFT  -> bit 1") {
		t.Errorf("figure 1 trace lacks both bit directions:\n%s", out)
	}
}

func TestFig5RunsToDelivery(t *testing.T) {
	out, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// The drift drawback: separation grew beyond the initial 10.
	if !strings.Contains(out, "final separation") {
		t.Fatal("missing separation line")
	}
}

func TestRandomConfiguration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := RandomConfiguration(rng, 20, 100, 5)
	if len(pts) != 20 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) < 5 {
				t.Fatalf("points %d and %d too close", i, j)
			}
		}
	}
}

func TestFig2PositionsWellSeparated(t *testing.T) {
	pts := Fig2Positions()
	if len(pts) != 12 {
		t.Fatalf("Fig2 has %d robots, want 12", len(pts))
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) < 5 {
				t.Errorf("robots %d and %d closer than 5", i, j)
			}
		}
	}
}

func TestGenerateSVGAll(t *testing.T) {
	for fig := 2; fig <= 6; fig++ {
		doc, err := GenerateSVG(fig)
		if err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
		if !strings.Contains(doc, "<svg") || !strings.Contains(doc, "</svg>") {
			t.Errorf("figure %d: invalid SVG", fig)
		}
	}
	if _, err := GenerateSVG(1); err == nil {
		t.Error("figure 1 should have no SVG form")
	}
	if _, err := GenerateSVG(7); err == nil {
		t.Error("figure 7 accepted")
	}
}
