package figures

import (
	"fmt"

	"waggle/internal/geom"
	"waggle/internal/naming"
	"waggle/internal/protocol"
	"waggle/internal/render"
	"waggle/internal/sec"
	"waggle/internal/sim"
	"waggle/internal/voronoi"
)

// palette for the SVG figures.
const (
	colSite     = "#1a1a1a"
	colCell     = "#9aa7b1"
	colGranular = "#2e7d32"
	colSEC      = "#1565c0"
	colHorizon  = "#c62828"
	colPathA    = "#c62828"
	colPathB    = "#1565c0"
	colKappa    = "#c62828"
	colSlice    = "#9aa7b1"
	colLabel    = "#1a1a1a"
)

// GenerateSVG renders the geometric figures (2, 3, 4, 5, 6) as SVG
// documents. Figure 1 is a timeline, best read in the ASCII/table form.
func GenerateSVG(fig int) (string, error) {
	switch fig {
	case 2:
		return fig2SVG()
	case 3:
		return fig3SVG()
	case 4:
		return fig4SVG()
	case 5:
		return fig5SVG()
	case 6:
		return fig6SVG()
	default:
		return "", fmt.Errorf("figures: no SVG for figure %d (try 2-6)", fig)
	}
}

func fig2SVG() (string, error) {
	pts := Fig2Positions()
	d, err := voronoi.New(pts)
	if err != nil {
		return "", err
	}
	svg := render.SVGFor(pts, 720, 12)
	for i, c := range d.Cells() {
		svg.Polygon(c.Region, colCell, 1)
		svg.Circle(c.Granular, colGranular, 1.2)
		svg.Dot(c.Site, 3.5, colSite)
		svg.Text(c.Site.Add(geom.V(1.2, 1.2)), fmt.Sprintf("%d", i), colLabel, 12)
	}
	return svg.String(), nil
}

func fig3SVG() (string, error) {
	pts := naming.Fig3Configuration()
	svg := render.SVGFor(pts, 560, 1.5)
	center := geom.Centroid(pts)
	svg.Dot(center, 2.5, colHorizon)
	for i, p := range pts {
		svg.Dot(p, 4, colSite)
		svg.Text(p.Add(geom.V(0.2, 0.25)), fmt.Sprintf("%d", i), colLabel, 13)
		// Connect each robot to its symmetric counterpart.
		for j := i + 1; j < len(pts); j++ {
			if naming.ViewsIndistinguishable(pts, i, j) {
				svg.Line(geom.Segment{A: p, B: pts[j]}, colCell, 0.6)
			}
		}
	}
	return svg.String(), nil
}

func fig4SVG() (string, error) {
	pts := Fig2Positions()
	circle, err := sec.Enclosing(pts)
	if err != nil {
		return "", err
	}
	const observer = 8
	labels, err := naming.SECLabels(pts, observer, circle)
	if err != nil {
		return "", err
	}
	bounds := append(append([]geom.Point(nil), pts...),
		circle.PointAt(0), circle.PointAt(1.57), circle.PointAt(3.14), circle.PointAt(4.71))
	svg := render.SVGFor(bounds, 720, 8)
	svg.Circle(circle, colSEC, 1.5)
	svg.Dot(circle.Center, 3, colSEC)
	svg.Text(circle.Center.Add(geom.V(1.5, 1.5)), "O", colSEC, 13)
	svg.Line(geom.Segment{A: circle.Center, B: circle.Center.Add(
		pts[observer].Sub(circle.Center).Unit().Scale(circle.R))}, colHorizon, 1.5)
	for i, p := range pts {
		svg.Dot(p, 3.5, colSite)
		svg.Text(p.Add(geom.V(1.2, 1.2)), fmt.Sprintf("%d", labels[i]), colLabel, 12)
	}
	return svg.String(), nil
}

func fig5SVG() (string, error) {
	behaviors, endpoints, err := protocol.NewAsync2(protocol.Async2Config{})
	if err != nil {
		return "", err
	}
	robots := []*sim.Robot{
		{Frame: geom.WorldFrame(), Sigma: 1e9, Behavior: behaviors[0]},
		{Frame: geom.WorldFrame(), Sigma: 1e9, Behavior: behaviors[1]},
	}
	w, err := sim.NewWorld(sim.Config{
		Positions:   []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)},
		Robots:      robots,
		RecordTrace: true,
	})
	if err != nil {
		return "", err
	}
	if err := endpoints[0].Send(1, []byte{0x25}); err != nil {
		return "", err
	}
	if _, _, err := w.Run(sim.FirstSync{Inner: sim.NewRandomFair(1)}, 1_000_000, func(*sim.World) bool {
		return len(endpoints[1].Receive()) > 0
	}); err != nil {
		return "", err
	}
	var pathA, pathB []geom.Point
	pathA = append(pathA, geom.Pt(0, 0))
	pathB = append(pathB, geom.Pt(10, 0))
	for _, s := range w.Trace().Steps() {
		pathA = append(pathA, s.Positions[0])
		pathB = append(pathB, s.Positions[1])
	}
	svg := render.SVGFor(append(append([]geom.Point(nil), pathA...), pathB...), 900, 2)
	svg.Path(pathA, colPathA, 1.4)
	svg.Path(pathB, colPathB, 1.4)
	svg.Dot(pathA[0], 4, colPathA)
	svg.Dot(pathB[0], 4, colPathB)
	svg.Text(pathA[0].Add(geom.V(0.3, 0.6)), "r (sends)", colPathA, 12)
	svg.Text(pathB[0].Add(geom.V(0.3, 0.6)), "r'", colPathB, 12)
	return svg.String(), nil
}

func fig6SVG() (string, error) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(30, 6), geom.Pt(18, 28), geom.Pt(-10, 22),
	}
	circle, err := sec.Enclosing(pts)
	if err != nil {
		return "", err
	}
	const robot = 0
	n := len(pts)
	horizon := pts[robot].Sub(circle.Center).Unit()
	radius := granularRadius(pts, robot)
	corners := []geom.Point{
		pts[robot].Add(geom.V(-radius*1.25, -radius*1.25)),
		pts[robot].Add(geom.V(radius*1.25, radius*1.25)),
	}
	svg := render.SVGFor(corners, 560, 0)
	svg.Circle(geom.Circle{Center: pts[robot], R: radius}, colGranular, 1.5)
	diameters := n + 1
	for k := 0; k < diameters; k++ {
		dir := horizon.Rotate(-float64(k) * 3.141592653589793 / float64(diameters))
		color, width := colSlice, 1.0
		if k == 0 {
			color, width = colKappa, 2.0
		}
		a := pts[robot].Add(dir.Scale(radius))
		b := pts[robot].Add(dir.Scale(-radius))
		svg.Line(geom.Segment{A: a, B: b}, color, width)
		svg.Text(pts[robot].Add(dir.Scale(radius*1.12)), diameterName(k), colLabel, 13)
	}
	svg.Dot(pts[robot], 4, colSite)
	return svg.String(), nil
}
