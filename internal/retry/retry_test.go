package retry

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestDelaySaturatesAtCap pins the pre-jitter schedule: exponential
// growth from Base by Multiplier, saturating exactly at Cap.
func TestDelaySaturatesAtCap(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second, Multiplier: 2}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second, time.Second,
	}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

// TestBackoffDeterministicSeed: identical seeds produce identical
// jittered delay sequences; different seeds diverge.
func TestBackoffDeterministicSeed(t *testing.T) {
	p := Policy{MaxAttempts: 8, Base: 10 * time.Millisecond, Cap: time.Second, Jitter: 0.5}
	seq := func(seed int64) []time.Duration {
		b := NewBackoff(p, seed)
		var out []time.Duration
		for {
			d, ok := b.Next()
			if !ok {
				return out
			}
			out = append(out, d)
		}
	}
	a, b := seq(7), seq(7)
	if len(a) != 7 { // MaxAttempts=8 total tries → 7 sleeps
		t.Fatalf("got %d delays, want 7", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 7 delay %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical jitter streams")
	}
}

// TestJitterBounds: every jittered delay lands in [d·(1−J), d] and
// never exceeds the cap.
func TestJitterBounds(t *testing.T) {
	p := Policy{MaxAttempts: 100, Base: 40 * time.Millisecond, Cap: 300 * time.Millisecond, Jitter: 0.5}
	b := NewBackoff(p, 1)
	for i := 0; ; i++ {
		d, ok := b.Next()
		if !ok {
			break
		}
		full := p.Delay(i)
		lo := time.Duration(float64(full) * 0.5)
		if d < lo || d > full {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, lo, full)
		}
		if d > p.Cap {
			t.Fatalf("delay %d = %v exceeds cap %v", i, d, p.Cap)
		}
	}
}

// TestJitteredDelayBounds: the scheduler-side jitter helper obeys the
// same [d·(1−J), d] window as Backoff, deterministically per rng.
func TestJitteredDelayBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second, Jitter: 0.5}
	rng := rand.New(rand.NewSource(11))
	for attempt := 0; attempt < 10; attempt++ {
		full := p.Delay(attempt)
		d := p.JitteredDelay(rng, attempt)
		if lo := time.Duration(float64(full) * 0.5); d < lo || d > full {
			t.Fatalf("JitteredDelay(%d) = %v outside [%v, %v]", attempt, d, lo, full)
		}
	}
	a := Policy{Base: time.Second}.WithoutJitter().JitteredDelay(rng, 0)
	if a != time.Second {
		t.Fatalf("jitter-free JitteredDelay = %v, want 1s", a)
	}
}

// TestNextHintHonorsRetryAfter: a server hint replaces the computed
// delay, is clamped to the cap, and is not jittered.
func TestNextHintHonorsRetryAfter(t *testing.T) {
	p := Policy{MaxAttempts: 5, Base: time.Millisecond, Cap: 2 * time.Second, Jitter: 1}
	b := NewBackoff(p, 3)
	if d, ok := b.NextHint(700 * time.Millisecond); !ok || d != 700*time.Millisecond {
		t.Fatalf("hint not honored: got %v ok=%v", d, ok)
	}
	if d, ok := b.NextHint(time.Minute); !ok || d != 2*time.Second {
		t.Fatalf("hint not capped: got %v ok=%v", d, ok)
	}
	if d, ok := b.Next(); !ok || d > p.Cap {
		t.Fatalf("post-hint delay broken: got %v ok=%v", d, ok)
	}
}

// TestDoRetriesUntilSuccess: Do sleeps the jittered schedule and stops
// on the first success.
func TestDoRetriesUntilSuccess(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := Do(Policy{MaxAttempts: 5, Base: 10 * time.Millisecond}.WithoutJitter(), 1,
		func(d time.Duration) { slept = append(slept, d) },
		func(attempt int) error {
			calls++
			if attempt < 2 {
				return fmt.Errorf("transient %d", attempt)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("f called %d times, want 3", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("slept %v, want %v", slept, want)
	}
}

// TestDoPermanentStopsImmediately: a Permanent error is returned
// unwrapped after one try, with no sleeps.
func TestDoPermanentStopsImmediately(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Do(Policy{MaxAttempts: 5}, 1,
		func(time.Duration) { t.Fatal("slept on a permanent error") },
		func(int) error { calls++; return Permanent(boom) })
	if !errors.Is(err, boom) || err != boom {
		t.Fatalf("got %v, want the unwrapped permanent error", err)
	}
	if calls != 1 {
		t.Fatalf("f called %d times, want 1", calls)
	}
}

// TestDoExhaustionWrapsLastError: attempts exhausted → the last error
// is preserved through the wrap.
func TestDoExhaustionWrapsLastError(t *testing.T) {
	boom := errors.New("still down")
	calls := 0
	err := Do(Policy{MaxAttempts: 3, Base: time.Microsecond}, 1,
		func(time.Duration) {},
		func(int) error { calls++; return boom })
	if calls != 3 {
		t.Fatalf("f called %d times, want 3", calls)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("exhaustion error %v does not wrap the last failure", err)
	}
}

// TestDoHintedSleep: a Hint error overrides the computed delay.
func TestDoHintedSleep(t *testing.T) {
	var slept []time.Duration
	err := Do(Policy{MaxAttempts: 3, Base: time.Millisecond, Cap: time.Minute}, 1,
		func(d time.Duration) { slept = append(slept, d) },
		func(attempt int) error {
			if attempt == 0 {
				return Hint(errors.New("backpressured"), 250*time.Millisecond)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if len(slept) != 1 || slept[0] != 250*time.Millisecond {
		t.Fatalf("slept %v, want [250ms]", slept)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"0", 0, true},
		{"1", time.Second, true},
		{"30", 30 * time.Second, true},
		{"-1", 0, false},
		{"soon", 0, false},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseRetryAfter(c.in)
		if got != c.want || ok != c.ok {
			t.Fatalf("ParseRetryAfter(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// TestCeilSeconds: format rounds up and never advertises zero, so a
// client sleeping the advertised value never returns early.
func TestCeilSeconds(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want string
	}{
		{0, "1"},
		{-time.Second, "1"},
		{time.Millisecond, "1"},
		{time.Second, "1"},
		{time.Second + time.Millisecond, "2"},
		{2500 * time.Millisecond, "3"},
	}
	for _, c := range cases {
		if got := CeilSeconds(c.in); got != c.want {
			t.Fatalf("CeilSeconds(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
