// Package retry is the shared retry discipline of the waggle CLIs and
// the queen/worker dispatch protocol: capped exponential backoff with
// seeded jitter, plus the two halves of Retry-After handling — parsing
// a server's advertised delay on the client side and formatting one on
// the server side — so both sides of a backpressured exchange agree on
// the rounding.
//
// The jitter stream is an explicit seeded source, never the global
// rand: identical seeds produce identical delay sequences, which is
// what makes backoff behavior unit-testable and keeps the queen's
// requeue schedule reproducible in its tests.
package retry

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"
)

// Defaults applied by Policy.withDefaults for zero fields.
const (
	DefaultAttempts   = 5
	DefaultBase       = 50 * time.Millisecond
	DefaultCap        = 2 * time.Second
	DefaultMultiplier = 2.0
	DefaultJitter     = 0.5
)

// Policy describes a capped jittered exponential backoff. The zero
// value of every field selects the default above, so callers only
// state what they need changed.
type Policy struct {
	// MaxAttempts is the total number of tries of the operation
	// (first try included). Negative disables retrying (one try).
	MaxAttempts int
	// Base is the pre-jitter delay before the second try; each further
	// delay multiplies by Multiplier, saturating at Cap.
	Base time.Duration
	// Cap bounds every delay, computed or server-advertised.
	Cap time.Duration
	// Multiplier is the per-attempt growth factor (must be ≥ 1 when
	// set).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized: the
	// slept delay is drawn uniformly from [d·(1−Jitter), d]. 0 keeps
	// full determinism without a seed; 1 is full jitter.
	Jitter float64
	// jitterSet distinguishes an explicit Jitter of 0 from the unset
	// zero value (see WithoutJitter).
	jitterSet bool
}

// WithoutJitter returns the policy with jitter explicitly disabled —
// the zero Jitter field otherwise means "default" like every other
// field.
func (p Policy) WithoutJitter() Policy {
	p.Jitter = 0
	p.jitterSet = true
	return p
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = DefaultAttempts
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Base <= 0 {
		p.Base = DefaultBase
	}
	if p.Cap <= 0 {
		p.Cap = DefaultCap
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultMultiplier
	}
	if p.Jitter == 0 && !p.jitterSet {
		p.Jitter = DefaultJitter
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Delay computes the pre-jitter backoff before try attempt+2 (attempt
// is 0-based: Delay(0) follows the first failure): Base·Multiplier^attempt,
// saturating at Cap.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.Cap) {
			return p.Cap
		}
	}
	if d > float64(p.Cap) {
		return p.Cap
	}
	return time.Duration(d)
}

// JitteredDelay is Delay with the policy's jitter drawn from rng — for
// callers that schedule retries on their own timeline (a work queue's
// not-before stamp) rather than sleeping through Do.
func (p Policy) JitteredDelay(rng *rand.Rand, attempt int) time.Duration {
	p = p.withDefaults()
	d := p.Delay(attempt)
	if p.Jitter > 0 {
		lo := float64(d) * (1 - p.Jitter)
		d = time.Duration(lo + rng.Float64()*(float64(d)-lo))
	}
	return d
}

// Backoff is the stateful form of a Policy: one failed operation being
// retried, with its own seeded jitter stream.
type Backoff struct {
	p       Policy
	rng     *rand.Rand
	attempt int
}

// NewBackoff starts a backoff under p, with jitter drawn from a stream
// seeded by seed.
func NewBackoff(p Policy, seed int64) *Backoff {
	return &Backoff{p: p.withDefaults(), rng: rand.New(rand.NewSource(seed))}
}

// Attempt returns the number of failures consumed so far.
func (b *Backoff) Attempt() int { return b.attempt }

// Next consumes one failure and returns the jittered delay to sleep
// before the next try, or false when the policy's attempts are
// exhausted.
func (b *Backoff) Next() (time.Duration, bool) {
	return b.NextHint(0)
}

// NextHint is Next with a server-advertised delay (a parsed
// Retry-After): a positive hint replaces the computed exponential
// delay — the server knows its own load better than our schedule —
// but stays clamped to the policy cap and is never jittered.
func (b *Backoff) NextHint(hint time.Duration) (time.Duration, bool) {
	if b.attempt+1 >= b.p.MaxAttempts {
		b.attempt++
		return 0, false
	}
	d := b.p.Delay(b.attempt)
	b.attempt++
	if hint > 0 {
		if hint > b.p.Cap {
			hint = b.p.Cap
		}
		return hint, true
	}
	if b.p.Jitter > 0 {
		lo := float64(d) * (1 - b.p.Jitter)
		d = time.Duration(lo + b.rng.Float64()*(float64(d)-lo))
	}
	return d, true
}

// hintedError marks a retryable failure carrying a server-advertised
// delay.
type hintedError struct {
	err   error
	after time.Duration
}

func (e *hintedError) Error() string { return e.err.Error() }
func (e *hintedError) Unwrap() error { return e.err }

// Hint wraps a retryable error with the delay the server advertised
// (Retry-After); Do honors it via NextHint.
func Hint(err error, after time.Duration) error {
	return &hintedError{err: err, after: after}
}

// permanentError marks a failure that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an error so Do returns it immediately instead of
// retrying.
func Permanent(err error) error { return &permanentError{err: err} }

// Do runs f until it succeeds, returns a Permanent error, or the
// policy's attempts are exhausted (the last error is returned wrapped
// with the attempt count). Errors wrapped with Hint shorten or stretch
// the next delay to the server's advertised wait. sleep is injectable
// for tests; nil selects time.Sleep. The seed keys the jitter stream.
func Do(p Policy, seed int64, sleep func(time.Duration), f func(attempt int) error) error {
	if sleep == nil {
		sleep = time.Sleep
	}
	b := NewBackoff(p, seed)
	for {
		err := f(b.attempt)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		var hint time.Duration
		var he *hintedError
		if errors.As(err, &he) {
			hint = he.after
		}
		d, ok := b.NextHint(hint)
		if !ok {
			return fmt.Errorf("retry: %d attempts exhausted: %w", b.attempt, err)
		}
		sleep(d)
	}
}

// ParseRetryAfter parses the delay-seconds form of a Retry-After
// header value. The HTTP-date form (nothing in this codebase emits
// it) and malformed values report false.
func ParseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// CeilSeconds formats a delay as a Retry-After value: whole seconds,
// rounded up so a client that sleeps the advertised time never comes
// back early (a zero or negative delay still advertises one second —
// Retry-After: 0 invites an immediate stampede).
func CeilSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
