package voronoi

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"waggle/internal/geom"
)

// sameCells asserts got is cell-for-cell identical to want: granular and
// nearest-site bit-equal, region vertices byte-equal (both sides come
// from the same deterministic construction over the same sites).
func sameCells(t *testing.T, stage string, got, want *Diagram) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d cells, want %d", stage, got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		g, w := got.Cell(i), want.Cell(i)
		if g.Site != w.Site || g.Granular != w.Granular || g.NearestSite != w.NearestSite {
			t.Fatalf("%s: cell %d diverged: granular %+v nearest %d, want %+v %d",
				stage, i, g.Granular, g.NearestSite, w.Granular, w.NearestSite)
		}
		gv, wv := g.Region.Vertices(), w.Region.Vertices()
		if len(gv) != len(wv) {
			t.Fatalf("%s: cell %d region has %d vertices, want %d", stage, i, len(gv), len(wv))
		}
		for k := range gv {
			if gv[k] != wv[k] {
				t.Fatalf("%s: cell %d region vertex %d = %v, want %v", stage, i, k, gv[k], wv[k])
			}
		}
	}
}

// fresh builds the reference diagram the way New would, calling the
// pruned construction directly at sizes where New picks it.
func fresh(t *testing.T, sites []geom.Point) *Diagram {
	t.Helper()
	d, err := New(sites)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDynamicMatchesFresh is the dirty-cell property test: a diagram
// maintained by Dynamic.Update across random walks — interior jitter
// (incremental path), hull moves (bounding-box change, full fallback),
// mass moves past the rebuild fraction — must be cell-for-cell identical
// to a from-scratch New after every update.
func TestDynamicMatchesFresh(t *testing.T) {
	for _, n := range []int{16, 256, 600} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(29 + n)))
			sites := make([]geom.Point, n)
			for i := range sites {
				sites[i] = geom.Pt(rng.Float64()*500, rng.Float64()*500)
			}
			dy, err := NewDynamic(sites)
			if err != nil {
				t.Fatal(err)
			}
			sameCells(t, "initial", dy.Diagram(), fresh(t, sites))
			rounds := 20
			if n >= 600 {
				rounds = 8
			}
			for round := 0; round < rounds; round++ {
				switch round % 4 {
				case 3:
					// Mass move past the rebuild fraction.
					for m := 0; m < n/2; m++ {
						i := rng.Intn(n)
						sites[i] = geom.Pt(rng.Float64()*500, rng.Float64()*500)
					}
				default:
					// A few local moves; occasionally a far teleport that
					// may stretch the bounding box.
					moves := rng.Intn(n/8+1) + 1
					for m := 0; m < moves; m++ {
						i := rng.Intn(n)
						if rng.Intn(10) == 0 {
							sites[i] = geom.Pt(rng.Float64()*700-100, rng.Float64()*700-100)
						} else {
							sites[i] = geom.Pt(sites[i].X+rng.NormFloat64(), sites[i].Y+rng.NormFloat64())
						}
					}
				}
				got, err := dy.Update(sites)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				sameCells(t, fmt.Sprintf("round %d", round), got, fresh(t, sites))
			}
			// No-op update returns the cached diagram.
			again, err := dy.Update(sites)
			if err != nil {
				t.Fatal(err)
			}
			if again != dy.Diagram() {
				t.Fatal("no-op Update did not return the cached diagram")
			}
			// Site-count change forces the full path.
			sites = append(sites, geom.Pt(-40, 620))
			got, err := dy.Update(sites)
			if err != nil {
				t.Fatal(err)
			}
			sameCells(t, "grown", got, fresh(t, sites))
		})
	}
}

// TestDynamicCoincidentParity: an update that creates coincident sites
// must report the same pair as New's scan — the lexicographically
// smallest — and leave the tracker usable for the next valid update.
func TestDynamicCoincidentParity(t *testing.T) {
	const n = 300
	rng := rand.New(rand.NewSource(17))
	sites := make([]geom.Point, n)
	for i := range sites {
		sites[i] = geom.Pt(rng.Float64()*300, rng.Float64()*300)
	}
	dy, err := NewDynamic(sites)
	if err != nil {
		t.Fatal(err)
	}
	// Two coincidences at once: (40, 220) and (10, 90). The ascending
	// scan reports (10, 90) first.
	sites[220] = sites[40]
	sites[90] = sites[10]
	_, err = dy.Update(sites)
	var ce *ErrCoincidentSites
	if !errors.As(err, &ce) {
		t.Fatalf("Update on coincident sites = %v", err)
	}
	_, werr := New(sites)
	var we *ErrCoincidentSites
	if !errors.As(werr, &we) {
		t.Fatalf("New on coincident sites = %v", werr)
	}
	if ce.I != we.I || ce.J != we.J {
		t.Fatalf("coincidence pair (%d, %d), want New's (%d, %d)", ce.I, ce.J, we.I, we.J)
	}
	// Resolve the coincidences; the tracker must recover with a full
	// rebuild and match fresh again.
	sites[220] = geom.Pt(301, 17)
	sites[90] = geom.Pt(302, 280)
	got, err := dy.Update(sites)
	if err != nil {
		t.Fatal(err)
	}
	sameCells(t, "recovered", got, fresh(t, sites))
}
