// Package voronoi computes Voronoi diagrams of planar point sets and the
// "granulars" the paper's preprocessing relies on (§3.2): for each robot
// r, the largest disc centred on r and enclosed in r's Voronoi cell.
// Restricting every robot to move inside its own granular guarantees
// collision avoidance, because Voronoi cells have pairwise-disjoint
// interiors.
//
// Cells are computed by iterative half-plane clipping: the cell of site
// p is the intersection, over every other site q, of the half-plane of
// points closer to p than to q, bounded to a finite box enclosing all
// sites. The naive form is O(n²); above pruneMinSites New prunes the
// clipping with a spatial grid — sites are consumed in expanding rings,
// and once every remaining site is provably too far to cut the current
// region (farther than twice the region's covering radius), the scan
// stops. Granular radii and nearest-site indices — the quantities the
// protocols consume — are bit-identical to the full scan; region
// polygons are the same shapes up to a cyclic rotation of the vertex
// ring and ~1e-13 float noise (see makeCellPruned). Property tests pin
// both guarantees; when pruning safety cannot be established the cell
// falls back to the full scan.
package voronoi

import (
	"errors"
	"fmt"
	"math"

	"waggle/internal/geom"
	"waggle/internal/spatial"
)

// ErrTooFewSites is returned when a diagram is requested for fewer than
// two sites: a single robot has no bisectors, hence an unbounded cell and
// no finite granular.
var ErrTooFewSites = errors.New("voronoi: need at least two sites")

// ErrCoincidentSites is returned when two sites coincide; the paper's
// model forbids two robots occupying the same point.
type ErrCoincidentSites struct {
	I, J int
}

// Error implements error.
func (e *ErrCoincidentSites) Error() string {
	return fmt.Sprintf("voronoi: sites %d and %d coincide", e.I, e.J)
}

// Cell is one site's Voronoi region clipped to the diagram's bounding
// box, together with its granular.
type Cell struct {
	// Site is the generating point (the robot's position).
	Site geom.Point
	// Region is the clipped cell polygon (convex, counterclockwise).
	Region geom.Polygon
	// Granular is the largest disc centred on Site inscribed in the
	// *unbounded* cell: its radius is half the distance to the nearest
	// other site, which is also the distance from Site to the nearest
	// bisector. (The bounding box is an artefact of the finite
	// representation and deliberately does not shrink the granular; the
	// box is chosen large enough that it never clips any granular.)
	Granular geom.Disc
	// NearestSite is the index of the closest other site.
	NearestSite int
}

// Diagram is the Voronoi diagram of a finite point set.
type Diagram struct {
	cells []Cell
	box   geom.Polygon
}

// boxMargin is how far beyond the sites' bounding box the clipping box
// extends, as a multiple of the point-set diameter (plus an absolute
// floor for near-degenerate sets).
const boxMargin = 2.0

// pruneMinSites is the site count from which New uses the grid-pruned
// construction. The pruned path clips twice (once while expanding rings
// to track the stop bound, once over the sorted candidate set), so its
// constant factor is roughly double the scan's; measured on uniform
// sites the crossover sits near n ≈ 190 (waggle-bench: 0.6× at n=64,
// 1.2× at n=256, 2.2× at n=512), and the gap widens with n.
const pruneMinSites = 192

// New computes the Voronoi diagram of the given sites. Large site sets
// use grid-pruned clipping; granulars and nearest-site indices are
// bit-identical to NewBrute, regions identical up to ring rotation and
// float noise (see the package comment).
func New(sites []geom.Point) (*Diagram, error) {
	n := len(sites)
	if n < 2 {
		return nil, ErrTooFewSites
	}
	if n < pruneMinSites {
		return newBrute(sites)
	}
	return newPruned(sites)
}

// newPruned is the grid-pruned construction; it requires at least two
// sites. The parity tests call it directly so small site counts keep
// exercising the pruning even though New routes them to the scan.
func newPruned(sites []geom.Point) (*Diagram, error) {
	n := len(sites)
	g := spatial.NewGrid(sites)
	// Coincident-site detection via the grid: for each i ascending, the
	// smallest coincident j > i — the same pair the lexicographic
	// all-pairs scan reports (Eq is Dist <= Eps, applied here exactly).
	for i := 0; i < n; i++ {
		minJ := -1
		g.VisitNeighborhood(sites[i], geom.Eps, func(j int, d float64) {
			if j > i && d <= geom.Eps && (minJ < 0 || j < minJ) {
				minJ = j
			}
		})
		if minJ >= 0 {
			return nil, &ErrCoincidentSites{I: i, J: minJ}
		}
	}

	box := boundingBox(sites)
	d := &Diagram{cells: make([]Cell, n), box: box}
	var sc cellScratch
	for i := range sites {
		cell, ok := makeCellPruned(i, sites, box, g, &sc)
		if !ok {
			// Pruning safety could not be established; fall back to the
			// full scan for this cell.
			cell = makeCell(i, sites, box)
		}
		d.cells[i] = cell
	}
	return d, nil
}

// NewBrute computes the diagram by the unpruned all-pairs scan — the
// reference twin the parity tests and the before/after benchmarks pin
// New against.
func NewBrute(sites []geom.Point) (*Diagram, error) {
	if len(sites) < 2 {
		return nil, ErrTooFewSites
	}
	return newBrute(sites)
}

func newBrute(sites []geom.Point) (*Diagram, error) {
	n := len(sites)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if sites[i].Eq(sites[j]) {
				return nil, &ErrCoincidentSites{I: i, J: j}
			}
		}
	}
	box := boundingBox(sites)
	d := &Diagram{cells: make([]Cell, n), box: box}
	for i := range sites {
		d.cells[i] = makeCell(i, sites, box)
	}
	return d, nil
}

// Cells returns the diagram's cells, indexed like the input sites. The
// returned slice is shared; callers must not mutate it.
func (d *Diagram) Cells() []Cell { return d.cells }

// Cell returns the cell of site i.
func (d *Diagram) Cell(i int) Cell { return d.cells[i] }

// Len returns the number of sites.
func (d *Diagram) Len() int { return len(d.cells) }

// Locate returns the index of the site whose cell contains p, i.e. the
// nearest site (ties broken by lowest index).
func (d *Diagram) Locate(p geom.Point) int {
	best, bestDist := 0, math.Inf(1)
	for i, c := range d.cells {
		if dist := c.Site.Dist2(p); dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}

// MinGranularRadius returns the smallest granular radius across all
// cells — the uniform movement budget a conservative protocol may adopt.
func (d *Diagram) MinGranularRadius() float64 {
	minR := math.Inf(1)
	for _, c := range d.cells {
		if c.Granular.R < minR {
			minR = c.Granular.R
		}
	}
	return minR
}

// cellScratch holds the reusable per-cell buffers of the pruned
// construction, so building a diagram allocates per cell only what the
// clipping itself allocates.
type cellScratch struct {
	pend []int // indices gathered in the current ring
	cand []int // all candidate indices consumed so far
}

// makeCellPruned builds the cell of site i consuming other sites in
// expanding grid rings. After each ring it clips the working region and
// stops as soon as every remaining site is provably irrelevant: a site
// at distance d has its bisector at distance d/2 from the site, so once
// the remaining-distance lower bound exceeds twice the region's covering
// radius R (plus an epsilon safety margin), no remaining bisector can
// reach the region.
//
// The returned region is then re-clipped from the box in ascending site
// order over the candidate set only. A skipped site is farther than 2R,
// so its bisector clears the final region by more than Clip's -Eps
// tolerance: the candidate subset yields the same polygon. It is the
// same only as a shape, not as bytes — the full scan also clips far
// sites against still-huge intermediate regions, and those intermediate
// crossing vertices perturb the final vertex floats by ~1e-13 and
// rotate the ring's starting vertex. The granular radius and nearest
// site ARE bit-identical: the stop bound certifies every remaining site
// is strictly farther than the nearest found, and ties break to the
// lowest index exactly as the ascending scan does.
//
// ok is false when pruning safety cannot be established (degenerate
// region); the caller falls back to the full scan.
func makeCellPruned(i int, sites []geom.Point, box geom.Polygon, g *spatial.Grid, sc *cellScratch) (_ Cell, ok bool) {
	site := sites[i]
	region := box
	nearest, nearestDist := -1, math.Inf(1)
	sc.pend = sc.pend[:0]
	sc.cand = sc.cand[:0]
	safe := true
	g.VisitRings(site,
		func(bound float64) bool {
			if len(sc.pend) > 0 {
				insertionSort(sc.pend)
				for _, j := range sc.pend {
					q := sites[j]
					region = region.Clip(geom.HalfPlane{Boundary: geom.PerpBisector(site, q)})
					if d := site.Dist(q); d < nearestDist || (d == nearestDist && j < nearest) {
						nearest, nearestDist = j, d
					}
				}
				sc.cand = append(sc.cand, sc.pend...)
				sc.pend = sc.pend[:0]
			}
			if nearest < 0 {
				return true // nothing consumed yet; keep expanding
			}
			if region.Empty() {
				safe = false
				return false
			}
			r := region.FarthestVertexDist(site)
			if math.IsNaN(r) || r <= 0 {
				safe = false
				return false
			}
			// The region contains the granular disc (radius
			// nearestDist/2), so R >= nearestDist/2 and stopping also
			// certifies the nearest site: every remaining site is
			// farther than nearestDist.
			return bound <= 2*r+geom.Eps*(1+2*r)
		},
		func(j int) {
			if j != i {
				sc.pend = append(sc.pend, j)
			}
		})
	if !safe {
		return Cell{}, false
	}
	insertionSort(sc.cand)
	region = box
	for _, j := range sc.cand {
		region = region.Clip(geom.HalfPlane{Boundary: geom.PerpBisector(site, sites[j])})
	}
	return Cell{
		Site:        site,
		Region:      region,
		Granular:    geom.Disc{Center: site, R: nearestDist / 2},
		NearestSite: nearest,
	}, true
}

// insertionSort sorts a small int slice in place without allocating
// (ring membership is a handful of indices).
func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func makeCell(i int, sites []geom.Point, box geom.Polygon) Cell {
	site := sites[i]
	region := box
	nearest, nearestDist := -1, math.Inf(1)
	for j, other := range sites {
		if j == i {
			continue
		}
		// Half-plane of points closer to site than to other: the
		// perpendicular bisector directed so that site is on its left.
		region = region.Clip(geom.HalfPlane{Boundary: geom.PerpBisector(site, other)})
		if dist := site.Dist(other); dist < nearestDist {
			nearest, nearestDist = j, dist
		}
	}
	return Cell{
		Site:        site,
		Region:      region,
		Granular:    geom.Disc{Center: site, R: nearestDist / 2},
		NearestSite: nearest,
	}
}

func boundingBox(sites []geom.Point) geom.Polygon {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range sites {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	diam := math.Hypot(maxX-minX, maxY-minY)
	margin := boxMargin*diam + 1
	return geom.Box(minX-margin, minY-margin, maxX+margin, maxY+margin)
}
