// Package voronoi computes Voronoi diagrams of planar point sets and the
// "granulars" the paper's preprocessing relies on (§3.2): for each robot
// r, the largest disc centred on r and enclosed in r's Voronoi cell.
// Restricting every robot to move inside its own granular guarantees
// collision avoidance, because Voronoi cells have pairwise-disjoint
// interiors.
//
// Cells are computed by iterative half-plane clipping: the cell of site
// p is the intersection, over every other site q, of the half-plane of
// points closer to p than to q, bounded to a finite box enclosing all
// sites. This is O(n²) overall — robust, allocation-friendly, and far
// below the simulator's cost for the swarm sizes the experiments use
// (n ≤ 512).
package voronoi

import (
	"errors"
	"fmt"
	"math"

	"waggle/internal/geom"
)

// ErrTooFewSites is returned when a diagram is requested for fewer than
// two sites: a single robot has no bisectors, hence an unbounded cell and
// no finite granular.
var ErrTooFewSites = errors.New("voronoi: need at least two sites")

// ErrCoincidentSites is returned when two sites coincide; the paper's
// model forbids two robots occupying the same point.
type ErrCoincidentSites struct {
	I, J int
}

// Error implements error.
func (e *ErrCoincidentSites) Error() string {
	return fmt.Sprintf("voronoi: sites %d and %d coincide", e.I, e.J)
}

// Cell is one site's Voronoi region clipped to the diagram's bounding
// box, together with its granular.
type Cell struct {
	// Site is the generating point (the robot's position).
	Site geom.Point
	// Region is the clipped cell polygon (convex, counterclockwise).
	Region geom.Polygon
	// Granular is the largest disc centred on Site inscribed in the
	// *unbounded* cell: its radius is half the distance to the nearest
	// other site, which is also the distance from Site to the nearest
	// bisector. (The bounding box is an artefact of the finite
	// representation and deliberately does not shrink the granular; the
	// box is chosen large enough that it never clips any granular.)
	Granular geom.Disc
	// NearestSite is the index of the closest other site.
	NearestSite int
}

// Diagram is the Voronoi diagram of a finite point set.
type Diagram struct {
	cells []Cell
	box   geom.Polygon
}

// boxMargin is how far beyond the sites' bounding box the clipping box
// extends, as a multiple of the point-set diameter (plus an absolute
// floor for near-degenerate sets).
const boxMargin = 2.0

// New computes the Voronoi diagram of the given sites.
func New(sites []geom.Point) (*Diagram, error) {
	n := len(sites)
	if n < 2 {
		return nil, ErrTooFewSites
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if sites[i].Eq(sites[j]) {
				return nil, &ErrCoincidentSites{I: i, J: j}
			}
		}
	}

	box := boundingBox(sites)
	d := &Diagram{cells: make([]Cell, n), box: box}
	for i := range sites {
		d.cells[i] = makeCell(i, sites, box)
	}
	return d, nil
}

// Cells returns the diagram's cells, indexed like the input sites. The
// returned slice is shared; callers must not mutate it.
func (d *Diagram) Cells() []Cell { return d.cells }

// Cell returns the cell of site i.
func (d *Diagram) Cell(i int) Cell { return d.cells[i] }

// Len returns the number of sites.
func (d *Diagram) Len() int { return len(d.cells) }

// Locate returns the index of the site whose cell contains p, i.e. the
// nearest site (ties broken by lowest index).
func (d *Diagram) Locate(p geom.Point) int {
	best, bestDist := 0, math.Inf(1)
	for i, c := range d.cells {
		if dist := c.Site.Dist2(p); dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}

// MinGranularRadius returns the smallest granular radius across all
// cells — the uniform movement budget a conservative protocol may adopt.
func (d *Diagram) MinGranularRadius() float64 {
	minR := math.Inf(1)
	for _, c := range d.cells {
		if c.Granular.R < minR {
			minR = c.Granular.R
		}
	}
	return minR
}

func makeCell(i int, sites []geom.Point, box geom.Polygon) Cell {
	site := sites[i]
	region := box
	nearest, nearestDist := -1, math.Inf(1)
	for j, other := range sites {
		if j == i {
			continue
		}
		// Half-plane of points closer to site than to other: the
		// perpendicular bisector directed so that site is on its left.
		region = region.Clip(geom.HalfPlane{Boundary: geom.PerpBisector(site, other)})
		if dist := site.Dist(other); dist < nearestDist {
			nearest, nearestDist = j, dist
		}
	}
	return Cell{
		Site:        site,
		Region:      region,
		Granular:    geom.Disc{Center: site, R: nearestDist / 2},
		NearestSite: nearest,
	}
}

func boundingBox(sites []geom.Point) geom.Polygon {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range sites {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	diam := math.Hypot(maxX-minX, maxY-minY)
	margin := boxMargin*diam + 1
	return geom.Box(minX-margin, minY-margin, maxX+margin, maxY+margin)
}
