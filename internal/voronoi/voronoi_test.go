package voronoi

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"waggle/internal/geom"
)

func TestNewErrors(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrTooFewSites) {
		t.Errorf("nil sites: err = %v, want ErrTooFewSites", err)
	}
	if _, err := New([]geom.Point{geom.Pt(0, 0)}); !errors.Is(err, ErrTooFewSites) {
		t.Errorf("one site: err = %v, want ErrTooFewSites", err)
	}
	_, err := New([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(0, 0)})
	var coincident *ErrCoincidentSites
	if !errors.As(err, &coincident) {
		t.Fatalf("coincident sites: err = %v, want ErrCoincidentSites", err)
	}
	if coincident.I != 0 || coincident.J != 2 {
		t.Errorf("coincident indices = (%d,%d), want (0,2)", coincident.I, coincident.J)
	}
}

func TestTwoSites(t *testing.T) {
	d, err := New([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)})
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := d.Cell(0), d.Cell(1)
	if !geom.ApproxEq(c0.Granular.R, 5) || !geom.ApproxEq(c1.Granular.R, 5) {
		t.Errorf("granular radii = %v, %v; want 5, 5", c0.Granular.R, c1.Granular.R)
	}
	if c0.NearestSite != 1 || c1.NearestSite != 0 {
		t.Errorf("nearest sites = %d, %d; want 1, 0", c0.NearestSite, c1.NearestSite)
	}
	// The bisector x=5 separates the cells.
	if !c0.Region.Contains(geom.Pt(2, 3)) || c0.Region.Contains(geom.Pt(8, 3)) {
		t.Error("cell 0 region is wrong")
	}
	if !c1.Region.Contains(geom.Pt(8, 3)) || c1.Region.Contains(geom.Pt(2, 3)) {
		t.Error("cell 1 region is wrong")
	}
}

func TestGridCells(t *testing.T) {
	// 3x3 unit grid: the centre cell is the unit square around (1,1)
	// (shrunk by half a unit on each side).
	var sites []geom.Point
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			sites = append(sites, geom.Pt(float64(x), float64(y)))
		}
	}
	d, err := New(sites)
	if err != nil {
		t.Fatal(err)
	}
	center := d.Cell(4) // (1,1)
	if !geom.ApproxEq(center.Region.Area(), 1) {
		t.Errorf("center cell area = %v, want 1", center.Region.Area())
	}
	if !geom.ApproxEq(center.Granular.R, 0.5) {
		t.Errorf("center granular radius = %v, want 0.5", center.Granular.R)
	}
}

func TestLocate(t *testing.T) {
	sites := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 10)}
	d, err := New(sites)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		p    geom.Point
		want int
	}{
		{"near 0", geom.Pt(1, 1), 0},
		{"near 1", geom.Pt(9, -1), 1},
		{"near 2", geom.Pt(5, 9), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := d.Locate(tt.p); got != tt.want {
				t.Errorf("Locate(%v) = %d, want %d", tt.p, got, tt.want)
			}
		})
	}
}

func TestMinGranularRadius(t *testing.T) {
	sites := []geom.Point{geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(100, 0)}
	d, err := New(sites)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.MinGranularRadius(); !geom.ApproxEq(got, 1) {
		t.Errorf("MinGranularRadius = %v, want 1", got)
	}
}

func randomSites(rng *rand.Rand, n int) []geom.Point {
	sites := make([]geom.Point, 0, n)
	for len(sites) < n {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		ok := true
		for _, q := range sites {
			if p.Dist(q) < 1e-3 {
				ok = false
				break
			}
		}
		if ok {
			sites = append(sites, p)
		}
	}
	return sites
}

// TestPrunedParity pins the grid-pruned construction to the brute-force
// twin: granular radii and nearest-site indices must match EXACTLY (bit
// for bit — the protocols consume these), and region polygons must match
// as vertex rings up to a cyclic rotation within 1e-9. Exact region
// bytes are unattainable: the full scan clips far sites against
// still-huge intermediate regions, and those intermediate crossing
// vertices shift the final floats by ~1e-13 and rotate the ring's
// starting vertex. newPruned is called directly so the small site
// counts exercise pruning even though New routes n < pruneMinSites to
// the scan.
func TestPrunedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{2, 3, 64, 512} {
		layouts := map[string][]geom.Point{"random": randomSites(rng, n)}
		if n >= 64 {
			// Clustered sites stress ring expansion and the fallback.
			clustered := make([]geom.Point, 0, n)
			for len(clustered) < n {
				cx, cy := rng.Float64()*100, rng.Float64()*100
				for k := 0; k < 8 && len(clustered) < n; k++ {
					p := geom.Pt(cx+rng.NormFloat64(), cy+rng.NormFloat64())
					ok := true
					for _, q := range clustered {
						if p.Dist(q) < 1e-3 {
							ok = false
						}
					}
					if ok {
						clustered = append(clustered, p)
					}
				}
			}
			layouts["clustered"] = clustered
		}
		for name, sites := range layouts {
			got, err := newPruned(sites)
			if err != nil {
				t.Fatalf("%s/n=%d: newPruned: %v", name, n, err)
			}
			want, err := NewBrute(sites)
			if err != nil {
				t.Fatalf("%s/n=%d: NewBrute: %v", name, n, err)
			}
			for i := 0; i < n; i++ {
				gc, wc := got.Cell(i), want.Cell(i)
				if gc.Granular.R != wc.Granular.R {
					t.Fatalf("%s/n=%d cell %d: granular %v != brute %v", name, n, i, gc.Granular.R, wc.Granular.R)
				}
				if gc.NearestSite != wc.NearestSite {
					t.Fatalf("%s/n=%d cell %d: nearest %d != brute %d", name, n, i, gc.NearestSite, wc.NearestSite)
				}
				gv, wv := gc.Region.Vertices(), wc.Region.Vertices()
				if len(gv) != len(wv) {
					t.Fatalf("%s/n=%d cell %d: %d vertices != brute %d", name, n, i, len(gv), len(wv))
				}
				if !ringsMatch(gv, wv, 1e-9) {
					t.Fatalf("%s/n=%d cell %d: region rings differ:\n%v\n%v", name, n, i, gv, wv)
				}
			}
		}
	}
}

// ringsMatch reports whether two vertex rings describe the same polygon:
// equal up to a cyclic rotation, each vertex within tol of its
// counterpart.
func ringsMatch(a, b []geom.Point, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	for shift := range b {
		ok := true
		for k := range a {
			if a[k].Dist(b[(k+shift)%len(b)]) > tol {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestPrunedCoincidentParity pins the grid coincidence check to the
// lexicographic pair the all-pairs scan reports.
func TestPrunedCoincidentParity(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	sites := randomSites(rng, 40)
	sites[31] = sites[7] // duplicate: scan order reports (7, 31)
	_, err := newPruned(sites)
	var coincident *ErrCoincidentSites
	if !errors.As(err, &coincident) {
		t.Fatalf("err = %v, want ErrCoincidentSites", err)
	}
	if coincident.I != 7 || coincident.J != 31 {
		t.Errorf("coincident indices = (%d,%d), want (7,31)", coincident.I, coincident.J)
	}
}

// Property: every site is inside its own cell, and the cell's region
// contains exactly the points nearest to the site.
func TestPropertyCellMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		sites := randomSites(rng, 3+rng.Intn(20))
		d, err := New(sites)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range d.Cells() {
			if !c.Region.Contains(c.Site) {
				t.Fatalf("trial %d: site %d not inside its own cell", trial, i)
			}
		}
		// Sample random points and cross-check nearest-site semantics.
		for s := 0; s < 50; s++ {
			p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
			nearest := d.Locate(p)
			for i, c := range d.Cells() {
				in := c.Region.Contains(p)
				if i == nearest && !in {
					// Allow boundary ambiguity: p must be within Eps of the
					// region of its nearest site.
					if c.Region.DistToBoundary(p) > 1e-6 && !in {
						t.Fatalf("trial %d: point %v not in nearest cell %d", trial, p, i)
					}
				}
				if i != nearest && in {
					// p is in a non-nearest cell: only legal on a boundary.
					dNear := sites[nearest].Dist(p)
					dThis := sites[i].Dist(p)
					if dThis-dNear > 1e-6 {
						t.Fatalf("trial %d: point %v in cell %d but nearer to %d", trial, p, i, nearest)
					}
				}
			}
		}
	}
}

// Property: the granular disc is inscribed in the cell (every sampled
// boundary point of the disc is inside the region) and maximal (radius
// equals half the nearest-site distance).
func TestPropertyGranularInscribedAndMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		sites := randomSites(rng, 2+rng.Intn(20))
		d, err := New(sites)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range d.Cells() {
			wantR := math.Inf(1)
			for j, q := range sites {
				if j != i {
					wantR = math.Min(wantR, c.Site.Dist(q)/2)
				}
			}
			if !geom.ApproxEq(c.Granular.R, wantR) {
				t.Fatalf("trial %d cell %d: granular R = %v, want %v", trial, i, c.Granular.R, wantR)
			}
			for k := 0; k < 16; k++ {
				theta := float64(k) / 16 * 2 * math.Pi
				p := c.Granular.PointAt(theta)
				// Shrink marginally to stay clear of boundary ties.
				p = c.Site.Lerp(p, 1-1e-9)
				if !c.Region.Contains(p) {
					t.Fatalf("trial %d cell %d: granular point %v escapes region", trial, i, p)
				}
			}
		}
	}
}

// Property: granulars of distinct robots are disjoint (collision
// avoidance): centre distance >= sum of radii.
func TestPropertyGranularsDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sites := randomSites(rng, 2+rng.Intn(15))
		d, err := New(sites)
		if err != nil {
			return false
		}
		for i := 0; i < d.Len(); i++ {
			for j := i + 1; j < d.Len(); j++ {
				gi, gj := d.Cell(i).Granular, d.Cell(j).Granular
				if gi.Center.Dist(gj.Center) < gi.R+gj.R-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: cell regions tile the sampled area — every sampled point
// belongs to at least one cell region.
func TestPropertyCellsCover(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sites := randomSites(rng, 12)
	d, err := New(sites)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 200; s++ {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		found := false
		for _, c := range d.Cells() {
			if c.Region.Contains(p) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point %v not covered by any cell", p)
		}
	}
}
