package voronoi

import (
	"fmt"
	"math/rand"
	"testing"

	"waggle/internal/geom"
)

func BenchmarkNew(b *testing.B) {
	for _, n := range []int{16, 64, 256, 512} {
		rng := rand.New(rand.NewSource(1))
		sites := randomSites(rng, n)
		b.Run(fmt.Sprintf("pruned/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// newPruned directly, so small n measures the pruned
				// path New would route to the scan.
				if _, err := newPruned(sites); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("brute/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewBrute(sites); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLocate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	d, err := New(randomSites(rng, 64))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Locate(geom.Pt(float64(i%100), float64(i%97)))
	}
}
