package voronoi

import (
	"waggle/internal/geom"
	"waggle/internal/spatial"
)

// dynRebuildFraction is the moved fraction above which Dynamic.Update
// abandons incremental cell maintenance for a full rebuild: past it the
// affected set approaches the whole diagram and the underlying grid's
// bucket balance degrades.
const dynRebuildFraction = 0.25

// Dynamic maintains a Voronoi diagram of a moving site set incrementally
// across updates. When few sites moved since the last Update, only the
// affected cells are recomputed: cell i is determined entirely by the
// sites within twice its covering radius R_i (a site farther than 2R_i
// has its bisector farther than R_i from the site, so it cannot cut the
// region, and the granular disc is inscribed in the region), so cell i
// is re-derived iff site i itself moved or a dirty grid cell — one a
// site left, entered, or moved within — intersects the disc of radius
// 2R_i around the site. Recomputed and cached cells alike carry exactly
// the bytes a from-scratch pruned construction (New at this size)
// produces: recomputation runs the same makeCellPruned over the same
// sites and box, and a cached cell's entire clip-relevant site set is
// certified unmoved.
//
// Updates that change the site count, move the bounding box (the box
// enters every region's clip sequence), or move more than
// dynRebuildFraction of the sites fall back to the full construction.
// Sets below pruneMinSites are always rebuilt in full — at that size the
// diagram is cheaper than the bookkeeping.
type Dynamic struct {
	sites []geom.Point // owned copy, referenced by grid
	diag  *Diagram
	grid  *spatial.Grid // nil below pruneMinSites
	cover []float64     // per-cell covering radius FarthestVertexDist(site)
	moved []int32       // diff scratch
	flag  []bool        // moved-site marks, cleared per update
	sc    cellScratch
	// bounding box of the sites at the last full or incremental update
	bx0, by0, bx1, by1 float64
	stale              bool // a failed update left cells out of sync
}

// NewDynamic computes the diagram of sites and returns a tracker primed
// for incremental updates. The slice is copied.
func NewDynamic(sites []geom.Point) (*Dynamic, error) {
	dy := &Dynamic{sites: append([]geom.Point(nil), sites...)}
	if err := dy.full(); err != nil {
		return nil, err
	}
	return dy, nil
}

// Diagram returns the current diagram. It is invalidated by the next
// Update (cells are refreshed in place); callers must copy what they
// keep.
func (dy *Dynamic) Diagram() *Diagram { return dy.diag }

// Update moves the tracked sites and returns the refreshed diagram,
// cell-for-cell identical to a fresh New over the same slice. On a
// coincident-site error the tracker stays usable — the next successful
// Update rebuilds in full.
func (dy *Dynamic) Update(sites []geom.Point) (*Diagram, error) {
	if len(sites) != len(dy.sites) {
		dy.sites = append(dy.sites[:0], sites...)
		if err := dy.full(); err != nil {
			return nil, err
		}
		return dy.diag, nil
	}
	moved := dy.moved[:0]
	for i := range sites {
		if sites[i] != dy.sites[i] {
			moved = append(moved, int32(i))
		}
	}
	dy.moved = moved
	if len(moved) == 0 && !dy.stale {
		return dy.diag, nil
	}
	n := len(sites)
	bx0, by0, bx1, by1 := siteBounds(sites)
	switch {
	case dy.stale,
		dy.grid == nil,
		float64(len(moved)) > dynRebuildFraction*float64(n),
		dy.grid.MovedFraction() > dynRebuildFraction,
		bx0 != dy.bx0 || by0 != dy.by0 || bx1 != dy.bx1 || by1 != dy.by1:
		copy(dy.sites, sites)
		if err := dy.full(); err != nil {
			return nil, err
		}
		return dy.diag, nil
	}
	for _, i := range moved {
		// Move updates dy.sites[i] — the grid references the slice.
		dy.grid.Move(int(i), dy.sites[i], sites[i])
		dy.flag[i] = true
	}
	if i, j, found := dy.movedCoincidence(); found {
		// Leave the moves applied (the diff is relative to dy.sites) but
		// mark every cell untrusted until a full rebuild succeeds.
		dy.stale = true
		dy.grid.ClearDirty()
		dy.clearFlags()
		return nil, &ErrCoincidentSites{I: i, J: j}
	}
	box := dy.diag.box
	for i := range dy.sites {
		if !dy.flag[i] {
			r := 2 * dy.cover[i]
			if !dy.grid.DirtyWithin(dy.sites[i], r+geom.Eps*(1+r)) {
				continue
			}
		}
		cell, ok := makeCellPruned(i, dy.sites, box, dy.grid, &dy.sc)
		if !ok {
			cell = makeCell(i, dy.sites, box)
		}
		dy.diag.cells[i] = cell
		dy.cover[i] = cell.Region.FarthestVertexDist(cell.Site)
	}
	dy.grid.ClearDirty()
	dy.clearFlags()
	return dy.diag, nil
}

// movedCoincidence scans the moved sites' neighborhoods for coincident
// pairs and returns the lexicographically smallest — the same pair the
// ascending all-pairs scan reports, because every new coincidence
// involves at least one moved site (the previous configuration was
// coincidence-free).
func (dy *Dynamic) movedCoincidence() (int, int, bool) {
	bi, bj := -1, -1
	for _, m := range dy.moved {
		mi := int(m)
		dy.grid.VisitNeighborhood(dy.sites[mi], geom.Eps, func(j int, d float64) {
			if j == mi || d > geom.Eps {
				return
			}
			lo, hi := mi, j
			if lo > hi {
				lo, hi = hi, lo
			}
			if bi < 0 || lo < bi || (lo == bi && hi < bj) {
				bi, bj = lo, hi
			}
		})
	}
	return bi, bj, bi >= 0
}

func (dy *Dynamic) clearFlags() {
	for _, i := range dy.moved {
		dy.flag[i] = false
	}
}

// full rebuilds everything from the tracked site slice. Small sets go
// through New (which picks the brute scan); large sets run the pruned
// construction over the persistent grid so its buffers stay warm.
func (dy *Dynamic) full() error {
	n := len(dy.sites)
	if n < 2 {
		dy.grid = nil
		dy.stale = true
		return ErrTooFewSites
	}
	if len(dy.flag) != n {
		dy.flag = make([]bool, n)
	}
	dy.bx0, dy.by0, dy.bx1, dy.by1 = siteBounds(dy.sites)
	if n < pruneMinSites {
		dy.grid = nil
		dy.cover = dy.cover[:0]
		d, err := New(dy.sites)
		if err != nil {
			dy.stale = true
			return err
		}
		dy.diag = d
		dy.stale = false
		return nil
	}
	if dy.grid == nil {
		dy.grid = spatial.NewGrid(dy.sites)
	} else {
		dy.grid.Rebuild(dy.sites)
	}
	g := dy.grid
	for i := 0; i < n; i++ {
		minJ := -1
		g.VisitNeighborhood(dy.sites[i], geom.Eps, func(j int, d float64) {
			if j > i && d <= geom.Eps && (minJ < 0 || j < minJ) {
				minJ = j
			}
		})
		if minJ >= 0 {
			dy.stale = true
			return &ErrCoincidentSites{I: i, J: minJ}
		}
	}
	box := boundingBox(dy.sites)
	if dy.diag == nil || len(dy.diag.cells) != n {
		dy.diag = &Diagram{cells: make([]Cell, n)}
	}
	dy.diag.box = box
	if len(dy.cover) != n {
		dy.cover = make([]float64, n)
	}
	for i := range dy.sites {
		cell, ok := makeCellPruned(i, dy.sites, box, g, &dy.sc)
		if !ok {
			cell = makeCell(i, dy.sites, box)
		}
		dy.diag.cells[i] = cell
		dy.cover[i] = cell.Region.FarthestVertexDist(cell.Site)
	}
	dy.stale = false
	return nil
}

// siteBounds returns the axis-aligned bounds of the sites; any change
// moves the clipping box, which enters every region, so Update falls
// back to a full rebuild.
func siteBounds(sites []geom.Point) (x0, y0, x1, y1 float64) {
	x0, y0 = sites[0].X, sites[0].Y
	x1, y1 = x0, y0
	for _, p := range sites[1:] {
		if p.X < x0 {
			x0 = p.X
		}
		if p.X > x1 {
			x1 = p.X
		}
		if p.Y < y0 {
			y0 = p.Y
		}
		if p.Y > y1 {
			y1 = p.Y
		}
	}
	return
}
