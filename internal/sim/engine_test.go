package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"waggle/internal/geom"
)

// driftBehavior is a deterministic stateful behavior: each activation
// it walks towards a point derived from its observation count and the
// centroid of the view, exercising both view contents and private
// state.
type driftBehavior struct {
	calls int
}

func (d *driftBehavior) Step(v View) geom.Point {
	d.calls++
	var cx, cy float64
	for _, p := range v.Points {
		cx += p.X
		cy += p.Y
	}
	n := float64(len(v.Points))
	angle := float64(d.calls) * 0.7
	return geom.Pt(cx/n+math.Cos(angle)*0.5, cy/n+math.Sin(angle)*0.5)
}

func engineWorld(t *testing.T, n int, mode EngineMode, seed int64) *World {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	positions := make([]geom.Point, 0, n)
	for len(positions) < n {
		p := geom.Pt(rng.Float64()*float64(n)*10, rng.Float64()*float64(n)*10)
		ok := true
		for _, q := range positions {
			if p.Dist(q) < 4 {
				ok = false
				break
			}
		}
		if ok {
			positions = append(positions, p)
		}
	}
	robots := make([]*Robot, n)
	for i := range robots {
		robots[i] = &Robot{
			Frame:    geom.NewFrame(geom.Point{}, rng.Float64()*2*math.Pi, 1, geom.RightHanded),
			Sigma:    2,
			Behavior: &driftBehavior{},
		}
	}
	w, err := NewWorld(Config{Positions: positions, Robots: robots, RecordTrace: true, Engine: mode})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestEngineParity pins the tentpole guarantee: sequential and parallel
// engines produce byte-for-byte identical executions — same moves, same
// per-instant configurations — for the same seed and scheduler.
func TestEngineParity(t *testing.T) {
	const n, steps = 48, 200 // above parallelMinActive so EngineParallel really fans out
	for _, scheduler := range []Scheduler{Synchronous{}, FirstSync{Inner: NewRandomFair(7)}} {
		seq := engineWorld(t, n, EngineSequential, 99)
		par := engineWorld(t, n, EngineParallel, 99)
		// Random-fair schedulers are stateful: give each world its own.
		seqSched, parSched := scheduler, scheduler
		if _, ok := scheduler.(FirstSync); ok {
			seqSched = FirstSync{Inner: NewRandomFair(7)}
			parSched = FirstSync{Inner: NewRandomFair(7)}
		}
		for s := 0; s < steps; s++ {
			if _, err := seq.Step(seqSched); err != nil {
				t.Fatal(err)
			}
			if _, err := par.Step(parSched); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			if seq.Position(i) != par.Position(i) {
				t.Fatalf("robot %d diverged: sequential %v, parallel %v", i, seq.Position(i), par.Position(i))
			}
		}
		seqMoves, parMoves := seq.Trace().Moves(), par.Trace().Moves()
		if len(seqMoves) != len(parMoves) {
			t.Fatalf("move counts diverged: %d vs %d", len(seqMoves), len(parMoves))
		}
		for i := range seqMoves {
			if seqMoves[i] != parMoves[i] {
				t.Fatalf("move %d diverged: %+v vs %+v", i, seqMoves[i], parMoves[i])
			}
		}
	}
}

// TestEngineAutoMatchesSequential checks the default adaptive mode
// computes the same execution as forced-sequential.
func TestEngineAutoMatchesSequential(t *testing.T) {
	auto := engineWorld(t, 40, EngineAuto, 3)
	seq := engineWorld(t, 40, EngineSequential, 3)
	for s := 0; s < 100; s++ {
		if _, err := auto.Step(Synchronous{}); err != nil {
			t.Fatal(err)
		}
		if _, err := seq.Step(Synchronous{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < auto.N(); i++ {
		if auto.Position(i) != seq.Position(i) {
			t.Fatalf("robot %d diverged under EngineAuto", i)
		}
	}
}

func TestEngineModeString(t *testing.T) {
	for mode, want := range map[EngineMode]string{
		EngineAuto:       "auto",
		EngineSequential: "sequential",
		EngineParallel:   "parallel",
		EngineMode(9):    "EngineMode(9)",
	} {
		if got := mode.String(); got != want {
			t.Errorf("EngineMode(%d).String() = %q, want %q", int(mode), got, want)
		}
	}
}

func TestSetEngine(t *testing.T) {
	w := engineWorld(t, 4, EngineAuto, 1)
	if w.Engine() != EngineAuto {
		t.Fatalf("initial engine %v", w.Engine())
	}
	w.SetEngine(EngineParallel)
	if w.Engine() != EngineParallel {
		t.Fatalf("engine after SetEngine = %v", w.Engine())
	}
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
}

// TestNonFiniteDestinationRejected pins the satellite fix: a behavior
// returning NaN or infinite coordinates must yield a descriptive error,
// not a silently corrupted configuration (NaN survives the sigma clamp
// because every comparison with NaN is false).
func TestNonFiniteDestinationRejected(t *testing.T) {
	for name, bad := range map[string]geom.Point{
		"nan-x":  geom.Pt(math.NaN(), 0),
		"nan-y":  geom.Pt(0, math.NaN()),
		"inf-x":  geom.Pt(math.Inf(1), 0),
		"-inf-y": geom.Pt(0, math.Inf(-1)),
	} {
		t.Run(name, func(t *testing.T) {
			for _, mode := range []EngineMode{EngineSequential, EngineParallel} {
				w, err := NewWorld(Config{
					Positions: []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)},
					Robots: []*Robot{
						{Frame: geom.WorldFrame(), Sigma: 1, Behavior: BehaviorFunc(func(View) geom.Point { return bad })},
						{Frame: geom.WorldFrame(), Sigma: 1, Behavior: BehaviorFunc(func(View) geom.Point { return geom.Pt(0, 0) })},
					},
					Engine: mode,
				})
				if err != nil {
					t.Fatal(err)
				}
				_, err = w.Step(Synchronous{})
				if err == nil {
					t.Fatalf("engine %v accepted non-finite destination %v", mode, bad)
				}
				if !strings.Contains(err.Error(), "robot 0") || !strings.Contains(err.Error(), "non-finite") {
					t.Errorf("engine %v: undescriptive error %v", mode, err)
				}
				// The configuration must be untouched.
				if w.Position(0) != geom.Pt(0, 0) || w.Position(1) != geom.Pt(10, 0) {
					t.Errorf("engine %v: configuration corrupted: %v %v", mode, w.Position(0), w.Position(1))
				}
			}
		})
	}
}

type duplicatingScheduler struct{}

func (duplicatingScheduler) Next(_, n int) []int { return []int{0, 1, 0} }

// TestDuplicateActivationRejected: a scheduler activating the same
// robot twice in one instant would race in the parallel engine (two
// workers sharing one scratch slot), so both engines reject it.
func TestDuplicateActivationRejected(t *testing.T) {
	w := engineWorld(t, 3, EngineSequential, 5)
	if _, err := w.Step(duplicatingScheduler{}); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate activation err = %v", err)
	}
	// The detector state must be cleared: a valid step still works.
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatalf("step after rejected activation: %v", err)
	}
}

// TestBehaviorPanicInParallelWorker: a panic inside a worker goroutine
// must surface as an error, not kill the process.
func TestBehaviorPanicInParallelWorker(t *testing.T) {
	positions := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 10)}
	robots := make([]*Robot, 3)
	for i := range robots {
		i := i
		robots[i] = &Robot{Frame: geom.WorldFrame(), Sigma: 1, Behavior: BehaviorFunc(func(v View) geom.Point {
			if i == 2 {
				panic("boom")
			}
			return v.Points[v.Self]
		})}
	}
	w, err := NewWorld(Config{Positions: positions, Robots: robots, Engine: EngineParallel})
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.Step(Synchronous{})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic surfaced as %v", err)
	}
}

// TestBehaviorPanicParityAcrossEngines pins the satellite fix: the
// sequential branch used to call computeMove unwrapped, so a behavior
// panic crashed the process under EngineSequential but surfaced as a
// per-robot error under EngineParallel. All three modes must now yield
// the identical error and leave the configuration untouched.
func TestBehaviorPanicParityAcrossEngines(t *testing.T) {
	build := func(mode EngineMode, compact bool) *World {
		const n = 64 // >= parallelMinActive and viewIndexMinN
		positions := make([]geom.Point, n)
		robots := make([]*Robot, n)
		for i := range positions {
			positions[i] = geom.Pt(float64(i%8)*10, float64(i/8)*10)
			i := i
			robots[i] = &Robot{Frame: geom.WorldFrame(), Sigma: 1, VisRadius: 25, Behavior: BehaviorFunc(func(v View) geom.Point {
				if i == 17 {
					panic("boom")
				}
				return v.Points[v.Self]
			})}
		}
		w, err := NewWorld(Config{Positions: positions, Robots: robots, Engine: mode})
		if err != nil {
			t.Fatal(err)
		}
		w.SetCompactViews(compact)
		return w
	}
	for _, compact := range []bool{false, true} {
		var errs []string
		for _, mode := range []EngineMode{EngineSequential, EngineParallel, EngineAuto} {
			w := build(mode, compact)
			before := w.Positions()
			_, err := w.Step(Synchronous{})
			if err == nil {
				t.Fatalf("engine %v (compact=%v): behavior panic did not surface", mode, compact)
			}
			if !strings.Contains(err.Error(), "robot 17 behavior panicked: boom") {
				t.Fatalf("engine %v (compact=%v): wrong error %v", mode, compact, err)
			}
			for i, p := range w.Positions() {
				if p != before[i] {
					t.Fatalf("engine %v (compact=%v): configuration moved despite error", mode, compact)
				}
			}
			errs = append(errs, err.Error())
		}
		for _, e := range errs[1:] {
			if e != errs[0] {
				t.Fatalf("compact=%v: errors diverge across modes: %q vs %q", compact, errs[0], e)
			}
		}
	}
}

// visCentroidBehavior walks toward the centroid of the robots it can
// see, reading the view through either layout — dense (skip invisible
// slots) or compact (every slot is visible). Both layouts enumerate the
// visible robots ascending by robot index, so the float accumulation
// order, and hence the destination, is bit-identical.
type visCentroidBehavior struct{ calls int }

func (b *visCentroidBehavior) Step(v View) geom.Point {
	b.calls++
	var cx, cy float64
	n := 0
	for k, p := range v.Points {
		if v.Indices == nil && v.Visible != nil && !v.Visible[k] {
			continue
		}
		cx += p.X
		cy += p.Y
		n++
	}
	angle := float64(b.calls) * 1.3
	return geom.Pt(cx/float64(n)+math.Cos(angle), cy/float64(n)+math.Sin(angle))
}

// limitedWorld builds a jittered-grid swarm with bounded sensors.
func limitedWorld(t *testing.T, n int, mode EngineMode, vis float64, compact bool, seed int64) *World {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	side := int(math.Ceil(math.Sqrt(float64(n))))
	positions := make([]geom.Point, n)
	robots := make([]*Robot, n)
	for i := range positions {
		positions[i] = geom.Pt(float64(i%side)*8+rng.Float64()*3, float64(i/side)*8+rng.Float64()*3)
		robots[i] = &Robot{
			Frame:     geom.NewFrame(geom.Point{}, rng.Float64()*2*math.Pi, 1, geom.RightHanded),
			Sigma:     2,
			VisRadius: vis,
			Behavior:  &visCentroidBehavior{},
		}
	}
	w, err := NewWorld(Config{Positions: positions, Robots: robots, Engine: mode})
	if err != nil {
		t.Fatal(err)
	}
	w.SetCompactViews(compact)
	return w
}

// TestCompactViewParity pins the compact-view guarantee: a compact world
// computes the identical trajectory to a dense one — across engine
// modes (per-robot and cell-batched construction) and with the spatial
// index disabled (the brute compact path).
func TestCompactViewParity(t *testing.T) {
	const n, steps = 150, 120
	ref := limitedWorld(t, n, EngineSequential, 20, false, 42)
	variants := map[string]*World{
		"compact-seq":     limitedWorld(t, n, EngineSequential, 20, true, 42),
		"compact-par":     limitedWorld(t, n, EngineParallel, 20, true, 42),
		"compact-noindex": limitedWorld(t, n, EngineSequential, 20, true, 42),
		"dense-par":       limitedWorld(t, n, EngineParallel, 20, false, 42),
	}
	variants["compact-noindex"].SetViewIndexing(false)
	refSched := NewRandomFair(9)
	scheds := map[string]*RandomFair{}
	for name := range variants {
		scheds[name] = NewRandomFair(9)
	}
	for s := 0; s < steps; s++ {
		if _, err := ref.Step(refSched); err != nil {
			t.Fatal(err)
		}
		for name, w := range variants {
			if _, err := w.Step(scheds[name]); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	for name, w := range variants {
		for i := 0; i < n; i++ {
			if w.Position(i) != ref.Position(i) {
				t.Fatalf("%s: robot %d diverged: %v vs dense %v", name, i, w.Position(i), ref.Position(i))
			}
		}
	}
}

// TestIncrementalGridParity drives the incremental grid maintenance
// end-to-end: partial activations (few robots move per instant, so
// prepareStep splices instead of rebuilding), a mid-run teleport, and a
// mid-run engine switch must all leave the trajectory bit-identical to
// a world with the index disabled entirely.
func TestIncrementalGridParity(t *testing.T) {
	const n, steps = 200, 250
	indexed := limitedWorld(t, n, EngineSequential, 24, false, 7)
	brute := limitedWorld(t, n, EngineSequential, 24, false, 7)
	brute.SetViewIndexing(false)
	si, sb := NewRandomFair(13), NewRandomFair(13)
	for s := 0; s < steps; s++ {
		if s == 100 {
			// A teleport breaks the moved-robots diff's "only active
			// robots moved" shortcut; the diff must catch it.
			if err := indexed.Teleport(3, geom.Pt(-50, -50)); err != nil {
				t.Fatal(err)
			}
			if err := brute.Teleport(3, geom.Pt(-50, -50)); err != nil {
				t.Fatal(err)
			}
		}
		if s == 170 {
			indexed.SetEngine(EngineParallel)
			brute.SetEngine(EngineParallel)
		}
		if _, err := indexed.Step(si); err != nil {
			t.Fatal(err)
		}
		if _, err := brute.Step(sb); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if indexed.Position(i) != brute.Position(i) {
				t.Fatalf("step %d: robot %d diverged: indexed %v, brute %v", s, i, indexed.Position(i), brute.Position(i))
			}
		}
	}
}

// TestGridRetainedAcrossIndexingToggle pins the buffer-reuse satellite
// fix: prepareStep used to nil the grid whenever indexing did not apply,
// discarding its warmed CSR buffers; now the object survives toggles of
// SetViewIndexing and of the robots' sensor radii.
func TestGridRetainedAcrossIndexingToggle(t *testing.T) {
	w := limitedWorld(t, 64, EngineSequential, 20, false, 11)
	step := func() {
		t.Helper()
		if _, err := w.Step(Synchronous{}); err != nil {
			t.Fatal(err)
		}
	}
	step()
	g := w.viewIndex
	if g == nil || !w.viewIndexActive {
		t.Fatal("no active grid after a limited-visibility step")
	}
	w.SetViewIndexing(false)
	step()
	if w.viewIndex != g {
		t.Fatal("grid discarded while indexing was off")
	}
	if w.viewIndexActive {
		t.Fatal("viewIndexActive while indexing is off")
	}
	w.SetViewIndexing(true)
	step()
	if w.viewIndex != g || !w.viewIndexActive {
		t.Fatal("grid not reused after re-enabling indexing")
	}
	// Toggling visibility itself (VisRadius edits) keeps it too.
	for i := 0; i < w.N(); i++ {
		w.Robot(i).VisRadius = 0
	}
	step()
	if w.viewIndex != g || w.viewIndexActive {
		t.Fatal("grid handling wrong after visibility removed")
	}
	for i := 0; i < w.N(); i++ {
		w.Robot(i).VisRadius = 20
	}
	step()
	if w.viewIndex != g || !w.viewIndexActive {
		t.Fatal("grid not reused after visibility restored")
	}
}

// TestCoincidentCheckGridParity: the grid-backed distinctness check of
// large configurations must report the same pair as the ascending
// all-pairs scan.
func TestCoincidentCheckGridParity(t *testing.T) {
	const n = 300 // >= coincidentGridMinN
	mk := func() []geom.Point {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(float64(i%20)*5, float64(i/20)*5)
		}
		return pts
	}
	pts := mk()
	pts[120] = pts[37]
	pts[205] = pts[37] // two coincident partners; the scan reports the smaller j
	robots := make([]*Robot, n)
	for i := range robots {
		robots[i] = &Robot{Frame: geom.WorldFrame(), Sigma: 1, Behavior: BehaviorFunc(func(v View) geom.Point { return v.Points[v.Self] })}
	}
	_, err := NewWorld(Config{Positions: pts, Robots: robots})
	if err == nil || !strings.Contains(err.Error(), "robots 37 and 120") {
		t.Fatalf("grid coincidence check reported %v, want robots 37 and 120", err)
	}
	// Distinct large configurations must pass.
	if _, err := NewWorld(Config{Positions: mk(), Robots: robots}); err != nil {
		t.Fatalf("distinct configuration rejected: %v", err)
	}
}

// TestStepAllocationFree pins the buffer-reuse goal: after warm-up, a
// sequential step of a plain (untraced, anonymous, unlimited-vision)
// world performs zero heap allocations in the engine itself.
func TestStepAllocationFree(t *testing.T) {
	n := 32
	positions := make([]geom.Point, n)
	robots := make([]*Robot, n)
	for i := range positions {
		positions[i] = geom.Pt(float64(i)*10, 0)
		robots[i] = &Robot{Frame: geom.WorldFrame(), Sigma: 1, Behavior: BehaviorFunc(func(v View) geom.Point {
			return v.Points[v.Self]
		})}
	}
	w, err := NewWorld(Config{Positions: positions, Robots: robots, Engine: EngineSequential})
	if err != nil {
		t.Fatal(err)
	}
	sched := Synchronous{}
	if _, err := w.Step(sched); err != nil { // warm up scratch buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := w.Step(sched); err != nil {
			t.Fatal(err)
		}
	})
	// The scheduler allocates its activation slice; the engine itself
	// must add nothing beyond it.
	if allocs > 1 {
		t.Errorf("Step allocates %.1f objects/op after warm-up, want <= 1", allocs)
	}
}

// TestViewScratchReusedAcrossActivations documents the scratch-buffer
// contract: the view slices a robot receives are stable between its own
// activations and are rewritten at the next one.
func TestViewScratchReusedAcrossActivations(t *testing.T) {
	var first, second []geom.Point
	calls := 0
	b := BehaviorFunc(func(v View) geom.Point {
		calls++
		switch calls {
		case 1:
			first = v.Points
		case 2:
			second = v.Points
		}
		return v.Points[v.Self]
	})
	w, err := NewWorld(Config{
		Positions: []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)},
		Robots: []*Robot{
			{Frame: geom.WorldFrame(), Sigma: 1, Behavior: b},
			{Frame: geom.WorldFrame(), Sigma: 1, Behavior: BehaviorFunc(func(v View) geom.Point { return v.Points[v.Self] })},
		},
		Engine: EngineSequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		if _, err := w.Step(Synchronous{}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 2 {
		t.Fatalf("behavior called %d times", calls)
	}
	if &first[0] != &second[0] {
		t.Error("view buffers were reallocated instead of reused")
	}
}
