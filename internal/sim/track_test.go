package sim

import (
	"errors"
	"math/rand"
	"testing"

	"waggle/internal/geom"
)

// TestAttributeBoundaryRule pins the documented boundary rule: a point
// exactly on a granular boundary (and within the epsilon slack beyond
// it) attributes to that home; a point clearly beyond the slack errors.
func TestAttributeBoundaryRule(t *testing.T) {
	tr := NewTracker(
		[]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)},
		[]float64{2, 3},
	)
	cases := []struct {
		name    string
		p       geom.Point
		want    int
		wantErr bool
	}{
		{"centre", geom.Pt(0, 0), 0, false},
		{"interior", geom.Pt(1.5, 0), 0, false},
		{"exactly on boundary", geom.Pt(2, 0), 0, false},
		{"within eps slack", geom.Pt(2+geom.Eps, 0), 0, false},
		{"beyond slack", geom.Pt(2.5, 0), 0, true},
		{"second home boundary", geom.Pt(7, 0), 1, false},
		{"between granulars", geom.Pt(4.5, 0), 0, true},
	}
	for _, tc := range cases {
		got, err := tr.Attribute(tc.p)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: Attribute(%v) = %d, want error", tc.name, tc.p, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: Attribute(%v) error: %v", tc.name, tc.p, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: Attribute(%v) = %d, want %d", tc.name, tc.p, got, tc.want)
		}
	}
}

// TestAttributeTieBreaks pins the overlap rules: when the epsilon slack
// puts a point inside several inflated granulars, the smaller centre
// distance wins, and an exact distance tie goes to the lowest index.
func TestAttributeTieBreaks(t *testing.T) {
	// Two granulars of radius 1 whose boundaries touch at (1, 0): the
	// touching point is inside both inflated granulars.
	tr := NewTracker(
		[]geom.Point{geom.Pt(0, 0), geom.Pt(2, 0)},
		[]float64{1, 1},
	)
	// Equidistant from both centres: exact tie, lowest index wins.
	if got, err := tr.Attribute(geom.Pt(1, 0)); err != nil || got != 0 {
		t.Errorf("touching point: got (%d, %v), want (0, nil)", got, err)
	}
	// Order must not matter for the tie: same geometry, homes swapped —
	// still the lowest index (of the swapped tracker).
	sw := NewTracker(
		[]geom.Point{geom.Pt(2, 0), geom.Pt(0, 0)},
		[]float64{1, 1},
	)
	if got, err := sw.Attribute(geom.Pt(1, 0)); err != nil || got != 0 {
		t.Errorf("touching point, swapped homes: got (%d, %v), want (0, nil)", got, err)
	}
	// Nudged toward home 1: smaller centre distance wins over index.
	if got, err := tr.Attribute(geom.Pt(1+1e-14, 0)); err != nil || got != 1 {
		t.Errorf("nudged point: got (%d, %v), want (1, nil)", got, err)
	}
}

// TestAttributionErrorFields checks the structured error: it names the
// offending point, the nearest home, the distance and that home's
// radius, and unwraps to ErrUntrackable.
func TestAttributionErrorFields(t *testing.T) {
	tr := NewTracker(
		[]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)},
		[]float64{1, 2},
	)
	p := geom.Pt(6, 0) // 6 from home 0, 4 from home 1; outside both
	_, err := tr.Attribute(p)
	if err == nil {
		t.Fatal("expected attribution error")
	}
	if !errors.Is(err, ErrUntrackable) {
		t.Errorf("error %v does not unwrap to ErrUntrackable", err)
	}
	var ae *AttributionError
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not *AttributionError", err)
	}
	if ae.Point != p {
		t.Errorf("Point = %v, want %v", ae.Point, p)
	}
	if ae.NearestHome != 1 {
		t.Errorf("NearestHome = %d, want 1", ae.NearestHome)
	}
	if ae.Dist != 4 {
		t.Errorf("Dist = %v, want 4", ae.Dist)
	}
	if ae.Radius != 2 {
		t.Errorf("Radius = %v, want 2", ae.Radius)
	}
	if ae.Error() == "" {
		t.Error("empty error string")
	}
}

// TestAttributeGridMatchesScan compares attribution above the indexing
// threshold (grid path) with a hand-rolled direct scan applying the same
// boundary rule, over on-granular, boundary, and stray query points.
func TestAttributeGridMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{trackerIndexMinN, 100, 300} {
		homes := make([]geom.Point, n)
		for i := range homes {
			homes[i] = geom.Pt(rng.Float64()*200, rng.Float64()*200)
		}
		tr := NewTrackerFromConfig(homes)
		if tr.index == nil {
			t.Fatalf("n=%d: expected indexed tracker", n)
		}
		scan := func(p geom.Point) (int, bool) {
			best, bestDist := -1, 0.0
			for i, h := range homes {
				d := p.Dist(h)
				if d <= inflatedRadius(tr.Radius(i)) {
					if best < 0 || d < bestDist || (d == bestDist && i < best) {
						best, bestDist = i, d
					}
				}
			}
			return best, best >= 0
		}
		queries := make([]geom.Point, 0, 3*n)
		for i := 0; i < n; i++ {
			r := tr.Radius(i)
			// Interior, exact boundary, and just-outside points.
			queries = append(queries,
				geom.Pt(homes[i].X+r/3, homes[i].Y),
				geom.Pt(homes[i].X+r, homes[i].Y),
				geom.Pt(homes[i].X, homes[i].Y+r*1.5),
			)
		}
		for _, p := range queries {
			want, ok := scan(p)
			got, err := tr.Attribute(p)
			if ok {
				if err != nil {
					t.Fatalf("n=%d: Attribute(%v) error %v, scan found home %d", n, p, err, want)
				}
				if got != want {
					t.Fatalf("n=%d: Attribute(%v) = %d, scan = %d", n, p, got, want)
				}
			} else if err == nil {
				t.Fatalf("n=%d: Attribute(%v) = %d, scan found none", n, p, got)
			}
		}
	}
}

// TestAttributionErrorNearestWithGrid checks that the indexed error path
// still reports the true nearest home even when it lies outside the
// query neighborhood.
func TestAttributionErrorNearestWithGrid(t *testing.T) {
	n := trackerIndexMinN + 8
	homes := make([]geom.Point, n)
	for i := range homes {
		homes[i] = geom.Pt(float64(i)*10, 0)
	}
	tr := NewTrackerFromConfig(homes)
	if tr.index == nil {
		t.Fatal("expected indexed tracker")
	}
	// Far above home 5: way outside every granular (radius 5 each) and
	// outside the maxReach neighborhood around the query point.
	p := geom.Pt(50, 100)
	_, err := tr.Attribute(p)
	var ae *AttributionError
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not *AttributionError", err)
	}
	if ae.NearestHome != 5 {
		t.Errorf("NearestHome = %d, want 5", ae.NearestHome)
	}
	if ae.Dist != 100 {
		t.Errorf("Dist = %v, want 100", ae.Dist)
	}
}

// TestEmptyTrackerAttribution pins the empty-tracker error shape.
func TestEmptyTrackerAttribution(t *testing.T) {
	tr := NewTracker(nil, nil)
	_, err := tr.Attribute(geom.Pt(1, 2))
	var ae *AttributionError
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not *AttributionError", err)
	}
	if ae.NearestHome != -1 {
		t.Errorf("NearestHome = %d, want -1", ae.NearestHome)
	}
	if !errors.Is(err, ErrUntrackable) {
		t.Error("empty-tracker error does not unwrap to ErrUntrackable")
	}
	if ae.Error() == "" {
		t.Error("empty error string")
	}
}
