package sim

import (
	"math"
	"strings"
	"testing"

	"waggle/internal/geom"
)

// marcher moves one unit along +x every activation.
type marcher struct{}

func (marcher) Step(v View) geom.Point { return v.Points[v.Self].Add(geom.V(1, 0)) }

func injectWorld(t *testing.T, n int) *World {
	t.Helper()
	positions := make([]geom.Point, n)
	robots := make([]*Robot, n)
	for i := range positions {
		positions[i] = geom.Pt(float64(i)*10, 0)
		robots[i] = &Robot{Frame: geom.WorldFrame(), Sigma: 1e9, Behavior: marcher{}}
	}
	w, err := NewWorld(Config{Positions: positions, Robots: robots})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// scriptInjector records the hook call order and applies scripted
// transformations.
type scriptInjector struct {
	log        []string
	filter     func(t int, active []int) []int
	viewShift  geom.Vec
	moveScale  float64
	badDest    bool
	sawPerturb bool
}

func (s *scriptInjector) BeginStep(t int, w *World) { s.log = append(s.log, "begin") }

func (s *scriptInjector) FilterActive(t int, active []int) []int {
	s.log = append(s.log, "filter")
	if s.filter != nil {
		return s.filter(t, active)
	}
	return active
}

func (s *scriptInjector) PerturbView(t, observer int, frame geom.Frame, view View) View {
	s.log = append(s.log, "view")
	s.sawPerturb = true
	for j := range view.Points {
		if j != view.Self {
			view.Points[j] = view.Points[j].Add(s.viewShift)
		}
	}
	return view
}

func (s *scriptInjector) PerturbMove(t, robot int, from, dest geom.Point) geom.Point {
	s.log = append(s.log, "move")
	if s.badDest {
		return geom.Pt(math.NaN(), 0)
	}
	if s.moveScale != 0 {
		return from.Add(dest.Sub(from).Scale(s.moveScale))
	}
	return dest
}

func TestInjectorHookOrder(t *testing.T) {
	w := injectWorld(t, 2)
	inj := &scriptInjector{}
	w.SetInjector(inj)
	if w.Injector() != inj {
		t.Fatal("Injector accessor broken")
	}
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(inj.log, " ")
	want := "begin filter view view move move"
	if got != want {
		t.Errorf("hook order %q, want %q", got, want)
	}
}

func TestInjectorCrashStopsEverything(t *testing.T) {
	w := injectWorld(t, 3)
	inj := &scriptInjector{filter: func(tt int, active []int) []int {
		// Crash-stop robot 1 at every instant.
		out := active[:0]
		for _, i := range active {
			if i != 1 {
				out = append(out, i)
			}
		}
		return out
	}}
	w.SetInjector(inj)
	for k := 0; k < 4; k++ {
		active, err := w.Step(Synchronous{})
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range active {
			if i == 1 {
				t.Fatal("crashed robot reported active")
			}
		}
	}
	if got := w.Position(1); got != geom.Pt(10, 0) {
		t.Errorf("crashed robot moved to %v", got)
	}
	if got := w.Position(0); got != geom.Pt(4, 0) {
		t.Errorf("healthy robot at %v, want (4,0)", got)
	}
	if w.Time() != 4 {
		t.Errorf("time %d, want 4", w.Time())
	}
}

func TestInjectorEmptyActivationSetAdvancesTime(t *testing.T) {
	w := injectWorld(t, 2)
	w.SetInjector(&scriptInjector{filter: func(int, []int) []int { return nil }})
	active, err := w.Step(Synchronous{})
	if err != nil {
		t.Fatal(err)
	}
	if len(active) != 0 {
		t.Errorf("active = %v, want none", active)
	}
	if w.Time() != 1 {
		t.Errorf("time %d, want 1 (the instant still passes)", w.Time())
	}
	if got := w.Position(0); got != geom.Pt(0, 0) {
		t.Errorf("robot moved with an empty activation set: %v", got)
	}
}

func TestInjectorPerturbMoveApplied(t *testing.T) {
	w := injectWorld(t, 2)
	w.SetInjector(&scriptInjector{moveScale: 0.5})
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
	if got := w.Position(0); got != geom.Pt(0.5, 0) {
		t.Errorf("truncated move landed at %v, want (0.5,0)", got)
	}
}

func TestInjectorNonFiniteDestinationRejected(t *testing.T) {
	w := injectWorld(t, 2)
	w.SetInjector(&scriptInjector{badDest: true})
	if _, err := w.Step(Synchronous{}); err == nil {
		t.Error("non-finite injected destination accepted")
	}
}

func TestInjectorDetach(t *testing.T) {
	w := injectWorld(t, 2)
	inj := &scriptInjector{}
	w.SetInjector(inj)
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
	w.SetInjector(nil)
	n := len(inj.log)
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
	if len(inj.log) != n {
		t.Error("detached injector still invoked")
	}
}

// TestInjectorViewPerturbationReachesBehavior verifies the perturbed
// view is what the behavior actually observes, under both engines.
func TestInjectorViewPerturbationReachesBehavior(t *testing.T) {
	for _, mode := range []EngineMode{EngineSequential, EngineParallel} {
		positions := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
		seen := make([]geom.Point, 2)
		robots := make([]*Robot, 2)
		for i := range robots {
			i := i
			robots[i] = &Robot{Frame: geom.WorldFrame(), Sigma: 1e9, Behavior: behaviorFunc(func(v View) geom.Point {
				seen[i] = v.Points[1-v.Self]
				return v.Points[v.Self]
			})}
		}
		w, err := NewWorld(Config{Positions: positions, Robots: robots, Engine: mode})
		if err != nil {
			t.Fatal(err)
		}
		w.SetInjector(&scriptInjector{viewShift: geom.V(0, 5)})
		if _, err := w.Step(Synchronous{}); err != nil {
			t.Fatal(err)
		}
		// Views are egocentric: each robot observes the other relative to
		// its own position, plus the injected (0,5) shift.
		if seen[0] != geom.Pt(10, 5) || seen[1] != geom.Pt(-10, 5) {
			t.Errorf("engine %v: behaviors saw %v, want shifted views", mode, seen)
		}
	}
}

type behaviorFunc func(View) geom.Point

func (f behaviorFunc) Step(v View) geom.Point { return f(v) }
