// Package sim implements the paper's execution model: the
// semi-synchronous model (SSM) of Suzuki and Yamashita, in which time is
// a sequence of instants t0, t1, ...; at each instant a scheduler
// activates a non-empty subset of robots; each active robot observes the
// instantaneous configuration (through its own local coordinate frame),
// computes a destination, and moves towards it, covering at most its
// private distance bound sigma per activation. All moves of an instant
// are computed from the same snapshot and applied simultaneously.
//
// Robots are non-oblivious: a Behavior keeps arbitrary private state
// between activations. There is no communication medium of any kind —
// the only inter-robot channel is the observed configuration, which is
// exactly the premise of the paper.
package sim

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"waggle/internal/geom"
	"waggle/internal/obs"
	"waggle/internal/spatial"
)

// Behavior is a robot's deterministic algorithm. Step is invoked at
// every activation with the robot's local view of the configuration and
// must return the destination point in the robot's local coordinates.
// Returning the robot's own local position (always the local origin,
// since frames are egocentric) means "stay put".
//
// Behaviors may retain state across calls (the robots are
// non-oblivious).
type Behavior interface {
	Step(view View) geom.Point
}

// BehaviorFunc adapts a function to the Behavior interface.
type BehaviorFunc func(view View) geom.Point

// Step implements Behavior.
func (f BehaviorFunc) Step(view View) geom.Point { return f(view) }

var _ Behavior = BehaviorFunc(nil)

// View is what an activated robot perceives: the instantaneous positions
// of all robots expressed in its own frame. In the default dense layout,
// positions are index-aligned with the world's robot slice; protocols
// that model *anonymous* robots must not treat the index as an identity
// — they re-identify robots geometrically (see Tracker). Self is the
// observer's own slot, which every robot trivially knows (its own
// position is the local origin). In a *compact* view
// (World.SetCompactViews), Points holds only the robots inside the
// sensor disc and Indices maps slots back to robot indices.
type View struct {
	// Time is the index of the current instant.
	Time int
	// Self is the observer's own slot in Points. In a dense view this is
	// the observer's robot index; in a compact view it is the slot whose
	// Indices entry is the observer.
	Self int
	// Points holds robot positions in the observer's local frame: every
	// robot in a dense view, only the visible ones in a compact view.
	Points []geom.Point
	// IDs holds the observable identifiers slot-aligned with Points, or
	// nil in an anonymous system (§2 of the paper: "identified or
	// anonymous").
	IDs []int
	// Visible, when non-nil, marks which robots the observer can
	// actually see (limited visibility, the §5 open problem). Points of
	// invisible robots hold the observer's own position — the sensor
	// reports nothing there. Nil means unlimited visibility (the
	// paper's base model) or a compact view (where everything present is
	// visible by construction). The shipped protocols assume full
	// visibility and do not consult this field; the visibility
	// experiments measure what that assumption costs.
	Visible []bool
	// Indices, when non-nil, marks the view as compact: Points[k] is the
	// local position of robot Indices[k], ascending in robot index. Nil
	// means the dense layout.
	Indices []int
}

// N returns the number of robots in the view.
func (v View) N() int { return len(v.Points) }

// Other returns the index of the unique robot that is not the observer.
// It panics unless the view contains exactly two robots; it exists for
// the two-robot protocols.
func (v View) Other() int {
	if len(v.Points) != 2 {
		panic(fmt.Sprintf("sim: View.Other on %d robots", len(v.Points)))
	}
	return 1 - v.Self
}

// Robot is one mobile robot: a frame (its private coordinate system,
// carried along as it moves), a per-activation distance bound, and its
// algorithm.
type Robot struct {
	// Frame is the robot's private coordinate system. Its origin always
	// tracks the robot's current position (frames are egocentric); theta,
	// scale and handedness are fixed at creation.
	Frame geom.Frame
	// Sigma is the maximum distance covered in one activation. Must be
	// positive.
	Sigma float64
	// VisRadius limits how far the robot's sensors reach (world units);
	// 0 means unlimited (the paper's base model).
	VisRadius float64
	// Behavior is the robot's algorithm.
	Behavior Behavior
}

// World is a running SSM system.
type World struct {
	robots []*Robot
	pos    []geom.Point
	ids    []int // nil when anonymous
	time   int
	trace  *Trace
	engine EngineMode

	// Reusable per-step buffers (see engine.go): the configuration
	// snapshot shared by every view, one view scratch per robot, and the
	// destination/error slot per active robot. They make the hot loop
	// allocation-free after warm-up.
	snapshot []geom.Point
	scratch  []viewScratch
	dests    []geom.Point
	errs     []error
	seen     []bool // duplicate-activation detector

	// Structure-of-arrays mirrors of the per-robot hot fields, refreshed
	// once per step by syncSoA (see engine.go) so the compute phase
	// streams over flat slices instead of chasing robots[i] pointers.
	// anyLimited caches whether any robot has a bounded sensor.
	sigmas     []float64
	visRadii   []float64
	frames     []geom.Frame
	behaviors  []Behavior
	anyLimited bool

	// viewIndex is a spatial grid over the snapshot, kept in sync by
	// prepareStep when any robot has limited visibility and the swarm is
	// large enough to amortise indexing: incrementally spliced when few
	// robots moved since the previous instant, rebuilt otherwise. It is
	// read-only during the compute phase, so parallel workers share it
	// safely. viewIndexActive marks it in use this instant; gridSynced
	// marks its contents current (the object is retained, warm, across
	// instants that do not index). viewIndexOff is the benchmark/debug
	// switch (SetViewIndexing); movedScratch is the diff buffer.
	viewIndex       *spatial.Grid
	viewIndexOff    bool
	viewIndexActive bool
	gridSynced      bool
	movedScratch    []int32

	// compact enables compact views (SetCompactViews); activeSlot maps
	// robot index to destination slot during batched view construction
	// (-1 when inactive) and cellScratch holds per-worker batch buffers.
	compact     bool
	activeSlot  []int32
	cellScratch []cellBatch

	// touchedAt, when non-nil (EnableTouchTracking), records per robot
	// the instant-plus-one of its last position write (0 = never moved
	// since tracking began). Both write sites — the simultaneous-move
	// apply loop in Step and Teleport — stamp it, so a delta
	// checkpointer can ask for exactly the robots that moved since its
	// previous capture instead of scanning a million positions.
	touchedAt []int

	// inject is the optional fault-injection hook surface (see
	// inject.go); nil means a fault-free world.
	inject Injector

	// obs is the optional observability hook (internal/obs): step
	// metrics and activation/move trace events. Nil means disabled;
	// every instrumentation site guards with a single nil check, so a
	// world without an observer pays one predictable branch per site.
	obs *obs.Observer

	// stream is the optional movement-stream tap (waggle-stream/v1 via
	// the facade). Like the trace and observer hooks it is driven only
	// from the stepping goroutine, in application order, so the stream
	// content is engine-independent.
	stream StreamSink
}

// StreamSink receives the world's movement stream: every applied
// position write (scheduler moves and teleports alike, in application
// order) and an end-of-step mark with the activation set. Both calls
// arrive on the stepping goroutine; the sink must copy active if it
// retains it.
type StreamSink interface {
	RecordMove(t, robot int, to geom.Point)
	EndStep(t int, active []int)
}

// Config configures a World.
type Config struct {
	// Positions are the initial robot positions (world coordinates). At
	// least one robot; positions must be pairwise distinct.
	Positions []geom.Point
	// Robots supplies frame, sigma and behavior per robot, index-aligned
	// with Positions. Frames' origins are overwritten with the positions.
	Robots []*Robot
	// Identified makes the robots carry observable IDs 0..n-1. When
	// false, views carry no IDs (anonymous system).
	Identified bool
	// RecordTrace enables full move recording (used by tests, figures
	// and benchmarks; protocols never read the trace).
	RecordTrace bool
	// Engine selects the step-engine mode (see EngineMode). The zero
	// value EngineAuto parallelises large activation sets on multi-core
	// hosts and stays sequential otherwise; every mode computes the
	// identical execution.
	Engine EngineMode
}

var (
	// ErrNoRobots is returned for an empty configuration.
	ErrNoRobots = errors.New("sim: no robots")
	// ErrMismatchedRobots is returned when Positions and Robots differ
	// in length.
	ErrMismatchedRobots = errors.New("sim: positions and robots length mismatch")
	// ErrCoincidentRobots is returned when two robots start at the same
	// point, which the model forbids.
	ErrCoincidentRobots = errors.New("sim: coincident initial positions")
	// ErrBadSigma is returned when a robot has a non-positive sigma.
	ErrBadSigma = errors.New("sim: sigma must be positive")
	// ErrEmptyActivation is returned when a scheduler activates nobody,
	// violating the model ("at least one robot is active at each
	// instant").
	ErrEmptyActivation = errors.New("sim: scheduler activated no robot")
)

// NewWorld validates the configuration and builds a world at instant 0.
func NewWorld(cfg Config) (*World, error) {
	n := len(cfg.Positions)
	if n == 0 {
		return nil, ErrNoRobots
	}
	if len(cfg.Robots) != n {
		return nil, ErrMismatchedRobots
	}
	for i := 0; i < n; i++ {
		if cfg.Robots[i] == nil || cfg.Robots[i].Behavior == nil {
			return nil, fmt.Errorf("sim: robot %d has no behavior", i)
		}
		if cfg.Robots[i].Sigma <= 0 {
			return nil, fmt.Errorf("robot %d: %w", i, ErrBadSigma)
		}
	}
	if err := checkDistinctPositions(cfg.Positions); err != nil {
		return nil, err
	}
	w := &World{
		robots:     make([]*Robot, n),
		pos:        make([]geom.Point, n),
		engine:     cfg.Engine,
		scratch:    make([]viewScratch, n),
		seen:       make([]bool, n),
		sigmas:     make([]float64, n),
		visRadii:   make([]float64, n),
		frames:     make([]geom.Frame, n),
		behaviors:  make([]Behavior, n),
		activeSlot: make([]int32, n),
	}
	for i := range w.activeSlot {
		w.activeSlot[i] = -1
	}
	copy(w.pos, cfg.Positions)
	for i, r := range cfg.Robots {
		rr := *r // copy so callers can reuse template robots
		rr.Frame = rr.Frame.WithOrigin(w.pos[i])
		if rr.Frame.Scale <= 0 {
			rr.Frame.Scale = 1
		}
		if rr.Frame.Hand != geom.LeftHanded {
			rr.Frame.Hand = geom.RightHanded
		}
		w.robots[i] = &rr
	}
	if cfg.Identified {
		w.ids = make([]int, n)
		for i := range w.ids {
			w.ids[i] = i
		}
	}
	if cfg.RecordTrace {
		w.trace = NewTrace(cfg.Positions)
	}
	return w, nil
}

// coincidentGridMinN is the robot count from which NewWorld checks
// initial-position distinctness through a throwaway spatial grid instead
// of the ascending all-pairs scan; below it the grid build costs more
// than the quadratic loop it avoids.
const coincidentGridMinN = 256

// checkDistinctPositions rejects coincident initial positions, which the
// model forbids. Large sets use a grid and find, for each i ascending,
// the smallest coincident j > i — the same pair the quadratic scan
// reports, at expected O(n): the grid only narrows candidates and the
// predicate is the same Eq (Dist <= Eps) arithmetic.
func checkDistinctPositions(pts []geom.Point) error {
	n := len(pts)
	if n < coincidentGridMinN {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if pts[i].Eq(pts[j]) {
					return fmt.Errorf("robots %d and %d: %w", i, j, ErrCoincidentRobots)
				}
			}
		}
		return nil
	}
	g := spatial.NewGrid(pts)
	for i := 0; i < n; i++ {
		minJ := -1
		g.VisitNeighborhood(pts[i], geom.Eps, func(j int, d float64) {
			if j > i && d <= geom.Eps && (minJ < 0 || j < minJ) {
				minJ = j
			}
		})
		if minJ >= 0 {
			return fmt.Errorf("robots %d and %d: %w", i, minJ, ErrCoincidentRobots)
		}
	}
	return nil
}

// N returns the number of robots.
func (w *World) N() int { return len(w.robots) }

// Time returns the current instant index.
func (w *World) Time() int { return w.time }

// Positions returns a copy of the current configuration.
func (w *World) Positions() []geom.Point {
	out := make([]geom.Point, len(w.pos))
	copy(out, w.pos)
	return out
}

// Position returns robot i's current position.
func (w *World) Position(i int) geom.Point { return w.pos[i] }

// Robot returns robot i.
func (w *World) Robot(i int) *Robot { return w.robots[i] }

// Trace returns the recorded trace, or nil when recording is off.
func (w *World) Trace() *Trace { return w.trace }

// SetObserver attaches (or, with nil, detaches) the observability hook.
// Safe between steps only. Attaching seeds the static gauges (swarm
// size, current instant).
func (w *World) SetObserver(o *obs.Observer) {
	w.obs = o
	if o != nil {
		o.Sim.Robots.Set(float64(len(w.robots)))
		o.Sim.Time.Set(float64(w.time))
	}
}

// Observer returns the attached observer, or nil.
func (w *World) Observer() *obs.Observer { return w.obs }

// SetStreamSink attaches (or, with nil, detaches) the movement-stream
// tap. Safe between steps only.
func (w *World) SetStreamSink(s StreamSink) { w.stream = s }

// Step advances the world by one instant using the scheduler's
// activation set. It returns the set of activated robots.
//
// The observe–compute–clamp phase runs under the configured EngineMode
// (sequential, or fanned out over a GOMAXPROCS-sized worker pool): all
// active robots observe the same immutable snapshot, each behavior
// mutates only its own private state, and the moves are applied
// simultaneously — in activation order — after a barrier, so every mode
// computes the identical execution. A behavior returning a NaN or
// infinite destination yields a descriptive error instead of silently
// corrupting the configuration (NaN survives the sigma clamp).
func (w *World) Step(s Scheduler) ([]int, error) {
	var stepStart time.Time
	if w.obs != nil {
		stepStart = time.Now()
	}
	active := s.Next(w.time, len(w.robots))
	if len(active) == 0 {
		return nil, ErrEmptyActivation
	}
	for _, i := range active {
		if i < 0 || i >= len(w.robots) {
			w.resetSeen(active)
			return nil, fmt.Errorf("sim: scheduler activated robot %d of %d", i, len(w.robots))
		}
		if w.seen[i] {
			w.resetSeen(active)
			return nil, fmt.Errorf("sim: scheduler activated robot %d twice in one instant", i)
		}
		w.seen[i] = true
	}
	w.resetSeen(active)
	if w.inject != nil {
		// Faults first mutate the world (displacements, coupled radio
		// state), then may crash-stop robots out of the activation set.
		w.inject.BeginStep(w.time, w)
		active = w.inject.FilterActive(w.time, active)
		if len(active) == 0 {
			// Every activated robot is crash-stopped: the instant
			// passes with no observations and no moves.
			if w.trace != nil {
				w.trace.endStep(w.time, active, w.pos)
			}
			if w.stream != nil {
				w.stream.EndStep(w.time, active)
			}
			w.observeStep(stepStart, 0)
			w.time++
			return active, nil
		}
	}
	// All active robots observe the same snapshot.
	w.prepareStep(len(active))
	w.computeMoves(active)
	for _, err := range w.errs {
		if err != nil {
			return nil, err
		}
	}
	if w.inject != nil {
		// Movement faults rewrite the faithful destinations before any
		// move is applied, so a non-finite perturbation cannot leave the
		// configuration half-updated.
		for k, i := range active {
			d := w.inject.PerturbMove(w.time, i, w.pos[i], w.dests[k])
			if !isFinite(d) {
				return nil, fmt.Errorf("sim: injector produced non-finite destination %v for robot %d", d, i)
			}
			w.dests[k] = d
		}
	}
	// Apply simultaneously.
	for k, i := range active {
		from := w.pos[i]
		dest := w.dests[k]
		w.pos[i] = dest
		if w.touchedAt != nil {
			w.touchedAt[i] = w.time + 1
		}
		w.robots[i].Frame = w.robots[i].Frame.WithOrigin(dest)
		if w.trace != nil {
			w.trace.record(w.time, i, from, dest)
		}
		if w.stream != nil {
			w.stream.RecordMove(w.time, i, dest)
		}
		if o := w.obs; o != nil {
			// Recorded here, on the stepping goroutine in activation
			// order, so the trace content is engine-independent.
			o.Record(obs.Event{T: w.time, Kind: obs.EvActivate, Robot: i, Peer: -1})
			if d := from.Dist(dest); d > 0 {
				o.Record(obs.Event{T: w.time, Kind: obs.EvMove, Robot: i, Peer: -1, Val: d})
			}
		}
	}
	if w.trace != nil {
		w.trace.endStep(w.time, active, w.pos)
	}
	if w.stream != nil {
		w.stream.EndStep(w.time, active)
	}
	w.observeStep(stepStart, len(active))
	w.time++
	return active, nil
}

// observeStep records the per-instant metrics of a completed step.
// stepStart is only valid when the observer is attached (Step skips the
// clock read otherwise).
func (w *World) observeStep(stepStart time.Time, activeLen int) {
	o := w.obs
	if o == nil {
		return
	}
	o.Sim.Steps.Inc()
	o.Sim.Activations.Add(int64(activeLen))
	o.Sim.ActivationsPerStep.Observe(float64(activeLen))
	o.Sim.Time.Set(float64(w.time + 1))
	o.Sim.StepSeconds.Observe(time.Since(stepStart).Seconds())
}

// resetSeen clears the duplicate-activation marks set for this instant;
// only marks for valid indices can have been set.
func (w *World) resetSeen(active []int) {
	for _, i := range active {
		if i >= 0 && i < len(w.seen) {
			w.seen[i] = false
		}
	}
}

// Teleport forcibly relocates robot i — a transient fault injected by
// the experiment harness (a gust of wind, a sensor glitch, an operator
// picking the robot up). Protocols do not expect it; the §5
// stabilization experiments measure how they recover.
func (w *World) Teleport(i int, to geom.Point) error {
	if i < 0 || i >= len(w.robots) {
		return fmt.Errorf("sim: teleport of robot %d of %d", i, len(w.robots))
	}
	from := w.pos[i]
	w.pos[i] = to
	if w.touchedAt != nil {
		w.touchedAt[i] = w.time + 1
	}
	w.robots[i].Frame = w.robots[i].Frame.WithOrigin(to)
	if w.trace != nil {
		w.trace.record(w.time, i, from, to)
	}
	if w.stream != nil {
		w.stream.RecordMove(w.time, i, to)
	}
	return nil
}

// EnableTouchTracking starts recording, per robot, the instant of its
// last position write. Idempotent; costs one int write per applied
// move. Delta checkpointing turns it on so a capture touches only the
// robots that moved since the previous one.
func (w *World) EnableTouchTracking() {
	if w.touchedAt == nil {
		w.touchedAt = make([]int, len(w.robots))
	}
}

// AppendTouchedSince appends to buf, in ascending order, every robot
// whose position was written when the world clock read > sinceTime
// (pass the Time() observed at the previous capture; the write stamp is
// write-instant + 1, so "stamp > sinceTime" selects writes at or after
// that moment). Tracking must have been enabled before the interval of
// interest began. The result may be a superset of the robots whose
// positions actually differ — a write can land exactly on the old
// position, and a teleport just before the previous capture shares its
// instant — so callers diff values, not indices.
func (w *World) AppendTouchedSince(sinceTime int, buf []int) []int {
	for i, t := range w.touchedAt {
		if t > 0 && t > sinceTime {
			buf = append(buf, i)
		}
	}
	return buf
}

// Run advances the world until the predicate returns true or maxSteps
// instants have elapsed. It returns the number of instants executed and
// whether the predicate was satisfied.
func (w *World) Run(s Scheduler, maxSteps int, done func(w *World) bool) (int, bool, error) {
	for step := 0; step < maxSteps; step++ {
		if done != nil && done(w) {
			return step, true, nil
		}
		if _, err := w.Step(s); err != nil {
			return step, false, err
		}
	}
	return maxSteps, done != nil && done(w), nil
}

// localView builds robot i's view of the snapshot into the robot's own
// reusable scratch buffers: the returned slices stay valid (and
// unchanging) until robot i's next activation. Behaviors that need the
// view beyond one Step call must copy what they keep.
func (w *World) localView(i int, snapshot []geom.Point) View {
	if w.compact && w.visRadii[i] > 0 {
		return w.compactView(i, snapshot)
	}
	frame := w.frames[i]
	sc := w.scratchFor(i)
	pts := sc.points
	var visible []bool
	if r := w.visRadii[i]; r > 0 {
		visible = sc.visible
		for j := range visible {
			visible[j] = false
		}
	}
	if visible != nil && w.viewIndexActive {
		if o := w.obs; o != nil {
			// View-index hit: this view is built through the per-step
			// grid. Atomic add — the compute phase runs concurrently.
			o.Sim.ViewIndexViews.Inc()
		}
		// Limited visibility with the per-step grid: mark and transform
		// only the robots inside the sensor disc (expected O(k) instead
		// of O(n) transforms), pre-filling everything else with the
		// observer's own position — exactly what the full scan writes
		// for out-of-range robots. The visibility predicate below is the
		// same Dist <= VisRadius comparison as the scan, on a candidate
		// superset, so the resulting view is bit-identical.
		self := snapshot[i]
		selfLocal := frame.ToLocal(self)
		for j := range pts {
			pts[j] = selfLocal
		}
		r := w.visRadii[i]
		w.viewIndex.VisitNeighborhood(self, r, func(j int, d float64) {
			if d <= r {
				visible[j] = true
				pts[j] = frame.ToLocal(snapshot[j])
			}
		})
		var ids []int
		if w.ids != nil {
			ids = sc.ids
			copy(ids, w.ids)
		}
		return View{Time: w.time, Self: i, Points: pts, IDs: ids, Visible: visible}
	}
	for j, p := range snapshot {
		if visible != nil {
			if snapshot[i].Dist(p) <= w.visRadii[i] {
				visible[j] = true
			} else {
				// Out of sensor range: the observer perceives nothing
				// at all for this robot.
				pts[j] = frame.ToLocal(snapshot[i])
				continue
			}
		}
		pts[j] = frame.ToLocal(p)
	}
	var ids []int
	if w.ids != nil {
		ids = sc.ids
		copy(ids, w.ids)
	}
	return View{Time: w.time, Self: i, Points: pts, IDs: ids, Visible: visible}
}

// compactView builds robot i's compact view: the robots inside the
// sensor disc, ascending by robot index, with Indices mapping slots back
// to robot indices. The visible content is bit-identical to the dense
// view's visible set — same exact Dist <= VisRadius predicate (on a
// grid-narrowed candidate superset when the index is active), same
// frame transform, ascending order.
func (w *World) compactView(i int, snapshot []geom.Point) View {
	sc := &w.scratch[i]
	self := snapshot[i]
	r := w.visRadii[i]
	idx := sc.cidx[:0]
	if w.viewIndexActive {
		if o := w.obs; o != nil {
			o.Sim.ViewIndexViews.Inc()
		}
		w.viewIndex.VisitNeighborhood(self, r, func(j int, d float64) {
			if d <= r {
				idx = append(idx, j)
			}
		})
		// Grid visit order is bucket order; compact views are sorted.
		slices.Sort(idx)
	} else {
		for j := range snapshot {
			if self.Dist(snapshot[j]) <= r {
				idx = append(idx, j)
			}
		}
	}
	sc.cidx = idx
	return w.finishCompact(i, idx, snapshot)
}

// finishCompact materialises a compact view from the sorted visible
// index set, reusing robot i's compact scratch buffers.
func (w *World) finishCompact(i int, idx []int, snapshot []geom.Point) View {
	sc := &w.scratch[i]
	frame := w.frames[i]
	pts := sc.cpts[:0]
	var ids []int
	if w.ids != nil {
		ids = sc.cids[:0]
	}
	selfSlot := -1
	for k, j := range idx {
		if j == i {
			selfSlot = k
		}
		pts = append(pts, frame.ToLocal(snapshot[j]))
		if w.ids != nil {
			ids = append(ids, w.ids[j])
		}
	}
	sc.cpts = pts
	sc.cids = ids
	return View{Time: w.time, Self: selfSlot, Points: pts, IDs: ids, Indices: idx}
}
