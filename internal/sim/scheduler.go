package sim

import (
	"math/rand"

	"waggle/internal/detrand"
)

// Scheduler decides which robots are active at each instant. The model
// requires every returned set to be non-empty, and every fair scheduler
// must activate every robot infinitely often.
type Scheduler interface {
	// Next returns the indices of robots active at instant t, for a
	// system of n robots.
	Next(t, n int) []int
}

// Synchronous activates every robot at every instant — the paper's
// synchronous setting (§3).
type Synchronous struct{}

// Next implements Scheduler.
func (Synchronous) Next(_, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

var _ Scheduler = Synchronous{}

// RoundRobin activates exactly one robot per instant, in cyclic order —
// the most sequential fair asynchronous scheduler.
type RoundRobin struct{}

// Next implements Scheduler.
func (RoundRobin) Next(t, n int) []int { return []int{t % n} }

var _ Scheduler = RoundRobin{}

// RandomFair activates each robot independently with probability P at
// each instant, re-drawing until the set is non-empty, and additionally
// enforces fairness with a hard bound: a robot left inactive for
// MaxLag consecutive instants is forcibly activated. It models the
// paper's "uniform fair scheduler".
type RandomFair struct {
	rng *rand.Rand
	// src counts the activation stream's draws, so checkpoints can
	// capture the stream position and verify it after a replay. It wraps
	// the exact source rng used before it existed: the stream is
	// byte-identical.
	src *detrand.CountingSource
	// P is the per-robot activation probability (default 0.5).
	P float64
	// MaxLag forcibly activates any robot idle that long (default 64).
	MaxLag int

	idle []int
}

// DefaultRandomFairSeed seeds a zero-value RandomFair that was built
// without NewRandomFair. The fallback is deliberate and documented —
// a forgotten seed must not silently pick one — and tests pin that a
// zero value behaves exactly like NewRandomFair(DefaultRandomFairSeed).
const DefaultRandomFairSeed int64 = 1

// NewRandomFair returns a seeded random fair scheduler.
func NewRandomFair(seed int64) *RandomFair {
	src, rng := detrand.New(seed)
	return &RandomFair{rng: rng, src: src, P: 0.5, MaxLag: 64}
}

// Next implements Scheduler.
func (s *RandomFair) Next(_, n int) []int {
	if s.rng == nil {
		// Zero-value scheduler: fall back to the documented default
		// seed rather than an arbitrary constant buried here.
		s.src, s.rng = detrand.New(DefaultRandomFairSeed)
	}
	p := s.P
	if p <= 0 || p > 1 {
		p = 0.5
	}
	maxLag := s.MaxLag
	if maxLag <= 0 {
		maxLag = 64
	}
	if len(s.idle) != n {
		// The system size changed mid-run (or this is the first call):
		// carry over the lag state of the surviving robots instead of
		// discarding it, so fairness debts are not silently forgiven.
		idle := make([]int, n)
		copy(idle, s.idle)
		s.idle = idle
	}
	var out []int
	for len(out) == 0 {
		out = out[:0]
		for i := 0; i < n; i++ {
			if s.idle[i] >= maxLag || s.rng.Float64() < p {
				out = append(out, i)
			}
		}
	}
	for i := 0; i < n; i++ {
		s.idle[i]++
	}
	for _, i := range out {
		s.idle[i] = 0
	}
	return out
}

// StreamState reports the scheduler's activation-stream position and
// per-robot lag debts, for checkpoint capture and post-replay
// verification. The idle slice is a copy; a nil rng (zero value never
// stepped) reports zero draws and nil idle.
func (s *RandomFair) StreamState() (draws uint64, idle []int) {
	if s.src != nil {
		draws = s.src.Draws()
	}
	if s.idle != nil {
		idle = append([]int(nil), s.idle...)
	}
	return draws, idle
}

// StreamStateRef is StreamState without the defensive copy: the
// returned idle slice aliases the scheduler's own counters and is only
// valid until the next Next call. The delta checkpointer reads (never
// retains) it every capture, where copying a million-entry slice would
// dominate the save.
func (s *RandomFair) StreamStateRef() (draws uint64, idle []int) {
	if s.src != nil {
		draws = s.src.Draws()
	}
	return draws, s.idle
}

var _ Scheduler = (*RandomFair)(nil)

// Starver is an adversarial-but-fair scheduler: it delays the Victim
// robot for Delay consecutive instants out of every Delay+1 (activating
// everyone else each instant), then activates only the victim. It
// stresses the implicit-acknowledgement machinery of §4 as hard as
// fairness allows.
type Starver struct {
	// Victim is the robot being starved.
	Victim int
	// Delay is how many instants in a row the victim stays inactive.
	Delay int
}

// Next implements Scheduler.
func (s Starver) Next(t, n int) []int {
	delay := s.Delay
	if delay <= 0 {
		delay = 8
	}
	victim := s.Victim % n
	if victim < 0 {
		victim = 0
	}
	if t%(delay+1) == delay {
		return []int{victim}
	}
	out := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != victim {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		return []int{victim}
	}
	return out
}

var _ Scheduler = Starver{}

// FirstSync wraps a scheduler so that instant 0 activates every robot —
// the paper's "all the robots are awake in t0" assumption (§4.2), which
// lets every robot record the initial configuration P(t0) before anyone
// moves. From instant 1 on, the inner scheduler decides.
type FirstSync struct {
	Inner Scheduler
}

// Next implements Scheduler.
func (s FirstSync) Next(t, n int) []int {
	if t == 0 {
		return Synchronous{}.Next(t, n)
	}
	return s.Inner.Next(t, n)
}

var _ Scheduler = FirstSync{}

// Alternator activates the robots of each parity class on alternating
// instants (evens then odds), so no two specific robots are ever active
// together. With two robots it is the fully sequential interleaving.
type Alternator struct{}

// Next implements Scheduler.
func (Alternator) Next(t, n int) []int {
	var out []int
	for i := t % 2; i < n; i += 2 {
		out = append(out, i)
	}
	if len(out) == 0 { // n == 1 and odd instant
		return []int{0}
	}
	return out
}

var _ Scheduler = Alternator{}
