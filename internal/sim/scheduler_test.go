package sim

import (
	"testing"

	"waggle/internal/geom"
)

func TestSynchronousActivatesAll(t *testing.T) {
	s := Synchronous{}
	for _, n := range []int{1, 2, 7} {
		got := s.Next(0, n)
		if len(got) != n {
			t.Errorf("n=%d: %d active, want %d", n, len(got), n)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	s := RoundRobin{}
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		got := s.Next(i, 3)
		if len(got) != 1 || got[0] != w {
			t.Errorf("t=%d: active = %v, want [%d]", i, got, w)
		}
	}
}

func TestRandomFairNonEmptyAndFair(t *testing.T) {
	s := NewRandomFair(42)
	const n, steps = 5, 2000
	lastActive := make([]int, n)
	for t0 := 0; t0 < steps; t0++ {
		got := s.Next(t0, n)
		if len(got) == 0 {
			t.Fatalf("t=%d: empty activation", t0)
		}
		for _, i := range got {
			if i < 0 || i >= n {
				t.Fatalf("t=%d: bad index %d", t0, i)
			}
			lastActive[i] = t0
		}
		// Fairness bound: nobody may be idle longer than MaxLag+1.
		for i := 0; i < n; i++ {
			if t0-lastActive[i] > s.MaxLag+1 {
				t.Fatalf("robot %d idle for %d steps (> MaxLag)", i, t0-lastActive[i])
			}
		}
	}
}

func TestRandomFairDeterministicPerSeed(t *testing.T) {
	a, b := NewRandomFair(7), NewRandomFair(7)
	for i := 0; i < 100; i++ {
		ga, gb := a.Next(i, 4), b.Next(i, 4)
		if len(ga) != len(gb) {
			t.Fatalf("step %d: diverged", i)
		}
		for j := range ga {
			if ga[j] != gb[j] {
				t.Fatalf("step %d: diverged", i)
			}
		}
	}
}

func TestStarverDelaysVictimButStaysFair(t *testing.T) {
	s := Starver{Victim: 1, Delay: 4}
	const n = 3
	victimActivations := 0
	for t0 := 0; t0 < 50; t0++ {
		got := s.Next(t0, n)
		if len(got) == 0 {
			t.Fatalf("t=%d: empty activation", t0)
		}
		for _, i := range got {
			if i == 1 {
				victimActivations++
				if t0%(s.Delay+1) != s.Delay {
					t.Fatalf("victim active at t=%d, outside its slot", t0)
				}
			}
		}
	}
	if victimActivations != 10 {
		t.Errorf("victim activated %d times in 50 steps, want 10", victimActivations)
	}
}

func TestStarverSingleRobot(t *testing.T) {
	s := Starver{Victim: 0, Delay: 3}
	for t0 := 0; t0 < 10; t0++ {
		if got := s.Next(t0, 1); len(got) != 1 || got[0] != 0 {
			t.Fatalf("t=%d: active = %v, want [0]", t0, got)
		}
	}
}

func TestAlternator(t *testing.T) {
	s := Alternator{}
	even := s.Next(0, 4)
	odd := s.Next(1, 4)
	if len(even) != 2 || even[0] != 0 || even[1] != 2 {
		t.Errorf("even set = %v, want [0 2]", even)
	}
	if len(odd) != 2 || odd[0] != 1 || odd[1] != 3 {
		t.Errorf("odd set = %v, want [1 3]", odd)
	}
	if got := s.Next(1, 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("n=1 odd instant = %v, want [0]", got)
	}
}

func TestTrackerIdentify(t *testing.T) {
	homes := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 10)}
	tr := NewTrackerFromConfig(homes)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	// Granular radii: half of nearest-neighbour distances (10) = 5.
	for i := 0; i < 3; i++ {
		if !geom.ApproxEq(tr.Radius(i), 5) {
			t.Errorf("radius %d = %v, want 5", i, tr.Radius(i))
		}
	}
	tests := []struct {
		name string
		p    geom.Point
		want int
	}{
		{"at home 0", geom.Pt(0, 0), 0},
		{"inside granular 1", geom.Pt(8, 1), 1},
		{"inside granular 2", geom.Pt(1, 12), 2},
	}
	for _, tt := range tests {
		got, err := tr.Identify(tt.p)
		if err != nil {
			t.Fatalf("%s: %v", tt.name, err)
		}
		if got != tt.want {
			t.Errorf("%s: Identify = %d, want %d", tt.name, got, tt.want)
		}
	}
	if _, err := tr.Identify(geom.Pt(50, 50)); err == nil {
		t.Error("point outside every granular must not be identified")
	}
}

func TestChangeCounter(t *testing.T) {
	c := NewChangeCounter(2, 1e-6)
	// First observation is the baseline, not a change.
	if got := c.Observe(0, geom.Pt(0, 0)); got != 0 {
		t.Errorf("baseline counted as change: %d", got)
	}
	if got := c.Observe(0, geom.Pt(0, 0)); got != 0 {
		t.Errorf("no-move counted as change: %d", got)
	}
	if got := c.Observe(0, geom.Pt(1, 0)); got != 1 {
		t.Errorf("first change: count = %d, want 1", got)
	}
	if got := c.Observe(0, geom.Pt(1, 0)); got != 1 {
		t.Errorf("steady position increments count: %d", got)
	}
	if got := c.Observe(0, geom.Pt(2, 0)); got != 2 {
		t.Errorf("second change: count = %d, want 2", got)
	}
	c.Observe(1, geom.Pt(5, 5))
	if c.AllAtLeast(2, -1) {
		t.Error("AllAtLeast(2) should fail: robot 1 has no changes")
	}
	if !c.AllAtLeast(2, 1) {
		t.Error("AllAtLeast(2, skip=1) should succeed")
	}
	c.Reset()
	if c.Count(0) != 0 {
		t.Errorf("Reset did not clear counts: %d", c.Count(0))
	}
	// After Reset the next observation is a fresh baseline.
	if got := c.Observe(0, geom.Pt(9, 9)); got != 0 {
		t.Errorf("post-reset baseline counted as change: %d", got)
	}
}

// TestRandomFairZeroValueUsesDocumentedSeed pins the satellite fix: a
// zero-value RandomFair must behave exactly like
// NewRandomFair(DefaultRandomFairSeed) rather than silently reseeding
// with an arbitrary constant buried in Next.
func TestRandomFairZeroValueUsesDocumentedSeed(t *testing.T) {
	zero := &RandomFair{}
	seeded := NewRandomFair(DefaultRandomFairSeed)
	for step := 0; step < 200; step++ {
		a, b := zero.Next(step, 5), seeded.Next(step, 5)
		if len(a) != len(b) {
			t.Fatalf("step %d: zero-value diverged from documented default seed: %v vs %v", step, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("step %d: zero-value diverged from documented default seed: %v vs %v", step, a, b)
			}
		}
	}
}

// TestRandomFairResizePreservesLag pins the other half of the fix: a
// mid-run change of n must carry over the surviving robots' idle
// counters instead of forgiving their fairness debts.
func TestRandomFairResizePreservesLag(t *testing.T) {
	s := NewRandomFair(11)
	s.P = 0.0001 // activations essentially only via the lag bound
	s.MaxLag = 10

	// Run at n=3 until just before robot lag forces activations.
	for step := 0; step < 9; step++ {
		s.Next(step, 3)
	}
	maxIdle := 0
	for _, lag := range s.idle[:3] {
		if lag > maxIdle {
			maxIdle = lag
		}
	}
	if maxIdle == 0 {
		t.Fatal("setup failed: no accumulated lag")
	}
	// Grow to n=5: the first three robots' lag must survive.
	preserved := append([]int(nil), s.idle[:3]...)
	s.Next(9, 5)
	for i, want := range preserved {
		// After the growth step, a robot either was activated (idle
		// reset to 0) or its pre-growth lag advanced by one.
		got := s.idle[i]
		if got != 0 && got != want+1 {
			t.Errorf("robot %d: idle = %d after resize, want 0 or %d", i, got, want+1)
		}
	}
	// A robot whose lag was at the bound must actually get activated
	// soon; with P≈0 that can only come from preserved lag state.
	forced := false
	for step := 10; step < 13 && !forced; step++ {
		for _, i := range s.Next(step, 5) {
			if i < 3 {
				forced = true
			}
		}
	}
	if !forced {
		t.Error("grown scheduler never force-activated a pre-resize robot: lag state was discarded")
	}
}

// TestRandomFairShrinkKeepsWorking exercises the shrink path of the
// resize: no panic, still non-empty activations.
func TestRandomFairShrinkKeepsWorking(t *testing.T) {
	s := NewRandomFair(13)
	for step := 0; step < 20; step++ {
		s.Next(step, 6)
	}
	for step := 20; step < 40; step++ {
		if got := s.Next(step, 2); len(got) == 0 {
			t.Fatal("empty activation after shrink")
		}
	}
}
