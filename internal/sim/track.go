package sim

import (
	"errors"

	"waggle/internal/geom"
)

// ErrUntrackable is returned when an observed point cannot be attributed
// to any home region — a protocol-invariant violation (some robot left
// its granular).
var ErrUntrackable = errors.New("sim: observed point outside every home region")

// Tracker re-identifies anonymous robots across observations. The
// paper's n-robot protocols confine every robot to its granular — the
// disc around its initial ("home") position whose radius is half the
// distance to the nearest other robot. Granulars are pairwise disjoint,
// so "which home is this point nearest to, within that home's radius?"
// is an unambiguous, purely geometric identity — exactly the
// re-identification an anonymous observer can perform, with no hidden
// reliance on simulator indices.
type Tracker struct {
	homes []geom.Point
	radii []float64
}

// NewTracker builds a tracker from home positions and per-home granular
// radii (index-aligned).
func NewTracker(homes []geom.Point, radii []float64) *Tracker {
	h := make([]geom.Point, len(homes))
	copy(h, homes)
	r := make([]float64, len(radii))
	copy(r, radii)
	return &Tracker{homes: h, radii: r}
}

// NewTrackerFromConfig derives granular radii (half nearest-neighbour
// distance) directly from an initial configuration.
func NewTrackerFromConfig(homes []geom.Point) *Tracker {
	radii := make([]float64, len(homes))
	for i, p := range homes {
		best := -1.0
		for j, q := range homes {
			if i == j {
				continue
			}
			if d := p.Dist(q); best < 0 || d < best {
				best = d
			}
		}
		if best < 0 {
			best = 1
		}
		radii[i] = best / 2
	}
	t := &Tracker{homes: make([]geom.Point, len(homes)), radii: radii}
	copy(t.homes, homes)
	return t
}

// Identify maps an observed point to the home index whose granular
// contains it.
func (t *Tracker) Identify(p geom.Point) (int, error) {
	bestIdx, bestDist := -1, 0.0
	for i, h := range t.homes {
		d := p.Dist(h)
		if d <= t.radii[i]+geom.Eps*(1+t.radii[i]) {
			if bestIdx < 0 || d < bestDist {
				bestIdx, bestDist = i, d
			}
		}
	}
	if bestIdx < 0 {
		return 0, ErrUntrackable
	}
	return bestIdx, nil
}

// Home returns home position i.
func (t *Tracker) Home(i int) geom.Point { return t.homes[i] }

// Radius returns granular radius i.
func (t *Tracker) Radius(i int) float64 { return t.radii[i] }

// Len returns the number of tracked homes.
func (t *Tracker) Len() int { return len(t.homes) }

// ChangeCounter counts, per observed robot, how many position changes
// the observer has witnessed since the last Reset. It implements the
// paper's "r observes that the position of r' has changed twice"
// predicate, which drives every implicit acknowledgement in §4.
type ChangeCounter struct {
	last   []geom.Point
	seen   []bool
	counts []int
	tol    float64
}

// NewChangeCounter creates a counter for n robots with the given
// movement-detection tolerance.
func NewChangeCounter(n int, tol float64) *ChangeCounter {
	return &ChangeCounter{
		last:   make([]geom.Point, n),
		seen:   make([]bool, n),
		counts: make([]int, n),
		tol:    tol,
	}
}

// Observe feeds one observation of robot i at point p and returns its
// updated change count.
func (c *ChangeCounter) Observe(i int, p geom.Point) int {
	if !c.seen[i] {
		c.seen[i] = true
		c.last[i] = p
		return c.counts[i]
	}
	if p.Dist(c.last[i]) > c.tol {
		c.counts[i]++
		c.last[i] = p
	}
	return c.counts[i]
}

// Count returns the change count of robot i.
func (c *ChangeCounter) Count(i int) int { return c.counts[i] }

// Reset zeroes all counts and baselines (a new waiting phase begins).
func (c *ChangeCounter) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
		c.seen[i] = false
	}
}

// AllAtLeast reports whether every robot except skip has changed at
// least k times.
func (c *ChangeCounter) AllAtLeast(k, skip int) bool {
	for i, n := range c.counts {
		if i == skip {
			continue
		}
		if n < k {
			return false
		}
	}
	return true
}
