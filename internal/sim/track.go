package sim

import (
	"errors"
	"fmt"
	"math"

	"waggle/internal/geom"
	"waggle/internal/spatial"
)

// ErrUntrackable is returned when an observed point cannot be attributed
// to any home region — a protocol-invariant violation (some robot left
// its granular). Attribution failures wrap it in an *AttributionError
// carrying the offending point and its nearest home.
var ErrUntrackable = errors.New("sim: observed point outside every home region")

// AttributionError reports an observed point that lies outside every
// (epsilon-inflated) granular, naming the offending point and the home
// it came closest to. It unwraps to ErrUntrackable, so existing
// errors.Is checks keep working.
type AttributionError struct {
	// Point is the observed point that could not be attributed.
	Point geom.Point
	// NearestHome is the index of the closest home centre (-1 for an
	// empty tracker).
	NearestHome int
	// Dist is the distance from Point to that home's centre.
	Dist float64
	// Radius is that home's granular radius.
	Radius float64
}

// Error implements error.
func (e *AttributionError) Error() string {
	if e.NearestHome < 0 {
		return fmt.Sprintf("sim: point %v outside every home region (tracker has no homes)", e.Point)
	}
	return fmt.Sprintf("sim: point %v outside every home region (nearest home %d at distance %.6g, granular radius %.6g)",
		e.Point, e.NearestHome, e.Dist, e.Radius)
}

// Unwrap makes errors.Is(err, ErrUntrackable) hold.
func (e *AttributionError) Unwrap() error { return ErrUntrackable }

// trackerIndexMinN is the home count from which the tracker builds a
// spatial index; below it the direct scan is cheaper than grid setup.
const trackerIndexMinN = 24

// Tracker re-identifies anonymous robots across observations. The
// paper's n-robot protocols confine every robot to its granular — the
// disc around its initial ("home") position whose radius is half the
// distance to the nearest other robot. Granulars are pairwise disjoint,
// so "which home is this point nearest to, within that home's radius?"
// is an unambiguous, purely geometric identity — exactly the
// re-identification an anonymous observer can perform, with no hidden
// reliance on simulator indices.
type Tracker struct {
	homes []geom.Point
	radii []float64

	// index accelerates attribution for large swarms; nil below
	// trackerIndexMinN homes. maxReach is the largest epsilon-inflated
	// granular radius — the widest net an attribution query must cast.
	index    *spatial.Grid
	maxReach float64
}

// NewTracker builds a tracker from home positions and per-home granular
// radii (index-aligned).
func NewTracker(homes []geom.Point, radii []float64) *Tracker {
	h := make([]geom.Point, len(homes))
	copy(h, homes)
	r := make([]float64, len(radii))
	copy(r, radii)
	t := &Tracker{homes: h, radii: r}
	t.buildIndex()
	return t
}

// NewTrackerFromConfig derives granular radii (half nearest-neighbour
// distance) directly from an initial configuration. The radii come from
// the spatial index — O(n) expected instead of the all-pairs scan, with
// bit-identical values.
func NewTrackerFromConfig(homes []geom.Point) *Tracker {
	radii := spatial.NearestRadii(homes)
	for i, r := range radii {
		if math.IsInf(r, 1) {
			// A single home has no neighbour; keep the historical
			// default radius of 1/2.
			radii[i] = 0.5
		}
	}
	t := &Tracker{homes: append([]geom.Point(nil), homes...), radii: radii}
	t.buildIndex()
	return t
}

func (t *Tracker) buildIndex() {
	for _, r := range t.radii {
		if reach := inflatedRadius(r); reach > t.maxReach {
			t.maxReach = reach
		}
	}
	if len(t.homes) >= trackerIndexMinN {
		t.index = spatial.NewGrid(t.homes)
	}
}

// inflatedRadius is the attribution boundary rule: a point belongs to a
// granular of radius r when its centre distance is at most r plus the
// relative epsilon slack (matching geom.ApproxEq's scaling), so points
// *exactly on* the boundary — and within float noise of it — attribute
// to that home rather than erroring.
func inflatedRadius(r float64) float64 { return r + geom.Eps*(1+r) }

// Identify maps an observed point to the home index whose granular
// contains it. It is Attribute under its historical name.
func (t *Tracker) Identify(p geom.Point) (int, error) { return t.Attribute(p) }

// Attribute maps an observed point to the home index whose granular
// contains it, under an explicit boundary rule:
//
//   - p belongs to home i when Dist(p, home_i) <= r_i + Eps*(1+r_i) —
//     points exactly on a granular boundary are inside it.
//   - If the epsilon slack puts p inside several inflated granulars
//     (possible only for granulars within Eps of touching, since true
//     granulars are pairwise disjoint), the home with the smaller centre
//     distance wins; an exact distance tie goes to the lowest index.
//   - Otherwise attribution fails with an *AttributionError naming p and
//     its nearest home; the error unwraps to ErrUntrackable.
func (t *Tracker) Attribute(p geom.Point) (int, error) {
	bestIdx, bestDist := -1, 0.0
	nearIdx, nearDist := -1, math.Inf(1)
	consider := func(i int, d float64) {
		if d < nearDist || (d == nearDist && i < nearIdx) {
			nearIdx, nearDist = i, d
		}
		if d <= inflatedRadius(t.radii[i]) {
			if bestIdx < 0 || d < bestDist || (d == bestDist && i < bestIdx) {
				bestIdx, bestDist = i, d
			}
		}
	}
	if t.index != nil {
		t.index.VisitNeighborhood(p, t.maxReach, consider)
		if bestIdx >= 0 {
			return bestIdx, nil
		}
		// No granular near p contains it; find the true nearest home
		// (possibly outside the query window) for the error report.
		nearIdx, nearDist = t.index.NearestTo(p, -1)
	} else {
		for i, h := range t.homes {
			consider(i, p.Dist(h))
		}
		if bestIdx >= 0 {
			return bestIdx, nil
		}
	}
	err := &AttributionError{Point: p, NearestHome: nearIdx, Dist: nearDist}
	if nearIdx >= 0 {
		err.Radius = t.radii[nearIdx]
	}
	return 0, err
}

// Home returns home position i.
func (t *Tracker) Home(i int) geom.Point { return t.homes[i] }

// Radius returns granular radius i.
func (t *Tracker) Radius(i int) float64 { return t.radii[i] }

// Len returns the number of tracked homes.
func (t *Tracker) Len() int { return len(t.homes) }

// ChangeCounter counts, per observed robot, how many position changes
// the observer has witnessed since the last Reset. It implements the
// paper's "r observes that the position of r' has changed twice"
// predicate, which drives every implicit acknowledgement in §4.
type ChangeCounter struct {
	last   []geom.Point
	seen   []bool
	counts []int
	tol    float64
}

// NewChangeCounter creates a counter for n robots with the given
// movement-detection tolerance.
func NewChangeCounter(n int, tol float64) *ChangeCounter {
	return &ChangeCounter{
		last:   make([]geom.Point, n),
		seen:   make([]bool, n),
		counts: make([]int, n),
		tol:    tol,
	}
}

// Observe feeds one observation of robot i at point p and returns its
// updated change count.
func (c *ChangeCounter) Observe(i int, p geom.Point) int {
	if !c.seen[i] {
		c.seen[i] = true
		c.last[i] = p
		return c.counts[i]
	}
	if p.Dist(c.last[i]) > c.tol {
		c.counts[i]++
		c.last[i] = p
	}
	return c.counts[i]
}

// Count returns the change count of robot i.
func (c *ChangeCounter) Count(i int) int { return c.counts[i] }

// Reset zeroes all counts and baselines (a new waiting phase begins).
func (c *ChangeCounter) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
		c.seen[i] = false
	}
}

// AllAtLeast reports whether every robot except skip has changed at
// least k times.
func (c *ChangeCounter) AllAtLeast(k, skip int) bool {
	for i, n := range c.counts {
		if i == skip {
			continue
		}
		if n < k {
			return false
		}
	}
	return true
}
