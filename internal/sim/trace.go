package sim

import (
	"fmt"
	"io"

	"waggle/internal/geom"
)

// Move is one robot's displacement at one instant.
type Move struct {
	Time  int
	Robot int
	From  geom.Point
	To    geom.Point
}

// Dist returns the distance covered by the move.
func (m Move) Dist() float64 { return m.From.Dist(m.To) }

// StepRecord summarises one instant: who was active and the resulting
// configuration.
type StepRecord struct {
	Time      int
	Active    []int
	Positions []geom.Point
}

// Trace records a full execution for analysis: the initial
// configuration, every move, and every per-instant configuration. It is
// omniscient — protocols never read it; tests, figure generators and
// benchmarks do.
type Trace struct {
	initial []geom.Point
	moves   []Move
	steps   []StepRecord
}

// NewTrace starts a trace from the given initial configuration.
func NewTrace(initial []geom.Point) *Trace {
	init := make([]geom.Point, len(initial))
	copy(init, initial)
	return &Trace{initial: init}
}

func (tr *Trace) record(t, robot int, from, to geom.Point) {
	tr.moves = append(tr.moves, Move{Time: t, Robot: robot, From: from, To: to})
}

func (tr *Trace) endStep(t int, active []int, positions []geom.Point) {
	act := make([]int, len(active))
	copy(act, active)
	pos := make([]geom.Point, len(positions))
	copy(pos, positions)
	tr.steps = append(tr.steps, StepRecord{Time: t, Active: act, Positions: pos})
}

// Initial returns the initial configuration.
func (tr *Trace) Initial() []geom.Point {
	out := make([]geom.Point, len(tr.initial))
	copy(out, tr.initial)
	return out
}

// Moves returns all recorded moves in order.
func (tr *Trace) Moves() []Move {
	out := make([]Move, len(tr.moves))
	copy(out, tr.moves)
	return out
}

// Steps returns the per-instant records in order.
func (tr *Trace) Steps() []StepRecord {
	out := make([]StepRecord, len(tr.steps))
	copy(out, tr.steps)
	return out
}

// MovesBy returns the moves of one robot in order.
func (tr *Trace) MovesBy(robot int) []Move {
	var out []Move
	for _, m := range tr.moves {
		if m.Robot == robot {
			out = append(out, m)
		}
	}
	return out
}

// TotalDistance returns the total distance covered by one robot — the
// energy proxy used by the silence experiments (C5 in DESIGN.md).
func (tr *Trace) TotalDistance(robot int) float64 {
	var sum float64
	for _, m := range tr.moves {
		if m.Robot == robot {
			sum += m.Dist()
		}
	}
	return sum
}

// NonTrivialMoves returns how many moves of the robot covered more than
// the given threshold distance.
func (tr *Trace) NonTrivialMoves(robot int, threshold float64) int {
	count := 0
	for _, m := range tr.moves {
		if m.Robot == robot && m.Dist() > threshold {
			count++
		}
	}
	return count
}

// MinPairwiseDistance returns the smallest distance between any two
// robots over the whole recorded execution — the collision-avoidance
// metric (experiment C7).
func (tr *Trace) MinPairwiseDistance() float64 {
	best := minPairwise(tr.initial)
	for _, s := range tr.steps {
		if d := minPairwise(s.Positions); d < best {
			best = d
		}
	}
	return best
}

func minPairwise(pts []geom.Point) float64 {
	best := -1.0
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			d := pts[i].Dist(pts[j])
			if best < 0 || d < best {
				best = d
			}
		}
	}
	return best
}

// WriteCSV streams the trace's per-instant configurations as CSV:
// time,robot,x,y — one row per robot per recorded instant, preceded by
// the initial configuration at time -1. The format feeds external
// plotting tools.
func (tr *Trace) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "time,robot,x,y\n"); err != nil {
		return err
	}
	writeRow := func(t, robot int, p geom.Point) error {
		_, err := fmt.Fprintf(w, "%d,%d,%g,%g\n", t, robot, p.X, p.Y)
		return err
	}
	for i, p := range tr.initial {
		if err := writeRow(-1, i, p); err != nil {
			return err
		}
	}
	for _, s := range tr.steps {
		for i, p := range s.Positions {
			if err := writeRow(s.Time, i, p); err != nil {
				return err
			}
		}
	}
	return nil
}
