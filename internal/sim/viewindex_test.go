package sim

import (
	"math/rand"
	"testing"

	"waggle/internal/geom"
)

// limitedVisWorld builds a swarm of n limited-visibility robots that
// drift toward the centroid of whatever they can see — a behavior whose
// moves depend on the whole view, so any view discrepancy between the
// indexed and brute visibility paths diverges the trajectories.
func limitedVisWorld(t *testing.T, n int, visRadius float64) *World {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	pos := make([]geom.Point, n)
	robots := make([]*Robot, n)
	for i := range pos {
		pos[i] = geom.Pt(rng.Float64()*120, rng.Float64()*120)
		robots[i] = &Robot{
			Frame:     geom.WorldFrame(),
			Sigma:     0.5,
			VisRadius: visRadius,
			Behavior: BehaviorFunc(func(v View) geom.Point {
				var cx, cy float64
				seen := 0
				for j, p := range v.Points {
					if v.Visible != nil && !v.Visible[j] {
						continue
					}
					cx += p.X
					cy += p.Y
					seen++
				}
				return geom.Pt(cx/float64(seen), cy/float64(seen))
			}),
		}
	}
	w, err := NewWorld(Config{Positions: pos, Robots: robots})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestViewIndexParity steps two identical limited-visibility swarms —
// one with the per-step visibility grid, one forced onto the brute
// distance scan — and requires bit-identical configurations at every
// instant. The grid only culls candidates ahead of the exact
// Dist <= VisRadius predicate, so any divergence is a bug.
func TestViewIndexParity(t *testing.T) {
	n := viewIndexMinN + 16
	indexed := limitedVisWorld(t, n, 25)
	brute := limitedVisWorld(t, n, 25)
	brute.SetViewIndexing(false)
	for step := 0; step < 25; step++ {
		if _, err := indexed.Step(Synchronous{}); err != nil {
			t.Fatal(err)
		}
		if _, err := brute.Step(Synchronous{}); err != nil {
			t.Fatal(err)
		}
		if step == 0 && indexed.viewIndex == nil {
			t.Fatal("indexed world did not build the visibility grid")
		}
		if brute.viewIndex != nil {
			t.Fatal("SetViewIndexing(false) left the grid active")
		}
		for i := 0; i < n; i++ {
			if indexed.Position(i) != brute.Position(i) {
				t.Fatalf("step %d robot %d: indexed %v != brute %v",
					step, i, indexed.Position(i), brute.Position(i))
			}
		}
	}
}

// TestViewIndexSkippedBelowThreshold checks the small-swarm guard: under
// viewIndexMinN robots the grid rebuild costs more than it culls, so
// prepareStep must leave it nil.
func TestViewIndexSkippedBelowThreshold(t *testing.T) {
	w := limitedVisWorld(t, viewIndexMinN-1, 25)
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
	if w.viewIndex != nil {
		t.Error("visibility grid built below viewIndexMinN")
	}
}

// TestViewIndexSkippedUnderFullVisibility checks that fully-sighted
// swarms never pay the rebuild: the grid exists only to cull the
// limited-visibility loop.
func TestViewIndexSkippedUnderFullVisibility(t *testing.T) {
	n := viewIndexMinN + 16
	rng := rand.New(rand.NewSource(3))
	pos := make([]geom.Point, n)
	robots := make([]*Robot, n)
	for i := range pos {
		pos[i] = geom.Pt(rng.Float64()*120, rng.Float64()*120)
		robots[i] = &Robot{Frame: geom.WorldFrame(), Sigma: 1, Behavior: stay()}
	}
	w, err := NewWorld(Config{Positions: pos, Robots: robots})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
	if w.viewIndex != nil {
		t.Error("visibility grid built for a fully-sighted swarm")
	}
}

// TestViewIndexParityParallelEngine repeats the parity check with the
// parallel step engine: the grid is rebuilt before the compute phase and
// read-only inside it, so worker goroutines must share it safely. Run
// with -race this doubles as the data-race check.
func TestViewIndexParityParallelEngine(t *testing.T) {
	n := viewIndexMinN + 16
	indexed := limitedVisWorld(t, n, 25)
	indexed.SetEngine(EngineParallel)
	brute := limitedVisWorld(t, n, 25)
	brute.SetViewIndexing(false)
	for step := 0; step < 10; step++ {
		if _, err := indexed.Step(Synchronous{}); err != nil {
			t.Fatal(err)
		}
		if _, err := brute.Step(Synchronous{}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if indexed.Position(i) != brute.Position(i) {
				t.Fatalf("step %d robot %d: parallel-indexed %v != brute %v",
					step, i, indexed.Position(i), brute.Position(i))
			}
		}
	}
}
