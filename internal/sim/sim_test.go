package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"waggle/internal/geom"
)

// stay is a behavior that never moves (local origin = own position).
func stay() Behavior {
	return BehaviorFunc(func(View) geom.Point { return geom.Pt(0, 0) })
}

// walker moves a fixed local displacement every activation.
func walker(dx, dy float64) Behavior {
	return BehaviorFunc(func(View) geom.Point { return geom.Pt(dx, dy) })
}

func newTestWorld(t *testing.T, positions []geom.Point, behaviors []Behavior, opts ...func(*Config)) *World {
	t.Helper()
	robots := make([]*Robot, len(positions))
	for i := range robots {
		robots[i] = &Robot{Frame: geom.WorldFrame(), Sigma: 10, Behavior: behaviors[i]}
	}
	cfg := Config{Positions: positions, Robots: robots, RecordTrace: true}
	for _, o := range opts {
		o(&cfg)
	}
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldErrors(t *testing.T) {
	if _, err := NewWorld(Config{}); !errors.Is(err, ErrNoRobots) {
		t.Errorf("empty config: err = %v, want ErrNoRobots", err)
	}
	r := &Robot{Sigma: 1, Behavior: stay()}
	if _, err := NewWorld(Config{
		Positions: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)},
		Robots:    []*Robot{r},
	}); !errors.Is(err, ErrMismatchedRobots) {
		t.Errorf("mismatch: err = %v, want ErrMismatchedRobots", err)
	}
	if _, err := NewWorld(Config{
		Positions: []geom.Point{geom.Pt(0, 0), geom.Pt(0, 0)},
		Robots:    []*Robot{r, r},
	}); !errors.Is(err, ErrCoincidentRobots) {
		t.Errorf("coincident: err = %v, want ErrCoincidentRobots", err)
	}
	bad := &Robot{Sigma: 0, Behavior: stay()}
	if _, err := NewWorld(Config{
		Positions: []geom.Point{geom.Pt(0, 0)},
		Robots:    []*Robot{bad},
	}); !errors.Is(err, ErrBadSigma) {
		t.Errorf("bad sigma: err = %v, want ErrBadSigma", err)
	}
	if _, err := NewWorld(Config{
		Positions: []geom.Point{geom.Pt(0, 0)},
		Robots:    []*Robot{{Sigma: 1}},
	}); err == nil {
		t.Error("nil behavior should be rejected")
	}
}

func TestSynchronousStepMovesEveryone(t *testing.T) {
	w := newTestWorld(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(5, 0)},
		[]Behavior{walker(1, 0), walker(0, 1)},
	)
	active, err := w.Step(Synchronous{})
	if err != nil {
		t.Fatal(err)
	}
	if len(active) != 2 {
		t.Fatalf("active = %v, want both robots", active)
	}
	if !w.Position(0).Eq(geom.Pt(1, 0)) {
		t.Errorf("robot 0 at %v, want (1,0)", w.Position(0))
	}
	if !w.Position(1).Eq(geom.Pt(5, 1)) {
		t.Errorf("robot 1 at %v, want (5,1)", w.Position(1))
	}
	if w.Time() != 1 {
		t.Errorf("time = %d, want 1", w.Time())
	}
}

func TestSigmaClamping(t *testing.T) {
	robots := []*Robot{{Frame: geom.WorldFrame(), Sigma: 1, Behavior: walker(10, 0)}}
	w, err := NewWorld(Config{Positions: []geom.Point{geom.Pt(0, 0)}, Robots: robots})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
	if !w.Position(0).Eq(geom.Pt(1, 0)) {
		t.Errorf("clamped position = %v, want (1,0)", w.Position(0))
	}
}

func TestEgocentricFrames(t *testing.T) {
	// A robot whose frame is rotated 90 degrees: a local move of (1,0)
	// is a world move of (0,1), and its view of a world point is rotated
	// accordingly.
	var sawView View
	b := BehaviorFunc(func(v View) geom.Point {
		sawView = v
		return geom.Pt(1, 0)
	})
	robots := []*Robot{
		{Frame: geom.NewFrame(geom.Point{}, math.Pi/2, 1, geom.RightHanded), Sigma: 5, Behavior: b},
		{Frame: geom.WorldFrame(), Sigma: 5, Behavior: stay()},
	}
	w, err := NewWorld(Config{
		Positions: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)},
		Robots:    robots,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
	// World +x neighbour appears at local (0,-1) for the rotated robot.
	if !sawView.Points[1].Eq(geom.Pt(0, -1)) {
		t.Errorf("rotated view of neighbour = %v, want (0,-1)", sawView.Points[1])
	}
	if !sawView.Points[0].Eq(geom.Pt(0, 0)) {
		t.Errorf("self must be at local origin, got %v", sawView.Points[0])
	}
	if !w.Position(0).Eq(geom.Pt(0, 1)) {
		t.Errorf("world position = %v, want (0,1)", w.Position(0))
	}
	// The frame follows the robot: after the move, self is origin again.
	loc := w.Robot(0).Frame.ToLocal(w.Position(0))
	if !loc.Eq(geom.Pt(0, 0)) {
		t.Errorf("frame did not follow robot: self at local %v", loc)
	}
}

func TestAnonymousViewsCarryNoIDs(t *testing.T) {
	var saw View
	b := BehaviorFunc(func(v View) geom.Point { saw = v; return geom.Pt(0, 0) })
	w := newTestWorld(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)},
		[]Behavior{b, stay()},
	)
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
	if saw.IDs != nil {
		t.Errorf("anonymous view has IDs %v", saw.IDs)
	}
}

func TestIdentifiedViewsCarryIDs(t *testing.T) {
	var saw View
	b := BehaviorFunc(func(v View) geom.Point { saw = v; return geom.Pt(0, 0) })
	w := newTestWorld(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)},
		[]Behavior{b, stay()},
		func(c *Config) { c.Identified = true },
	)
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
	if len(saw.IDs) != 2 || saw.IDs[0] != 0 || saw.IDs[1] != 1 {
		t.Errorf("identified view IDs = %v, want [0 1]", saw.IDs)
	}
}

func TestSimultaneousSnapshot(t *testing.T) {
	// Both robots chase each other's observed position. With a
	// simultaneous snapshot they swap; with sequential application robot
	// 1 would see robot 0's new position.
	chase := func(other int) Behavior {
		return BehaviorFunc(func(v View) geom.Point { return v.Points[other] })
	}
	w := newTestWorld(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(4, 0)},
		[]Behavior{chase(1), chase(0)},
	)
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
	if !w.Position(0).Eq(geom.Pt(4, 0)) || !w.Position(1).Eq(geom.Pt(0, 0)) {
		t.Errorf("positions = %v, %v; want swapped", w.Position(0), w.Position(1))
	}
}

func TestInactiveRobotDoesNotObserveOrMove(t *testing.T) {
	calls := 0
	b := BehaviorFunc(func(View) geom.Point { calls++; return geom.Pt(1, 0) })
	w := newTestWorld(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(5, 0)},
		[]Behavior{b, stay()},
	)
	// Activate only robot 1 for three instants.
	only1 := BehaviorlessScheduler{set: []int{1}}
	for i := 0; i < 3; i++ {
		if _, err := w.Step(only1); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 0 {
		t.Errorf("inactive robot's behavior called %d times", calls)
	}
	if !w.Position(0).Eq(geom.Pt(0, 0)) {
		t.Errorf("inactive robot moved to %v", w.Position(0))
	}
}

// BehaviorlessScheduler activates a fixed set (test helper).
type BehaviorlessScheduler struct{ set []int }

// Next implements Scheduler.
func (s BehaviorlessScheduler) Next(_, _ int) []int { return s.set }

func TestEmptyActivationRejected(t *testing.T) {
	w := newTestWorld(t, []geom.Point{geom.Pt(0, 0)}, []Behavior{stay()})
	if _, err := w.Step(BehaviorlessScheduler{}); !errors.Is(err, ErrEmptyActivation) {
		t.Errorf("err = %v, want ErrEmptyActivation", err)
	}
}

func TestRunStopsOnPredicate(t *testing.T) {
	w := newTestWorld(t, []geom.Point{geom.Pt(0, 0)}, []Behavior{walker(1, 0)})
	steps, ok, err := w.Run(Synchronous{}, 100, func(w *World) bool {
		return w.Position(0).X >= 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("predicate never satisfied")
	}
	if steps != 5 {
		t.Errorf("steps = %d, want 5", steps)
	}
}

func TestTraceRecording(t *testing.T) {
	w := newTestWorld(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)},
		[]Behavior{walker(1, 0), stay()},
	)
	for i := 0; i < 4; i++ {
		if _, err := w.Step(Synchronous{}); err != nil {
			t.Fatal(err)
		}
	}
	tr := w.Trace()
	if tr == nil {
		t.Fatal("trace missing")
	}
	if got := len(tr.Steps()); got != 4 {
		t.Errorf("recorded %d steps, want 4", got)
	}
	if got := len(tr.MovesBy(0)); got != 4 {
		t.Errorf("robot 0 has %d moves, want 4", got)
	}
	if d := tr.TotalDistance(0); !geom.ApproxEq(d, 4) {
		t.Errorf("robot 0 distance = %v, want 4", d)
	}
	if d := tr.TotalDistance(1); d > geom.Eps {
		t.Errorf("robot 1 distance = %v, want 0", d)
	}
	if got := tr.NonTrivialMoves(1, 1e-9); got != 0 {
		t.Errorf("robot 1 non-trivial moves = %d, want 0", got)
	}
	// Min pairwise distance: robot 0 walks from x=0 to x=4 past robot 1
	// at x=3 -> minimum separation is 0 at t with x=3... positions are
	// sampled per instant: x in {1,2,3,4}, so min distance is 0.
	if d := tr.MinPairwiseDistance(); d > geom.Eps {
		t.Errorf("min pairwise distance = %v, want 0", d)
	}
}

func TestRobotTemplateNotMutated(t *testing.T) {
	tpl := &Robot{Frame: geom.WorldFrame(), Sigma: 2, Behavior: walker(1, 0)}
	w, err := NewWorld(Config{
		Positions: []geom.Point{geom.Pt(7, 7)},
		Robots:    []*Robot{tpl},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
	if !tpl.Frame.Origin.Eq(geom.Point{}) {
		t.Errorf("template frame mutated: origin = %v", tpl.Frame.Origin)
	}
}

func TestTeleport(t *testing.T) {
	w := newTestWorld(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)},
		[]Behavior{stay(), stay()},
	)
	if err := w.Teleport(0, geom.Pt(5, 5)); err != nil {
		t.Fatal(err)
	}
	if !w.Position(0).Eq(geom.Pt(5, 5)) {
		t.Errorf("position = %v after teleport", w.Position(0))
	}
	// The frame follows the fault, as it would for a physically moved
	// robot.
	if !w.Robot(0).Frame.ToLocal(geom.Pt(5, 5)).Eq(geom.Pt(0, 0)) {
		t.Error("frame origin did not follow the teleport")
	}
	if err := w.Teleport(9, geom.Pt(0, 0)); err == nil {
		t.Error("out-of-range teleport accepted")
	}
	// The teleport is recorded in the trace as a move.
	if got := len(w.Trace().MovesBy(0)); got != 1 {
		t.Errorf("teleport not traced: %d moves", got)
	}
}

func TestFirstSync(t *testing.T) {
	s := FirstSync{Inner: RoundRobin{}}
	if got := s.Next(0, 4); len(got) != 4 {
		t.Errorf("instant 0 activated %v, want everyone", got)
	}
	if got := s.Next(1, 4); len(got) != 1 || got[0] != 1 {
		t.Errorf("instant 1 activated %v, want [1]", got)
	}
}

func TestViewAccessors(t *testing.T) {
	v := View{Self: 1, Points: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}}
	if v.N() != 2 {
		t.Errorf("N = %d", v.N())
	}
	if v.Other() != 0 {
		t.Errorf("Other = %d", v.Other())
	}
	defer func() {
		if recover() == nil {
			t.Error("Other on 3 robots did not panic")
		}
	}()
	three := View{Self: 0, Points: make([]geom.Point, 3)}
	three.Other()
}

func TestWorldAccessorsAndRunError(t *testing.T) {
	w := newTestWorld(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)},
		[]Behavior{walker(1, 0), stay()},
	)
	if w.N() != 2 {
		t.Errorf("N = %d", w.N())
	}
	pos := w.Positions()
	if len(pos) != 2 || !pos[1].Eq(geom.Pt(3, 0)) {
		t.Errorf("Positions = %v", pos)
	}
	// Run propagates scheduler errors.
	if _, _, err := w.Run(BehaviorlessScheduler{}, 5, nil); err == nil {
		t.Error("empty-activation error not propagated by Run")
	}
	// Run with a nil predicate executes the full budget.
	steps, ok, err := w.Run(Synchronous{}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 3 || ok {
		t.Errorf("steps=%d ok=%v, want 3 false", steps, ok)
	}
}

func TestTraceAccessors(t *testing.T) {
	w := newTestWorld(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)},
		[]Behavior{walker(1, 0), stay()},
	)
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	init := tr.Initial()
	if len(init) != 2 || !init[0].Eq(geom.Pt(0, 0)) {
		t.Errorf("Initial = %v", init)
	}
	moves := tr.Moves()
	if len(moves) != 2 {
		t.Fatalf("Moves = %d entries", len(moves))
	}
	if moves[0].Dist() == 0 && moves[1].Dist() == 0 {
		t.Error("all moves have zero distance")
	}
}

func TestTrackerDirect(t *testing.T) {
	tr := NewTracker([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}, []float64{2, 2})
	if tr.Home(1) != geom.Pt(10, 0) {
		t.Errorf("Home = %v", tr.Home(1))
	}
	if tr.Radius(0) != 2 {
		t.Errorf("Radius = %v", tr.Radius(0))
	}
	got, err := tr.Identify(geom.Pt(9, 1))
	if err != nil || got != 1 {
		t.Errorf("Identify = %d, %v", got, err)
	}
	// Single-home tracker defaults to radius 1.
	single := NewTrackerFromConfig([]geom.Point{geom.Pt(5, 5)})
	if single.Radius(0) != 0.5 {
		t.Errorf("single-home radius = %v", single.Radius(0))
	}
}

func TestSchedulerEdgeCases(t *testing.T) {
	// Starver with a negative victim clamps to robot 0.
	s := Starver{Victim: -3, Delay: 2}
	saw0 := false
	for i := 0; i < 6; i++ {
		for _, r := range s.Next(i, 3) {
			if r == 0 {
				saw0 = true
			}
		}
	}
	if !saw0 {
		t.Error("clamped victim never activated")
	}
	// RandomFair with a zero value works with defaults.
	var rf RandomFair
	if got := rf.Next(0, 3); len(got) == 0 {
		t.Error("zero-value RandomFair produced an empty activation")
	}
}

func TestLimitedVisibilityViews(t *testing.T) {
	var saw View
	b := BehaviorFunc(func(v View) geom.Point { saw = v; return geom.Pt(0, 0) })
	robots := []*Robot{
		{Frame: geom.WorldFrame(), Sigma: 1, VisRadius: 5, Behavior: b},
		{Frame: geom.WorldFrame(), Sigma: 1, Behavior: stay()},
		{Frame: geom.WorldFrame(), Sigma: 1, Behavior: stay()},
	}
	w, err := NewWorld(Config{
		Positions: []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(30, 0)},
		Robots:    robots,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
	if saw.Visible == nil {
		t.Fatal("limited-visibility view carries no Visible mask")
	}
	if !saw.Visible[0] || !saw.Visible[1] || saw.Visible[2] {
		t.Errorf("Visible = %v, want [true true false]", saw.Visible)
	}
	// The near robot is seen where it is; the far robot's slot holds the
	// observer's own position (nothing sensed there).
	if !saw.Points[1].Eq(geom.Pt(3, 0)) {
		t.Errorf("near robot at %v", saw.Points[1])
	}
	if !saw.Points[2].Eq(geom.Pt(0, 0)) {
		t.Errorf("invisible robot leaked its position: %v", saw.Points[2])
	}
	// Unlimited robots see no mask at all.
	var sawFull View
	robots2 := []*Robot{
		{Frame: geom.WorldFrame(), Sigma: 1, Behavior: BehaviorFunc(func(v View) geom.Point { sawFull = v; return geom.Pt(0, 0) })},
		{Frame: geom.WorldFrame(), Sigma: 1, Behavior: stay()},
	}
	w2, err := NewWorld(Config{Positions: []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)}, Robots: robots2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Step(Synchronous{}); err != nil {
		t.Fatal(err)
	}
	if sawFull.Visible != nil {
		t.Error("unlimited visibility should carry a nil mask")
	}
}

func TestTraceWriteCSV(t *testing.T) {
	w := newTestWorld(t,
		[]geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)},
		[]Behavior{walker(1, 0), stay()},
	)
	for i := 0; i < 2; i++ {
		if _, err := w.Step(Synchronous{}); err != nil {
			t.Fatal(err)
		}
	}
	var buf strings.Builder
	if err := w.Trace().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time,robot,x,y\n") {
		t.Errorf("missing header: %q", out[:20])
	}
	for _, row := range []string{"-1,0,0,0", "-1,1,3,0", "0,0,1,0", "1,0,2,0"} {
		if !strings.Contains(out, row+"\n") {
			t.Errorf("missing row %q in:\n%s", row, out)
		}
	}
}
