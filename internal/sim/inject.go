package sim

import "waggle/internal/geom"

// Injector is the fault-injection hook surface of World.Step. A world
// with an injector attached runs every instant through four hooks, in
// this order:
//
//  1. BeginStep — after the scheduler has chosen the activation set and
//     before the configuration snapshot is taken. The injector may
//     mutate the world here (Teleport for transient displacements,
//     coupled fault state such as a radio).
//  2. FilterActive — removes crash-stopped robots from the activation
//     set. A robot removed here neither observes nor computes nor
//     moves, exactly the crash-stop fault model. The hook must preserve
//     the relative order of the surviving indices.
//  3. PerturbView — per activated robot, after its local view is built
//     and before its behavior runs. Observation faults (sensor noise,
//     dropped sightings) rewrite the view here. Under the parallel
//     engine this hook is called concurrently from worker goroutines,
//     so implementations must be deterministic pure functions of
//     (t, observer) with no shared mutable state beyond per-observer
//     scratch — see internal/fault for the hash-keyed construction.
//  4. PerturbMove — per activated robot, after the behavior's
//     destination has been computed and sigma-clamped, before the moves
//     are applied. Movement faults (truncation, overshoot) rewrite the
//     destination here; it runs sequentially on the stepping goroutine.
//
// All hooks receive the instant index t, so a deterministic injector
// driven by a declarative schedule reproduces byte-identical executions
// for a fixed seed, under both the sequential and parallel engines.
type Injector interface {
	// BeginStep runs before the instant's snapshot; it may mutate the
	// world (e.g. World.Teleport) and advance time-coupled fault state.
	BeginStep(t int, w *World)
	// FilterActive returns the activation set with crash-stopped robots
	// removed (it may filter in place). Returning an empty set makes
	// the instant pass with no observations and no moves.
	FilterActive(t int, active []int) []int
	// PerturbView may rewrite the observer's view in place (the slices
	// are the observer's private scratch) and must return the view to
	// hand to the behavior. frame is the observer's current frame, for
	// converting world-unit perturbations into local units.
	PerturbView(t, observer int, frame geom.Frame, view View) View
	// PerturbMove returns the world-space destination actually applied
	// for the robot, given the faithful one. Returning from means the
	// move is suppressed entirely.
	PerturbMove(t, robot int, from, dest geom.Point) geom.Point
}

// SetInjector attaches (or, with nil, detaches) a fault injector. Safe
// between steps only.
func (w *World) SetInjector(inj Injector) { w.inject = inj }

// Injector returns the attached fault injector, or nil.
func (w *World) Injector() Injector { return w.inject }
