package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"waggle/internal/geom"
	"waggle/internal/spatial"
)

// EngineMode selects how World.Step computes the moves of an instant's
// active robots. All modes produce byte-for-byte identical executions:
// every destination is a pure function of the shared snapshot and the
// robot's own private state, and moves are applied in activation order
// after a barrier, so only wall-clock time differs between modes.
type EngineMode int

const (
	// EngineAuto picks per instant: parallel when the activation set is
	// large enough to amortise goroutine overhead on a multi-core host
	// (at least parallelMinActive robots and GOMAXPROCS > 1),
	// sequential otherwise. This is the default.
	EngineAuto EngineMode = iota
	// EngineSequential computes every move on the calling goroutine.
	EngineSequential
	// EngineParallel always fans the compute phase out over a worker
	// pool sized to GOMAXPROCS.
	EngineParallel
)

// String implements fmt.Stringer.
func (m EngineMode) String() string {
	switch m {
	case EngineAuto:
		return "auto"
	case EngineSequential:
		return "sequential"
	case EngineParallel:
		return "parallel"
	default:
		return fmt.Sprintf("EngineMode(%d)", int(m))
	}
}

// parallelMinActive is the activation-set size below which EngineAuto
// stays sequential: for small sets the per-step goroutine fan-out costs
// more than the O(n) view construction it parallelises.
const parallelMinActive = 32

// viewScratch holds one robot's reusable view buffers. Each robot owns
// exactly one scratch slot, so concurrent workers never share one; the
// slices handed to Behavior.Step stay valid (and unchanging) until that
// same robot's next activation.
type viewScratch struct {
	points  []geom.Point
	ids     []int
	visible []bool
}

// SetEngine switches the step-engine mode. Safe between steps; the mode
// never changes the computed execution, only how it is computed.
func (w *World) SetEngine(m EngineMode) { w.engine = m }

// Engine returns the current step-engine mode.
func (w *World) Engine() EngineMode { return w.engine }

// useParallel decides whether this instant's compute phase fans out.
func (w *World) useParallel(activeLen int) bool {
	switch w.engine {
	case EngineSequential:
		return false
	case EngineParallel:
		return activeLen > 1
	default:
		return activeLen >= parallelMinActive && runtime.GOMAXPROCS(0) > 1
	}
}

// computeMoves fills w.dests[k] / w.errs[k] with the destination of
// active[k], either in place or over a worker pool. Workers pull
// indices from an atomic counter (work stealing), but every result is
// written to its own slot, so the outcome is independent of scheduling.
func (w *World) computeMoves(active []int) {
	if !w.useParallel(len(active)) {
		for k, i := range active {
			w.dests[k], w.errs[k] = w.computeMove(i)
		}
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(active) {
		workers = len(active)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(active) {
					return
				}
				w.dests[k], w.errs[k] = w.safeComputeMove(active[k])
			}
		}()
	}
	wg.Wait()
}

// safeComputeMove converts a behavior panic into an error: inside a
// worker goroutine an unrecovered panic would kill the process without
// unwinding the caller.
func (w *World) safeComputeMove(i int) (dest geom.Point, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: robot %d behavior panicked: %v", i, r)
		}
	}()
	return w.computeMove(i)
}

// computeMove runs robot i's observe–compute–clamp cycle against the
// current snapshot. It touches only the snapshot (read-only during the
// compute phase), robot i's scratch slot, and robot i's private state.
func (w *World) computeMove(i int) (geom.Point, error) {
	r := w.robots[i]
	view := w.localView(i, w.snapshot)
	if w.inject != nil {
		// Observation faults (noise, dropped sightings). The hook runs
		// concurrently under the parallel engine; injectors are
		// deterministic per (time, observer), so the execution is
		// engine-independent.
		view = w.inject.PerturbView(w.time, i, r.Frame, view)
	}
	localDest := r.Behavior.Step(view)
	worldDest := r.Frame.ToWorld(localDest)
	// Reject non-finite destinations before the sigma clamp: NaN
	// survives the clamp (every comparison with NaN is false) and an
	// infinite delta turns into NaN inside it, so either would silently
	// corrupt the configuration.
	if !isFinite(worldDest) {
		return geom.Point{}, fmt.Errorf("sim: robot %d returned non-finite destination %v (local %v)", i, worldDest, localDest)
	}
	// Clamp to the per-activation bound sigma.
	delta := worldDest.Sub(w.snapshot[i])
	if d := delta.Len(); d > r.Sigma {
		worldDest = w.snapshot[i].Add(delta.Scale(r.Sigma / d))
	}
	return worldDest, nil
}

// viewIndexMinN is the swarm size from which limited-visibility views
// use the per-step spatial grid; below it the O(n) rebuild costs more
// than the distance checks it culls.
const viewIndexMinN = 48

// prepareStep sizes the reusable snapshot/destination/error buffers for
// an instant with the given activation-set size, and rebuilds the
// per-step visibility grid when limited-visibility culling applies.
func (w *World) prepareStep(activeLen int) {
	n := len(w.pos)
	if w.snapshot == nil {
		w.snapshot = make([]geom.Point, n)
	}
	copy(w.snapshot, w.pos)
	if !w.viewIndexOff && n >= viewIndexMinN && w.anyLimitedVisibility() {
		if w.viewIndex == nil {
			w.viewIndex = spatial.NewGrid(w.snapshot)
		} else {
			w.viewIndex.Rebuild(w.snapshot)
		}
	} else {
		w.viewIndex = nil
	}
	if cap(w.dests) < activeLen {
		w.dests = make([]geom.Point, activeLen)
		w.errs = make([]error, activeLen)
	}
	w.dests = w.dests[:activeLen]
	w.errs = w.errs[:activeLen]
}

// anyLimitedVisibility reports whether any robot has a bounded sensor.
// Checked per step (a cheap scan) so VisRadius edits between steps are
// honoured.
func (w *World) anyLimitedVisibility() bool {
	for _, r := range w.robots {
		if r.VisRadius > 0 {
			return true
		}
	}
	return false
}

// SetViewIndexing enables or disables the limited-visibility spatial
// grid. Indexing never changes a computed view — the grid only culls
// candidates ahead of the exact sensor predicate — so this is a
// benchmarking and debugging knob, on by default.
func (w *World) SetViewIndexing(on bool) { w.viewIndexOff = !on }

// scratchFor returns robot i's view scratch, sized for n robots.
func (w *World) scratchFor(i int) *viewScratch {
	sc := &w.scratch[i]
	if len(sc.points) != len(w.pos) {
		sc.points = make([]geom.Point, len(w.pos))
	}
	if w.ids != nil && len(sc.ids) != len(w.ids) {
		sc.ids = make([]int, len(w.ids))
	}
	if w.robots[i].VisRadius > 0 && len(sc.visible) != len(w.pos) {
		sc.visible = make([]bool, len(w.pos))
	}
	return sc
}

func isFinite(p geom.Point) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}
