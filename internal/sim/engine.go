package sim

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"waggle/internal/geom"
	"waggle/internal/spatial"
)

// EngineMode selects how World.Step computes the moves of an instant's
// active robots. All modes produce byte-for-byte identical executions:
// every destination is a pure function of the shared snapshot and the
// robot's own private state, and moves are applied in activation order
// after a barrier, so only wall-clock time differs between modes.
type EngineMode int

const (
	// EngineAuto picks per instant: parallel when the activation set is
	// large enough to amortise goroutine overhead on a multi-core host
	// (at least parallelMinActive robots and GOMAXPROCS > 1),
	// sequential otherwise. This is the default.
	EngineAuto EngineMode = iota
	// EngineSequential computes every move on the calling goroutine.
	EngineSequential
	// EngineParallel always fans the compute phase out over a worker
	// pool sized to GOMAXPROCS, even for a single active robot, so the
	// memory-visibility and recovery behavior is identical at every
	// activation-set size.
	EngineParallel
)

// String implements fmt.Stringer.
func (m EngineMode) String() string {
	switch m {
	case EngineAuto:
		return "auto"
	case EngineSequential:
		return "sequential"
	case EngineParallel:
		return "parallel"
	default:
		return fmt.Sprintf("EngineMode(%d)", int(m))
	}
}

// parallelMinActive is the activation-set size below which EngineAuto
// stays sequential: for small sets the per-step goroutine fan-out costs
// more than the O(n) view construction it parallelises.
const parallelMinActive = 32

// viewScratch holds one robot's reusable view buffers. Each robot owns
// exactly one scratch slot, so concurrent workers never share one; the
// slices handed to Behavior.Step stay valid (and unchanging) until that
// same robot's next activation. The dense buffers (points/ids/visible)
// and the compact buffers (cpts/cidx/cids) are independent: a robot in
// compact mode never sizes the O(n) dense slices.
type viewScratch struct {
	points  []geom.Point
	ids     []int
	visible []bool

	cpts []geom.Point
	cidx []int
	cids []int
}

// cellBatch holds one worker's reusable buffers for batched compact-view
// construction: the active residents of the cell being processed and the
// shared candidate superset of their sensor discs.
type cellBatch struct {
	residents []int32
	cand      []int32
}

// SetEngine switches the step-engine mode. Safe between steps; the mode
// never changes the computed execution, only how it is computed.
func (w *World) SetEngine(m EngineMode) { w.engine = m }

// Engine returns the current step-engine mode.
func (w *World) Engine() EngineMode { return w.engine }

// SetCompactViews switches limited-visibility robots to compact views:
// View.Points holds only the robots inside the sensor disc (ascending by
// robot index) and View.Indices maps slots back to robot indices, so a
// step costs O(visible) per robot instead of O(n). Robots with unlimited
// visibility keep dense views. Compact views change the View *shape* —
// behaviors and injectors must consult Indices — so the switch is
// opt-in; the visible *content* (which robots, their local positions) is
// bit-identical to the dense view's visible set. Safe between steps.
func (w *World) SetCompactViews(on bool) { w.compact = on }

// CompactViews reports whether compact views are enabled.
func (w *World) CompactViews() bool { return w.compact }

// useParallel decides whether this instant's compute phase fans out.
func (w *World) useParallel(activeLen int) bool {
	switch w.engine {
	case EngineSequential:
		return false
	case EngineParallel:
		// Always fan out, as documented: Step guarantees a non-empty
		// activation set, so at least one worker runs.
		return true
	default:
		return activeLen >= parallelMinActive && runtime.GOMAXPROCS(0) > 1
	}
}

// computeMoves fills w.dests[k] / w.errs[k] with the destination of
// active[k], either in place or over a worker pool. Workers pull work
// from an atomic counter (work stealing), but every result is written to
// its own slot, so the outcome is independent of scheduling. Both the
// sequential and the parallel path run behaviors under safeComputeMove,
// so a panic surfaces as the same per-robot error in every mode.
func (w *World) computeMoves(active []int) {
	if w.compact && w.viewIndexActive {
		w.computeMovesBatched(active)
		return
	}
	if !w.useParallel(len(active)) {
		for k, i := range active {
			w.dests[k], w.errs[k] = w.safeComputeMove(i)
		}
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(active) {
		workers = len(active)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(active) {
					return
				}
				w.dests[k], w.errs[k] = w.safeComputeMove(active[k])
			}
		}()
	}
	wg.Wait()
}

// computeMovesBatched is the compact-view fast path: instead of one
// grid-window walk per observer, workers claim grid cells, gather each
// cell's candidate superset once (the window of the cell under its
// residents' largest sensor radius), and build every active resident's
// view by filtering that shared, sorted candidate list with the exact
// sensor predicate — amortising the window walk and keeping the
// frame transforms streaming over one cell's working set. Every
// destination still lands in its own active slot, so the execution is
// identical to the per-robot path in every engine mode.
func (w *World) computeMovesBatched(active []int) {
	for k, i := range active {
		w.activeSlot[i] = int32(k)
	}
	cells := w.viewIndex.CellCount()
	if !w.useParallel(len(active)) {
		w.ensureCellScratch(1)
		for c := 0; c < cells; c++ {
			w.computeCell(c, &w.cellScratch[0])
		}
	} else {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(active) {
			workers = len(active)
		}
		w.ensureCellScratch(workers)
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for wk := 0; wk < workers; wk++ {
			sc := &w.cellScratch[wk]
			go func() {
				defer wg.Done()
				for {
					c := int(next.Add(1)) - 1
					if c >= cells {
						return
					}
					w.computeCell(c, sc)
				}
			}()
		}
		wg.Wait()
	}
	for _, i := range active {
		w.activeSlot[i] = -1
	}
}

// computeCell computes the moves of every active robot located in grid
// cell c, sharing one candidate gather across them.
func (w *World) computeCell(c int, sc *cellBatch) {
	residents := sc.residents[:0]
	rmax := 0.0
	w.viewIndex.VisitCellMembers(c, func(j int32) {
		if w.activeSlot[j] < 0 {
			return
		}
		residents = append(residents, j)
		if r := w.visRadii[j]; r > rmax {
			rmax = r
		}
	})
	sc.residents = residents
	if len(residents) == 0 {
		return
	}
	cand := w.viewIndex.AppendCellWindow(sc.cand[:0], c, rmax)
	// Ascending candidate order makes the filtered compact views
	// index-sorted, matching the per-robot construction bit-for-bit.
	slices.Sort(cand)
	sc.cand = cand
	for _, j := range residents {
		k := w.activeSlot[j]
		if w.visRadii[j] <= 0 {
			// Unlimited-visibility robot in a compact world: dense view.
			w.dests[k], w.errs[k] = w.safeComputeMove(int(j))
			continue
		}
		w.dests[k], w.errs[k] = w.safeComputeMoveFrom(int(j), cand)
	}
}

// ensureCellScratch sizes the per-worker cell buffers, keeping warmed
// capacity when the worker count grows.
func (w *World) ensureCellScratch(workers int) {
	if len(w.cellScratch) < workers {
		w.cellScratch = append(w.cellScratch, make([]cellBatch, workers-len(w.cellScratch))...)
	}
}

// safeComputeMove converts a behavior panic into an error: inside a
// worker goroutine an unrecovered panic would kill the process without
// unwinding the caller, and the sequential path reports the identical
// per-robot error so engine modes stay interchangeable.
func (w *World) safeComputeMove(i int) (dest geom.Point, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: robot %d behavior panicked: %v", i, r)
		}
	}()
	return w.computeMove(i)
}

// safeComputeMoveFrom is safeComputeMove for the batched path: the view
// is filtered from a shared sorted candidate superset.
func (w *World) safeComputeMoveFrom(i int, cand []int32) (dest geom.Point, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: robot %d behavior panicked: %v", i, r)
		}
	}()
	snapshot := w.snapshot
	sc := &w.scratch[i]
	self := snapshot[i]
	r := w.visRadii[i]
	idx := sc.cidx[:0]
	for _, j := range cand {
		if self.Dist(snapshot[j]) <= r {
			idx = append(idx, int(j))
		}
	}
	sc.cidx = idx
	if o := w.obs; o != nil {
		o.Sim.ViewIndexViews.Inc()
	}
	return w.finishMove(i, w.finishCompact(i, idx, snapshot))
}

// computeMove runs robot i's observe–compute–clamp cycle against the
// current snapshot. It touches only the snapshot (read-only during the
// compute phase), the SoA mirrors (likewise read-only), robot i's
// scratch slot, and robot i's private state.
func (w *World) computeMove(i int) (geom.Point, error) {
	return w.finishMove(i, w.localView(i, w.snapshot))
}

// finishMove is the shared tail of the observe–compute–clamp cycle:
// fault injection, the behavior step, and the finiteness and sigma
// clamps, all against the SoA mirrors.
func (w *World) finishMove(i int, view View) (geom.Point, error) {
	if w.inject != nil {
		// Observation faults (noise, dropped sightings). The hook runs
		// concurrently under the parallel engine; injectors are
		// deterministic per (time, observer), so the execution is
		// engine-independent.
		view = w.inject.PerturbView(w.time, i, w.frames[i], view)
	}
	localDest := w.behaviors[i].Step(view)
	worldDest := w.frames[i].ToWorld(localDest)
	// Reject non-finite destinations before the sigma clamp: NaN
	// survives the clamp (every comparison with NaN is false) and an
	// infinite delta turns into NaN inside it, so either would silently
	// corrupt the configuration.
	if !isFinite(worldDest) {
		return geom.Point{}, fmt.Errorf("sim: robot %d returned non-finite destination %v (local %v)", i, worldDest, localDest)
	}
	// Clamp to the per-activation bound sigma.
	delta := worldDest.Sub(w.snapshot[i])
	if d := delta.Len(); d > w.sigmas[i] {
		worldDest = w.snapshot[i].Add(delta.Scale(w.sigmas[i] / d))
	}
	return worldDest, nil
}

// viewIndexMinN is the swarm size from which limited-visibility views
// use the per-step spatial grid; below it the O(n) rebuild costs more
// than the distance checks it culls.
const viewIndexMinN = 48

// gridRebuildFraction is the moved fraction — of this instant's diff, or
// of the grid's cumulative bucket drift — above which prepareStep
// abandons incremental splicing for a full Rebuild: past it the splice
// work approaches the rebuild cost and clamped-in movers start skewing
// bucket balance.
const gridRebuildFraction = 0.25

// prepareStep refreshes the SoA mirrors, sizes the reusable
// snapshot/destination/error buffers for an instant with the given
// activation-set size, and brings the visibility grid in sync when
// limited-visibility culling applies — incrementally when it can, by a
// full rebuild when it must. The grid object is never discarded: when
// indexing does not apply this instant it merely goes out of sync, so
// toggling visibility or SetViewIndexing re-allocates nothing.
func (w *World) prepareStep(activeLen int) {
	n := len(w.pos)
	w.syncSoA()
	needIndex := !w.viewIndexOff && n >= viewIndexMinN && w.anyLimited
	switch {
	case w.snapshot == nil:
		w.snapshot = make([]geom.Point, n)
		copy(w.snapshot, w.pos)
		if needIndex {
			w.rebuildGrid()
		}
	case needIndex && w.viewIndex != nil && w.gridSynced:
		w.updateGridIncremental(n)
	default:
		copy(w.snapshot, w.pos)
		if needIndex {
			w.rebuildGrid()
		} else {
			w.gridSynced = false
		}
	}
	w.viewIndexActive = needIndex
	if cap(w.dests) < activeLen {
		w.dests = make([]geom.Point, activeLen)
		w.errs = make([]error, activeLen)
	}
	w.dests = w.dests[:activeLen]
	w.errs = w.errs[:activeLen]
}

// rebuildGrid (re)indexes the visibility grid over the snapshot from
// scratch, reusing buffers after warm-up.
func (w *World) rebuildGrid() {
	if w.viewIndex == nil {
		w.viewIndex = spatial.NewGrid(w.snapshot)
	} else {
		w.viewIndex.Rebuild(w.snapshot)
	}
	w.gridSynced = true
}

// updateGridIncremental diffs the configuration against the snapshot the
// grid indexes and splices only the moved robots (Grid.Move updates the
// snapshot entries in place — the grid references the snapshot slice),
// falling back to a full Rebuild past gridRebuildFraction. Queries on
// the spliced grid are exact (the grid only narrows candidates), so the
// computed views are bit-identical either way.
func (w *World) updateGridIncremental(n int) {
	moved := w.movedScratch[:0]
	for i := range w.pos {
		if w.pos[i] != w.snapshot[i] {
			moved = append(moved, int32(i))
		}
	}
	w.movedScratch = moved
	if float64(len(moved)) > gridRebuildFraction*float64(n) ||
		w.viewIndex.MovedFraction() > gridRebuildFraction {
		copy(w.snapshot, w.pos)
		w.viewIndex.Rebuild(w.snapshot)
		return
	}
	for _, i := range moved {
		w.viewIndex.Move(int(i), w.snapshot[i], w.pos[i])
	}
	// The engine does not consume dirty cells (the protocol layer tracks
	// its own); clear per step so the list stays short.
	w.viewIndex.ClearDirty()
}

// syncSoA refreshes the structure-of-arrays mirrors of the per-robot hot
// fields. Frames change with every move and callers may edit
// Sigma/VisRadius/Behavior between steps, so the mirrors are re-derived
// once per step in one linear pass; the compute phase then streams over
// flat slices instead of chasing robots[i] pointers.
func (w *World) syncSoA() {
	limited := false
	for i, r := range w.robots {
		w.sigmas[i] = r.Sigma
		w.visRadii[i] = r.VisRadius
		w.frames[i] = r.Frame
		w.behaviors[i] = r.Behavior
		if r.VisRadius > 0 {
			limited = true
		}
	}
	w.anyLimited = limited
}

// SetViewIndexing enables or disables the limited-visibility spatial
// grid. Indexing never changes a computed view — the grid only culls
// candidates ahead of the exact sensor predicate — so this is a
// benchmarking and debugging knob, on by default.
func (w *World) SetViewIndexing(on bool) { w.viewIndexOff = !on }

// scratchFor returns robot i's view scratch with the dense buffers sized
// for n robots. Compact views bypass it and size only the compact
// buffers.
func (w *World) scratchFor(i int) *viewScratch {
	sc := &w.scratch[i]
	if len(sc.points) != len(w.pos) {
		sc.points = make([]geom.Point, len(w.pos))
	}
	if w.ids != nil && len(sc.ids) != len(w.ids) {
		sc.ids = make([]int, len(w.ids))
	}
	if w.visRadii[i] > 0 && len(sc.visible) != len(w.pos) {
		sc.visible = make([]bool, len(w.pos))
	}
	return sc
}

func isFinite(p geom.Point) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}
